(* Benchmark harness: regenerates every table and figure of the paper.

   Two passes:
   1. a Bechamel timing pass — the kernels are the experiments' own
      cells (the first cell of each quick plan), so the cost of each
      reproduction pipeline is itself measured from the same registry
      the CLI runs, and regressions in the simulator/chain code are
      visible without maintaining a parallel list of ad-hoc kernels;
   2. a reproduction pass — prints each experiment's table (quick
      budgets; use `dune exec bin/repro.exe -- run all` for the full
      budgets recorded in EXPERIMENTS.md). *)

open Bechamel
open Toolkit

let budget = Experiments.Exp.budget ~quick:true ()

(* One kernel per experiment: its first cell under the quick budget,
   named id:label.  Cells are pure thunks, exactly what Test.make
   wants. *)
let kernels =
  List.concat_map
    (fun (e : Experiments.Exp.t) ->
      match Experiments.Plan.thunks (e.plan budget) with
      | [] -> []
      | (label, work) :: _ -> [ (e.id ^ ":" ^ label, work) ])
    Experiments.Exp.all
  @ [
      ( "chain:stationary-n32",
        (* Bypass the memoized entry point so the solve cost itself is
           what gets timed. *)
        fun () ->
          let t = Chains.Scu_chain.System.make ~n:32 in
          ignore (Markov.Stationary.solve t.chain) );
    ]

let tests = List.map (fun (name, f) -> Test.make ~name (Staged.stage f)) kernels

let timing_pass () =
  print_endline "== Timing pass (Bechamel, monotonic clock) ==";
  print_endline "";
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~stabilize:false () in
  let instances = Instance.[ monotonic_clock ] in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let table = Stats.Table.create [ "kernel"; "time/run"; "r^2" ] in
  let timings = ref [] in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name ols_result ->
          let time_ns =
            match Analyze.OLS.estimates ols_result with Some [ e ] -> e | _ -> nan
          in
          let r2 = Option.value (Analyze.OLS.r_square ols_result) ~default:nan in
          let pretty =
            if time_ns >= 1e9 then Printf.sprintf "%.3f s" (time_ns /. 1e9)
            else if time_ns >= 1e6 then Printf.sprintf "%.3f ms" (time_ns /. 1e6)
            else Printf.sprintf "%.1f us" (time_ns /. 1e3)
          in
          timings := (name, time_ns /. 1e9) :: !timings;
          Stats.Table.add_row table [ name; pretty; Printf.sprintf "%.4f" r2 ])
        analyzed)
    tests;
  print_string (Stats.Table.to_string table);
  print_endline "";
  List.rev !timings

(* `bench.exe --json FILE` additionally dumps the timing pass through
   the shared bench-JSON schema, one pseudo-experiment per kernel
   (Bechamel's per-run OLS estimate, not a plain wall-clock, hence the
   separate "bechamel:" id prefix). *)
let json_out () =
  let rec find = function
    | "--json" :: file :: _ -> Some file
    | _ :: rest -> find rest
    | [] -> None
  in
  find (Array.to_list Sys.argv)

let write_json file timings =
  let experiments =
    List.map
      (fun (name, seconds) ->
        {
          Telemetry.Bench.id = "bechamel:" ^ name;
          title = "Bechamel kernel " ^ name;
          cells = [ { Telemetry.Bench.label = "time/run"; seconds } ];
          total = seconds;
        })
      timings
  in
  let doc =
    Telemetry.Bench.make ~quick:true ~seed:Experiments.Exp.default_seed ~repeat:1
      experiments
  in
  Telemetry.Bench.write ~file doc;
  Printf.eprintf "bench json: %s\n%!" file

let reproduction_pass () =
  print_endline
    "== Reproduction pass (quick budgets; see EXPERIMENTS.md for full runs) ==";
  print_endline "";
  List.iter
    (fun e ->
      print_string (Experiments.Exp.render ~quick:true e);
      print_newline ())
    Experiments.Exp.all

let () =
  let timings = timing_pass () in
  Option.iter (fun file -> write_json file timings) (json_out ());
  reproduction_pass ()
