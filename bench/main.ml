(* Benchmark harness: regenerates every table and figure of the paper.

   Two passes:
   1. a Bechamel timing pass — one Test.make kernel per experiment, so
      the cost of each reproduction pipeline is itself measured and
      regressions in the simulator/chain code are visible;
   2. a reproduction pass — prints each experiment's table (quick
      budgets; use `dune exec bin/repro.exe -- run all` for the full
      budgets recorded in EXPERIMENTS.md). *)

open Bechamel
open Toolkit

let uniform = Sched.Scheduler.uniform

let run_spec ~seed ~n ~steps spec =
  ignore (Sim.Executor.run ~seed ~scheduler:uniform ~n ~stop:(Steps steps) spec)

(* One kernel per experiment id; kept small so Bechamel can iterate. *)
let kernels =
  [
    ( "fig1:lifting-n2",
      fun () ->
        let ind = Chains.Scu_chain.Individual.make ~n:2 in
        let sys = Chains.Scu_chain.System.make ~n:2 in
        ignore
          (Markov.Lifting.verify ~base:sys.chain ~lifted:ind.chain
             ~f:(Chains.Scu_chain.lift ind sys) ()) );
    ( "fig3:trace-10k-steps",
      fun () ->
        let c = Scu.Counter.make ~n:16 in
        ignore
          (Sim.Executor.run ~seed:1 ~trace:true ~scheduler:uniform ~n:16
             ~stop:(Steps 10_000) c.spec) );
    ( "fig4:successor-matrix",
      fun () ->
        let tr = Sched.Trace.create ~n:8 in
        let g = Stats.Rng.create ~seed:3 in
        for _ = 1 to 10_000 do
          Sched.Trace.record tr (Stats.Rng.int g 8)
        done;
        ignore (Sched.Trace.successor_matrix tr) );
    ( "fig5:counter-sim-n32",
      fun () -> run_spec ~seed:4 ~n:32 ~steps:10_000 (Scu.Counter.make ~n:32).spec );
    ( "thm3:theta-adversary",
      fun () ->
        let sched =
          Sched.Scheduler.with_weak_fairness ~theta:0.05
            (Sched.Scheduler.starver ~victim:0)
        in
        let c = Scu.Counter.make ~n:4 in
        ignore
          (Sim.Executor.run ~seed:5 ~scheduler:sched ~n:4 ~stop:(Steps 10_000) c.spec) );
    ( "lem2:unbounded-n8",
      fun () -> run_spec ~seed:6 ~n:8 ~steps:50_000 (Scu.Unbounded.make ~n:8 ()).spec );
    ( "thm4:scu-q5-s3-n16",
      fun () ->
        run_spec ~seed:7 ~n:16 ~steps:10_000 (Scu.Scu_pattern.make ~n:16 ~q:5 ~s:3).spec );
    ( "lem7:fairness-n8",
      fun () -> run_spec ~seed:8 ~n:8 ~steps:10_000 (Scu.Counter.make ~n:8).spec );
    ( "thm5:ballsbins-n1024",
      fun () ->
        let g = Ballsbins.Game.create ~n:1024 in
        let rng = Stats.Rng.create ~seed:9 in
        for _ = 1 to 200 do
          ignore (Ballsbins.Game.run_phase g ~rng)
        done );
    ( "lem11:parallel-q5-n8",
      fun () ->
        run_spec ~seed:10 ~n:8 ~steps:10_000 (Scu.Parallel_code.make ~n:8 ~q:5).spec );
    ( "lem12:aug-counter-n16",
      fun () -> run_spec ~seed:11 ~n:16 ~steps:10_000 (Scu.Counter_aug.make ~n:16).spec );
    ( "lift:verify-n4",
      fun () ->
        let ind = Chains.Scu_chain.Individual.make ~n:4 in
        let sys = Chains.Scu_chain.System.make ~n:4 in
        ignore
          (Markov.Lifting.verify ~base:sys.chain ~lifted:ind.chain
             ~f:(Chains.Scu_chain.lift ind sys) ()) );
    ( "cor2:crashed-run",
      fun () ->
        let c = Scu.Counter.make ~n:8 in
        ignore
          (Sim.Executor.run ~seed:12
             ~crash_plan:(Sched.Crash_plan.of_list [ (0, 4); (0, 5); (0, 6); (0, 7) ])
             ~scheduler:uniform ~n:8 ~stop:(Steps 10_000) c.spec) );
    ( "abl-sched:zipf-n8",
      fun () ->
        let c = Scu.Counter.make ~n:8 in
        ignore
          (Sim.Executor.run ~seed:13
             ~scheduler:(Sched.Scheduler.zipf ~n:8 ~alpha:1.5)
             ~n:8 ~stop:(Steps 10_000) c.spec) );
    ( "abl-wf:helping-n8",
      fun () -> run_spec ~seed:14 ~n:8 ~steps:10_000 (Scu.Waitfree_counter.make ~n:8).spec );
    ( "structs:treiber-n8",
      fun () -> run_spec ~seed:15 ~n:8 ~steps:10_000 (Scu.Treiber.make ~n:8 ()).spec );
    ( "structs:msqueue-n8",
      fun () -> run_spec ~seed:16 ~n:8 ~steps:10_000 (Scu.Msqueue.make ~n:8 ()).spec );
    ( "structs:rcu-n8",
      fun () ->
        run_spec ~seed:17 ~n:8 ~steps:10_000
          (Scu.Rcu.make ~n:8 ~readers:6 ~block_size:4).spec );
    ( "abl-lock:ticket-n8",
      fun () -> run_spec ~seed:18 ~n:8 ~steps:10_000 (Scu.Ticket_lock.make ~n:8).spec );
    ( "abl-tas:taslock-n4",
      fun () -> run_spec ~seed:26 ~n:4 ~steps:10_000 (Scu.Tas_lock.make ~n:4).spec );
    ( "abl-of:obstruction-n4",
      fun () -> run_spec ~seed:22 ~n:4 ~steps:10_000 (Scu.Obstruction_free.make ~n:4).spec );
    ( "structs:elimination-n16",
      fun () ->
        run_spec ~seed:23 ~n:16 ~steps:10_000 (Scu.Elimination_stack.make ~n:16 ()).spec );
    ( "ext-shard:k8-n32",
      fun () ->
        run_spec ~seed:19 ~n:32 ~steps:10_000 (Scu.Sharded_counter.make ~n:32 ~shards:8).spec );
    ( "ext-mix:tmix-n16",
      fun () ->
        let sys = Chains.Scu_chain.System.make ~n:16 in
        ignore (Markov.Mixing.mixing_time ~eps:0.01 sys.chain ~start:sys.initial) );
    ( "ext-backup:instrumented-n8",
      fun () ->
        let c, _ = Scu.Counter.make_instrumented ~n:8 in
        run_spec ~seed:20 ~n:8 ~steps:10_000 c.spec );
    ( "ext:wf-universal-n8",
      fun () ->
        run_spec ~seed:21 ~n:8 ~steps:10_000
          (Scu.Waitfree_universal.make ~n:8 ~init:[| 0 |]
             ~apply:(fun ~proc:_ ~op_index:_ st -> [| st.(0) + 1 |]))
            .spec );
    ( "chain:stationary-n32",
      (* Bypass the memoized entry point so the solve cost itself is
         what gets timed. *)
      fun () ->
        let t = Chains.Scu_chain.System.make ~n:32 in
        ignore (Markov.Stationary.solve t.chain) );
    ( "hw:atomic-counter-2dom",
      fun () ->
        ignore (Runtime.Harness.counter_completion_rate ~domains:2 ~ops_per_domain:1_000) );
  ]

let tests = List.map (fun (name, f) -> Test.make ~name (Staged.stage f)) kernels

let timing_pass () =
  print_endline "== Timing pass (Bechamel, monotonic clock) ==";
  print_endline "";
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~stabilize:false () in
  let instances = Instance.[ monotonic_clock ] in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let table = Stats.Table.create [ "kernel"; "time/run"; "r^2" ] in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name ols_result ->
          let time_ns =
            match Analyze.OLS.estimates ols_result with Some [ e ] -> e | _ -> nan
          in
          let r2 = Option.value (Analyze.OLS.r_square ols_result) ~default:nan in
          let pretty =
            if time_ns >= 1e9 then Printf.sprintf "%.3f s" (time_ns /. 1e9)
            else if time_ns >= 1e6 then Printf.sprintf "%.3f ms" (time_ns /. 1e6)
            else Printf.sprintf "%.1f us" (time_ns /. 1e3)
          in
          Stats.Table.add_row table [ name; pretty; Printf.sprintf "%.4f" r2 ])
        analyzed)
    tests;
  print_string (Stats.Table.to_string table);
  print_endline ""

let reproduction_pass () =
  print_endline
    "== Reproduction pass (quick budgets; see EXPERIMENTS.md for full runs) ==";
  print_endline "";
  List.iter
    (fun e ->
      print_string (Experiments.Exp.render ~quick:true e);
      print_newline ())
    Experiments.Exp.all

let () =
  timing_pass ();
  reproduction_pass ()
