(* Command-line experiment runner: one subcommand per paper artifact.

   `repro list`           - list experiments
   `repro run fig5`       - regenerate Figure 5's series as a table
   `repro run all`        - everything, in paper order
   `repro run fig5 --csv` - CSV output for plotting *)

open Cmdliner

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"Smaller sample sizes (smoke run).")

let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of a text table.")

let list_cmd =
  let doc = "List all experiments with their paper artifacts." in
  let run () =
    List.iter
      (fun e -> Printf.printf "%-10s %s\n" e.Experiments.Exp.id e.title)
      Experiments.Exp.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_one ~quick ~csv (e : Experiments.Exp.t) =
  if csv then begin
    Printf.printf "# %s\n" e.title;
    print_string (Stats.Table.to_csv (e.run ~quick))
  end
  else print_string (Experiments.Exp.render ~quick e)

let out_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"DIR" ~doc:"Also write one CSV file per experiment into $(docv).")

let write_csv dir (e : Experiments.Exp.t) table =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (e.id ^ ".csv") in
  let oc = open_out path in
  output_string oc (Stats.Table.to_csv table);
  close_out oc;
  Printf.eprintf "wrote %s\n%!" path

let run_full ~quick ~csv ~out (e : Experiments.Exp.t) =
  match out with
  | None -> run_one ~quick ~csv e
  | Some dir ->
      (* Run once; render and persist from the same table. *)
      let table = e.run ~quick in
      if csv then begin
        Printf.printf "# %s\n" e.title;
        print_string (Stats.Table.to_csv table)
      end
      else begin
        Printf.printf "== %s (%s) ==\n\n%s\nExpected shape: %s\n" e.title e.id
          (Stats.Table.to_string table)
          e.notes
      end;
      write_csv dir e table

let run_cmd =
  let doc = "Run one experiment by id, or 'all'." in
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"Experiment id.")
  in
  let run id quick csv out =
    if id = "all" then begin
      List.iter
        (fun e ->
          run_full ~quick ~csv ~out e;
          print_newline ())
        Experiments.Exp.all;
      `Ok ()
    end
    else
      match Experiments.Exp.find id with
      | Some e ->
          run_full ~quick ~csv ~out e;
          `Ok ()
      | None ->
          `Error
            (false, Printf.sprintf "unknown experiment %S; try `repro list`" id)
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(ret (const run $ id_arg $ quick $ csv $ out_dir))

let main =
  let doc =
    "Reproduction harness for 'Are Lock-Free Concurrent Algorithms Practically \
     Wait-Free?' (Alistarh, Censor-Hillel, Shavit)"
  in
  Cmd.group (Cmd.info "repro" ~version:"1.0.0" ~doc) [ list_cmd; run_cmd ]

let () = exit (Cmd.eval main)
