(* Command-line experiment runner: one subcommand per paper artifact.

   `repro list`                - list experiments
   `repro run fig5`            - regenerate Figure 5's series as a table
   `repro run fig5 thm4 lem7`  - several experiments, in the order given
   `repro run all`             - everything, in paper order
   `repro run fig5 --csv`      - CSV output for plotting
   `repro run all -j 8`        - fan cells out over 8 worker domains
   `repro run all --seed 7`    - re-derive every cell's RNG seed from 7
   `repro run all --cache`     - serve/persist cell results in results/cache
   `repro bench`               - time every quick cell, write BENCH_<date>.json

   Every `run` also writes a JSON manifest (per-cell timings, worker
   ids, cache hit/miss, pool skew) under results/runs/ — tables on
   stdout are unaffected, so -j1 and -jN stay byte-identical. *)

open Cmdliner

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"Smaller sample sizes (smoke run).")

let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of a text table.")

let seed_arg =
  Arg.(
    value
    & opt int Experiments.Exp.default_seed
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Base RNG seed threaded into every experiment; the default (0) \
           reproduces the repository's historical tables.")

let jobs_arg =
  Arg.(
    value
    & opt int (Pool.default_size ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the cell pool (default: this machine's cores). \
           $(b,-j 1) runs every cell in the calling domain, in order — the \
           reference sequential behaviour.")

let cache_flag =
  Arg.(
    value & flag
    & info [ "cache" ]
        ~doc:
          "Serve cell results from results/cache/ when present and persist \
           fresh ones (keyed by experiment, cell, budget and seed).")

let progress_flag =
  Arg.(
    value & flag
    & info [ "no-progress" ] ~doc:"Suppress the per-cell progress lines on stderr.")

let no_manifest_flag =
  Arg.(
    value & flag
    & info [ "no-manifest" ]
        ~doc:"Do not write the per-run JSON manifest under results/runs/.")

let cache_dir = "results/cache"
let runs_dir = Filename.concat "results" "runs"

let list_cmd =
  let doc = "List all experiments with their paper artifacts." in
  let run () =
    List.iter
      (fun e -> Printf.printf "%-10s %s\n" e.Experiments.Exp.id e.title)
      Experiments.Exp.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let mkdir_p dir =
  let rec go d =
    if d = "" || d = "." || d = "/" || Sys.file_exists d then ()
    else begin
      go (Filename.dirname d);
      try Sys.mkdir d 0o755 with Sys_error _ -> ()
    end
  in
  go dir

let write_csv dir (e : Experiments.Exp.t) table =
  mkdir_p dir;
  let path = Filename.concat dir (e.id ^ ".csv") in
  let oc = open_out path in
  output_string oc (Stats.Table.to_csv table);
  close_out oc;
  Printf.eprintf "wrote %s\n%!" path

(* A Plan runner backed by the domain pool, with optional per-cell
   progress lines ([on_done] is serialized under the pool lock, so
   printing is safe) and per-cell manifest records.  Misses reach the
   pool, so their cache status is Miss when the cache layer sits above
   us and Off otherwise; hits are recorded by the cache layer itself. *)
let pool_runner ~progress ~manifest ~cache_enabled pool =
  let cache_status =
    if cache_enabled then Telemetry.Manifest.Miss else Telemetry.Manifest.Off
  in
  {
    Experiments.Plan.map =
      (fun ~exp_id ~budget:_ cells ->
        let labels =
          Array.of_list (List.map (fun c -> c.Experiments.Plan.label) cells)
        in
        let total = Array.length labels in
        let finished = ref 0 in
        let on_done ~index ~worker ~waited ~elapsed =
          Telemetry.Manifest.record_cell manifest ~exp_id ~label:labels.(index)
            ~worker ~waited ~elapsed ~cache:cache_status;
          if progress then begin
            incr finished;
            Printf.eprintf "  [%s] %s: %.2fs w%d (%d/%d)\n%!" exp_id
              labels.(index) elapsed worker !finished total
          end
        in
        Pool.run ~on_done pool
          (List.map (fun c () -> c.Experiments.Plan.work ()) cells));
  }

(* Run each experiment exactly once, then feed every sink (stdout as
   text or CSV, plus the optional per-experiment CSV file). *)
let run_experiment ~runner ~manifest ~budget ~jobs ~csv ~out
    (e : Experiments.Exp.t) =
  let t0 = Unix.gettimeofday () in
  let table = Experiments.Exp.table ~runner ~budget e in
  let dt = Unix.gettimeofday () -. t0 in
  Telemetry.Manifest.record_experiment manifest ~id:e.id ~title:e.title ~elapsed:dt;
  Printf.eprintf "[%s] %d cells in %.2fs (j=%d)\n%!" e.id
    (Experiments.Plan.cell_count (e.plan budget))
    dt jobs;
  if csv then begin
    Printf.printf "# %s\n" e.title;
    print_string (Stats.Table.to_csv table)
  end
  else print_string (Experiments.Exp.render_table e table);
  Option.iter (fun dir -> write_csv dir e table) out

let out_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"DIR"
        ~doc:
          "Also write one CSV file per experiment into $(docv) (created, with \
           parents, if missing).")

let run_cmd =
  let doc = "Run experiments by id ('all' for the full catalogue)." in
  let ids_arg =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"ID" ~doc:"Experiment ids (or 'all'), run in the order given.")
  in
  let run ids quick seed jobs cache no_progress no_manifest csv out =
    if jobs < 1 then `Error (false, "-j must be at least 1")
    else
      match Experiments.Exp.select ids with
      | Error msg -> `Error (false, msg ^ "; try `repro list`")
      | Ok exps ->
          let budget = Experiments.Exp.budget ~quick ~seed () in
          let progress = not no_progress in
          let manifest =
            Telemetry.Manifest.create
              ~command:(List.tl (Array.to_list Sys.argv))
              ~quick ~seed ~jobs ~cache_enabled:cache ()
          in
          let cache_stats = Experiments.Cache.create_stats () in
          let t0 = Unix.gettimeofday () in
          Pool.with_pool ~size:jobs (fun pool ->
              let runner =
                pool_runner ~progress ~manifest ~cache_enabled:cache pool
              in
              let runner =
                if cache then
                  Experiments.Cache.runner ~stats:cache_stats
                    ~on_hit:(fun ~exp_id ~label ->
                      Telemetry.Manifest.record_cell manifest ~exp_id ~label
                        ~worker:(-1) ~waited:0. ~elapsed:0.
                        ~cache:Telemetry.Manifest.Hit)
                    ~dir:cache_dir ~inner:runner ()
                else runner
              in
              List.iter
                (fun e ->
                  run_experiment ~runner ~manifest ~budget ~jobs ~csv ~out e;
                  print_newline ())
                exps;
              let m = Pool.metrics pool in
              Telemetry.Manifest.set_pool manifest
                ~queue_wait_total:m.Pool.queue_wait_total
                (List.map
                   (fun (w : Pool.worker_metrics) ->
                     {
                       Telemetry.Manifest.worker = w.worker;
                       jobs = w.jobs;
                       busy = w.busy;
                     })
                   m.Pool.workers));
          let dt = Unix.gettimeofday () -. t0 in
          Telemetry.Manifest.set_elapsed manifest dt;
          if cache then begin
            Telemetry.Manifest.set_cache_counters manifest
              ~hits:cache_stats.hits ~misses:cache_stats.misses
              ~stores:cache_stats.stores;
            Printf.eprintf "cache: %d hit(s), %d miss(es), %d store(s)\n%!"
              cache_stats.hits cache_stats.misses cache_stats.stores
          end;
          Printf.eprintf "total: %d experiment(s) in %.2fs (j=%d)\n%!"
            (List.length exps) dt jobs;
          if not no_manifest then begin
            match Telemetry.Manifest.write ~dir:runs_dir manifest with
            | path -> Printf.eprintf "manifest: %s\n%!" path
            | exception Sys_error msg ->
                Printf.eprintf "manifest: skipped (%s)\n%!" msg
          end;
          `Ok ()
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      ret
        (const run $ ids_arg $ quick $ seed_arg $ jobs_arg $ cache_flag
       $ progress_flag $ no_manifest_flag $ csv $ out_dir))

(* `repro bench`: time every cell of the selected experiments'
   plans sequentially (parallel timing would measure contention, not
   the cells) and write one BENCH_<date>.json trajectory point. *)
let bench_cmd =
  let doc =
    "Time the experiment cells and write a machine-readable BENCH JSON \
     (the repository's perf trajectory; see EXPERIMENTS.md)."
  in
  let ids_arg =
    Arg.(
      value & pos_all string [ "all" ]
      & info [] ~docv:"ID" ~doc:"Experiment ids to bench (default: all).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Output path (default: BENCH_<date>.json in the current directory).")
  in
  let repeat_arg =
    Arg.(
      value & opt int 1
      & info [ "repeat" ] ~docv:"N"
          ~doc:"Run every cell $(docv) times and record the minimum (default 1).")
  in
  let full_flag =
    Arg.(
      value & flag
      & info [ "full" ]
          ~doc:"Bench the full budgets instead of the quick ones (slow).")
  in
  let run ids seed repeat full out =
    if repeat < 1 then `Error (false, "--repeat must be at least 1")
    else
      match Experiments.Exp.select ids with
      | Error msg -> `Error (false, msg ^ "; try `repro list`")
      | Ok exps ->
          let budget = Experiments.Exp.budget ~quick:(not full) ~seed () in
          let time_cell work =
            let best = ref infinity in
            for _ = 1 to repeat do
              let t0 = Unix.gettimeofday () in
              work ();
              let dt = Unix.gettimeofday () -. t0 in
              if dt < !best then best := dt
            done;
            !best
          in
          let experiments =
            List.map
              (fun (e : Experiments.Exp.t) ->
                let cells =
                  List.map
                    (fun (label, work) ->
                      let seconds = time_cell work in
                      Printf.eprintf "  [%s] %s: %.3fs\n%!" e.id label seconds;
                      { Telemetry.Bench.label; seconds })
                    (Experiments.Plan.thunks (e.plan budget))
                in
                let total =
                  List.fold_left
                    (fun acc (c : Telemetry.Bench.cell) -> acc +. c.seconds)
                    0. cells
                in
                Printf.eprintf "[%s] %d cell(s), %.2fs\n%!" e.id
                  (List.length cells) total;
                { Telemetry.Bench.id = e.id; title = e.title; cells; total })
              exps
          in
          let doc =
            Telemetry.Bench.make ~quick:(not full) ~seed ~repeat experiments
          in
          let file =
            match out with
            | Some f -> f
            | None -> Telemetry.Bench.default_filename doc
          in
          (match Telemetry.Bench.write ~file doc with
          | () ->
              Printf.eprintf "bench: %d experiment(s), %.2fs total -> %s\n%!"
                (List.length experiments)
                (Telemetry.Bench.total doc)
                file;
              `Ok ()
          | exception Sys_error msg -> `Error (false, "cannot write bench JSON: " ^ msg))
  in
  Cmd.v (Cmd.info "bench" ~doc)
    Term.(ret (const run $ ids_arg $ seed_arg $ repeat_arg $ full_flag $ out_arg))

let main =
  let doc =
    "Reproduction harness for 'Are Lock-Free Concurrent Algorithms Practically \
     Wait-Free?' (Alistarh, Censor-Hillel, Shavit)"
  in
  Cmd.group (Cmd.info "repro" ~version:"1.0.0" ~doc) [ list_cmd; run_cmd; bench_cmd ]

let () = exit (Cmd.eval main)
