(* Command-line experiment runner: one subcommand per paper artifact.

   `repro list`                - list experiments
   `repro run fig5`            - regenerate Figure 5's series as a table
   `repro run fig5 thm4 lem7`  - several experiments, in the order given
   `repro run all`             - everything, in paper order
   `repro run fig5 --csv`      - CSV output for plotting
   `repro run all -j 8`        - fan cells out over 8 worker domains
   `repro run all --seed 7`    - re-derive every cell's RNG seed from 7
   `repro run all --cache`     - serve/persist cell results in results/cache *)

open Cmdliner

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"Smaller sample sizes (smoke run).")

let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of a text table.")

let seed_arg =
  Arg.(
    value
    & opt int Experiments.Exp.default_seed
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Base RNG seed threaded into every experiment; the default (0) \
           reproduces the repository's historical tables.")

let jobs_arg =
  Arg.(
    value
    & opt int (Pool.default_size ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the cell pool (default: this machine's cores). \
           $(b,-j 1) runs every cell in the calling domain, in order — the \
           reference sequential behaviour.")

let cache_flag =
  Arg.(
    value & flag
    & info [ "cache" ]
        ~doc:
          "Serve cell results from results/cache/ when present and persist \
           fresh ones (keyed by experiment, cell, budget and seed).")

let progress_flag =
  Arg.(
    value & flag
    & info [ "no-progress" ] ~doc:"Suppress the per-cell progress lines on stderr.")

let cache_dir = "results/cache"

let list_cmd =
  let doc = "List all experiments with their paper artifacts." in
  let run () =
    List.iter
      (fun e -> Printf.printf "%-10s %s\n" e.Experiments.Exp.id e.title)
      Experiments.Exp.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let mkdir_p dir =
  let rec go d =
    if d = "" || d = "." || d = "/" || Sys.file_exists d then ()
    else begin
      go (Filename.dirname d);
      try Sys.mkdir d 0o755 with Sys_error _ -> ()
    end
  in
  go dir

let write_csv dir (e : Experiments.Exp.t) table =
  mkdir_p dir;
  let path = Filename.concat dir (e.id ^ ".csv") in
  let oc = open_out path in
  output_string oc (Stats.Table.to_csv table);
  close_out oc;
  Printf.eprintf "wrote %s\n%!" path

(* A Plan runner backed by the domain pool, with optional per-cell
   progress lines ([on_done] is serialized under the pool lock, so
   printing is safe). *)
let pool_runner ~progress pool =
  {
    Experiments.Plan.map =
      (fun ~exp_id ~budget:_ cells ->
        let labels =
          Array.of_list (List.map (fun c -> c.Experiments.Plan.label) cells)
        in
        let total = Array.length labels in
        let finished = ref 0 in
        let on_done ~index ~elapsed =
          if progress then begin
            incr finished;
            Printf.eprintf "  [%s] %s: %.2fs (%d/%d)\n%!" exp_id labels.(index)
              elapsed !finished total
          end
        in
        Pool.run ~on_done pool
          (List.map (fun c () -> c.Experiments.Plan.work ()) cells));
  }

(* Run each experiment exactly once, then feed every sink (stdout as
   text or CSV, plus the optional per-experiment CSV file). *)
let run_experiment ~runner ~budget ~jobs ~csv ~out (e : Experiments.Exp.t) =
  let t0 = Unix.gettimeofday () in
  let table = Experiments.Exp.table ~runner ~budget e in
  let dt = Unix.gettimeofday () -. t0 in
  Printf.eprintf "[%s] %d cells in %.2fs (j=%d)\n%!" e.id
    (Experiments.Plan.cell_count (e.plan budget))
    dt jobs;
  if csv then begin
    Printf.printf "# %s\n" e.title;
    print_string (Stats.Table.to_csv table)
  end
  else print_string (Experiments.Exp.render_table e table);
  Option.iter (fun dir -> write_csv dir e table) out

let out_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"DIR"
        ~doc:
          "Also write one CSV file per experiment into $(docv) (created, with \
           parents, if missing).")

let run_cmd =
  let doc = "Run experiments by id ('all' for the full catalogue)." in
  let ids_arg =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"ID" ~doc:"Experiment ids (or 'all'), run in the order given.")
  in
  let run ids quick seed jobs cache no_progress csv out =
    if jobs < 1 then `Error (false, "-j must be at least 1")
    else
      match Experiments.Exp.select ids with
      | Error msg -> `Error (false, msg ^ "; try `repro list`")
      | Ok exps ->
          let budget = Experiments.Exp.budget ~quick ~seed () in
          let progress = not no_progress in
          let t0 = Unix.gettimeofday () in
          Pool.with_pool ~size:jobs (fun pool ->
              let runner = pool_runner ~progress pool in
              let runner =
                if cache then Experiments.Cache.runner ~dir:cache_dir ~inner:runner
                else runner
              in
              List.iter
                (fun e ->
                  run_experiment ~runner ~budget ~jobs ~csv ~out e;
                  print_newline ())
                exps);
          Printf.eprintf "total: %d experiment(s) in %.2fs (j=%d)\n%!"
            (List.length exps)
            (Unix.gettimeofday () -. t0)
            jobs;
          `Ok ()
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      ret
        (const run $ ids_arg $ quick $ seed_arg $ jobs_arg $ cache_flag
       $ progress_flag $ csv $ out_dir))

let main =
  let doc =
    "Reproduction harness for 'Are Lock-Free Concurrent Algorithms Practically \
     Wait-Free?' (Alistarh, Censor-Hillel, Shavit)"
  in
  Cmd.group (Cmd.info "repro" ~version:"1.0.0" ~doc) [ list_cmd; run_cmd ]

let () = exit (Cmd.eval main)
