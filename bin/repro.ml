(* Command-line experiment runner: one subcommand per paper artifact.

   `repro list`                - list experiments
   `repro run fig5`            - regenerate Figure 5's series as a table
   `repro run fig5 thm4 lem7`  - several experiments, in the order given
   `repro run all`             - everything, in paper order
   `repro run fig5 --csv`      - CSV output for plotting
   `repro run all -j 8`        - fan cells out over 8 worker domains
   `repro run all --seed 7`    - re-derive every cell's RNG seed from 7
   `repro run all --cache`     - serve/persist cell results in results/cache
   `repro run all --timeout 60`        - abandon a wedged cell after 60s/attempt
   `repro run fig1 --fault lifting-n2:1` - make that cell fail once (CI drill)
   `repro run --resume results/runs/X.json` - finish a killed sweep
   `repro bench`               - time every quick cell, write BENCH_<date>.json

   Every `run` also journals a JSON manifest (per-cell timings, worker
   ids, attempt counts, cache hit/miss, pool skew) under results/runs/,
   rewritten atomically after every cell so a killed run loses at most
   one cell — `--resume` reads it back.  Tables on stdout are
   unaffected, so -j1, -jN and resumed runs stay byte-identical. *)

open Cmdliner

(* All elapsed-time measurement is monotonic: the wall clock steps
   under NTP and can produce negative durations in manifests. *)
let now = Pool.monotonic_now

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"Smaller sample sizes (smoke run).")

let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of a text table.")

(* Argument specs shared across `run`, `check`, `chaos` and `bench`:
   one definition per flag so help text and validation cannot drift
   between subcommands. *)
module Flags = struct
  let seed =
    Arg.(
      value
      & opt int Experiments.Exp.default_seed
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Base RNG seed threaded into every experiment; the default (0) \
             reproduces the repository's historical tables.")

  let no_progress =
    Arg.(
      value & flag
      & info [ "no-progress" ]
          ~doc:"Suppress the per-cell progress lines on stderr.")

  let long =
    Arg.(
      value & flag
      & info [ "long" ]
          ~doc:
            "Long budgets: more explorer nodes, more fuzz trials, tighter \
             conformance tolerances (the scheduled-CI configuration).")

  let out ~docv ~doc =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv ~doc)

  let artifact_dir =
    out ~docv:"DIR"
      ~doc:
        "Write each violation as a replayable report file into $(docv) \
         (created if missing) — the CI artifact directory."
end

let seed_arg = Flags.seed

(* Shared by `run` and `bench`: an optional scenario gate in front of
   the numbers — tables and benchmarks are only worth reading if the
   structures they exercise are correct under the current build. *)
let preflight_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "preflight" ] ~docv:"SCENARIO"
        ~doc:
          "Run this scenario (a preset name like $(b,quick), or a `repro \
           scenario --spec` grammar value) before the sweep and abort with \
           exit 1 if it finds any violation or failed gate.")

let run_preflight = function
  | None -> Ok ()
  | Some s -> (
      let scn =
        match Scenario.preset s with
        | Some p -> Ok p
        | None -> Scenario.parse s
      in
      match Result.bind scn (fun scn -> Result.map (fun () -> scn) (Scenario.validate scn)) with
      | Error msg -> Error ("--preflight: " ^ msg)
      | Ok scn ->
          let t0 = now () in
          let outcome = Scenario.run scn in
          Printf.eprintf
            "preflight: %d violation(s), %d failed gate(s) across %d \
             trial(s) in %.2fs\n\
             %!"
            (List.length outcome.failures)
            outcome.gates_failed outcome.trials (now () -. t0);
          if outcome.passed then Ok ()
          else begin
            List.iter
              (fun (f : Scenario.failure) ->
                Printf.eprintf "  preflight violation [%s/%s]: %s\n%!"
                  f.structure f.source f.verdict)
              outcome.failures;
            Error "--preflight scenario failed; not running the sweep"
          end)

let jobs_arg =
  Arg.(
    value
    & opt int (Pool.default_size ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the cell pool (default: this machine's cores). \
           $(b,-j 1) runs every cell in the calling domain, in order — the \
           reference sequential behaviour.")

let cache_flag =
  Arg.(
    value & flag
    & info [ "cache" ]
        ~doc:
          "Serve cell results from results/cache/ when present and persist \
           fresh ones (keyed by experiment, cell, budget and seed).")

let progress_flag = Flags.no_progress

let no_manifest_flag =
  Arg.(
    value & flag
    & info [ "no-manifest" ]
        ~doc:"Do not write the per-run JSON manifest under results/runs/.")

let retries_arg =
  Arg.(
    value
    & opt int Experiments.Retry.default.Experiments.Retry.max_attempts
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Attempts per cell before giving up (at least 1; 1 disables retry). \
           The default of 2 recovers any single failure, after which the \
           whole sweep still completes and the manifest records the attempt \
           counts.")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:
          "Per-attempt wall-clock limit for one cell.  A cell still running \
           after $(docv) seconds is abandoned (its domain cannot be killed \
           and leaks until it returns), the attempt counts as failed and the \
           retry policy applies.  Default: no limit.")

let no_backoff_flag =
  Arg.(
    value & flag
    & info [ "no-backoff" ]
        ~doc:
          "Retry immediately instead of sleeping a jittered exponential \
           delay between attempts.")

let fault_arg =
  Arg.(
    value & opt_all string []
    & info [ "fault" ] ~docv:"LABEL:K"
        ~doc:
          "Fault injection for drills and CI: make the cell whose label is \
           LABEL (or EXP/LABEL to disambiguate) raise on its first K \
           attempts.  Repeatable.  When absent, the $(b,REPRO_FAULT) \
           environment variable provides a single spec.")

let resume_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "resume" ] ~docv:"MANIFEST"
        ~doc:
          "Resume the run recorded in $(docv) (a results/runs/ manifest, \
           possibly from a killed sweep): re-run its experiment ids with its \
           budget and seed, with the cache enabled so cells the manifest \
           records as completed are served from results/cache/ instead of \
           re-executing (a recorded cell missing from the cache is simply \
           re-executed).  Explicit ids on the command line override the \
           manifest's.")

let cache_dir = "results/cache"
let runs_dir = Filename.concat "results" "runs"

let list_cmd =
  let doc = "List all experiments with their paper artifacts." in
  let run () =
    List.iter
      (fun e -> Printf.printf "%-10s %s\n" e.Experiments.Exp.id e.title)
      Experiments.Exp.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let write_csv dir (e : Experiments.Exp.t) table =
  let path = Filename.concat dir (e.id ^ ".csv") in
  let oc = open_out path in
  output_string oc (Stats.Table.to_csv table);
  close_out oc;
  Printf.eprintf "wrote %s\n%!" path

(* A Plan runner backed by the domain pool, with per-cell retry under
   [policy] (fault injection included), optional progress lines and
   journalled manifest records.  Each cell's job runs the retry loop
   on its worker, stashes the attempt count/failure for the [on_done]
   callback (same domain, so no race), and surfaces a permanent
   failure as [Retry.Cell_failed] — [Pool.try_run] turns that into the
   cell's own [Error] without disturbing the rest of the batch, and
   the first one is re-raised to the per-experiment driver only after
   every cell has run and been recorded.  Misses reach the pool, so
   their cache status is Miss when the cache layer sits above us and
   Off otherwise; hits are recorded by the cache layer itself. *)
let pool_runner ~progress ~manifest ~cache_enabled ~policy pool =
  let cache_status =
    if cache_enabled then Telemetry.Manifest.Miss else Telemetry.Manifest.Off
  in
  {
    Experiments.Plan.map =
      (fun ~exp_id ~budget cells ->
        let labels =
          Array.of_list (List.map (fun c -> c.Experiments.Plan.label) cells)
        in
        let total = Array.length labels in
        let attempts = Array.make total 1 in
        let failures = Array.make total None in
        let finished = ref 0 in
        let on_done ~index ~worker ~waited ~elapsed =
          let status =
            match failures.(index) with
            | None -> Telemetry.Manifest.Completed
            | Some err ->
                Telemetry.Manifest.Failed
                  (Experiments.Retry.error_message err)
          in
          Telemetry.Manifest.record_cell manifest ~exp_id
            ~label:labels.(index) ~worker ~waited ~elapsed
            ~attempts:attempts.(index) ~status ~cache:cache_status;
          if progress then begin
            incr finished;
            let retry_note =
              if attempts.(index) > 1 then
                Printf.sprintf " [%d attempts]" attempts.(index)
              else ""
            in
            let fail_note = if failures.(index) <> None then " FAILED" else "" in
            Printf.eprintf "  [%s] %s: %.2fs w%d%s%s (%d/%d)\n%!" exp_id
              labels.(index) elapsed worker retry_note fail_note !finished
              total
          end
        in
        let job i (c : _ Experiments.Plan.cell) () =
          let jitter =
            Random.State.make
              [|
                budget.Experiments.Plan.seed;
                Hashtbl.hash exp_id;
                Hashtbl.hash c.Experiments.Plan.label;
              |]
          in
          let fault ~attempt =
            Experiments.Retry.inject ~exp_id ~label:c.Experiments.Plan.label
              ~attempt
          in
          let result, n =
            Experiments.Retry.run ~jitter ~fault policy
              c.Experiments.Plan.work
          in
          attempts.(i) <- n;
          match result with
          | Ok v -> v
          | Error err ->
              failures.(i) <- Some err;
              raise
                (Experiments.Retry.Cell_failed
                   {
                     exp_id;
                     label = c.Experiments.Plan.label;
                     attempts = n;
                     reason = Experiments.Retry.error_message err;
                   })
        in
        List.map
          (function
            | Ok v -> v
            | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
          (Pool.try_run ~on_done pool (List.mapi job cells)));
  }

(* Run each experiment exactly once, then feed every sink (stdout as
   text or CSV, plus the optional per-experiment CSV file).  A cell
   that exhausted its retry policy surfaces here as [Cell_failed]: the
   experiment's table cannot be assembled, so it reports to stderr and
   the sweep moves on — returns [false] so the driver can exit
   non-zero once everything has run. *)
let run_experiment ~runner ~manifest ~budget ~jobs ~csv ~out
    (e : Experiments.Exp.t) =
  let t0 = now () in
  match Experiments.Exp.table ~runner ~budget e with
  | table ->
      let dt = now () -. t0 in
      Telemetry.Manifest.record_experiment manifest ~id:e.id ~title:e.title
        ~elapsed:dt;
      Printf.eprintf "[%s] %d cells in %.2fs (j=%d)\n%!" e.id
        (Experiments.Plan.cell_count (e.plan budget))
        dt jobs;
      if csv then begin
        Printf.printf "# %s\n" e.title;
        print_string (Stats.Table.to_csv table)
      end
      else print_string (Experiments.Exp.render_table e table);
      Option.iter (fun dir -> write_csv dir e table) out;
      print_newline ();
      true
  | exception Experiments.Retry.Cell_failed f ->
      let dt = now () -. t0 in
      Telemetry.Manifest.record_experiment manifest ~id:e.id ~title:e.title
        ~elapsed:dt;
      Printf.eprintf "[%s] FAILED in %.2fs: cell %s gave up after %d \
                      attempt(s): %s\n%!"
        e.id dt f.label f.attempts f.reason;
      false

let out_dir =
  Flags.out ~docv:"DIR"
    ~doc:
      "Also write one CSV file per experiment into $(docv) (created, with \
       parents, if missing)."

let run_cmd =
  let doc = "Run experiments by id ('all' for the full catalogue)." in
  let ids_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"ID"
          ~doc:
            "Experiment ids (or 'all'), run in the order given; optional \
             when --resume supplies them.")
  in
  let run ids quick seed jobs cache no_progress no_manifest retries timeout
      no_backoff faults resume csv out preflight =
    match run_preflight preflight with
    | Error msg -> `Error (false, msg)
    | Ok () ->
    let resumed =
      match resume with
      | None -> Ok None
      | Some file ->
          Result.map Option.some (Telemetry.Manifest.load_resume file)
    in
    match resumed with
    | Error msg -> `Error (false, "--resume: " ^ msg)
    | Ok resumed -> (
        let ids =
          match (ids, resumed) with
          | [], Some r -> r.Telemetry.Manifest.resume_ids
          | ids, _ -> ids
        in
        let quick, seed =
          match resumed with
          | Some r ->
              (r.Telemetry.Manifest.resume_quick, r.Telemetry.Manifest.resume_seed)
          | None -> (quick, seed)
        in
        let cache = cache || resumed <> None in
        let fault_specs =
          match faults with
          | _ :: _ -> faults
          | [] -> (
              match Sys.getenv_opt "REPRO_FAULT" with
              | Some s when s <> "" -> [ s ]
              | _ -> [])
        in
        if ids = [] then `Error (true, "no experiment ids given")
        else if jobs < 1 then `Error (false, "-j must be at least 1")
        else if retries < 1 then `Error (false, "--retries must be at least 1")
        else if (match timeout with Some s -> not (s > 0.) | None -> false)
        then `Error (false, "--timeout must be positive")
        else
          match
            try
              Experiments.Retry.install_faults fault_specs;
              Option.iter Telemetry.Fsutil.mkdir_p out;
              None
            with
            | Invalid_argument msg | Sys_error msg -> Some msg
          with
          | Some msg -> `Error (false, msg)
          | None -> (
              match Experiments.Exp.select ids with
              | Error msg -> `Error (false, msg ^ "; try `repro list`")
              | Ok exps ->
                  let policy =
                    {
                      Experiments.Retry.max_attempts = retries;
                      timeout_s = timeout;
                      backoff = not no_backoff;
                    }
                  in
                  let budget = Experiments.Exp.budget ~quick ~seed () in
                  let progress = not no_progress in
                  let manifest =
                    Telemetry.Manifest.create
                      ~command:(List.tl (Array.to_list Sys.argv))
                      ~ids:(List.map (fun e -> e.Experiments.Exp.id) exps)
                      ~quick ~seed ~jobs ~cache_enabled:cache ()
                  in
                  (* Journal from the start: the manifest file exists —
                     and stays valid JSON — from before the first cell
                     to after the last, so a killed run can always be
                     resumed from it. *)
                  let journalled =
                    if no_manifest then false
                    else
                      match
                        Telemetry.Manifest.enable_journal manifest
                          ~dir:runs_dir
                      with
                      | (_ : string) -> true
                      | exception Sys_error msg ->
                          Printf.eprintf "manifest: journal disabled (%s)\n%!"
                            msg;
                          false
                  in
                  (match resumed with
                  | Some r ->
                      Printf.eprintf
                        "resume: %d cell(s) recorded complete; serving them \
                         from the cache\n\
                         %!"
                        (List.length r.Telemetry.Manifest.completed)
                  | None -> ());
                  let cache_stats = Experiments.Cache.create_stats () in
                  let t0 = now () in
                  let ok_count = ref 0 in
                  let failed = ref [] in
                  Pool.with_pool ~size:jobs (fun pool ->
                      let runner =
                        pool_runner ~progress ~manifest ~cache_enabled:cache
                          ~policy pool
                      in
                      let runner =
                        if cache then
                          Experiments.Cache.runner ~stats:cache_stats
                            ~on_hit:(fun ~exp_id ~label ->
                              Telemetry.Manifest.record_cell manifest ~exp_id
                                ~label ~worker:(-1) ~waited:0. ~elapsed:0.
                                ~cache:Telemetry.Manifest.Hit)
                            ~dir:cache_dir ~inner:runner ()
                        else runner
                      in
                      List.iter
                        (fun e ->
                          if
                            run_experiment ~runner ~manifest ~budget ~jobs
                              ~csv ~out e
                          then incr ok_count
                          else failed := e.Experiments.Exp.id :: !failed)
                        exps;
                      let m = Pool.metrics pool in
                      Telemetry.Manifest.set_pool manifest
                        ~trapped:m.Pool.trapped
                        ~queue_wait_total:m.Pool.queue_wait_total
                        (List.map
                           (fun (w : Pool.worker_metrics) ->
                             {
                               Telemetry.Manifest.worker = w.worker;
                               jobs = w.jobs;
                               busy = w.busy;
                             })
                           m.Pool.workers));
                  let dt = now () -. t0 in
                  Telemetry.Manifest.set_elapsed manifest dt;
                  if cache then begin
                    Telemetry.Manifest.set_cache_counters manifest
                      ~hits:cache_stats.hits ~misses:cache_stats.misses
                      ~stores:cache_stats.stores;
                    Printf.eprintf "cache: %d hit(s), %d miss(es), %d store(s)\n%!"
                      cache_stats.hits cache_stats.misses cache_stats.stores
                  end;
                  (match resumed with
                  | Some r ->
                      let recorded =
                        List.length r.Telemetry.Manifest.completed
                      in
                      if cache_stats.hits < recorded then
                        Printf.eprintf
                          "resume: %d recorded cell(s) were missing from the \
                           cache and re-executed\n\
                           %!"
                          (recorded - cache_stats.hits)
                  | None -> ());
                  Printf.eprintf "total: %d experiment(s) in %.2fs (j=%d)\n%!"
                    (List.length exps) dt jobs;
                  if not no_manifest then begin
                    match Telemetry.Manifest.write ~dir:runs_dir manifest with
                    | path ->
                        Printf.eprintf "manifest: %s%s\n%!" path
                          (if journalled then " (journalled per cell)" else "")
                    | exception Sys_error msg ->
                        Printf.eprintf "manifest: skipped (%s)\n%!" msg
                  end;
                  if !failed <> [] then begin
                    Printf.eprintf
                      "FAILED: %d of %d experiment(s) had a cell give up: %s\n%!"
                      (List.length !failed) (List.length exps)
                      (String.concat ", " (List.rev !failed));
                    exit 1
                  end;
                  `Ok ()))
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      ret
        (const run $ ids_arg $ quick $ seed_arg $ jobs_arg $ cache_flag
       $ progress_flag $ no_manifest_flag $ retries_arg $ timeout_arg
       $ no_backoff_flag $ fault_arg $ resume_arg $ csv $ out_dir
       $ preflight_arg))

(* `repro bench`: time every cell of the selected experiments'
   plans sequentially (parallel timing would measure contention, not
   the cells) and write one BENCH_<date>.json trajectory point. *)
let bench_cmd =
  let doc =
    "Time the experiment cells and write a machine-readable BENCH JSON \
     (the repository's perf trajectory; see EXPERIMENTS.md)."
  in
  let ids_arg =
    Arg.(
      value & pos_all string [ "all" ]
      & info [] ~docv:"ID" ~doc:"Experiment ids to bench (default: all).")
  in
  let out_arg =
    Flags.out ~docv:"FILE"
      ~doc:"Output path (default: BENCH_<date>.json in the current directory)."
  in
  let repeat_arg =
    Arg.(
      value & opt int 1
      & info [ "repeat" ] ~docv:"N"
          ~doc:
            "Run every cell $(docv) times (plus one discarded warmup run when \
             N > 1) and record the median (default 1).")
  in
  let full_flag =
    Arg.(
      value & flag
      & info [ "full" ]
          ~doc:"Bench the full budgets instead of the quick ones (slow).")
  in
  let gate_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "gate" ] ~docv:"BASELINE"
          ~doc:
            "Compare this run's interp/compiled microbench speedup against \
             $(docv) (a committed BENCH json, e.g. bench/BASELINE.json) and \
             fail if it fell below 0.8x the baseline's — the CI throughput \
             gate.  Requires the $(b,microbench) experiment to be benched.")
  in
  (* The speedup the gate watches: wall-clock of the microbench's
     interp cell over its compiled cell.  A ratio of two timings from
     the same run, so it transfers across machines — the committed
     baseline doesn't go stale when CI hardware changes. *)
  let micro_speedup what (t : Telemetry.Bench.t) =
    match
      List.find_opt
        (fun (e : Telemetry.Bench.experiment) -> e.id = "microbench")
        t.experiments
    with
    | None -> Error (what ^ " has no microbench experiment")
    | Some e -> (
        let sec prefix =
          List.find_opt
            (fun (c : Telemetry.Bench.cell) ->
              String.starts_with ~prefix c.label)
            e.cells
          |> Option.map (fun (c : Telemetry.Bench.cell) -> c.seconds)
        in
        match (sec "interp:", sec "compiled:") with
        | Some i, Some c when c > 0. -> Ok (i /. c)
        | _ -> Error (what ^ " is missing the microbench interp/compiled cells"))
  in
  let run ids seed repeat full no_progress out gate preflight =
    if repeat < 1 then `Error (false, "--repeat must be at least 1")
    else
      match run_preflight preflight with
      | Error msg -> `Error (false, msg)
      | Ok () -> (
      match Experiments.Exp.select ids with
      | Error msg -> `Error (false, msg ^ "; try `repro list`")
      | Ok exps ->
          let budget = Experiments.Exp.budget ~quick:(not full) ~seed () in
          let protocol =
            { Experiments.Stepbench.warmup = (if repeat > 1 then 1 else 0);
              repeat }
          in
          let time_cell work =
            (Experiments.Stepbench.measure ~clock:now ~protocol work)
              .Experiments.Stepbench.median
          in
          let progress fmt =
            Printf.ksprintf
              (fun s -> if not no_progress then Printf.eprintf "%s%!" s)
              fmt
          in
          let experiments =
            List.map
              (fun (e : Experiments.Exp.t) ->
                let cells =
                  List.map
                    (fun (label, work) ->
                      let seconds = time_cell work in
                      progress "  [%s] %s: %.3fs\n" e.id label seconds;
                      { Telemetry.Bench.label; seconds })
                    (Experiments.Plan.thunks (e.plan budget))
                in
                let total =
                  List.fold_left
                    (fun acc (c : Telemetry.Bench.cell) -> acc +. c.seconds)
                    0. cells
                in
                progress "[%s] %d cell(s), %.2fs\n" e.id (List.length cells)
                  total;
                { Telemetry.Bench.id = e.id; title = e.title; cells; total })
              exps
          in
          let doc =
            Telemetry.Bench.make ~quick:(not full) ~seed ~repeat experiments
          in
          let file =
            match out with
            | Some f -> f
            | None -> Telemetry.Bench.default_filename doc
          in
          (match Telemetry.Bench.write ~file doc with
          | exception Sys_error msg ->
              `Error (false, "cannot write bench JSON: " ^ msg)
          | () -> (
              Printf.eprintf "bench: %d experiment(s), %.2fs total -> %s\n%!"
                (List.length experiments)
                (Telemetry.Bench.total doc)
                file;
              match gate with
              | None -> `Ok ()
              | Some baseline_file -> (
                  match
                    ( Telemetry.Bench.load ~file:baseline_file,
                      micro_speedup "this run" doc )
                  with
                  | Error msg, _ -> `Error (false, "--gate: " ^ msg)
                  | _, Error msg -> `Error (false, "--gate: " ^ msg)
                  | Ok baseline, Ok current -> (
                      match micro_speedup "baseline" baseline with
                      | Error msg -> `Error (false, "--gate: " ^ msg)
                      | Ok base ->
                          let floor = 0.8 *. base in
                          Printf.printf
                            "gate: microbench speedup %.2fx vs baseline %.2fx \
                             (floor %.2fx): %s\n"
                            current base floor
                            (if current >= floor then "OK" else "FAIL");
                          if current >= floor then `Ok () else exit 1)))))
  in
  Cmd.v (Cmd.info "bench" ~doc)
    Term.(
      ret
        (const run $ ids_arg $ seed_arg $ repeat_arg $ full_flag
       $ progress_flag $ out_arg $ gate_arg $ preflight_arg))

(* Arguments shared by `repro check` and `repro chaos`. *)

let structures_arg =
  Arg.(
    value & opt string "stock"
    & info [ "structures" ] ~docv:"NAMES"
        ~doc:
          "Comma-separated structure names, or $(b,stock) (all correct \
           structures, the default) or $(b,all) (including the seeded-bug \
           variants, for --expect-bug drills).")

let n_arg =
  Arg.(
    value & opt int 3
    & info [ "n"; "procs" ] ~docv:"N"
        ~doc:"Processes per explored/fuzzed run (default 3).")

let ops_arg =
  Arg.(
    value & opt int 2
    & info [ "ops" ] ~docv:"K"
        ~doc:
          "Operations per process (default 2; n*ops is capped at 62 by the \
           linearizability checker).")

let expect_bug_flag =
  Arg.(
    value & flag
    & info [ "expect-bug" ]
        ~doc:
          "Invert the exit status: succeed only if at least one violation \
           was found (drill mode for the seeded-bug variants).")

let replay_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ] ~docv:"SCHEDULE"
        ~doc:
          "Replay one comma-separated schedule (as printed by a violation \
           report) against the single structure named in --structures and \
           print its verdict.")

let mix_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "mix-seed" ] ~docv:"N"
        ~doc:
          "Operation-mix seed for --replay (violation reports state the one \
           they used; default: the deterministic role-based mix).")

let parse_structures s =
  match s with
  | "stock" -> Ok Scu.Checkable.stock
  | "all" -> Ok Scu.Checkable.all
  | names -> (
      try
        Ok
          (List.map Scu.Checkable.find
             (List.filter (fun x -> x <> "") (String.split_on_char ',' names)))
      with Invalid_argument msg -> Error msg)

(* `repro check`: schedule exploration (bounded exhaustive
   interleavings), schedule fuzzing (random + adversarial, with
   shrinking) and statistical conformance gates, over the structures
   packaged in Scu.Checkable.  Any reported schedule replays
   byte-for-byte with --replay. *)
let check_cmd =
  let doc =
    "Check the runtime structures: explore interleavings exhaustively, fuzz \
     schedules with shrinking, and gate the Markov-chain predictions \
     statistically."
  in
  let mode_arg =
    Arg.(
      value
      & opt string "explore,fuzz,conform"
      & info [ "mode" ] ~docv:"MODES"
          ~doc:
            "Comma-separated subset of $(b,explore), $(b,fuzz), $(b,conform) \
             (default: all three).")
  in
  let long_flag = Flags.long in
  let crash_arg =
    Arg.(
      value & opt string ""
      & info [ "crash" ] ~docv:"T:P[,T:P...]"
          ~doc:"Crash plan for --replay: process P crashes at time T.")
  in
  let tail_arg =
    Arg.(
      value & opt string "stop"
      & info [ "tail" ] ~docv:"MODE"
          ~doc:
            "What --replay does after the schedule runs out: $(b,stop) (the \
             explorer's frontier semantics, default) or $(b,round-robin) \
             (run to completion, the fuzzer's semantics).")
  in
  let check_out_arg = Flags.artifact_dir in
  let parse_crash s =
    if s = "" then Ok []
    else
      (* Catch only the parse failures ([int_of_string] raises
         [Failure]); a catch-all here once swallowed unrelated
         exceptions into the same "bad spec" message.  Name the
         offending T:P component, not just the whole spec. *)
      try
        Ok
          (List.map
             (fun part ->
               match String.split_on_char ':' part with
               | [ t; p ] -> (int_of_string t, int_of_string p)
               | _ -> failwith "not of the form T:P")
             (String.split_on_char ',' s))
      with Failure _ | Invalid_argument _ ->
        let bad =
          List.find_opt
            (fun part ->
              match String.split_on_char ':' part with
              | [ t; p ] -> (
                  match (int_of_string_opt t, int_of_string_opt p) with
                  | Some _, Some _ -> false
                  | _ -> true)
              | _ -> true)
            (String.split_on_char ',' s)
        in
        Error
          (Printf.sprintf "bad --crash spec %S: component %S is not T:P (two integers)"
             s
             (Option.value bad ~default:s))
  in
  let run mode structures n ops seed long expect_bug replay mix crash tail out
      =
    let modes = String.split_on_char ',' mode in
    let bad_modes =
      List.filter
        (fun m -> not (List.mem m [ "explore"; "fuzz"; "conform" ]))
        modes
    in
    match (parse_structures structures, parse_crash crash) with
    | Error msg, _ | _, Error msg -> `Error (false, msg)
    | Ok _, _ when bad_modes <> [] ->
        `Error (false, "unknown --mode: " ^ String.concat "," bad_modes)
    | Ok _, _ when n < 1 || ops < 1 || n * ops > 62 ->
        `Error (false, "need n >= 1, ops >= 1 and n*ops <= 62")
    | Ok structs, Ok crash_events -> (
        match
          Sched.Crash_plan.validate ~n (Sched.Crash_plan.of_list crash_events)
        with
        | Error msg -> `Error (false, "--crash: " ^ msg)
        | Ok () ->
        let violations = ref 0 in
        let gates_failed = ref 0 in
        let artifact_id = ref 0 in
        let write_artifact ~structure ~source ~mix_seed ~tail ~crash_plan
            ~verdict schedule =
          Option.iter
            (fun dir ->
              Telemetry.Fsutil.mkdir_p dir;
              incr artifact_id;
              let path =
                Filename.concat dir
                  (Printf.sprintf "%s-%s-%d.txt" structure source !artifact_id)
              in
              let oc = open_out path in
              Printf.fprintf oc
                "structure: %s\nsource: %s\nn: %d\nops: %d\nmix-seed: %s\n\
                 crash: %s\ntail: %s\nschedule: %s\n\n%s\n"
                structure source n ops
                (match mix_seed with
                | None -> "-"
                | Some s -> string_of_int s)
                (String.concat ","
                   (List.map
                      (fun (t, p) -> Printf.sprintf "%d:%d" t p)
                      crash_plan))
                tail
                (Sched.Scheduler.replay_to_string schedule)
                verdict;
              close_out oc;
              Printf.eprintf "wrote %s\n%!" path)
            out
        in
        let report_violation ~structure ~source ~mix_seed ~tail ~crash_plan
            ~verdict schedule =
          incr violations;
          Printf.printf "VIOLATION [%s/%s]\n  schedule: %s\n  %s\n" structure
            source
            (Sched.Scheduler.replay_to_string schedule)
            verdict;
          Printf.printf
            "  replay: repro check --structures %s -n %d --ops %d --replay %s \
             --tail %s%s\n"
            structure n ops
            (Sched.Scheduler.replay_to_string schedule)
            tail
            (match mix_seed with
            | None -> ""
            | Some s -> Printf.sprintf " --mix-seed %d" s);
          write_artifact ~structure ~source ~mix_seed ~tail ~crash_plan
            ~verdict schedule
        in
        (* Both paths below construct a Scenario.t and route through
           Scenario.run; all printing happens in the event callback so
           the stdout of historical invocations stays byte-identical
           (pinned by the golden CLI tests). *)
        let names =
          List.map (fun (s : Scu.Checkable.t) -> s.name) structs
        in
        match replay with
        | Some sched_string -> (
            match structs with
            | [ structure ] ->
                let schedule =
                  Sched.Scheduler.replay_of_string sched_string
                in
                let tail_mode =
                  if tail = "round-robin" then Check.Schedule.Round_robin
                  else Check.Schedule.Stop
                in
                let scn =
                  Scenario.make ~n ~ops ~seed ?mix_seed:mix
                    ~faults:
                      {
                        Sched.Fault_plan.base =
                          Sched.Fault_plan.of_crash_plan
                            (Sched.Crash_plan.of_list crash_events);
                        rates = Sched.Fault_plan.zero_rates;
                      }
                    ~sources:
                      [ Scenario.Replay { schedule; tail = tail_mode } ]
                    ~gates:[ Scenario.Lin ]
                    ~structures:[ structure.Scu.Checkable.name ]
                    ()
                in
                let bad = ref false in
                let on_event = function
                  | Scenario.Replay_done { structure; outcome } ->
                      Printf.printf "%s: %s\n  effective schedule: %s\n"
                        structure
                        (Check.Schedule.verdict_to_string outcome.verdict)
                        (Sched.Scheduler.replay_to_string outcome.executed);
                      bad := Check.Schedule.is_bad outcome.verdict
                  | _ -> ()
                in
                ignore (Scenario.run ~on_event ~now scn : Scenario.outcome);
                if !bad = expect_bug then `Ok ()
                else exit 1
            | _ -> `Error (false, "--replay needs exactly one --structures name"))
        | None ->
            let sources =
              (if List.mem "explore" modes then [ Scenario.Explore ] else [])
              @ if List.mem "fuzz" modes then [ Scenario.Fuzz ] else []
            in
            let gates =
              Scenario.Lin
              :: (if List.mem "conform" modes then [ Scenario.Conform ]
                  else [])
            in
            let budget =
              {
                Scenario.explore_nodes = (if long then 500_000 else 20_000);
                explore_depth = (if long then 128 else 64);
                fuzz_trials = (if long then 3_000 else 300);
                sched_trials = (if long then 16 else 4);
                chaos_trials = Check.Chaos.default.trials;
                long_conform = long;
              }
            in
            let scn =
              Scenario.make ~n ~ops ~seed
                ~faults:
                  {
                    Sched.Fault_plan.base = Sched.Fault_plan.none;
                    rates = Sched.Fault_plan.zero_rates;
                  }
                ~sources ~gates ~budget ~structures:names ()
            in
            let on_event = function
              | Scenario.Explore_done { structure; report = r; elapsed } ->
                  Printf.printf
                    "[explore] %-14s nodes=%d terminals=%d pruned=%d+%d \
                     violations=%d exhausted=%b (%.2fs)\n"
                    structure r.nodes r.terminals r.pruned_by_state
                    r.pruned_by_sleep
                    (List.length r.violations)
                    r.exhausted elapsed;
                  List.iteri
                    (fun i (v : Check.Explore.violation) ->
                      if i < 3 then
                        report_violation ~structure ~source:"explore"
                          ~mix_seed:None ~tail:"stop" ~crash_plan:[]
                          ~verdict:(Check.Schedule.verdict_to_string v.verdict)
                          v.schedule
                      else incr violations)
                    r.violations
              | Scenario.Fuzz_done { structure; report = r; elapsed } ->
                  Printf.printf "[fuzz]    %-14s trials=%d failures=%d (%.2fs)\n"
                    structure r.trials
                    (List.length r.failures)
                    elapsed;
                  if r.failures <> [] then
                    Printf.printf "  seed: %d (re-run with --seed %d)\n" seed
                      seed;
                  List.iter
                    (fun (f : Check.Fuzz.failure) ->
                      report_violation ~structure:f.structure ~source:f.source
                        ~mix_seed:f.mix_seed
                        ~tail:
                          (if f.source = "qcheck" then "round-robin"
                           else "stop")
                        ~crash_plan:f.crash_plan ~verdict:f.verdict f.schedule)
                    r.failures
              | Scenario.Conform_done { report = r; elapsed } ->
                  List.iter
                    (fun (g : Check.Conform.gate) ->
                      if not g.passed then incr gates_failed;
                      Printf.printf "[conform] %s %-24s %s\n"
                        (if g.passed then "PASS" else "FAIL")
                        g.name g.detail)
                    r.gates;
                  Printf.printf "[conform] %s in %.1fs (seed %d)\n"
                    (if r.passed then "all gates passed" else "GATES FAILED")
                    elapsed seed
              | _ -> ()
            in
            ignore (Scenario.run ~on_event ~now scn : Scenario.outcome);
            let ok =
              if expect_bug then !violations > 0
              else !violations = 0 && !gates_failed = 0
            in
            Printf.printf "check: %d violation(s), %d failed gate(s)%s\n"
              !violations !gates_failed
              (if expect_bug then " (expecting a bug)" else "");
            if ok then `Ok () else exit 1)
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      ret
        (const run $ mode_arg $ structures_arg $ n_arg $ ops_arg $ seed_arg
       $ long_flag $ expect_bug_flag $ replay_arg $ mix_arg $ crash_arg
       $ tail_arg $ check_out_arg))

(* `repro chaos`: the chaos layer's CLI.  Phase 1 fuzzes the checkable
   structures under randomly instantiated fault plans (crash–recovery,
   stall windows, spurious CAS failure) with two-axis shrinking; phase
   2 renders the graceful-degradation sweep (experiment `chaos`, with
   its fault-free thm4/cor2 anchor rows).  Stdout carries only
   deterministic content — violation reports and tables — so two runs
   with the same --seed and --faults are byte-identical; timings and
   file paths go to stderr.  Exit 1 on any violation (inverted by
   --expect-bug). *)
let chaos_cmd =
  let doc =
    "Chaos drills: fuzz the structures under random fault plans \
     (crash-recovery, stalls, spurious CAS failure) and run the \
     graceful-degradation sweep."
  in
  let faults_arg =
    Arg.(
      value & opt string ""
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Fault spec: comma-separated explicit events $(b,crash@T:P), \
             $(b,restart@T:P), $(b,stall@T:P+D), $(b,casfail:P=R) (P may be \
             $(b,*)) and/or rates $(b,crash~R), $(b,recover~R), \
             $(b,stall~R:D), $(b,casfail~R); $(b,none) is the empty spec.  \
             Default: the mixed drill \
             crash~0.01,recover~0.05,stall~0.01:5,casfail~0.1.")
  in
  let trials_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "trials" ] ~docv:"N"
          ~doc:
            "Fuzz trials per structure (default 60, or 15 with --quick).")
  in
  let no_sweep_flag =
    Arg.(
      value & flag
      & info [ "no-sweep" ]
          ~doc:
            "Skip the graceful-degradation sweep (experiment `chaos`) after \
             the fuzz phase.")
  in
  let chaos_out_arg = Flags.artifact_dir in
  let run faults structures n ops seed trials quick expect_bug no_sweep
      no_manifest replay mix out =
    let spec_result =
      if faults = "" then Ok Check.Chaos.default_spec
      else Sched.Fault_plan.parse_spec faults
    in
    let trials =
      match trials with
      | Some t -> t
      | None ->
          if quick then Check.Chaos.default.trials / 4
          else Check.Chaos.default.trials
    in
    match (parse_structures structures, spec_result) with
    | Error msg, _ | _, Error msg -> `Error (false, msg)
    | Ok _, _ when n < 1 || ops < 1 || n * ops > 62 ->
        `Error (false, "need n >= 1, ops >= 1 and n*ops <= 62")
    | Ok _, _ when trials < 1 -> `Error (false, "--trials must be at least 1")
    | Ok structs, Ok spec -> (
        match Sched.Fault_plan.validate ~n spec.Sched.Fault_plan.base with
        | Error msg -> `Error (false, "--faults: " ^ msg)
        | Ok () -> (
            match replay with
            | Some sched_string -> (
                match structs with
                | [ structure ] ->
                    if spec.Sched.Fault_plan.rates <> Sched.Fault_plan.zero_rates
                    then
                      `Error
                        ( false,
                          "--replay needs an explicit fault plan (events and \
                           casfail:P=R entries only, no ~rates)" )
                    else begin
                      let schedule =
                        Sched.Scheduler.replay_of_string sched_string
                      in
                      let scn =
                        Scenario.make ~n ~ops ~seed ?mix_seed:mix ~faults:spec
                          ~sources:
                            [
                              Scenario.Replay
                                {
                                  schedule;
                                  tail = Check.Schedule.Round_robin;
                                };
                            ]
                          ~gates:[ Scenario.Lin ]
                          ~structures:[ structure.Scu.Checkable.name ]
                          ()
                      in
                      let bad = ref false in
                      let on_event = function
                        | Scenario.Replay_done { structure; outcome } ->
                            Printf.printf "%s: %s\n  effective schedule: %s\n"
                              structure
                              (Check.Schedule.verdict_to_string outcome.verdict)
                              (Sched.Scheduler.replay_to_string
                                 outcome.executed);
                            bad := Check.Schedule.is_bad outcome.verdict
                        | _ -> ()
                      in
                      ignore
                        (Scenario.run ~on_event ~now scn : Scenario.outcome);
                      if !bad = expect_bug then `Ok () else exit 1
                    end
                | _ ->
                    `Error (false, "--replay needs exactly one --structures name"))
            | None ->
                let config = { Check.Chaos.default with trials; seed } in
                let violations = ref 0 in
                let artifact_id = ref 0 in
                let manifest =
                  Telemetry.Manifest.create
                    ~command:(List.tl (Array.to_list Sys.argv))
                    ~ids:(if no_sweep then [] else [ "chaos" ])
                    ~quick ~seed ~jobs:1 ~cache_enabled:false ()
                in
                Telemetry.Manifest.set_faults manifest
                  (Sched.Fault_plan.spec_to_string spec);
                let spec_of (f : Check.Chaos.failure) =
                  if f.fault_spec = "" then "none" else f.fault_spec
                in
                let write_artifact (f : Check.Chaos.failure) =
                  Option.iter
                    (fun dir ->
                      Telemetry.Fsutil.mkdir_p dir;
                      incr artifact_id;
                      let path =
                        Filename.concat dir
                          (Printf.sprintf "%s-chaos-%d.txt" f.structure
                             !artifact_id)
                      in
                      let oc = open_out path in
                      Printf.fprintf oc
                        "structure: %s\nsource: chaos\nn: %d\nops: %d\n\
                         mix-seed: %d\nfaults: %s\ntail: round-robin\n\
                         schedule: %s\n\n%s\n"
                        f.structure n ops f.mix_seed (spec_of f) f.replay
                        f.verdict;
                      close_out oc;
                      Printf.eprintf "wrote %s\n%!" path)
                    out
                in
                let t0 = now () in
                let scn =
                  Scenario.make ~n ~ops ~seed ~faults:spec
                    ~sources:[ Scenario.Chaos ]
                    ~gates:[ Scenario.Lin ]
                    ~budget:
                      {
                        Scenario.standard.budget with
                        chaos_trials = config.trials;
                      }
                    ~structures:
                      (List.map (fun (s : Scu.Checkable.t) -> s.name) structs)
                    ()
                in
                let on_event = function
                  | Scenario.Chaos_done { structure; report = r; elapsed } ->
                      Printf.printf "[chaos]   %-14s trials=%d failures=%d\n"
                        structure r.trials
                        (List.length r.failures);
                      Printf.eprintf "  [chaos] %s: %.2fs\n%!" structure
                        elapsed;
                      List.iter
                        (fun (f : Check.Chaos.failure) ->
                          incr violations;
                          Printf.printf
                            "VIOLATION [%s/chaos]\n  schedule: %s\n  faults: \
                             %s\n\
                            \  %s\n"
                            f.structure f.replay (spec_of f) f.verdict;
                          Printf.printf
                            "  replay: repro chaos --structures %s -n %d \
                             --ops %d --replay %s --faults %s --mix-seed %d \
                             --no-sweep\n"
                            f.structure n ops f.replay (spec_of f) f.mix_seed;
                          write_artifact f)
                        r.failures
                  | _ -> ()
                in
                ignore (Scenario.run ~on_event ~now scn : Scenario.outcome);
                if not no_sweep then begin
                  match Experiments.Exp.find "chaos" with
                  | None -> ()
                  | Some e ->
                      let budget = Experiments.Exp.budget ~quick ~seed () in
                      let t1 = now () in
                      let table = Experiments.Exp.table ~budget e in
                      Telemetry.Manifest.record_experiment manifest ~id:e.id
                        ~title:e.title ~elapsed:(now () -. t1);
                      print_string (Experiments.Exp.render_table e table);
                      print_newline ()
                end;
                Telemetry.Manifest.set_elapsed manifest (now () -. t0);
                if not no_manifest then begin
                  match Telemetry.Manifest.write ~dir:runs_dir manifest with
                  | path -> Printf.eprintf "manifest: %s\n%!" path
                  | exception Sys_error msg ->
                      Printf.eprintf "manifest: skipped (%s)\n%!" msg
                end;
                let ok =
                  if expect_bug then !violations > 0 else !violations = 0
                in
                Printf.printf "chaos: %d violation(s) across %d structure(s)%s\n"
                  !violations (List.length structs)
                  (if expect_bug then " (expecting a bug)" else "");
                if ok then `Ok () else exit 1))
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      ret
        (const run $ faults_arg $ structures_arg $ n_arg $ ops_arg $ seed_arg
       $ trials_arg $ quick $ expect_bug_flag $ no_sweep_flag
       $ no_manifest_flag $ replay_arg $ mix_arg $ chaos_out_arg))

(* `repro scenario`: the scenario DSL's own CLI — named presets
   (quick/standard/century/chaos), the --spec grammar, and flag
   overrides on top of either.  Unlike `check`/`chaos` (whose stdout
   is frozen for compatibility), this command owns its format:
   progress lines per (source, structure), VIOLATION blocks with a
   self-contained `repro scenario --spec` reproduction command, and
   --out artifacts that embed the failing scenario spec. *)
let scenario_cmd =
  let doc =
    "Run a declarative scenario: a named preset (quick, standard, century, \
     chaos) or a --spec grammar value, over any of the checkable structures, \
     with the shadow-state gate on by default."
  in
  let preset_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "preset" ] ~docv:"NAME"
          ~doc:
            "Named scenario preset: $(b,quick) (explore+fuzz, fault-free), \
             $(b,standard) (adds the chaos source at mild fault rates), \
             $(b,century) (large budgets, rare-event rates, conform gate) or \
             $(b,chaos) (heavy mixed fault drill).  Default: standard.")
  in
  let spec_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "spec" ] ~docv:"SPEC"
          ~doc:
            "Full scenario spec in the `;`-separated key=value grammar (see \
             repro scenario --list for each preset's canonical form); \
             $(b,preset=NAME) as the first field selects the base the \
             remaining fields override.  Mutually exclusive with --preset.")
  in
  let structures_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "structures" ] ~docv:"NAMES"
          ~doc:
            "Override the scenario's structures: comma-separated names, \
             $(b,stock) or $(b,all).")
  in
  let n_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "n"; "procs" ] ~docv:"N" ~doc:"Override processes per run.")
  in
  let ops_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "ops" ] ~docv:"K" ~doc:"Override operations per process.")
  in
  let seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"N" ~doc:"Override the scenario seed.")
  in
  let list_flag =
    Arg.(
      value & flag
      & info [ "list" ]
          ~doc:"List the named presets as canonical --spec values and exit.")
  in
  let print_flag =
    Arg.(
      value & flag
      & info [ "print" ]
          ~doc:
            "Print the resolved scenario's canonical --spec value and exit \
             without running it.")
  in
  let out_arg = Flags.artifact_dir in
  (* A failure's one-shot reproduction scenario: same workload, the
     failure's own mix seed, its shrunk fault plan (explicit events
     only) plus any crash plan, a fixed replay source, and both
     history gates. *)
  let replay_scenario (scn : Scenario.t) (f : Scenario.failure) =
    let faults =
      let of_events =
        match Sched.Fault_plan.parse_spec f.fault_spec with
        | Ok s -> s
        | Error _ ->
            {
              Sched.Fault_plan.base = Sched.Fault_plan.none;
              rates = Sched.Fault_plan.zero_rates;
            }
      in
      {
        of_events with
        Sched.Fault_plan.base =
          Sched.Fault_plan.merge
            (Sched.Fault_plan.of_crash_events f.crash_plan)
            of_events.Sched.Fault_plan.base;
      }
    in
    Scenario.make ~n:scn.Scenario.n ~ops:scn.Scenario.ops
      ~seed:scn.Scenario.seed ?mix_seed:f.mix_seed ~faults
      ~sources:
        [
          Scenario.Replay
            {
              schedule = f.schedule;
              tail =
                (if f.tail = "round-robin" then Check.Schedule.Round_robin
                 else Check.Schedule.Stop);
            };
        ]
      ~gates:[ Scenario.Lin; Scenario.Shadow ]
      ~structures:[ f.structure ] ()
  in
  let run preset spec structures n ops seed list print expect_bug out =
    if list then begin
      List.iter
        (fun (name, p) ->
          Printf.printf "%-10s %s\n" name (Scenario.to_string p))
        Scenario.presets;
      `Ok ()
    end
    else
      let base =
        match (preset, spec) with
        | Some _, Some _ -> Error "--preset and --spec are mutually exclusive"
        | Some name, None -> (
            match Scenario.preset name with
            | Some p -> Ok p
            | None ->
                Error
                  (Printf.sprintf "unknown --preset %S (known: %s)" name
                     (String.concat ", " (List.map fst Scenario.presets))))
        | None, Some s -> Scenario.parse s
        | None, None -> Ok Scenario.standard
      in
      let base =
        Result.bind base (fun b ->
            match structures with
            | None -> Ok b
            | Some s -> (
                match parse_structures s with
                | Ok structs ->
                    Ok
                      (Scenario.with_structures
                         (List.map
                            (fun (t : Scu.Checkable.t) -> t.name)
                            structs)
                         b)
                | Error msg -> Error msg))
      in
      match base with
      | Error msg -> `Error (false, msg)
      | Ok scn -> (
          let scn =
            scn
            |> Scenario.with_workload
                 ~n:(Option.value n ~default:scn.Scenario.n)
                 ~ops:(Option.value ops ~default:scn.Scenario.ops)
          in
          let scn =
            match seed with
            | None -> scn
            | Some s -> Scenario.with_seed s scn
          in
          match Scenario.validate scn with
          | Error msg -> `Error (false, msg)
          | Ok () ->
              if print then begin
                print_endline (Scenario.to_string scn);
                `Ok ()
              end
              else begin
                Printf.printf "scenario: %s\n" (Scenario.to_string scn);
                let gates_failed = ref 0 in
                let on_event = function
                  | Scenario.Explore_done { structure; report = r; elapsed }
                    ->
                      Printf.printf
                        "[explore] %-18s nodes=%d terminals=%d \
                         violations=%d exhausted=%b (%.2fs)\n"
                        structure r.nodes r.terminals
                        (List.length r.violations)
                        r.exhausted elapsed
                  | Scenario.Fuzz_done { structure; report = r; elapsed } ->
                      Printf.printf
                        "[fuzz]    %-18s trials=%d failures=%d (%.2fs)\n"
                        structure r.trials
                        (List.length r.failures)
                        elapsed
                  | Scenario.Chaos_done { structure; report = r; elapsed } ->
                      Printf.printf
                        "[chaos]   %-18s trials=%d failures=%d (%.2fs)\n"
                        structure r.trials
                        (List.length r.failures)
                        elapsed
                  | Scenario.Replay_done { structure; outcome } ->
                      Printf.printf "[replay]  %-18s %s\n" structure
                        (Check.Schedule.verdict_to_string outcome.verdict)
                  | Scenario.Load_done
                      { structure; completed; verdict; elapsed } ->
                      Printf.printf
                        "[load]    %-18s completed=%d %s (%.2fs)\n" structure
                        completed
                        (Check.Schedule.verdict_to_string verdict)
                        elapsed
                  | Scenario.Conform_done { report = r; elapsed } ->
                      List.iter
                        (fun (g : Check.Conform.gate) ->
                          if not g.passed then incr gates_failed;
                          Printf.printf "[conform] %s %-24s %s\n"
                            (if g.passed then "PASS" else "FAIL")
                            g.name g.detail)
                        r.gates;
                      Printf.printf "[conform] %s in %.1fs\n"
                        (if r.passed then "all gates passed"
                         else "GATES FAILED")
                        elapsed
                in
                let outcome = Scenario.run ~on_event ~now scn in
                let artifact_id = ref 0 in
                List.iter
                  (fun (f : Scenario.failure) ->
                    let repro_spec = Scenario.to_string (replay_scenario scn f) in
                    Printf.printf "VIOLATION [%s/%s]\n  schedule: %s\n  %s\n"
                      f.structure f.source f.replay f.verdict;
                    Printf.printf "  replay: repro scenario --spec '%s'\n"
                      repro_spec;
                    Option.iter
                      (fun dir ->
                        Telemetry.Fsutil.mkdir_p dir;
                        incr artifact_id;
                        let path =
                          Filename.concat dir
                            (Printf.sprintf "%s-%s-%d.scenario" f.structure
                               f.source !artifact_id)
                        in
                        let oc = open_out path in
                        Printf.fprintf oc
                          "spec: %s\nreplay-spec: %s\nstructure: %s\n\
                           source: %s\nschedule: %s\nfaults: %s\nmix-seed: \
                           %s\ntail: %s\n\n%s\n"
                          (Scenario.to_string scn)
                          repro_spec f.structure f.source f.replay
                          (if f.fault_spec = "" then "none" else f.fault_spec)
                          (match f.mix_seed with
                          | None -> "-"
                          | Some m -> string_of_int m)
                          f.tail f.verdict;
                        close_out oc;
                        Printf.eprintf "wrote %s\n%!" path)
                      out)
                  outcome.failures;
                let violations = List.length outcome.failures in
                let ok =
                  if expect_bug then violations > 0
                  else violations = 0 && !gates_failed = 0
                in
                Printf.printf
                  "scenario: %d violation(s), %d failed gate(s) across %d \
                   trial(s)%s\n"
                  violations !gates_failed outcome.trials
                  (if expect_bug then " (expecting a bug)" else "");
                if ok then `Ok () else exit 1
              end)
  in
  Cmd.v (Cmd.info "scenario" ~doc)
    Term.(
      ret
        (const run $ preset_arg $ spec_arg $ structures_arg $ n_arg $ ops_arg
       $ seed_arg $ list_flag $ print_flag $ expect_bug_flag $ out_arg))

(* `repro load` / `repro serve`: the live SCU service and its load
   generator.  Millions of simulated client sessions are multiplexed
   over sharded server simulations (one executor run per shard, fanned
   over the domain pool); latency is measured in simulated steps, so
   stdout and the --out manifest depend only on the configuration and
   seed — never on the pool size or wall clock.  `load` is one batch
   run (optionally with the SLO n-sweep gates); `serve` is a windowed
   soak emitting one JSONL manifest line per window. *)
module Load_cli = struct
  let structures_arg =
    Arg.(
      value & opt string "counter"
      & info [ "structure"; "structures" ] ~docv:"NAMES"
          ~doc:
            "Comma-separated structure zoo: $(b,counter), $(b,treiber), \
             $(b,msqueue), $(b,elimination-stack), $(b,waitfree-counter), or \
             $(b,all).  Clients round-robin over the zoo.")

  let clients_arg =
    Arg.(
      value & opt int 100_000
      & info [ "clients" ] ~docv:"N"
          ~doc:"Total simulated client sessions (default 100000).")

  let ops_arg =
    Arg.(
      value & opt int 1
      & info [ "ops" ] ~docv:"K" ~doc:"Requests per client session (default 1).")

  let workers_arg =
    Arg.(
      value & opt int 8
      & info [ "workers" ] ~docv:"N"
          ~doc:"Server processes per shard (default 8).")

  let shards_arg =
    Arg.(
      value & opt int 8
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Independent server shards; client c belongs to shard c mod N \
             (default 8).  The result does not depend on how shards are \
             scheduled over the pool.")

  let mode_arg =
    Arg.(
      value & opt string "closed"
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "$(b,closed) (think-time loop, at most one outstanding request \
             per client; default) or $(b,open) (arrivals at the sampled rate \
             regardless of service — the queue may build without bound).")

  let think_arg =
    Arg.(
      value & opt float 0.
      & info [ "think" ] ~docv:"STEPS"
          ~doc:
            "Closed loop: mean think time in steps between a completion and \
             the client's next request (exponential; default 0).")

  let arrival_arg =
    Arg.(
      value & opt string "poisson"
      & info [ "arrival" ] ~docv:"KIND"
          ~doc:
            "Open loop arrival process: $(b,poisson) (default) or $(b,bursty) \
             (on/off bursts).")

  let rate_arg =
    Arg.(
      value & opt float 0.02
      & info [ "rate" ] ~docv:"R"
          ~doc:
            "Open loop: per-client arrival rate in requests per step \
             (default 0.02).")

  let burst_arg =
    Arg.(
      value & opt int 8
      & info [ "burst" ] ~docv:"N"
          ~doc:"Bursty arrivals: requests per burst (default 8).")

  let idle_arg =
    Arg.(
      value & opt float 200.
      & info [ "idle" ] ~docv:"STEPS"
          ~doc:"Bursty arrivals: mean idle gap between bursts (default 200).")

  let alpha_arg =
    Arg.(
      value & opt float 1.1
      & info [ "alpha" ] ~docv:"A"
          ~doc:
            "Zipf popularity exponent over the objects (0 = uniform; default \
             1.1).")

  let objects_arg =
    Arg.(
      value & opt int 64
      & info [ "objects" ] ~docv:"N"
          ~doc:"Object instances per structure kind per shard (default 64).")

  let out_arg =
    Flags.out ~docv:"FILE"
      ~doc:
        "Write the JSON manifest to $(docv) (atomic; `serve` appends one \
         compact JSONL line per window instead)."

  let faults_arg =
    Arg.(
      value & opt string ""
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Per-shard fault injection: a named tier ($(b,quick), \
             $(b,standard), $(b,century), $(b,chaos)) or a fault-plan spec \
             ($(b,crash@T:P), $(b,restart@T:P), $(b,stall@T:P+D), \
             $(b,casfail:P=R), $(b,crash~R), $(b,recover~R), $(b,stall~R:D), \
             $(b,casfail~R)).  Rates are instantiated per shard from the \
             seed; same seed, same faults, same bytes.")

  let deadline_arg =
    Arg.(
      value & opt int 0
      & info [ "deadline" ] ~docv:"STEPS"
          ~doc:
            "Per-request deadline in steps from each dispatch attempt's \
             arrival; an expired attempt retries (with budget) or resolves \
             timed-out.  0 (default) = no deadline.")

  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry budget per request after deadline expiry (default 0; \
             requires --deadline).")

  let backoff_arg =
    Arg.(
      value & opt int 16
      & info [ "backoff" ] ~docv:"STEPS"
          ~doc:
            "Retry backoff base: attempt a redispatches after base*2^(a-1) \
             steps plus deterministic seeded jitter (default 16).")

  let hedge_arg =
    Arg.(
      value & opt int 0
      & info [ "hedge" ] ~docv:"STEPS"
          ~doc:
            "Hedge a request still in flight after $(docv) steps with one \
             duplicate dispatch; first finisher wins.  0 (default) = never.")

  let max_steps_arg =
    Arg.(
      value & opt int Load.Engine.default.max_steps
      & info [ "max-steps" ] ~docv:"N"
          ~doc:
            "Per-shard step budget; a shard that hits it stops early and \
             drops its unresolved requests (default 200000000).")

  let parse_faults s =
    if s = "" || s = "none" then Ok Load.Engine.no_faults
    else
      match Sched.Fault_plan.tier_rates s with
      | Some rates -> Ok { Sched.Fault_plan.base = Sched.Fault_plan.none; rates }
      | None -> Sched.Fault_plan.parse_spec s

  let parse_kinds s =
    if s = "all" then Ok Load.Engine.all_kinds
    else
      let names = List.filter (fun x -> x <> "") (String.split_on_char ',' s) in
      if names = [] then Error "need at least one structure"
      else
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | n :: rest -> (
              match Load.Engine.kind_of_name n with
              | Ok k -> go (k :: acc) rest
              | Error msg -> Error msg)
        in
        go [] names

  let parse_mode ~mode ~think ~arrival ~rate ~burst ~idle =
    match mode with
    | "closed" -> Ok (Load.Workload.Closed { think })
    | "open" -> (
        match arrival with
        | "poisson" -> Ok (Load.Workload.Open (Poisson { rate }))
        | "bursty" -> Ok (Load.Workload.Open (Bursty { rate; burst; idle }))
        | a -> Error ("unknown --arrival: " ^ a))
    | m -> Error ("unknown --mode: " ^ m)

  let config ~structures ~clients ~ops ~workers ~shards ~mode ~think ~arrival
      ~rate ~burst ~idle ~alpha ~objects ~seed ~faults ~deadline ~retries
      ~backoff ~hedge ~max_steps =
    match
      ( parse_kinds structures,
        parse_mode ~mode ~think ~arrival ~rate ~burst ~idle,
        parse_faults faults )
    with
    | Error msg, _, _ | _, Error msg, _ | _, _, Error msg -> Error msg
    | Ok kinds, Ok mode, Ok faults -> (
        let policy =
          {
            Load.Policy.deadline = (if deadline > 0 then Some deadline else None);
            max_retries = retries;
            backoff_base = backoff;
            hedge_after = (if hedge > 0 then Some hedge else None);
          }
        in
        let cfg =
          {
            Load.Engine.kinds;
            objects;
            clients;
            ops_per_client = ops;
            workers;
            shards;
            mode;
            alpha;
            seed;
            max_steps;
            faults;
            policy;
          }
        in
        match Load.Engine.validate cfg with
        | Ok () -> Ok cfg
        | Error msg -> Error msg)
end

let load_cmd =
  let doc =
    "Hammer the simulated SCU service with a seeded load-generator batch and \
     report tail latencies (optionally gated against the O(n(q+s sqrt n)) \
     prediction)."
  in
  let slo_flag =
    Arg.(
      value & flag
      & info [ "slo" ]
          ~doc:
            "Also run the tail-latency SLO n-sweep for every SCU-classified \
             structure in the zoo and attach the gates to the report.")
  in
  let ns_arg =
    Arg.(
      value & opt string "2,4,8"
      & info [ "ns" ] ~docv:"N,N,..."
          ~doc:"Worker counts for the SLO sweep (ascending; default 2,4,8).")
  in
  let slo_requests_arg =
    Arg.(
      value & opt int 40_000
      & info [ "slo-requests" ] ~docv:"N"
          ~doc:"Approximate requests per SLO sweep cell (default 40000).")
  in
  let expect_pass_flag =
    Arg.(
      value & flag
      & info [ "expect-pass" ]
          ~doc:
            "Exit non-zero unless every SLO gate passed (requires --slo) — \
             the CI mode.")
  in
  let expect_degraded_flag =
    Arg.(
      value & flag
      & info [ "expect-degraded" ]
          ~doc:
            "Run the matched fault-free baseline alongside the faulted run \
             and gate throughput loss, p99/p999 inflation and drop rate \
             against the tier's degradation budgets (plus the Corollary 2 \
             crash cross-check); exit non-zero on any gate failure.  \
             Requires --faults with a named tier.")
  in
  let run structures clients ops workers shards mode think arrival rate burst
      idle alpha objects seed jobs no_progress out faults deadline retries
      backoff hedge max_steps slo ns slo_requests expect_pass expect_degraded =
    match
      Load_cli.config ~structures ~clients ~ops ~workers ~shards ~mode ~think
        ~arrival ~rate ~burst ~idle ~alpha ~objects ~seed ~faults ~deadline
        ~retries ~backoff ~hedge ~max_steps
    with
    | Error msg -> `Error (false, msg)
    | Ok _ when expect_pass && not slo ->
        `Error (false, "--expect-pass requires --slo")
    | Ok _ when expect_degraded && Load.Degrade.budgets_for_tier faults = None
      ->
        `Error
          ( false,
            "--expect-degraded requires --faults with a named tier (quick, \
             standard, century, chaos)" )
    | Ok cfg -> (
        (* Parse --ns eagerly and reject bad tokens by name.  The old
           code mapped any [Failure] to the empty list, so a typo like
           --ns 2,4,x was silently ignored without --slo and produced
           the misleading "needs at least two worker counts" with it. *)
        let ns_tokens =
          List.filter (fun x -> x <> "") (String.split_on_char ',' ns)
        in
        let bad_ns =
          List.find_opt
            (fun x -> Option.is_none (int_of_string_opt x))
            ns_tokens
        in
        match bad_ns with
        | Some tok ->
            `Error
              ( false,
                Printf.sprintf "--ns: %S is not an integer worker count" tok )
        | None ->
        let ns = List.map int_of_string ns_tokens in
        if slo && List.length ns < 2 then
          `Error (false, "--ns needs at least two worker counts")
        else if jobs < 1 then `Error (false, "-j must be at least 1")
        else if slo_requests < 1 then
          `Error (false, "--slo-requests must be positive")
        else begin
          let t0 = now () in
          let result, degrade_gates =
            Pool.with_pool ~size:jobs (fun pool ->
                if not expect_degraded then (Load.Engine.run ~pool cfg, None)
                else
                  match Load.Degrade.run ~pool ~tier:faults cfg with
                  | Error msg -> failwith msg
                  | Ok d ->
                      let crash =
                        if cfg.workers >= 2 then
                          Load.Degrade.crash_check ~pool
                            ~k:(max 1 (cfg.workers / 2))
                            cfg
                        else []
                      in
                      (d.faulted, Some (d.gates @ crash)))
          in
          if not no_progress then
            Printf.eprintf "[load] %d request(s) in %.2fs (j=%d)\n%!"
              result.requests (now () -. t0) jobs;
          let gates =
            if not slo then None
            else
              Some
                (List.concat_map
                   (fun kind ->
                     match Load.Slo.params_of_kind kind with
                     | None ->
                         [
                           Check.Conform.gate
                             ("slo-" ^ Load.Engine.kind_name kind
                            ^ "-unclassified")
                             true
                             "no SCU(q, s) classification (helping scan is \
                              Theta(n) per attempt); not gated";
                         ]
                     | Some _ ->
                         let t1 = now () in
                         let s =
                           Load.Slo.run ~ns
                             ~requests_per_point:slo_requests ~kind ~seed ()
                         in
                         if not no_progress then
                           Printf.eprintf "[slo] %s sweep in %.2fs\n%!"
                             (Load.Engine.kind_name kind)
                             (now () -. t1);
                         s.gates)
                   cfg.kinds)
          in
          let error_budget =
            if Load.Engine.is_robust cfg then
              Some (Load.Report.error_budget result)
            else None
          in
          let report =
            Load.Report.of_result ?slo:gates ?degrade:degrade_gates
              ?error_budget result
          in
          print_string (Load.Report.render report);
          Option.iter
            (fun file ->
              Telemetry.Load_report.write ~file report;
              Printf.eprintf "manifest: %s\n%!" file)
            out;
          let gates_failed =
            match gates with
            | None -> 0
            | Some gs ->
                List.length
                  (List.filter
                     (fun (g : Check.Conform.gate) -> not g.passed)
                     gs)
          in
          (match gates with
          | Some gs ->
              Printf.printf "load: %d SLO gate(s), %d failed\n"
                (List.length gs) gates_failed
          | None -> ());
          let degrade_failed =
            match degrade_gates with
            | None -> 0
            | Some gs ->
                List.length
                  (List.filter
                     (fun (g : Check.Conform.gate) -> not g.passed)
                     gs)
          in
          (match degrade_gates with
          | Some gs ->
              Printf.printf "load: %d degradation gate(s), %d failed\n"
                (List.length gs) degrade_failed
          | None -> ());
          (match Load.Engine.stopped_shards result with
          | [] -> ()
          | ids ->
              Printf.eprintf
                "load: shard%s %s stopped early at the step budget \
                 (--max-steps %d)\n\
                 %!"
                (if List.length ids = 1 then "" else "s")
                (String.concat "," (List.map string_of_int ids))
                cfg.max_steps;
              exit 1);
          if degrade_failed > 0 then exit 1;
          if expect_pass && gates_failed > 0 then exit 1;
          `Ok ()
        end)
  in
  Cmd.v (Cmd.info "load" ~doc)
    Term.(
      ret
        (const run $ Load_cli.structures_arg $ Load_cli.clients_arg
       $ Load_cli.ops_arg $ Load_cli.workers_arg $ Load_cli.shards_arg
       $ Load_cli.mode_arg $ Load_cli.think_arg $ Load_cli.arrival_arg
       $ Load_cli.rate_arg $ Load_cli.burst_arg $ Load_cli.idle_arg
       $ Load_cli.alpha_arg $ Load_cli.objects_arg $ seed_arg $ jobs_arg
       $ progress_flag $ Load_cli.out_arg $ Load_cli.faults_arg
       $ Load_cli.deadline_arg $ Load_cli.retries_arg $ Load_cli.backoff_arg
       $ Load_cli.hedge_arg $ Load_cli.max_steps_arg $ slo_flag $ ns_arg
       $ slo_requests_arg $ expect_pass_flag $ expect_degraded_flag))

let serve_cmd =
  let doc =
    "Run the SCU service as a windowed soak: consecutive seeded load windows \
     with one summary block and one JSONL manifest line per window."
  in
  let windows_arg =
    Arg.(
      value & opt int 5
      & info [ "windows" ] ~docv:"N"
          ~doc:"Load windows to serve (default 5); window w derives its seed \
                from the base seed and w.")
  in
  let slo_target_arg =
    Arg.(
      value & opt float 0.999
      & info [ "slo-target" ] ~docv:"A"
          ~doc:
            "Availability objective for the per-window error budget \
             (default 0.999).  A window burning more than 1x its budget is \
             degraded, more than 10x is breached; only reported for faulted \
             or policy-bearing runs.")
  in
  let run structures clients ops workers shards mode think arrival rate burst
      idle alpha objects seed jobs no_progress out faults deadline retries
      backoff hedge max_steps windows slo_target =
    match
      Load_cli.config ~structures ~clients ~ops ~workers ~shards ~mode ~think
        ~arrival ~rate ~burst ~idle ~alpha ~objects ~seed ~faults ~deadline
        ~retries ~backoff ~hedge ~max_steps
    with
    | Error msg -> `Error (false, msg)
    | Ok cfg ->
        if windows < 1 then `Error (false, "--windows must be at least 1")
        else if jobs < 1 then `Error (false, "-j must be at least 1")
        else if not (slo_target > 0. && slo_target < 1.) then
          `Error (false, "--slo-target must be strictly between 0 and 1")
        else begin
          let oc =
            Option.map
              (fun file ->
                (match Filename.dirname file with
                | "" | "." -> ()
                | dir -> Telemetry.Fsutil.mkdir_p dir);
                open_out file)
              out
          in
          let robust = Load.Engine.is_robust cfg in
          let ok_w = ref 0 and degraded_w = ref 0 and breached_w = ref 0 in
          let worst_burn = ref 0. in
          Pool.with_pool ~size:jobs (fun pool ->
              for w = 0 to windows - 1 do
                let t0 = now () in
                let cfg_w =
                  { cfg with Load.Engine.seed = Load.Workload.mix seed w }
                in
                let result = Load.Engine.run ~pool cfg_w in
                if not no_progress then
                  Printf.eprintf "[serve] window %d: %d request(s) in %.2fs\n%!"
                    w result.requests (now () -. t0);
                let error_budget =
                  if robust then begin
                    let eb =
                      Load.Report.error_budget ~target:slo_target result
                    in
                    (match eb.verdict with
                    | "ok" -> incr ok_w
                    | "degraded" -> incr degraded_w
                    | _ -> incr breached_w);
                    if eb.burn > !worst_burn then worst_burn := eb.burn;
                    Some eb
                  end
                  else None
                in
                let report =
                  Load.Report.of_result ~window:w ?error_budget result
                in
                print_string (Load.Report.render report);
                Option.iter
                  (fun oc ->
                    output_string oc
                      (Telemetry.Load_report.to_string ~compact:true report);
                    output_char oc '\n';
                    flush oc)
                  oc
              done);
          Option.iter close_out oc;
          Option.iter
            (fun file -> Printf.eprintf "manifest stream: %s\n%!" file)
            out;
          (* Soak verdict, only for runs that can burn budget: window
             counts by health plus the worst burn rate seen. *)
          if robust then
            Printf.printf
              "serve: %d window(s): ok=%d degraded=%d breached=%d \
               worst-burn=%.2f\n"
              windows !ok_w !degraded_w !breached_w !worst_burn;
          `Ok ()
        end
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      ret
        (const run $ Load_cli.structures_arg $ Load_cli.clients_arg
       $ Load_cli.ops_arg $ Load_cli.workers_arg $ Load_cli.shards_arg
       $ Load_cli.mode_arg $ Load_cli.think_arg $ Load_cli.arrival_arg
       $ Load_cli.rate_arg $ Load_cli.burst_arg $ Load_cli.idle_arg
       $ Load_cli.alpha_arg $ Load_cli.objects_arg $ seed_arg $ jobs_arg
       $ progress_flag $ Load_cli.out_arg $ Load_cli.faults_arg
       $ Load_cli.deadline_arg $ Load_cli.retries_arg $ Load_cli.backoff_arg
       $ Load_cli.hedge_arg $ Load_cli.max_steps_arg $ windows_arg
       $ slo_target_arg))

let main =
  let doc =
    "Reproduction harness for 'Are Lock-Free Concurrent Algorithms Practically \
     Wait-Free?' (Alistarh, Censor-Hillel, Shavit)"
  in
  Cmd.group
    (Cmd.info "repro" ~version:"1.0.0" ~doc)
    [
      list_cmd;
      run_cmd;
      bench_cmd;
      check_cmd;
      chaos_cmd;
      scenario_cmd;
      load_cmd;
      serve_cmd;
    ]

let () = exit (Cmd.eval main)
