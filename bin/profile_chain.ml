(* Quick profiling helper: stationary-solve timing for the system
   chain at various n (dense solve vs power iteration). *)
let time name f =
  let t0 = Pool.monotonic_now () in
  let v = f () in
  Printf.printf "%-24s %8.2fs  -> %.6f\n%!" name (Pool.monotonic_now () -. t0) v

let () =
  List.iter
    (fun n ->
      let t = Chains.Scu_chain.System.make ~n in
      time
        (Printf.sprintf "solve n=%d (%d states)" n t.chain.size)
        (fun () ->
          let pi = Markov.Stationary.solve t.chain in
          1. /. Markov.Stationary.success_rate t.chain ~pi
                  ~weight:(Chains.Scu_chain.System.any_success_weight t));
      time
        (Printf.sprintf "power n=%d" n)
        (fun () ->
          let pi = Markov.Stationary.power_iteration ~tol:1e-12 t.chain in
          1. /. Markov.Stationary.success_rate t.chain ~pi
                  ~weight:(Chains.Scu_chain.System.any_success_weight t)))
    [ 16; 32; 48; 64 ]
