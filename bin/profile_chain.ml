(* Quick profiling helper: stationary-solve timing for the system
   chain at various n (dense solve vs power iteration vs sparse
   Gauss–Seidel), plus the large-n sparse/mean-field comparison that
   sized the conformance gates. *)
let time name f =
  let t0 = Pool.monotonic_now () in
  let v = f () in
  Printf.printf "%-28s %8.2fs  -> %.6f\n%!" name (Pool.monotonic_now () -. t0) v;
  v

let () =
  List.iter
    (fun n ->
      let t = Chains.Scu_chain.System.make ~n in
      ignore
        (time
           (Printf.sprintf "solve n=%d (%d states)" n t.chain.size)
           (fun () ->
             let pi = Markov.Stationary.solve t.chain in
             1. /. Markov.Stationary.success_rate t.chain ~pi
                     ~weight:(Chains.Scu_chain.System.any_success_weight t)));
      ignore
        (time
           (Printf.sprintf "power n=%d" n)
           (fun () ->
             let pi = Markov.Stationary.power_iteration ~tol:1e-12 t.chain in
             1. /. Markov.Stationary.success_rate t.chain ~pi
                     ~weight:(Chains.Scu_chain.System.any_success_weight t))))
    [ 16; 32; 48; 64 ];
  Printf.printf "\n-- sparse Gauss-Seidel --\n%!";
  List.iter
    (fun n ->
      let sp = Chains.Scu_chain.System.sparse ~n in
      let stats = ref { Markov.Sparse.sweeps = 0; residual = 0. } in
      let w =
        time
          (Printf.sprintf "gs n=%d (%d states)" n sp.Markov.Sparse.size)
          (fun () ->
            let pi, st = Markov.Sparse.stationary_stats sp in
            stats := st;
            let nf = float_of_int n in
            let rate = ref 0. in
            Array.iteri
              (fun i p ->
                let a, b = Chains.Scu_chain.System.decode_index ~n i in
                rate := !rate +. (p *. (float_of_int (n - a - b) /. nf)))
              pi;
            1. /. !rate)
      in
      Printf.printf
        "    sweeps=%d residual=%.3g  W/sqrt(n)=%.4f  W/mf=%.4f (sqrt(pi/2)=%.4f)\n%!"
        !stats.Markov.Sparse.sweeps !stats.Markov.Sparse.residual
        (w /. sqrt (float_of_int n))
        (w /. Chains.Meanfield.latency_closed_form ~n)
        (sqrt (Float.pi /. 2.)))
    [ 16; 64; 128; 256; 450; 1000 ];
  Printf.printf "\n-- mean-field RK4 --\n%!";
  List.iter
    (fun n ->
      let w =
        time
          (Printf.sprintf "rk4 n=%d" n)
          (fun () -> Chains.Meanfield.latency ~n ())
      in
      Printf.printf "    closed form sqrt(2n)=%.6f  rel err=%.3g\n%!"
        (Chains.Meanfield.latency_closed_form ~n)
        (Float.abs (w -. Chains.Meanfield.latency_closed_form ~n)
        /. Chains.Meanfield.latency_closed_form ~n))
    [ 64; 1000; 10_000; 100_000; 1_000_000 ]
