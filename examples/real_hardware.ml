(* The paper's Appendix A/B methodology on real hardware (OCaml 5
   domains + Atomic):

   1. record a schedule with the atomic fetch-and-increment ticketing
      method and print the Figure 3/4 statistics;
   2. measure the completion rate of a real CAS counter (Figure 5's
      y-axis) and compare with the paper's Theta(1/sqrt n) model.

     dune exec examples/real_hardware.exe

   Note: on a machine with fewer cores than domains the OS time-slices
   them, so the local (Figure 4) statistics are run-biased even though
   the long-run (Figure 3) shares are fair — see EXPERIMENTS.md. *)

open Core

let () =
  let domains = 4 in
  Printf.printf "recommended_domain_count = %d\n\n" (Domain.recommended_domain_count ());

  (* Figure 3/4: schedule recording. *)
  let trace = Runtime.Recorder.record ~domains ~steps_per_domain:25_000 in
  Printf.printf "Recorded %d steps from %d domains.\n" (Sched.Trace.length trace) domains;
  let shares = Sched.Trace.step_shares trace in
  Printf.printf "Figure 3 (long-run shares)   :";
  Array.iter (fun s -> Printf.printf " %5.1f%%" (100. *. s)) shares;
  print_newline ();
  let succ = Sched.Trace.next_step_distribution trace ~after:0 in
  Printf.printf "Figure 4 (after a d0 step)   :";
  Array.iter (fun s -> Printf.printf " %5.1f%%" (100. *. s)) succ;
  print_newline ();
  Printf.printf "Longest gap without d0       : %d steps\n\n"
    (Sched.Trace.max_gap trace ~proc:0);

  (* Figure 5: completion rate of the real CAS counter. *)
  Printf.printf "Figure 5 (real completion rate, ops / shared-memory steps):\n";
  List.iter
    (fun d ->
      let r = Runtime.Harness.counter_completion_rate ~domains:d ~ops_per_domain:25_000 in
      Printf.printf "  domains=%d  rate=%.4f   (model c/sqrt(n) with c=0.5: %.4f)\n" d
        r.completion_rate
        (0.5 /. sqrt (float_of_int d)))
    [ 1; 2; 3; 4 ]
