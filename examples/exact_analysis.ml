(* Analytics without simulation: use the Markov-chain library the way
   the paper's proofs do.

   We build the scan-validate chains for n = 6, verify the lifting of
   Lemma 5 numerically, read off every latency the paper derives, and
   measure how quickly the chain reaches its stationary regime.

     dune exec examples/exact_analysis.exe *)

open Core

let () =
  let n = 6 in
  let ind = Chains.Scu_chain.Individual.make ~n in
  let sys = Chains.Scu_chain.System.make ~n in
  Printf.printf "individual chain states : %d (= 3^%d - 1)\n" ind.chain.size n;
  Printf.printf "system chain states     : %d\n" sys.chain.size;

  (* Lemma 5: the system chain is a lifting of the individual chain. *)
  let report =
    Markov.Lifting.verify ~base:sys.chain ~lifted:ind.chain
      ~f:(Chains.Scu_chain.lift ind sys) ()
  in
  Printf.printf "lifting flow error      : %.3g\n" report.max_flow_error;
  Printf.printf "lifting pi error        : %.3g  (Lemma 1/4)\n" report.max_pi_error;

  (* Structure: irreducible but periodic — the reproduction's caveat to
     Lemma 3 (see DESIGN.md). *)
  Printf.printf "irreducible             : %b\n"
    (Markov.Ergodic.strongly_connected sys.chain);
  Printf.printf "period                  : %d (paper says ergodic; see DESIGN.md)\n"
    (Markov.Ergodic.period sys.chain);

  (* Theorem 5 / Lemma 7: latencies straight from the stationary
     distribution. *)
  let w = Chains.Scu_chain.System.system_latency ~n in
  Printf.printf "system latency W        : %.4f steps/op (<= 2 sqrt n = %.3f)\n" w
    (2. *. sqrt (float_of_int n));
  Printf.printf "individual latency      : %.4f = n * W (Lemma 7)\n"
    (Chains.Scu_chain.individual_latency ~n);

  (* §7: the augmented-CAS counter and the Ramanujan Q-function. *)
  let z = (Chains.Counter_chain.z_recurrence ~n).(n - 1) in
  Printf.printf "aug-CAS counter W       : %.4f = Z(n-1) = Q(n) = %.4f\n"
    (Chains.Counter_chain.Global.return_time_v1 ~n)
    z;
  Printf.printf "sqrt(pi n / 2)          : %.4f (Corollary 3's asymptotic)\n"
    (Chains.Ramanujan.asymptotic n);

  (* How long is a "long execution"?  Mixing time of the lazy chain. *)
  Printf.printf "mixing time (TV <= 1%%)  : %d steps (~%.1f per process)\n"
    (Markov.Mixing.mixing_time ~eps:0.01 sys.chain ~start:sys.initial)
    (float_of_int (Markov.Mixing.mixing_time ~eps:0.01 sys.chain ~start:sys.initial)
    /. float_of_int n)
