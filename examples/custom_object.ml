(* Bring your own object: the universal construction (§5 / Herlihy)
   turns ANY sequential object into a lock-free one in the class
   SCU(q, s), and the paper's analysis then predicts its latency.

   Here the object is a small bank of 3 accounts with a "transfer"
   operation; we check the concurrent execution against a sequential
   witness (total conserved), and check the latency against the
   q + alpha*s*sqrt(n) shape.

     dune exec examples/custom_object.exe *)

open Core

let accounts = 3
let initial = [| 100; 100; 100 |]

(* Sequential specification: process p's k-th operation moves one unit
   from account (p+k) mod 3 to account (p+k+1) mod 3. *)
let apply ~proc ~op_index state =
  let from = (proc + op_index) mod accounts in
  let into = (from + 1) mod accounts in
  let next = Array.copy state in
  next.(from) <- next.(from) - 1;
  next.(into) <- next.(into) + 1;
  next

let () =
  let n = 8 in
  let bank = Scu.Universal.make ~n ~init:initial ~apply in
  let r =
    Sim.Executor.exec
      ~config:Sim.Executor.Config.(default |> with_seed 11)
      ~scheduler:Sched.Scheduler.uniform ~n ~stop:(Completions 10_000)
      bank.spec
  in
  let m = r.metrics in
  let final = Scu.Universal.state bank bank.spec.memory in
  let total = Array.fold_left ( + ) 0 final in
  Printf.printf "final balances        : [%s]\n"
    (String.concat "; " (Array.to_list (Array.map string_of_int final)));
  Printf.printf "total conserved       : %d (must be %d)\n" total
    (Array.fold_left ( + ) 0 initial);
  (* Replay the same per-process operation counts sequentially: any
     linearization yields the same state because each process's ops
     are applied in program order by construction. *)
  let ops =
    List.concat
      (List.init n (fun proc ->
           List.init (Sim.Metrics.completions_of m proc) (fun k -> (proc, k))))
  in
  let witness = Scu.Universal.sequential_witness ~init:initial ~apply ops in
  Printf.printf "sequential witness    : [%s]\n"
    (String.concat "; " (Array.to_list (Array.map string_of_int witness)));
  Printf.printf "matches witness       : %b\n" (final = witness);
  (* The construction scans a 3-cell state and writes a fresh one, so
     it's an SCU(~k, k+1)-shaped operation; its latency follows the
     q + alpha*s*sqrt(n) law. *)
  Printf.printf "system latency        : %.2f steps/op\n"
    (Sim.Metrics.mean_system_latency m);
  Printf.printf "individual latency p0 : %.1f steps/op (n x system = %.1f)\n"
    (Sim.Metrics.mean_individual_latency m 0)
    (float_of_int n *. Sim.Metrics.mean_system_latency m)
