(* Progress guarantees in action (Theorems 3 and Lemma 2): the same
   lock-free Treiber stack under three schedulers —

   - a worst-case adversary that starves process 0: minimal progress
     only (the victim never completes: lock-free, not wait-free);
   - the same adversary softened with weak fairness theta > 0
     (Definition 1): the victim now completes — bounded minimal
     progress becomes maximal progress with probability 1 (Theorem 3);
   - the uniform stochastic scheduler: everyone completes at the same
     rate (Lemma 7).

     dune exec examples/progress_guarantees.exe *)

open Core

let n = 4
let steps = 400_000

let run name scheduler =
  let stack = Scu.Treiber.make ~n () in
  let r =
    Sim.Executor.exec
      ~config:Sim.Executor.Config.(default |> with_seed 7)
      ~scheduler ~n ~stop:(Steps steps) stack.spec
  in
  let m = r.metrics in
  Printf.printf "%-28s" name;
  for i = 0 to n - 1 do
    Printf.printf "  p%d:%7d" i (Sim.Metrics.completions_of m i)
  done;
  Printf.printf "   total:%8d\n" (Sim.Metrics.total_completions m)

let () =
  Printf.printf "Operations completed per process over %d steps (n = %d):\n\n" steps n;
  run "adversary (starves p0)" (Sched.Scheduler.starver ~victim:0);
  run "adversary + theta=0.01"
    (Sched.Scheduler.with_weak_fairness ~theta:0.01 (Sched.Scheduler.starver ~victim:0));
  run "adversary + theta=0.10"
    (Sched.Scheduler.with_weak_fairness ~theta:0.10 (Sched.Scheduler.starver ~victim:0));
  run "uniform stochastic" Sched.Scheduler.uniform;
  print_newline ();
  print_endline
    "Reading: under the pure adversary p0 starves forever (lock-freedom\n\
     guarantees only minimal progress).  Any weak-fairness threshold\n\
     theta > 0 restores maximal progress for p0 (Theorem 3), and under\n\
     the uniform scheduler all processes progress equally (Lemma 7) —\n\
     the lock-free stack is practically wait-free."
