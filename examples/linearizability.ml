(* Safety, not just progress: record a concurrent history of the real
   (OCaml 5 domains + Atomic) Treiber stack and check it against the
   sequential stack specification with the Wing–Gong linearizability
   checker.

     dune exec examples/linearizability.exe

   The paper's progress guarantees presuppose linearizable objects;
   this example shows how the library closes that assumption. *)

open Core

type op = Push of int | Pop

type res = Pushed | Popped of int | Empty

let stack_spec : (op, res, int list) Linearize.Checker.spec =
  {
    initial = [];
    apply =
      (fun o s ->
        match (o, s) with
        | Push v, _ -> (Pushed, v :: s)
        | Pop, [] -> (Empty, [])
        | Pop, x :: rest -> (Popped x, rest));
  }

let () =
  let stack = Runtime.Rt_treiber.create () in
  let clock = Linearize.Checker.Clock.create () in
  let go = Atomic.make false in
  let domains = 3 in
  let ops_each = 8 in
  let worker proc () =
    while not (Atomic.get go) do
      Domain.cpu_relax ()
    done;
    List.concat
      (List.init (ops_each / 2) (fun k ->
           let v = (proc * 1000) + k in
           let push =
             Linearize.Checker.Clock.record clock ~proc ~op:(Push v) (fun () ->
                 ignore (Runtime.Rt_treiber.push stack v);
                 Pushed)
           in
           let pop =
             Linearize.Checker.Clock.record clock ~proc ~op:Pop (fun () ->
                 match Runtime.Rt_treiber.pop stack with
                 | Some v, _ -> Popped v
                 | None, _ -> Empty)
           in
           [ push; pop ]))
  in
  let handles = List.init domains (fun p -> Domain.spawn (worker p)) in
  Atomic.set go true;
  let history = List.concat_map Domain.join handles in
  Printf.printf "recorded %d operations from %d domains\n" (List.length history) domains;
  match Linearize.Checker.witness stack_spec history with
  | None -> print_endline "NOT linearizable — this would be a bug!"
  | Some order ->
      print_endline "history is linearizable; one witness order:";
      List.iter
        (fun e ->
          let open Linearize.Checker in
          let op =
            match e.op with Push v -> Printf.sprintf "push %d" v | Pop -> "pop"
          in
          let res =
            match e.result with
            | Pushed -> "ok"
            | Popped v -> Printf.sprintf "-> %d" v
            | Empty -> "-> empty"
          in
          Printf.printf "  d%d: %-10s %s\n" e.proc op res)
        order
