(* Quickstart: simulate a lock-free fetch-and-increment counter under
   the paper's uniform stochastic scheduler and compare the measured
   latencies with the theory.

     dune exec examples/quickstart.exe

   What to look for in the output:
   - the system completes one operation every ~1.2*sqrt(n) steps
     (Theorem 5's O(sqrt n), with its small constant made explicit by
     the exact Markov chain);
   - each individual process completes one operation every ~n times
     that (Lemma 7): lock-free yet perfectly fair — "practically
     wait-free". *)

open Core

let () =
  let n = 16 in
  (* 1. Build the algorithm: a CAS-loop counter shared by n simulated
     processes.  [Scu.Counter] is the paper's SCU(0,1) instance. *)
  let counter = Scu.Counter.make ~n in

  (* 2. Run it for a million scheduler steps under the uniform
     stochastic scheduler.  The seed makes the run reproducible. *)
  let result =
    Sim.Executor.exec
      ~config:Sim.Executor.Config.(default |> with_seed 42)
      ~scheduler:Sched.Scheduler.uniform ~n ~stop:(Steps 1_000_000)
      counter.spec
  in
  let m = result.metrics in

  (* 3. Compare with the exact Markov-chain prediction. *)
  let w_measured = Sim.Metrics.mean_system_latency m in
  let w_exact = Chains.Scu_chain.System.system_latency ~n in
  Printf.printf "processes (n)                 : %d\n" n;
  Printf.printf "system steps simulated        : %d\n" (Sim.Metrics.time m);
  Printf.printf "operations completed          : %d\n" (Sim.Metrics.total_completions m);
  Printf.printf "counter value (must match)    : %d\n"
    (Scu.Counter.value counter counter.spec.memory);
  Printf.printf "system latency W  (measured)  : %.3f steps/op\n" w_measured;
  Printf.printf "system latency W  (exact)     : %.3f steps/op\n" w_exact;
  Printf.printf "2*sqrt(n) upper bound         : %.3f\n" (2. *. sqrt (float_of_int n));
  Printf.printf "individual latency p0         : %.1f steps (n*W = %.1f)\n"
    (Sim.Metrics.mean_individual_latency m 0)
    (float_of_int n *. w_measured);
  Printf.printf "fairness ratio (Lemma 7 -> 1) : %.4f\n" (Sim.Metrics.fairness_ratio m)
