type cell = { label : string; seconds : float }

type experiment = { id : string; title : string; cells : cell list; total : float }

type t = {
  date : string;
  version : string;
  quick : bool;
  seed : int;
  repeat : int;
  experiments : experiment list;
}

let schema = "repro-bench/1"

let date_of now =
  let tm = Unix.localtime now in
  Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday

let default_filename t = Printf.sprintf "BENCH_%s.json" t.date

let make ?now ?version ~quick ~seed ~repeat experiments =
  {
    date = date_of (match now with Some f -> f | None -> Unix.gettimeofday ());
    version =
      (match version with Some v -> v | None -> Manifest.git_describe ());
    quick;
    seed;
    repeat;
    experiments;
  }

let total t = List.fold_left (fun acc e -> acc +. e.total) 0. t.experiments

let to_json t =
  let cell c =
    Json.Obj [ ("label", Json.Str c.label); ("seconds", Json.Float c.seconds) ]
  in
  let experiment e =
    Json.Obj
      [
        ("id", Json.Str e.id);
        ("title", Json.Str e.title);
        ("total_s", Json.Float e.total);
        ("cells", Json.List (List.map cell e.cells));
      ]
  in
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("date", Json.Str t.date);
      ("version", Json.Str t.version);
      ("budget", Json.Obj [ ("quick", Json.Bool t.quick); ("seed", Json.Int t.seed) ]);
      ("repeat", Json.Int t.repeat);
      ("total_s", Json.Float (total t));
      ("experiments", Json.List (List.map experiment t.experiments));
    ]

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let write ~file t =
  let dir = Filename.dirname file in
  if dir <> "." then mkdir_p dir;
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Json.to_string (to_json t));
      output_char oc '\n')
