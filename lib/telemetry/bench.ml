type cell = { label : string; seconds : float }

type experiment = { id : string; title : string; cells : cell list; total : float }

type t = {
  date : string;
  version : string;
  quick : bool;
  seed : int;
  repeat : int;
  experiments : experiment list;
}

let schema = "repro-bench/1"

let date_of now =
  let tm = Unix.localtime now in
  Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday

let default_filename t = Printf.sprintf "BENCH_%s.json" t.date

let make ?now ?version ~quick ~seed ~repeat experiments =
  {
    date = date_of (match now with Some f -> f | None -> Unix.gettimeofday ());
    version =
      (match version with Some v -> v | None -> Manifest.git_describe ());
    quick;
    seed;
    repeat;
    experiments;
  }

let total t = List.fold_left (fun acc e -> acc +. e.total) 0. t.experiments

let to_json t =
  let cell c =
    Json.Obj [ ("label", Json.Str c.label); ("seconds", Json.Float c.seconds) ]
  in
  let experiment e =
    Json.Obj
      [
        ("id", Json.Str e.id);
        ("title", Json.Str e.title);
        ("total_s", Json.Float e.total);
        ("cells", Json.List (List.map cell e.cells));
      ]
  in
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("date", Json.Str t.date);
      ("version", Json.Str t.version);
      ("budget", Json.Obj [ ("quick", Json.Bool t.quick); ("seed", Json.Int t.seed) ]);
      ("repeat", Json.Int t.repeat);
      ("total_s", Json.Float (total t));
      ("experiments", Json.List (List.map experiment t.experiments));
    ]

(* Inverse of [to_json], for the CI throughput gate: a committed
   baseline document is read back and its cell timings compared
   against a fresh run.  Unknown keys are ignored (forward
   compatibility within the same major schema). *)
let of_json j =
  let ( let* ) r f = Result.bind r f in
  let require what = function
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "bench JSON: missing or ill-typed %s" what)
  in
  let* s = require "schema" Json.(Option.bind (member "schema" j) to_str) in
  if s <> schema then
    Error (Printf.sprintf "bench JSON: schema %S, want %S" s schema)
  else
    let* date = require "date" Json.(Option.bind (member "date" j) to_str) in
    let* version =
      require "version" Json.(Option.bind (member "version" j) to_str)
    in
    let* budget = require "budget" (Json.member "budget" j) in
    let* quick =
      require "budget.quick" Json.(Option.bind (member "quick" budget) to_bool)
    in
    let* seed =
      require "budget.seed" Json.(Option.bind (member "seed" budget) to_int)
    in
    let* repeat = require "repeat" Json.(Option.bind (member "repeat" j) to_int) in
    let* exps =
      require "experiments" Json.(Option.bind (member "experiments" j) to_list)
    in
    let cell_of c =
      let* label = require "cell label" Json.(Option.bind (member "label" c) to_str) in
      let* seconds =
        require "cell seconds" Json.(Option.bind (member "seconds" c) to_float)
      in
      Ok { label; seconds }
    in
    let exp_of e =
      let* id = require "experiment id" Json.(Option.bind (member "id" e) to_str) in
      let* title =
        require "experiment title" Json.(Option.bind (member "title" e) to_str)
      in
      let* total =
        require "experiment total_s" Json.(Option.bind (member "total_s" e) to_float)
      in
      let* cells = require "cells" Json.(Option.bind (member "cells" e) to_list) in
      let* cells =
        List.fold_left
          (fun acc c ->
            let* acc = acc in
            let* c = cell_of c in
            Ok (c :: acc))
          (Ok []) cells
      in
      Ok { id; title; cells = List.rev cells; total }
    in
    let* experiments =
      List.fold_left
        (fun acc e ->
          let* acc = acc in
          let* e = exp_of e in
          Ok (e :: acc))
        (Ok []) exps
    in
    Ok { date; version; quick; seed; repeat; experiments = List.rev experiments }

let load ~file =
  match In_channel.with_open_text file In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> (
      match Json.parse text with
      | Error msg -> Error (Printf.sprintf "%s: %s" file msg)
      | Ok j -> (
          match of_json j with
          | Error msg -> Error (Printf.sprintf "%s: %s" file msg)
          | Ok t -> Ok t))

let cell_seconds t ~id ~label =
  List.find_opt (fun e -> e.id = id) t.experiments
  |> Option.map (fun e -> e.cells)
  |> Option.value ~default:[]
  |> List.find_opt (fun c -> c.label = label)
  |> Option.map (fun c -> c.seconds)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let write ~file t =
  let dir = Filename.dirname file in
  if dir <> "." then mkdir_p dir;
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Json.to_string (to_json t));
      output_char oc '\n')
