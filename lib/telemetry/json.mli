(** Minimal JSON tree, emitter and parser — no external dependencies.

    The telemetry layer writes run manifests and bench trajectories as
    JSON so external tooling (CI, plotting scripts) can consume them;
    the parser exists so the test suite and the CLI can validate their
    own output without adding a JSON package to the build.

    Scope: the full JSON value grammar, UTF-8 text, [\uXXXX] escapes
    for the basic multilingual plane (surrogate pairs are decoded
    pairwise).  Numbers are emitted with enough digits to round-trip a
    [float]; non-finite floats have no JSON representation and are
    emitted as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?compact:bool -> t -> string
(** Serialize.  Default is pretty-printed (two-space indent, one
    key/element per line) — manifests are meant to be read by humans
    too; [~compact:true] emits a single line. *)

val parse : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed; trailing
    garbage is an error).  Errors carry a byte offset and a short
    description. *)

val parse_exn : string -> t
(** [parse], raising [Failure] on malformed input. *)

(** Accessors for tests and validation: all return [None] on a type
    mismatch rather than raising. *)

val member : string -> t -> t option
(** [member key (Obj _)]: first binding of [key]. *)

val to_list : t -> t list option
val to_str : t -> string option
val to_float : t -> float option
(** [Int] values coerce to float; [Float] values pass through. *)

val to_int : t -> int option

val to_bool : t -> bool option
