(** Filesystem helpers shared by everything that persists telemetry or
    cached results (manifests, bench JSON, the cell cache, the CLI's
    [--out] directory). *)

val mkdir_p : string -> unit
(** Create [dir] and any missing parents ([0o755]).  A component that
    already exists as a directory is fine (including one created
    concurrently by another process); everything else — a component
    that exists but is not a directory, EACCES, a read-only
    filesystem, ... — raises [Sys_error] immediately, rather than
    letting the caller proceed and fail later with a confusing
    write error. *)

val write_atomic : string -> string -> unit
(** [write_atomic path contents]: write to a per-writer unique temp
    file next to [path] and rename it into place, so readers (and a
    process killed mid-write) never observe a half-written file.
    Raises [Sys_error] on I/O failure; the temp file is removed. *)
