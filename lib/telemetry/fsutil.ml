let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" then ()
  else if Sys.file_exists dir then begin
    if not (Sys.is_directory dir) then
      raise (Sys_error (dir ^ ": exists but is not a directory"))
  end
  else begin
    mkdir_p (Filename.dirname dir);
    (* Another process may create [dir] between the existence check
       and the mkdir; only that race is benign.  Every other failure
       (EACCES, ENOTDIR, read-only fs, ...) propagates — swallowing it
       here would let a run proceed and fail much later with a
       confusing write error. *)
    try Sys.mkdir dir 0o755
    with Sys_error _ when (try Sys.is_directory dir with Sys_error _ -> false)
    -> ()
  end

(* Temp names must be unique per writer: concurrent processes (and
   concurrent writers within one process) may flush the same path at
   once, and a shared <path>.tmp would interleave their writes before
   the rename. *)
let tmp_counter = Atomic.make 0

let write_atomic path contents =
  let tmp =
    Printf.sprintf "%s.%d.%d.tmp" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_counter 1)
  in
  let oc = open_out_bin tmp in
  (try
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () -> output_string oc contents)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path
