(** Machine-readable bench trajectory documents ([BENCH_<date>.json]).

    One document is one data point of the repository's performance
    trajectory: per-experiment, per-cell wall-clock timings of the
    quick plans at a recorded git version.  [repro bench] emits them,
    CI archives them as artifacts, and later perf PRs diff against
    them — so the layout is versioned via {!schema} and kept flat and
    boring on purpose. *)

type cell = { label : string; seconds : float }

type experiment = {
  id : string;
  title : string;
  cells : cell list;
  total : float;  (** Sum of the cell timings, seconds. *)
}

type t = {
  date : string;  (** ISO [YYYY-MM-DD]. *)
  version : string;  (** git describe of the measured tree. *)
  quick : bool;
  seed : int;
  repeat : int;  (** Timings are the minimum over this many runs. *)
  experiments : experiment list;
}

val schema : string

val date_of : float -> string
(** Local ISO date of a Unix timestamp. *)

val default_filename : t -> string
(** [BENCH_<date>.json]. *)

val make :
  ?now:float ->
  ?version:string ->
  quick:bool ->
  seed:int ->
  repeat:int ->
  experiment list ->
  t
(** [now] defaults to the wall clock; [version] to
    {!Manifest.git_describe}. *)

val total : t -> float
(** Grand total over all experiments, seconds. *)

val to_json : t -> Json.t

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json}.  Rejects a different {!schema}; ignores
    unknown keys. *)

val load : file:string -> (t, string) result
(** Read and parse one bench document (the CI gate's committed
    baseline). *)

val cell_seconds : t -> id:string -> label:string -> float option
(** Timing of one cell of one experiment, when present. *)

val write : file:string -> t -> unit
(** Pretty-printed JSON, trailing newline; parent directories are
    created if missing. *)
