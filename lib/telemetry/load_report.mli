(** The load generator's telemetry manifest: a deterministic JSON
    document carrying a run's configuration, throughput, tail
    quantiles and per-structure breakdown.

    Everything in the document is a simulation-model quantity
    (requests, steps, step-valued quantiles) or configuration — no
    wall-clock timestamps or hostnames — so two runs with the same
    configuration and seed serialize to byte-identical files, which
    the CI load-smoke job diffs.  This module is plain data in, JSON
    out: the [lib/load] engine fills the records, keeping [telemetry]
    free of simulator dependencies. *)

type quantiles = {
  count : int;
  min_value : int;  (** 0 when [count = 0], like the quantiles. *)
  max_value : int;
  mean : float;
  p50 : int;
  p99 : int;
  p999 : int;
}

type kind_row = { kind : string; latency : quantiles }

type shard_row = {
  shard : int;
  shard_requests : int;
  shard_steps : int;
  max_queue_depth : int;
}

type gate_row = { gate : string; gate_passed : bool; detail : string }

type t = {
  structures : string list;
  clients : int;
  ops_per_client : int;
  workers : int;
  shards : int;
  mode : string;  (** ["open"] or ["closed"]. *)
  arrival : string;  (** ["poisson"], ["bursty"] or ["think"]. *)
  alpha : float;
  seed : int;
  window : int option;  (** Window index for `repro serve` JSONL rows. *)
  requests : int;
  steps_total : int;
  steps_max : int;
  stopped_early : bool;
  throughput_per_kstep : float;
      (** Completed requests per 1000 steps of the slowest shard —
          the parallel-completion throughput. *)
  latency : quantiles;
  service : quantiles;
  queue_wait : quantiles;
  per_kind : kind_row list;
  per_shard : shard_row list;
  slo : gate_row list option;  (** Present for SLO sweep runs. *)
}

val schema : string
(** ["repro-load-manifest/1"], embedded in every document. *)

val to_json : t -> Json.t

val to_string : ?compact:bool -> t -> string
(** [to_string t] is [Json.to_string (to_json t)]; [compact] gives
    the one-line form used for `repro serve`'s JSONL stream. *)

val write : file:string -> t -> unit
(** Atomic write (parent directories created). *)
