(** The load generator's telemetry manifest: a deterministic JSON
    document carrying a run's configuration, throughput, tail
    quantiles and per-structure breakdown.

    Everything in the document is a simulation-model quantity
    (requests, steps, step-valued quantiles) or configuration — no
    wall-clock timestamps or hostnames — so two runs with the same
    configuration and seed serialize to byte-identical files, which
    the CI load-smoke and chaos-load jobs diff.  This module is plain
    data in, JSON out: the [lib/load] engine fills the records,
    keeping [telemetry] free of simulator dependencies.

    Two schemas share one record: a document whose fault/policy
    extensions are all [None] serializes as [repro-load-manifest/1],
    byte-identical to the historical form; any faulted or
    policy-bearing run upgrades to [repro-load-manifest/2] with the
    extra fields ([faults], [policy], [offered], [outcomes],
    [restarts], [spurious_cas], per-shard drop/restart columns, and
    optional [error_budget]/[degrade] blocks). *)

type quantiles = {
  count : int;
  min_value : int;  (** 0 when [count = 0], like the quantiles. *)
  max_value : int;
  mean : float;
  p50 : int;
  p99 : int;
  p999 : int;
}

type kind_row = { kind : string; latency : quantiles }

type shard_row = {
  shard : int;
  shard_requests : int;
  shard_steps : int;
  max_queue_depth : int;
  shard_stopped : bool;
      (** Serialized (as [stopped_early: true]) only when set, so
          healthy schema-1 rows keep their historical bytes. *)
  shard_dropped : int;  (** Schema 2 only. *)
  shard_restarts : int;  (** Schema 2 only. *)
}

type gate_row = { gate : string; gate_passed : bool; detail : string }

type outcome_row = {
  ok : int;
  retried : int;
  retries : int;
  redelivered : int;
  hedges : int;
  timed_out : int;
  dropped : int;
}
(** Mirror of {!Load.Policy.counts} as plain manifest data. *)

type budget_row = {
  budget_offered : int;
  budget_completed : int;
  availability : float;  (** completed / offered. *)
  target : float;  (** Availability objective, e.g. 0.999. *)
  burn : float;  (** (1 - availability) / (1 - target). *)
  verdict : string;  (** ["ok"], ["degraded"] or ["breached"]. *)
}
(** Per-window error-budget accounting for `repro serve`. *)

type t = {
  structures : string list;
  clients : int;
  ops_per_client : int;
  workers : int;
  shards : int;
  mode : string;  (** ["open"] or ["closed"]. *)
  arrival : string;  (** ["poisson"], ["bursty"] or ["think"]. *)
  alpha : float;
  seed : int;
  faults : string option;  (** The [--faults] spec string. *)
  policy : string option;  (** {!Load.Policy.to_string} form. *)
  window : int option;  (** Window index for `repro serve` JSONL rows. *)
  requests : int;
  offered : int option;  (** Offered requests (schema 2). *)
  steps_total : int;
  steps_max : int;
  stopped_early : bool;
  throughput_per_kstep : float;
      (** Completed requests per 1000 steps of the slowest shard —
          the parallel-completion throughput. *)
  latency : quantiles;
  service : quantiles;
  queue_wait : quantiles;
  outcomes : outcome_row option;
  restarts : int option;
  spurious_cas : int option;
  per_kind : kind_row list;
  per_shard : shard_row list;
  error_budget : budget_row option;
  slo : gate_row list option;  (** Present for SLO sweep runs. *)
  degrade : gate_row list option;  (** Present for [--expect-degraded]. *)
}

val schema : string
(** ["repro-load-manifest/1"], embedded in every fault-free document. *)

val schema_v2 : string
(** ["repro-load-manifest/2"], used when any extension field is
    present. *)

val is_v2 : t -> bool

val to_json : t -> Json.t

val to_string : ?compact:bool -> t -> string
(** [to_string t] is [Json.to_string (to_json t)]; [compact] gives
    the one-line form used for `repro serve`'s JSONL stream. *)

val write : file:string -> t -> unit
(** Atomic write (parent directories created). *)
