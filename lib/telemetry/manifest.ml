type cache_status = Hit | Miss | Off
type cell_status = Completed | Failed of string

type cell = {
  exp_id : string;
  label : string;
  worker : int;
  waited : float;
  elapsed : float;
  attempts : int;
  status : cell_status;
  cache : cache_status;
}

type worker_stat = { worker : int; jobs : int; busy : float }

type experiment = { id : string; title : string; elapsed : float }

type t = {
  mutex : Mutex.t;
  started : float;
  command : string list;
  version : string;
  ids : string list;
  quick : bool;
  seed : int;
  jobs : int;
  cache_enabled : bool;
  mutable cells_rev : cell list;
  mutable experiments_rev : experiment list;
  mutable pool_workers : worker_stat list;
  mutable queue_wait_total : float;
  mutable pool_trapped : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_stores : int;
  mutable total_elapsed : float;
  mutable faults : string option;
  mutable journal : string option;
}

let schema = "repro-run-manifest/2"

let git_describe () =
  try
    let ic = Unix.open_process_in "git describe --always --dirty 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with _ -> "unknown"

let create ?now ?version ?(ids = []) ~command ~quick ~seed ~jobs ~cache_enabled
    () =
  {
    mutex = Mutex.create ();
    started = (match now with Some f -> f | None -> Unix.gettimeofday ());
    command;
    version = (match version with Some v -> v | None -> git_describe ());
    ids;
    quick;
    seed;
    jobs;
    cache_enabled;
    cells_rev = [];
    experiments_rev = [];
    pool_workers = [];
    queue_wait_total = 0.;
    pool_trapped = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_stores = 0;
    total_elapsed = 0.;
    faults = None;
    journal = None;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Durations come from callers' clocks.  Timing is monotonic
   ([Pool.monotonic_now]) throughout the engine, but a caller still on
   the wall clock — or a buggy one — could hand us negative or
   non-finite values, which would poison downstream tooling; clamp at
   record time so the written manifest only ever carries valid
   durations. *)
let duration x = if Float.is_nan x || x < 0. then 0. else x

(* <YYYYMMDD-HHMMSS>-<ids>-p<pid>: sortable by start time, readable,
   and collision-free across concurrent runs on one machine.  Prefers
   the planned ids handed to [create] (stable from the start, which
   journal mode needs for its filename) and falls back to the
   experiments recorded so far. *)
let run_id_locked t =
  let tm = Unix.localtime t.started in
  let stamp =
    Printf.sprintf "%04d%02d%02d-%02d%02d%02d" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
      tm.Unix.tm_sec
  in
  let ids =
    if t.ids <> [] then t.ids
    else List.rev_map (fun e -> e.id) t.experiments_rev
  in
  let slug =
    match ids with
    | [] -> "run"
    | ids ->
        let joined = String.concat "+" ids in
        let sanitized =
          String.map
            (fun c ->
              match c with
              | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '+' -> c
              | _ -> '_')
            joined
        in
        if String.length sanitized <= 48 then sanitized
        else String.sub sanitized 0 48
  in
  Printf.sprintf "%s-%s-p%d" stamp slug (Unix.getpid ())

let run_id t = locked t (fun () -> run_id_locked t)
let cache_status_str = function Hit -> "hit" | Miss -> "miss" | Off -> "off"

let to_json_locked t =
  let cell c =
    Json.Obj
      ([
         ("exp", Json.Str c.exp_id);
         ("label", Json.Str c.label);
         ("worker", Json.Int c.worker);
         ("queue_wait_s", Json.Float c.waited);
         ("elapsed_s", Json.Float c.elapsed);
         ("attempts", Json.Int c.attempts);
         ( "status",
           Json.Str (match c.status with Completed -> "ok" | Failed _ -> "failed")
         );
         ("cache", Json.Str (cache_status_str c.cache));
       ]
      @ match c.status with
        | Completed -> []
        | Failed msg -> [ ("error", Json.Str msg) ])
  in
  let experiment (e : experiment) =
    Json.Obj
      [
        ("id", Json.Str e.id);
        ("title", Json.Str e.title);
        ("elapsed_s", Json.Float e.elapsed);
      ]
  in
  let worker (w : worker_stat) =
    Json.Obj
      [
        ("worker", Json.Int w.worker);
        ("jobs", Json.Int w.jobs);
        ("busy_s", Json.Float w.busy);
      ]
  in
  Json.Obj
    ([
       ("schema", Json.Str schema);
       ("run_id", Json.Str (run_id_locked t));
      ("started_unix", Json.Float t.started);
      ("command", Json.List (List.map (fun a -> Json.Str a) t.command));
      ("version", Json.Str t.version);
      ("ids", Json.List (List.map (fun id -> Json.Str id) t.ids));
      ( "budget",
        Json.Obj [ ("quick", Json.Bool t.quick); ("seed", Json.Int t.seed) ] );
      ("jobs", Json.Int t.jobs);
      ( "pool",
        Json.Obj
          [
            ("queue_wait_total_s", Json.Float t.queue_wait_total);
            ("trapped", Json.Int t.pool_trapped);
            ("workers", Json.List (List.map worker t.pool_workers));
          ] );
      ( "cache",
        Json.Obj
          [
            ("enabled", Json.Bool t.cache_enabled);
            ("hits", Json.Int t.cache_hits);
            ("misses", Json.Int t.cache_misses);
            ("stores", Json.Int t.cache_stores);
          ] );
      ("experiments", Json.List (List.rev_map experiment t.experiments_rev));
      ("cells", Json.List (List.rev_map cell t.cells_rev));
      ("total_elapsed_s", Json.Float t.total_elapsed);
    ]
    (* Optional key: only chaos runs carry a fault spec; omitting it
       otherwise keeps existing manifests identical without a schema
       bump. *)
    @ match t.faults with
      | None -> []
      | Some spec -> [ ("faults", Json.Str spec) ])

let to_json t = locked t (fun () -> to_json_locked t)

(* Journal mode: re-serialize the whole manifest after every mutation,
   atomically, so a killed process leaves a valid JSON file that is at
   most one cell behind.  Manifests are small (tens of cells), so the
   rewrite is cheap.  Mid-run flush failures degrade to a skipped
   update — the in-memory manifest is intact and the next mutation (or
   the final [write]) retries; [strict] makes the failure visible at
   the points that report it. *)
let flush_locked ?(strict = false) t =
  match t.journal with
  | None -> ()
  | Some path -> (
      try Fsutil.write_atomic path (Json.to_string (to_json_locked t) ^ "\n")
      with Sys_error _ when not strict -> ())

let enable_journal t ~dir =
  Fsutil.mkdir_p dir;
  locked t (fun () ->
      let path = Filename.concat dir (run_id_locked t ^ ".json") in
      t.journal <- Some path;
      flush_locked ~strict:true t;
      path)

let record_cell ?(attempts = 1) ?(status = Completed) t ~exp_id ~label ~worker
    ~waited ~elapsed ~cache =
  locked t (fun () ->
      t.cells_rev <-
        {
          exp_id;
          label;
          worker;
          waited = duration waited;
          elapsed = duration elapsed;
          attempts = max 1 attempts;
          status;
          cache;
        }
        :: t.cells_rev;
      flush_locked t)

let record_experiment t ~id ~title ~elapsed =
  locked t (fun () ->
      t.experiments_rev <-
        { id; title; elapsed = duration elapsed } :: t.experiments_rev;
      flush_locked t)

let set_pool t ?(trapped = 0) ~queue_wait_total workers =
  locked t (fun () ->
      t.pool_workers <-
        List.map (fun w -> { w with busy = duration w.busy }) workers;
      t.queue_wait_total <- duration queue_wait_total;
      t.pool_trapped <- trapped;
      flush_locked t)

let set_cache_counters t ~hits ~misses ~stores =
  locked t (fun () ->
      t.cache_hits <- hits;
      t.cache_misses <- misses;
      t.cache_stores <- stores;
      flush_locked t)

let set_elapsed t dt =
  locked t (fun () ->
      t.total_elapsed <- duration dt;
      flush_locked t)

let set_faults t spec =
  locked t (fun () ->
      t.faults <- (if spec = "" then None else Some spec);
      flush_locked t)

let cells t = locked t (fun () -> List.rev t.cells_rev)

let write ?(dir = Filename.concat "results" "runs") t =
  match locked t (fun () -> t.journal) with
  | Some path ->
      locked t (fun () -> flush_locked ~strict:true t);
      path
  | None ->
      Fsutil.mkdir_p dir;
      let path = Filename.concat dir (run_id t ^ ".json") in
      Fsutil.write_atomic path (Json.to_string (to_json t) ^ "\n");
      path

(* ------------------------------------------------------------------ *)
(* Resume                                                             *)
(* ------------------------------------------------------------------ *)

type resume = {
  resume_ids : string list;
  resume_quick : bool;
  resume_seed : int;
  completed : (string * string) list;
}

let load_resume path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | contents -> (
      match Json.parse contents with
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
      | Ok json ->
          let schema_ok =
            match Option.bind (Json.member "schema" json) Json.to_str with
            | Some s ->
                String.length s >= 18 && String.sub s 0 18 = "repro-run-manifest"
            | None -> false
          in
          if not schema_ok then
            Error (path ^ ": not a run manifest (missing/unknown schema)")
          else
            let resume_ids =
              match Option.bind (Json.member "ids" json) Json.to_list with
              | Some l when l <> [] -> List.filter_map Json.to_str l
              | _ -> (
                  (* Schema 1 manifests carry no planned-ids field;
                     fall back to the experiments that completed. *)
                  match
                    Option.bind (Json.member "experiments" json) Json.to_list
                  with
                  | Some l ->
                      List.filter_map
                        (fun e -> Option.bind (Json.member "id" e) Json.to_str)
                        l
                  | None -> [])
            in
            let resume_quick, resume_seed =
              match Json.member "budget" json with
              | Some b ->
                  ( Option.value ~default:false
                      (Option.bind (Json.member "quick" b) Json.to_bool),
                    Option.value ~default:0
                      (Option.bind (Json.member "seed" b) Json.to_int) )
              | None -> (false, 0)
            in
            let completed =
              match Option.bind (Json.member "cells" json) Json.to_list with
              | Some cells ->
                  List.sort_uniq compare
                    (List.filter_map
                       (fun c ->
                         let ok =
                           match
                             Option.bind (Json.member "status" c) Json.to_str
                           with
                           | Some "ok" -> true
                           | Some _ -> false
                           (* Schema 1 recorded only completed cells. *)
                           | None -> true
                         in
                         if not ok then None
                         else
                           match
                             ( Option.bind (Json.member "exp" c) Json.to_str,
                               Option.bind (Json.member "label" c) Json.to_str )
                           with
                           | Some e, Some l -> Some (e, l)
                           | _ -> None)
                       cells)
              | None -> []
            in
            if resume_ids = [] then
              Error (path ^ ": manifest names no experiments to resume")
            else Ok { resume_ids; resume_quick; resume_seed; completed })
