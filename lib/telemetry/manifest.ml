type cache_status = Hit | Miss | Off

type cell = {
  exp_id : string;
  label : string;
  worker : int;
  waited : float;
  elapsed : float;
  cache : cache_status;
}

type worker_stat = { worker : int; jobs : int; busy : float }

type experiment = { id : string; title : string; elapsed : float }

type t = {
  mutex : Mutex.t;
  started : float;
  command : string list;
  version : string;
  quick : bool;
  seed : int;
  jobs : int;
  cache_enabled : bool;
  mutable cells_rev : cell list;
  mutable experiments_rev : experiment list;
  mutable pool_workers : worker_stat list;
  mutable queue_wait_total : float;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_stores : int;
  mutable total_elapsed : float;
}

let schema = "repro-run-manifest/1"

let git_describe () =
  try
    let ic = Unix.open_process_in "git describe --always --dirty 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with _ -> "unknown"

let create ?now ?version ~command ~quick ~seed ~jobs ~cache_enabled () =
  {
    mutex = Mutex.create ();
    started = (match now with Some f -> f | None -> Unix.gettimeofday ());
    command;
    version = (match version with Some v -> v | None -> git_describe ());
    quick;
    seed;
    jobs;
    cache_enabled;
    cells_rev = [];
    experiments_rev = [];
    pool_workers = [];
    queue_wait_total = 0.;
    cache_hits = 0;
    cache_misses = 0;
    cache_stores = 0;
    total_elapsed = 0.;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let record_cell t ~exp_id ~label ~worker ~waited ~elapsed ~cache =
  locked t (fun () ->
      t.cells_rev <- { exp_id; label; worker; waited; elapsed; cache } :: t.cells_rev)

let record_experiment t ~id ~title ~elapsed =
  locked t (fun () -> t.experiments_rev <- { id; title; elapsed } :: t.experiments_rev)

let set_pool t ~queue_wait_total workers =
  locked t (fun () ->
      t.pool_workers <- workers;
      t.queue_wait_total <- queue_wait_total)

let set_cache_counters t ~hits ~misses ~stores =
  locked t (fun () ->
      t.cache_hits <- hits;
      t.cache_misses <- misses;
      t.cache_stores <- stores)

let set_elapsed t dt = locked t (fun () -> t.total_elapsed <- dt)
let cells t = locked t (fun () -> List.rev t.cells_rev)

(* <YYYYMMDD-HHMMSS>-<ids>-p<pid>: sortable by start time, readable,
   and collision-free across concurrent runs on one machine. *)
let run_id t =
  let tm = Unix.localtime t.started in
  let stamp =
    Printf.sprintf "%04d%02d%02d-%02d%02d%02d" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
      tm.Unix.tm_sec
  in
  let ids =
    locked t (fun () -> List.rev_map (fun e -> e.id) t.experiments_rev)
  in
  let slug =
    match ids with
    | [] -> "run"
    | ids ->
        let joined = String.concat "+" ids in
        let sanitized =
          String.map
            (fun c ->
              match c with
              | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '+' -> c
              | _ -> '_')
            joined
        in
        if String.length sanitized <= 48 then sanitized
        else String.sub sanitized 0 48
  in
  Printf.sprintf "%s-%s-p%d" stamp slug (Unix.getpid ())

let cache_status_str = function Hit -> "hit" | Miss -> "miss" | Off -> "off"

let to_json t =
  let cell c =
    Json.Obj
      [
        ("exp", Json.Str c.exp_id);
        ("label", Json.Str c.label);
        ("worker", Json.Int c.worker);
        ("queue_wait_s", Json.Float c.waited);
        ("elapsed_s", Json.Float c.elapsed);
        ("cache", Json.Str (cache_status_str c.cache));
      ]
  in
  let experiment (e : experiment) =
    Json.Obj
      [
        ("id", Json.Str e.id);
        ("title", Json.Str e.title);
        ("elapsed_s", Json.Float e.elapsed);
      ]
  in
  let worker (w : worker_stat) =
    Json.Obj
      [
        ("worker", Json.Int w.worker);
        ("jobs", Json.Int w.jobs);
        ("busy_s", Json.Float w.busy);
      ]
  in
  let id = run_id t in
  locked t (fun () ->
      Json.Obj
        [
          ("schema", Json.Str schema);
          ("run_id", Json.Str id);
          ("started_unix", Json.Float t.started);
          ("command", Json.List (List.map (fun a -> Json.Str a) t.command));
          ("version", Json.Str t.version);
          ( "budget",
            Json.Obj [ ("quick", Json.Bool t.quick); ("seed", Json.Int t.seed) ]
          );
          ("jobs", Json.Int t.jobs);
          ( "pool",
            Json.Obj
              [
                ("queue_wait_total_s", Json.Float t.queue_wait_total);
                ("workers", Json.List (List.map worker t.pool_workers));
              ] );
          ( "cache",
            Json.Obj
              [
                ("enabled", Json.Bool t.cache_enabled);
                ("hits", Json.Int t.cache_hits);
                ("misses", Json.Int t.cache_misses);
                ("stores", Json.Int t.cache_stores);
              ] );
          ( "experiments",
            Json.List (List.rev_map experiment t.experiments_rev) );
          ("cells", Json.List (List.rev_map cell t.cells_rev));
          ("total_elapsed_s", Json.Float t.total_elapsed);
        ])

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let write ?(dir = Filename.concat "results" "runs") t =
  mkdir_p dir;
  let path = Filename.concat dir (run_id t ^ ".json") in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Json.to_string (to_json t));
      output_char oc '\n');
  path
