type quantiles = {
  count : int;
  min_value : int;
  max_value : int;
  mean : float;
  p50 : int;
  p99 : int;
  p999 : int;
}

type kind_row = { kind : string; latency : quantiles }

type shard_row = {
  shard : int;
  shard_requests : int;
  shard_steps : int;
  max_queue_depth : int;
  shard_stopped : bool;
  shard_dropped : int;
  shard_restarts : int;
}

type gate_row = { gate : string; gate_passed : bool; detail : string }

type outcome_row = {
  ok : int;
  retried : int;
  retries : int;
  redelivered : int;
  hedges : int;
  timed_out : int;
  dropped : int;
}

type budget_row = {
  budget_offered : int;
  budget_completed : int;
  availability : float;
  target : float;
  burn : float;
  verdict : string;
}

type t = {
  structures : string list;
  clients : int;
  ops_per_client : int;
  workers : int;
  shards : int;
  mode : string;
  arrival : string;
  alpha : float;
  seed : int;
  faults : string option;
  policy : string option;
  window : int option;
  requests : int;
  offered : int option;
  steps_total : int;
  steps_max : int;
  stopped_early : bool;
  throughput_per_kstep : float;
  latency : quantiles;
  service : quantiles;
  queue_wait : quantiles;
  outcomes : outcome_row option;
  restarts : int option;
  spurious_cas : int option;
  per_kind : kind_row list;
  per_shard : shard_row list;
  error_budget : budget_row option;
  slo : gate_row list option;
  degrade : gate_row list option;
}

let schema = "repro-load-manifest/1"
let schema_v2 = "repro-load-manifest/2"

(* A document is schema 2 exactly when it carries any of the
   fault/policy extensions; a fault-free, policy-free run serializes
   byte-identically to the historical schema-1 form. *)
let is_v2 t =
  t.faults <> None || t.policy <> None || t.offered <> None
  || t.outcomes <> None || t.restarts <> None || t.spurious_cas <> None
  || t.error_budget <> None || t.degrade <> None

let quantiles_json q =
  Json.Obj
    [
      ("count", Json.Int q.count);
      ("min", Json.Int q.min_value);
      ("max", Json.Int q.max_value);
      ("mean", Json.Float q.mean);
      ("p50", Json.Int q.p50);
      ("p99", Json.Int q.p99);
      ("p999", Json.Int q.p999);
    ]

let gates_json gates =
  Json.List
    (List.map
       (fun g ->
         Json.Obj
           [
             ("gate", Json.Str g.gate);
             ("passed", Json.Bool g.gate_passed);
             ("detail", Json.Str g.detail);
           ])
       gates)

let to_json t =
  let v2 = is_v2 t in
  let opt name f = function None -> [] | Some v -> [ (name, f v) ] in
  Json.Obj
    (List.concat
       [
         [
           ("schema", Json.Str (if v2 then schema_v2 else schema));
           ( "structures",
             Json.List (List.map (fun s -> Json.Str s) t.structures) );
           ("clients", Json.Int t.clients);
           ("ops_per_client", Json.Int t.ops_per_client);
           ("workers", Json.Int t.workers);
           ("shards", Json.Int t.shards);
           ("mode", Json.Str t.mode);
           ("arrival", Json.Str t.arrival);
           ("alpha", Json.Float t.alpha);
           ("seed", Json.Int t.seed);
         ];
         opt "faults" (fun s -> Json.Str s) t.faults;
         opt "policy" (fun s -> Json.Str s) t.policy;
         (match t.window with
         | None -> []
         | Some w -> [ ("window", Json.Int w) ]);
         [ ("requests", Json.Int t.requests) ];
         opt "offered" (fun n -> Json.Int n) t.offered;
         [
           ("steps_total", Json.Int t.steps_total);
           ("steps_max", Json.Int t.steps_max);
           ("stopped_early", Json.Bool t.stopped_early);
           ("throughput_per_kstep", Json.Float t.throughput_per_kstep);
           ("latency", quantiles_json t.latency);
           ("service", quantiles_json t.service);
           ("queue_wait", quantiles_json t.queue_wait);
         ];
         opt "outcomes"
           (fun o ->
             Json.Obj
               [
                 ("ok", Json.Int o.ok);
                 ("retried", Json.Int o.retried);
                 ("retries", Json.Int o.retries);
                 ("redelivered", Json.Int o.redelivered);
                 ("hedges", Json.Int o.hedges);
                 ("timed_out", Json.Int o.timed_out);
                 ("dropped", Json.Int o.dropped);
               ])
           t.outcomes;
         opt "restarts" (fun n -> Json.Int n) t.restarts;
         opt "spurious_cas" (fun n -> Json.Int n) t.spurious_cas;
         [
           ( "per_kind",
             Json.List
               (List.map
                  (fun r ->
                    Json.Obj
                      [
                        ("kind", Json.Str r.kind);
                        ("latency", quantiles_json r.latency);
                      ])
                  t.per_kind) );
           ( "per_shard",
             Json.List
               (List.map
                  (fun r ->
                    Json.Obj
                      (List.concat
                         [
                           [
                             ("shard", Json.Int r.shard);
                             ("requests", Json.Int r.shard_requests);
                             ("steps", Json.Int r.shard_steps);
                             ("max_queue_depth", Json.Int r.max_queue_depth);
                           ];
                           (* Emitted only on failure, so healthy
                              schema-1 rows keep their historical
                              bytes. *)
                           (if r.shard_stopped then
                              [ ("stopped_early", Json.Bool true) ]
                            else []);
                           (if v2 then
                              [
                                ("dropped", Json.Int r.shard_dropped);
                                ("restarts", Json.Int r.shard_restarts);
                              ]
                            else []);
                         ]))
                  t.per_shard) );
         ];
         opt "error_budget"
           (fun b ->
             Json.Obj
               [
                 ("offered", Json.Int b.budget_offered);
                 ("completed", Json.Int b.budget_completed);
                 ("availability", Json.Float b.availability);
                 ("target", Json.Float b.target);
                 ("burn", Json.Float b.burn);
                 ("verdict", Json.Str b.verdict);
               ])
           t.error_budget;
         (match t.slo with
         | None -> []
         | Some gates -> [ ("slo", gates_json gates) ]);
         (match t.degrade with
         | None -> []
         | Some gates -> [ ("degrade", gates_json gates) ]);
       ])

let to_string ?compact t = Json.to_string ?compact (to_json t)

let write ~file t =
  (match Filename.dirname file with
  | "" | "." -> ()
  | dir -> Fsutil.mkdir_p dir);
  Fsutil.write_atomic file (to_string t ^ "\n")
