type quantiles = {
  count : int;
  min_value : int;
  max_value : int;
  mean : float;
  p50 : int;
  p99 : int;
  p999 : int;
}

type kind_row = { kind : string; latency : quantiles }

type shard_row = {
  shard : int;
  shard_requests : int;
  shard_steps : int;
  max_queue_depth : int;
}

type gate_row = { gate : string; gate_passed : bool; detail : string }

type t = {
  structures : string list;
  clients : int;
  ops_per_client : int;
  workers : int;
  shards : int;
  mode : string;
  arrival : string;
  alpha : float;
  seed : int;
  window : int option;
  requests : int;
  steps_total : int;
  steps_max : int;
  stopped_early : bool;
  throughput_per_kstep : float;
  latency : quantiles;
  service : quantiles;
  queue_wait : quantiles;
  per_kind : kind_row list;
  per_shard : shard_row list;
  slo : gate_row list option;
}

let schema = "repro-load-manifest/1"

let quantiles_json q =
  Json.Obj
    [
      ("count", Json.Int q.count);
      ("min", Json.Int q.min_value);
      ("max", Json.Int q.max_value);
      ("mean", Json.Float q.mean);
      ("p50", Json.Int q.p50);
      ("p99", Json.Int q.p99);
      ("p999", Json.Int q.p999);
    ]

let to_json t =
  Json.Obj
    (List.concat
       [
         [
           ("schema", Json.Str schema);
           ( "structures",
             Json.List (List.map (fun s -> Json.Str s) t.structures) );
           ("clients", Json.Int t.clients);
           ("ops_per_client", Json.Int t.ops_per_client);
           ("workers", Json.Int t.workers);
           ("shards", Json.Int t.shards);
           ("mode", Json.Str t.mode);
           ("arrival", Json.Str t.arrival);
           ("alpha", Json.Float t.alpha);
           ("seed", Json.Int t.seed);
         ];
         (match t.window with
         | None -> []
         | Some w -> [ ("window", Json.Int w) ]);
         [
           ("requests", Json.Int t.requests);
           ("steps_total", Json.Int t.steps_total);
           ("steps_max", Json.Int t.steps_max);
           ("stopped_early", Json.Bool t.stopped_early);
           ("throughput_per_kstep", Json.Float t.throughput_per_kstep);
           ("latency", quantiles_json t.latency);
           ("service", quantiles_json t.service);
           ("queue_wait", quantiles_json t.queue_wait);
           ( "per_kind",
             Json.List
               (List.map
                  (fun r ->
                    Json.Obj
                      [
                        ("kind", Json.Str r.kind);
                        ("latency", quantiles_json r.latency);
                      ])
                  t.per_kind) );
           ( "per_shard",
             Json.List
               (List.map
                  (fun r ->
                    Json.Obj
                      [
                        ("shard", Json.Int r.shard);
                        ("requests", Json.Int r.shard_requests);
                        ("steps", Json.Int r.shard_steps);
                        ("max_queue_depth", Json.Int r.max_queue_depth);
                      ])
                  t.per_shard) );
         ];
         (match t.slo with
         | None -> []
         | Some gates ->
             [
               ( "slo",
                 Json.List
                   (List.map
                      (fun g ->
                        Json.Obj
                          [
                            ("gate", Json.Str g.gate);
                            ("passed", Json.Bool g.gate_passed);
                            ("detail", Json.Str g.detail);
                          ])
                      gates) );
             ]);
       ])

let to_string ?compact t = Json.to_string ?compact (to_json t)

let write ~file t =
  (match Filename.dirname file with
  | "" | "." -> ()
  | dir -> Fsutil.mkdir_p dir);
  Fsutil.write_atomic file (to_string t ^ "\n")
