(** Per-run manifests: what ran, where, and how long each piece took.

    A manifest is the observability record of one driver invocation
    (one [repro run ...]): the budget and seed, the worker-pool shape,
    one entry per executed cell (label, wall-clock, worker id,
    queue-wait, attempt count, ok/failed status, cache hit/miss),
    per-experiment totals, pool scheduling-skew metrics and cache
    counters.  It is accumulated in-memory while experiments run —
    recording is mutex-protected, so pool [on_done] callbacks may feed
    it from worker domains — and written as pretty-printed JSON under
    [results/runs/<timestamp>-<ids>-p<pid>.json].

    Two write disciplines: the classic one-shot {!write} at the end of
    the run, or {e journal mode} ({!enable_journal}), which rewrites
    the file atomically after every recorded cell so a killed process
    leaves a valid manifest at most one cell behind — the input
    {!load_resume} needs for [repro run --resume].

    The manifest never touches stdout: tables stay byte-identical with
    telemetry enabled, which is what keeps the [-j 1] vs [-j N]
    determinism check meaningful. *)

type cache_status = Hit | Miss | Off

type cell_status =
  | Completed
  | Failed of string  (** The cell gave up; the string is the reason. *)

type cell = {
  exp_id : string;
  label : string;
  worker : int;  (** Worker domain index; [-1] for cache hits (no worker ran). *)
  waited : float;  (** Seconds between submission and execution start. *)
  elapsed : float;  (** Wall-clock seconds of the cell body; 0 for hits. *)
  attempts : int;  (** Executions it took, >= 1 (see [Experiments.Retry]). *)
  status : cell_status;
  cache : cache_status;
}

type worker_stat = { worker : int; jobs : int; busy : float }

type t

val schema : string
(** Embedded as the manifest's ["schema"] field; bump on layout
    changes so downstream tooling can dispatch.  Currently
    ["repro-run-manifest/2"] (2 added [ids], per-cell
    [attempts]/[status]/[error] and pool [trapped]). *)

val git_describe : unit -> string
(** [git describe --always --dirty] of the working tree, or
    ["unknown"] when git (or the repository) is unavailable.  Never
    raises. *)

val create :
  ?now:float ->
  ?version:string ->
  ?ids:string list ->
  command:string list ->
  quick:bool ->
  seed:int ->
  jobs:int ->
  cache_enabled:bool ->
  unit ->
  t
(** [now] defaults to the wall clock, [version] to {!git_describe}
    (pass it explicitly in tests to avoid spawning git).  [ids] is the
    planned experiment list: it fixes {!run_id} from the start (which
    journal mode needs for a stable filename) and is what [--resume]
    replays when the run died before finishing. *)

val record_cell :
  ?attempts:int ->
  ?status:cell_status ->
  t ->
  exp_id:string ->
  label:string ->
  worker:int ->
  waited:float ->
  elapsed:float ->
  cache:cache_status ->
  unit
(** Thread-safe; call order defines the manifest's cell order.
    [attempts] defaults to 1 and [status] to [Completed].  Durations
    are clamped to [0] if negative or non-finite — validation lives
    here so the written manifest never carries a nonsense duration
    whatever clock the caller used. *)

val record_experiment : t -> id:string -> title:string -> elapsed:float -> unit

val set_pool :
  t -> ?trapped:int -> queue_wait_total:float -> worker_stat list -> unit
(** [trapped] is {!Pool.metrics}' supervision-backstop counter
    (default 0). *)

val set_cache_counters : t -> hits:int -> misses:int -> stores:int -> unit

val set_elapsed : t -> float -> unit
(** Total wall-clock of the whole run. *)

val set_faults : t -> string -> unit
(** Record the fault spec (the [--faults] grammar string) a chaos run
    used.  Serialized as an optional top-level ["faults"] key — absent
    for fault-free runs ([""] clears it), so non-chaos manifests are
    unchanged and the schema needs no bump. *)

val cells : t -> cell list
(** Recorded cells, in recording order. *)

val run_id : t -> string
(** [<YYYYMMDD-HHMMSS>-<experiment ids>-p<pid>], derived from the
    creation time and the planned [ids] (or, when none were given, the
    experiments recorded so far). *)

val to_json : t -> Json.t

val enable_journal : t -> dir:string -> string
(** Switch to journal mode: create [dir] (with parents), write the
    manifest to [<dir>/<run_id>.json] now, and rewrite that file —
    atomically, via a temp file and rename — after every subsequent
    mutation.  Returns the journal path.  Raises [Sys_error] if the
    directory or the initial write fails; once journaling, a failed
    mid-run rewrite degrades to a skipped update (the next mutation or
    {!write} retries). *)

val write : ?dir:string -> t -> string
(** One-shot mode: serialize under [dir] (default ["results/runs"],
    created with parents if missing) as [<run_id>.json]; returns the
    path.  In journal mode: flush once more and return the journal
    path ([dir] is ignored — the file already lives where
    {!enable_journal} put it). *)

type resume = {
  resume_ids : string list;  (** Planned experiment ids of the dead run. *)
  resume_quick : bool;
  resume_seed : int;
  completed : (string * string) list;
      (** [(exp_id, label)] of every cell recorded as completed
          (deduplicated).  Cells recorded as failed are deliberately
          absent: resuming re-executes them. *)
}

val load_resume : string -> (resume, string) result
(** Read a (possibly mid-sweep) manifest back for [--resume].  Accepts
    schema 1 manifests too (no status field: every recorded cell
    counts as completed; no ids field: the completed experiments stand
    in).  Returns [Error] with a human-readable reason on unreadable
    files, malformed JSON, a non-manifest document, or a manifest
    naming no experiments. *)
