(** Per-run manifests: what ran, where, and how long each piece took.

    A manifest is the observability record of one driver invocation
    (one [repro run ...]): the budget and seed, the worker-pool shape,
    one entry per executed cell (label, wall-clock, worker id,
    queue-wait, cache hit/miss), per-experiment totals, pool
    scheduling-skew metrics and cache counters.  It is accumulated
    in-memory while experiments run — recording is mutex-protected, so
    pool [on_done] callbacks may feed it from worker domains — and
    written once at the end as pretty-printed JSON under
    [results/runs/<timestamp>-<ids>-p<pid>.json].

    The manifest never touches stdout: tables stay byte-identical with
    telemetry enabled, which is what keeps the [-j 1] vs [-j N]
    determinism check meaningful. *)

type cache_status = Hit | Miss | Off

type cell = {
  exp_id : string;
  label : string;
  worker : int;  (** Worker domain index; [-1] for cache hits (no worker ran). *)
  waited : float;  (** Seconds between submission and execution start. *)
  elapsed : float;  (** Wall-clock seconds of the cell body; 0 for hits. *)
  cache : cache_status;
}

type worker_stat = { worker : int; jobs : int; busy : float }

type t

val schema : string
(** Embedded as the manifest's ["schema"] field; bump on layout
    changes so downstream tooling can dispatch. *)

val git_describe : unit -> string
(** [git describe --always --dirty] of the working tree, or
    ["unknown"] when git (or the repository) is unavailable.  Never
    raises. *)

val create :
  ?now:float ->
  ?version:string ->
  command:string list ->
  quick:bool ->
  seed:int ->
  jobs:int ->
  cache_enabled:bool ->
  unit ->
  t
(** [now] defaults to the wall clock, [version] to {!git_describe}
    (pass it explicitly in tests to avoid spawning git). *)

val record_cell :
  t ->
  exp_id:string ->
  label:string ->
  worker:int ->
  waited:float ->
  elapsed:float ->
  cache:cache_status ->
  unit
(** Thread-safe; call order defines the manifest's cell order. *)

val record_experiment : t -> id:string -> title:string -> elapsed:float -> unit

val set_pool : t -> queue_wait_total:float -> worker_stat list -> unit
val set_cache_counters : t -> hits:int -> misses:int -> stores:int -> unit
val set_elapsed : t -> float -> unit
(** Total wall-clock of the whole run. *)

val cells : t -> cell list
(** Recorded cells, in recording order. *)

val run_id : t -> string
(** [<YYYYMMDD-HHMMSS>-<experiment ids>-p<pid>], derived from the
    creation time and the experiments recorded so far; stable once all
    experiments are recorded. *)

val to_json : t -> Json.t

val write : ?dir:string -> t -> string
(** Serialize under [dir] (default ["results/runs"], created with
    parents if missing) as [<run_id>.json]; returns the path. *)
