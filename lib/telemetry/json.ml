type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission                                                           *)
(* ------------------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest decimal form that round-trips the float; JSON has no
   NaN/Infinity, so non-finite values degrade to null. *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    let shortest = Printf.sprintf "%.12g" f in
    let s =
      if float_of_string shortest = f then shortest else Printf.sprintf "%.17g" f
    in
    (* Ensure the token stays a JSON number and reads back as a float:
       "3" is valid JSON but loses the floatness on a strict reader. *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let to_string ?(compact = false) v =
  let buf = Buffer.create 1024 in
  let indent n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let newline depth =
    if not compact then begin
      Buffer.add_char buf '\n';
      indent depth
    end
  in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | Str s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            newline (depth + 1);
            emit (depth + 1) x)
          xs;
        newline depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char buf ',';
            newline (depth + 1);
            escape_string buf k;
            Buffer.add_string buf (if compact then ":" else ": ");
            emit (depth + 1) x)
          kvs;
        newline depth;
        Buffer.add_char buf '}'
  in
  emit 0 v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing: plain recursive descent over the input string.            *)
(* ------------------------------------------------------------------ *)

exception Parse_error of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then begin
      pos := !pos + m;
      value
    end
    else error (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then error "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then error "unterminated escape";
           let c = s.[!pos] in
           advance ();
           match c with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'u' ->
               let cp = try hex4 () with Failure _ -> error "bad \\u escape" in
               let cp =
                 if cp >= 0xD800 && cp <= 0xDBFF then begin
                   (* High surrogate: must pair with a low one. *)
                   if
                     !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                   then begin
                     pos := !pos + 2;
                     let lo = try hex4 () with Failure _ -> error "bad \\u escape" in
                     if lo < 0xDC00 || lo > 0xDFFF then error "unpaired surrogate";
                     0x10000 + (((cp - 0xD800) lsl 10) lor (lo - 0xDC00))
                   end
                   else error "unpaired surrogate"
                 end
                 else if cp >= 0xDC00 && cp <= 0xDFFF then error "unpaired surrogate"
                 else cp
               in
               utf8 buf cp
           | c -> error (Printf.sprintf "bad escape \\%c" c));
          go ()
      | c when Char.code c < 0x20 -> error "control character in string"
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let digits () =
      let any = ref false in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        advance ();
        any := true
      done;
      if not !any then error "expected digit"
    in
    if peek () = Some '-' then advance ();
    (match peek () with
    | Some '0' -> advance ()
    | Some c when c >= '1' && c <= '9' -> digits ()
    | _ -> error "expected digit");
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let tok = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string tok)
    else match int_of_string_opt tok with Some i -> Int i | None -> Float (float_of_string tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> error "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> error "expected ',' or ']'"
          in
          List (elements [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

let parse_exn s = match parse s with Ok v -> v | Error msg -> failwith msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                          *)
(* ------------------------------------------------------------------ *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
let to_list = function List xs -> Some xs | _ -> None
let to_str = function Str s -> Some s | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
