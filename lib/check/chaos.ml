(* Chaos fuzzing: random schedules replayed under randomly
   instantiated fault plans (crash–recovery, stalls, spurious CAS
   failure).  Failures shrink on two axes — first the schedule by
   ddmin with the fault plan held fixed, then the fault-event array by
   ddmin with the schedule held fixed, finally dropping the spurious
   rates if the failure survives without them — and replay
   byte-for-byte from (schedule, fault plan, mix seed). *)

module Checkable = Scu.Checkable
module Fault_plan = Sched.Fault_plan

type config = {
  trials : int;
  max_len : int;
  seed : int;
  gates : Schedule.gates;
}

let default =
  { trials = 60; max_len = 48; seed = 0xC0FFEE; gates = Schedule.default_gates }

let default_spec =
  { Fault_plan.base = Fault_plan.none; rates = Fault_plan.chaos_rates }

type failure = {
  structure : string;
  schedule : int array;
  replay : string;
  faults : Fault_plan.t;
  fault_spec : string;
  mix_seed : int;
  verdict : string;
}

type report = { structure : string; trials : int; failures : failure list }

let run_one ?gates ~structure ~n ~ops ~plan ~mix_seed schedule =
  Schedule.run ~fault_plan:plan ?gates ~mix_seed ~structure ~n ~ops
    ~tail:Round_robin schedule

let valid ~n plan =
  match Fault_plan.validate ~n plan with Ok () -> true | Error _ -> false

let shrink_failure ?gates ~structure ~n ~ops ~plan ~mix_seed schedule =
  (* Axis 1: the schedule, fault plan fixed. *)
  let run_one = run_one ?gates in
  let fails_sched s =
    Schedule.is_bad (run_one ~structure ~n ~ops ~plan ~mix_seed s).verdict
  in
  let schedule =
    if fails_sched schedule then Schedule.ddmin ~fails:fails_sched schedule
    else schedule
  in
  (* Axis 2: the fault events, schedule fixed.  Candidates that drop a
     healing restart can crash every process permanently; those are
     invalid plans, treated as non-failing so ddmin skips them. *)
  let spurious = Fault_plan.spurious plan in
  let plan_of events = Fault_plan.make ~spurious (Array.to_list events) in
  let fails_events evs =
    let p = plan_of evs in
    valid ~n p
    && Schedule.is_bad (run_one ~structure ~n ~ops ~plan:p ~mix_seed schedule).verdict
  in
  let events = Fault_plan.events plan in
  let plan =
    if fails_events events then
      plan_of (Schedule.ddmin ~fails:fails_events events)
    else plan
  in
  (* Axis 3: drop the spurious rates entirely when they are not needed. *)
  let plan =
    if Fault_plan.spurious plan <> [] then begin
      let without = Fault_plan.make (Fault_plan.events_list plan) in
      if
        Schedule.is_bad
          (run_one ~structure ~n ~ops ~plan:without ~mix_seed schedule).verdict
      then without
      else plan
    end
    else plan
  in
  (schedule, plan)

let run ?(config = default) ~spec ~structure ~n ~ops () =
  let failures = ref [] in
  for t = 0 to config.trials - 1 do
    let rng = Stats.Rng.create ~seed:(config.seed + (7919 * t)) in
    let len = 1 + Stats.Rng.int rng config.max_len in
    let schedule = Array.init len (fun _ -> Stats.Rng.int rng n) in
    let mix_seed = Stats.Rng.int rng 1_000_000 in
    (* Horizon covering the replayed prefix plus the round-robin tail
       a fault-free run would need, so rate-generated events can land
       anywhere in the run. *)
    let horizon = len + (50 * n * (ops + 1)) in
    let plan =
      Fault_plan.instantiate spec ~seed:(config.seed + (31 * t) + 1) ~n ~horizon
    in
    (* [instantiate] keeps a survivor among the processes *it* crashes,
       but merged with an explicit base plan the union can still crash
       everyone — skip such draws rather than fail. *)
    if valid ~n plan then begin
      let gates = config.gates in
      let out = run_one ~gates ~structure ~n ~ops ~plan ~mix_seed schedule in
      if Schedule.is_bad out.verdict then begin
        let schedule, plan =
          shrink_failure ~gates ~structure ~n ~ops ~plan ~mix_seed out.executed
        in
        let final = run_one ~gates ~structure ~n ~ops ~plan ~mix_seed schedule in
        failures :=
          {
            structure = structure.Checkable.name;
            schedule = final.executed;
            replay = Sched.Scheduler.replay_to_string final.executed;
            faults = plan;
            fault_spec = Fault_plan.to_string plan;
            mix_seed;
            verdict = Schedule.verdict_to_string final.verdict;
          }
          :: !failures
      end
    end
  done;
  {
    structure = structure.Checkable.name;
    trials = config.trials;
    failures = List.rev !failures;
  }
