(* Random-schedule fuzzing with shrinking.

   Two complementary schedule sources:
   - QCheck2 generation: random (schedule, crash plan, operation mix)
     triples, integrated shrinking, then a second greedy ddmin pass on
     the effective schedule;
   - scheduler-driven runs: the repository's own adversaries (zipf,
     quantum, weakly-fair starver, ...) drive a traced run whose trace
     is replayed and ddmin-minimized on failure.

   Every failure is reported with a schedule string that replays
   byte-for-byte through [Schedule.run] / `repro check --replay`. *)

module Checkable = Scu.Checkable

type config = {
  trials : int;
  sched_trials : int;
  max_len : int;
  sched_steps : int;
  seed : int;
  crashes : bool;
  faults : bool;
  fault_spec : Sched.Fault_plan.spec option;
  gates : Schedule.gates;
}

let default =
  {
    trials = 300;
    sched_trials = 4;
    max_len = 96;
    sched_steps = 2_000;
    seed = 0xC0FFEE;
    crashes = true;
    faults = false;
    fault_spec = None;
    gates = Schedule.default_gates;
  }

type failure = {
  structure : string;
  source : string;
  schedule : int array;
  replay : string;
  crash_plan : (int * int) list;
  fault_spec : string;
  mix_seed : int option;
  verdict : string;
}

type report = {
  structure : string;
  trials : int;
  failures : failure list;
}

(* At most n-1 distinct crashed processes (Definition 1 requires a
   survivor); generated lists are sanitized rather than rejected so
   shrinking stays free-form. *)
let sanitize_crashes ~n events =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun (_, p) ->
      if p < 0 || p >= n || Hashtbl.mem seen p || Hashtbl.length seen >= n - 1
      then false
      else begin
        Hashtbl.add seen p ();
        true
      end)
    events

let mk_failure ?(fault_spec = "") ~structure ~source ~crash_events ~mix_seed
    ~verdict schedule =
  {
    structure = structure.Checkable.name;
    source;
    schedule;
    replay = Sched.Scheduler.replay_to_string schedule;
    crash_plan = crash_events;
    fault_spec;
    mix_seed;
    verdict;
  }

let qcheck_source ~structure ~n ~ops ~config =
  let open QCheck2 in
  let gen =
    let open Gen in
    let sched = list_size (int_range 1 config.max_len) (int_range 0 (n - 1)) in
    let crash =
      if config.crashes && n >= 2 then
        list_size (int_range 0 (n - 1))
          (pair (int_range 0 config.max_len) (int_range 0 (n - 1)))
      else pure []
    in
    triple sched crash (int_range 0 1_000_000)
  in
  let outcome_of (sched, crash, mix) =
    let fault_plan =
      Sched.Fault_plan.of_crash_plan
        (Sched.Crash_plan.of_list (sanitize_crashes ~n crash))
    in
    Schedule.run ~fault_plan ~gates:config.gates ~mix_seed:mix ~structure ~n
      ~ops ~tail:Round_robin (Array.of_list sched)
  in
  let prop case = not (Schedule.is_bad (outcome_of case).verdict) in
  let cell =
    Test.make_cell ~count:config.trials ~max_fail:1
      ~name:(structure.Checkable.name ^ "-fuzz") gen prop
  in
  let rand = Random.State.make [| config.seed |] in
  let result = Test.check_cell ~rand cell in
  match TestResult.get_state result with
  | TestResult.Success -> []
  | TestResult.Failed { instances = [] } | TestResult.Failed_other _ -> []
  | TestResult.Failed { instances = { instance = sched, crash, mix; _ } :: _ }
    ->
      (* QCheck already shrank the triple; ddmin the effective
         schedule for a tighter witness. *)
      let crash_events = sanitize_crashes ~n crash in
      let fault_plan =
        Sched.Fault_plan.of_crash_plan (Sched.Crash_plan.of_list crash_events)
      in
      let out = outcome_of (sched, crash, mix) in
      let minimal =
        Schedule.shrink ~fault_plan ~gates:config.gates ~mix_seed:mix
          ~structure ~n ~ops ~tail:Round_robin out.executed
      in
      let final =
        Schedule.run ~fault_plan ~gates:config.gates ~mix_seed:mix ~structure
          ~n ~ops ~tail:Round_robin minimal
      in
      [
        mk_failure ~structure ~source:"qcheck" ~crash_events
          ~mix_seed:(Some mix)
          ~verdict:(Schedule.verdict_to_string final.verdict)
          final.executed;
      ]
  | TestResult.Error { instance = _; exn; _ } ->
      [
        mk_failure ~structure ~source:"qcheck" ~crash_events:[] ~mix_seed:None
          ~verdict:("exception: " ^ Printexc.to_string exn)
          [||];
      ]

let adversaries ~n =
  [
    ("uniform", fun () -> Sched.Scheduler.uniform);
    ("round-robin", fun () -> Sched.Scheduler.round_robin ());
    ("zipf-1.5", fun () -> Sched.Scheduler.zipf ~n ~alpha:1.5);
    ("quantum-7", fun () -> Sched.Scheduler.quantum ~length:7);
    ( "starver+theta",
      fun () ->
        Sched.Scheduler.with_weak_fairness ~theta:0.05
          (Sched.Scheduler.starver ~victim:(n - 1)) );
  ]

let scheduler_source ~structure ~n ~ops ~config =
  let failures = ref [] in
  List.iter
    (fun (sched_name, make_sched) ->
      for t = 0 to config.sched_trials - 1 do
        let mix = (config.seed * 31) + t in
        let inst = structure.Checkable.make ~n ~ops ~mix_seed:mix () in
        let r =
          Sim.Executor.exec
            ~config:
              Sim.Executor.Config.(
                default
                |> with_seed (config.seed + (t * 7919))
                |> with_trace true)
            ~scheduler:(make_sched ()) ~n
            ~stop:(Steps config.sched_steps)
            inst.spec
        in
        let verdict = Schedule.verdict_of ~gates:config.gates inst in
        if Schedule.is_bad verdict then begin
          let trace = Sched.Trace.to_array (Option.get r.trace) in
          let minimal =
            Schedule.shrink ~gates:config.gates ~mix_seed:mix ~structure ~n
              ~ops ~tail:Stop trace
          in
          let final =
            Schedule.run ~gates:config.gates ~mix_seed:mix ~structure ~n ~ops
              ~tail:Stop minimal
          in
          failures :=
            mk_failure ~structure ~source:sched_name ~crash_events:[]
              ~mix_seed:(Some mix)
              ~verdict:(Schedule.verdict_to_string final.verdict)
              final.executed
            :: !failures
        end
      done)
    (adversaries ~n);
  List.rev !failures

(* Chaos pass: delegate to {!Chaos} — default mixed fault spec unless
   the config carries its own — and adapt its failures to this
   module's report shape. *)
let chaos_source ~structure ~n ~ops ~config =
  if not config.faults then ([], 0)
  else begin
    let chaos_config =
      { Chaos.default with seed = config.seed; gates = config.gates }
    in
    let spec =
      Option.value config.fault_spec ~default:Chaos.default_spec
    in
    let report = Chaos.run ~config:chaos_config ~spec ~structure ~n ~ops () in
    ( List.map
        (fun (f : Chaos.failure) ->
          {
            structure = f.structure;
            source = "chaos";
            schedule = f.schedule;
            replay = f.replay;
            crash_plan = [];
            fault_spec = f.fault_spec;
            mix_seed = Some f.mix_seed;
            verdict = f.verdict;
          })
        report.failures,
      report.trials )
  end

let fuzz ?(config = default) ~structure ~n ~ops () =
  let qc = qcheck_source ~structure ~n ~ops ~config in
  let sc = scheduler_source ~structure ~n ~ops ~config in
  let ch, chaos_trials = chaos_source ~structure ~n ~ops ~config in
  {
    structure = structure.Checkable.name;
    trials =
      config.trials
      + (config.sched_trials * List.length (adversaries ~n))
      + chaos_trials;
    failures = qc @ sc @ ch;
  }
