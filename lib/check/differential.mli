(** Interpreter-vs-compiled differential harness.

    Generates randomized register-machine programs, schedules,
    configurations and fault plans, runs each case through both
    {!Sim.Executor.exec} (on {!Sim.Compile.to_program}) and
    {!Sim.Executor.exec_compiled}, and compares result fingerprints,
    invariant observation streams and final memory snapshots.  The
    compiled executor's byte-identity contract is exactly "no case
    ever differs"; the QCheck2 suite in test_compile.ml drives this
    module with seeded generators. *)

type case = {
  id : int;
  n : int;
  cells : int;
  instrs : Sim.Compile.instr list;
  seed : int;
  trace : bool;
  record_samples : bool;
  fault_events : (int * Sched.Fault_plan.event) list;
  spurious : (int option * float) list;
  max_steps : int;
  invariant_interval : int option;
  choose_rr : bool;
  stop : [ `Steps of int | `Completions of int ];
}

type outcome = { equal : bool; detail : string }

val gen_case : id:int -> rng:Stats.Rng.t -> case
(** One random case.  Generated programs always terminate between
    suspension points (local branches only go forward) and keep every
    shared-memory access in bounds. *)

val run_case : case -> outcome
(** Run both paths on fresh memories and compare. *)

val case_to_string : case -> string
(** Reproduction-oriented rendering (settings + disassembly). *)

val run_trials : seed:int -> trials:int -> (case * outcome) option
(** First failing case, if any. *)
