(* Bounded exhaustive interleaving enumeration.

   OCaml 5 effect continuations are one-shot, so the explorer cannot
   snapshot-and-backtrack a running simulation; instead every DFS node
   re-executes its schedule prefix from scratch through the executor's
   [choose] hook (stateless search a la Verisoft).  A node's frontier
   — enabled processes, their pending shared-memory operations, the
   memory snapshot — comes straight from the replayed run's result.

   Two prunings keep the tree tractable:
   - sleep sets (DPOR-lite): after exploring the child that schedules
     process i, later siblings need not re-explore orderings that
     merely commute with it — j stays asleep under i exactly when
     their pending operations are independent (different cells, or
     both reads);
   - state hashing: a frontier whose (memory, per-process pending op,
     per-process completed count) was already expanded is not expanded
     again.  Program positions are determined by completed counts
     because Checkable workloads are deterministic straight-line
     operation sequences.

   Both prunings are exact for the stock (correct) structures; for
   bug hunting they are heuristics that preserve at least one witness
   of any lost-update interleaving in practice, and both can be
   switched off for a truly brute-force sweep. *)

module Checkable = Scu.Checkable

type config = {
  max_nodes : int;
  max_depth : int;
  prune_states : bool;
  sleep_sets : bool;
  gates : Schedule.gates;
}

let default =
  {
    max_nodes = 20_000;
    max_depth = 64;
    prune_states = true;
    sleep_sets = true;
    gates = Schedule.default_gates;
  }

type violation = { schedule : int array; verdict : Schedule.verdict }

type report = {
  nodes : int;
  terminals : int;
  violations : violation list;
  pruned_by_state : int;
  pruned_by_sleep : int;
  exhausted : bool;
}

let addr = function
  | Sim.Memory.Read a
  | Write (a, _)
  | Cas (a, _, _)
  | Cas_get (a, _, _)
  | Faa (a, _) ->
      a

let is_read = function Sim.Memory.Read _ -> true | _ -> false
let independent a b = addr a <> addr b || (is_read a && is_read b)

let explore ?(config = default) ?mix_seed ~structure ~n ~ops () =
  let seen = Hashtbl.create 4096 in
  let nodes = ref 0 in
  let terminals = ref 0 in
  let pruned_state = ref 0 in
  let pruned_sleep = ref 0 in
  let budget_hit = ref false in
  let violations = ref [] in
  let rec visit prefix depth sleep =
    if !nodes >= config.max_nodes then budget_hit := true
    else begin
      incr nodes;
      let out =
        Schedule.run ~gates:config.gates ?mix_seed ~structure ~n ~ops
          ~tail:Stop
          (Array.of_list (List.rev prefix))
      in
      if Schedule.is_bad out.verdict then
        (* A violation leaf: every extension stays violating, so do
           not expand — record the (already minimal-depth-first)
           witness schedule instead. *)
        violations :=
          { schedule = out.executed; verdict = out.verdict } :: !violations
      else if out.terminal then incr terminals
      else if depth >= config.max_depth then budget_hit := true
      else begin
        let key = (out.state, out.pending, out.completed) in
        if config.prune_states && Hashtbl.mem seen key then incr pruned_state
        else begin
          if config.prune_states then Hashtbl.add seen key ();
          let sleep = ref (List.filter (fun j -> out.enabled.(j)) sleep) in
          for i = 0 to n - 1 do
            if out.enabled.(i) then
              if config.sleep_sets && List.mem i !sleep then
                incr pruned_sleep
              else begin
                let child_sleep =
                  if not config.sleep_sets then []
                  else
                    List.filter
                      (fun j ->
                        match (out.pending.(j), out.pending.(i)) with
                        | Some oj, Some oi -> independent oj oi
                        | _ -> false)
                      !sleep
                in
                visit (i :: prefix) (depth + 1) child_sleep;
                sleep := i :: !sleep
              end
          done
        end
      end
    end
  in
  visit [] 0 [];
  {
    nodes = !nodes;
    terminals = !terminals;
    violations = List.rev !violations;
    pruned_by_state = !pruned_state;
    pruned_by_sleep = !pruned_sleep;
    exhausted = not !budget_hit;
  }
