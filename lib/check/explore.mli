(** Bounded exhaustive interleaving enumeration (stateless-search
    model checking over the simulator's schedules).

    Every DFS node replays its schedule prefix from scratch through
    {!Sim.Executor.run}'s [choose] hook — OCaml effect continuations
    are one-shot, so there is no snapshot/backtrack — then branches on
    the enabled processes at the resulting frontier.  Violations
    (non-linearizable histories, invariant failures) are recorded with
    their exact schedules, which replay byte-for-byte. *)

type config = {
  max_nodes : int;  (** Budget on replayed prefixes. *)
  max_depth : int;  (** Cap on schedule length. *)
  prune_states : bool;
      (** Skip frontiers whose (memory, pending ops, completed counts)
          were already expanded. *)
  sleep_sets : bool;
      (** DPOR-lite: skip sibling orderings of independent pending
          operations (different cells, or both reads). *)
  gates : Schedule.gates;
      (** Judges applied at every frontier (see {!Schedule.gates}). *)
}

val default : config
(** 20k nodes, depth 64, both prunings on, default gates. *)

type violation = { schedule : int array; verdict : Schedule.verdict }

type report = {
  nodes : int;
  terminals : int;  (** Distinct complete executions reached. *)
  violations : violation list;
  pruned_by_state : int;
  pruned_by_sleep : int;
  exhausted : bool;
      (** The search finished within [max_nodes]/[max_depth]; with
          both prunings enabled this means full coverage for correct
          structures (prunings only skip redundant interleavings when
          the monitored property is state-determined). *)
}

val explore :
  ?config:config ->
  ?mix_seed:int ->
  structure:Scu.Checkable.t ->
  n:int ->
  ops:int ->
  unit ->
  report
