(** Random-schedule fuzzing with shrinking.

    Source one: QCheck2-generated (schedule, crash plan, operation
    mix) triples — QCheck's integrated shrinking finds a small failing
    triple, then a greedy {!Schedule.ddmin} pass tightens the
    effective schedule further.  Source two: the repository's own
    adversarial schedulers (zipf, quantum, weakly-fair starver, ...)
    drive traced runs whose traces are replayed and minimized the same
    way on failure.  Every reported failure replays byte-for-byte via
    [Schedule.run] or `repro check --replay`. *)

type config = {
  trials : int;  (** QCheck cases per structure. *)
  sched_trials : int;  (** Runs per adversarial scheduler. *)
  max_len : int;  (** Longest generated schedule prefix. *)
  sched_steps : int;  (** Step budget of scheduler-driven runs. *)
  seed : int;  (** Master seed; all randomness derives from it. *)
  crashes : bool;  (** Also generate crash plans (n >= 2). *)
  faults : bool;
      (** Also run a {!Chaos} pass (random fault plans with
          crash–recovery, stalls, spurious CAS) under [fault_spec] (or
          {!Chaos.default_spec}).  Off by default. *)
  fault_spec : Sched.Fault_plan.spec option;
      (** Fault-rate spec for the chaos pass; [None] means
          {!Chaos.default_spec}.  Lets scenario presets carry their own
          rate tiers through the fuzzer unchanged. *)
  gates : Schedule.gates;
      (** Judges applied to every trial (see {!Schedule.gates}). *)
}

val default : config

type failure = {
  structure : string;
  source : string;  (** ["qcheck"], ["chaos"], or the adversary's name. *)
  schedule : int array;  (** Minimal failing schedule. *)
  replay : string;  (** {!Sched.Scheduler.replay_to_string} form. *)
  crash_plan : (int * int) list;
  fault_spec : string;
      (** Shrunk fault plan in [--faults] grammar ([""] for non-chaos
          sources). *)
  mix_seed : int option;
  verdict : string;
}

type report = { structure : string; trials : int; failures : failure list }

val fuzz :
  ?config:config -> structure:Scu.Checkable.t -> n:int -> ops:int -> unit -> report
