(** Chaos fuzzing: random schedules under randomly instantiated fault
    plans ({!Sched.Fault_plan} — crash–recovery, stall windows,
    spurious CAS failure).

    Each trial draws a random schedule prefix, operation mix, and a
    concrete fault plan instantiated from the given spec's rates, then
    replays it with a round-robin tail and judges the resulting
    history under the mark-aware partial-history rule.  A failure is
    shrunk on two axes (schedule by ddmin with the plan fixed, then
    fault events by ddmin with the schedule fixed, then the spurious
    rates dropped if unneeded) and replays byte-for-byte from
    (schedule, fault plan, mix seed) — the triple `repro chaos`
    serializes into its violation artifacts. *)

type config = {
  trials : int;  (** Trials per structure. *)
  max_len : int;  (** Longest generated schedule prefix. *)
  seed : int;  (** Master seed; all randomness derives from it. *)
  gates : Schedule.gates;  (** Judges applied per trial. *)
}

val default : config

val default_spec : Sched.Fault_plan.spec
(** A mixed drill: 1% crash and stall rates, 5% recovery, stall
    windows of 5 steps, 10% spurious CAS failure.  What {!Fuzz} uses
    when its [faults] flag is set. *)

type failure = {
  structure : string;
  schedule : int array;  (** Minimal failing schedule (effective form). *)
  replay : string;  (** {!Sched.Scheduler.replay_to_string} form. *)
  faults : Sched.Fault_plan.t;  (** Minimal concrete fault plan. *)
  fault_spec : string;  (** [faults] in [--faults] grammar form. *)
  mix_seed : int;
  verdict : string;
}

type report = { structure : string; trials : int; failures : failure list }

val run :
  ?config:config ->
  spec:Sched.Fault_plan.spec ->
  structure:Scu.Checkable.t ->
  n:int ->
  ops:int ->
  unit ->
  report
(** Fault plans are instantiated per trial from [spec]; draws whose
    merged plan would permanently crash every process are skipped.
    Deterministic for a given (config, spec, structure, n, ops). *)
