(* Interpreter-vs-compiled differential harness.

   The compiled executor ([Sim.Executor.exec_compiled]) exists purely
   for speed: its contract is that for any program, scheduler,
   configuration and fault plan it produces results *byte-identical*
   to the effect interpreter running [Sim.Compile.to_program] of the
   same code.  This module generates randomized cases — structured
   register-machine programs, seeds, schedules, trace/sample flags,
   fault plans (crash, restart, stall, spurious CAS), invariant
   cadences, choice hooks, step- and completion-style stops — runs
   both paths on fresh memories, and compares [Executor.fingerprint],
   the invariant observation streams, and the final memory snapshots.

   Program generation is structured so every case terminates: a
   program is a ring of segments, each starting with a shared-memory
   instruction (a suspension point), with local instructions that only
   branch *forward* (to a later segment or the tail).  The only
   backward edge is the tail's jump to the first segment, which lands
   on a shared op — so [run_local] always parks after a bounded number
   of local instructions.  Shared-op address registers are loaded in
   the prologue and never overwritten, keeping every access in
   bounds. *)

type case = {
  id : int;  (** Trial index, for reporting. *)
  n : int;
  cells : int;
  instrs : Sim.Compile.instr list;
  seed : int;
  trace : bool;
  record_samples : bool;
  fault_events : (int * Sched.Fault_plan.event) list;
  spurious : (int option * float) list;
  max_steps : int;
  invariant_interval : int option;
  choose_rr : bool;
  stop : [ `Steps of int | `Completions of int ];
}

type outcome = { equal : bool; detail : string }

(* Registers 3 and 4 hold block addresses for the whole run; locals
   may only write 1, 2, 5, 6, 7 (0 is the shared-result register,
   written by the executor itself). *)
let addr_regs = [| 3; 4 |]
let scratch_regs = [| 1; 2; 5; 6; 7 |]

let gen_case ~id ~rng =
  let open Sim.Compile in
  let int b = Stats.Rng.int rng b in
  let pick a = a.(int (Array.length a)) in
  let n = 1 + int 4 in
  let cells = 2 + int 4 in
  let addr () = 1 + int cells in
  let segments = 1 + int 4 in
  let seg_label k = Printf.sprintf "seg%d" k in
  let shared_op () =
    let a = pick addr_regs in
    match int 5 with
    | 0 -> Read a
    | 1 -> Write (a, pick scratch_regs)
    | 2 -> Cas (a, pick scratch_regs, pick scratch_regs)
    | 3 -> Cas_get (a, pick scratch_regs, pick scratch_regs)
    | _ -> Faa (a, pick scratch_regs)
  in
  (* Local instructions between suspension points.  Branches go only
     forward: to a strictly later segment, or to the tail. *)
  let local ~seg () =
    let d = pick scratch_regs in
    let s () = int Sim.Compile.nregs in
    let fwd () =
      let later = segments - seg - 1 in
      if later = 0 then "tail" else
        let j = 1 + int (later + 1) in
        if seg + j >= segments then "tail" else seg_label (seg + j)
    in
    match int 12 with
    | 0 -> Mov (d, s ())
    | 1 -> Addi (d, s (), int 7 - 3)
    | 2 -> Add (d, s (), s ())
    | 3 -> Sub (d, s (), s ())
    | 4 -> Loadi (d, int 16)
    | 5 -> Rand (d, 1 + int 8)
    | 6 -> Now d
    | 7 -> Pid d
    | 8 -> Nproc d
    | 9 -> Complete
    | 10 -> Complete_method (int 3)
    | _ -> (
        match int 3 with
        | 0 -> Beq (s (), s (), fwd ())
        | 1 -> Bne (s (), s (), fwd ())
        | _ -> Blt (s (), s (), fwd ()))
  in
  let body =
    List.concat
      (List.init segments (fun k ->
           (Label (seg_label k) :: shared_op ()
           :: List.init (int 4) (fun _ -> local ~seg:k ()))))
  in
  let tail =
    Label "tail"
    ::
    (match int 5 with
    | 0 -> [ Complete; Halt ]
    | 1 -> [ Halt ]
    | _ -> [ Complete; Jmp (seg_label 0) ])
  in
  let prologue =
    [ Loadi (addr_regs.(0), addr ()); Loadi (addr_regs.(1), addr ()) ]
  in
  let instrs = prologue @ body @ tail in
  (* Fault plan: process 0 is never crashed, so the plan always
     validates; everyone is fair game for stalls and spurious CAS. *)
  let fault_events =
    List.concat
      (List.init n (fun p ->
           let crashes =
             if p > 0 && int 4 = 0 then
               let t = int 200 in
               (t, Sched.Fault_plan.Crash p)
               ::
               (if int 2 = 0 then
                  [ (t + 1 + int 100, Sched.Fault_plan.Restart p) ]
                else [])
             else []
           in
           let stalls =
             if int 5 = 0 then [ (int 200, Sched.Fault_plan.Stall (p, int 12)) ]
             else []
           in
           crashes @ stalls))
  in
  let spurious =
    match int 4 with
    | 0 -> [ (None, float_of_int (1 + int 4) /. 10.) ]
    | 1 -> [ (Some (int n), float_of_int (1 + int 8) /. 10.) ]
    | _ -> []
  in
  {
    id;
    n;
    cells;
    instrs;
    seed = int 1_000_000;
    trace = int 2 = 0;
    record_samples = int 3 = 0;
    fault_events;
    spurious;
    max_steps = 200 + int 2_000;
    invariant_interval = (if int 3 = 0 then Some (1 + int 30) else None);
    choose_rr = fault_events = [] && spurious = [] && int 5 = 0;
    stop = (if int 4 = 0 then `Completions (1 + int 20) else `Steps (int 1_500));
  }

(* Deterministic round-robin choice hook: smallest alive index after
   the previously chosen one.  Stateful per run, so each executor
   path gets its own instance. *)
let round_robin () =
  let last = ref (-1) in
  fun ~alive ~time:_ ->
    let n = Array.length alive in
    let rec find k tries =
      if tries >= n then None
      else if alive.(k mod n) then begin
        last := k mod n;
        Some (k mod n)
      end
      else find (k + 1) (tries + 1)
    in
    find (!last + 1) 0

let build_spec case =
  let memory = Sim.Memory.create () in
  ignore (Sim.Memory.alloc memory ~size:case.cells);
  {
    Sim.Compile.name = Printf.sprintf "diff-%d" case.id;
    memory;
    code = Sim.Compile.assemble case.instrs;
  }

let config_of case ~observations =
  let open Sim.Executor.Config in
  let fault_plan = Sched.Fault_plan.make ~spurious:case.spurious case.fault_events in
  default
  |> with_seed case.seed
  |> with_trace case.trace
  |> with_samples case.record_samples
  |> with_faults fault_plan
  |> with_max_steps case.max_steps
  |> (match case.invariant_interval with
     | None -> Fun.id
     | Some interval ->
         with_invariant ~interval (fun mem ~time ->
             Buffer.add_string observations
               (Printf.sprintf "%d:%s;" time
                  (String.concat ","
                     (Array.to_list
                        (Array.map string_of_int (Sim.Memory.snapshot mem)))))))
  |> if case.choose_rr then with_choose (round_robin ()) else Fun.id

let stop_of case =
  match case.stop with
  | `Steps s -> Sim.Executor.Steps s
  | `Completions c -> Sim.Executor.Completions c

let run_case case =
  let scheduler = Sched.Scheduler.uniform in
  let stop = stop_of case in
  (* Each path gets its own memory, invariant buffer and choice hook —
     the two runs must not share mutable state. *)
  let interp_spec = build_spec case in
  let interp_obs = Buffer.create 64 in
  let interp =
    Sim.Executor.exec
      ~config:(config_of case ~observations:interp_obs)
      ~scheduler ~n:case.n ~stop
      {
        Sim.Executor.name = interp_spec.Sim.Compile.name;
        memory = interp_spec.Sim.Compile.memory;
        program =
          Sim.Compile.to_program ~memory:interp_spec.Sim.Compile.memory
            interp_spec.Sim.Compile.code;
      }
  in
  let compiled_spec = build_spec case in
  let compiled_obs = Buffer.create 64 in
  let compiled =
    Sim.Executor.exec_compiled
      ~config:(config_of case ~observations:compiled_obs)
      ~scheduler ~n:case.n ~stop compiled_spec
  in
  let fp_i = Sim.Executor.fingerprint interp in
  let fp_c = Sim.Executor.fingerprint compiled in
  let mem_i = Sim.Memory.snapshot interp_spec.Sim.Compile.memory in
  let mem_c = Sim.Memory.snapshot compiled_spec.Sim.Compile.memory in
  let obs_i = Buffer.contents interp_obs in
  let obs_c = Buffer.contents compiled_obs in
  if fp_i <> fp_c then
    { equal = false; detail = Printf.sprintf "fingerprints differ:\n  interp:   %s\n  compiled: %s" fp_i fp_c }
  else if mem_i <> mem_c then
    { equal = false; detail = "final memory snapshots differ" }
  else if obs_i <> obs_c then
    {
      equal = false;
      detail =
        Printf.sprintf "invariant observations differ:\n  interp:   %s\n  compiled: %s"
          obs_i obs_c;
    }
  else { equal = true; detail = "" }

let case_to_string case =
  Printf.sprintf
    "case %d: n=%d cells=%d seed=%d trace=%b samples=%b max_steps=%d \
     interval=%s choose_rr=%b stop=%s faults=%s spurious=%d\n%s"
    case.id case.n case.cells case.seed case.trace case.record_samples
    case.max_steps
    (match case.invariant_interval with
    | None -> "-"
    | Some k -> string_of_int k)
    case.choose_rr
    (match case.stop with
    | `Steps s -> Printf.sprintf "steps:%d" s
    | `Completions c -> Printf.sprintf "completions:%d" c)
    (Sched.Fault_plan.to_string
       (Sched.Fault_plan.make ~spurious:case.spurious case.fault_events))
    (List.length case.spurious)
    (Sim.Compile.disassemble (Sim.Compile.assemble case.instrs))

let run_trials ~seed ~trials =
  let rng = Stats.Rng.create ~seed in
  let failure = ref None in
  (try
     for id = 0 to trials - 1 do
       let case = gen_case ~id ~rng in
       let outcome = run_case case in
       if not outcome.equal then begin
         failure := Some (case, outcome);
         raise Exit
       end
     done
   with Exit -> ());
  !failure
