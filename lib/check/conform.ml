(* Statistical conformance gates: re-run the repository's Markov-chain
   predictions against fresh simulations and fail loudly on
   divergence.  Each gate is a pass/fail restatement of one of the
   paper's quantitative claims (Lemmas 7 and 11, Theorem 5, the
   Appendix B counter measurement) or of a scheduler-contract check
   (Definition 1 validity, chi-square uniformity, distributional
   stability), with thresholds several standard errors wide so the
   smoke budgets stay deterministic-in-practice in CI. *)

type gate = { name : string; passed : bool; detail : string }
type report = { gates : gate list; passed : bool }

type budget = {
  steps : int;  (** System steps per simulated run. *)
  phases : int;  (** Balls-into-bins phases. *)
  fuzz_trials : int;  (** Linearizability smoke trials per structure. *)
  rel_tol : float;  (** Relative error allowed on chain predictions. *)
  ks_tol : float;  (** Two-sample KS distance allowed between halves. *)
  sparse_ns : int * int;
      (** Populations (n₁, n₂) for the sparse lumped-chain legs; n₂'s
          chain has (n₂+1)(n₂+2)/2 − 1 states and the pair feeds the
          Richardson extrapolation of W/√n. *)
}

let smoke =
  {
    steps = 60_000;
    phases = 2_000;
    fuzz_trials = 60;
    rel_tol = 0.10;
    ks_tol = 0.05;
    (* n = 450 → 101,925 states: past the 10⁵ mark, ~5 s of
       Gauss–Seidel. *)
    sparse_ns = (256, 450);
  }

let long =
  {
    steps = 1_000_000;
    phases = 20_000;
    fuzz_trials = 600;
    rel_tol = 0.05;
    ks_tol = 0.02;
    (* n = 1000 → 501,500 states (~80 s); nightly only. *)
    sparse_ns = (450, 1000);
  }

let gate name passed detail = { name; passed; detail }

let rel_err ~got ~want = Float.abs (got -. want) /. Float.abs want

let rel_gate name ~got ~want ~tol =
  gate name
    (rel_err ~got ~want <= tol)
    (Printf.sprintf "got %.4g, predicted %.4g (rel err %.3f, tol %.2f)" got
       want
       (rel_err ~got ~want)
       tol)

let metrics ?(record_samples = false) ?(scheduler = Sched.Scheduler.uniform)
    ~seed ~n ~steps spec =
  (Sim.Executor.exec
     ~config:
       Sim.Executor.Config.(
         default |> with_seed seed |> with_samples record_samples)
     ~scheduler ~n ~stop:(Steps steps) spec)
    .metrics

(* Appendix B / Figure 5: simulated counter system latency vs the
   exact stationary latency of the SCU(0,1) system chain; plus Lemma 7
   (fairness ratio = 1) on the same run. *)
let counter_gates ~budget ~seed =
  let n = 8 in
  let c = Scu.Counter.make ~n in
  let m = metrics ~seed ~n ~steps:budget.steps c.spec in
  [
    rel_gate "counter-latency"
      ~got:(Sim.Metrics.mean_system_latency m)
      ~want:(Chains.Predict.exact_scan_validate_latency ~n)
      ~tol:budget.rel_tol;
    rel_gate "lem7-fairness"
      ~got:(Sim.Metrics.fairness_ratio m)
      ~want:1.0 ~tol:budget.rel_tol;
  ]

(* Lemma 11: parallel code with q steps has W = q exactly. *)
let parallel_gate ~budget ~seed =
  let n = 4 and q = 3 in
  let p = Scu.Parallel_code.make ~n ~q in
  let m = metrics ~seed:(seed + 1) ~n ~steps:budget.steps p.spec in
  rel_gate "lem11-parallel"
    ~got:(Sim.Metrics.mean_system_latency m)
    ~want:(Chains.Parallel_chain.System.system_latency ~n ~q)
    ~tol:budget.rel_tol

(* Theorem 5 / Lemmas 8-9: mean balls-into-bins phase length equals
   the stationary system latency of the SCU chain. *)
let ballsbins_gate ~budget ~seed =
  let n = 16 in
  let g = Ballsbins.Game.create ~n in
  let rng = Stats.Rng.create ~seed:(seed + 2) in
  for _ = 1 to budget.phases / 10 do
    ignore (Ballsbins.Game.run_phase g ~rng)
  done;
  let ps = Ballsbins.Game.run g ~rng ~phases:budget.phases in
  let mean =
    float_of_int
      (List.fold_left (fun acc p -> acc + p.Ballsbins.Game.length) 0 ps)
    /. float_of_int budget.phases
  in
  rel_gate "thm5-phase-length" ~got:mean
    ~want:(Chains.Scu_chain.System.system_latency ~n)
    ~tol:budget.rel_tol

(* Chi-square scheduling-uniformity: the uniform scheduler must pass,
   and the test must have the power to reject a zipf adversary. *)
let chi2_gates ~budget ~seed =
  let n = 8 in
  let trace_counts scheduler seed =
    let c = Scu.Counter.make ~n in
    let r =
      Sim.Executor.exec
        ~config:
          Sim.Executor.Config.(default |> with_seed seed |> with_trace true)
        ~scheduler ~n ~stop:(Steps budget.steps) c.spec
    in
    Sched.Trace.step_counts (Option.get r.trace)
  in
  let uni = trace_counts Sched.Scheduler.uniform (seed + 3) in
  let zipf =
    trace_counts (Sched.Scheduler.zipf ~n ~alpha:1.5) (seed + 4)
  in
  [
    gate "chi2-uniform-pass"
      (Stats.Chi_square.test_uniform ~alpha:0.001 uni)
      (Printf.sprintf "uniform statistic %.2f"
         (Stats.Chi_square.uniform_statistic uni));
    gate "chi2-zipf-reject"
      (not (Stats.Chi_square.test_uniform ~alpha:0.001 zipf))
      (Printf.sprintf "zipf statistic %.2f (power check)"
         (Stats.Chi_square.uniform_statistic zipf));
  ]

(* Distributional stability: two halves of one run's latency samples
   must agree (two-sample KS).  Catches nonstationarity bugs that mean
   comparisons miss. *)
let ks_gate ~budget ~seed =
  let n = 8 in
  let c = Scu.Counter.make ~n in
  let m = metrics ~record_samples:true ~seed:(seed + 5) ~n ~steps:budget.steps c.spec in
  let samples = Sim.Metrics.system_samples m in
  let half = Array.length samples / 2 in
  let d =
    Stats.Ecdf.ks_distance
      (Stats.Ecdf.of_array (Array.sub samples 0 half))
      (Stats.Ecdf.of_array (Array.sub samples half (Array.length samples - half)))
  in
  gate "ks-stability"
    (d <= budget.ks_tol)
    (Printf.sprintf "KS distance between run halves %.4f (tol %.3f, %d samples)"
       d (budget.ks_tol) (Array.length samples))

(* Definition 1 validity, including the once-ill-defined round-robin
   case: with 4 of 5 processes alive its time-averaged distribution is
   exactly 1/4. *)
let validity_gates ~seed =
  let alive = [| true; true; true; false; true |] in
  let rng = Stats.Rng.create ~seed:(seed + 6) in
  let v_uni = Sched.Validity.check Sched.Scheduler.uniform ~rng ~alive () in
  let v_rr =
    Sched.Validity.check (Sched.Scheduler.round_robin ()) ~rng ~alive ()
  in
  let v_zipf =
    Sched.Validity.check
      (Sched.Scheduler.zipf ~n:5 ~alpha:1.0)
      ~rng ~alive ()
  in
  [
    gate "validity-uniform"
      (v_uni.well_formed && v_uni.weak_fair && v_uni.no_dead_scheduled)
      (Printf.sprintf "min alive probability %.4f" v_uni.min_alive_probability);
    gate "validity-round-robin"
      (v_rr.well_formed
      && Float.abs (v_rr.min_alive_probability -. 0.25) < 1e-9)
      (Printf.sprintf "time-averaged min probability %.6f (want exactly 0.25)"
         v_rr.min_alive_probability);
    gate "validity-zipf"
      (v_zipf.well_formed && v_zipf.weak_fair && v_zipf.no_dead_scheduled)
      (Printf.sprintf "min alive probability %.4f vs declared theta %.4f"
         v_zipf.min_alive_probability
         (Sched.Scheduler.zipf ~n:5 ~alpha:1.0).theta);
  ]

(* Linearizability smoke over every stock structure, and a power check
   that the same detector catches a seeded bug. *)
let linearizability_gates ~budget ~seed =
  let fuzz_cfg structure n ops =
    Fuzz.fuzz
      ~config:
        {
          Fuzz.default with
          trials = budget.fuzz_trials;
          sched_trials = 2;
          seed;
        }
      ~structure ~n ~ops ()
  in
  let stock_gates =
    List.map
      (fun (name, n, ops) ->
        let r = fuzz_cfg (Scu.Checkable.find name) n ops in
        gate ("linearizable-" ^ name)
          (r.Fuzz.failures = [])
          (Printf.sprintf "%d fuzz trials, %d failures" r.trials
             (List.length r.failures)))
      [
        ("cas-counter", 3, 3);
        ("faa-counter", 3, 3);
        ("treiber", 3, 3);
        ("msqueue", 4, 2);
        ("elimination-stack", 3, 3);
        ("waitfree-counter", 3, 2);
      ]
  in
  let power =
    let r = fuzz_cfg (Scu.Checkable.find "treiber-nocas") 2 2 in
    gate "detector-power"
      (r.Fuzz.failures <> [])
      (Printf.sprintf
         "seeded treiber-nocas bug caught %d times in %d trials (power check)"
         (List.length r.Fuzz.failures)
         r.trials)
  in
  stock_gates @ [ power ]

(* Tentpole cross-validation: three independent legs of the Θ(√n)
   completion-law, each reaching a scale the others cannot.

   Leg 1 (exact, sparse): the lumped (a, b) chain in CSR form, solved
   by Gauss–Seidel at 10⁵ states (smoke) / 5·10⁵ (long) — far past the
   dense solver's ~4000-state ceiling — and pinned three ways: against
   the dense path where both exist, against the √(πn) asymptote
   directly, and via Richardson extrapolation (the W(n) ≈ √(πn) + c
   tail makes the slope of W against √n converge to √π like 1/n, so
   the extrapolated constant lands within ~1e-3 already at n ≈ 450).

   Leg 2 (simulation): the compiled-executor counter at n = 32,
   against the exact chain latency — the measured leg of Figure 5.

   Leg 3 (mean field): the RK4 fluid limit, evaluated directly at
   n = 10⁶ (cost O(√n), no state space), against its closed form
   √(2n); and the exact/mean-field ratio against the √(π/2)
   fluctuation correction, which ties legs 1 and 3 together. *)
let scaling_gates ~budget ~seed =
  let n1, n2 = budget.sparse_ns in
  let w1 = Chains.Scu_chain.System.sparse_latency ~n:n1 () in
  let w2 = Chains.Scu_chain.System.sparse_latency ~n:n2 () in
  let sqrtn n = sqrt (float_of_int n) in
  let sim_latency =
    let n = 32 in
    let c = Scu.Counter.make_compiled ~n in
    let config = Sim.Executor.Config.(default |> with_seed (seed + 7)) in
    let r =
      Sim.Executor.exec_compiled ~config ~scheduler:Sched.Scheduler.uniform ~n
        ~stop:(Steps budget.steps) c.cspec
    in
    Sim.Metrics.mean_system_latency r.metrics
  in
  [
    rel_gate "sparse-vs-dense-latency"
      ~got:(Chains.Scu_chain.System.sparse_latency ~n:64 ())
      ~want:(Chains.Predict.exact_scan_validate_latency ~n:64)
      ~tol:1e-9;
    rel_gate
      (Printf.sprintf "sparse-at-scale (n=%d, %d states)" n2
         (((n2 + 1) * (n2 + 2) / 2) - 1))
      ~got:w2
      ~want:(Chains.Predict.asymptotic_scan_validate_latency ~n:n2)
      ~tol:0.025;
    rel_gate "sqrt-pi-asymptote (Richardson)"
      ~got:((w2 -. w1) /. (sqrtn n2 -. sqrtn n1))
      ~want:(sqrt Float.pi) ~tol:5e-3;
    rel_gate "sim-leg-sqrtn (n=32 compiled)" ~got:sim_latency
      ~want:(Chains.Predict.exact_scan_validate_latency ~n:32)
      ~tol:budget.rel_tol;
    rel_gate "meanfield-rk4 (n=1e6)"
      ~got:(Chains.Meanfield.latency ~n:1_000_000 ())
      ~want:(Chains.Predict.meanfield_scan_validate_latency ~n:1_000_000)
      ~tol:1e-6;
    rel_gate "fluctuation-correction sqrt(pi/2)"
      ~got:(w2 /. Chains.Predict.meanfield_scan_validate_latency ~n:n2)
      ~want:Chains.Predict.fluctuation_correction ~tol:0.025;
  ]

let run ?(long_budget = false) ~seed () =
  let budget = if long_budget then long else smoke in
  let gates =
    counter_gates ~budget ~seed
    @ [ parallel_gate ~budget ~seed; ballsbins_gate ~budget ~seed ]
    @ chi2_gates ~budget ~seed
    @ [ ks_gate ~budget ~seed ]
    @ validity_gates ~seed
    @ linearizability_gates ~budget ~seed
    @ scaling_gates ~budget ~seed
  in
  { gates; passed = List.for_all (fun (g : gate) -> g.passed) gates }
