(* Deterministic replay of an explicit schedule against a Checkable
   instance, plus the verdict machinery shared by the explorer and the
   fuzzer.  A schedule is an array of process indices; entries naming a
   non-runnable process are normalized to the next runnable one in
   cyclic order, so *every* int array is a valid schedule and shrinking
   never has to maintain validity. *)

module Checkable = Scu.Checkable
module Checker = Linearize.Checker

type tail = Stop | Round_robin

type gates = { lin : bool; shadow : bool }

let default_gates = { lin = true; shadow = false }

type verdict =
  | Linearizable
  | Unchecked
  | Nonlinearizable of (Checkable.op, Checkable.res) Checker.event list
  | Shadow_divergence of (Checkable.op, Checkable.res) Checker.event list
  | Invariant_violation of string

type outcome = {
  verdict : verdict;
  executed : int array;
  enabled : bool array;
  pending : Sim.Memory.op option array;
  state : int array;
  completed : int array;
  terminal : bool;
}

(* Far beyond any doubled simulation stamp, far below overflow. *)
let open_window = max_int / 2

(* Soundness of the partial-history rule: an in-flight Add may or may
   not have taken effect; giving it an open response window lets the
   checker place it wherever needed — including dead last, where an
   extra add can never invalidate earlier results.  An in-flight Take
   or Incr has an unknowable result that *can* constrain the rest of
   the history (a take may have removed an element some completed
   operation's result depends on), so its presence makes the history
   unjudgeable: Unchecked, never a false alarm.

   A *marked* in-flight operation is the exception to both rules: the
   structure has recorded that it already linearized with a known
   result (the MS-queue enqueue past its link CAS), so it is included
   with that result and an open window regardless of its kind. *)
let history inst =
  let completed = inst.Checkable.events () in
  let flight = inst.Checkable.in_flight () in
  let unknowable =
    List.exists
      (fun (proc, op, _) ->
        match (op, inst.Checkable.marked proc) with
        | _, Some _ -> false
        | Checkable.Add _, None -> false
        | (Take | Incr), None -> true)
      flight
  in
  if unknowable then None
  else
    Some
      (completed
      @ List.map
          (fun (proc, op, invoked) ->
            let result =
              match inst.Checkable.marked proc with
              | Some r -> r
              | None -> Checkable.Done
            in
            { Checker.proc; op; result; invoked; returned = open_window })
          flight)

(* Gate order: the memoized checker first (its counterexamples are the
   ones the rest of the tooling prints and shrinks), then the shadow
   replay — so a Shadow_divergence verdict always means the two
   implementations *disagreed*, which is the interesting differential
   signal, not a duplicate of Nonlinearizable. *)
let verdict_of ?(gates = default_gates) inst =
  match history inst with
  | None -> Unchecked
  | Some evs ->
      if gates.lin && not (inst.Checkable.check evs) then Nonlinearizable evs
      else
        match (if gates.shadow then inst.Checkable.shadow evs else None) with
        | Some window -> Shadow_divergence window
        | None -> Linearizable

let is_bad = function
  | Nonlinearizable _ | Shadow_divergence _ | Invariant_violation _ -> true
  | Linearizable | Unchecked -> false

let verdict_to_string = function
  | Linearizable -> "linearizable"
  | Unchecked -> "unchecked (unknowable in-flight operation)"
  | Invariant_violation msg -> "invariant violation: " ^ msg
  | Nonlinearizable evs ->
      Printf.sprintf "non-linearizable history:\n  %s"
        (String.concat "\n  " (List.map Checkable.event_to_string evs))
  | Shadow_divergence window ->
      Printf.sprintf "shadow-state divergence in window:\n  %s"
        (String.concat "\n  " (List.map Checkable.event_to_string window))

let run ?(fault_plan = Sched.Fault_plan.none) ?(gates = default_gates)
    ?mix_seed ~structure ~n ~ops ~tail schedule =
  if n <= 0 then invalid_arg "Schedule.run: n must be positive";
  if n * ops > 62 then
    invalid_arg
      "Schedule.run: n * ops must be <= 62 (linearizability checker limit)";
  let inst = structure.Checkable.make ~n ~ops ?mix_seed () in
  let k = ref 0 in
  let rr = ref 0 in
  let executed = ref [] in
  let choose ~alive ~time:_ =
    let pick_from j =
      let rec go c j =
        if c >= n then None
        else if alive.(j) then Some j
        else go (c + 1) ((j + 1) mod n)
      in
      go 0 (((j mod n) + n) mod n)
    in
    let sel =
      if !k < Array.length schedule then pick_from schedule.(!k)
      else
        match tail with
        | Stop -> None
        | Round_robin -> (
            match pick_from !rr with
            | Some i ->
                rr := (i + 1) mod n;
                Some i
            | None -> None)
    in
    incr k;
    (match sel with Some i -> executed := i :: !executed | None -> ());
    sel
  in
  (* Bounded programs terminate under any schedule: every CAS failure
     is caused by some other process completing a step, so the budget
     is a generous linear headroom, not a tuning knob.  Faults stretch
     it predictably: each restart can re-run a process's whole plan,
     each stall burns its window in idle ticks, and spurious CAS rates
     (validated < 1) multiply retry chains by a bounded factor. *)
  let budget =
    let base = Array.length schedule + (200 * n * (ops + 1)) + 64 in
    let restart_factor = 1 + Sched.Fault_plan.restart_count fault_plan in
    let spurious_factor = if Sched.Fault_plan.has_spurious fault_plan then 4 else 1 in
    (base * restart_factor * spurious_factor)
    + Sched.Fault_plan.stall_total fault_plan
  in
  let failure = ref None in
  let result =
    try
      let config =
        Sim.Executor.Config.(
          default |> with_seed 0 |> with_faults fault_plan
          |> with_max_steps (budget + 1)
          |> with_invariant ~interval:1 inst.invariant
          |> with_choose choose)
      in
      Some
        (Sim.Executor.exec ~config ~scheduler:Sched.Scheduler.uniform ~n
           ~stop:(Steps budget) inst.spec)
    with Failure msg ->
      failure := Some msg;
      None
  in
  let executed = Array.of_list (List.rev !executed) in
  let completed = Array.make n 0 in
  List.iter
    (fun (e : (_, _) Checker.event) ->
      completed.(e.proc) <- completed.(e.proc) + 1)
    (inst.events ());
  match (result, !failure) with
  | None, Some msg ->
      {
        verdict = Invariant_violation msg;
        executed;
        enabled = Array.make n false;
        pending = Array.make n None;
        state = Sim.Memory.snapshot inst.spec.memory;
        completed;
        terminal = true;
      }
  | Some r, _ ->
      let enabled =
        Array.init n (fun i -> r.pending.(i) <> None && not r.crashed.(i))
      in
      {
        verdict = verdict_of ~gates inst;
        executed;
        enabled;
        pending = r.pending;
        state = Sim.Memory.snapshot inst.spec.memory;
        completed;
        terminal = not (Array.exists Fun.id enabled);
      }
  | None, None -> assert false

(* Greedy delta-debugging: remove ever-smaller chunks while the
   predicate keeps failing.  Terminates because every acceptance
   strictly shrinks the array and the chunk size halves otherwise. *)
let ddmin ~fails schedule =
  let cur = ref schedule in
  let chunk = ref (max 1 (Array.length schedule / 2)) in
  let finished = ref false in
  while not !finished do
    let removed_any = ref false in
    let i = ref 0 in
    while !i < Array.length !cur do
      let len = Array.length !cur in
      let c = min !chunk (len - !i) in
      let candidate =
        Array.append (Array.sub !cur 0 !i)
          (Array.sub !cur (!i + c) (len - !i - c))
      in
      if Array.length candidate < len && fails candidate then begin
        cur := candidate;
        removed_any := true
      end
      else i := !i + c
    done;
    if !chunk = 1 then finished := not !removed_any
    else if not !removed_any then chunk := max 1 (!chunk / 2)
  done;
  !cur

let shrink ?fault_plan ?gates ?mix_seed ~structure ~n ~ops ~tail schedule =
  let fails s =
    is_bad
      (run ?fault_plan ?gates ?mix_seed ~structure ~n ~ops ~tail s).verdict
  in
  if not (fails schedule) then schedule else ddmin ~fails schedule
