(** Statistical conformance gates: the repository's Markov-chain
    predictions re-run against fresh simulations as pass/fail checks.

    Gates (smoke or long budgets):
    - [counter-latency] — simulated CAS-counter system latency vs the
      exact SCU(0,1) chain (Appendix B / Figure 5);
    - [lem7-fairness] — individual/system latency ratio = 1 (Lemma 7);
    - [lem11-parallel] — parallel code W = q (Lemma 11);
    - [thm5-phase-length] — balls-into-bins mean phase length vs the
      SCU system chain (Theorem 5);
    - [chi2-uniform-pass] / [chi2-zipf-reject] — scheduling-trace
      uniformity plus a power check that the test rejects a zipf
      adversary (Figures 3/4);
    - [ks-stability] — two-sample KS distance between the halves of
      one run's latency samples (stationarity);
    - [validity-*] — Definition 1 scheduler contracts, including the
      exact 1/k time-averaged round-robin verdict;
    - [linearizable-*] — fuzz smoke over every stock structure;
    - [detector-power] — the same fuzz budget must catch the seeded
      [treiber-nocas] bug;
    - [sparse-vs-dense-latency] / [sparse-at-scale] /
      [sqrt-pi-asymptote] / [sim-leg-sqrtn] / [meanfield-rk4] /
      [fluctuation-correction] — the three-leg cross-validation of the
      Θ(√n) latency law: the lumped (a, b) chain solved sparse at
      ≥ 10⁵ states against the √(πn) asymptote (with Richardson
      extrapolation of the 1/√n tail), the compiled simulator against
      the exact chain, and the mean-field RK4 fluid limit at n = 10⁶
      against √(2n) plus the √(π/2) fluctuation correction.

    Thresholds sit several standard errors out so the smoke budgets
    are deterministic-in-practice for CI. *)

type gate = { name : string; passed : bool; detail : string }
type report = { gates : gate list; passed : bool }

val gate : string -> bool -> string -> gate
(** [gate name passed detail] — bare constructor for gates whose
    verdict is computed elsewhere (the load generator's SLO sweep
    builds its gates in this format so every pass/fail surface in the
    repository renders the same way). *)

val rel_gate : string -> got:float -> want:float -> tol:float -> gate
(** Relative-error gate: passes when
    [|got - want| / |want| <= tol], with the standard
    got/predicted/rel-err detail string. *)

type budget = {
  steps : int;
  phases : int;
  fuzz_trials : int;
  rel_tol : float;
  ks_tol : float;
  sparse_ns : int * int;
      (** Populations (n₁, n₂) for the sparse lumped-chain legs —
          (256, 450) smoke (10⁵ states), (450, 1000) long (5·10⁵). *)
}

val smoke : budget
val long : budget

val run : ?long_budget:bool -> seed:int -> unit -> report
(** All gates under the smoke (default) or long budget.  Every run is
    a pure function of [seed]. *)
