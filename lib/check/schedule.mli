(** Deterministic schedule replay and verdicts — the shared substrate
    of the explorer ({!Explore}) and the fuzzer ({!Fuzz}).

    A schedule is an [int array] of process indices consumed one entry
    per system step.  Entries naming a crashed/terminated/out-of-range
    process are normalized to the next runnable process in cyclic
    order, so every int array is a valid schedule: shrinkers and
    generators never maintain validity invariants.  The *effective*
    schedule actually executed is returned in [executed] and is
    replayable byte-for-byte ({!Sched.Scheduler.replay_to_string}). *)

type tail =
  | Stop  (** Stop at the end of the schedule (explorer frontier). *)
  | Round_robin
      (** Run on to completion round-robin — the deterministic tail
          that turns a fuzzed prefix into a complete, fully checkable
          history. *)

type gates = { lin : bool; shadow : bool }
(** Which judges run on a completed (or soundly partial) history:
    [lin] is the memoized Wing–Gong checker, [shadow] the independent
    window-replay implementation ({!Linearize.Shadow}).  The checker
    runs first, so a {!verdict.Shadow_divergence} always means the two
    implementations disagreed. *)

val default_gates : gates
(** [{ lin = true; shadow = false }] — the historical behaviour; the
    scenario layer turns [shadow] on by default. *)

type verdict =
  | Linearizable
  | Unchecked
      (** An in-flight take/incr at the stopping point makes the
          partial history unjudgeable (its unknown result could
          constrain the rest); never reported as a failure. *)
  | Nonlinearizable of
      (Scu.Checkable.op, Scu.Checkable.res) Linearize.Checker.event list
      (** The offending history (completed operations plus open-window
          in-flight adds). *)
  | Shadow_divergence of
      (Scu.Checkable.op, Scu.Checkable.res) Linearize.Checker.event list
      (** The shadow replay found no spec-consistent order for this
          quiescent window even though the primary checker (if
          enabled) accepted the history — a differential failure of
          one of the two judges. *)
  | Invariant_violation of string
      (** The structure's invariant hook raised mid-run. *)

type outcome = {
  verdict : verdict;
  executed : int array;  (** Effective schedule (normalized picks). *)
  enabled : bool array;
      (** Processes with a pending operation that are not crashed —
          the explorer's branching set at this frontier. *)
  pending : Sim.Memory.op option array;
      (** Each process's next shared-memory operation (for
          independence analysis). *)
  state : int array;  (** Memory snapshot at the stopping point. *)
  completed : int array;  (** Completed operations per process. *)
  terminal : bool;  (** No process can take another step. *)
}

val run :
  ?fault_plan:Sched.Fault_plan.t ->
  ?gates:gates ->
  ?mix_seed:int ->
  structure:Scu.Checkable.t ->
  n:int ->
  ops:int ->
  tail:tail ->
  int array ->
  outcome
(** Replay one schedule against a fresh instance.  Runs the
    structure's invariant hook every step.  Raises [Invalid_argument]
    when [n * ops > 62] (the linearizability checker's limit).

    [fault_plan] adds crashes, crash–recovery, stalls, and spurious
    CAS failures; crash-only schedules use
    {!Sched.Fault_plan.of_crash_plan} (the legacy [crash_plan]
    argument is gone — a crash-only fault plan is byte-identical to
    the old path).  The step budget is stretched to cover restart
    re-runs, stall windows, and bounded retry chains, so fault runs
    with a [Round_robin] tail still drive every surviving process to
    completion. *)

val verdict_of : ?gates:gates -> Scu.Checkable.instance -> verdict
(** Judge an instance in whatever state its run left it: the completed
    history plus the sound partial-history rule (in-flight adds get an
    open response window — placeable last, never a false alarm;
    in-flight takes/incrs make the history [Unchecked]).  A *marked*
    in-flight operation — one the structure recorded as already
    linearized with a known result ({!Scu.Checkable.instance.marked})
    — is included with that result instead, whatever its kind. *)

val is_bad : verdict -> bool
(** True for [Nonlinearizable], [Shadow_divergence], and
    [Invariant_violation]. *)

val verdict_to_string : verdict -> string

val ddmin : fails:('a array -> bool) -> 'a array -> 'a array
(** Greedy delta-debugging on arrays: removes ever-smaller chunks
    while [fails] holds.  The result still satisfies [fails] and is
    1-minimal up to the greedy strategy.  Polymorphic: schedules are
    [int array]s, the chaos harness also shrinks fault-event arrays. *)

val shrink :
  ?fault_plan:Sched.Fault_plan.t ->
  ?gates:gates ->
  ?mix_seed:int ->
  structure:Scu.Checkable.t ->
  n:int ->
  ops:int ->
  tail:tail ->
  int array ->
  int array
(** [ddmin] specialized to "replaying this schedule still yields a bad
    verdict".  Returns the input unchanged if it does not fail. *)
