type 'a node = Nil | Cons of { value : 'a; next : 'a node }
type 'a t = 'a node Atomic.t

let create () = Atomic.make Nil

let push t value =
  let rec attempt steps =
    let top = Atomic.get t in
    if Atomic.compare_and_set t top (Cons { value; next = top }) then steps + 2
    else attempt (steps + 2)
  in
  attempt 0

let pop t =
  let rec attempt steps =
    match Atomic.get t with
    | Nil -> (None, steps + 1)
    | Cons { value; next } as top ->
        if Atomic.compare_and_set t top next then (Some value, steps + 2)
        else attempt (steps + 2)
  in
  attempt 0

let peek t = match Atomic.get t with Nil -> None | Cons { value; _ } -> Some value
let is_empty t = match Atomic.get t with Nil -> true | Cons _ -> false

let to_list t =
  let rec walk acc = function Nil -> List.rev acc | Cons { value; next } -> walk (value :: acc) next in
  walk [] (Atomic.get t)

let length t = List.length (to_list t)
