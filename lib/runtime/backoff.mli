(** Truncated exponential backoff for CAS retry loops on real
    hardware.  Purely a contention-management aid; it does not change
    any correctness property.  (The simulator does not use backoff —
    the paper's model has no notion of it — but the runtime harness
    exposes it as an option so its effect on the completion rate can
    be measured.) *)

type t

val create : ?min_spins:int -> ?max_spins:int -> unit -> t
(** Defaults: 4 to 1024 spins. *)

val once : t -> unit
(** Spin for the current budget ([Domain.cpu_relax] per spin) and
    double it, saturating at [max_spins]. *)

val reset : t -> unit
(** Back to [min_spins] (call after a successful operation). *)

val seconds : ?jitter:Random.State.t -> t -> float
(** The current budget as a sleep duration (1 ms per spin unit, so the
    defaults give 4 ms, 8 ms, … saturating near 1 s) and double it —
    the same truncated-exponential schedule as {!once}, mapped to time
    scales where sleeping beats spinning (e.g. the experiment engine's
    per-cell retry delays).  [jitter] scales each delay by a uniform
    factor in [0.5, 1.5) drawn from the given state, so a caller that
    seeds the state deterministically gets reproducible delays while
    distinct callers still decorrelate. *)
