(** Truncated exponential backoff for CAS retry loops on real
    hardware.  Purely a contention-management aid; it does not change
    any correctness property.  (The simulator does not use backoff —
    the paper's model has no notion of it — but the runtime harness
    exposes it as an option so its effect on the completion rate can
    be measured.) *)

type t

val create : ?min_spins:int -> ?max_spins:int -> unit -> t
(** Defaults: 4 to 1024 spins. *)

val once : t -> unit
(** Spin for the current budget ([Domain.cpu_relax] per spin) and
    double it, saturating at [max_spins]. *)

val reset : t -> unit
(** Back to [min_spins] (call after a successful operation). *)
