type 'a node = { value : 'a option; next : 'a node option Atomic.t }

type 'a t = { head : 'a node Atomic.t; tail : 'a node Atomic.t }

let create () =
  let sentinel = { value = None; next = Atomic.make None } in
  { head = Atomic.make sentinel; tail = Atomic.make sentinel }

let enqueue t v =
  let node = { value = Some v; next = Atomic.make None } in
  let rec attempt steps =
    let tl = Atomic.get t.tail in
    match Atomic.get tl.next with
    | Some n ->
        (* Tail lags: help swing it. *)
        ignore (Atomic.compare_and_set t.tail tl n);
        attempt (steps + 3)
    | None ->
        if Atomic.compare_and_set tl.next None (Some node) then begin
          ignore (Atomic.compare_and_set t.tail tl node);
          steps + 4
        end
        else attempt (steps + 3)
  in
  attempt 0

let dequeue t =
  let rec attempt steps =
    let h = Atomic.get t.head in
    let tl = Atomic.get t.tail in
    let next = Atomic.get h.next in
    if h == tl then
      match next with
      | None -> (None, steps + 3)
      | Some n ->
          ignore (Atomic.compare_and_set t.tail tl n);
          attempt (steps + 4)
    else
      match next with
      | Some n ->
          if Atomic.compare_and_set t.head h n then ((n.value, steps + 4))
          else attempt (steps + 4)
      | None ->
          (* head moved under us; retry *)
          attempt (steps + 3)
  in
  attempt 0

let is_empty t =
  let h = Atomic.get t.head in
  match Atomic.get h.next with None -> true | Some _ -> false

let to_list t =
  let rec walk acc node =
    match Atomic.get node.next with
    | None -> List.rev acc
    | Some n -> (
        match n.value with
        | Some v -> walk (v :: acc) n
        | None -> walk acc n)
  in
  walk [] (Atomic.get t.head)
