(** Treiber stack on OCaml 5 [Atomic]: the real-hardware twin of
    {!Scu.Treiber}.  Standard immutable-node implementation; OCaml's
    GC rules out ABA (a node can't be reused while a pointer to it is
    live). *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> int
(** Returns the number of shared accesses (1 read + 1 CAS per
    attempt). *)

val pop : 'a t -> 'a option * int

val peek : 'a t -> 'a option
val is_empty : 'a t -> bool

val to_list : 'a t -> 'a list
(** Snapshot, top first (single atomic read + pure traversal). *)

val length : 'a t -> int
