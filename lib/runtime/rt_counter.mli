(** Real lock-free fetch-and-increment counters on OCaml 5 [Atomic] —
    the hardware twin of {!Scu.Counter} / {!Scu.Counter_aug}, used by
    the Figure 5 harness.

    Every operation reports the number of shared-memory accesses it
    performed, so the harness can compute the paper's completion rate
    (operations / total steps) without any clock. *)

type t

val create : unit -> t

val get : t -> int

val incr_cas : ?backoff:Backoff.t -> t -> int * int
(** Read-then-CAS loop (the paper's Appendix B algorithm).  Returns
    [(value_obtained, steps)]: steps counts every read and every CAS
    attempt. *)

val incr_faa : t -> int * int
(** Hardware fetch-and-add (the "augmented" primitive): always
    [(value, 1)].  Wait-free; the baseline the recorder uses. *)
