(** Real schedule recording — the paper's §A.2 methodology.

    "The first [method] used an atomic fetch-and-increment operation
    (available in hardware): each process repeatedly calls this
    operation, and records the values received.  We then sort the
    values of each process to recover the total order of steps."

    Here, each domain spins on [Atomic.fetch_and_add] over a shared
    ticket counter, buffering its tickets locally (no shared writes
    besides the FAA itself).  Tickets are merged afterwards into a
    {!Sched.Trace.t} whose τ-th entry is the domain that took step τ,
    ready for the Figure 3 / Figure 4 statistics.

    Caveat recorded in EXPERIMENTS.md: on a machine with fewer cores
    than domains (this container has one), the OS time-slices domains,
    so the local successor distribution (Figure 4) is run-biased even
    though long-run shares (Figure 3) remain fair — the behaviour our
    [Scheduler.quantum] ablation models. *)

val record : domains:int -> steps_per_domain:int -> Sched.Trace.t
(** Spawns [domains] domains; each performs [steps_per_domain] FAAs.
    The returned trace has length [domains * steps_per_domain]. *)

type comparison = {
  ticket_trace : Sched.Trace.t;  (** §A.2's first method. *)
  timestamp_trace : Sched.Trace.t;  (** §A.2's second method. *)
  agreement : float;
      (** Fraction of positions on which the two recovered orders
          agree.  The paper found the timestamp method "interferes
          with the schedule" but otherwise matches; on coarse clocks
          ties also reduce agreement. *)
}

val record_both : domains:int -> steps_per_domain:int -> comparison
(** Both of §A.2's recording methods over the *same* run: each step
    takes a ticket (fetch-and-add) and a monotonic-clock timestamp
    ({!Pool.monotonic_now} — the wall clock steps under NTP and can
    reorder or negate inter-step gaps); the two recovered total orders
    are compared. *)
