type t = int Atomic.t

let create () = Atomic.make 0
let get = Atomic.get

let incr_cas ?backoff t =
  let rec attempt steps =
    let v = Atomic.get t in
    if Atomic.compare_and_set t v (v + 1) then (v, steps + 2)
    else begin
      Option.iter Backoff.once backoff;
      attempt (steps + 2)
    end
  in
  let result = attempt 0 in
  Option.iter Backoff.reset backoff;
  result

let incr_faa t = (Atomic.fetch_and_add t 1, 1)
