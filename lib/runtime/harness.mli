(** Multicore measurement harness — the real-hardware side of the
    Figure 5 experiment (Appendix B).

    The *completion rate* is the number of successful operations
    divided by the total number of shared-memory steps taken by all
    domains (each operation reports its own step count), matching the
    paper's definition.  On a fixed operation budget per domain there
    is no timing involved, so the measurement is exact and
    reproducible even on a loaded machine. *)

type per_domain = {
  operations : int;
  steps : int;
}

type result = {
  domains : int;
  total_operations : int;
  total_steps : int;
  completion_rate : float;
      (** total_operations / total_steps (0 when no steps ran). *)
  per_domain : per_domain array;
  failures : (int * string) list;
      (** [(domain_index, exception)] for every domain whose [op]
          raised; failed domains contribute zero operations and steps. *)
}

val run :
  domains:int ->
  ops_per_domain:int ->
  op:(int -> int) ->
  result
(** [run ~domains ~ops_per_domain ~op] spawns [domains] domains; each
    calls [op domain_index] exactly [ops_per_domain] times.  [op] must
    return the number of shared steps the operation took (the
    [Rt_counter] / [Rt_treiber] / [Rt_msqueue] operations do).

    An exception in one domain's [op] cannot orphan the others: every
    domain is joined unconditionally and per-domain failures are
    surfaced in [failures] instead of re-raised. *)

val counter_completion_rate : domains:int -> ops_per_domain:int -> result
(** The exact Figure 5 workload: concurrent [Rt_counter.incr_cas] on a
    single shared counter. *)
