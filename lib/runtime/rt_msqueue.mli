(** Michael–Scott queue on OCaml 5 [Atomic]: the real-hardware twin of
    {!Scu.Msqueue}.  Two-lock-free-pointer design with helping tail
    swings; GC prevents ABA. *)

type 'a t

val create : unit -> 'a t

val enqueue : 'a t -> 'a -> int
(** Returns the number of shared accesses performed. *)

val dequeue : 'a t -> 'a option * int

val is_empty : 'a t -> bool

val to_list : 'a t -> 'a list
(** Snapshot, head first.  Only an approximation under concurrency;
    exact at quiescence. *)
