type comparison = {
  ticket_trace : Sched.Trace.t;
  timestamp_trace : Sched.Trace.t;
  agreement : float;
}

let record_both ~domains ~steps_per_domain =
  if domains < 1 then invalid_arg "Recorder.record_both: domains must be >= 1";
  if steps_per_domain < 1 then
    invalid_arg "Recorder.record_both: steps_per_domain must be >= 1";
  let ticket = Atomic.make 0 in
  let go = Atomic.make false in
  let worker _i () =
    let tickets = Array.make steps_per_domain 0 in
    let stamps = Array.make steps_per_domain 0. in
    while not (Atomic.get go) do
      Domain.cpu_relax ()
    done;
    for k = 0 to steps_per_domain - 1 do
      (* One "algorithm step" = one FAA; both recording methods see
         the same step.  The stamp clock is CLOCK_MONOTONIC: the wall
         clock steps under NTP adjustments, which would let a later
         step carry an earlier timestamp and silently corrupt the
         recovered total order (negative "latencies" between steps). *)
      tickets.(k) <- Atomic.fetch_and_add ticket 1;
      stamps.(k) <- Pool.monotonic_now ()
    done;
    (tickets, stamps)
  in
  let handles = List.init domains (fun i -> Domain.spawn (worker i)) in
  Atomic.set go true;
  let results = List.map Domain.join handles in
  let total = domains * steps_per_domain in
  (* Method 1 (paper §A.2): sort tickets to recover the total order. *)
  let by_ticket = Array.make total (-1) in
  List.iteri
    (fun domain (tickets, _) -> Array.iter (fun tk -> by_ticket.(tk) <- domain) tickets)
    results;
  (* Method 2: sort timestamps.  Ties (clock granularity) are broken
     arbitrarily but deterministically. *)
  let stamped = Array.make total (0., 0, 0) in
  List.iteri
    (fun domain (_, stamps) ->
      Array.iteri
        (fun k s -> stamped.((domain * steps_per_domain) + k) <- (s, domain, k))
        stamps)
    results;
  Array.sort
    (fun (s1, d1, k1) (s2, d2, k2) ->
      let c = Float.compare s1 s2 in
      if c <> 0 then c
      else
        let c = Int.compare d1 d2 in
        if c <> 0 then c else Int.compare k1 k2)
    stamped;
  let by_stamp = Array.map (fun (_, domain, _) -> domain) stamped in
  (* Agreement: fraction of positions where the two recovered orders
     name the same domain. *)
  let same = ref 0 in
  Array.iteri (fun i d -> if by_stamp.(i) = d then incr same) by_ticket;
  {
    ticket_trace = Sched.Trace.of_array ~n:domains by_ticket;
    timestamp_trace = Sched.Trace.of_array ~n:domains by_stamp;
    agreement = float_of_int !same /. float_of_int total;
  }

let record ~domains ~steps_per_domain =
  if domains < 1 then invalid_arg "Recorder.record: domains must be >= 1";
  if steps_per_domain < 1 then invalid_arg "Recorder.record: steps_per_domain must be >= 1";
  let ticket = Atomic.make 0 in
  let go = Atomic.make false in
  let worker _i () =
    let mine = Array.make steps_per_domain 0 in
    while not (Atomic.get go) do
      Domain.cpu_relax ()
    done;
    for k = 0 to steps_per_domain - 1 do
      mine.(k) <- Atomic.fetch_and_add ticket 1
    done;
    mine
  in
  let handles = List.init domains (fun i -> Domain.spawn (worker i)) in
  Atomic.set go true;
  let tickets = List.map Domain.join handles in
  let total = domains * steps_per_domain in
  let order = Array.make total (-1) in
  List.iteri
    (fun domain mine -> Array.iter (fun tk -> order.(tk) <- domain) mine)
    tickets;
  Sched.Trace.of_array ~n:domains order
