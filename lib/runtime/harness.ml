type per_domain = { operations : int; steps : int }

type result = {
  domains : int;
  total_operations : int;
  total_steps : int;
  completion_rate : float;
  per_domain : per_domain array;
  failures : (int * string) list;
}

let run ~domains ~ops_per_domain ~op =
  if domains < 1 then invalid_arg "Harness.run: domains must be >= 1";
  if ops_per_domain < 1 then invalid_arg "Harness.run: ops_per_domain must be >= 1";
  let go = Atomic.make false in
  (* Workers never let an exception escape: [Domain.join] re-raises a
     worker's exception, and raising out of an early join would orphan
     the remaining domains (they would spin on [go] forever if the
     exception propagated before the release, or leak unjoined
     otherwise).  Every domain is always joined; failures are data. *)
  let worker i () =
    try
      while not (Atomic.get go) do
        Domain.cpu_relax ()
      done;
      let steps = ref 0 in
      for _ = 1 to ops_per_domain do
        steps := !steps + op i
      done;
      Ok { operations = ops_per_domain; steps = !steps }
    with e -> Error (Printexc.to_string e)
  in
  let handles = List.init domains (fun i -> Domain.spawn (worker i)) in
  Atomic.set go true;
  let joined = List.map Domain.join handles in
  let per_domain =
    Array.of_list
      (List.map
         (function Ok d -> d | Error _ -> { operations = 0; steps = 0 })
         joined)
  in
  let failures =
    List.concat
      (List.mapi
         (fun i r -> match r with Ok _ -> [] | Error msg -> [ (i, msg) ])
         joined)
  in
  let total_operations = Array.fold_left (fun acc d -> acc + d.operations) 0 per_domain in
  let total_steps = Array.fold_left (fun acc d -> acc + d.steps) 0 per_domain in
  {
    domains;
    total_operations;
    total_steps;
    completion_rate =
      (if total_steps = 0 then 0.
       else float_of_int total_operations /. float_of_int total_steps);
    per_domain;
    failures;
  }

let counter_completion_rate ~domains ~ops_per_domain =
  let counter = Rt_counter.create () in
  run ~domains ~ops_per_domain ~op:(fun _ ->
      let _, steps = Rt_counter.incr_cas counter in
      steps)
