type per_domain = { operations : int; steps : int }

type result = {
  domains : int;
  total_operations : int;
  total_steps : int;
  completion_rate : float;
  per_domain : per_domain array;
}

let run ~domains ~ops_per_domain ~op =
  if domains < 1 then invalid_arg "Harness.run: domains must be >= 1";
  if ops_per_domain < 1 then invalid_arg "Harness.run: ops_per_domain must be >= 1";
  let go = Atomic.make false in
  let worker i () =
    while not (Atomic.get go) do
      Domain.cpu_relax ()
    done;
    let steps = ref 0 in
    for _ = 1 to ops_per_domain do
      steps := !steps + op i
    done;
    { operations = ops_per_domain; steps = !steps }
  in
  let handles = List.init domains (fun i -> Domain.spawn (worker i)) in
  Atomic.set go true;
  let per_domain = Array.of_list (List.map Domain.join handles) in
  let total_operations = Array.fold_left (fun acc d -> acc + d.operations) 0 per_domain in
  let total_steps = Array.fold_left (fun acc d -> acc + d.steps) 0 per_domain in
  {
    domains;
    total_operations;
    total_steps;
    completion_rate = float_of_int total_operations /. float_of_int total_steps;
    per_domain;
  }

let counter_completion_rate ~domains ~ops_per_domain =
  let counter = Rt_counter.create () in
  run ~domains ~ops_per_domain ~op:(fun _ ->
      let _, steps = Rt_counter.incr_cas counter in
      steps)
