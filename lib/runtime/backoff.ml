type t = { min_spins : int; max_spins : int; mutable current : int }

let create ?(min_spins = 4) ?(max_spins = 1024) () =
  if min_spins < 1 || max_spins < min_spins then
    invalid_arg "Backoff.create: need 1 <= min_spins <= max_spins";
  { min_spins; max_spins; current = min_spins }

let once t =
  for _ = 1 to t.current do
    Domain.cpu_relax ()
  done;
  t.current <- min t.max_spins (t.current * 2)

let reset t = t.current <- t.min_spins

(* One millisecond per spin unit maps the default 4..1024 budget to
   4ms..~1s — retry-loop territory rather than cache-miss territory. *)
let seconds ?jitter t =
  let base = 1e-3 *. float_of_int t.current in
  let scale =
    match jitter with
    | None -> 1.0
    | Some st -> 0.5 +. Random.State.float st 1.0
  in
  t.current <- min t.max_spins (t.current * 2);
  base *. scale
