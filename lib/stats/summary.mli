(** Streaming descriptive statistics (Welford's algorithm).

    Accumulates count, mean, variance, min and max in O(1) space, with
    numerically stable updates.  Two accumulators can be [merge]d, which
    the multicore harness uses to combine per-domain statistics. *)

type t
(** Mutable accumulator. *)

val create : unit -> t

val add : t -> float -> unit
(** Record one observation. *)

val add_many : t -> float array -> unit

val count : t -> int
val mean : t -> float
(** Mean of the observations; [nan] if empty. *)

val variance : t -> float
(** Unbiased sample variance; [nan] if fewer than two observations. *)

val stddev : t -> float
val min : t -> float
val max : t -> float
val total : t -> float
(** Sum of all observations. *)

val stderr : t -> float
(** Standard error of the mean, [stddev / sqrt count]. *)

val merge : t -> t -> t
(** [merge a b] is a fresh accumulator equivalent to having seen both
    streams (Chan et al. parallel variance combination). *)

val of_array : float array -> t

val pp : Format.formatter -> t -> unit
(** Prints [mean ± stderr (n=count, min=…, max=…)]. *)
