(** Empirical distribution of a finite sample: quantiles and CDF.

    Latency-tail comparisons (wait-free vs lock-free, the `abl-wf`
    experiment) are phrased in terms of these quantiles. *)

type t

val of_array : float array -> t
(** Copies and sorts the sample ([Float.compare]).  Raises
    [Invalid_argument] on an empty array or if any element is NaN —
    quantiles of a sample containing NaN are meaningless, and a NaN
    would otherwise silently poison the order statistics. *)

val size : t -> int

val quantile : t -> float -> float
(** [quantile t p] for [p] in [\[0, 1\]], with linear interpolation
    between order statistics. *)

val median : t -> float

val cdf : t -> float -> float
(** [cdf t x] is the fraction of the sample that is [<= x]. *)

val ks_distance : t -> t -> float
(** Two-sample Kolmogorov–Smirnov statistic: [sup_x |cdf a x - cdf b x|],
    evaluated over the pooled sample points (where the supremum of two
    step functions is attained).  0 for identical samples, at most 1.
    The conformance gates use it to flag drift between predicted and
    simulated latency distributions. *)

val minimum : t -> float
val maximum : t -> float

val values : t -> float array
(** The sorted sample (a copy). *)
