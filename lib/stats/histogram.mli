(** Fixed-width-bin histograms over a closed interval.

    Used to summarize latency distributions and to render the
    step-share bar charts behind Figures 3 and 4 as text. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] covers [\[lo, hi)] with [bins] equal bins.
    Requires [lo < hi] and [bins >= 1]. *)

val add : t -> float -> unit
(** Observations outside [\[lo, hi)] are counted in the under/overflow
    tallies, not in any bin. *)

val counts : t -> int array
val underflow : t -> int
val overflow : t -> int
val total : t -> int
(** Total number of observations, including under/overflow. *)

val bin_of : t -> float -> int option
(** Index of the bin [x] falls into, if in range. *)

val bin_lo : t -> int -> float
(** Lower edge of bin [i]. *)

val density : t -> float array
(** Normalized bin masses (sum over in-range bins = in-range fraction
    of observations); all zeros when empty. *)

val pp : Format.formatter -> t -> unit
(** Text rendering, one row per bin with a proportional bar. *)
