(** Growable integer and float vectors (OCaml 5.1 has no [Dynarray]).

    Schedule traces and latency-sample buffers can reach 10⁷+ entries,
    so these are flat, unboxed arrays with amortized-O(1) push. *)

module Int : sig
  type t

  val create : ?capacity:int -> unit -> t
  val push : t -> int -> unit
  val get : t -> int -> int
  val length : t -> int
  val to_array : t -> int array
  val iter : (int -> unit) -> t -> unit
  val clear : t -> unit
end

module Float : sig
  type t

  val create : ?capacity:int -> unit -> t
  val push : t -> float -> unit
  val get : t -> int -> float
  val length : t -> int
  val to_array : t -> float array
  val iter : (float -> unit) -> t -> unit
  val clear : t -> unit
end
