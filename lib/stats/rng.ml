type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy g = { state = g.state }

(* splitmix64 finalizer. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g =
  let seed = bits64 g in
  { state = seed }

(* 62 uniform bits: always non-negative as a native OCaml int. *)
let bits_nonneg g = Int64.to_int (Int64.shift_right_logical (bits64 g) 2)

let int g bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let max = max_int - (max_int mod bound) in
  let rec draw () =
    let v = bits_nonneg g in
    if v >= max then draw () else v mod bound
  in
  draw ()

(* Batched draws for hot loops: one call amortizes the per-draw
   cross-module dispatch.  Bit-for-bit the same stream as [len]
   successive [int] calls — same rejection rule, same order — which
   the compiled executor's determinism proof relies on. *)
let fill_int g bound dst ~len =
  if bound <= 0 then invalid_arg "Rng.fill_int: bound must be positive";
  if len < 0 || len > Array.length dst then
    invalid_arg "Rng.fill_int: bad length";
  let cutoff = max_int - (max_int mod bound) in
  let state = ref g.state in
  for i = 0 to len - 1 do
    let rec draw () =
      state := Int64.add !state golden_gamma;
      let v = Int64.to_int (Int64.shift_right_logical (mix !state) 2) in
      if v >= cutoff then draw () else v mod bound
    in
    Array.unsafe_set dst i (draw ())
  done;
  g.state <- !state

let float g bound =
  if not (bound > 0.) || Float.is_nan bound then
    invalid_arg "Rng.float: bound must be positive";
  (* 53 uniform mantissa bits. *)
  let v = Int64.to_float (Int64.shift_right_logical (bits64 g) 11) in
  bound *. (v /. 9007199254740992.0)

let bool g = Int64.logand (bits64 g) 1L = 1L

let exponential g ~mean =
  if not (mean > 0.) then invalid_arg "Rng.exponential: mean must be positive";
  let u = 1.0 -. float g 1.0 in
  -.mean *. log u

let geometric g ~p =
  if not (p > 0. && p <= 1.) then invalid_arg "Rng.geometric: p out of range";
  if p = 1. then 1
  else
    let u = 1.0 -. float g 1.0 in
    1 + int_of_float (Float.floor (log u /. log (1. -. p)))

let pick_weighted g w =
  let total = Array.fold_left (fun acc x ->
      if x < 0. then invalid_arg "Rng.pick_weighted: negative weight";
      acc +. x) 0. w
  in
  if not (total > 0.) then invalid_arg "Rng.pick_weighted: zero total weight";
  let target = float g total in
  let n = Array.length w in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. w.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let perm g n =
  let a = Array.init n (fun i -> i) in
  shuffle g a;
  a
