(** Log-linear ("HDR"-style) integer histogram with bounded relative
    error and exact merging.

    Latencies in the load harness are counts of simulated system steps
    — non-negative integers spanning several orders of magnitude (a
    fast-path counter increment completes in a handful of steps; a
    queued operation under saturation can wait millions).  A
    fixed-width histogram cannot cover that range without either
    losing the small values or exploding in size, and storing raw
    samples for millions of client sessions is out of the question.

    This accumulator keeps one counter per *log-linear bucket*: each
    power-of-two octave is split into [2^sub_bits] equal sub-buckets,
    so every recorded value is resolved to a bucket whose width is at
    most [2^-sub_bits] of its magnitude (3.125% relative error at the
    default [sub_bits = 5]).  Values below [2^sub_bits] get their own
    unit-width bucket and are exact.  Count, sum, min and max are
    tracked exactly on the side.

    Two histograms with the same [sub_bits] merge by adding bucket
    counts — the merge is exact (no re-bucketing error), commutative
    and associative, which lets each load-generator shard record
    privately and the coordinator combine shard histograms in any
    grouping with a deterministic result. *)

type t
(** Mutable accumulator.  Never shared across domains — record into a
    per-domain histogram and {!merge_into} afterwards. *)

val create : ?sub_bits:int -> unit -> t
(** [sub_bits] (default 5) sets the resolution: [2^sub_bits]
    sub-buckets per octave, giving worst-case relative bucket width
    [2^-sub_bits].  Requires [0 <= sub_bits <= 14].  Memory is
    [O(63 * 2^sub_bits)] words regardless of how many values are
    recorded. *)

val sub_bits : t -> int

val add : t -> int -> unit
(** Record one observation.  Raises [Invalid_argument] on a negative
    value — simulated-step latencies cannot be negative (and a
    negative latency is exactly the wall-clock bug class the monotonic
    recorder clock exists to prevent). *)

val add_n : t -> int -> count:int -> unit
(** [add_n h v ~count] records [v] [count] times in O(1).
    Requires [count >= 0]. *)

val count : t -> int
(** Number of recorded observations. *)

val sum : t -> int
(** Exact sum of all observations (not bucket-approximated). *)

val min_value : t -> int
(** Exact smallest recorded value; 0 when empty. *)

val max_value : t -> int
(** Exact largest recorded value; 0 when empty. *)

val mean : t -> float
(** Exact mean ([sum/count]); [nan] when empty. *)

val quantile : t -> float -> int
(** [quantile h q] for [0 <= q <= 1]: the lower bound of the bucket
    containing the observation of rank [ceil (q * count)] (rank
    clamped to [\[1, count\]]), further clamped into
    [\[min_value, max_value\]] so [quantile h 0. = min_value]; a rank
    equal to [count] reports the exact [max_value], so
    [quantile h 1. = max_value].  Values below [2^sub_bits] are
    returned exactly; above, the result understates the true rank
    value by at most its bucket width ([< 2^-sub_bits]
    relative).  Raises [Invalid_argument] if [q] is outside [0, 1] or
    the histogram is empty. *)

val p50 : t -> int
val p99 : t -> int

val p999 : t -> int
(** {!quantile} at 0.5 / 0.99 / 0.999 — the tail points the SLO gates
    check against the O(n(q + s√n)) individual-latency bound. *)

val merge_into : into:t -> t -> unit
(** [merge_into ~into src] adds every observation of [src] into
    [into], exactly, in O(buckets).  [src] is unchanged.  Raises
    [Invalid_argument] if the two histograms have different
    [sub_bits]. *)

val merge : t -> t -> t
(** Fresh histogram equivalent to having seen both streams.
    Commutative and associative up to observational equality. *)

val copy : t -> t

val fold_buckets : t -> init:'a -> f:('a -> lo:int -> hi:int -> count:int -> 'a) -> 'a
(** Folds over the non-empty buckets in increasing value order.
    [lo] is the bucket's smallest value, [hi] its exclusive upper
    bound ([hi - lo] = bucket width; 1 below [2^sub_bits]). *)

val bucket_lo : t -> int -> int
(** [bucket_lo h v]: the smallest value sharing [v]'s bucket — the
    value {!quantile} reports for ranks landing in that bucket.
    Exposed so tests can state quantile expectations without
    duplicating the bucket arithmetic. *)

val pp : Format.formatter -> t -> unit
(** One line: [n=… mean=… p50=… p99=… p999=… max=…]. *)
