(** Pearson chi-square goodness-of-fit test against a uniform (or given)
    distribution.

    Used to quantify how close a recorded schedule is to the uniform
    stochastic scheduler (Figures 3 and 4): we report the chi-square
    statistic of the per-process step counts against [1/n] and compare
    it with an approximate critical value. *)

val statistic : observed:int array -> expected:float array -> float
(** Σ (o_i − e_i)² / e_i.  Arrays must have equal, non-zero length and
    every expected count must be positive. *)

val uniform_statistic : int array -> float
(** Statistic against the uniform distribution over the same indices. *)

val critical_value : df:int -> alpha:float -> float
(** Approximate upper critical value of the chi-square distribution
    with [df] degrees of freedom, via the Wilson–Hilferty cube-root
    normal approximation.  [alpha] is the tail mass (e.g. 0.01). *)

val test_uniform : ?alpha:float -> int array -> bool
(** [test_uniform counts] is [true] when the uniformity hypothesis is
    NOT rejected at level [alpha] (default 0.01). *)
