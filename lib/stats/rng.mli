(** Deterministic, splittable pseudo-random number generator.

    The implementation is splitmix64 (Steele, Lea, Flood; used as the
    seeding generator of xoshiro).  All experiments in this repository
    take an explicit generator so that every run is reproducible from a
    seed; nothing uses the ambient [Stdlib.Random] state. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator from a 63-bit seed. Generators
    built from the same seed produce identical streams. *)

val copy : t -> t
(** [copy g] is an independent generator with the same current state. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    (statistically) independent of the rest of [g]'s stream.  Used to
    hand child RNGs to subcomponents without sharing state. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform on [0, bound).  Raises [Invalid_argument]
    if [bound <= 0].  Uses rejection sampling, so it is unbiased. *)

val fill_int : t -> int -> int array -> len:int -> unit
(** [fill_int g bound dst ~len] writes [len] draws into [dst.(0)] …
    [dst.(len-1)], consuming the stream exactly as [len] successive
    {!int} calls would (same rejection sampling, same order) but in one
    tight loop — the batched-draw primitive behind the compiled
    executor's scheduler fast path.  Raises [Invalid_argument] if
    [bound <= 0] or [len] exceeds the array. *)

val float : t -> float -> float
(** [float g bound] is uniform on [0, bound).  [bound] must be positive
    and finite. *)

val bool : t -> bool
(** Fair coin flip. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val geometric : t -> p:float -> int
(** [geometric g ~p] is the number of Bernoulli(p) trials up to and
    including the first success (support [1, 2, ...]).
    Requires [0 < p <= 1]. *)

val pick_weighted : t -> float array -> int
(** [pick_weighted g w] samples index [i] with probability
    [w.(i) /. total].  Weights must be non-negative with a positive sum. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val perm : t -> int -> int array
(** [perm g n] is a uniformly random permutation of [0..n-1]. *)
