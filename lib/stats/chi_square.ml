let statistic ~observed ~expected =
  let k = Array.length observed in
  if k = 0 || Array.length expected <> k then
    invalid_arg "Chi_square.statistic: mismatched or empty arrays";
  let acc = ref 0. in
  for i = 0 to k - 1 do
    let e = expected.(i) in
    if not (e > 0.) then invalid_arg "Chi_square.statistic: non-positive expected count";
    let d = float_of_int observed.(i) -. e in
    acc := !acc +. (d *. d /. e)
  done;
  !acc

let uniform_statistic observed =
  let k = Array.length observed in
  let total = Array.fold_left ( + ) 0 observed in
  let expected = Array.make k (float_of_int total /. float_of_int k) in
  statistic ~observed ~expected

(* Inverse of the standard normal CDF (Acklam's rational approximation,
   good to ~1e-9 over (0,1)). *)
let normal_quantile p =
  if not (p > 0. && p < 1.) then invalid_arg "normal_quantile: p out of (0,1)";
  let a = [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
             1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |] in
  let b = [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
             6.680131188771972e+01; -1.328068155288572e+01 |] in
  let c = [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
             -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |] in
  let d = [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
             3.754408661907416e+00 |] in
  let p_low = 0.02425 in
  if p < p_low then
    let q = sqrt (-2. *. log p) in
    (((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5))
    /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.)
  else if p <= 1. -. p_low then
    let q = p -. 0.5 in
    let r = q *. q in
    (((((a.(0) *. r +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r +. a.(5))
    *. q
    /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)) *. r +. 1.)
  else
    let q = sqrt (-2. *. log (1. -. p)) in
    -.((((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5))
       /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.))

let critical_value ~df ~alpha =
  if df < 1 then invalid_arg "Chi_square.critical_value: df must be >= 1";
  if not (alpha > 0. && alpha < 1.) then
    invalid_arg "Chi_square.critical_value: alpha out of (0,1)";
  (* Wilson–Hilferty: chi2_df ≈ df * (1 - 2/(9 df) + z * sqrt(2/(9 df)))^3 *)
  let dff = float_of_int df in
  let z = normal_quantile (1. -. alpha) in
  let t = 1. -. (2. /. (9. *. dff)) +. (z *. sqrt (2. /. (9. *. dff))) in
  dff *. t *. t *. t

let test_uniform ?(alpha = 0.01) observed =
  let stat = uniform_statistic observed in
  stat <= critical_value ~df:(Array.length observed - 1) ~alpha
