(** Aligned text tables.

    Every experiment prints its results as one of these, mirroring the
    rows/series of the paper's figures so `EXPERIMENTS.md` can quote
    them verbatim. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Rows shorter than the header are padded with empty cells; longer
    rows raise [Invalid_argument]. *)

val add_floats : t -> ?label:string -> float list -> unit
(** Convenience: formats each float with %.4g; [label] becomes the
    first cell when provided. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val to_csv : t -> string
(** Comma-separated rendering.  Cells containing commas, double
    quotes, or CR/LF are quoted with embedded quotes doubled (RFC
    4180), so labels like ["zipf, α=1.5"] round-trip. *)

val of_csv : string -> t
(** Inverse of [to_csv]: the first record becomes the header, the rest
    the rows.  Handles RFC 4180 quoting (embedded commas, doubled
    quotes, newlines inside quoted cells) and CRLF line endings.
    Raises [Invalid_argument] on an unterminated quoted cell, an empty
    input, or a row whose width differs from the header. *)

val headers : t -> string list
val rows : t -> string list list
