type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }

let width t = List.length t.headers

let add_row t row =
  let n = List.length row and w = width t in
  if n > w then invalid_arg "Table.add_row: row wider than header";
  let row = if n < w then row @ List.init (w - n) (fun _ -> "") else row in
  t.rows <- t.rows @ [ row ]

let add_floats t ?label floats =
  let cells = List.map (Printf.sprintf "%.4g") floats in
  add_row t (match label with None -> cells | Some l -> l :: cells)

let column_widths t =
  let all = t.headers :: t.rows in
  List.mapi
    (fun i _ ->
      List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 all)
    t.headers

let render_row widths row =
  String.concat "  "
    (List.map2 (fun w cell -> Printf.sprintf "%*s" w cell) widths row)

let to_string t =
  let widths = column_widths t in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  let lines =
    render_row widths t.headers :: sep :: List.map (render_row widths) t.rows
  in
  String.concat "\n" lines ^ "\n"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let quote cell =
  let needs_quoting = function ',' | '"' | '\n' | '\r' -> true | _ -> false in
  if String.exists needs_quoting cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let line row = String.concat "," (List.map quote row) in
  String.concat "\n" (line t.headers :: List.map line t.rows) ^ "\n"

let headers t = t.headers
let rows t = t.rows

let of_csv s =
  (* Single-pass state machine: quoted cells may contain embedded
     newlines, so splitting on lines first would be wrong. *)
  let n = String.length s in
  let parsed = ref [] in
  let row = ref [] in
  let buf = Buffer.create 16 in
  let end_cell () =
    row := Buffer.contents buf :: !row;
    Buffer.clear buf
  in
  let end_row () =
    end_cell ();
    parsed := List.rev !row :: !parsed;
    row := []
  in
  let i = ref 0 in
  let in_quotes = ref false in
  while !i < n do
    let c = s.[!i] in
    if !in_quotes then begin
      (if c = '"' then
         if !i + 1 < n && s.[!i + 1] = '"' then begin
           Buffer.add_char buf '"';
           incr i
         end
         else in_quotes := false
       else Buffer.add_char buf c);
      incr i
    end
    else
      match c with
      | '"' ->
          in_quotes := true;
          incr i
      | ',' ->
          end_cell ();
          incr i
      | '\r' when !i + 1 < n && s.[!i + 1] = '\n' ->
          end_row ();
          i := !i + 2
      | '\n' ->
          end_row ();
          incr i
      | ch ->
          Buffer.add_char buf ch;
          incr i
  done;
  if !in_quotes then invalid_arg "Table.of_csv: unterminated quoted cell";
  if Buffer.length buf > 0 || !row <> [] then end_row ();
  match List.rev !parsed with
  | [] -> invalid_arg "Table.of_csv: no header row"
  | headers :: rest ->
      let w = List.length headers in
      List.iter
        (fun r ->
          if List.length r <> w then
            invalid_arg "Table.of_csv: row width differs from header")
        rest;
      { headers; rows = rest }
