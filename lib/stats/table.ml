type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }

let width t = List.length t.headers

let add_row t row =
  let n = List.length row and w = width t in
  if n > w then invalid_arg "Table.add_row: row wider than header";
  let row = if n < w then row @ List.init (w - n) (fun _ -> "") else row in
  t.rows <- t.rows @ [ row ]

let add_floats t ?label floats =
  let cells = List.map (Printf.sprintf "%.4g") floats in
  add_row t (match label with None -> cells | Some l -> l :: cells)

let column_widths t =
  let all = t.headers :: t.rows in
  List.mapi
    (fun i _ ->
      List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 all)
    t.headers

let render_row widths row =
  String.concat "  "
    (List.map2 (fun w cell -> Printf.sprintf "%*s" w cell) widths row)

let to_string t =
  let widths = column_widths t in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  let lines =
    render_row widths t.headers :: sep :: List.map (render_row widths) t.rows
  in
  String.concat "\n" lines ^ "\n"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let quote cell =
  let needs_quoting = function ',' | '"' | '\n' | '\r' -> true | _ -> false in
  if String.exists needs_quoting cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let line row = String.concat "," (List.map quote row) in
  String.concat "\n" (line t.headers :: List.map line t.rows) ^ "\n"
