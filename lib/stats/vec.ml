module Int = struct
  type t = { mutable data : int array; mutable len : int }

  let create ?(capacity = 16) () = { data = Array.make (max capacity 1) 0; len = 0 }

  let push t x =
    if t.len = Array.length t.data then begin
      let bigger = Array.make (2 * t.len) 0 in
      Array.blit t.data 0 bigger 0 t.len;
      t.data <- bigger
    end;
    t.data.(t.len) <- x;
    t.len <- t.len + 1

  let get t i =
    if i < 0 || i >= t.len then invalid_arg "Vec.Int.get: index out of bounds";
    t.data.(i)

  let length t = t.len
  let to_array t = Array.sub t.data 0 t.len

  let iter f t =
    for i = 0 to t.len - 1 do
      f t.data.(i)
    done

  let clear t = t.len <- 0
end

module Float = struct
  type t = { mutable data : float array; mutable len : int }

  let create ?(capacity = 16) () = { data = Array.make (max capacity 1) 0.; len = 0 }

  let push t x =
    if t.len = Array.length t.data then begin
      let bigger = Array.make (2 * t.len) 0. in
      Array.blit t.data 0 bigger 0 t.len;
      t.data <- bigger
    end;
    t.data.(t.len) <- x;
    t.len <- t.len + 1

  let get t i =
    if i < 0 || i >= t.len then invalid_arg "Vec.Float.get: index out of bounds";
    t.data.(i)

  let length t = t.len
  let to_array t = Array.sub t.data 0 t.len

  let iter f t =
    for i = 0 to t.len - 1 do
      f t.data.(i)
    done

  let clear t = t.len <- 0
end
