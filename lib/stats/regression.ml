type fit = { slope : float; intercept : float; r2 : float }

let linear pts =
  let n = List.length pts in
  if n < 2 then invalid_arg "Regression.linear: need at least two points";
  let nf = float_of_int n in
  let sx = List.fold_left (fun acc (x, _) -> acc +. x) 0. pts in
  let sy = List.fold_left (fun acc (_, y) -> acc +. y) 0. pts in
  let mx = sx /. nf and my = sy /. nf in
  let sxx = List.fold_left (fun acc (x, _) -> acc +. ((x -. mx) *. (x -. mx))) 0. pts in
  let sxy = List.fold_left (fun acc (x, y) -> acc +. ((x -. mx) *. (y -. my))) 0. pts in
  let syy = List.fold_left (fun acc (_, y) -> acc +. ((y -. my) *. (y -. my))) 0. pts in
  if sxx = 0. then invalid_arg "Regression.linear: x values are all equal";
  let slope = sxy /. sxx in
  let intercept = my -. (slope *. mx) in
  let r2 = if syy = 0. then 1. else sxy *. sxy /. (sxx *. syy) in
  { slope; intercept; r2 }

let power_law pts =
  let logged =
    List.map
      (fun (x, y) ->
        if not (x > 0. && y > 0.) then
          invalid_arg "Regression.power_law: coordinates must be positive";
        (log x, log y))
      pts
  in
  linear logged

let scale_to_first ~model pts =
  match pts with
  | [] -> invalid_arg "Regression.scale_to_first: no points"
  | (x0, y0) :: _ ->
      let m0 = model x0 in
      if m0 = 0. then invalid_arg "Regression.scale_to_first: model is zero at first point";
      let c = y0 /. m0 in
      fun x -> c *. model x
