type t = {
  sub_bits : int;
  sub : int;  (* 2^sub_bits: sub-buckets per octave *)
  buckets : int array;
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

(* Highest set bit position of [v > 0]; branchy binary reduction — no
   clz in the stdlib, and this is off the per-step hot path (one call
   per completed operation). *)
let msb v =
  let r = ref 0 and v = ref v in
  if !v lsr 32 <> 0 then (
    r := !r + 32;
    v := !v lsr 32);
  if !v lsr 16 <> 0 then (
    r := !r + 16;
    v := !v lsr 16);
  if !v lsr 8 <> 0 then (
    r := !r + 8;
    v := !v lsr 8);
  if !v lsr 4 <> 0 then (
    r := !r + 4;
    v := !v lsr 4);
  if !v lsr 2 <> 0 then (
    r := !r + 2;
    v := !v lsr 2);
  if !v lsr 1 <> 0 then incr r;
  !r

(* Bucket index of [v >= 0].  Values below [sub = 2^sub_bits] index
   directly (unit-width buckets, exact).  Above, octave [o] (values
   with msb = sub_bits + o - 1) contributes [sub] buckets of width
   [2^(o-1)]: the top [sub_bits + 1] bits of [v] determine the bucket,
   so the relative width is < 2^-sub_bits.  Indices are contiguous:
   v = sub - 1 maps to sub - 1, v = sub to sub. *)
let index_of ~sub_bits ~sub v =
  if v < sub then v
  else
    let m = msb v in
    let octave = m - sub_bits + 1 in
    let offset = (v lsr (m - sub_bits)) - sub in
    (octave * sub) + offset

(* Smallest value mapping to bucket [i] — the inverse of [index_of] on
   bucket lower bounds. *)
let lo_of_index ~sub_bits:_ ~sub i =
  if i < sub then i
  else
    let octave = i / sub and offset = i mod sub in
    (sub + offset) lsl (octave - 1)

(* Exclusive upper bound of bucket [i].  The shift for the very top
   octave can wrap past max_int; clamp (the bound is only reported,
   never indexed). *)
let hi_of_index ~sub_bits ~sub i =
  if i < sub then i + 1
  else
    let hi = lo_of_index ~sub_bits ~sub (i + 1) in
    if hi <= 0 then max_int else hi

(* OCaml ints are 63-bit: msb <= 62, so the largest octave is
   62 - sub_bits + 1 and the largest index is that octave's last
   sub-bucket. *)
let n_buckets ~sub_bits ~sub = (((62 - sub_bits + 1) + 1) * sub) + 0

let create ?(sub_bits = 5) () =
  if sub_bits < 0 || sub_bits > 14 then
    invalid_arg "Hdr.create: sub_bits must be in [0, 14]";
  let sub = 1 lsl sub_bits in
  {
    sub_bits;
    sub;
    buckets = Array.make (n_buckets ~sub_bits ~sub) 0;
    count = 0;
    sum = 0;
    min_v = max_int;
    max_v = min_int;
  }

let sub_bits h = h.sub_bits

let add_n h v ~count =
  if v < 0 then invalid_arg "Hdr.add: negative value";
  if count < 0 then invalid_arg "Hdr.add_n: negative count";
  if count > 0 then begin
    let i = index_of ~sub_bits:h.sub_bits ~sub:h.sub v in
    h.buckets.(i) <- h.buckets.(i) + count;
    h.count <- h.count + count;
    h.sum <- h.sum + (v * count);
    if v < h.min_v then h.min_v <- v;
    if v > h.max_v then h.max_v <- v
  end

let add h v = add_n h v ~count:1
let count h = h.count
let sum h = h.sum
let min_value h = if h.count = 0 then 0 else h.min_v
let max_value h = if h.count = 0 then 0 else h.max_v
let mean h = if h.count = 0 then nan else float_of_int h.sum /. float_of_int h.count

let bucket_lo h v =
  if v < 0 then invalid_arg "Hdr.bucket_lo: negative value";
  lo_of_index ~sub_bits:h.sub_bits ~sub:h.sub
    (index_of ~sub_bits:h.sub_bits ~sub:h.sub v)

let quantile h q =
  if not (q >= 0. && q <= 1.) then
    invalid_arg "Hdr.quantile: q must be in [0, 1]";
  if h.count = 0 then invalid_arg "Hdr.quantile: empty histogram";
  let rank =
    let r = int_of_float (ceil (q *. float_of_int h.count)) in
    if r < 1 then 1 else if r > h.count then h.count else r
  in
  if rank = h.count then h.max_v
  else begin
  let acc = ref 0 and found = ref (-1) and i = ref 0 in
  let nb = Array.length h.buckets in
  while !found < 0 && !i < nb do
    acc := !acc + h.buckets.(!i);
    if !acc >= rank then found := !i;
    incr i
  done;
  (* [rank <= count] guarantees a hit; clamp into the exact observed
     range so q=0 names the true min and q=1 never exceeds the max. *)
  let lo = lo_of_index ~sub_bits:h.sub_bits ~sub:h.sub !found in
  let lo = if lo < h.min_v then h.min_v else lo in
  if lo > h.max_v then h.max_v else lo
  end

let p50 h = quantile h 0.5
let p99 h = quantile h 0.99
let p999 h = quantile h 0.999

let merge_into ~into src =
  if into.sub_bits <> src.sub_bits then
    invalid_arg "Hdr.merge_into: sub_bits mismatch";
  Array.iteri
    (fun i c -> if c <> 0 then into.buckets.(i) <- into.buckets.(i) + c)
    src.buckets;
  into.count <- into.count + src.count;
  into.sum <- into.sum + src.sum;
  if src.count > 0 then begin
    if src.min_v < into.min_v then into.min_v <- src.min_v;
    if src.max_v > into.max_v then into.max_v <- src.max_v
  end

let copy h =
  {
    sub_bits = h.sub_bits;
    sub = h.sub;
    buckets = Array.copy h.buckets;
    count = h.count;
    sum = h.sum;
    min_v = h.min_v;
    max_v = h.max_v;
  }

let merge a b =
  let r = copy a in
  merge_into ~into:r b;
  r

let fold_buckets h ~init ~f =
  let acc = ref init in
  Array.iteri
    (fun i c ->
      if c <> 0 then
        acc :=
          f !acc
            ~lo:(lo_of_index ~sub_bits:h.sub_bits ~sub:h.sub i)
            ~hi:(hi_of_index ~sub_bits:h.sub_bits ~sub:h.sub i)
            ~count:c)
    h.buckets;
  !acc

let pp ppf h =
  if h.count = 0 then Format.fprintf ppf "n=0"
  else
    Format.fprintf ppf "n=%d mean=%.1f p50=%d p99=%d p999=%d max=%d" h.count
      (mean h) (p50 h) (p99 h) (p999 h) (max_value h)
