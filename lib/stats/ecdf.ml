type t = float array

let of_array a =
  if Array.length a = 0 then invalid_arg "Ecdf.of_array: empty sample";
  if Array.exists Float.is_nan a then invalid_arg "Ecdf.of_array: NaN in sample";
  let b = Array.copy a in
  (* Float.compare, not polymorphic compare: the latter boxes every
     element and totally-orders NaN inconsistently with the (<=)
     comparisons in [cdf]/[quantile]. *)
  Array.sort Float.compare b;
  b

let size = Array.length

let quantile t p =
  if not (p >= 0. && p <= 1.) then invalid_arg "Ecdf.quantile: p out of [0,1]";
  let n = Array.length t in
  if n = 1 then t.(0)
  else
    let pos = p *. float_of_int (n - 1) in
    let i = int_of_float (Float.floor pos) in
    if i >= n - 1 then t.(n - 1)
    else
      let frac = pos -. float_of_int i in
      t.(i) +. (frac *. (t.(i + 1) -. t.(i)))

let median t = quantile t 0.5

let cdf t x =
  (* Binary search for the rightmost index with value <= x. *)
  let n = Array.length t in
  if x < t.(0) then 0.
  else if x >= t.(n - 1) then 1.
  else
    let rec search lo hi =
      (* invariant: t.(lo) <= x < t.(hi) *)
      if hi - lo <= 1 then hi
      else
        let mid = (lo + hi) / 2 in
        if t.(mid) <= x then search mid hi else search lo mid
    in
    float_of_int (search 0 (n - 1)) /. float_of_int n

let ks_distance a b =
  (* Both CDFs are right-continuous step functions that are constant
     between pooled sample points, so the supremum of |F_a - F_b| over
     the reals is attained at one of the sample points of either. *)
  let d = ref 0. in
  let scan t =
    Array.iter (fun x -> d := Float.max !d (Float.abs (cdf a x -. cdf b x))) t
  in
  scan a;
  scan b;
  !d

let minimum t = t.(0)
let maximum t = t.(Array.length t - 1)
let values t = Array.copy t
