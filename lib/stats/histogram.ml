type t = {
  lo : float;
  hi : float;
  width : float;
  counts : int array;
  mutable underflow : int;
  mutable overflow : int;
}

let create ~lo ~hi ~bins =
  if not (lo < hi) then invalid_arg "Histogram.create: lo must be < hi";
  if bins < 1 then invalid_arg "Histogram.create: bins must be >= 1";
  {
    lo;
    hi;
    width = (hi -. lo) /. float_of_int bins;
    counts = Array.make bins 0;
    underflow = 0;
    overflow = 0;
  }

let bin_of t x =
  if x < t.lo then None
  else if x >= t.hi then None
  else
    let i = int_of_float ((x -. t.lo) /. t.width) in
    (* Guard against floating point edge effects at the top edge. *)
    Some (Stdlib.min i (Array.length t.counts - 1))

let add t x =
  match bin_of t x with
  | Some i -> t.counts.(i) <- t.counts.(i) + 1
  | None -> if x < t.lo then t.underflow <- t.underflow + 1 else t.overflow <- t.overflow + 1

let counts t = Array.copy t.counts
let underflow t = t.underflow
let overflow t = t.overflow

let total t =
  Array.fold_left ( + ) (t.underflow + t.overflow) t.counts

let bin_lo t i = t.lo +. (float_of_int i *. t.width)

let density t =
  let n = total t in
  if n = 0 then Array.make (Array.length t.counts) 0.
  else Array.map (fun c -> float_of_int c /. float_of_int n) t.counts

let pp ppf t =
  let n = total t in
  let peak = Array.fold_left Stdlib.max 1 t.counts in
  Array.iteri
    (fun i c ->
      let bar = String.make (if peak = 0 then 0 else c * 40 / peak) '#' in
      Format.fprintf ppf "[%10.4g, %10.4g) %8d %5.1f%% %s@." (bin_lo t i)
        (bin_lo t (i + 1))
        c
        (if n = 0 then 0. else 100. *. float_of_int c /. float_of_int n)
        bar)
    t.counts;
  if t.underflow > 0 || t.overflow > 0 then
    Format.fprintf ppf "underflow %d, overflow %d@." t.underflow t.overflow
