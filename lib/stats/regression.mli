(** Least-squares line fitting.

    The latency-shape experiments check the paper's asymptotic claims
    by fitting exponents: a log-log fit of system latency against the
    process count [n] should give slope ~0.5 for the scan-validate
    component (Theorem 5) and slope ~1 for the individual/system ratio
    (Lemma 7). *)

type fit = {
  slope : float;
  intercept : float;
  r2 : float;  (** Coefficient of determination. *)
}

val linear : (float * float) list -> fit
(** Ordinary least squares on (x, y) pairs.  Requires at least two
    distinct x values. *)

val power_law : (float * float) list -> fit
(** Fits [y = exp(intercept) * x^slope] by linear regression in log-log
    space.  All coordinates must be positive. *)

val scale_to_first : model:(float -> float) -> (float * float) list -> (float -> float)
(** [scale_to_first ~model pts] rescales [model] so that it passes
    through the first data point — the paper does exactly this for the
    Θ(1/√n) prediction in Figure 5 ("we scaled the prediction to the
    first data point"). *)
