type ('op, 'res, 'state) spec = {
  initial : 'state;
  apply : 'op -> 'state -> 'res * 'state;
}

type ('op, 'res) event = {
  proc : int;
  op : 'op;
  result : 'res;
  invoked : int;
  returned : int;
}

let validate events =
  List.iter
    (fun e ->
      if e.returned <= e.invoked then
        invalid_arg "Checker: event with returned <= invoked")
    events;
  if List.length events > 62 then
    invalid_arg "Checker: histories longer than 62 operations are not supported"

(* Wing-Gong search: repeatedly pick a "minimal" pending operation
   (one no other pending operation strictly precedes in real time),
   check its result against the spec, and recurse.  Memoize failed
   (remaining-set, state) pairs. *)
let search spec events =
  validate events;
  let ops = Array.of_list events in
  let n = Array.length ops in
  if n = 0 then Some []
  else begin
    let full_mask = (1 lsl n) - 1 in
    let failed = Hashtbl.create 1024 in
    (* Keys pair the pending-set mask with the (structural) state, so
       hash collisions cannot cause false negatives. *)
    let rec go mask state acc =
      if mask = 0 then Some (List.rev acc)
      else if Hashtbl.mem failed (mask, state) then None
      else begin
        let result = ref None in
        let i = ref 0 in
        while !result = None && !i < n do
          let idx = !i in
          incr i;
          if mask land (1 lsl idx) <> 0 then begin
            (* idx is minimal if no other pending op returned before
               its invocation. *)
            let minimal = ref true in
            for j = 0 to n - 1 do
              if j <> idx && mask land (1 lsl j) <> 0 then
                if ops.(j).returned < ops.(idx).invoked then minimal := false
            done;
            if !minimal then begin
              let res, state' = spec.apply ops.(idx).op state in
              if res = ops.(idx).result then
                match go (mask land lnot (1 lsl idx)) state' (ops.(idx) :: acc) with
                | Some _ as found -> result := found
                | None -> ()
            end
          end
        done;
        (match !result with
        | None -> Hashtbl.replace failed (mask, state) ()
        | Some _ -> ());
        !result
      end
    in
    go full_mask spec.initial []
  end

let witness = search
let check spec events = Option.is_some (search spec events)

(* Independent brute-force oracle: enumerate the real-time-consistent
   permutations directly (an operation may be placed next iff no
   still-unplaced operation returned before its invocation) and replay
   the spec along each.  No memoization, no bitmask keys — sharing no
   machinery with [search] is the point: the test suite
   cross-validates the two on random small histories. *)
let check_brute spec events =
  validate events;
  let ops = Array.of_list events in
  let n = Array.length ops in
  if n > 9 then
    invalid_arg "Checker.check_brute: factorial search capped at 9 operations";
  let used = Array.make n false in
  let rec place k state =
    k = n
    || begin
         let found = ref false in
         let i = ref 0 in
         while (not !found) && !i < n do
           let idx = !i in
           incr i;
           if not used.(idx) then begin
             let ok = ref true in
             for j = 0 to n - 1 do
               if
                 (not used.(j)) && j <> idx
                 && ops.(j).returned < ops.(idx).invoked
               then ok := false
             done;
             if !ok then begin
               let res, state' = spec.apply ops.(idx).op state in
               if res = ops.(idx).result then begin
                 used.(idx) <- true;
                 if place (k + 1) state' then found := true;
                 used.(idx) <- false
               end
             end
           end
         done;
         !found
       end
  in
  place 0 spec.initial

(* Simulated-time events.  The simulator's discrete clock advances
   once per shared-memory step, so distinct operations on the same
   step boundary would collide; doubling makes room for a strict
   "invoked after the previous return, returned after the last step"
   ordering: invoked = 2*now+1, returned = 2*now.  [f] must advance
   simulated time at least once or validation rejects the event. *)
let record_with ~now ~proc ~op f =
  let invoked = (2 * now ()) + 1 in
  let result = f () in
  let returned = 2 * now () in
  { proc; op; result; invoked; returned }

module Clock = struct
  type t = int Atomic.t

  let create () = Atomic.make 0
  let stamp t = Atomic.fetch_and_add t 1

  let record t ~proc ~op f =
    let invoked = stamp t in
    let result = f () in
    let returned = stamp t in
    { proc; op; result; invoked; returned }
end
