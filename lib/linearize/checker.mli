(** A linearizability checker (Wing–Gong style search with
    memoization).

    The paper's progress properties presuppose linearizable objects
    ("safety properties, which guarantee their correctness", §1); this
    module lets the test suite *check* that the runtime structures'
    concurrent histories are linearizable against their sequential
    specifications, instead of relying only on structural invariants.

    A history is a set of completed operations, each with an
    invocation and a response timestamp drawn from one global order
    (e.g. an atomic ticket counter).  The history is linearizable iff
    there is a total order of the operations, consistent with the
    real-time order (if a returned before b was invoked, a comes
    first), under which every operation's result matches the
    sequential specification.

    Complexity is exponential in the worst case; the checker memoizes
    on (set of linearized ops, state) and is comfortable with
    histories of a few dozen operations with realistic concurrency
    (the search only branches across genuinely overlapping
    operations). *)

type ('op, 'res, 'state) spec = {
  initial : 'state;
  apply : 'op -> 'state -> 'res * 'state;
      (** Sequential semantics: result and successor state. *)
}

type ('op, 'res) event = {
  proc : int;
  op : 'op;
  result : 'res;
  invoked : int;  (** Timestamp strictly before the operation ran. *)
  returned : int;  (** Timestamp strictly after; > [invoked]. *)
}

val check : ('op, 'res, 'state) spec -> ('op, 'res) event list -> bool
(** True iff the history is linearizable w.r.t. the spec.  Raises
    [Invalid_argument] on malformed events ([returned <= invoked]) or
    on histories longer than 62 operations (the memoization key is a
    bitmask). *)

val witness :
  ('op, 'res, 'state) spec -> ('op, 'res) event list -> ('op, 'res) event list option
(** A linearization order when one exists. *)

val check_brute : ('op, 'res, 'state) spec -> ('op, 'res) event list -> bool
(** Independent factorial-time oracle: enumerates real-time-consistent
    permutations directly, with no memoization and no machinery shared
    with [check].  Exists so tests can cross-validate the two on random
    small histories.  Raises [Invalid_argument] beyond 9 operations. *)

val record_with :
  now:(unit -> int) -> proc:int -> op:'op -> (unit -> 'res) -> ('op, 'res) event
(** [record_with ~now ~proc ~op f] builds an event from a discrete
    simulated clock: [invoked = 2*now()+1] before running [f],
    [returned = 2*now()] after.  The doubling keeps invocation and
    response stamps strict even though many operations can share a
    simulator step boundary; [f] must advance simulated time at least
    once, otherwise the event is malformed ([returned <= invoked]) and
    the checkers reject it. *)

module Clock : sig
  type t

  val create : unit -> t

  val stamp : t -> int
  (** Atomic, strictly increasing timestamps — safe to call from any
      domain. *)

  val record : t -> proc:int -> op:'op -> (unit -> 'res) -> ('op, 'res) event
  (** [record c ~proc ~op f] stamps, runs [f], stamps again, and
      packages the event. *)
end
