(** Shadow-state replay: an independent, window-incremental judge of a
    concurrent history against its sequential specification.

    The {!Checker} answers the same question with a Wing–Gong search
    memoized over one global (linearized-set, state) table.  This
    module exists as a deliberately separate implementation — the
    scenario runner's standard gate — so that a bug in either judge is
    caught by the other (the same differential role
    {!Checker.check_brute} plays at small sizes, but cheap enough to
    run on every trial):

    - the history is first cut into {e quiescent windows} — maximal
      groups of operations linked by real-time overlap; every
      operation of window [k] returned before any operation of window
      [k+1] was invoked, so a linearization order never crosses a
      window boundary;
    - each window is solved by a small DFS over the real-time-consistent
      orders of its own operations only, threading the {e set} of
      sequential-spec states reachable at the previous boundary
      (several orders of an ambiguous window can leave different
      shadow states; all survivors are carried forward);
    - the first window with no spec-consistent order under any carried
      state is the divergence witness.

    Soundness matches the checker's: a divergence is reported iff no
    linearization of the history exists under the spec. *)

val replay :
  ('op, 'res, 'state) Checker.spec ->
  ('op, 'res) Checker.event list ->
  ('op, 'res) Checker.event list option
(** [replay spec history] is [None] when some linearization of
    [history] matches [spec], and [Some window] — the offending
    quiescent window, in invocation order — when none does.  Events
    may carry open response windows (a large [returned]); they simply
    glue every later event into one window.  Raises [Invalid_argument]
    when a single window exceeds 62 operations (the DFS mask width,
    the same bound as the checker). *)

val windows :
  ('op, 'res) Checker.event list -> ('op, 'res) Checker.event list list
(** The quiescent-window partition [replay] works over, exposed for
    tests: events sorted by invocation, cut wherever every earlier
    operation has returned. *)
