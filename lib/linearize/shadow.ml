(* Shadow-state replay: window-incremental linearizability against the
   sequential spec, implemented independently of Checker's memoized
   search (see the .mli for the differential rationale).

   The window decomposition is exact: if a.returned < b.invoked then a
   precedes b in every linearization, so an order never interleaves
   operations from different quiescent windows, and the only
   information a window needs from its past is the set of shadow
   states the previous windows can end in. *)

let by_invocation (a : ('op, 'res) Checker.event) (b : ('op, 'res) Checker.event)
    =
  match compare a.Checker.invoked b.Checker.invoked with
  | 0 -> (
      match compare a.returned b.returned with
      | 0 -> compare a.proc b.proc
      | c -> c)
  | c -> c

let windows history =
  let sorted = List.stable_sort by_invocation history in
  let flush window acc =
    match window with [] -> acc | w -> List.rev w :: acc
  in
  let rec go acc window hi = function
    | [] -> List.rev (flush window acc)
    | (e : ('op, 'res) Checker.event) :: rest ->
        if window <> [] && e.invoked > hi then
          go (flush window acc) [ e ] e.returned rest
        else go acc (e :: window) (max hi e.returned) rest
  in
  go [] [] min_int sorted

(* All spec states a window can end in, starting from [state]: DFS over
   the real-time-consistent orders, visited-set keyed on (applied mask,
   state) — re-reaching a visited pair cannot add new end states. *)
let end_states spec ~state window =
  let ops = Array.of_list window in
  let m = Array.length ops in
  if m > 62 then
    invalid_arg "Shadow.replay: window exceeds 62 operations (mask width)";
  (* For m = 62, [1 lsl 62] wraps to [min_int] and the subtraction
     lands on [max_int] — exactly the 62 low bits set. *)
  let full = (1 lsl m) - 1 in
  let visited = Hashtbl.create 64 in
  let ends = ref [] in
  let rec go mask state =
    if mask = full then begin
      if not (List.mem state !ends) then ends := state :: !ends
    end
    else if not (Hashtbl.mem visited (mask, state)) then begin
      Hashtbl.add visited (mask, state) ();
      for i = 0 to m - 1 do
        if mask land (1 lsl i) = 0 then begin
          let e = ops.(i) in
          (* Real-time order: anything that returned before e was
             invoked must already be applied. *)
          let blocked = ref false in
          for j = 0 to m - 1 do
            if
              mask land (1 lsl j) = 0
              && j <> i
              && ops.(j).Checker.returned < e.Checker.invoked
            then blocked := true
          done;
          if not !blocked then begin
            let r, state' = spec.Checker.apply e.op state in
            if r = e.result then go (mask lor (1 lsl i)) state'
          end
        end
      done
    end
  in
  go 0 state;
  !ends

let replay spec history =
  let rec thread states = function
    | [] -> None
    | window :: rest ->
        let nexts =
          List.concat_map (fun state -> end_states spec ~state window) states
        in
        let nexts = List.sort_uniq compare nexts in
        if nexts = [] then Some window else thread nexts rest
  in
  thread [ spec.Checker.initial ] (windows history)
