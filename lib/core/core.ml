(** Facade for the reproduction of Alistarh, Censor-Hillel and Shavit,
    "Are Lock-Free Concurrent Algorithms Practically Wait-Free?"
    (PODC'14 brief announcement / STOC'14, arXiv:1311.3200).

    Paper-to-module map:

    - Definition 1 (stochastic scheduler): {!Sched.Scheduler},
      {!Sched.Validity}, crash conditions in {!Sched.Crash_plan}.
    - §2.1 step semantics: {!Sim.Program}, {!Sim.Executor},
      {!Sim.Memory}.
    - §2.4 latency measures: {!Sim.Metrics}.
    - Theorem 3 (bounded minimal ⇒ maximal progress w.p. 1):
      experiment over {!Sched.Scheduler.with_weak_fairness}.
    - Lemma 2 / Algorithm 1 (unbounded ⇒ not wait-free):
      {!Scu.Unbounded}.
    - §5 Algorithm 2 (the class SCU(q, s)): {!Scu.Scu_pattern};
      instances {!Scu.Counter}, {!Scu.Treiber}, {!Scu.Msqueue},
      {!Scu.Rcu}, {!Scu.Universal}.
    - §6.1 Markov chains and lifting: {!Chains.Scu_chain},
      {!Markov.Lifting}; Figure 1 is the n = 2 case.
    - §6.1.3 balls-into-bins game: {!Ballsbins.Game}.
    - §6.2 parallel code (Algorithm 4): {!Scu.Parallel_code},
      {!Chains.Parallel_chain}.
    - §7 augmented-CAS counter (Algorithm 5): {!Scu.Counter_aug},
      {!Chains.Counter_chain}, {!Chains.Ramanujan}.
    - Appendix A (Figures 3–4): {!Sched.Trace}, {!Runtime.Recorder}.
    - Appendix B (Figure 5): {!Runtime.Harness}, {!Chains.Predict}.
    - Wait-free comparison baseline: {!Scu.Waitfree_counter}.
    - Blocking comparison point (§2.2 taxonomy): {!Scu.Ticket_lock}.
    - §8 extensions: {!Scu.Sharded_counter} (avoiding the Θ(√n)
      contention factor), {!Markov.Mixing} (how long "long executions"
      are), per-method statistics in {!Sim.Metrics}. *)

module Stats = Stats
module Markov = Markov
module Sched = Sched
module Sim = Sim
module Scu = Scu
module Chains = Chains
module Ballsbins = Ballsbins
module Runtime = Runtime
module Linearize = Linearize
