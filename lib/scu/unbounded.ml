module Memory = Sim.Memory
module Program = Sim.Program

type t = { spec : Sim.Executor.spec; register : int; n : int }

let make ?(penalty_cap = max_int) ~n () =
  let memory = Memory.create () in
  let c = Memory.alloc memory ~size:1 in
  let dummy = Memory.alloc memory ~size:1 in
  let program (_ : Program.ctx) =
    (* The local value v persists across operations (Algorithm 1
       declares it outside the loop), so the winner of one operation
       holds the current value and its next CAS wins unless a loser
       sneaks in — which requires the winner to take no step for an
       entire n²·v penalty window, probability ~e^{-n}. *)
    let rec attempt v =
      let got = Program.cas_get c ~expected:v ~value:(v + 1) in
      if got = v then begin
        Program.complete ();
        attempt (v + 1)
      end
      else begin
        (* Failed: spin for n²·v reads (v = the value just seen),
           exactly the paper's penalty loop, then retry. *)
        let spins = min penalty_cap (n * n * got) in
        for _ = 1 to spins do
          ignore (Program.read dummy)
        done;
        attempt got
      end
    in
    attempt 0
  in
  { spec = { name = "unbounded-lockfree"; memory; program }; register = c; n }
