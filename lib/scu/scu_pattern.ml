module Memory = Sim.Memory
module Program = Sim.Program

type t = {
  spec : Sim.Executor.spec;
  decision_register : int;
  aux_registers : int array;
  q : int;
  s : int;
  n : int;
}

let proposal ~n ~id ~op_index = (op_index * n) + id + 1

let make ~n ~q ~s =
  if q < 0 then invalid_arg "Scu_pattern.make: q must be >= 0";
  if s < 1 then invalid_arg "Scu_pattern.make: s must be >= 1";
  let memory = Memory.create () in
  let r = Memory.alloc memory ~size:1 in
  let aux = Array.init (s - 1) (fun _ -> Memory.alloc memory ~size:1) in
  (* One private scratch cell per process for preamble writes. *)
  let scratch = Memory.alloc memory ~size:(max n 1) in
  let program (ctx : Program.ctx) =
    let ops = ref 0 in
    let rec operation () =
      (* Preamble: q auxiliary steps.  We alternate between updating
         the process's scratch cell and refreshing an auxiliary
         register, exercising the "may update R_1..R_{s-1}" clause. *)
      for k = 1 to q do
        if Array.length aux > 0 && k mod 2 = 0 then
          Program.write aux.((k / 2) mod Array.length aux) !ops
        else Program.write (scratch + ctx.id) k
      done;
      scan_validate ();
      incr ops;
      Program.complete ();
      operation ()
    and scan_validate () =
      let v = Program.read r in
      Array.iter (fun a -> ignore (Program.read a)) aux;
      let v' = proposal ~n ~id:ctx.id ~op_index:!ops in
      if not (Program.cas r ~expected:v ~value:v') then scan_validate ()
    in
    operation ()
  in
  {
    spec = { name = Printf.sprintf "scu(q=%d,s=%d)" q s; memory; program };
    decision_register = r;
    aux_registers = aux;
    q;
    s;
    n;
  }
