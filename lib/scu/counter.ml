module Memory = Sim.Memory
module Program = Sim.Program

type t = {
  spec : Sim.Executor.spec;
  register : int;
  log : int option;
  log_capacity : int;
  n : int;
}

let fetch_and_increment r =
  let rec attempt () =
    let v = Program.read r in
    if Program.cas r ~expected:v ~value:(v + 1) then v else attempt ()
  in
  attempt ()

let make ~n =
  let memory = Memory.create () in
  let r = Memory.alloc memory ~size:1 in
  let program (_ : Program.ctx) =
    let rec loop () =
      ignore (fetch_and_increment r);
      Program.complete ();
      loop ()
    in
    loop ()
  in
  {
    spec = { name = "cas-counter"; memory; program };
    register = r;
    log = None;
    log_capacity = 0;
    n;
  }

type compiled = { cspec : Sim.Compile.spec; register : int; n : int }

(* Instruction-level mirror of [make]'s body, for the compiled
   executor: same shared-operation sequence (read, cas, read, cas, …)
   and the completion in the same local suffix after a successful CAS,
   so interpreted and compiled runs of the counter are byte-identical
   for the same configuration.  r3 holds the register address, r1 the
   read value, r2 the increment; r4 is never written and stays 0. *)
let make_compiled ~n =
  let memory = Memory.create () in
  let r = Memory.alloc memory ~size:1 in
  let open Sim.Compile in
  let code =
    assemble
      [
        Loadi (3, r);
        Label "loop";
        Read 3;
        Mov (1, 0);
        Addi (2, 1, 1);
        Cas (3, 1, 2);
        Beq (0, 4, "loop");
        Complete;
        Jmp "loop";
      ]
  in
  { cspec = { name = "cas-counter"; memory; code }; register = r; n }

let make_instrumented ~n =
  let memory = Memory.create () in
  let r = Memory.alloc memory ~size:1 in
  let attempts = Stats.Vec.Int.create ~capacity:1024 () in
  let program (_ : Program.ctx) =
    let rec loop () =
      let rec attempt k =
        let v = Program.read r in
        if Program.cas r ~expected:v ~value:(v + 1) then k else attempt (k + 1)
      in
      let tries = attempt 1 in
      (* Instrumentation lives outside the simulated memory: recording
         the attempt count is local computation and costs no steps. *)
      Stats.Vec.Int.push attempts tries;
      Program.complete ();
      loop ()
    in
    loop ()
  in
  ( {
      spec = { name = "cas-counter-instrumented"; memory; program };
      register = r;
      log = None;
      log_capacity = 0;
      n;
    },
    attempts )

let make_logged ~n ~ops_per_process =
  if ops_per_process <= 0 then invalid_arg "Counter.make_logged: ops must be positive";
  let memory = Memory.create () in
  let r = Memory.alloc memory ~size:1 in
  (* Log slots store value+1 so that 0 means "not yet written". *)
  let log = Memory.alloc memory ~size:(n * ops_per_process) in
  let program (ctx : Program.ctx) =
    for k = 0 to ops_per_process - 1 do
      let v = fetch_and_increment r in
      Program.write (log + (ctx.id * ops_per_process) + k) (v + 1);
      Program.complete ()
    done
  in
  {
    spec = { name = "cas-counter-logged"; memory; program };
    register = r;
    log = Some log;
    log_capacity = ops_per_process;
    n;
  }

let logged_values t mem i =
  match t.log with
  | None -> invalid_arg "Counter.logged_values: counter was not built with make_logged"
  | Some log ->
      let out = ref [] in
      for k = t.log_capacity - 1 downto 0 do
        let cell = Memory.get mem (log + (i * t.log_capacity) + k) in
        if cell <> 0 then out := (cell - 1) :: !out
      done;
      !out

let value (t : t) mem = Memory.get mem t.register
