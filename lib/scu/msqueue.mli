(** The Michael–Scott lock-free queue (PODC 1996, paper ref [17]) in
    the simulator.  Slightly richer than plain SCU(q, s) — the tail
    swing is a second, helping CAS — but its scan-validate core is the
    same pattern, and the paper cites it as a target of the analysis.

    Node layout: [value; next]; a sentinel node is allocated at
    creation, with [head]/[tail] registers pointing at it. *)

type t = {
  spec : Sim.Executor.spec;
  head : int;
  tail : int;
  enq_log : int option;
  deq_log : int option;
  ops_per_process : int;
  n : int;
}

val enqueue_method : int
(** Method id for enqueues in [Sim.Metrics] per-method statistics. *)

val dequeue_method : int

val make : ?enqueue_ratio:float -> n:int -> unit -> t
(** Endless mixed workload (default 50/50); completions are tagged
    with [enqueue_method] / [dequeue_method]. *)

val make_logged : ?enqueue_ratio:float -> n:int -> ops_per_process:int -> unit -> t
(** Bounded, logging variant; processes terminate when done. *)

val contents : t -> Sim.Memory.t -> int list
(** Queue contents, head first (direct read, not simulated). *)

val enqueues : t -> Sim.Memory.t -> int -> int list

type deq_result = Empty | Dequeued of int

val dequeues : t -> Sim.Memory.t -> int -> deq_result list

val enqueue_op :
  ?on_linearize:(unit -> unit) -> memory:Sim.Memory.t -> tail:int -> int -> unit
(** One enqueue (alloc, link CAS, tail swing with helping), exposed for
    the conformance-check harness ({!Checkable}).  Must run inside a
    simulated process (performs {!Sim.Program} effects).

    [on_linearize] fires immediately after the link CAS succeeds —
    atomically with it, before the tail-swing step.  The enqueue is
    the one checkable operation whose linearization point is not its
    final shared-memory step, so a crash between link and swing leaves
    an operation that took effect but never returned; the recovery
    harness uses this callback to mark it. *)

val dequeue_op : head:int -> tail:int -> deq_result
(** One dequeue, same caveats as {!enqueue_op}. *)
