(** Lock-free fetch-and-increment via read + CAS — the concrete
    SCU(0, 1) instance measured in the paper's Appendix B (Figure 5):
    "reads the value v of a shared register R, and then attempts to
    increment the value using a CAS(R, v, v + 1) call". *)

type t = {
  spec : Sim.Executor.spec;
  register : int;  (** Address of the counter register R. *)
  log : int option;
      (** When built with [make_logged], base address of the log area
          recording every value obtained by every process. *)
  log_capacity : int;
  n : int;
}

val fetch_and_increment : int -> int
(** The bare read + CAS retry loop on a register address, for reuse by
    the conformance-check harness ({!Checkable}).  Must run inside a
    simulated process (performs {!Sim.Program} effects). *)

val make : n:int -> t
(** Pure latency-measurement variant: each operation costs exactly its
    shared reads and CASes. *)

type compiled = {
  cspec : Sim.Compile.spec;
  register : int;  (** Address of the counter register R. *)
  n : int;
}

val make_compiled : n:int -> compiled
(** Instruction-level mirror of {!make} for
    {!Sim.Executor.exec_compiled}: the same shared-operation sequence
    and completion points, so for identical configurations the
    compiled run is byte-identical to the interpreted one — this is
    the kernel behind the `microbench` experiment and the experiments'
    hot Figure 5 cells. *)

val make_instrumented : n:int -> t * Stats.Vec.Int.t
(** Like [make], additionally recording each completed operation's CAS
    attempt count (1 = first try) in the returned vector.  Recording
    is instrumentation outside the simulated memory — it costs no
    steps.  Used by the `ext-backup` experiment to bound how often a
    Kogan–Petrank-style wait-free backup path would trigger. *)

val make_logged : n:int -> ops_per_process:int -> t
(** Correctness-test variant: every process performs exactly
    [ops_per_process] increments, writing each obtained value into a
    private log slot (one extra write step per operation), then
    terminates.  [logged_values] recovers the log. *)

val logged_values : t -> Sim.Memory.t -> int -> int list
(** [logged_values t mem i] lists the values process [i] obtained, in
    order.  The fetch-and-increment specification demands that, across
    all processes, these form exactly [0 .. total−1] with no
    duplicates. *)

val value : t -> Sim.Memory.t -> int
(** Current counter value. *)
