module Memory = Sim.Memory
module Program = Sim.Program

type spec_fn = proc:int -> op_index:int -> int array -> int array

type t = {
  spec : Sim.Executor.spec;
  pointer : int;
  state_size : int;
  n : int;
}

let make ~n ~init ~apply =
  let state_size = Array.length init in
  if state_size < 1 then invalid_arg "Universal.make: empty initial state";
  let memory = Memory.create () in
  let pointer = Memory.alloc memory ~size:1 in
  let first = Memory.alloc_init memory init in
  Memory.set memory pointer first;
  let program (ctx : Program.ctx) =
    let ops = ref 0 in
    let rec operation () =
      let rec attempt () =
        let p = Program.read pointer in
        let current = Array.init state_size (fun k -> Program.read (p + k)) in
        let next = apply ~proc:ctx.id ~op_index:!ops current in
        if Array.length next <> state_size then
          invalid_arg "Universal: apply changed the state size";
        let fresh = Memory.alloc memory ~size:state_size in
        for k = 0 to state_size - 1 do
          Program.write (fresh + k) next.(k)
        done;
        if not (Program.cas pointer ~expected:p ~value:fresh) then attempt ()
      in
      attempt ();
      incr ops;
      Program.complete ();
      operation ()
    in
    operation ()
  in
  {
    spec = { name = Printf.sprintf "universal(k=%d)" state_size; memory; program };
    pointer;
    state_size;
    n;
  }

let state t mem =
  let p = Memory.get mem t.pointer in
  Array.init t.state_size (fun k -> Memory.get mem (p + k))

let sequential_witness ~init ~apply ops =
  List.fold_left
    (fun st (proc, op_index) -> apply ~proc ~op_index st)
    (Array.copy init) ops
