module Memory = Sim.Memory
module Program = Sim.Program

type t = {
  spec : Sim.Executor.spec;
  next_ticket : int;
  now_serving : int;
  counter : int;
  n : int;
}

let make ~n =
  let memory = Memory.create () in
  let next_ticket = Memory.alloc memory ~size:1 in
  let now_serving = Memory.alloc memory ~size:1 in
  let counter = Memory.alloc memory ~size:1 in
  let program (_ : Program.ctx) =
    let rec operation () =
      let ticket = Program.faa next_ticket 1 in
      (* Spin: each probe of now_serving is a shared-memory step. *)
      let rec await () = if Program.read now_serving <> ticket then await () in
      await ();
      (* Critical section: the increment needs no CAS — the lock
         serializes it. *)
      let v = Program.read counter in
      Program.write counter (v + 1);
      (* Release. *)
      Program.write now_serving (ticket + 1);
      Program.complete ();
      operation ()
    in
    operation ()
  in
  {
    spec = { name = "ticket-lock-counter"; memory; program };
    next_ticket;
    now_serving;
    counter;
    n;
  }

let value t mem = Memory.get mem t.counter

let holder_waiting t mem =
  Memory.get mem t.next_ticket - Memory.get mem t.now_serving
