module Memory = Sim.Memory
module Program = Sim.Program

type t = {
  spec : Sim.Executor.spec;
  head : int;
  tail : int;
  enq_log : int option;
  deq_log : int option;
  ops_per_process : int;
  n : int;
}

type deq_result = Empty | Dequeued of int

let enqueue_method = 0
let dequeue_method = 1

let enqueue_op ?on_linearize ~memory ~tail value =
  let node = Memory.alloc memory ~size:2 in
  Program.write node value;
  let rec attempt () =
    let t = Program.read tail in
    let next = Program.read (t + 1) in
    if next <> 0 then begin
      (* Tail is lagging: help swing it, then retry. *)
      ignore (Program.cas tail ~expected:t ~value:next);
      attempt ()
    end
    else if Program.cas (t + 1) ~expected:0 ~value:node then begin
      (* Linked — the enqueue just linearized.  The callback runs in
         the same atomic stretch as the successful CAS, before the
         process can next be suspended (and so before any crash can
         separate the two). *)
      Option.iter (fun f -> f ()) on_linearize;
      (* Swing the tail (failure is fine — someone helped). *)
      ignore (Program.cas tail ~expected:t ~value:node)
    end
    else attempt ()
  in
  attempt ()

let dequeue_op ~head ~tail =
  let rec attempt () =
    let h = Program.read head in
    let t = Program.read tail in
    let next = Program.read (h + 1) in
    if h = t then
      if next = 0 then Empty
      else begin
        ignore (Program.cas tail ~expected:t ~value:next);
        attempt ()
      end
    else
      let v = Program.read next in
      if Program.cas head ~expected:h ~value:next then Dequeued v else attempt ()
  in
  attempt ()

let unique_value ~n ~id ~op_index = (op_index * n) + id + 1

let build ?(enqueue_ratio = 0.5) ~n ~logged ~ops_per_process () =
  if not (enqueue_ratio >= 0. && enqueue_ratio <= 1.) then
    invalid_arg "Msqueue: enqueue_ratio out of [0,1]";
  let memory = Memory.create () in
  let sentinel = Memory.alloc memory ~size:2 in
  let head = Memory.alloc_init memory [| sentinel |] in
  let tail = Memory.alloc_init memory [| sentinel |] in
  let logs =
    if logged then
      Some
        ( Memory.alloc memory ~size:(n * ops_per_process),
          Memory.alloc memory ~size:(n * ops_per_process) )
    else None
  in
  let one_op (ctx : Program.ctx) k =
    let m =
      if Stats.Rng.float ctx.rng 1.0 < enqueue_ratio then begin
        let v = unique_value ~n ~id:ctx.id ~op_index:k in
        enqueue_op ~memory ~tail v;
        Option.iter
          (fun (enq, _) -> Program.write (enq + (ctx.id * ops_per_process) + k) (v + 2))
          logs;
        0
      end
      else begin
        let r = dequeue_op ~head ~tail in
        Option.iter
          (fun (_, deq) ->
            let cell = match r with Empty -> 1 | Dequeued v -> v + 2 in
            Program.write (deq + (ctx.id * ops_per_process) + k) cell)
          logs;
        1
      end
    in
    Program.complete_method m
  in
  let program (ctx : Program.ctx) =
    if logged then
      for k = 0 to ops_per_process - 1 do
        one_op ctx k
      done
    else begin
      let k = ref 0 in
      let rec loop () =
        one_op ctx !k;
        incr k;
        loop ()
      in
      loop ()
    end
  in
  {
    spec = { name = (if logged then "ms-queue-logged" else "ms-queue"); memory; program };
    head;
    tail;
    enq_log = Option.map fst logs;
    deq_log = Option.map snd logs;
    ops_per_process;
    n;
  }

let make ?enqueue_ratio ~n () = build ?enqueue_ratio ~n ~logged:false ~ops_per_process:0 ()

let make_logged ?enqueue_ratio ~n ~ops_per_process () =
  if ops_per_process <= 0 then invalid_arg "Msqueue.make_logged: ops must be positive";
  build ?enqueue_ratio ~n ~logged:true ~ops_per_process ()

let contents t mem =
  (* The first real element hangs off the current sentinel. *)
  let rec walk node acc =
    if node = 0 then List.rev acc
    else walk (Memory.get mem (node + 1)) (Memory.get mem node :: acc)
  in
  walk (Memory.get mem (Memory.get mem t.head + 1)) []

let read_log t mem base i =
  let out = ref [] in
  for k = t.ops_per_process - 1 downto 0 do
    let cell = Memory.get mem (base + (i * t.ops_per_process) + k) in
    if cell <> 0 then out := cell :: !out
  done;
  !out

let enqueues t mem i =
  match t.enq_log with
  | None -> invalid_arg "Msqueue.enqueues: not a logged queue"
  | Some base -> List.map (fun c -> c - 2) (read_log t mem base i)

let dequeues t mem i =
  match t.deq_log with
  | None -> invalid_arg "Msqueue.dequeues: not a logged queue"
  | Some base ->
      List.map (fun c -> if c = 1 then Empty else Dequeued (c - 2)) (read_log t mem base i)
