(** A Treiber stack with (simplified, asymmetric) elimination backoff
    — after Hendler, Shavit and Yerushalmi's elimination stack, the
    classic answer to CAS contention on the top pointer, and a
    data-structure companion to §8's question about avoiding the
    Θ(√n) contention factor.

    A push that loses its CAS parks its value in an exchange slot; a
    pop that loses its CAS tries to grab a parked value.  A matched
    pair eliminates without ever touching the stack (linearized as
    push immediately followed by pop at the grab); a parked push that
    is not rescued within a bounded poll reclaims its slot and retries
    the stack.  The simplification relative to the original: only
    pushes park (pops never wait), so there is no symmetric-rendezvous
    protocol to get wrong.

    Slot encoding: 0 = empty, 1 = taken marker, v + 2 = parked value
    v (parked values are the workload's unique positive ints). *)

type t = {
  spec : Sim.Executor.spec;
  top : int;
  slots : int array;  (** Exchange slot addresses. *)
  eliminated : int;  (** Address of a counter of eliminated pairs. *)
  n : int;
}

val make : ?slots:int -> ?poll:int -> ?push_ratio:float -> n:int -> unit -> t
(** [slots] exchange slots (default [max 1 (n/4)]), [poll] poll steps
    a parked push waits (default 4), mixed workload as in
    {!Treiber.make}. *)

val push_op :
  ?on_park:(slot:int -> unit) ->
  ?on_unpark:(unit -> unit) ->
  memory:Sim.Memory.t ->
  top:int ->
  slots:int array ->
  poll:int ->
  Sim.Program.ctx ->
  int ->
  unit
(** One push as a standalone operation (the building block of {!make}
    and of the check-harness adapter).  The hooks are instrumentation
    for crash-recovery tracking and run as local code, atomic with the
    shared-memory step they annotate: [on_park ~slot] right after the
    successful park CAS publishes the value in [slot]; [on_unpark]
    right after a successful reclaim CAS withdraws it.  A push that
    returns has either pushed onto the stack or been eliminated
    (its parked value grabbed by a pop).

    The reclaim path re-reads the slot after a failed reclaim CAS
    instead of assuming a grab: under the fault plans' spurious-CAS
    (LL/SC) mode a CAS can fail with the slot untouched, and
    concluding "grabbed" there would silently discard the value. *)

val pop_op :
  ?on_grab:(int -> unit) ->
  top:int ->
  slots:int array ->
  eliminated:int ->
  Sim.Program.ctx ->
  Treiber.pop_result
(** One pop: try the stack; on a lost CAS, try to grab a parked value
    from a random slot before retrying.  [on_grab v] runs atomic with
    the successful grab CAS — the elimination's linearization point
    (push immediately followed by this pop) — before the eliminated
    counter is bumped. *)

val recover_push :
  slot:int -> int -> bool
(** Crash-recovery settlement for a push that crashed while its value
    [v] was parked in [slot].  Returns [true] when the value was
    reclaimed — the push never linearized and is safe to re-run from
    scratch — and [false] when a pop had already grabbed it: the push
    linearized before the crash, so the caller must complete it rather
    than re-run it (the slot's taken marker is released here, the one
    cleanup only the parking process may perform).  Robust to spurious
    CAS failure by the same re-read discipline as {!push_op}. *)

val eliminated_pairs : t -> Sim.Memory.t -> int
(** Number of push/pop pairs that met in a slot instead of the stack. *)

val drain : t -> Sim.Memory.t -> int list
(** Stack contents, top first; parked-but-unmatched slot values are
    appended at the end (they are still logically in the structure). *)
