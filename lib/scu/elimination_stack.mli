(** A Treiber stack with (simplified, asymmetric) elimination backoff
    — after Hendler, Shavit and Yerushalmi's elimination stack, the
    classic answer to CAS contention on the top pointer, and a
    data-structure companion to §8's question about avoiding the
    Θ(√n) contention factor.

    A push that loses its CAS parks its value in an exchange slot; a
    pop that loses its CAS tries to grab a parked value.  A matched
    pair eliminates without ever touching the stack (linearized as
    push immediately followed by pop at the grab); a parked push that
    is not rescued within a bounded poll reclaims its slot and retries
    the stack.  The simplification relative to the original: only
    pushes park (pops never wait), so there is no symmetric-rendezvous
    protocol to get wrong.

    Slot encoding: 0 = empty, 1 = taken marker, v + 2 = parked value
    v (parked values are the workload's unique positive ints). *)

type t = {
  spec : Sim.Executor.spec;
  top : int;
  slots : int array;  (** Exchange slot addresses. *)
  eliminated : int;  (** Address of a counter of eliminated pairs. *)
  n : int;
}

val make : ?slots:int -> ?poll:int -> ?push_ratio:float -> n:int -> unit -> t
(** [slots] exchange slots (default [max 1 (n/4)]), [poll] poll steps
    a parked push waits (default 4), mixed workload as in
    {!Treiber.make}. *)

val eliminated_pairs : t -> Sim.Memory.t -> int
(** Number of push/pop pairs that met in a slot instead of the stack. *)

val drain : t -> Sim.Memory.t -> int list
(** Stack contents, top first; parked-but-unmatched slot values are
    appended at the end (they are still logically in the structure). *)
