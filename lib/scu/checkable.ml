(* Check-harness adapters: each structure packaged with a history
   recorder, its sequential specification, and a structural invariant,
   plus deliberately broken variants (the scan-validate CAS replaced by
   a blind write) that the `repro check` explorer must catch. *)

module Memory = Sim.Memory
module Program = Sim.Program
module Checker = Linearize.Checker

type op = Add of int | Take | Incr
type res = Done | Took of int | Took_empty | Got of int

let op_to_string = function
  | Add v -> Printf.sprintf "add(%d)" v
  | Take -> "take"
  | Incr -> "incr"

let res_to_string = function
  | Done -> "()"
  | Took v -> Printf.sprintf "got %d" v
  | Took_empty -> "empty"
  | Got v -> string_of_int v

let event_to_string (e : (op, res) Checker.event) =
  Printf.sprintf "p%d %s -> %s [%d,%d]" e.proc (op_to_string e.op)
    (res_to_string e.result) e.invoked e.returned

(* Sequential specifications.  States are monomorphic per structure;
   the [instance] record hides them behind check closures. *)

let counter_spec : (op, res, int) Checker.spec =
  {
    initial = 0;
    apply =
      (fun o s ->
        match o with
        | Incr -> (Got s, s + 1)
        | Add _ | Take -> invalid_arg "Checkable: stack/queue op on counter");
  }

let stack_spec : (op, res, int list) Checker.spec =
  {
    initial = [];
    apply =
      (fun o s ->
        match o with
        | Add v -> (Done, v :: s)
        | Take -> ( match s with [] -> (Took_empty, []) | v :: r -> (Took v, r))
        | Incr -> invalid_arg "Checkable: counter op on stack");
  }

let queue_spec : (op, res, int list) Checker.spec =
  {
    initial = [];
    apply =
      (fun o s ->
        match o with
        | Add v -> (Done, s @ [ v ])
        | Take -> ( match s with [] -> (Took_empty, []) | v :: r -> (Took v, r))
        | Incr -> invalid_arg "Checkable: counter op on queue");
  }

(* The helping counter's increments return no value — a helper may
   apply a whole batch of announced requests in one CAS, so individual
   pre-values are not defined by the construction.  Every history of
   [Done]s is trivially linearizable; the real checking power for this
   structure is in its invariant (published state blocks must satisfy
   value = Σ applied and never regress). *)
let wf_counter_spec : (op, res, int) Checker.spec =
  {
    initial = 0;
    apply =
      (fun o s ->
        match o with
        | Incr -> (Done, s + 1)
        | Add _ | Take -> invalid_arg "Checkable: stack/queue op on wf-counter");
  }

(* History recording: instrumentation outside the simulated memory, so
   it costs no steps.  Timestamps use the doubled-clock convention of
   [Checker.record_with]; the per-process slot tracks the operation a
   suspended process is inside of when a run stops at a frontier. *)

type recorder = {
  mutable completed : (op, res) Checker.event list;  (* newest first *)
  slots : (op * int) option array;
  marks : res option array;
      (* Set when an in-flight operation has already linearized (only
         the MS-queue enqueue, between link CAS and tail swing). *)
  done_count : int array;  (* completed ops per process — the plan cursor *)
  started : bool array;
  restarts : int array;
}

let make_recorder n =
  {
    completed = [];
    slots = Array.make n None;
    marks = Array.make n None;
    done_count = Array.make n 0;
    started = Array.make n false;
    restarts = Array.make n 0;
  }

let recording rc ~proc ~op f =
  let invoked = (2 * Program.now ()) + 1 in
  rc.slots.(proc) <- Some (op, invoked);
  let result = f () in
  let returned = 2 * Program.now () in
  rc.slots.(proc) <- None;
  rc.marks.(proc) <- None;
  rc.done_count.(proc) <- rc.done_count.(proc) + 1;
  rc.completed <- { Checker.proc; op; result; invoked; returned } :: rc.completed;
  result

(* Recovery-safe re-entry: every program body calls this first.  On
   the initial start it only marks the process as started.  After a
   crash–recovery restart it settles the interrupted operation, if any:

   - *marked* in flight — the crashed attempt had already linearized
     (MS-queue enqueue past its link CAS, elimination pop past its
     grab CAS), so re-running it would apply the operation twice.
     Complete it now with the marked result.
   - *unmarked* in flight with a [recover] callback — whether the
     attempt linearized cannot be decided from recorder state alone
     (an elimination push crashed while its value sat published in an
     exchange slot: a pop may or may not have grabbed it).  [recover]
     interrogates — and settles — the shared memory: [Some r] means
     the operation did linearize and is completed with [r]; [None]
     means it provably did not, and is re-run.  The callback may
     perform shared-memory steps and must itself be crash-idempotent
     (a crash during recovery triggers recovery again).
   - *unmarked* in flight otherwise — the suspended step was never
     applied and every applied step of these structures before the
     linearization point touches only private or unpublished state, so
     dropping the attempt and re-running the operation from scratch is
     safe (the half-built node is leaked, never published).

   The plan cursor is [done_count], which only [recording] (and the
   settlement paths here) advance — a restarted process resumes at
   exactly the operation it crashed inside of. *)
let enter ?recover rc ~proc =
  if rc.started.(proc) then begin
    rc.restarts.(proc) <- rc.restarts.(proc) + 1;
    match rc.slots.(proc) with
    | None -> ()
    | Some (op, invoked) -> (
        let complete result =
          let returned = 2 * Program.now () in
          rc.slots.(proc) <- None;
          rc.marks.(proc) <- None;
          rc.done_count.(proc) <- rc.done_count.(proc) + 1;
          rc.completed <-
            { Checker.proc; op; result; invoked; returned } :: rc.completed;
          Program.complete ()
        in
        match rc.marks.(proc) with
        | Some result -> complete result
        | None -> (
            match recover with
            | None -> rc.slots.(proc) <- None
            | Some f -> (
                match f op with
                | Some result -> complete result
                | None -> rc.slots.(proc) <- None)))
  end
  else rc.started.(proc) <- true

type instance = {
  spec : Sim.Executor.spec;
  events : unit -> (op, res) Checker.event list;
  in_flight : unit -> (int * op * int) list;
  marked : int -> res option;
  restarts : unit -> int array;
  check : (op, res) Checker.event list -> bool;
  shadow : (op, res) Checker.event list -> (op, res) Checker.event list option;
  invariant : Memory.t -> time:int -> unit;
}

let events_of rc () = List.rev rc.completed

let in_flight_of rc () =
  let out = ref [] in
  Array.iteri
    (fun proc slot ->
      match slot with
      | Some (op, invoked) -> out := (proc, op, invoked) :: !out
      | None -> ())
    rc.slots;
  List.rev !out

(* Invariants (read the live memory directly; raise to flag corruption). *)

let counter_invariant register =
  let last = ref 0 in
  fun mem ~time:_ ->
    let v = Memory.get mem register in
    if v < !last then
      failwith
        (Printf.sprintf "counter went backwards: %d after %d" v !last);
    last := v

let chain_invariant ~what ~start ~bound mem ~time:_ =
  let rec walk node hops =
    if node <> 0 then
      if hops > bound then
        failwith (what ^ ": node chain exceeds bound (cycle or corruption)")
      else walk (Memory.get mem (node + 1)) (hops + 1)
  in
  walk (start mem) 0

(* Per-process operation plans.  Deterministic by construction so that
   under the explorer the schedule is the *only* source of
   nondeterminism: by default even processes add and odd ones take
   (the contention pattern that exposes the seeded bugs at n = 2);
   [mix_seed] switches to a seeded random mix for fuzz variety. *)

let unique_value ~n ~id ~k = (k * n) + id + 1

let plan ~n ~ops ~mix_seed =
  Array.init n (fun id ->
      match mix_seed with
      | None ->
          Array.init ops (fun k ->
              if n = 1 || id mod 2 = 0 then Add (unique_value ~n ~id ~k)
              else Take)
      | Some seed ->
          let rng = Stats.Rng.create ~seed:(seed + (7919 * (id + 1))) in
          Array.init ops (fun k ->
              if Stats.Rng.bool rng then Add (unique_value ~n ~id ~k)
              else Take))

(* Builders. *)

let counter_make ~variant ~n ~ops ?mix_seed:_ () =
  let memory = Memory.create () in
  let r = Memory.alloc memory ~size:1 in
  let rc = make_recorder n in
  let fai () =
    match variant with
    | `Faa -> Program.faa r 1
    | `Cas -> Counter.fetch_and_increment r
    | `Nocas ->
        (* Seeded bug: the validate is gone, so two overlapping
           increments can read the same value (lost update). *)
        let v = Program.read r in
        Program.write r (v + 1);
        v
  in
  let program (ctx : Program.ctx) =
    enter rc ~proc:ctx.id;
    while rc.done_count.(ctx.id) < ops do
      ignore (recording rc ~proc:ctx.id ~op:Incr (fun () -> Got (fai ())));
      Program.complete ()
    done
  in
  let name =
    match variant with
    | `Faa -> "faa-counter"
    | `Cas -> "cas-counter"
    | `Nocas -> "counter-nocas"
  in
  {
    spec = { Sim.Executor.name; memory; program };
    events = events_of rc;
    in_flight = in_flight_of rc;
    marked = (fun proc -> rc.marks.(proc));
    restarts = (fun () -> Array.copy rc.restarts);
    check = (fun evs -> Checker.check counter_spec evs);
    shadow = (fun evs -> Linearize.Shadow.replay counter_spec evs);
    invariant = counter_invariant r;
  }

let treiber_make ~broken ~n ~ops ?mix_seed () =
  let memory = Memory.create () in
  let top = Memory.alloc memory ~size:1 in
  let rc = make_recorder n in
  let plans = plan ~n ~ops ~mix_seed in
  let pop () =
    if broken then begin
      (* Seeded bug: pop publishes with a blind write instead of
         CAS-validating against the observed top, losing concurrent
         pushes and enabling double pops. *)
      let t = Program.read top in
      if t = 0 then Treiber.Empty
      else
        let v = Program.read t in
        let next = Program.read (t + 1) in
        Program.write top next;
        Popped v
    end
    else Treiber.pop_op ~top
  in
  let program (ctx : Program.ctx) =
    enter rc ~proc:ctx.id;
    while rc.done_count.(ctx.id) < ops do
      (match plans.(ctx.id).(rc.done_count.(ctx.id)) with
      | Add v as o ->
          ignore
            (recording rc ~proc:ctx.id ~op:o (fun () ->
                 Treiber.push_op ~memory ~top v;
                 Done))
      | Take as o ->
          ignore
            (recording rc ~proc:ctx.id ~op:o (fun () ->
                 match pop () with
                 | Treiber.Empty -> Took_empty
                 | Popped v -> Took v))
      | Incr -> assert false);
      Program.complete ()
    done
  in
  {
    spec =
      {
        Sim.Executor.name = (if broken then "treiber-nocas" else "treiber");
        memory;
        program;
      };
    events = events_of rc;
    in_flight = in_flight_of rc;
    marked = (fun proc -> rc.marks.(proc));
    restarts = (fun () -> Array.copy rc.restarts);
    check = (fun evs -> Checker.check stack_spec evs);
    shadow = (fun evs -> Linearize.Shadow.replay stack_spec evs);
    invariant =
      chain_invariant ~what:"treiber"
        ~start:(fun mem -> Memory.get mem top)
        ~bound:(n * ops);
  }

let msqueue_make ~broken ~n ~ops ?mix_seed () =
  let memory = Memory.create () in
  let sentinel = Memory.alloc memory ~size:2 in
  let head = Memory.alloc_init memory [| sentinel |] in
  let tail = Memory.alloc_init memory [| sentinel |] in
  let rc = make_recorder n in
  let plans = plan ~n ~ops ~mix_seed in
  let deq () =
    if broken then begin
      (* Seeded bug: the head swing is a blind write, so two
         overlapping dequeues can both take the same node. *)
      let rec attempt () =
        let h = Program.read head in
        let t = Program.read tail in
        let next = Program.read (h + 1) in
        if h = t then
          if next = 0 then Msqueue.Empty
          else begin
            ignore (Program.cas tail ~expected:t ~value:next);
            attempt ()
          end
        else begin
          let v = Program.read next in
          Program.write head next;
          Dequeued v
        end
      in
      attempt ()
    end
    else Msqueue.dequeue_op ~head ~tail
  in
  let program (ctx : Program.ctx) =
    enter rc ~proc:ctx.id;
    while rc.done_count.(ctx.id) < ops do
      (match plans.(ctx.id).(rc.done_count.(ctx.id)) with
      | Add v as o ->
          ignore
            (recording rc ~proc:ctx.id ~op:o (fun () ->
                 (* The link CAS linearizes but the tail swing is still
                    ahead: mark so a crash in the gap completes instead
                    of re-running on recovery. *)
                 Msqueue.enqueue_op
                   ~on_linearize:(fun () -> rc.marks.(ctx.id) <- Some Done)
                   ~memory ~tail v;
                 Done))
      | Take as o ->
          ignore
            (recording rc ~proc:ctx.id ~op:o (fun () ->
                 match deq () with
                 | Msqueue.Empty -> Took_empty
                 | Dequeued v -> Took v))
      | Incr -> assert false);
      Program.complete ()
    done
  in
  {
    spec =
      {
        Sim.Executor.name = (if broken then "msqueue-nocas" else "msqueue");
        memory;
        program;
      };
    events = events_of rc;
    in_flight = in_flight_of rc;
    marked = (fun proc -> rc.marks.(proc));
    restarts = (fun () -> Array.copy rc.restarts);
    check = (fun evs -> Checker.check queue_spec evs);
    shadow = (fun evs -> Linearize.Shadow.replay queue_spec evs);
    invariant =
      chain_invariant ~what:"msqueue"
        ~start:(fun mem -> Memory.get mem head)
        ~bound:((n * ops) + 1);
  }

let elimination_make ~n ~ops ?mix_seed () =
  let memory = Memory.create () in
  let top = Memory.alloc memory ~size:1 in
  let eliminated = Memory.alloc memory ~size:1 in
  let slots = Array.init (max 1 (n / 4)) (fun _ -> Memory.alloc memory ~size:1) in
  (* A short poll keeps bounded explorations deep enough to reach the
     elimination paths. *)
  let poll = 2 in
  let rc = make_recorder n in
  let plans = plan ~n ~ops ~mix_seed in
  (* Where each process's push currently has its value parked, if
     anywhere: the recovery protocol's evidence.  Updated by the
     park/unpark hooks, so always atomic with the slot's actual
     state. *)
  let parked = Array.make n None in
  let recover proc op =
    match parked.(proc) with
    | None -> None (* nothing published: safe to re-run from scratch *)
    | Some (slot, v) ->
        (* Settle first, clear the evidence after: a crash landing
           inside [recover_push] restarts recovery with the parked
           record still in place. *)
        if Elimination_stack.recover_push ~slot v then begin
          parked.(proc) <- None;
          None
        end
        else begin
          parked.(proc) <- None;
          (match op with Add _ -> () | Take | Incr -> assert false);
          Some Done
        end
  in
  let program (ctx : Program.ctx) =
    enter ~recover:(recover ctx.id) rc ~proc:ctx.id;
    while rc.done_count.(ctx.id) < ops do
      (match plans.(ctx.id).(rc.done_count.(ctx.id)) with
      | Add v as o ->
          ignore
            (recording rc ~proc:ctx.id ~op:o (fun () ->
                 Elimination_stack.push_op
                   ~on_park:(fun ~slot -> parked.(ctx.id) <- Some (slot, v))
                   ~on_unpark:(fun () -> parked.(ctx.id) <- None)
                   ~memory ~top ~slots ~poll ctx v;
                 parked.(ctx.id) <- None;
                 Done))
      | Take as o ->
          ignore
            (recording rc ~proc:ctx.id ~op:o (fun () ->
                 match
                   Elimination_stack.pop_op
                     ~on_grab:(fun v ->
                       (* The grab is the linearization point of both
                          halves of the elimination; past it the pop
                          must complete, never re-run. *)
                       rc.marks.(ctx.id) <- Some (Took v))
                     ~top ~slots ~eliminated ctx
                 with
                 | Treiber.Empty -> Took_empty
                 | Popped v -> Took v))
      | Incr -> assert false);
      Program.complete ()
    done
  in
  {
    spec = { Sim.Executor.name = "elimination-stack"; memory; program };
    events = events_of rc;
    in_flight = in_flight_of rc;
    marked = (fun proc -> rc.marks.(proc));
    restarts = (fun () -> Array.copy rc.restarts);
    check = (fun evs -> Checker.check stack_spec evs);
    shadow = (fun evs -> Linearize.Shadow.replay stack_spec evs);
    invariant =
      chain_invariant ~what:"elimination-stack"
        ~start:(fun mem -> Memory.get mem top)
        ~bound:(n * ops);
  }

let wf_counter_make ~n ~ops ?mix_seed:_ () =
  let memory = Memory.create () in
  let pointer = Memory.alloc memory ~size:1 in
  let announce = Memory.alloc memory ~size:n in
  let first = Memory.alloc memory ~size:(n + 1) in
  Memory.set memory pointer first;
  let rc = make_recorder n in
  let program (ctx : Program.ctx) =
    (* No recover callback: [incr_op] is idempotent per (id, seq) —
       re-announcing the same sequence number after a crash returns as
       soon as a scan shows it applied, whether by this process's CAS
       or a helper's.  [seq] is derived from the plan cursor, so a
       restarted process re-runs exactly the request it crashed in. *)
    enter rc ~proc:ctx.id;
    while rc.done_count.(ctx.id) < ops do
      ignore
        (recording rc ~proc:ctx.id ~op:Incr (fun () ->
             Waitfree_counter.incr_op ~memory ~pointer ~announce ~n ~id:ctx.id
               ~seq:(rc.done_count.(ctx.id) + 1);
             Done));
      Program.complete ()
    done
  in
  let invariant =
    let last = ref 0 in
    fun mem ~time:_ ->
      (* Published state blocks are immutable, so the live pointer
         always names a fully-built block: its value must equal the
         sum of per-process applied counts and never regress. *)
      let p = Memory.get mem pointer in
      let value = Memory.get mem p in
      let sum = ref 0 in
      for k = 0 to n - 1 do
        sum := !sum + Memory.get mem (p + 1 + k)
      done;
      if value <> !sum then
        failwith
          (Printf.sprintf "waitfree-counter: value %d <> sum of applied %d"
             value !sum);
      if value < !last then
        failwith
          (Printf.sprintf "waitfree-counter went backwards: %d after %d" value
             !last);
      last := value
  in
  {
    spec = { Sim.Executor.name = "waitfree-counter"; memory; program };
    events = events_of rc;
    in_flight = in_flight_of rc;
    marked = (fun proc -> rc.marks.(proc));
    restarts = (fun () -> Array.copy rc.restarts);
    check = (fun evs -> Checker.check wf_counter_spec evs);
    shadow = (fun evs -> Linearize.Shadow.replay wf_counter_spec evs);
    invariant;
  }

(* Shadow-gate drill: the increment is a genuinely atomic FAA — no
   lost updates, so the structural invariant (monotone, one bump per
   step) holds on every run — but the *reported* pre-value is off by
   one.  Exactly the class of bug a state-machine replay against the
   sequential spec catches and a structural invariant cannot. *)
let counter_misreport_make ~n ~ops ?mix_seed:_ () =
  let memory = Memory.create () in
  let r = Memory.alloc memory ~size:1 in
  let rc = make_recorder n in
  let program (ctx : Program.ctx) =
    enter rc ~proc:ctx.id;
    while rc.done_count.(ctx.id) < ops do
      ignore
        (recording rc ~proc:ctx.id ~op:Incr (fun () ->
             Got (Program.faa r 1 + 1)));
      Program.complete ()
    done
  in
  {
    spec = { Sim.Executor.name = "counter-misreport"; memory; program };
    events = events_of rc;
    in_flight = in_flight_of rc;
    marked = (fun proc -> rc.marks.(proc));
    restarts = (fun () -> Array.copy rc.restarts);
    check = (fun evs -> Checker.check counter_spec evs);
    shadow = (fun evs -> Linearize.Shadow.replay counter_spec evs);
    invariant = counter_invariant r;
  }

type t = {
  name : string;
  buggy : bool;
  make : n:int -> ops:int -> ?mix_seed:int -> unit -> instance;
}

let all =
  [
    { name = "cas-counter"; buggy = false; make = counter_make ~variant:`Cas };
    { name = "faa-counter"; buggy = false; make = counter_make ~variant:`Faa };
    { name = "treiber"; buggy = false; make = treiber_make ~broken:false };
    { name = "msqueue"; buggy = false; make = msqueue_make ~broken:false };
    { name = "elimination-stack"; buggy = false; make = elimination_make };
    { name = "waitfree-counter"; buggy = false; make = wf_counter_make };
    {
      name = "counter-nocas";
      buggy = true;
      make = counter_make ~variant:`Nocas;
    };
    { name = "treiber-nocas"; buggy = true; make = treiber_make ~broken:true };
    { name = "msqueue-nocas"; buggy = true; make = msqueue_make ~broken:true };
  ]

let stock = List.filter (fun t -> not t.buggy) all

(* Kept out of [all] so `--structures all` sweeps (and their pinned CLI
   outputs) are unchanged; reachable by name for shadow-gate drills. *)
let mutants =
  [
    {
      name = "counter-misreport";
      buggy = true;
      make = counter_misreport_make;
    };
  ]

let find name =
  match List.find_opt (fun t -> t.name = name) (all @ mutants) with
  | Some t -> t
  | None ->
      invalid_arg
        (Printf.sprintf "Checkable.find: unknown structure %S (known: %s)" name
           (String.concat ", "
              (List.map (fun t -> t.name) (all @ mutants))))
