(* Check-harness adapters: each structure packaged with a history
   recorder, its sequential specification, and a structural invariant,
   plus deliberately broken variants (the scan-validate CAS replaced by
   a blind write) that the `repro check` explorer must catch. *)

module Memory = Sim.Memory
module Program = Sim.Program
module Checker = Linearize.Checker

type op = Add of int | Take | Incr
type res = Done | Took of int | Took_empty | Got of int

let op_to_string = function
  | Add v -> Printf.sprintf "add(%d)" v
  | Take -> "take"
  | Incr -> "incr"

let res_to_string = function
  | Done -> "()"
  | Took v -> Printf.sprintf "got %d" v
  | Took_empty -> "empty"
  | Got v -> string_of_int v

let event_to_string (e : (op, res) Checker.event) =
  Printf.sprintf "p%d %s -> %s [%d,%d]" e.proc (op_to_string e.op)
    (res_to_string e.result) e.invoked e.returned

(* Sequential specifications.  States are monomorphic per structure;
   the [instance] record hides them behind check closures. *)

let counter_spec : (op, res, int) Checker.spec =
  {
    initial = 0;
    apply =
      (fun o s ->
        match o with
        | Incr -> (Got s, s + 1)
        | Add _ | Take -> invalid_arg "Checkable: stack/queue op on counter");
  }

let stack_spec : (op, res, int list) Checker.spec =
  {
    initial = [];
    apply =
      (fun o s ->
        match o with
        | Add v -> (Done, v :: s)
        | Take -> ( match s with [] -> (Took_empty, []) | v :: r -> (Took v, r))
        | Incr -> invalid_arg "Checkable: counter op on stack");
  }

let queue_spec : (op, res, int list) Checker.spec =
  {
    initial = [];
    apply =
      (fun o s ->
        match o with
        | Add v -> (Done, s @ [ v ])
        | Take -> ( match s with [] -> (Took_empty, []) | v :: r -> (Took v, r))
        | Incr -> invalid_arg "Checkable: counter op on queue");
  }

(* History recording: instrumentation outside the simulated memory, so
   it costs no steps.  Timestamps use the doubled-clock convention of
   [Checker.record_with]; the per-process slot tracks the operation a
   suspended process is inside of when a run stops at a frontier. *)

type recorder = {
  mutable completed : (op, res) Checker.event list;  (* newest first *)
  slots : (op * int) option array;
  marks : res option array;
      (* Set when an in-flight operation has already linearized (only
         the MS-queue enqueue, between link CAS and tail swing). *)
  done_count : int array;  (* completed ops per process — the plan cursor *)
  started : bool array;
  restarts : int array;
}

let make_recorder n =
  {
    completed = [];
    slots = Array.make n None;
    marks = Array.make n None;
    done_count = Array.make n 0;
    started = Array.make n false;
    restarts = Array.make n 0;
  }

let recording rc ~proc ~op f =
  let invoked = (2 * Program.now ()) + 1 in
  rc.slots.(proc) <- Some (op, invoked);
  let result = f () in
  let returned = 2 * Program.now () in
  rc.slots.(proc) <- None;
  rc.marks.(proc) <- None;
  rc.done_count.(proc) <- rc.done_count.(proc) + 1;
  rc.completed <- { Checker.proc; op; result; invoked; returned } :: rc.completed;
  result

(* Recovery-safe re-entry: every program body calls this first.  On
   the initial start it only marks the process as started.  After a
   crash–recovery restart it settles the interrupted operation, if any:

   - *marked* in flight — the crashed attempt had already linearized
     (MS-queue enqueue past its link CAS), so re-running it would apply
     the operation twice.  Complete it now with the marked result.
   - *unmarked* in flight — the suspended step was never applied and
     every applied step of these structures before the linearization
     point touches only private or unpublished nodes, so dropping the
     attempt and re-running the operation from scratch is safe (the
     half-built node is leaked, never published).

   The plan cursor is [done_count], which only [recording] (and the
   marked path here) advance — a restarted process resumes at exactly
   the operation it crashed inside of. *)
let enter rc ~proc =
  if rc.started.(proc) then begin
    rc.restarts.(proc) <- rc.restarts.(proc) + 1;
    match rc.slots.(proc) with
    | None -> ()
    | Some (op, invoked) -> (
        match rc.marks.(proc) with
        | Some result ->
            let returned = 2 * Program.now () in
            rc.slots.(proc) <- None;
            rc.marks.(proc) <- None;
            rc.done_count.(proc) <- rc.done_count.(proc) + 1;
            rc.completed <-
              { Checker.proc; op; result; invoked; returned } :: rc.completed;
            Program.complete ()
        | None -> rc.slots.(proc) <- None)
  end
  else rc.started.(proc) <- true

type instance = {
  spec : Sim.Executor.spec;
  events : unit -> (op, res) Checker.event list;
  in_flight : unit -> (int * op * int) list;
  marked : int -> res option;
  restarts : unit -> int array;
  check : (op, res) Checker.event list -> bool;
  invariant : Memory.t -> time:int -> unit;
}

let events_of rc () = List.rev rc.completed

let in_flight_of rc () =
  let out = ref [] in
  Array.iteri
    (fun proc slot ->
      match slot with
      | Some (op, invoked) -> out := (proc, op, invoked) :: !out
      | None -> ())
    rc.slots;
  List.rev !out

(* Invariants (read the live memory directly; raise to flag corruption). *)

let counter_invariant register =
  let last = ref 0 in
  fun mem ~time:_ ->
    let v = Memory.get mem register in
    if v < !last then
      failwith
        (Printf.sprintf "counter went backwards: %d after %d" v !last);
    last := v

let chain_invariant ~what ~start ~bound mem ~time:_ =
  let rec walk node hops =
    if node <> 0 then
      if hops > bound then
        failwith (what ^ ": node chain exceeds bound (cycle or corruption)")
      else walk (Memory.get mem (node + 1)) (hops + 1)
  in
  walk (start mem) 0

(* Per-process operation plans.  Deterministic by construction so that
   under the explorer the schedule is the *only* source of
   nondeterminism: by default even processes add and odd ones take
   (the contention pattern that exposes the seeded bugs at n = 2);
   [mix_seed] switches to a seeded random mix for fuzz variety. *)

let unique_value ~n ~id ~k = (k * n) + id + 1

let plan ~n ~ops ~mix_seed =
  Array.init n (fun id ->
      match mix_seed with
      | None ->
          Array.init ops (fun k ->
              if n = 1 || id mod 2 = 0 then Add (unique_value ~n ~id ~k)
              else Take)
      | Some seed ->
          let rng = Stats.Rng.create ~seed:(seed + (7919 * (id + 1))) in
          Array.init ops (fun k ->
              if Stats.Rng.bool rng then Add (unique_value ~n ~id ~k)
              else Take))

(* Builders. *)

let counter_make ~variant ~n ~ops ?mix_seed:_ () =
  let memory = Memory.create () in
  let r = Memory.alloc memory ~size:1 in
  let rc = make_recorder n in
  let fai () =
    match variant with
    | `Faa -> Program.faa r 1
    | `Cas -> Counter.fetch_and_increment r
    | `Nocas ->
        (* Seeded bug: the validate is gone, so two overlapping
           increments can read the same value (lost update). *)
        let v = Program.read r in
        Program.write r (v + 1);
        v
  in
  let program (ctx : Program.ctx) =
    enter rc ~proc:ctx.id;
    while rc.done_count.(ctx.id) < ops do
      ignore (recording rc ~proc:ctx.id ~op:Incr (fun () -> Got (fai ())));
      Program.complete ()
    done
  in
  let name =
    match variant with
    | `Faa -> "faa-counter"
    | `Cas -> "cas-counter"
    | `Nocas -> "counter-nocas"
  in
  {
    spec = { Sim.Executor.name; memory; program };
    events = events_of rc;
    in_flight = in_flight_of rc;
    marked = (fun proc -> rc.marks.(proc));
    restarts = (fun () -> Array.copy rc.restarts);
    check = (fun evs -> Checker.check counter_spec evs);
    invariant = counter_invariant r;
  }

let treiber_make ~broken ~n ~ops ?mix_seed () =
  let memory = Memory.create () in
  let top = Memory.alloc memory ~size:1 in
  let rc = make_recorder n in
  let plans = plan ~n ~ops ~mix_seed in
  let pop () =
    if broken then begin
      (* Seeded bug: pop publishes with a blind write instead of
         CAS-validating against the observed top, losing concurrent
         pushes and enabling double pops. *)
      let t = Program.read top in
      if t = 0 then Treiber.Empty
      else
        let v = Program.read t in
        let next = Program.read (t + 1) in
        Program.write top next;
        Popped v
    end
    else Treiber.pop_op ~top
  in
  let program (ctx : Program.ctx) =
    enter rc ~proc:ctx.id;
    while rc.done_count.(ctx.id) < ops do
      (match plans.(ctx.id).(rc.done_count.(ctx.id)) with
      | Add v as o ->
          ignore
            (recording rc ~proc:ctx.id ~op:o (fun () ->
                 Treiber.push_op ~memory ~top v;
                 Done))
      | Take as o ->
          ignore
            (recording rc ~proc:ctx.id ~op:o (fun () ->
                 match pop () with
                 | Treiber.Empty -> Took_empty
                 | Popped v -> Took v))
      | Incr -> assert false);
      Program.complete ()
    done
  in
  {
    spec =
      {
        Sim.Executor.name = (if broken then "treiber-nocas" else "treiber");
        memory;
        program;
      };
    events = events_of rc;
    in_flight = in_flight_of rc;
    marked = (fun proc -> rc.marks.(proc));
    restarts = (fun () -> Array.copy rc.restarts);
    check = (fun evs -> Checker.check stack_spec evs);
    invariant =
      chain_invariant ~what:"treiber"
        ~start:(fun mem -> Memory.get mem top)
        ~bound:(n * ops);
  }

let msqueue_make ~broken ~n ~ops ?mix_seed () =
  let memory = Memory.create () in
  let sentinel = Memory.alloc memory ~size:2 in
  let head = Memory.alloc_init memory [| sentinel |] in
  let tail = Memory.alloc_init memory [| sentinel |] in
  let rc = make_recorder n in
  let plans = plan ~n ~ops ~mix_seed in
  let deq () =
    if broken then begin
      (* Seeded bug: the head swing is a blind write, so two
         overlapping dequeues can both take the same node. *)
      let rec attempt () =
        let h = Program.read head in
        let t = Program.read tail in
        let next = Program.read (h + 1) in
        if h = t then
          if next = 0 then Msqueue.Empty
          else begin
            ignore (Program.cas tail ~expected:t ~value:next);
            attempt ()
          end
        else begin
          let v = Program.read next in
          Program.write head next;
          Dequeued v
        end
      in
      attempt ()
    end
    else Msqueue.dequeue_op ~head ~tail
  in
  let program (ctx : Program.ctx) =
    enter rc ~proc:ctx.id;
    while rc.done_count.(ctx.id) < ops do
      (match plans.(ctx.id).(rc.done_count.(ctx.id)) with
      | Add v as o ->
          ignore
            (recording rc ~proc:ctx.id ~op:o (fun () ->
                 (* The link CAS linearizes but the tail swing is still
                    ahead: mark so a crash in the gap completes instead
                    of re-running on recovery. *)
                 Msqueue.enqueue_op
                   ~on_linearize:(fun () -> rc.marks.(ctx.id) <- Some Done)
                   ~memory ~tail v;
                 Done))
      | Take as o ->
          ignore
            (recording rc ~proc:ctx.id ~op:o (fun () ->
                 match deq () with
                 | Msqueue.Empty -> Took_empty
                 | Dequeued v -> Took v))
      | Incr -> assert false);
      Program.complete ()
    done
  in
  {
    spec =
      {
        Sim.Executor.name = (if broken then "msqueue-nocas" else "msqueue");
        memory;
        program;
      };
    events = events_of rc;
    in_flight = in_flight_of rc;
    marked = (fun proc -> rc.marks.(proc));
    restarts = (fun () -> Array.copy rc.restarts);
    check = (fun evs -> Checker.check queue_spec evs);
    invariant =
      chain_invariant ~what:"msqueue"
        ~start:(fun mem -> Memory.get mem head)
        ~bound:((n * ops) + 1);
  }

type t = {
  name : string;
  buggy : bool;
  make : n:int -> ops:int -> ?mix_seed:int -> unit -> instance;
}

let all =
  [
    { name = "cas-counter"; buggy = false; make = counter_make ~variant:`Cas };
    { name = "faa-counter"; buggy = false; make = counter_make ~variant:`Faa };
    { name = "treiber"; buggy = false; make = treiber_make ~broken:false };
    { name = "msqueue"; buggy = false; make = msqueue_make ~broken:false };
    {
      name = "counter-nocas";
      buggy = true;
      make = counter_make ~variant:`Nocas;
    };
    { name = "treiber-nocas"; buggy = true; make = treiber_make ~broken:true };
    { name = "msqueue-nocas"; buggy = true; make = msqueue_make ~broken:true };
  ]

let stock = List.filter (fun t -> not t.buggy) all

let find name =
  match List.find_opt (fun t -> t.name = name) all with
  | Some t -> t
  | None ->
      invalid_arg
        (Printf.sprintf "Checkable.find: unknown structure %S (known: %s)" name
           (String.concat ", " (List.map (fun t -> t.name) all)))
