(** An obstruction-free (but not lock-free) counter — the last cell of
    the paper's §2.2 progress taxonomy.

    Protocol (a deliberately minimal abortable-intent scheme):
    to increment, a process raises its intent flag, scans all other
    flags, and
    - if anyone else's flag is up, lowers its own and retries
      (abort on interference);
    - otherwise increments the counter register and lowers its flag.

    Any process running in isolation for 2n + 2 steps completes, so
    the algorithm guarantees maximal progress in every uniformly
    isolating execution — obstruction-freedom exactly as §2.2 defines
    it.  It is NOT lock-free: under lockstep round-robin scheduling
    every process sees someone else's flag and aborts forever (the
    classic livelock), so there are executions where *nobody* makes
    progress — something impossible for the CAS counter.

    Under a stochastic scheduler, Theorem 3's reasoning still applies
    (a solo run of 2n + 2 steps has probability ≥ θ^{2n+2} at every
    point), so even this algorithm is practically wait-free — the
    `abl-of` experiment shows the livelock and its stochastic cure. *)

type t = {
  spec : Sim.Executor.spec;
  register : int;
  flags : int;
  n : int;
}

val make : n:int -> t

val value : t -> Sim.Memory.t -> int
