(** A sharded ("stochastic") counter — an answer to the paper's §8
    question "whether there exist concurrent algorithms which avoid
    the Θ(√n) contention factor in the latency".

    The counter's value is split across [shards] registers; an
    increment picks a uniformly random shard and runs the usual
    read+CAS loop on it.  Under the uniform stochastic scheduler each
    shard behaves like an SCU(0, 1) instance shared by ~n/k processes,
    so the system latency drops from Θ(√n) to Θ(√(n/k)) — O(1) when
    k = Θ(n).  The price is that reading the exact total costs a
    k-register scan and the total is only quiescently consistent
    (this is the classic statistics-counter trade-off, cf. Dice, Lev,
    Moir — the paper's ref [4]). *)

type t = {
  spec : Sim.Executor.spec;
  shards : int array;  (** Addresses of the shard registers. *)
  n : int;
}

val make : n:int -> shards:int -> t
(** Requires [shards >= 1]. *)

val value : t -> Sim.Memory.t -> int
(** Sum of all shards (quiescently consistent; exact at rest). *)
