(** A wait-free fetch-and-increment built with a helping mechanism —
    the comparison point the paper's introduction motivates: wait-free
    algorithms buy *bounded* individual progress at the price of the
    "specialized helping mechanisms [that] significantly increase the
    complexity (both the design complexity and time complexity)".

    Construction (announce + apply-all, in the style of Herlihy's
    wait-free universal construction):
    - [announce.(i)] holds process i's latest request sequence number;
    - the object state is an immutable block [value; applied_0 …
      applied_{n−1}] reached from a pointer register;
    - an operation announces itself, then repeatedly scans the state:
      if its request is already applied, it returns (someone helped);
      otherwise it builds a successor state applying *every* announced
      but unapplied request and CASes it in.

    Every successful CAS applies all requests its scan saw, so any
    announced request is applied within two successful CASes after its
    announcement — individual progress is bounded by the *system's*
    progress, which is the wait-freedom argument.  The cost is a
    Θ(n)-step scan per attempt, versus 2 steps for the lock-free
    counter. *)

type t = {
  spec : Sim.Executor.spec;
  pointer : int;
  announce : int;
  n : int;
}

val make : n:int -> t

val incr_op :
  memory:Sim.Memory.t ->
  pointer:int ->
  announce:int ->
  n:int ->
  id:int ->
  seq:int ->
  unit
(** One increment by process [id] with request sequence number [seq]
    (the caller numbers its requests 1, 2, …).  Announce, then scan
    until the request is applied — by this process's own CAS or by a
    helper.  Idempotent per [(id, seq)]: re-running after a crash
    re-announces the same number and returns immediately when a scan
    shows it already applied, which is what makes the check-harness
    adapter recovery-safe without any settlement protocol. *)

val value : t -> Sim.Memory.t -> int
(** Current counter value: total increments applied. *)

val applied : t -> Sim.Memory.t -> int array
(** Per-process applied-request counts (their sum is [value]). *)
