module Memory = Sim.Memory
module Program = Sim.Program

type t = {
  spec : Sim.Executor.spec;
  top : int;
  slots : int array;
  eliminated : int;
  n : int;
}

let empty = 0
let taken = 1
let parked v = v + 2
let unpark c = c - 2

let make ?slots:(slot_count = 0) ?(poll = 4) ?(push_ratio = 0.5) ~n () =
  if not (push_ratio >= 0. && push_ratio <= 1.) then
    invalid_arg "Elimination_stack.make: push_ratio out of [0,1]";
  if poll < 1 then invalid_arg "Elimination_stack.make: poll must be >= 1";
  let slot_count = if slot_count <= 0 then max 1 (n / 4) else slot_count in
  let memory = Memory.create () in
  let top = Memory.alloc memory ~size:1 in
  let eliminated = Memory.alloc memory ~size:1 in
  let slots = Array.init slot_count (fun _ -> Memory.alloc memory ~size:1) in
  let push_stack node =
    let t = Program.read top in
    Program.write (node + 1) t;
    Program.cas top ~expected:t ~value:node
  in
  let try_park_push (ctx : Program.ctx) v =
    (* Returns true when the value was handed to a pop. *)
    let slot = slots.(Stats.Rng.int ctx.rng slot_count) in
    if not (Program.cas slot ~expected:empty ~value:(parked v)) then false
    else begin
      let rec wait k =
        let c = Program.read slot in
        if c = taken then begin
          (* A pop grabbed it; release the slot. *)
          Program.write slot empty;
          true
        end
        else if k >= poll then
          (* Reclaim, unless a pop slips in at the last instant. *)
          if Program.cas slot ~expected:(parked v) ~value:empty then false
          else begin
            (* The CAS can only fail because the slot became taken. *)
            Program.write slot empty;
            true
          end
        else wait (k + 1)
      in
      wait 0
    end
  in
  let try_grab_pop (ctx : Program.ctx) =
    let slot = slots.(Stats.Rng.int ctx.rng slot_count) in
    let c = Program.read slot in
    if c >= 2 && Program.cas slot ~expected:c ~value:taken then begin
      ignore (Program.faa eliminated 1);
      Some (unpark c)
    end
    else None
  in
  let program (ctx : Program.ctx) =
    let ops = ref 0 in
    let rec push_loop node v =
      if push_stack node then ()
      else if try_park_push ctx v then ()
      else push_loop node v
    and pop_loop () =
      let t = Program.read top in
      if t = 0 then ()
      else
        let _v = Program.read t in
        let next = Program.read (t + 1) in
        if Program.cas top ~expected:t ~value:next then ()
        else
          match try_grab_pop ctx with
          | Some _ -> ()
          | None -> pop_loop ()
    in
    let rec loop () =
      (if Stats.Rng.float ctx.rng 1.0 < push_ratio then begin
         let v = (!ops * n) + ctx.id + 1 in
         let node = Memory.alloc memory ~size:2 in
         Program.write node v;
         push_loop node v
       end
       else pop_loop ());
      incr ops;
      Program.complete ();
      loop ()
    in
    loop ()
  in
  {
    spec =
      { name = Printf.sprintf "elimination-stack(k=%d)" slot_count; memory; program };
    top;
    slots;
    eliminated;
    n;
  }

let eliminated_pairs t mem = Memory.get mem t.eliminated

let drain t mem =
  let rec walk node acc =
    if node = 0 then List.rev acc
    else walk (Memory.get mem (node + 1)) (Memory.get mem node :: acc)
  in
  let stacked = walk (Memory.get mem t.top) [] in
  let in_slots =
    Array.to_list t.slots
    |> List.filter_map (fun s ->
           let c = Memory.get mem s in
           if c >= 2 then Some (unpark c) else None)
  in
  stacked @ in_slots
