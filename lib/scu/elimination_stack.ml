module Memory = Sim.Memory
module Program = Sim.Program

type t = {
  spec : Sim.Executor.spec;
  top : int;
  slots : int array;
  eliminated : int;
  n : int;
}

let empty = 0
let taken = 1
let parked v = v + 2
let unpark c = c - 2

let push_op ?(on_park = fun ~slot:_ -> ()) ?(on_unpark = fun () -> ()) ~memory
    ~top ~slots ~poll (ctx : Program.ctx) v =
  let slot_count = Array.length slots in
  let node = Memory.alloc memory ~size:2 in
  Program.write node v;
  let push_stack () =
    let t = Program.read top in
    Program.write (node + 1) t;
    Program.cas top ~expected:t ~value:node
  in
  let try_park () =
    (* Returns true when the value was handed to a pop. *)
    let slot = slots.(Stats.Rng.int ctx.rng slot_count) in
    if not (Program.cas slot ~expected:empty ~value:(parked v)) then false
    else begin
      on_park ~slot;
      (* Reclaim the slot after the poll budget.  A failed reclaim CAS
         does not by itself prove a pop grabbed the value: under an
         LL/SC-style memory (the chaos layer's spurious-CAS fault
         mode) a CAS can fail with the slot untouched, so re-read and
         decide on the observed state — only [taken] means grabbed. *)
      let rec reclaim () =
        if Program.cas slot ~expected:(parked v) ~value:empty then begin
          on_unpark ();
          false
        end
        else if Program.read slot = taken then begin
          Program.write slot empty;
          true
        end
        else reclaim ()
      in
      let rec wait k =
        let c = Program.read slot in
        if c = taken then begin
          (* A pop grabbed it; release the slot. *)
          Program.write slot empty;
          true
        end
        else if k >= poll then reclaim ()
        else wait (k + 1)
      in
      wait 0
    end
  in
  let rec loop () =
    if push_stack () then ()
    else if try_park () then ()
    else loop ()
  in
  loop ()

let pop_op ?(on_grab = fun _ -> ()) ~top ~slots ~eliminated (ctx : Program.ctx)
    =
  let slot_count = Array.length slots in
  let try_grab () =
    let slot = slots.(Stats.Rng.int ctx.rng slot_count) in
    let c = Program.read slot in
    if c >= 2 && Program.cas slot ~expected:c ~value:taken then begin
      on_grab (unpark c);
      ignore (Program.faa eliminated 1);
      Some (unpark c)
    end
    else None
  in
  let rec attempt () =
    let t = Program.read top in
    if t = 0 then Treiber.Empty
    else
      let v = Program.read t in
      let next = Program.read (t + 1) in
      if Program.cas top ~expected:t ~value:next then Treiber.Popped v
      else
        match try_grab () with
        | Some v -> Treiber.Popped v
        | None -> attempt ()
  in
  attempt ()

let recover_push ~slot v =
  let rec settle () =
    if Program.cas slot ~expected:(parked v) ~value:empty then true
    else if Program.read slot = taken then begin
      (* Grabbed before the crash: the push linearized at the grab.
         Release the taken marker (only the parking pusher may). *)
      Program.write slot empty;
      false
    end
    else settle () (* spurious CAS failure; the value is still parked *)
  in
  settle ()

let make ?slots:(slot_count = 0) ?(poll = 4) ?(push_ratio = 0.5) ~n () =
  if not (push_ratio >= 0. && push_ratio <= 1.) then
    invalid_arg "Elimination_stack.make: push_ratio out of [0,1]";
  if poll < 1 then invalid_arg "Elimination_stack.make: poll must be >= 1";
  let slot_count = if slot_count <= 0 then max 1 (n / 4) else slot_count in
  let memory = Memory.create () in
  let top = Memory.alloc memory ~size:1 in
  let eliminated = Memory.alloc memory ~size:1 in
  let slots = Array.init slot_count (fun _ -> Memory.alloc memory ~size:1) in
  let program (ctx : Program.ctx) =
    let ops = ref 0 in
    let rec loop () =
      (if Stats.Rng.float ctx.rng 1.0 < push_ratio then
         let v = (!ops * n) + ctx.id + 1 in
         push_op ~memory ~top ~slots ~poll ctx v
       else ignore (pop_op ~top ~slots ~eliminated ctx));
      incr ops;
      Program.complete ();
      loop ()
    in
    loop ()
  in
  {
    spec =
      { name = Printf.sprintf "elimination-stack(k=%d)" slot_count; memory; program };
    top;
    slots;
    eliminated;
    n;
  }

let eliminated_pairs t mem = Memory.get mem t.eliminated

let drain t mem =
  let rec walk node acc =
    if node = 0 then List.rev acc
    else walk (Memory.get mem (node + 1)) (Memory.get mem node :: acc)
  in
  let stacked = walk (Memory.get mem t.top) [] in
  let in_slots =
    Array.to_list t.slots
    |> List.filter_map (fun s ->
           let c = Memory.get mem s in
           if c >= 2 then Some (unpark c) else None)
  in
  stacked @ in_slots
