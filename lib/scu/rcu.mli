(** A read-copy-update (RCU) pattern (paper ref [7]): readers traverse
    an immutable block through a published pointer (wait-free, pure
    "parallel code" in the paper's sense), while updaters copy the
    block, modify it, and publish with a CAS on the pointer — an
    SCU(Θ(m), 1) operation for block size m.

    Because published blocks are immutable, every reader snapshot must
    be internally consistent: all cells of a block carry the same
    generation number, which the logged variant verifies. *)

type t = {
  spec : Sim.Executor.spec;
  pointer : int;  (** Published-block pointer register. *)
  block_size : int;
  readers : int;  (** Process ids [0, readers) are readers. *)
  torn_reads : int;
      (** Address of a flag cell a reader sets if it ever observes a
          block whose cells disagree — must remain 0. *)
  n : int;
}

val read_method : int
(** Method id for reader snapshots in per-method statistics. *)

val update_method : int

val make : n:int -> readers:int -> block_size:int -> t
(** Requires [0 <= readers < n] (at least one updater) and
    [block_size >= 1].  Completions are tagged with [read_method] /
    [update_method]. *)

val generation : t -> Sim.Memory.t -> int
(** Generation number of the currently published block (= number of
    successful updates). *)

val torn : t -> Sim.Memory.t -> bool
(** True if any reader ever saw an inconsistent snapshot (must be
    false: publication is atomic). *)
