(** The unbounded lock-free algorithm of Lemma 2 (paper's Algorithm 1):
    processes repeatedly try CAS(C, v, v+1); each *failed* attempt
    makes the loser spin for n²·v reads before retrying, so losers
    fall further and further behind.  The algorithm is lock-free but
    NOT wait-free with high probability: the first winner holds the
    current value (its local v persists across operations, as in the
    paper's pseudocode where v is declared outside the loop), so it
    keeps winning while everyone else starves — a loser can only
    sneak a success if the winner takes no step during the loser's
    entire n²·v penalty window, which has probability ~(1−1/n)^{n²}
    ≤ e^{−n}. *)

type t = {
  spec : Sim.Executor.spec;
  register : int;  (** The CAS object C. *)
  n : int;
}

val make : ?penalty_cap:int -> n:int -> unit -> t
(** [penalty_cap] (default [max_int]) truncates the n²·v spin so
    experiments at larger n finish; the starvation effect is already
    decisive far below the cap. *)
