module Memory = Sim.Memory
module Program = Sim.Program

type t = { spec : Sim.Executor.spec; lock : int; counter : int; n : int }

let make ~n =
  let memory = Memory.create () in
  let lock = Memory.alloc memory ~size:1 in
  let counter = Memory.alloc memory ~size:1 in
  let program (ctx : Program.ctx) =
    let rec operation () =
      let rec acquire () =
        if not (Program.cas lock ~expected:0 ~value:(ctx.id + 1)) then acquire ()
      in
      acquire ();
      let v = Program.read counter in
      Program.write counter (v + 1);
      Program.write lock 0;
      Program.complete ();
      operation ()
    in
    operation ()
  in
  { spec = { name = "tas-lock-counter"; memory; program }; lock; counter; n }

let value t mem = Memory.get mem t.counter

let holder t mem =
  match Memory.get mem t.lock with 0 -> None | h -> Some (h - 1)
