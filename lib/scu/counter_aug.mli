(** Fetch-and-increment from *augmented* CAS — paper §7, Algorithm 5.

    Augmented CAS returns the register's current value, so a failed
    attempt leaves the caller holding the *current* value: its very
    next attempt succeeds unless someone intervenes.  The local value
    [v] persists across operations, which is what makes the two-state
    (Current/Stale) Markov chain of §7.1 the right model. *)

type t = {
  spec : Sim.Executor.spec;
  register : int;
  n : int;
}

val make : n:int -> t

val value : t -> Sim.Memory.t -> int
