module Program = Sim.Program
module Memory = Sim.Memory

type t = { spec : Sim.Executor.spec; q : int; n : int }

let make ~n ~q =
  if q < 1 then invalid_arg "Parallel_code.make: q must be >= 1";
  let memory = Memory.create () in
  let program (_ : Program.ctx) =
    let rec loop () =
      for _ = 1 to q do
        Program.yield_noop ()
      done;
      Program.complete ();
      loop ()
    in
    loop ()
  in
  { spec = { name = Printf.sprintf "parallel(q=%d)" q; memory; program }; q; n }
