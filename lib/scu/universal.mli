(** A lock-free universal construction (Herlihy, paper ref [9]) in the
    SCU mold: the implemented object's state lives in an immutable
    block reached from a pointer register; an operation scans the
    block, computes the successor state locally, and publishes it with
    a single CAS — "every sequential object has a lock-free
    implementation in this class" (§1).

    The object is specified by an initial state and a sequential
    transition function. *)

type spec_fn = proc:int -> op_index:int -> int array -> int array
(** [apply ~proc ~op_index state] returns the successor state.  Must
    be a pure function of its arguments and must return an array of
    the same length. *)

type t = {
  spec : Sim.Executor.spec;
  pointer : int;
  state_size : int;
  n : int;
}

val make : n:int -> init:int array -> apply:spec_fn -> t

val state : t -> Sim.Memory.t -> int array
(** Currently published state (direct read). *)

val sequential_witness :
  init:int array -> apply:spec_fn -> (int * int) list -> int array
(** Replays a sequence of [(proc, op_index)] operations sequentially —
    the linearization witness the tests compare against. *)
