(** A wait-free universal construction — the maximal-progress
    counterpart of {!Universal}, built from the classic announce +
    help-all mechanism (Herlihy [9]; the "specialized helping
    mechanisms" whose complexity the paper's introduction cites as the
    reason practitioners avoid wait-free algorithms).

    Object state lives in an immutable block
    [state₀ … state_{k−1}; applied₀ … applied_{n−1}] reached from a
    pointer register; [announce.(i)] carries process i's request
    sequence number.  An operation announces itself and then scans:
    if its request is already applied it returns, otherwise it builds
    a successor block applying *every* announced-but-unapplied request
    (in process order — a valid linearization) and CASes the pointer.

    Safety argument, which the tests exercise: a successful CAS is
    always based on the current block (fresh blocks are never reused,
    so an outdated expected pointer cannot win), block cells are
    immutable once published, and announce cells are monotone and read
    after the block — hence every request is applied exactly once, in
    announce order per process.

    Cost: Θ(k + n) steps per attempt, against the paper's point that
    the plain lock-free construction costs Θ(k) and is practically
    wait-free anyway under a stochastic scheduler. *)

type t = {
  spec : Sim.Executor.spec;
  pointer : int;
  announce : int;
  state_size : int;
  n : int;
}

val make : n:int -> init:int array -> apply:Universal.spec_fn -> t
(** Same object specification as {!Universal.make}. *)

val state : t -> Sim.Memory.t -> int array
(** Currently published object state. *)

val applied : t -> Sim.Memory.t -> int array
(** Per-process applied-request counts. *)
