module Memory = Sim.Memory
module Program = Sim.Program

type t = { spec : Sim.Executor.spec; shards : int array; n : int }

let make ~n ~shards =
  if shards < 1 then invalid_arg "Sharded_counter.make: shards must be >= 1";
  let memory = Memory.create () in
  let regs = Array.init shards (fun _ -> Memory.alloc memory ~size:1) in
  let program (ctx : Program.ctx) =
    let rec operation () =
      let r = regs.(Stats.Rng.int ctx.rng shards) in
      let rec attempt () =
        let v = Program.read r in
        if not (Program.cas r ~expected:v ~value:(v + 1)) then attempt ()
      in
      attempt ();
      Program.complete ();
      operation ()
    in
    operation ()
  in
  {
    spec = { name = Printf.sprintf "sharded-counter(k=%d)" shards; memory; program };
    shards = regs;
    n;
  }

let value t mem = Array.fold_left (fun acc r -> acc + Memory.get mem r) 0 t.shards
