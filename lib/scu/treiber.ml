module Memory = Sim.Memory
module Program = Sim.Program

type t = {
  spec : Sim.Executor.spec;
  top : int;
  push_log : int option;
  pop_log : int option;
  ops_per_process : int;
  n : int;
}

type pop_result = Empty | Popped of int

let push_method = 0
let pop_method = 1

(* Node layout: [value; next]. *)

let push_op ~memory ~top value =
  let node = Memory.alloc memory ~size:2 in
  Program.write node value;
  let rec attempt () =
    let t = Program.read top in
    Program.write (node + 1) t;
    if not (Program.cas top ~expected:t ~value:node) then attempt ()
  in
  attempt ()

let pop_op ~top =
  let rec attempt () =
    let t = Program.read top in
    if t = 0 then Empty
    else
      let v = Program.read t in
      let next = Program.read (t + 1) in
      if Program.cas top ~expected:t ~value:next then Popped v else attempt ()
  in
  attempt ()

let unique_value ~n ~id ~op_index = (op_index * n) + id + 1

let make ?(push_ratio = 0.5) ~n () =
  if not (push_ratio >= 0. && push_ratio <= 1.) then
    invalid_arg "Treiber.make: push_ratio out of [0,1]";
  let memory = Memory.create () in
  let top = Memory.alloc memory ~size:1 in
  let program (ctx : Program.ctx) =
    let ops = ref 0 in
    let rec loop () =
      let m =
        if Stats.Rng.float ctx.rng 1.0 < push_ratio then begin
          push_op ~memory ~top (unique_value ~n ~id:ctx.id ~op_index:!ops);
          0
        end
        else begin
          ignore (pop_op ~top);
          1
        end
      in
      incr ops;
      Program.complete_method m;
      loop ()
    in
    loop ()
  in
  {
    spec = { name = "treiber-stack"; memory; program };
    top;
    push_log = None;
    pop_log = None;
    ops_per_process = 0;
    n;
  }

let make_logged ?(push_ratio = 0.5) ~n ~ops_per_process () =
  if ops_per_process <= 0 then invalid_arg "Treiber.make_logged: ops must be positive";
  let memory = Memory.create () in
  let top = Memory.alloc memory ~size:1 in
  (* Logs store 0 = unused, 1 = empty pop, v+2 = value v. *)
  let push_log = Memory.alloc memory ~size:(n * ops_per_process) in
  let pop_log = Memory.alloc memory ~size:(n * ops_per_process) in
  let program (ctx : Program.ctx) =
    for k = 0 to ops_per_process - 1 do
      if Stats.Rng.float ctx.rng 1.0 < push_ratio then begin
        let v = unique_value ~n ~id:ctx.id ~op_index:k in
        push_op ~memory ~top v;
        Program.write (push_log + (ctx.id * ops_per_process) + k) (v + 2)
      end
      else begin
        let r = pop_op ~top in
        let cell = match r with Empty -> 1 | Popped v -> v + 2 in
        Program.write (pop_log + (ctx.id * ops_per_process) + k) cell
      end;
      Program.complete ()
    done
  in
  {
    spec = { name = "treiber-stack-logged"; memory; program };
    top;
    push_log = Some push_log;
    pop_log = Some pop_log;
    ops_per_process;
    n;
  }

let drain t mem =
  let rec walk node acc =
    if node = 0 then List.rev acc
    else walk (Memory.get mem (node + 1)) (Memory.get mem node :: acc)
  in
  walk (Memory.get mem t.top) []

let read_log t mem base i =
  let out = ref [] in
  for k = t.ops_per_process - 1 downto 0 do
    let cell = Memory.get mem (base + (i * t.ops_per_process) + k) in
    if cell <> 0 then out := cell :: !out
  done;
  !out

let pushes t mem i =
  match t.push_log with
  | None -> invalid_arg "Treiber.pushes: not a logged stack"
  | Some base -> List.map (fun c -> c - 2) (read_log t mem base i)

let pops t mem i =
  match t.pop_log with
  | None -> invalid_arg "Treiber.pops: not a logged stack"
  | Some base ->
      List.map (fun c -> if c = 1 then Empty else Popped (c - 2)) (read_log t mem base i)
