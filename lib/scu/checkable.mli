(** Structures packaged for the `repro check` engine.

    Each entry bundles a bounded, deterministic workload over one of
    the runtime structures with everything the schedule explorer and
    fuzzer need to judge a run: a recorded operation history (in the
    {!Linearize.Checker} event format, doubled-clock timestamps), the
    structure's sequential specification as a check closure, and a
    structural invariant for the executor's [invariant] hook.

    The list includes deliberately broken variants ([buggy = true])
    whose scan-validate CAS is replaced by a blind write — the
    canonical lost-update bugs the checker is expected to catch:
    duplicate counter values, lost pushes / double pops, double
    dequeues.

    The non-trivial stock entries are the elimination stack (a push
    crashed while parked in an exchange slot is settled on recovery by
    a CAS-withdraw-or-complete protocol; a pop is marked linearized at
    its grab CAS) and the wait-free helping counter (recovery-safe by
    idempotence: sequence numbers derive from the plan cursor, so a
    re-run re-announces the same request). *)

type op = Add of int | Take | Incr
(** [Add]/[Take] are push/pop (stack) or enqueue/dequeue (queue);
    [Incr] is fetch-and-increment.  Added values are unique per
    (process, operation index). *)

type res = Done | Took of int | Took_empty | Got of int

val op_to_string : op -> string
val res_to_string : res -> string
val event_to_string : (op, res) Linearize.Checker.event -> string

val counter_spec : (op, res, int) Linearize.Checker.spec
val stack_spec : (op, res, int list) Linearize.Checker.spec

val queue_spec : (op, res, int list) Linearize.Checker.spec
(** Sequential specifications, exposed so tests can cross-validate the
    check closures below against {!Linearize.Checker.check_brute}. *)

val wf_counter_spec : (op, res, int) Linearize.Checker.spec
(** The helping counter's spec: [Incr] returns [Done] (a helper may
    apply a batch of requests in one CAS, so per-request return values
    are undefined by the construction).  Histories of [Done]s are
    trivially linearizable — the wait-free counter's checking power is
    its invariant (published blocks satisfy value = Σ applied, never
    regressing), not this spec. *)

type instance = {
  spec : Sim.Executor.spec;
      (** Run this.  Build a fresh instance per run — the history
          recorder lives in the closure. *)
  events : unit -> (op, res) Linearize.Checker.event list;
      (** Operations completed so far, in completion order. *)
  in_flight : unit -> (int * op * int) list;
      (** [(proc, op, invoked)] for each operation a suspended process
          is currently inside of — what a run stopped at a frontier or
          step budget leaves unfinished. *)
  marked : int -> res option;
      (** [marked proc] is [Some r] when [proc]'s in-flight operation
          has already *linearized* with result [r] even though it has
          not returned (the MS-queue enqueue between its link CAS and
          tail swing).  A mark makes the in-flight operation's effect
          certain: the history builder may include it, and on
          crash–recovery the re-entry preamble completes it instead of
          re-running it. *)
  restarts : unit -> int array;
      (** Crash–recovery restarts each process's body has observed
          (all zeros unless the run used a fault plan with [Restart]
          events). *)
  check : (op, res) Linearize.Checker.event list -> bool;
      (** Linearizability against this structure's sequential spec. *)
  shadow :
    (op, res) Linearize.Checker.event list ->
    (op, res) Linearize.Checker.event list option;
      (** Shadow-state replay of the same history against the same
          sequential spec via {!Linearize.Shadow.replay} — an
          independent implementation of the linearizability judgement,
          used as the scenario runner's standard gate.  [None] means
          consistent; [Some window] is the diverging quiescent
          window. *)
  invariant : Sim.Memory.t -> time:int -> unit;
      (** Structural invariant for the executor's [invariant] hook
          (counter monotonicity, node-chain boundedness); raises on
          corruption. *)
}

type t = {
  name : string;
  buggy : bool;
  make : n:int -> ops:int -> ?mix_seed:int -> unit -> instance;
      (** Bounded workload: every process performs [ops] operations
          and terminates.  Deterministic for a given [mix_seed] (or
          its role-based default: even processes add, odd take), so
          the schedule is the only nondeterminism. *)
}

val all : t list

val stock : t list
(** The non-buggy structures. *)

val mutants : t list
(** Drill variants kept out of {!all} so `--structures all` sweeps are
    unchanged.  Currently [counter-misreport]: an atomic counter whose
    increments are real (the structural invariant holds) but whose
    reported pre-values are off by one — invisible to the invariant
    hook, caught by the spec-replay gates. *)

val find : string -> t
(** Searches {!all} and {!mutants}; raises [Invalid_argument] with the
    known names on a miss. *)
