(** Treiber's lock-free stack (Treiber 1986, paper ref [21]) in the
    simulator — a canonical member of SCU(q, s): push is a 1-step
    preamble (initializing the node) plus a scan-validate loop on the
    top-of-stack pointer; pop scans the top node and CASes it out.

    The simulator never recycles addresses, so the classic ABA hazard
    cannot fire; node addresses double as unique tags. *)

type t = {
  spec : Sim.Executor.spec;
  top : int;  (** Address of the top-of-stack pointer register. *)
  push_log : int option;
  pop_log : int option;
  ops_per_process : int;
  n : int;
}

val push_method : int
(** Method id used for pushes in [Sim.Metrics] per-method statistics. *)

val pop_method : int

val make : ?push_ratio:float -> n:int -> unit -> t
(** Endless workload: each operation is a push with probability
    [push_ratio] (default 0.5), else a pop.  Pushed values are unique
    per (process, operation).  Completions are tagged with
    [push_method] / [pop_method]. *)

val make_logged : ?push_ratio:float -> n:int -> ops_per_process:int -> unit -> t
(** Bounded workload that also logs, per process, every pushed value
    and every pop result (including empty pops), for the invariant
    checks below; processes terminate after [ops_per_process]
    operations. *)

val drain : t -> Sim.Memory.t -> int list
(** Contents of the stack, top first, read directly (not simulated
    steps). *)

val pushes : t -> Sim.Memory.t -> int -> int list
(** Values pushed by process [i] (logged variant only). *)

type pop_result = Empty | Popped of int

val pops : t -> Sim.Memory.t -> int -> pop_result list
(** Pop results of process [i] in order (logged variant only). *)

val push_op : memory:Sim.Memory.t -> top:int -> int -> unit
(** One push (alloc, init, scan-validate CAS loop), exposed for the
    conformance-check harness ({!Checkable}).  Must run inside a
    simulated process (performs {!Sim.Program} effects). *)

val pop_op : top:int -> pop_result
(** One pop, same caveats as {!push_op}. *)
