module Memory = Sim.Memory
module Program = Sim.Program

type t = {
  spec : Sim.Executor.spec;
  pointer : int;
  announce : int;
  n : int;
}

(* State block layout: [value; applied_0; ...; applied_{n-1}]. *)

let incr_op ~memory ~pointer ~announce ~n ~id ~seq =
  Program.write (announce + id) seq;
  let rec attempt () =
    let p = Program.read pointer in
    let mine = Program.read (p + 1 + id) in
    if mine >= seq then () (* someone helped us *)
    else begin
      let value = Program.read p in
      let applied = Array.init n (fun k -> Program.read (p + 1 + k)) in
      let announced = Array.init n (fun k -> Program.read (announce + k)) in
      (* We already know our own request even if the announce read
         raced with the write. *)
      announced.(id) <- max announced.(id) seq;
      let extra = ref 0 in
      let applied' =
        Array.init n (fun k ->
            if announced.(k) > applied.(k) then begin
              extra := !extra + (announced.(k) - applied.(k));
              announced.(k)
            end
            else applied.(k))
      in
      let fresh = Memory.alloc memory ~size:(n + 1) in
      Program.write fresh (value + !extra);
      for k = 0 to n - 1 do
        Program.write (fresh + 1 + k) applied'.(k)
      done;
      if not (Program.cas pointer ~expected:p ~value:fresh) then attempt ()
    end
  in
  attempt ()

let make ~n =
  let memory = Memory.create () in
  let pointer = Memory.alloc memory ~size:1 in
  let announce = Memory.alloc memory ~size:n in
  let first = Memory.alloc memory ~size:(n + 1) in
  Memory.set memory pointer first;
  let program (ctx : Program.ctx) =
    let seq = ref 0 in
    let rec operation () =
      incr seq;
      incr_op ~memory ~pointer ~announce ~n ~id:ctx.id ~seq:!seq;
      Program.complete ();
      operation ()
    in
    operation ()
  in
  { spec = { name = "waitfree-counter"; memory; program }; pointer; announce; n }

let value t mem = Memory.get mem (Memory.get mem t.pointer)

let applied t mem =
  let p = Memory.get mem t.pointer in
  Array.init t.n (fun k -> Memory.get mem (p + 1 + k))
