(** The class SCU(q, s) — paper §5, Algorithm 2.

    An operation is a *preamble* of [q] steps (auxiliary work: local
    updates, memory allocation, writes to the auxiliary registers
    R_1 … R_{s−1}, but never to the decision register R) followed by a
    *scan-and-validate* loop: read R and the s−1 auxiliary registers,
    compute a proposed new state, and try to commit it with a CAS on
    R.  Success completes the operation; failure restarts the loop.

    Proposals are made unique by tagging them with a per-process
    operation counter (the paper: "two processes never propose the
    same value for the register R … easily enforced by adding a
    timestamp to each request"), so the ABA problem cannot produce
    spurious CAS successes. *)

type t = {
  spec : Sim.Executor.spec;
  decision_register : int;  (** Address of R. *)
  aux_registers : int array;  (** Addresses of R_1 … R_{s−1}. *)
  q : int;
  s : int;
  n : int;
}

val make : n:int -> q:int -> s:int -> t
(** Build an SCU(q, s) instance for [n] processes.  Requires [q >= 0]
    and [s >= 1] (the scan always reads R itself at least). *)

val proposal : n:int -> id:int -> op_index:int -> int
(** The unique value process [id] proposes for its [op_index]-th
    operation (exposed for tests: all proposals are distinct and
    positive). *)
