module Memory = Sim.Memory
module Program = Sim.Program

type t = { spec : Sim.Executor.spec; register : int; n : int }

let make ~n =
  let memory = Memory.create () in
  let r = Memory.alloc memory ~size:1 in
  let program (_ : Program.ctx) =
    (* v persists across operations: after a success the process knows
       the register holds v+1; after a failure it holds the returned
       (current) value. *)
    let v = ref 0 in
    let rec operation () =
      let old = !v in
      let got = Program.cas_get r ~expected:old ~value:(old + 1) in
      if got = old then begin
        v := old + 1;
        Program.complete ();
        operation ()
      end
      else begin
        v := got;
        operation ()
      end
    in
    operation ()
  in
  { spec = { name = "aug-cas-counter"; memory; program }; register = r; n }

let value t mem = Memory.get mem t.register
