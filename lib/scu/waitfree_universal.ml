module Memory = Sim.Memory
module Program = Sim.Program

type t = {
  spec : Sim.Executor.spec;
  pointer : int;
  announce : int;
  state_size : int;
  n : int;
}

let make ~n ~init ~apply =
  let k = Array.length init in
  if k < 1 then invalid_arg "Waitfree_universal.make: empty initial state";
  let memory = Memory.create () in
  let pointer = Memory.alloc memory ~size:1 in
  let announce = Memory.alloc memory ~size:n in
  (* Block layout: [state; applied]. *)
  let first = Memory.alloc memory ~size:(k + n) in
  Array.iteri (fun j v -> Memory.set memory (first + j) v) init;
  Memory.set memory pointer first;
  let program (ctx : Program.ctx) =
    let seq = ref 0 in
    let rec operation () =
      incr seq;
      Program.write (announce + ctx.id) !seq;
      let rec attempt () =
        let p = Program.read pointer in
        let mine = Program.read (p + k + ctx.id) in
        if mine >= !seq then () (* helped *)
        else begin
          let state = ref (Array.init k (fun j -> Program.read (p + j))) in
          let applied = Array.init n (fun j -> Program.read (p + k + j)) in
          let announced = Array.init n (fun j -> Program.read (announce + j)) in
          announced.(ctx.id) <- max announced.(ctx.id) !seq;
          let applied' = Array.copy applied in
          for j = 0 to n - 1 do
            for s = applied.(j) to announced.(j) - 1 do
              let next = apply ~proc:j ~op_index:s !state in
              if Array.length next <> k then
                invalid_arg "Waitfree_universal: apply changed the state size";
              state := next;
              applied'.(j) <- s + 1
            done
          done;
          let fresh = Memory.alloc memory ~size:(k + n) in
          for j = 0 to k - 1 do
            Program.write (fresh + j) !state.(j)
          done;
          for j = 0 to n - 1 do
            Program.write (fresh + k + j) applied'.(j)
          done;
          if not (Program.cas pointer ~expected:p ~value:fresh) then attempt ()
        end
      in
      attempt ();
      Program.complete ();
      operation ()
    in
    operation ()
  in
  {
    spec = { name = Printf.sprintf "waitfree-universal(k=%d)" k; memory; program };
    pointer;
    announce;
    state_size = k;
    n;
  }

let state t mem =
  let p = Memory.get mem t.pointer in
  Array.init t.state_size (fun j -> Memory.get mem (p + j))

let applied t mem =
  let p = Memory.get mem t.pointer in
  Array.init t.n (fun j -> Memory.get mem (p + t.state_size + j))
