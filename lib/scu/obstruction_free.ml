module Memory = Sim.Memory
module Program = Sim.Program

type t = { spec : Sim.Executor.spec; register : int; flags : int; n : int }

let make ~n =
  let memory = Memory.create () in
  let register = Memory.alloc memory ~size:1 in
  let flags = Memory.alloc memory ~size:n in
  let program (ctx : Program.ctx) =
    let rec operation () =
      let rec attempt () =
        Program.write (flags + ctx.id) 1;
        let interference = ref false in
        for j = 0 to n - 1 do
          if j <> ctx.id && Program.read (flags + j) = 1 then interference := true
        done;
        if !interference then begin
          Program.write (flags + ctx.id) 0;
          attempt ()
        end
        else begin
          let v = Program.read register in
          Program.write register (v + 1);
          Program.write (flags + ctx.id) 0
        end
      in
      attempt ();
      Program.complete ();
      operation ()
    in
    operation ()
  in
  { spec = { name = "obstruction-free-counter"; memory; program }; register; flags; n }

let value t mem = Memory.get mem t.register
