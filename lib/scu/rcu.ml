module Memory = Sim.Memory
module Program = Sim.Program

type t = {
  spec : Sim.Executor.spec;
  pointer : int;
  block_size : int;
  readers : int;
  torn_reads : int;
  n : int;
}

let read_method = 0
let update_method = 1

let make ~n ~readers ~block_size =
  if readers < 0 || readers >= n then invalid_arg "Rcu.make: need 0 <= readers < n";
  if block_size < 1 then invalid_arg "Rcu.make: block_size must be >= 1";
  let memory = Memory.create () in
  let pointer = Memory.alloc memory ~size:1 in
  let torn_reads = Memory.alloc memory ~size:1 in
  (* Initial generation-0 block. *)
  let first = Memory.alloc memory ~size:block_size in
  Memory.set memory pointer first;
  let reader_loop () =
    let rec loop () =
      let p = Program.read pointer in
      let g0 = Program.read p in
      let consistent = ref true in
      for k = 1 to block_size - 1 do
        if Program.read (p + k) <> g0 then consistent := false
      done;
      if not !consistent then Program.write torn_reads 1;
      Program.complete_method 0;
      loop ()
    in
    loop ()
  in
  let updater_loop () =
    let rec loop () =
      let rec attempt () =
        let p = Program.read pointer in
        (* Copy phase: read the whole block, then build the successor
           block with generation + 1. *)
        let g = Program.read p in
        for k = 1 to block_size - 1 do
          ignore (Program.read (p + k))
        done;
        let fresh = Memory.alloc memory ~size:block_size in
        for k = 0 to block_size - 1 do
          Program.write (fresh + k) (g + 1)
        done;
        if not (Program.cas pointer ~expected:p ~value:fresh) then attempt ()
      in
      attempt ();
      Program.complete_method 1;
      loop ()
    in
    loop ()
  in
  let program (ctx : Program.ctx) =
    if ctx.id < readers then reader_loop () else updater_loop ()
  in
  {
    spec = { name = Printf.sprintf "rcu(m=%d,r=%d)" block_size readers; memory; program };
    pointer;
    block_size;
    readers;
    torn_reads;
    n;
  }

let generation t mem = Memory.get mem (Memory.get mem t.pointer)
let torn t mem = Memory.get mem t.torn_reads <> 0
