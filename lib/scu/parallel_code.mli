(** "Parallel code" — paper §6.2, Algorithm 4: a method call that
    completes after the process executes [q] steps regardless of what
    other processes do.  Lemma 11: under the uniform scheduler the
    system latency is exactly [q] and the individual latency exactly
    [n·q]. *)

type t = { spec : Sim.Executor.spec; q : int; n : int }

val make : n:int -> q:int -> t
(** Requires [q >= 1]. *)
