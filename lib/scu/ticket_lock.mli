(** A blocking (lock-based) counter, for the paper's §2.2 taxonomy.

    The paper classifies progress along two axes: blocking vs
    non-blocking, and minimal vs maximal.  Everything else in this
    library is non-blocking; this module is the blocking comparison
    point — a fetch-and-increment protected by a ticket lock (Lamport/
    Mellor-Crummey-style FIFO spin lock):

      acquire: my_ticket := FAA(next_ticket); spin until
               now_serving = my_ticket
      …critical section: read counter, write counter+1…
      release: now_serving := my_ticket + 1

    Under crash-free schedulers this is *starvation-free* (FIFO hand-
    off: maximal progress in every crash-free execution — Lamport's
    bakery-style guarantee, paper ref [15]).  It is NOT lock-free: if
    the lock holder crashes, no process ever completes again.  The
    `abl-lock` experiment shows exactly that, against the CAS counter
    which shrugs crashes off. *)

type t = {
  spec : Sim.Executor.spec;
  next_ticket : int;
  now_serving : int;
  counter : int;
  n : int;
}

val make : n:int -> t

val value : t -> Sim.Memory.t -> int
(** Current counter value. *)

val holder_waiting : t -> Sim.Memory.t -> int
(** Tickets handed out minus tickets served: > 1 means processes are
    queued behind the lock. *)
