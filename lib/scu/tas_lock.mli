(** A test-and-set spin-lock counter — deadlock-free but NOT
    starvation-free, completing the blocking half of §2.2.

    Unlike the FIFO {!Ticket_lock}, the TAS lock is unfair: whoever's
    CAS lands first wins, so an adversary that only schedules a victim
    while someone else holds the lock starves it even though the
    victim takes infinitely many steps (deadlock-freedom guarantees
    only that *someone* completes).  The paper's abstract claims the
    stochastic cure for this too: "deadlock-free algorithms behave as
    if they were starvation-free" — the `abl-tas` experiment shows
    the starvation under a lock-aware adversary and the fair shares
    under the uniform scheduler. *)

type t = {
  spec : Sim.Executor.spec;
  lock : int;  (** 0 = free, holder id + 1 otherwise. *)
  counter : int;
  n : int;
}

val make : n:int -> t

val value : t -> Sim.Memory.t -> int

val holder : t -> Sim.Memory.t -> int option
(** Current lock holder, if any (for lock-aware adversaries and
    tests). *)
