(** Request policies for the SCU service: per-request deadlines,
    bounded retry with deterministic seeded backoff, and optional
    hedged re-dispatch.

    All times are simulated steps.  A policy only changes how the
    host-level load generator reacts to a request that has not
    completed; it never touches the simulated structures, so the
    default (no deadline, no retries, no hedge) leaves the engine's
    fault-free step sequence byte-identical to a policy-free run.

    Semantics, per request:
    - every dispatch attempt carries a deadline of [deadline] steps
      from the attempt's arrival in the ready queue.  When it expires
      the attempt is abandoned: if the request still has retry budget
      a fresh attempt is scheduled after a {!backoff} delay, otherwise
      the request resolves as [Timed_out];
    - a crashed worker's in-flight request is *redelivered* (same
      attempt, no budget consumed) when the worker restarts, or
      recovered by the deadline scan if it never does;
    - with [hedge_after = Some h], a request in flight for [h] steps
      without completing gets one duplicate dispatch; the first
      finisher wins (the loser's completion is discarded, so the
      operation may execute twice — at-least-once semantics, exactly
      like a production hedge);
    - a request still unresolved when the run stops is [Dropped].

    Determinism: the backoff jitter for (request, attempt) is a pure
    function of the config seed, so retry schedules are independent of
    the order in which the simulation discovers the expiries. *)

type t = {
  deadline : int option;  (** Steps from attempt arrival; [None] = never. *)
  max_retries : int;  (** Extra dispatch attempts after the first. *)
  backoff_base : int;  (** Base delay (steps) for retry backoff. *)
  hedge_after : int option;
      (** Steps in flight before the single hedged duplicate. *)
}

val default : t
(** No deadline, no retries, backoff base 16, no hedge — the inert
    policy; {!is_none} holds. *)

val is_none : t -> bool
(** True iff the policy can never reschedule anything (no deadline and
    no hedge). *)

val validate : t -> (unit, string) result

val backoff : t -> seed:int -> rid:int -> attempt:int -> int
(** Delay before retry [attempt] (1-based) of request [rid]:
    exponential [backoff_base * 2^(attempt-1)] plus a deterministic
    jitter in [0, backoff_base) drawn from a stream keyed by
    [(seed, rid, attempt)]. *)

val to_string : t -> string
(** ["deadline=500 retries=2 backoff=16 hedge=none"] — the manifest
    and render form. *)

(** Resolution taxonomy, surfaced per run in {!counts}. *)
type outcome =
  | Ok  (** Completed on the first dispatch attempt. *)
  | Retried of int  (** Completed after this many retries. *)
  | Timed_out  (** Deadline expired with no retry budget left. *)
  | Dropped  (** Still unresolved when the run stopped. *)

type counts = {
  ok : int;
  retried : int;  (** Requests that completed after >= 1 retry. *)
  retries : int;  (** Total retry dispatches. *)
  redelivered : int;  (** Crash-recovery redeliveries (no budget). *)
  hedges : int;  (** Hedged duplicate dispatches. *)
  timed_out : int;
  dropped : int;
}

val zero_counts : counts
val add_counts : counts -> counts -> counts

val completed : counts -> int
(** [ok + retried] — successfully resolved requests. *)

val failed : counts -> int
(** [timed_out + dropped]. *)

val total : counts -> int
(** Every offered request resolves to exactly one outcome;
    [completed + failed] is the offered count. *)

val counts_to_string : counts -> string
