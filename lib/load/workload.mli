(** Client workload models for the load generator: arrival processes,
    loop modes and key popularity, all seeded and deterministic *per
    request* — every random draw a request needs comes from a fresh
    RNG derived from [(seed, client, k)], so the draw is independent
    of the order in which the simulation happens to reach it.  Two
    runs with the same configuration produce the same request stream
    no matter how service interleaves with arrivals.

    Time is the simulator's discrete step clock: rates are requests
    per step, means are steps. *)

type arrival =
  | Poisson of { rate : float }
      (** Memoryless arrivals: exponential interarrival gaps with mean
          [1/rate] steps. *)
  | Bursty of { rate : float; burst : int; idle : float }
      (** On/off arrivals: bursts of [burst] back-to-back requests at
          [rate], separated by idle gaps with mean [idle] steps. *)

type mode =
  | Open of arrival
      (** Open loop: a client's k-th request arrives a sampled gap
          after its (k-1)-th *arrival*, regardless of service — under
          overload the queue builds without bound. *)
  | Closed of { think : float }
      (** Closed loop: the next request arrives a think-time gap
          (exponential, mean [think] steps; 0 means immediately) after
          the previous one *completes* — at most one outstanding
          request per client. *)

val validate : mode -> (unit, string) result
(** Reject non-positive rates, bursts or negative means with a
    human-readable reason (the CLI's argument check). *)

val mode_label : mode -> string
(** Stable one-word label for manifests: ["open"] or ["closed"]. *)

val arrival_label : mode -> string
(** ["poisson"], ["bursty"] or ["think"] (closed loop). *)

val mix : int -> int -> int
(** Deterministic 62-bit hash combine, used to derive per-client,
    per-shard and per-window seeds from the base seed. *)

val request_rng : seed:int -> client:int -> k:int -> Stats.Rng.t
(** The RNG owning every draw request [k] of [client] needs.  Draw
    order is fixed: gap first, then key, then the operation coin. *)

val gap : mode -> Stats.Rng.t -> k:int -> int
(** Sampled arrival gap (steps, >= 0) before request [k]: the
    interarrival gap for open loop, the think gap for closed loop.
    For [k = 0] the gap is taken from time 0 (open) or used as a
    staggered session start (closed). *)

val zipf_cdf : alpha:float -> n:int -> float array
(** Cumulative Zipf([alpha]) distribution over [n] keys — weight of
    key [i] (0-based) proportional to [(i+1)^-alpha]; [alpha = 0] is
    uniform.  The last entry is exactly [1.0]. *)

val pick : float array -> float -> int
(** [pick cdf u] for [u] in [0, 1): the least index with
    [cdf.(i) > u] (binary search). *)
