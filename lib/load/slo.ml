module Hdr = Stats.Hdr

type params = { q : int; s : int }

let params_of_kind = function
  | Engine.Counter -> Some { q = 0; s = 1 }
  | Engine.Treiber -> Some { q = 1; s = 1 }
  | Engine.Msqueue -> Some { q = 1; s = 2 }
  | Engine.Elimination -> Some { q = 1; s = 1 }
  | Engine.Waitfree -> None

type point = {
  n : int;
  requests : int;
  steps : int;
  mean : float;
  p50 : int;
  p99 : int;
  p999 : int;
}

type t = {
  kind : Engine.kind;
  points : point list;
  gates : Check.Conform.gate list;
  passed : bool;
}

(* Gate tolerances, tuned against measured sweeps (seeds 0-4 agree to
   under 5%).  The mean is gated two-sided: the in-repo structures
   carry constant per-op step costs above their idealized (q, s)
   classification, so the growth *ratio* is checked, not the absolute
   law, and the band covers the residual constant-factor mismatch
   (Treiber sits at rel err ~0.30).  Tail quantiles are gated
   one-sided — the O-bound direction: helping-based structures (the
   MS queue's tail-swing help most visibly) inflate their worst
   percentiles up to ~1.9x faster than the mean law as n grows, and
   "practically wait-free" asks that this inflation stay a bounded
   constant factor, not that tails collapse onto the mean. *)
let tol_mean = 0.35
let headroom_p99 = 2.0
let headroom_p999 = 2.2

let sweep_point ~kind ~seed ~requests_per_point n =
  let clients = 4 * n in
  let ops_per_client = max 1 (requests_per_point / clients) in
  let cfg =
    {
      Engine.default with
      kinds = [ kind ];
      objects = 1;
      clients;
      ops_per_client;
      workers = n;
      shards = 1;
      mode = Workload.Closed { think = 0. };
      alpha = 0.;
      seed = Workload.mix seed n;
    }
  in
  let r = Engine.run cfg in
  {
    n;
    requests = r.requests;
    steps = r.steps_total;
    mean = Hdr.mean r.service;
    p50 = Hdr.p50 r.service;
    p99 = Hdr.p99 r.service;
    p999 = Hdr.p999 r.service;
  }

let run ?(ns = [ 2; 4; 8 ]) ?(requests_per_point = 40_000) ~kind ~seed () =
  let { q; s } =
    match params_of_kind kind with
    | Some p -> p
    | None ->
        invalid_arg
          (Printf.sprintf
             "Slo.run: %s has no SCU(q, s) classification (its helping scan \
              is Theta(n) per attempt); classified structures: %s"
             (Engine.kind_name kind)
             (String.concat ", "
                (List.filter_map
                   (fun k ->
                     Option.map
                       (fun (_ : params) -> Engine.kind_name k)
                       (params_of_kind k))
                   Engine.all_kinds)))
  in
  if List.length ns < 2 then invalid_arg "Slo.run: need at least two n values";
  if List.exists (fun n -> n < 1) ns then
    invalid_arg "Slo.run: n values must be positive";
  if not (List.sort_uniq compare ns = ns) then
    invalid_arg "Slo.run: n values must be ascending and distinct";
  let points = List.map (sweep_point ~kind ~seed ~requests_per_point) ns in
  let alpha = Chains.Predict.fitted_alpha ~ns in
  let predict n =
    Chains.Predict.scu_individual_latency ~q ~s ~alpha (float_of_int n)
  in
  let base = List.hd points in
  let name = Engine.kind_name kind in
  let gates =
    List.concat_map
      (fun p ->
        let want = predict p.n /. predict base.n in
        let gate_name what = Printf.sprintf "slo-%s-%s-n%d" name what p.n in
        let tail what got0 base0 headroom =
          let got = got0 /. base0 in
          let limit = headroom *. want in
          Check.Conform.gate (gate_name what)
            (got <= limit)
            (Printf.sprintf
               "grew %.4gx vs predicted %.4gx (one-sided limit %.4gx = %.2g \
                headroom)"
               got want limit headroom)
        in
        [
          Check.Conform.rel_gate (gate_name "mean")
            ~got:(p.mean /. base.mean) ~want ~tol:tol_mean;
          tail "p99" (float_of_int p.p99) (float_of_int base.p99) headroom_p99;
          tail "p999" (float_of_int p.p999) (float_of_int base.p999)
            headroom_p999;
        ])
      (List.tl points)
  in
  {
    kind;
    points;
    gates;
    passed = List.for_all (fun (g : Check.Conform.gate) -> g.passed) gates;
  }
