(** Bridge from {!Engine} results to the telemetry manifest, plus the
    deterministic stdout rendering the CLI prints.  Both are pure
    functions of the result, so `repro load` output and manifests are
    byte-identical across repeats and pool sizes. *)

val quantiles : Stats.Hdr.t -> Telemetry.Load_report.quantiles
(** All zeros (mean 0.) for an empty histogram. *)

val of_result :
  ?window:int ->
  ?slo:Check.Conform.gate list ->
  Engine.result ->
  Telemetry.Load_report.t

val render : Telemetry.Load_report.t -> string
(** Multi-line human summary (throughput, tail quantiles,
    per-structure breakdown, SLO gate verdicts when present). *)
