(** Bridge from {!Engine} results to the telemetry manifest, plus the
    deterministic stdout rendering the CLI prints.  Both are pure
    functions of the result, so `repro load` output and manifests are
    byte-identical across repeats and pool sizes — and a fault-free,
    policy-free result renders and serializes exactly as it did before
    the fault layer existed. *)

val quantiles : Stats.Hdr.t -> Telemetry.Load_report.quantiles
(** All zeros (mean 0.) for an empty histogram. *)

val default_slo_target : float
(** [0.999] — the default availability objective. *)

val error_budget :
  ?target:float -> Engine.result -> Telemetry.Load_report.budget_row
(** Availability = completed/offered, burn = (1 - availability) /
    (1 - target); verdict [ok] when the budget burn is within 1x,
    [degraded] within 10x, [breached] beyond. *)

val of_result :
  ?window:int ->
  ?slo:Check.Conform.gate list ->
  ?degrade:Check.Conform.gate list ->
  ?error_budget:Telemetry.Load_report.budget_row ->
  Engine.result ->
  Telemetry.Load_report.t
(** Fault/policy extension fields are filled (upgrading the manifest
    to schema 2) exactly when {!Engine.is_robust} holds for the
    result's config. *)

val stopped_shard_ids : Telemetry.Load_report.t -> int list
(** Shards whose rows are marked stopped-early, in shard order. *)

val render : Telemetry.Load_report.t -> string
(** Multi-line human summary (throughput, tail quantiles,
    per-structure breakdown, outcome taxonomy and injected-fault
    counts when present, SLO / degradation gate verdicts when
    present).  A stopped-early run's header names the offending
    shards. *)
