(* Degraded-mode SLO gates: matched fault-free vs faulted pairs per
   fault tier, with per-tier budgets for how much throughput, tail
   latency and completeness the tier may cost, and a crash-only
   cross-check against the Corollary 2 chain prediction. *)

module Fault_plan = Sched.Fault_plan
module Conform = Check.Conform

type budgets = {
  max_throughput_loss : float;
  max_p99_inflation : float;
  max_p999_inflation : float;
  max_drop_rate : float;
}

(* Budgets sized from measured seed-0 runs of the standard config
   (see EXPERIMENTS.md, "Degradation by tier"): each bound sits ~2x
   above the observed cost so the gate catches regressions in the
   fault path, not seed noise.  [quick] is fault-free and must be
   near-lossless. *)
let budgets_for_tier = function
  | "quick" ->
      Some
        {
          max_throughput_loss = 0.01;
          max_p99_inflation = 1.05;
          max_p999_inflation = 1.05;
          max_drop_rate = 0.;
        }
  | "standard" ->
      Some
        {
          max_throughput_loss = 0.35;
          max_p99_inflation = 3.0;
          max_p999_inflation = 3.5;
          max_drop_rate = 0.02;
        }
  | "century" ->
      Some
        {
          max_throughput_loss = 0.10;
          max_p99_inflation = 1.5;
          max_p999_inflation = 1.75;
          max_drop_rate = 0.001;
        }
  | "chaos" ->
      Some
        {
          max_throughput_loss = 0.60;
          max_p99_inflation = 5.0;
          max_p999_inflation = 6.0;
          max_drop_rate = 0.10;
        }
  | _ -> None

type t = {
  tier : string;
  baseline : Engine.result;
  faulted : Engine.result;
  gates : Conform.gate list;
  passed : bool;
}

let throughput (r : Engine.result) =
  if r.steps_max = 0 then 0.
  else 1000. *. float_of_int r.requests /. float_of_int r.steps_max

let gates_of_pair ~tier ~budgets (baseline : Engine.result)
    (faulted : Engine.result) =
  let b_tput = throughput baseline and f_tput = throughput faulted in
  let floor = (1. -. budgets.max_throughput_loss) *. b_tput in
  let p99_b = Stats.Hdr.p99 baseline.latency
  and p99_f = Stats.Hdr.p99 faulted.latency in
  let p999_b = Stats.Hdr.p999 baseline.latency
  and p999_f = Stats.Hdr.p999 faulted.latency in
  let drop_rate =
    if faulted.offered = 0 then 0.
    else float_of_int (Policy.failed faulted.outcomes) /. float_of_int faulted.offered
  in
  let g name passed fmt = Printf.ksprintf (Conform.gate name passed) fmt in
  [
    g
      (tier ^ "-throughput-floor")
      (f_tput >= floor)
      "faulted %.2f req/kstep vs floor %.2f (baseline %.2f, loss budget %g)"
      f_tput floor b_tput budgets.max_throughput_loss;
    g
      (tier ^ "-p99-inflation")
      (float_of_int p99_f <= budgets.max_p99_inflation *. float_of_int (max 1 p99_b))
      "faulted p99=%d vs budget %.2fx baseline p99=%d" p99_f
      budgets.max_p99_inflation p99_b;
    g
      (tier ^ "-p999-inflation")
      (float_of_int p999_f
      <= budgets.max_p999_inflation *. float_of_int (max 1 p999_b))
      "faulted p999=%d vs budget %.2fx baseline p999=%d" p999_f
      budgets.max_p999_inflation p999_b;
    g
      (tier ^ "-drop-rate")
      (drop_rate <= budgets.max_drop_rate)
      "timed_out+dropped %d of %d offered (%.4f vs budget %g)"
      (Policy.failed faulted.outcomes)
      faulted.offered drop_rate budgets.max_drop_rate;
    g
      (tier ^ "-outcomes-partition")
      (Policy.total faulted.outcomes = faulted.offered)
      "outcome counts sum to %d, offered %d"
      (Policy.total faulted.outcomes)
      faulted.offered;
  ]

let run ?pool ~tier cfg =
  match (budgets_for_tier tier, Fault_plan.tier_rates tier) with
  | None, _ | _, None ->
      Error
        (Printf.sprintf "unknown fault tier %S (known: quick, standard, century, chaos)"
           tier)
  | Some budgets, Some rates ->
      let baseline =
        Engine.run ?pool
          { cfg with faults = Engine.no_faults; policy = Policy.default }
      in
      let faulted =
        Engine.run ?pool
          { cfg with faults = { cfg.faults with Fault_plan.rates } }
      in
      let gates = gates_of_pair ~tier ~budgets baseline faulted in
      Ok
        {
          tier;
          baseline;
          faulted;
          gates;
          passed = List.for_all (fun (g : Conform.gate) -> g.passed) gates;
        }

(* The Corollary 2 anchor.  Two halves:

   1. The *same crash plan* the engine injects (workers k..n-1 crashed
      at time 0), applied to the raw saturated SCU counter exactly as
      exp_chaos's cor2 rows do: the measured inter-completion gap must
      match the chain's W(k) for the surviving k.  This pins the fault
      machinery the service rides on to the Theorem 4 / Corollary 2
      degradation rows.

   2. Engine equivalence: a shard with k of [workers] alive from time
      0 is behaviourally a shard of k workers, so its mean service
      time must match a fault-free run configured with k workers.
      (The load engine is queue-bound, not contention-bound, so its
      degradation axis is capacity — this is the service-level reading
      of "crashes only shrink the active set".) *)
let cor2_chain_tol = 0.15
let equiv_service_tol = 0.15
let cor2_chain_steps = 300_000

let crash_check ?pool ~k cfg =
  if k < 1 || k >= cfg.Engine.workers then
    invalid_arg "Degrade.crash_check: need 0 < k < workers";
  let n = cfg.Engine.workers in
  let crash_base =
    Fault_plan.of_crash_events (List.init (n - k) (fun i -> (0, k + i)))
  in
  (* Half 1: raw SCU counter under the crash plan, as in exp_chaos. *)
  let chain_run =
    let c = Scu.Counter.make ~n in
    Sim.Executor.exec
      ~config:
        Sim.Executor.Config.(
          default |> with_seed (Workload.mix cfg.seed 0xC0B2)
          |> with_faults crash_base)
      ~scheduler:Sched.Scheduler.uniform ~n ~stop:(Steps cor2_chain_steps)
      c.spec
  in
  let chain_gate =
    Conform.rel_gate
      (Printf.sprintf "cor2-chain-W-k%d" k)
      ~got:(Sim.Metrics.mean_system_latency chain_run.metrics)
      ~want:(Chains.Scu_chain.System.system_latency ~n:k)
      ~tol:cor2_chain_tol
  in
  (* Half 2: the engine's matched pair. *)
  let crash = { Fault_plan.base = crash_base; rates = Fault_plan.zero_rates } in
  let faulted =
    Engine.run ?pool { cfg with faults = crash; policy = Policy.default }
  in
  let shrunk =
    Engine.run ?pool
      { cfg with workers = k; faults = Engine.no_faults; policy = Policy.default }
  in
  [
    chain_gate;
    Conform.rel_gate
      (Printf.sprintf "cor2-shard-equiv-k%d" k)
      ~got:(Stats.Hdr.mean faulted.service)
      ~want:(Stats.Hdr.mean shrunk.service)
      ~tol:equiv_service_tol;
    Conform.gate
      (Printf.sprintf "cor2-no-loss-k%d" k)
      (Policy.failed faulted.outcomes = 0)
      (Printf.sprintf "timed_out+dropped = %d (crash-at-0 loses nothing)"
         (Policy.failed faulted.outcomes));
  ]
