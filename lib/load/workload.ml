type arrival =
  | Poisson of { rate : float }
  | Bursty of { rate : float; burst : int; idle : float }

type mode = Open of arrival | Closed of { think : float }

let validate = function
  | Open (Poisson { rate }) ->
      if rate > 0. then Ok () else Error "arrival rate must be positive"
  | Open (Bursty { rate; burst; idle }) ->
      if not (rate > 0.) then Error "arrival rate must be positive"
      else if burst < 1 then Error "burst length must be at least 1"
      else if idle < 0. then Error "idle mean must be non-negative"
      else Ok ()
  | Closed { think } ->
      if think >= 0. then Ok () else Error "think time must be non-negative"

let mode_label = function Open _ -> "open" | Closed _ -> "closed"

let arrival_label = function
  | Open (Poisson _) -> "poisson"
  | Open (Bursty _) -> "bursty"
  | Closed _ -> "think"

(* Splitmix-style avalanche; the constants fit OCaml's 63-bit int and
   native multiplication wraps, which is all a seed derivation
   needs. *)
let mix a b =
  let h = ref (a lxor (b + 0x9E3779B97F4A7C1 + (a lsl 6) + (a lsr 2))) in
  h := (!h lxor (!h lsr 33)) * 0x2545F4914F6CDD1D;
  h := !h lxor (!h lsr 29);
  h := !h * 0x1D8E4E27C47D124F;
  (!h lxor (!h lsr 32)) land max_int

let request_rng ~seed ~client ~k =
  Stats.Rng.create ~seed:(mix (mix seed client) k)

(* Exponential gap rounded to whole steps; a zero mean is a zero gap
   (Rng.exponential rejects it). *)
let expo_steps rng ~mean =
  if mean <= 0. then 0
  else
    let x = Stats.Rng.exponential rng ~mean in
    int_of_float (Float.round (Float.min x 1e15))

let gap mode rng ~k =
  match mode with
  | Closed { think } -> expo_steps rng ~mean:think
  | Open (Poisson { rate }) -> expo_steps rng ~mean:(1. /. rate)
  | Open (Bursty { rate; burst; idle }) ->
      if k mod burst = 0 then expo_steps rng ~mean:idle
      else expo_steps rng ~mean:(1. /. rate)

let zipf_cdf ~alpha ~n =
  if n < 1 then invalid_arg "Workload.zipf_cdf: need at least one key";
  let w = Array.init n (fun i -> Float.pow (float_of_int (i + 1)) (-.alpha)) in
  let total = Array.fold_left ( +. ) 0. w in
  let acc = ref 0. in
  let cdf =
    Array.map
      (fun x ->
        acc := !acc +. x;
        !acc /. total)
      w
  in
  cdf.(n - 1) <- 1.0;
  cdf

let pick cdf u =
  let lo = ref 0 and hi = ref (Array.length cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo
