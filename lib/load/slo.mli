(** The tail-latency SLO gate: is the service *practically wait-free*?

    The paper's Theorem 4 bounds an individual operation's expected
    latency in an SCU(q, s) system by O(n(q + s sqrt n)) under any
    valid stochastic scheduler.  This module turns that into a
    conform-style gate: run the service saturated (closed loop, zero
    think time, one object, more clients than workers) across an
    n-sweep, measure the *service* latency distribution (dispatch to
    completion — the individual-latency quantity, with queueing
    excluded), and check that the mean, p99 and p999 all grow like
    [f(n) = n(q + alpha s sqrt n)] relative to the smallest n.

    The scale constant is eliminated by gating on ratios
    [measured(n) / measured(n0)] against [f(n) / f(n0)], so the gates
    transfer across structures with different per-op constant factors.
    The mean is gated two-sided (the distribution's location must
    actually follow the law); p99 and p999 are gated one-sided with a
    constant headroom factor — the O-bound direction — because
    helping-based structures inflate their worst percentiles a
    bounded constant factor faster than the mean law as contention
    grows. *)

type params = { q : int; s : int }

val params_of_kind : Engine.kind -> params option
(** The SCU(q, s) classification used for the prediction: counter
    (0, 1); Treiber and elimination stack (1, 1); MS queue (1, 2).
    [None] for the wait-free counter — its helping scan is Theta(n)
    per attempt, outside the SCU(q, s) shape, so it has no gate. *)

type point = {
  n : int;  (** Workers in this sweep cell. *)
  requests : int;
  steps : int;
  mean : float;  (** Mean service latency (steps). *)
  p50 : int;
  p99 : int;
  p999 : int;
}

type t = {
  kind : Engine.kind;
  points : point list;  (** In ascending n. *)
  gates : Check.Conform.gate list;
  passed : bool;
}

val run :
  ?ns:int list ->
  ?requests_per_point:int ->
  kind:Engine.kind ->
  seed:int ->
  unit ->
  t
(** Sweep [ns] (default [2; 4; 8], ascending, at least two entries)
    with about [requests_per_point] (default 40_000) requests each.
    Raises [Invalid_argument] for the wait-free counter (see
    {!params_of_kind}) or a malformed sweep. *)
