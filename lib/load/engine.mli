(** The SCU service and its load generator.

    A run simulates a server of [workers] processes per shard serving
    the checkable structure zoo behind a request queue, hammered by
    [clients] independent client sessions multiplexed over the shards.
    Everything lives inside the discrete-step simulator: a request's
    latency is measured in *simulated steps* (arrival to completion),
    so the numbers are scheduler-model quantities — directly
    comparable to the Markov-chain predictions — and every run is a
    pure function of its configuration.

    Sharding: client [c] belongs to shard [c mod shards]; each shard
    is one independent executor run over its own memory and structure
    instances, so shards can fan out over a {!Pool.t} of domains and
    the merged result is byte-identical to the sequential one. *)

type kind = Counter | Treiber | Msqueue | Elimination | Waitfree

val all_kinds : kind list

val kind_name : kind -> string
(** [counter], [treiber], [msqueue], [elimination-stack],
    [waitfree-counter] — the {!Scu.Checkable} names. *)

val kind_of_name : string -> (kind, string) result

type config = {
  kinds : kind list;  (** Structure zoo; clients round-robin over it. *)
  objects : int;  (** Instances per kind per shard (Zipf keyspace). *)
  clients : int;  (** Total client sessions across all shards. *)
  ops_per_client : int;  (** Requests per session. *)
  workers : int;  (** Server processes per shard. *)
  shards : int;
  mode : Workload.mode;
  alpha : float;  (** Zipf popularity exponent over the objects. *)
  seed : int;
  max_steps : int;  (** Per-shard safety net (sets [stopped_early]). *)
}

val default : config
(** counter only, 64 objects, 10_000 clients x 1 op, 8 workers x 8
    shards, closed loop with zero think time, alpha 1.1, seed 0. *)

val validate : config -> (unit, string) result

type shard_result = {
  shard : int;
  requests : int;  (** Requests completed by this shard. *)
  steps : int;  (** Simulated steps the shard ran. *)
  max_queue_depth : int;  (** High-water mark of the ready queue. *)
  stopped_early : bool;  (** Hit [max_steps] before finishing. *)
  latency : Stats.Hdr.t;  (** Arrival to completion, steps. *)
  service : Stats.Hdr.t;  (** Dispatch to completion, steps. *)
  queue_wait : Stats.Hdr.t;  (** Arrival to dispatch, steps. *)
  per_kind : (kind * Stats.Hdr.t) list;  (** Latency by structure. *)
}

type result = {
  config : config;
  shards : shard_result list;  (** In shard order. *)
  requests : int;
  steps_total : int;  (** Sum over shards (serial step budget). *)
  steps_max : int;  (** Slowest shard (parallel completion time). *)
  stopped_early : bool;
  latency : Stats.Hdr.t;
  service : Stats.Hdr.t;
  queue_wait : Stats.Hdr.t;
  per_kind : (kind * Stats.Hdr.t) list;
}

val run_shard : config -> shard:int -> shard_result
(** One shard's simulation — a pure function of [(config, shard)]. *)

val run : ?pool:Pool.t -> config -> result
(** All shards, fanned over [pool] when given (the result does not
    depend on the pool's size), merged in shard order. *)
