(** The SCU service and its load generator.

    A run simulates a server of [workers] processes per shard serving
    the checkable structure zoo behind a request queue, hammered by
    [clients] independent client sessions multiplexed over the shards.
    Everything lives inside the discrete-step simulator: a request's
    latency is measured in *simulated steps* (arrival to completion),
    so the numbers are scheduler-model quantities — directly
    comparable to the Markov-chain predictions — and every run is a
    pure function of its configuration.

    Sharding: client [c] belongs to shard [c mod shards]; each shard
    is one independent executor run over its own memory and structure
    instances, so shards can fan out over a {!Pool.t} of domains and
    the merged result is byte-identical to the sequential one.

    Fault tolerance: [faults] instantiates a per-shard seeded
    {!Sched.Fault_plan.t} over the shard's workers (crash–recovery of
    worker slots, stall windows, spurious-CAS rates), and [policy]
    adds per-request deadlines, bounded retry with seeded backoff and
    optional hedging (see {!Policy}).  A shard keeps serving while its
    workers die and restart: a crashed worker's in-flight request is
    redelivered on restart (or rescued outright once the plan shows
    the worker is permanently dead), and every offered request
    resolves to exactly one {!Policy.outcome}.  All of it is a pure
    function of the config — same seed, same bytes — and a config with
    no faults and an inert policy runs the exact historical program,
    byte-identical to a build without this layer.  A base plan that
    permanently crashes every worker (a total outage) is accepted:
    each shard degrades to an all-dropped, stopped-early result
    instead of running. *)

type kind = Counter | Treiber | Msqueue | Elimination | Waitfree

val all_kinds : kind list

val kind_name : kind -> string
(** [counter], [treiber], [msqueue], [elimination-stack],
    [waitfree-counter] — the {!Scu.Checkable} names. *)

val kind_of_name : string -> (kind, string) result

type config = {
  kinds : kind list;  (** Structure zoo; clients round-robin over it. *)
  objects : int;  (** Instances per kind per shard (Zipf keyspace). *)
  clients : int;  (** Total client sessions across all shards. *)
  ops_per_client : int;  (** Requests per session. *)
  workers : int;  (** Server processes per shard. *)
  shards : int;
  mode : Workload.mode;
  alpha : float;  (** Zipf popularity exponent over the objects. *)
  seed : int;
  max_steps : int;  (** Per-shard safety net (sets [stopped_early]). *)
  faults : Sched.Fault_plan.spec;
      (** Instantiated per shard (seeded by [(seed, shard)]) over the
          shard's [workers]. *)
  policy : Policy.t;  (** Request deadline/retry/hedge policy. *)
}

val default : config
(** counter only, 64 objects, 10_000 clients x 1 op, 8 workers x 8
    shards, closed loop with zero think time, alpha 1.1, seed 0, no
    faults, inert policy. *)

val no_faults : Sched.Fault_plan.spec

val is_robust : config -> bool
(** True when the config has faults or an active policy — i.e. the
    run takes the fault-tolerant dispatch path rather than the
    historical byte-identical one. *)

val validate : config -> (unit, string) result

val shard_plan : config -> shard:int -> total:int -> Sched.Fault_plan.t
(** The concrete fault plan shard [shard] runs under when it carries
    [total] requests — [faults] instantiated with the shard's seed
    over a horizon proportional to its workload.  Exposed so tests and
    the degradation gates can inspect exactly what the engine will
    inject. *)

type shard_result = {
  shard : int;
  requests : int;  (** Requests completed by this shard. *)
  offered : int;  (** Requests offered to this shard. *)
  steps : int;  (** Simulated steps the shard ran. *)
  max_queue_depth : int;  (** High-water mark of the ready queue. *)
  stopped_early : bool;  (** Hit [max_steps] before finishing. *)
  latency : Stats.Hdr.t;  (** Arrival to completion, steps. *)
  service : Stats.Hdr.t;  (** Dispatch to completion, steps. *)
  queue_wait : Stats.Hdr.t;  (** Arrival to dispatch, steps. *)
  per_kind : (kind * Stats.Hdr.t) list;  (** Latency by structure. *)
  outcomes : Policy.counts;
      (** Request-outcome taxonomy; [ok = requests] and all else zero
          on the fault-free path (minus any [dropped] cut off by
          [max_steps]). *)
  restarts : int;  (** Worker crash-restarts executed by the plan. *)
  spurious_cas : int;  (** Spuriously failed CAS steps. *)
}

type result = {
  config : config;
  shards : shard_result list;  (** In shard order. *)
  requests : int;
  offered : int;
  steps_total : int;  (** Sum over shards (serial step budget). *)
  steps_max : int;  (** Slowest shard (parallel completion time). *)
  stopped_early : bool;
  latency : Stats.Hdr.t;
  service : Stats.Hdr.t;
  queue_wait : Stats.Hdr.t;
  per_kind : (kind * Stats.Hdr.t) list;
  outcomes : Policy.counts;
  restarts : int;
  spurious_cas : int;
}

val stopped_shards : result -> int list
(** Ids of the shards that hit [max_steps], in shard order. *)

val run_shard : config -> shard:int -> shard_result
(** One shard's simulation — a pure function of [(config, shard)]. *)

val run : ?pool:Pool.t -> config -> result
(** All shards, fanned over [pool] when given (the result does not
    depend on the pool's size), merged in shard order. *)
