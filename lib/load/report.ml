module Hdr = Stats.Hdr
module LR = Telemetry.Load_report

let quantiles h =
  if Hdr.count h = 0 then
    {
      LR.count = 0;
      min_value = 0;
      max_value = 0;
      mean = 0.;
      p50 = 0;
      p99 = 0;
      p999 = 0;
    }
  else
    {
      LR.count = Hdr.count h;
      min_value = Hdr.min_value h;
      max_value = Hdr.max_value h;
      mean = Hdr.mean h;
      p50 = Hdr.p50 h;
      p99 = Hdr.p99 h;
      p999 = Hdr.p999 h;
    }

let default_slo_target = 0.999

let error_budget ?(target = default_slo_target) (r : Engine.result) =
  let offered = r.offered in
  let completed = Policy.completed r.outcomes in
  let availability =
    if offered = 0 then 1. else float_of_int completed /. float_of_int offered
  in
  let burn = (1. -. availability) /. (1. -. target) in
  {
    LR.budget_offered = offered;
    budget_completed = completed;
    availability;
    target;
    burn;
    verdict =
      (if burn <= 1. then "ok" else if burn <= 10. then "degraded" else "breached");
  }

let of_result ?window ?slo ?degrade ?error_budget (r : Engine.result) =
  let cfg = r.config in
  let robust = Engine.is_robust cfg in
  {
    LR.structures = List.map Engine.kind_name cfg.kinds;
    clients = cfg.clients;
    ops_per_client = cfg.ops_per_client;
    workers = cfg.workers;
    shards = cfg.shards;
    mode = Workload.mode_label cfg.mode;
    arrival = Workload.arrival_label cfg.mode;
    alpha = cfg.alpha;
    seed = cfg.seed;
    faults =
      (if robust then Some (Sched.Fault_plan.spec_to_string cfg.faults)
       else None);
    policy = (if robust then Some (Policy.to_string cfg.policy) else None);
    window;
    requests = r.requests;
    offered = (if robust then Some r.offered else None);
    steps_total = r.steps_total;
    steps_max = r.steps_max;
    stopped_early = r.stopped_early;
    throughput_per_kstep =
      (if r.steps_max = 0 then 0.
       else 1000. *. float_of_int r.requests /. float_of_int r.steps_max);
    latency = quantiles r.latency;
    service = quantiles r.service;
    queue_wait = quantiles r.queue_wait;
    outcomes =
      (if robust then
         Some
           {
             LR.ok = r.outcomes.Policy.ok;
             retried = r.outcomes.retried;
             retries = r.outcomes.retries;
             redelivered = r.outcomes.redelivered;
             hedges = r.outcomes.hedges;
             timed_out = r.outcomes.timed_out;
             dropped = r.outcomes.dropped;
           }
       else None);
    restarts = (if robust then Some r.restarts else None);
    spurious_cas = (if robust then Some r.spurious_cas else None);
    per_kind =
      List.map
        (fun (k, h) -> { LR.kind = Engine.kind_name k; latency = quantiles h })
        r.per_kind;
    per_shard =
      List.map
        (fun (s : Engine.shard_result) ->
          {
            LR.shard = s.shard;
            shard_requests = s.requests;
            shard_steps = s.steps;
            max_queue_depth = s.max_queue_depth;
            shard_stopped = s.stopped_early;
            shard_dropped = s.outcomes.Policy.dropped;
            shard_restarts = s.restarts;
          })
        r.shards;
    error_budget;
    slo =
      Option.map
        (List.map (fun (g : Check.Conform.gate) ->
             { LR.gate = g.name; gate_passed = g.passed; detail = g.detail }))
        slo;
    degrade =
      Option.map
        (List.map (fun (g : Check.Conform.gate) ->
             { LR.gate = g.name; gate_passed = g.passed; detail = g.detail }))
        degrade;
  }

let stopped_shard_ids (t : LR.t) =
  List.filter_map
    (fun (r : LR.shard_row) -> if r.shard_stopped then Some r.shard else None)
    t.per_shard

let render (t : LR.t) =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "[load] %s: %d client(s) x %d op(s), %d worker(s) x %d shard(s), %s/%s\n"
    (String.concat "," t.structures)
    t.clients t.ops_per_client t.workers t.shards t.mode t.arrival;
  (match t.faults with Some f -> add "  faults: %s\n" f | None -> ());
  (match t.policy with Some p -> add "  policy: %s\n" p | None -> ());
  (match t.window with Some w -> add "  window: %d\n" w | None -> ());
  add "  requests: %d  steps: %d (max shard %d)%s\n" t.requests t.steps_total
    t.steps_max
    (if t.stopped_early then
       match stopped_shard_ids t with
       | [] -> "  STOPPED EARLY (step budget)"
       | ids ->
           Printf.sprintf "  STOPPED EARLY (step budget; shard%s %s)"
             (if List.length ids = 1 then "" else "s")
             (String.concat "," (List.map string_of_int ids))
     else "");
  add "  throughput: %.2f req/kstep\n" t.throughput_per_kstep;
  (match t.outcomes with
  | Some o ->
      add
        "  outcomes: ok=%d retried=%d timed_out=%d dropped=%d  (offered %d; \
         retries=%d redelivered=%d hedges=%d)\n"
        o.ok o.retried o.timed_out o.dropped
        (Option.value t.offered ~default:(o.ok + o.retried + o.timed_out + o.dropped))
        o.retries o.redelivered o.hedges
  | None -> ());
  (match (t.restarts, t.spurious_cas) with
  | Some r, Some s -> add "  injected: restarts=%d spurious-cas=%d\n" r s
  | _ -> ());
  let q label (q : LR.quantiles) =
    if q.count > 0 then
      add "  %-10s mean=%.1f p50=%d p99=%d p999=%d max=%d\n" label q.mean q.p50
        q.p99 q.p999 q.max_value
  in
  q "latency" t.latency;
  q "service" t.service;
  q "queue-wait" t.queue_wait;
  List.iter
    (fun (r : LR.kind_row) ->
      if r.latency.count > 0 then
        add "  %-18s n=%d p50=%d p99=%d p999=%d\n" r.kind r.latency.count
          r.latency.p50 r.latency.p99 r.latency.p999)
    t.per_kind;
  (match t.error_budget with
  | Some eb ->
      add "  error-budget: availability=%.6f target=%g burn=%.2f verdict=%s\n"
        eb.availability eb.target eb.burn eb.verdict
  | None -> ());
  let gates tag = function
    | None -> ()
    | Some gs ->
        List.iter
          (fun (g : LR.gate_row) ->
            add "  [%s] %s %-28s %s\n" tag
              (if g.gate_passed then "PASS" else "FAIL")
              g.gate g.detail)
          gs
  in
  gates "slo" t.slo;
  gates "degrade" t.degrade;
  Buffer.contents b
