module Hdr = Stats.Hdr
module LR = Telemetry.Load_report

let quantiles h =
  if Hdr.count h = 0 then
    {
      LR.count = 0;
      min_value = 0;
      max_value = 0;
      mean = 0.;
      p50 = 0;
      p99 = 0;
      p999 = 0;
    }
  else
    {
      LR.count = Hdr.count h;
      min_value = Hdr.min_value h;
      max_value = Hdr.max_value h;
      mean = Hdr.mean h;
      p50 = Hdr.p50 h;
      p99 = Hdr.p99 h;
      p999 = Hdr.p999 h;
    }

let of_result ?window ?slo (r : Engine.result) =
  let cfg = r.config in
  {
    LR.structures = List.map Engine.kind_name cfg.kinds;
    clients = cfg.clients;
    ops_per_client = cfg.ops_per_client;
    workers = cfg.workers;
    shards = cfg.shards;
    mode = Workload.mode_label cfg.mode;
    arrival = Workload.arrival_label cfg.mode;
    alpha = cfg.alpha;
    seed = cfg.seed;
    window;
    requests = r.requests;
    steps_total = r.steps_total;
    steps_max = r.steps_max;
    stopped_early = r.stopped_early;
    throughput_per_kstep =
      (if r.steps_max = 0 then 0.
       else 1000. *. float_of_int r.requests /. float_of_int r.steps_max);
    latency = quantiles r.latency;
    service = quantiles r.service;
    queue_wait = quantiles r.queue_wait;
    per_kind =
      List.map
        (fun (k, h) -> { LR.kind = Engine.kind_name k; latency = quantiles h })
        r.per_kind;
    per_shard =
      List.map
        (fun (s : Engine.shard_result) ->
          {
            LR.shard = s.shard;
            shard_requests = s.requests;
            shard_steps = s.steps;
            max_queue_depth = s.max_queue_depth;
          })
        r.shards;
    slo =
      Option.map
        (List.map (fun (g : Check.Conform.gate) ->
             { LR.gate = g.name; gate_passed = g.passed; detail = g.detail }))
        slo;
  }

let render (t : LR.t) =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "[load] %s: %d client(s) x %d op(s), %d worker(s) x %d shard(s), %s/%s\n"
    (String.concat "," t.structures)
    t.clients t.ops_per_client t.workers t.shards t.mode t.arrival;
  (match t.window with Some w -> add "  window: %d\n" w | None -> ());
  add "  requests: %d  steps: %d (max shard %d)%s\n" t.requests t.steps_total
    t.steps_max
    (if t.stopped_early then "  STOPPED EARLY (step budget)" else "");
  add "  throughput: %.2f req/kstep\n" t.throughput_per_kstep;
  let q label (q : LR.quantiles) =
    if q.count > 0 then
      add "  %-10s mean=%.1f p50=%d p99=%d p999=%d max=%d\n" label q.mean q.p50
        q.p99 q.p999 q.max_value
  in
  q "latency" t.latency;
  q "service" t.service;
  q "queue-wait" t.queue_wait;
  List.iter
    (fun (r : LR.kind_row) ->
      if r.latency.count > 0 then
        add "  %-18s n=%d p50=%d p99=%d p999=%d\n" r.kind r.latency.count
          r.latency.p50 r.latency.p99 r.latency.p999)
    t.per_kind;
  (match t.slo with
  | None -> ()
  | Some gates ->
      List.iter
        (fun (g : LR.gate_row) ->
          add "  [slo] %s %-28s %s\n"
            (if g.gate_passed then "PASS" else "FAIL")
            g.gate g.detail)
        gates);
  Buffer.contents b
