module Memory = Sim.Memory
module Program = Sim.Program
module Hdr = Stats.Hdr

type kind = Counter | Treiber | Msqueue | Elimination | Waitfree

let all_kinds = [ Counter; Treiber; Msqueue; Elimination; Waitfree ]

let kind_name = function
  | Counter -> "counter"
  | Treiber -> "treiber"
  | Msqueue -> "msqueue"
  | Elimination -> "elimination-stack"
  | Waitfree -> "waitfree-counter"

let kind_of_name s =
  match List.find_opt (fun k -> kind_name k = s) all_kinds with
  | Some k -> Ok k
  | None ->
      Error
        (Printf.sprintf "unknown structure %S (known: %s)" s
           (String.concat ", " (List.map kind_name all_kinds)))

type config = {
  kinds : kind list;
  objects : int;
  clients : int;
  ops_per_client : int;
  workers : int;
  shards : int;
  mode : Workload.mode;
  alpha : float;
  seed : int;
  max_steps : int;
}

let default =
  {
    kinds = [ Counter ];
    objects = 64;
    clients = 10_000;
    ops_per_client = 1;
    workers = 8;
    shards = 8;
    mode = Workload.Closed { think = 0. };
    alpha = 1.1;
    seed = 0;
    max_steps = 200_000_000;
  }

let validate cfg =
  if cfg.kinds = [] then Error "need at least one structure"
  else if cfg.objects < 1 then Error "need at least one object per structure"
  else if cfg.clients < 0 then Error "clients must be non-negative"
  else if cfg.ops_per_client < 1 then Error "need at least one op per client"
  else if cfg.workers < 1 then Error "need at least one worker per shard"
  else if cfg.shards < 1 then Error "need at least one shard"
  else if cfg.alpha < 0. then Error "alpha must be non-negative"
  else if cfg.max_steps < 1 then Error "max-steps must be positive"
  else Workload.validate cfg.mode

type shard_result = {
  shard : int;
  requests : int;
  steps : int;
  max_queue_depth : int;
  stopped_early : bool;
  latency : Hdr.t;
  service : Hdr.t;
  queue_wait : Hdr.t;
  per_kind : (kind * Hdr.t) list;
}

type result = {
  config : config;
  shards : shard_result list;
  requests : int;
  steps_total : int;
  steps_max : int;
  stopped_early : bool;
  latency : Hdr.t;
  service : Hdr.t;
  queue_wait : Hdr.t;
  per_kind : (kind * Hdr.t) list;
}

(* One queued request.  [kind] indexes the config's kind list; every
   random draw it embodies came from its own (seed, client, k) RNG, so
   the record is the same whichever simulation path built it. *)
type req = {
  client : int;
  k : int;
  kind : int;
  key : int;
  push : bool;
  arrival : int;
}

(* Host-level min-heap of future arrivals, keyed (arrival, client, k)
   so ties break deterministically.  Bounded by one entry per client:
   a session's next request is scheduled only when its predecessor is
   dispatched (open loop) or completes (closed loop). *)
module Rheap = struct
  type t = { mutable a : req array; mutable len : int; dummy : req }

  let create dummy = { a = Array.make 64 dummy; len = 0; dummy }

  let less x y =
    x.arrival < y.arrival
    || (x.arrival = y.arrival
       && (x.client < y.client || (x.client = y.client && x.k < y.k)))

  let push t r =
    if t.len = Array.length t.a then begin
      let bigger = Array.make (2 * t.len) t.dummy in
      Array.blit t.a 0 bigger 0 t.len;
      t.a <- bigger
    end;
    t.a.(t.len) <- r;
    t.len <- t.len + 1;
    let i = ref (t.len - 1) in
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      less t.a.(!i) t.a.(p)
    do
      let p = (!i - 1) / 2 in
      let tmp = t.a.(p) in
      t.a.(p) <- t.a.(!i);
      t.a.(!i) <- tmp;
      i := p
    done

  let peek t = if t.len = 0 then None else Some t.a.(0)

  let pop t =
    let top = t.a.(0) in
    t.len <- t.len - 1;
    t.a.(0) <- t.a.(t.len);
    t.a.(t.len) <- t.dummy;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.len && less t.a.(l) t.a.(!smallest) then smallest := l;
      if r < t.len && less t.a.(r) t.a.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        let tmp = t.a.(!smallest) in
        t.a.(!smallest) <- t.a.(!i);
        t.a.(!i) <- tmp;
        i := !smallest
      end
    done;
    top
end

(* Per-shard structure instances: [objects] of each configured kind,
   all over the shard's one memory. *)
type objset =
  | OCounter of int array  (* register *)
  | OTreiber of int array  (* top *)
  | OMsqueue of (int * int) array  (* head, tail *)
  | OElim of { tops : int array; slotss : int array array; elims : int array }
  | OWf of { ptrs : int array; anns : int array; seqs : int array array }

let build_objset memory ~workers ~objects = function
  | Counter ->
      OCounter (Array.init objects (fun _ -> Memory.alloc_init memory [| 0 |]))
  | Treiber ->
      OTreiber (Array.init objects (fun _ -> Memory.alloc_init memory [| 0 |]))
  | Msqueue ->
      OMsqueue
        (Array.init objects (fun _ ->
             let sentinel = Memory.alloc memory ~size:2 in
             let head = Memory.alloc_init memory [| sentinel |] in
             let tail = Memory.alloc_init memory [| sentinel |] in
             (head, tail)))
  | Elimination ->
      let nslots = max 1 (workers / 4) in
      OElim
        {
          tops = Array.init objects (fun _ -> Memory.alloc_init memory [| 0 |]);
          slotss =
            Array.init objects (fun _ ->
                Array.init nslots (fun _ -> Memory.alloc_init memory [| 0 |]));
          elims =
            Array.init objects (fun _ -> Memory.alloc_init memory [| 0 |]);
        }
  | Waitfree ->
      OWf
        {
          ptrs =
            Array.init objects (fun _ ->
                let first = Memory.alloc memory ~size:(workers + 1) in
                Memory.alloc_init memory [| first |]);
          anns = Array.init objects (fun _ -> Memory.alloc memory ~size:workers);
          seqs = Array.init objects (fun _ -> Array.make workers 0);
        }

let run_shard cfg ~shard =
  let kinds = Array.of_list cfg.kinds in
  let nkinds = Array.length kinds in
  let latency = Hdr.create () in
  let service = Hdr.create () in
  let queue_wait = Hdr.create () in
  let per_kind = Array.init nkinds (fun _ -> Hdr.create ()) in
  (* Clients with [c mod shards = shard]. *)
  let nclients =
    (cfg.clients / cfg.shards)
    + (if shard < cfg.clients mod cfg.shards then 1 else 0)
  in
  let total = nclients * cfg.ops_per_client in
  let empty_result ~steps ~stopped_early =
    {
      shard;
      requests = Hdr.count latency;
      steps;
      max_queue_depth = 0;
      stopped_early;
      latency;
      service;
      queue_wait;
      per_kind = List.mapi (fun i k -> (k, per_kind.(i))) cfg.kinds;
    }
  in
  if total = 0 then empty_result ~steps:0 ~stopped_early:false
  else begin
    let memory = Memory.create ~capacity:4096 () in
    let objsets =
      Array.map (build_objset memory ~workers:cfg.workers ~objects:cfg.objects)
        kinds
    in
    let cdf = Workload.zipf_cdf ~alpha:cfg.alpha ~n:cfg.objects in
    let make_req ~client ~k ~base =
      let rng = Workload.request_rng ~seed:cfg.seed ~client ~k in
      let g = Workload.gap cfg.mode rng ~k in
      let u = Stats.Rng.float rng 1.0 in
      let push = Stats.Rng.bool rng in
      {
        client;
        k;
        kind = client / cfg.shards mod nkinds;
        key = Workload.pick cdf u;
        push;
        arrival = base + g;
      }
    in
    let dummy =
      { client = -1; k = -1; kind = 0; key = 0; push = false; arrival = 0 }
    in
    let pending = Rheap.create dummy in
    for i = 0 to nclients - 1 do
      let client = shard + (i * cfg.shards) in
      Rheap.push pending (make_req ~client ~k:0 ~base:0)
    done;
    let ready : req Queue.t = Queue.create () in
    let max_depth = ref 0 in
    let served = ref 0 in
    let vref = ref 0 in
    let next_value () =
      incr vref;
      !vref
    in
    let is_open = match cfg.mode with Workload.Open _ -> true | _ -> false in
    let schedule_next ~base r =
      if r.k + 1 < cfg.ops_per_client then
        Rheap.push pending (make_req ~client:r.client ~k:(r.k + 1) ~base)
    in
    let drain now =
      let continue = ref true in
      while !continue do
        match Rheap.peek pending with
        | Some r when r.arrival <= now ->
            ignore (Rheap.pop pending);
            (* Open loop: the successor's arrival is independent of
               service, so it is scheduled as soon as this request
               reaches the queue. *)
            if is_open then schedule_next ~base:r.arrival r;
            Queue.add r ready;
            if Queue.length ready > !max_depth then
              max_depth := Queue.length ready
        | _ -> continue := false
      done
    in
    let exec_request (ctx : Program.ctx) r =
      match objsets.(r.kind) with
      | OCounter regs -> ignore (Scu.Counter.fetch_and_increment regs.(r.key))
      | OTreiber tops ->
          if r.push then
            Scu.Treiber.push_op ~memory ~top:tops.(r.key) (next_value ())
          else ignore (Scu.Treiber.pop_op ~top:tops.(r.key))
      | OMsqueue hts ->
          let head, tail = hts.(r.key) in
          if r.push then Scu.Msqueue.enqueue_op ~memory ~tail (next_value ())
          else ignore (Scu.Msqueue.dequeue_op ~head ~tail)
      | OElim e ->
          if r.push then
            Scu.Elimination_stack.push_op ~memory ~top:e.tops.(r.key)
              ~slots:e.slotss.(r.key) ~poll:2 ctx (next_value ())
          else
            ignore
              (Scu.Elimination_stack.pop_op ~top:e.tops.(r.key)
                 ~slots:e.slotss.(r.key) ~eliminated:e.elims.(r.key) ctx)
      | OWf w ->
          let sq = w.seqs.(r.key) in
          sq.(ctx.id) <- sq.(ctx.id) + 1;
          Scu.Waitfree_counter.incr_op ~memory ~pointer:w.ptrs.(r.key)
            ~announce:w.anns.(r.key) ~n:ctx.n ~id:ctx.id ~seq:sq.(ctx.id)
    in
    let program (ctx : Program.ctx) =
      let rec loop () =
        if !served < total then begin
          let now = Program.now () in
          drain now;
          match Queue.take_opt ready with
          | None ->
              (* Nothing dispatchable: burn one step polling so time
                 advances towards the next arrival. *)
              Program.yield_noop ();
              loop ()
          | Some r ->
              let dispatch = now in
              exec_request ctx r;
              let fin = Program.now () in
              Hdr.add latency (fin - r.arrival);
              Hdr.add service (fin - dispatch);
              Hdr.add queue_wait (dispatch - r.arrival);
              Hdr.add per_kind.(r.kind) (fin - r.arrival);
              incr served;
              if not is_open then schedule_next ~base:fin r;
              Program.complete ();
              loop ()
        end
      in
      loop ()
    in
    let spec = { Sim.Executor.name = "load-shard"; memory; program } in
    let r =
      Sim.Executor.exec
        ~config:
          Sim.Executor.Config.(
            default
            |> with_seed (Workload.mix cfg.seed (shard + 0x10AD))
            |> with_max_steps cfg.max_steps)
        ~scheduler:Sched.Scheduler.uniform ~n:cfg.workers
        ~stop:(Completions total) spec
    in
    {
      (empty_result ~steps:(Sim.Metrics.time r.metrics)
         ~stopped_early:r.stopped_early)
      with
      max_queue_depth = !max_depth;
    }
  end

let merge_shards cfg (shards : shard_result list) =
  let latency = Hdr.create () in
  let service = Hdr.create () in
  let queue_wait = Hdr.create () in
  let per_kind = List.map (fun k -> (k, Hdr.create ())) cfg.kinds in
  List.iter
    (fun (s : shard_result) ->
      Hdr.merge_into ~into:latency s.latency;
      Hdr.merge_into ~into:service s.service;
      Hdr.merge_into ~into:queue_wait s.queue_wait;
      List.iter2
        (fun (_, into) (_, src) -> Hdr.merge_into ~into src)
        per_kind s.per_kind)
    shards;
  {
    config = cfg;
    shards;
    requests =
      List.fold_left (fun acc (s : shard_result) -> acc + s.requests) 0 shards;
    steps_total =
      List.fold_left (fun acc (s : shard_result) -> acc + s.steps) 0 shards;
    steps_max =
      List.fold_left (fun acc (s : shard_result) -> max acc s.steps) 0 shards;
    stopped_early =
      List.exists (fun (s : shard_result) -> s.stopped_early) shards;
    latency;
    service;
    queue_wait;
    per_kind;
  }

let run ?pool cfg =
  (match validate cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Engine.run: " ^ msg));
  let shards =
    match pool with
    | Some p when cfg.shards > 1 ->
        Pool.run_init p cfg.shards (fun s -> run_shard cfg ~shard:s)
    | _ -> List.init cfg.shards (fun s -> run_shard cfg ~shard:s)
  in
  merge_shards cfg shards
