module Memory = Sim.Memory
module Program = Sim.Program
module Hdr = Stats.Hdr
module Fault_plan = Sched.Fault_plan

type kind = Counter | Treiber | Msqueue | Elimination | Waitfree

let all_kinds = [ Counter; Treiber; Msqueue; Elimination; Waitfree ]

let kind_name = function
  | Counter -> "counter"
  | Treiber -> "treiber"
  | Msqueue -> "msqueue"
  | Elimination -> "elimination-stack"
  | Waitfree -> "waitfree-counter"

let kind_of_name s =
  match List.find_opt (fun k -> kind_name k = s) all_kinds with
  | Some k -> Ok k
  | None ->
      Error
        (Printf.sprintf "unknown structure %S (known: %s)" s
           (String.concat ", " (List.map kind_name all_kinds)))

let no_faults = { Fault_plan.base = Fault_plan.none; rates = Fault_plan.zero_rates }

type config = {
  kinds : kind list;
  objects : int;
  clients : int;
  ops_per_client : int;
  workers : int;
  shards : int;
  mode : Workload.mode;
  alpha : float;
  seed : int;
  max_steps : int;
  faults : Fault_plan.spec;
  policy : Policy.t;
}

let default =
  {
    kinds = [ Counter ];
    objects = 64;
    clients = 10_000;
    ops_per_client = 1;
    workers = 8;
    shards = 8;
    mode = Workload.Closed { think = 0. };
    alpha = 1.1;
    seed = 0;
    max_steps = 200_000_000;
    faults = no_faults;
    policy = Policy.default;
  }

let is_robust cfg =
  not (Fault_plan.spec_is_none cfg.faults && Policy.is_none cfg.policy)

(* A base plan that permanently crashes every worker is a *total
   outage*: {!Fault_plan.validate} rejects it, but the service layer
   accepts it deliberately — each shard detects it and degrades to an
   all-dropped, stopped-early result instead of running, so the outage
   drill surfaces as exit 1 with a manifest rather than an exception.
   (Rate-generated plans always keep a survivor, so only explicit
   events can cause this.) *)
let outage_plan ~workers plan = Fault_plan.survivors ~n:workers plan = 0

let validate cfg =
  if cfg.kinds = [] then Error "need at least one structure"
  else if cfg.objects < 1 then Error "need at least one object per structure"
  else if cfg.clients < 0 then Error "clients must be non-negative"
  else if cfg.ops_per_client < 1 then Error "need at least one op per client"
  else if cfg.workers < 1 then Error "need at least one worker per shard"
  else if cfg.shards < 1 then Error "need at least one shard"
  else if cfg.alpha < 0. then Error "alpha must be non-negative"
  else if cfg.max_steps < 1 then Error "max-steps must be positive"
  else
    match Workload.validate cfg.mode with
    | Error _ as e -> e
    | Ok () -> (
        match Policy.validate cfg.policy with
        | Error msg -> Error ("policy: " ^ msg)
        | Ok () -> (
            let base = cfg.faults.Fault_plan.base in
            match Fault_plan.validate ~n:cfg.workers base with
            | Ok () -> Ok ()
            | Error _ when outage_plan ~workers:cfg.workers base ->
                (* Heal one process with a far-future restart and
                   re-validate: an outage is accepted, but only if the
                   plan has no *other* defect (bad ids, times, rates). *)
                Result.map_error
                  (fun msg -> "faults: " ^ msg)
                  (Fault_plan.validate ~n:cfg.workers
                     (Fault_plan.merge base
                        (Fault_plan.make
                           [ (max_int, Fault_plan.Restart 0) ])))
            | Error msg -> Error ("faults: " ^ msg)))

type shard_result = {
  shard : int;
  requests : int;
  offered : int;
  steps : int;
  max_queue_depth : int;
  stopped_early : bool;
  latency : Hdr.t;
  service : Hdr.t;
  queue_wait : Hdr.t;
  per_kind : (kind * Hdr.t) list;
  outcomes : Policy.counts;
  restarts : int;
  spurious_cas : int;
}

type result = {
  config : config;
  shards : shard_result list;
  requests : int;
  offered : int;
  steps_total : int;
  steps_max : int;
  stopped_early : bool;
  latency : Hdr.t;
  service : Hdr.t;
  queue_wait : Hdr.t;
  per_kind : (kind * Hdr.t) list;
  outcomes : Policy.counts;
  restarts : int;
  spurious_cas : int;
}

let stopped_shards r =
  List.filter_map
    (fun (s : shard_result) -> if s.stopped_early then Some s.shard else None)
    r.shards

(* One queued request.  [kind] indexes the config's kind list; every
   random draw it embodies came from its own (seed, client, k) RNG, so
   the record is the same whichever simulation path built it.  [rid]
   is the shard-local request id; [attempt] and [dup] only matter to
   the fault-tolerant path (dup 0 = original arrival, 1 = retry or
   crash redelivery, 2 = hedged duplicate). *)
type req = {
  client : int;
  k : int;
  kind : int;
  key : int;
  push : bool;
  arrival : int;
  rid : int;
  attempt : int;
  dup : int;
}

(* Host-level min-heap of future arrivals, keyed (arrival, client, k)
   so ties break deterministically.  Bounded by one entry per client
   plus outstanding retries/hedges: a session's next request is
   scheduled only when its predecessor is dispatched (open loop) or
   resolves (closed loop). *)
module Rheap = struct
  type t = { mutable a : req array; mutable len : int; dummy : req }

  let create dummy = { a = Array.make 64 dummy; len = 0; dummy }

  let less x y =
    x.arrival < y.arrival
    || (x.arrival = y.arrival
       && (x.client < y.client
          || (x.client = y.client && (x.k < y.k || (x.k = y.k && x.dup < y.dup)))
          ))

  let push t r =
    if t.len = Array.length t.a then begin
      let bigger = Array.make (2 * t.len) t.dummy in
      Array.blit t.a 0 bigger 0 t.len;
      t.a <- bigger
    end;
    t.a.(t.len) <- r;
    t.len <- t.len + 1;
    let i = ref (t.len - 1) in
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      less t.a.(!i) t.a.(p)
    do
      let p = (!i - 1) / 2 in
      let tmp = t.a.(p) in
      t.a.(p) <- t.a.(!i);
      t.a.(!i) <- tmp;
      i := p
    done

  let peek t = if t.len = 0 then None else Some t.a.(0)

  let pop t =
    let top = t.a.(0) in
    t.len <- t.len - 1;
    t.a.(0) <- t.a.(t.len);
    t.a.(t.len) <- t.dummy;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.len && less t.a.(l) t.a.(!smallest) then smallest := l;
      if r < t.len && less t.a.(r) t.a.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        let tmp = t.a.(!smallest) in
        t.a.(!smallest) <- t.a.(!i);
        t.a.(!i) <- tmp;
        i := !smallest
      end
    done;
    top
end

(* Per-shard structure instances: [objects] of each configured kind,
   all over the shard's one memory. *)
type objset =
  | OCounter of int array  (* register *)
  | OTreiber of int array  (* top *)
  | OMsqueue of (int * int) array  (* head, tail *)
  | OElim of { tops : int array; slotss : int array array; elims : int array }
  | OWf of { ptrs : int array; anns : int array; seqs : int array array }

let build_objset memory ~workers ~objects = function
  | Counter ->
      OCounter (Array.init objects (fun _ -> Memory.alloc_init memory [| 0 |]))
  | Treiber ->
      OTreiber (Array.init objects (fun _ -> Memory.alloc_init memory [| 0 |]))
  | Msqueue ->
      OMsqueue
        (Array.init objects (fun _ ->
             let sentinel = Memory.alloc memory ~size:2 in
             let head = Memory.alloc_init memory [| sentinel |] in
             let tail = Memory.alloc_init memory [| sentinel |] in
             (head, tail)))
  | Elimination ->
      let nslots = max 1 (workers / 4) in
      OElim
        {
          tops = Array.init objects (fun _ -> Memory.alloc_init memory [| 0 |]);
          slotss =
            Array.init objects (fun _ ->
                Array.init nslots (fun _ -> Memory.alloc_init memory [| 0 |]));
          elims =
            Array.init objects (fun _ -> Memory.alloc_init memory [| 0 |]);
        }
  | Waitfree ->
      OWf
        {
          ptrs =
            Array.init objects (fun _ ->
                let first = Memory.alloc memory ~size:(workers + 1) in
                Memory.alloc_init memory [| first |]);
          anns = Array.init objects (fun _ -> Memory.alloc memory ~size:workers);
          seqs = Array.init objects (fun _ -> Array.make workers 0);
        }

(* How far into (step) time the rate part of the fault plan is
   expanded.  Any pure function of (config, shard) keeps determinism;
   64 steps per offered request covers every structure's service cost
   with generous slack, while keeping instantiation linear in the
   shard's real workload rather than in the 2e8-step safety net. *)
let fault_horizon cfg ~total = min cfg.max_steps ((64 * total) + 4096)

let shard_plan cfg ~shard ~total =
  Fault_plan.instantiate cfg.faults
    ~seed:(Workload.mix (Workload.mix cfg.seed 0xFA171) shard)
    ~n:cfg.workers
    ~horizon:(fault_horizon cfg ~total)

let run_shard cfg ~shard =
  let kinds = Array.of_list cfg.kinds in
  let nkinds = Array.length kinds in
  let latency = Hdr.create () in
  let service = Hdr.create () in
  let queue_wait = Hdr.create () in
  let per_kind = Array.init nkinds (fun _ -> Hdr.create ()) in
  (* Clients with [c mod shards = shard]. *)
  let nclients =
    (cfg.clients / cfg.shards)
    + (if shard < cfg.clients mod cfg.shards then 1 else 0)
  in
  let total = nclients * cfg.ops_per_client in
  let empty_result ~steps ~stopped_early =
    let requests = Hdr.count latency in
    {
      shard;
      requests;
      offered = total;
      steps;
      max_queue_depth = 0;
      stopped_early;
      latency;
      service;
      queue_wait;
      per_kind = List.mapi (fun i k -> (k, per_kind.(i))) cfg.kinds;
      outcomes =
        { Policy.zero_counts with ok = requests; dropped = total - requests };
      restarts = 0;
      spurious_cas = 0;
    }
  in
  if total = 0 then empty_result ~steps:0 ~stopped_early:false
  else begin
    let robust = is_robust cfg in
    let plan = if robust then shard_plan cfg ~shard ~total else Fault_plan.none in
    if robust && outage_plan ~workers:cfg.workers plan then
      (* Total outage: nothing can ever serve.  Degrade without
         simulating — every offered request is dropped. *)
      {
        (empty_result ~steps:0 ~stopped_early:true) with
        outcomes = { Policy.zero_counts with dropped = total };
      }
    else begin
    let memory = Memory.create ~capacity:4096 () in
    let objsets =
      Array.map (build_objset memory ~workers:cfg.workers ~objects:cfg.objects)
        kinds
    in
    let cdf = Workload.zipf_cdf ~alpha:cfg.alpha ~n:cfg.objects in
    let pol = cfg.policy in
    (* Fault-tolerant bookkeeping, allocated only when active. *)
    let status = if robust then Bytes.make total '\000' else Bytes.empty in
    let attempt_cur = if robust then Array.make total 0 else [||] in
    let first_arrival = if robust then Array.make total 0 else [||] in
    let hedged =
      if robust && pol.hedge_after <> None then Array.make total false else [||]
    in
    let resolved = ref 0 in
    let ok_c = ref 0 in
    let retried_c = ref 0 in
    let retries_c = ref 0 in
    let redelivered_c = ref 0 in
    let hedges_c = ref 0 in
    let timedout_c = ref 0 in
    let dummy =
      {
        client = -1;
        k = -1;
        kind = 0;
        key = 0;
        push = false;
        arrival = 0;
        rid = -1;
        attempt = 0;
        dup = 0;
      }
    in
    let req_store = if robust then Array.make total dummy else [||] in
    let make_req ~client ~k ~base =
      let rng = Workload.request_rng ~seed:cfg.seed ~client ~k in
      let g = Workload.gap cfg.mode rng ~k in
      let u = Stats.Rng.float rng 1.0 in
      let push = Stats.Rng.bool rng in
      let rid = ((client / cfg.shards) * cfg.ops_per_client) + k in
      let r =
        {
          client;
          k;
          kind = client / cfg.shards mod nkinds;
          key = Workload.pick cdf u;
          push;
          arrival = base + g;
          rid;
          attempt = 0;
          dup = 0;
        }
      in
      if robust then begin
        req_store.(rid) <- r;
        first_arrival.(rid) <- r.arrival
      end;
      r
    in
    let pending = Rheap.create dummy in
    for i = 0 to nclients - 1 do
      let client = shard + (i * cfg.shards) in
      Rheap.push pending (make_req ~client ~k:0 ~base:0)
    done;
    let ready : req Queue.t = Queue.create () in
    let max_depth = ref 0 in
    let served = ref 0 in
    let vref = ref 0 in
    let next_value () =
      incr vref;
      !vref
    in
    let is_open = match cfg.mode with Workload.Open _ -> true | _ -> false in
    let schedule_next ~base r =
      if r.k + 1 < cfg.ops_per_client then
        Rheap.push pending (make_req ~client:r.client ~k:(r.k + 1) ~base)
    in
    (* Deadline watch: FIFO of (rid, attempt, absolute deadline).
       Entries are appended in drain order — non-decreasing arrival
       times plus a constant deadline — so the queue is sorted and the
       scan only ever inspects its head. *)
    let watch : (int * int * int) Queue.t = Queue.create () in
    let drain now =
      let continue = ref true in
      while !continue do
        match Rheap.peek pending with
        | Some r when r.arrival <= now ->
            ignore (Rheap.pop pending);
            (* Open loop: the successor's arrival is independent of
               service, so it is scheduled as soon as this request
               reaches the queue (originals only — retries, hedges and
               redeliveries have no successor of their own). *)
            if is_open && r.dup = 0 && r.attempt = 0 then
              schedule_next ~base:r.arrival r;
            (match pol.deadline with
            | Some d when r.dup < 2 ->
                Queue.add (r.rid, r.attempt, r.arrival + d) watch
            | _ -> ());
            Queue.add r ready;
            if Queue.length ready > !max_depth then
              max_depth := Queue.length ready
        | _ -> continue := false
      done
    in
    let resolve_failure ~now rid =
      Bytes.set status rid '\002';
      incr timedout_c;
      incr resolved;
      if not is_open then schedule_next ~base:now req_store.(rid);
      Program.complete ()
    in
    (* Expired deadlines: retry with seeded backoff while budget
       remains, else resolve the request as timed out.  Runs inside
       whichever worker is scheduled, costs no simulated step. *)
    let rec scan now =
      match Queue.peek_opt watch with
      | Some (rid, att, dl) when dl <= now ->
          ignore (Queue.pop watch);
          if Bytes.get status rid = '\000' && attempt_cur.(rid) = att then begin
            if att < pol.max_retries then begin
              attempt_cur.(rid) <- att + 1;
              incr retries_c;
              let b = Policy.backoff pol ~seed:cfg.seed ~rid ~attempt:(att + 1) in
              Rheap.push pending
                {
                  req_store.(rid) with
                  arrival = now + b;
                  attempt = att + 1;
                  dup = 1;
                }
            end
            else resolve_failure ~now rid
          end;
          scan now
      | _ -> ()
    in
    (* Per-worker dispatch slots: which request (and attempt) each
       worker currently holds, and since when.  Host-level state — a
       crash drops the worker's continuation but not this record, which
       is exactly what redelivery needs. *)
    let inflight_rid = Array.make cfg.workers (-1) in
    let inflight_attempt = Array.make cfg.workers 0 in
    let inflight_since = Array.make cfg.workers 0 in
    (* Hedging: a request in flight for [h] steps without completing
       gets one duplicate dispatch — including around a crashed or
       stalled worker, which is the production use case. *)
    let hedge_scan h now =
      for w = 0 to cfg.workers - 1 do
        let rid = inflight_rid.(w) in
        if
          rid >= 0
          && Bytes.get status rid = '\000'
          && inflight_attempt.(w) = attempt_cur.(rid)
          && (not hedged.(rid))
          && now - inflight_since.(w) >= h
        then begin
          hedged.(rid) <- true;
          incr hedges_c;
          Rheap.push pending
            {
              req_store.(rid) with
              arrival = now;
              attempt = attempt_cur.(rid);
              dup = 2;
            }
        end
      done
    in
    (* The step after which each worker is crashed for good under
       [plan] (max_int if it always restarts or never crashes).  The
       plan is engine-side data, so the load generator gets a perfect
       failure detector: requests held by a permanently dead worker are
       redelivered instead of waiting on a restart that never comes —
       this is what keeps the [Completions] stop reachable for
       faults-only runs with no deadline policy. *)
    let dead_after =
      let d = Array.make cfg.workers max_int in
      Array.iter
        (fun (time, e) ->
          match e with
          | Fault_plan.Crash p -> if p >= 0 && p < cfg.workers then d.(p) <- time
          | Fault_plan.Restart p ->
              if p >= 0 && p < cfg.workers then d.(p) <- max_int
          | Fault_plan.Stall _ -> ())
        (Fault_plan.events plan);
      d
    in
    let redeliver ~now ~w =
      let rid = inflight_rid.(w) in
      inflight_rid.(w) <- -1;
      if
        rid >= 0
        && Bytes.get status rid = '\000'
        && attempt_cur.(rid) = inflight_attempt.(w)
      then begin
        incr redelivered_c;
        Rheap.push pending
          {
            req_store.(rid) with
            arrival = now;
            attempt = inflight_attempt.(w);
            dup = 1;
          }
      end
    in
    let rescue now =
      for w = 0 to cfg.workers - 1 do
        if inflight_rid.(w) >= 0 && now >= dead_after.(w) then
          redeliver ~now ~w
      done
    in
    let exec_request (ctx : Program.ctx) r =
      match objsets.(r.kind) with
      | OCounter regs -> ignore (Scu.Counter.fetch_and_increment regs.(r.key))
      | OTreiber tops ->
          if r.push then
            Scu.Treiber.push_op ~memory ~top:tops.(r.key) (next_value ())
          else ignore (Scu.Treiber.pop_op ~top:tops.(r.key))
      | OMsqueue hts ->
          let head, tail = hts.(r.key) in
          if r.push then Scu.Msqueue.enqueue_op ~memory ~tail (next_value ())
          else ignore (Scu.Msqueue.dequeue_op ~head ~tail)
      | OElim e ->
          if r.push then
            Scu.Elimination_stack.push_op ~memory ~top:e.tops.(r.key)
              ~slots:e.slotss.(r.key) ~poll:2 ctx (next_value ())
          else
            ignore
              (Scu.Elimination_stack.pop_op ~top:e.tops.(r.key)
                 ~slots:e.slotss.(r.key) ~eliminated:e.elims.(r.key) ctx)
      | OWf w ->
          let sq = w.seqs.(r.key) in
          sq.(ctx.id) <- sq.(ctx.id) + 1;
          Scu.Waitfree_counter.incr_op ~memory ~pointer:w.ptrs.(r.key)
            ~announce:w.anns.(r.key) ~n:ctx.n ~id:ctx.id ~seq:sq.(ctx.id)
    in
    (* The historical fault-free program: byte-identical step sequence
       to every release since the service landed. *)
    let program_plain (ctx : Program.ctx) =
      let rec loop () =
        if !served < total then begin
          let now = Program.now () in
          drain now;
          match Queue.take_opt ready with
          | None ->
              (* Nothing dispatchable: burn one step polling so time
                 advances towards the next arrival. *)
              Program.yield_noop ();
              loop ()
          | Some r ->
              let dispatch = now in
              exec_request ctx r;
              let fin = Program.now () in
              Hdr.add latency (fin - r.arrival);
              Hdr.add service (fin - dispatch);
              Hdr.add queue_wait (dispatch - r.arrival);
              Hdr.add per_kind.(r.kind) (fin - r.arrival);
              incr served;
              if not is_open then schedule_next ~base:fin r;
              Program.complete ();
              loop ()
        end
      in
      loop ()
    in
    (* The fault-tolerant program.  Same dispatch loop, plus: crash
       redelivery on re-entry, the deadline and hedge scans, stale
       ready entries discarded without burning a step, and duplicate
       completions (hedge losers, late redelivered copies) resolved
       at-least-once — the first finisher wins.  [Program.complete]
       fires exactly once per resolution (success or final timeout),
       so [Completions total] still means "every request resolved". *)
    let program_robust (ctx : Program.ctx) =
      (* A restarted worker re-enters here with a fresh body; whatever
         request it held when it crashed is redelivered (same attempt —
         a crash consumes no retry budget). *)
      if inflight_rid.(ctx.id) >= 0 then
        redeliver ~now:(Program.now ()) ~w:ctx.id;
      let rec take_ready () =
        match Queue.take_opt ready with
        | None -> None
        | Some r ->
            if Bytes.get status r.rid <> '\000' || attempt_cur.(r.rid) <> r.attempt
            then take_ready () (* stale: superseded or already resolved *)
            else Some r
      in
      let rec loop () =
        if !resolved < total then begin
          let now = Program.now () in
          if pol.deadline <> None then scan now;
          (match pol.hedge_after with
          | Some h -> hedge_scan h now
          | None -> ());
          drain now;
          match take_ready () with
          | None ->
              rescue now;
              Program.yield_noop ();
              loop ()
          | Some r ->
              let dispatch = now in
              inflight_rid.(ctx.id) <- r.rid;
              inflight_attempt.(ctx.id) <- r.attempt;
              inflight_since.(ctx.id) <- dispatch;
              exec_request ctx r;
              let fin = Program.now () in
              inflight_rid.(ctx.id) <- -1;
              if Bytes.get status r.rid = '\000' then begin
                Bytes.set status r.rid '\001';
                incr resolved;
                if attempt_cur.(r.rid) > 0 then incr retried_c else incr ok_c;
                let born = first_arrival.(r.rid) in
                Hdr.add latency (fin - born);
                Hdr.add service (fin - dispatch);
                Hdr.add queue_wait (dispatch - r.arrival);
                Hdr.add per_kind.(r.kind) (fin - born);
                if not is_open then schedule_next ~base:fin req_store.(r.rid);
                Program.complete ()
              end;
              loop ()
        end
      in
      loop ()
    in
    let program = if robust then program_robust else program_plain in
    let spec = { Sim.Executor.name = "load-shard"; memory; program } in
    let exec_config =
      let base =
        Sim.Executor.Config.(
          default
          |> with_seed (Workload.mix cfg.seed (shard + 0x10AD))
          |> with_max_steps cfg.max_steps)
      in
      if robust then Sim.Executor.Config.with_faults plan base else base
    in
    let r =
      Sim.Executor.exec ~config:exec_config ~scheduler:Sched.Scheduler.uniform
        ~n:cfg.workers ~stop:(Completions total) spec
    in
    let base_res =
      {
        (empty_result ~steps:(Sim.Metrics.time r.metrics)
           ~stopped_early:r.stopped_early)
        with
        max_queue_depth = !max_depth;
      }
    in
    if not robust then base_res
    else
      {
        base_res with
        outcomes =
          {
            Policy.ok = !ok_c;
            retried = !retried_c;
            retries = !retries_c;
            redelivered = !redelivered_c;
            hedges = !hedges_c;
            timed_out = !timedout_c;
            dropped = total - !resolved;
          };
        restarts = Array.fold_left ( + ) 0 r.restarts;
        spurious_cas = r.spurious_cas;
      }
    end
  end

let merge_shards cfg (shards : shard_result list) =
  let latency = Hdr.create () in
  let service = Hdr.create () in
  let queue_wait = Hdr.create () in
  let per_kind = List.map (fun k -> (k, Hdr.create ())) cfg.kinds in
  List.iter
    (fun (s : shard_result) ->
      Hdr.merge_into ~into:latency s.latency;
      Hdr.merge_into ~into:service s.service;
      Hdr.merge_into ~into:queue_wait s.queue_wait;
      List.iter2
        (fun (_, into) (_, src) -> Hdr.merge_into ~into src)
        per_kind s.per_kind)
    shards;
  {
    config = cfg;
    shards;
    requests =
      List.fold_left (fun acc (s : shard_result) -> acc + s.requests) 0 shards;
    offered =
      List.fold_left (fun acc (s : shard_result) -> acc + s.offered) 0 shards;
    steps_total =
      List.fold_left (fun acc (s : shard_result) -> acc + s.steps) 0 shards;
    steps_max =
      List.fold_left (fun acc (s : shard_result) -> max acc s.steps) 0 shards;
    stopped_early =
      List.exists (fun (s : shard_result) -> s.stopped_early) shards;
    latency;
    service;
    queue_wait;
    per_kind;
    outcomes =
      List.fold_left
        (fun acc (s : shard_result) -> Policy.add_counts acc s.outcomes)
        Policy.zero_counts shards;
    restarts =
      List.fold_left (fun acc (s : shard_result) -> acc + s.restarts) 0 shards;
    spurious_cas =
      List.fold_left
        (fun acc (s : shard_result) -> acc + s.spurious_cas)
        0 shards;
  }

let run ?pool cfg =
  (match validate cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Engine.run: " ^ msg));
  let shards =
    match pool with
    | Some p when cfg.shards > 1 ->
        Pool.run_init p cfg.shards (fun s -> run_shard cfg ~shard:s)
    | _ -> List.init cfg.shards (fun s -> run_shard cfg ~shard:s)
  in
  merge_shards cfg shards
