(** Degraded-mode gates: how much service quality a fault tier is
    allowed to cost.

    {!run} executes a matched pair — the given config fault-free and
    policy-free (the exact historical path) versus the same config
    under a {!Sched.Fault_plan.tier_rates} tier plus its policy — and
    gates throughput loss, p99/p999 latency inflation and drop rate
    against the tier's budgets.  Both legs are pure functions of the
    config, so the gates are as reproducible as the runs themselves.

    {!crash_check} is the theory anchor: a crash-only plan that kills
    workers [k..workers-1] at time 0 leaves [k] contenders, and the
    measured mean service-time ratio must track the Markov-chain
    prediction [W(k)/W(workers)] from
    {!Chains.Scu_chain.System.system_latency} — the same
    Theorem 4 / Corollary 2 degradation rows `repro chaos` prints. *)

type budgets = {
  max_throughput_loss : float;
      (** Faulted throughput ≥ (1 - this) × baseline. *)
  max_p99_inflation : float;  (** Faulted p99 ≤ this × baseline p99. *)
  max_p999_inflation : float;
  max_drop_rate : float;
      (** (timed_out + dropped) / offered ≤ this. *)
}

val budgets_for_tier : string -> budgets option
(** Budgets for [quick]/[standard]/[century]/[chaos] (the
    {!Sched.Fault_plan.tier_rates} names); [None] for anything else. *)

type t = {
  tier : string;
  baseline : Engine.result;
  faulted : Engine.result;
  gates : Check.Conform.gate list;
  passed : bool;
}

val run : ?pool:Pool.t -> tier:string -> Engine.config -> (t, string) result
(** Run the matched pair for [tier].  The baseline leg strips faults
    and policy from the config; the faulted leg runs the tier's rates
    (merged over any explicit base events already in the config) with
    the config's policy.  Errors on an unknown tier. *)

val crash_check : ?pool:Pool.t -> k:int -> Engine.config -> Check.Conform.gate list
(** Corollary 2 cross-check for the crash plan the engine injects
    (workers [k..workers-1] crashed at time 0).  Three gates:
    the raw saturated counter under that plan reproduces the chain's
    [W(k)] inter-completion gap (the exp_chaos cor2 rows); the
    engine's faulted shard matches a fault-free shard of [k] workers
    in mean service time (crashes only shrink the active set); and the
    faulted run loses nothing (crash-at-0 is rescued by redelivery).
    Requires [0 < k < workers]. *)
