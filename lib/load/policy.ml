(* Request deadline/retry/hedge policies for the load engine.  Pure
   data plus a deterministic backoff: everything the engine needs to
   react to faults without ever consulting wall clock or shared RNG
   state (the jitter stream is keyed by (seed, rid, attempt), so a
   retry's delay does not depend on when the expiry was noticed). *)

type t = {
  deadline : int option;
  max_retries : int;
  backoff_base : int;
  hedge_after : int option;
}

let default =
  { deadline = None; max_retries = 0; backoff_base = 16; hedge_after = None }

let is_none t = t.deadline = None && t.hedge_after = None

let validate t =
  if (match t.deadline with Some d -> d < 1 | None -> false) then
    Error "deadline must be at least 1 step"
  else if t.max_retries < 0 then Error "retries must be non-negative"
  else if t.backoff_base < 1 then Error "backoff base must be positive"
  else if (match t.hedge_after with Some h -> h < 1 | None -> false) then
    Error "hedge delay must be at least 1 step"
  else if t.max_retries > 0 && t.deadline = None then
    Error "retries need a deadline (nothing else triggers them)"
  else Stdlib.Ok ()

let backoff t ~seed ~rid ~attempt =
  let a = max 1 attempt in
  let exp = t.backoff_base * (1 lsl min 16 (a - 1)) in
  let rng =
    Stats.Rng.create ~seed:(Workload.mix (Workload.mix seed 0xBACC0FF) ((rid * 64) + a))
  in
  exp + Stats.Rng.int rng t.backoff_base

let to_string t =
  Printf.sprintf "deadline=%s retries=%d backoff=%d hedge=%s"
    (match t.deadline with None -> "none" | Some d -> string_of_int d)
    t.max_retries t.backoff_base
    (match t.hedge_after with None -> "none" | Some h -> string_of_int h)

type outcome = Ok | Retried of int | Timed_out | Dropped

type counts = {
  ok : int;
  retried : int;
  retries : int;
  redelivered : int;
  hedges : int;
  timed_out : int;
  dropped : int;
}

let zero_counts =
  {
    ok = 0;
    retried = 0;
    retries = 0;
    redelivered = 0;
    hedges = 0;
    timed_out = 0;
    dropped = 0;
  }

let add_counts a b =
  {
    ok = a.ok + b.ok;
    retried = a.retried + b.retried;
    retries = a.retries + b.retries;
    redelivered = a.redelivered + b.redelivered;
    hedges = a.hedges + b.hedges;
    timed_out = a.timed_out + b.timed_out;
    dropped = a.dropped + b.dropped;
  }

let completed c = c.ok + c.retried
let failed c = c.timed_out + c.dropped
let total c = completed c + failed c

let counts_to_string c =
  Printf.sprintf
    "ok=%d retried=%d (retries=%d redelivered=%d hedges=%d) timed_out=%d \
     dropped=%d"
    c.ok c.retried c.retries c.redelivered c.hedges c.timed_out c.dropped
