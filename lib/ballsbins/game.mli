(** The iterated balls-into-bins game of §6.1.3.

    One bin per process; every bin starts with one ball.  Each step
    throws a ball into a uniformly random bin.  When a bin first
    reaches three balls, the *phase* ends with a {e reset}: the
    three-ball bin goes back to one ball and every two-ball bin is
    emptied.

    The correspondence with the scan-validate component: a bin's ball
    count is 3 minus the steps its process still needs to complete
    (Read = 1 ball, CCAS = 2 balls, a successful CAS = 3 balls resets
    everyone who was about to CAS with the now-stale value to 0 balls
    = OldCAS).  A phase is the interval between two successful CASes,
    so the mean phase length is the system latency W.

    Lemma 8 bounds the phase length by
    O(min(n/√aᵢ, n/bᵢ^{1/3})); Lemma 9 shows the process stays in the
    "healthy" ranges (aᵢ ≥ n/c) almost always. *)

type t

type range =
  | First  (** aᵢ ∈ [n/3, n]. *)
  | Second  (** aᵢ ∈ [n/c, n/3). *)
  | Third  (** aᵢ ∈ [0, n/c). *)

type phase = {
  length : int;  (** Ball throws in this phase. *)
  a_start : int;  (** Bins with one ball at the phase start. *)
  b_start : int;  (** Bins with zero balls at the phase start. *)
  range : range;  (** Range of [a_start]. *)
}

val create : n:int -> t
(** All bins at one ball; requires n >= 1. *)

val n : t -> int

val counts : t -> int array
(** Current ball counts (each in 0..2 between phases). *)

val a : t -> int
(** Bins with exactly one ball. *)

val b : t -> int
(** Empty bins. *)

val range_of : ?c:int -> n:int -> int -> range
(** Range classification of an [a] value; [c] defaults to 10 (the
    paper takes c ≥ 10 in Claim 5). *)

val run_phase : ?c:int -> t -> rng:Stats.Rng.t -> phase
(** Throw until a reset fires, apply the reset, and report the phase. *)

val run : ?c:int -> t -> rng:Stats.Rng.t -> phases:int -> phase list

val mean_phase_length : t -> rng:Stats.Rng.t -> phases:int -> float
(** Convenience: average phase length over [phases] phases after a
    10%-of-phases warmup. *)
