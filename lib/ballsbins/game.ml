type t = { n : int; balls : int array }

type range = First | Second | Third

type phase = { length : int; a_start : int; b_start : int; range : range }

let create ~n =
  if n < 1 then invalid_arg "Game.create: n must be >= 1";
  { n; balls = Array.make n 1 }

let n t = t.n
let counts t = Array.copy t.balls

let count_eq t v =
  Array.fold_left (fun acc x -> if x = v then acc + 1 else acc) 0 t.balls

let a t = count_eq t 1
let b t = count_eq t 0

let range_of ?(c = 10) ~n a =
  if 3 * a >= n then First else if c * a >= n then Second else Third

let run_phase ?c t ~rng =
  let a_start = a t and b_start = b t in
  let range = range_of ?c ~n:t.n a_start in
  let rec throw len =
    let bin = Stats.Rng.int rng t.n in
    let v = t.balls.(bin) + 1 in
    if v < 3 then begin
      t.balls.(bin) <- v;
      throw (len + 1)
    end
    else begin
      (* Reset: winner back to one ball, all two-ball bins emptied. *)
      for k = 0 to t.n - 1 do
        if t.balls.(k) = 2 then t.balls.(k) <- 0
      done;
      t.balls.(bin) <- 1;
      len + 1
    end
  in
  let length = throw 0 in
  { length; a_start; b_start; range }

let run ?c t ~rng ~phases = List.init phases (fun _ -> run_phase ?c t ~rng)

let mean_phase_length t ~rng ~phases =
  let warmup = max 1 (phases / 10) in
  for _ = 1 to warmup do
    ignore (run_phase t ~rng)
  done;
  let acc = ref 0 in
  for _ = 1 to phases do
    acc := !acc + (run_phase t ~rng).length
  done;
  float_of_int !acc /. float_of_int phases
