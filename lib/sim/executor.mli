(** The discrete-time executor: ties a scheduler (Definition 1) to a
    set of simulated processes over a shared memory.

    Semantics, matching §2.1 of the paper exactly:
    - time is discrete; at each step the scheduler picks one alive
      process;
    - the picked process executes any amount of local computation plus
      exactly one shared-memory operation, then suspends;
    - crashed processes stop taking steps forever (crash containment
      holds because the alive set only shrinks);
    - a process whose body returns is *terminated*: it is removed from
      the alive set without counting as a crash.

    Determinism: a run is a pure function of (spec, scheduler state,
    seed), which the tests rely on. *)

type spec = {
  name : string;
  memory : Memory.t;
  program : Program.t;  (** Body run by every process. *)
}

type stop =
  | Steps of int  (** Run for exactly this many system steps. *)
  | Completions of int  (** …until this many total completions. *)
  | Per_process_completions of int
      (** …until every (never-crashed, live) process has completed
          this many operations — the maximal-progress stop used by the
          Theorem 3 experiments. *)

type result = {
  metrics : Metrics.t;
  trace : Sched.Trace.t option;
  crashed : bool array;
  terminated : bool array;
  stopped_early : bool;
      (** True when the run ended because no process was schedulable,
          a [Completions]-type target was unreachable, or [choose]
          returned [None]. *)
  pending : Memory.op option array;
      (** Each process's next shared-memory operation at the moment
          the run stopped ([None] once its body returned).  Crashed
          processes keep the operation they were suspended at.  The
          schedule explorer uses this to compute enabled transitions
          and operation independence at a frontier. *)
}

val run :
  ?seed:int ->
  ?trace:bool ->
  ?record_samples:bool ->
  ?crash_plan:Sched.Crash_plan.t ->
  ?max_steps:int ->
  ?invariant:(Memory.t -> time:int -> unit) ->
  ?invariant_interval:int ->
  ?choose:(alive:bool array -> time:int -> int option) ->
  scheduler:Sched.Scheduler.t ->
  n:int ->
  stop:stop ->
  spec ->
  result
(** [max_steps] (default 200_000_000) is a safety net for
    [Completions]-type stop conditions that might not be reached under
    an adversarial scheduler; hitting it sets [stopped_early].

    [invariant], when given, is called on the shared memory every
    [invariant_interval] steps (default 1000) and once after the run —
    raise from it to fail fast on a broken data-structure invariant
    *while it is being mutated*, not just at quiescence.  The callback
    must only inspect (its [Memory.t] is the live store).

    [choose], when given, takes precedence over [scheduler] at every
    step: it receives the live alive set (do not mutate it) and the
    current time, and must return [Some i] with [alive.(i)] to
    schedule process [i], or [None] to stop the run immediately
    (setting [stopped_early]).  This is the choice-point hook that
    lets the `repro check` explorer drive every scheduling decision
    deterministically and stop at an arbitrary frontier. *)
