(** The discrete-time executor: ties a scheduler (Definition 1) to a
    set of simulated processes over a shared memory.

    Semantics, matching §2.1 of the paper exactly:
    - time is discrete; at each step the scheduler picks one alive
      process;
    - the picked process executes any amount of local computation plus
      exactly one shared-memory operation, then suspends;
    - crashed processes stop taking steps (Definition 1's crash);
    - a process whose body returns is *terminated*: it is removed from
      the alive set without counting as a crash.

    Beyond Definition 1, a {!Sched.Fault_plan.t} can additionally
    schedule *recoveries* (a crashed process restarts with a fresh
    program body over the shared memory exactly as the crash left it),
    bounded *stall* windows (the process stays alive but is not
    schedulable for [d] steps), and per-process *spurious CAS failure*
    rates (LL/SC-style: a would-succeed CAS fails with probability r).
    A plan with none of these degenerates to the paper's model and the
    run is byte-identical to one without a fault plan.

    Determinism: a run is a pure function of (spec, scheduler state,
    seed, plans), which the tests rely on. *)

type spec = {
  name : string;
  memory : Memory.t;
  program : Program.t;  (** Body run by every process. *)
}

type stop =
  | Steps of int  (** Run for exactly this many system steps. *)
  | Completions of int  (** …until this many total completions. *)
  | Per_process_completions of int
      (** …until every (never-crashed, live) process has completed
          this many operations — the maximal-progress stop used by the
          Theorem 3 experiments. *)

type result = {
  metrics : Metrics.t;
  trace : Sched.Trace.t option;
  crashed : bool array;
  terminated : bool array;
  stopped_early : bool;
      (** True when the run ended because no process was schedulable,
          a [Completions]-type target was unreachable, or [choose]
          returned [None]. *)
  pending : Memory.op option array;
      (** Each process's next shared-memory operation at the moment
          the run stopped ([None] once its body returned).  Crashed
          processes keep the operation they were suspended at.  The
          schedule explorer uses this to compute enabled transitions
          and operation independence at a frontier. *)
  restarts : int array;
      (** How many times each process was crash-restarted by the fault
          plan (all zeros without [Restart] events). *)
  spurious_cas : int;
      (** Total would-succeed CAS steps spuriously failed by the fault
          plan's rates (0 without spurious rates). *)
}

val run :
  ?seed:int ->
  ?trace:bool ->
  ?record_samples:bool ->
  ?crash_plan:Sched.Crash_plan.t ->
  ?fault_plan:Sched.Fault_plan.t ->
  ?max_steps:int ->
  ?invariant:(Memory.t -> time:int -> unit) ->
  ?invariant_interval:int ->
  ?choose:(alive:bool array -> time:int -> int option) ->
  scheduler:Sched.Scheduler.t ->
  n:int ->
  stop:stop ->
  spec ->
  result
(** [max_steps] (default 200_000_000) is a safety net for
    [Completions]-type stop conditions that might not be reached under
    an adversarial scheduler; hitting it sets [stopped_early].

    [fault_plan] (default {!Sched.Fault_plan.none}) is merged with
    [crash_plan]; both are validated up front ([Invalid_argument] on a
    plan that names out-of-range processes or permanently crashes all
    [n]).  When every process is crashed or stalled but a stall expiry
    or a pending restart can make one schedulable again, the executor
    idles — time advances one tick per step with no process charged —
    rather than stopping early.  Fault events at time [t] fire before
    the step at time [t] is scheduled.

    [invariant], when given, is called on the shared memory every
    [invariant_interval] steps (default 1000) and once after the run —
    raise from it to fail fast on a broken data-structure invariant
    *while it is being mutated*, not just at quiescence.  The callback
    must only inspect (its [Memory.t] is the live store).

    [choose], when given, takes precedence over [scheduler] at every
    step: it receives the live alive set (do not mutate it) and the
    current time, and must return [Some i] with [alive.(i)] to
    schedule process [i], or [None] to stop the run immediately
    (setting [stopped_early]).  This is the choice-point hook that
    lets the `repro check` explorer drive every scheduling decision
    deterministically and stop at an arbitrary frontier. *)
