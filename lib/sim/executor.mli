(** The discrete-time executor: ties a scheduler (Definition 1) to a
    set of simulated processes over a shared memory.

    Semantics, matching §2.1 of the paper exactly:
    - time is discrete; at each step the scheduler picks one alive
      process;
    - the picked process executes any amount of local computation plus
      exactly one shared-memory operation, then suspends;
    - crashed processes stop taking steps (Definition 1's crash);
    - a process whose body returns is *terminated*: it is removed from
      the alive set without counting as a crash.

    Beyond Definition 1, a {!Sched.Fault_plan.t} can additionally
    schedule *recoveries* (a crashed process restarts with a fresh
    program body over the shared memory exactly as the crash left it),
    bounded *stall* windows (the process stays alive but is not
    schedulable for [d] steps), and per-process *spurious CAS failure*
    rates (LL/SC-style: a would-succeed CAS fails with probability r).
    A plan with none of these degenerates to the paper's model and the
    run is byte-identical to one without a fault plan.

    Two entry points share these semantics and one {!Config.t}:

    - {!exec} runs an effect-based {!spec} (a closure body suspended
      at each shared-memory step) — maximally expressive, pays effect
      dispatch and a continuation allocation per step;
    - {!exec_compiled} runs a {!Compile.spec} (a flat int-coded
      instruction array) in a tight loop with no per-step allocation,
      and batches scheduler draws when the alive set provably cannot
      change.  For the same seed and configuration, running a program
      through [exec] (via {!Compile.to_program}) and through
      [exec_compiled] produces byte-identical {!result}s — the
      differential test suite pins this.

    Determinism: a run is a pure function of (spec, scheduler state,
    configuration), which the tests rely on. *)

type spec = {
  name : string;
  memory : Memory.t;
  program : Program.t;  (** Body run by every process. *)
}

type stop =
  | Steps of int  (** Run for exactly this many system steps. *)
  | Completions of int  (** …until this many total completions. *)
  | Per_process_completions of int
      (** …until every (never-crashed, live) process has completed
          this many operations — the maximal-progress stop used by the
          Theorem 3 experiments. *)

type result = {
  metrics : Metrics.t;
  trace : Sched.Trace.t option;
  crashed : bool array;
  terminated : bool array;
  stopped_early : bool;
      (** True when the run ended because no process was schedulable,
          a [Completions]-type target was unreachable, or the choice
          hook returned [None]. *)
  pending : Memory.op option array;
      (** Each process's next shared-memory operation at the moment
          the run stopped ([None] once its body returned).  Crashed
          processes keep the operation they were suspended at.  The
          schedule explorer uses this to compute enabled transitions
          and operation independence at a frontier. *)
  restarts : int array;
      (** How many times each process was crash-restarted by the fault
          plan (all zeros without [Restart] events). *)
  spurious_cas : int;
      (** Total would-succeed CAS steps spuriously failed by the fault
          plan's rates (0 without spurious rates). *)
}

(** Run configuration, shared by {!exec} and {!exec_compiled}.

    Build one by piping {!Config.default} through the [with_*]
    combinators:
    {[
      Executor.Config.(
        default |> with_seed 42 |> with_faults plan |> with_trace true)
    ]} *)
module Config : sig
  type t = {
    seed : int;  (** RNG seed for scheduler and per-process streams. *)
    trace : bool;  (** Record the schedule (sequence of picked ids). *)
    record_samples : bool;  (** Keep raw latency gaps, not just summaries. *)
    fault_plan : Sched.Fault_plan.t;
    max_steps : int;
        (** Safety net for [Completions]-type stop conditions that
            might never be reached under an adversarial scheduler;
            hitting it sets [stopped_early]. *)
    invariant : (Memory.t -> time:int -> unit) option;
        (** Called on the shared memory every [invariant_interval]
            steps and once after the run — raise from it to fail fast
            on a broken data-structure invariant *while it is being
            mutated*, not just at quiescence.  Must only inspect (its
            [Memory.t] is the live store). *)
    invariant_interval : int;
    choose : (alive:bool array -> time:int -> int option) option;
        (** When set, takes precedence over the scheduler at every
            step: receives the live alive set (do not mutate it) and
            the current time, and must return [Some i] with
            [alive.(i)] to schedule process [i], or [None] to stop the
            run immediately (setting [stopped_early]).  This is the
            choice-point hook that lets the `repro check` explorer
            drive every scheduling decision deterministically and stop
            at an arbitrary frontier. *)
  }

  val default : t
  (** seed [0xC0FFEE], no trace, no samples, no faults, max_steps
      2·10⁸, no invariant (interval 1000), no choice hook. *)

  val with_seed : int -> t -> t
  val with_trace : bool -> t -> t
  val with_samples : bool -> t -> t
  val with_faults : Sched.Fault_plan.t -> t -> t
  val with_max_steps : int -> t -> t

  val with_invariant :
    ?interval:int -> (Memory.t -> time:int -> unit) -> t -> t
  (** [interval] defaults to the configuration's current
      [invariant_interval]. *)

  val with_choose : (alive:bool array -> time:int -> int option) -> t -> t
end

val exec :
  ?config:Config.t ->
  scheduler:Sched.Scheduler.t ->
  n:int ->
  stop:stop ->
  spec ->
  result
(** Run an effect-based spec under [config] (default
    {!Config.default}).  Raises [Invalid_argument] on [n <= 0], an
    [invariant_interval < 1], or a fault plan that names out-of-range
    processes or permanently crashes all [n].  When every process is
    crashed or stalled but a stall expiry or a pending restart can
    make one schedulable again, the executor idles — time advances one
    tick per step with no process charged — rather than stopping
    early.  Fault events at time [t] fire before the step at time [t]
    is scheduled. *)

val exec_compiled :
  ?config:Config.t ->
  scheduler:Sched.Scheduler.t ->
  n:int ->
  stop:stop ->
  Compile.spec ->
  result
(** Like {!exec} but for a compiled instruction program, run by a
    tight dispatch loop: preallocated int-array registers and pcs, no
    per-step closure or effect, shared-memory operations inlined over
    the raw cell array.  When the configuration has no choice hook and
    no faults, the scheduler supports batched draws
    ({!Sched.Scheduler.t.fill}) and the program cannot halt, scheduler
    picks are drawn [8192] at a time — the alive set provably cannot
    change, so the stream is identical to per-step picks.  All
    semantics (fault events, stalls, spurious CAS, idle ticks,
    invariant cadence, choice hook) are exactly {!exec}'s. *)

val fingerprint : result -> string
(** Exact textual rendering of everything observable in a result —
    {!Metrics.fingerprint} plus crash/termination flags, pending
    operations, restart counts, spurious-CAS count and (when recorded)
    the full trace.  Two runs agree observationally iff their
    fingerprints are equal; the interpreter-vs-compiled differential
    suite compares these. *)
