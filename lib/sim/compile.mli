(** Flat int-coded instruction programs for the executor's tight loop.

    The effect-based {!Program.t} representation is maximally flexible
    — a process body is an arbitrary OCaml closure suspended at each
    shared-memory step — but it pays for that flexibility on every
    simulated step: an effect performance, a heap-allocated one-shot
    continuation, and closure dispatch.  For the long stochastic runs
    the paper's figures need (10^6–10^8 steps per cell), that dispatch
    dominates.

    This module defines a tiny register machine that captures the
    paper's step model exactly — a step is one shared-memory operation
    plus any number of local computations — as data rather than
    closures.  A program is assembled from a list of {!instr} into a
    flat [int array] of 4-slot words; the executor
    ({!Executor.exec_compiled}) runs it in a loop with no per-step
    allocation.  {!to_program} interprets the same code through the
    effect path, so every compiled kernel also runs on the legacy
    interpreter; the differential harness asserts the two never
    diverge, which is how the 10x rewrite keeps its byte-identity
    guarantee.

    Register machine: {!nregs} int registers per process, all zero at
    start (and after a crash restart).  Register 0 additionally
    receives the result of every shared-memory operation.  Branch
    targets are string labels resolved at assembly. *)

val nregs : int
(** Registers per process (8).  Register 0 is the shared-op result
    register. *)

module Op : sig
  val read : int
  val write : int
  val cas : int
  val cas_get : int
  val faa : int

  val last_shared : int
  (** Opcodes [<= last_shared] are the shared-memory (suspension-point)
      instructions; everything above is local. *)

  val halt : int
  val complete : int
  val loadi : int
  val mov : int
  val addi : int
  val add : int
  val sub : int
  val jmp : int
  val beq : int
  val bne : int
  val blt : int
  val rand : int
  val now : int
  val pid : int
  val nproc : int
  val alloc : int

  val count : int
  (** Number of opcodes (valid opcodes are [0, count)). *)
end
(** The opcode numbering.  Stable by construction: the executor's
    dispatch loop and the encoding-pinning tests both assert it. *)

type reg = int
(** Register index in [0, nregs). *)

type instr =
  | Label of string  (** Branch target; emits no code. *)
  | Read of reg  (** r0 <- mem\[r_a\] (one shared step). *)
  | Write of reg * reg  (** mem\[r_a\] <- r_v; r0 <- r_v (shared). *)
  | Cas of reg * reg * reg
      (** CAS mem\[r_a\]: r_e -> r_v; r0 <- 1 on success else 0
          (shared). *)
  | Cas_get of reg * reg * reg
      (** CAS returning the witnessed value in r0 (shared). *)
  | Faa of reg * reg  (** Fetch-and-add r_d to mem\[r_a\]; r0 <- old (shared). *)
  | Halt  (** Stop this process for good (it leaves the alive set). *)
  | Complete  (** Record an operation completion ({!Program.complete}). *)
  | Complete_method of int
      (** Completion attributed to a method id ({!Program.complete_method}). *)
  | Loadi of reg * int  (** r_d <- imm. *)
  | Mov of reg * reg  (** r_d <- r_s. *)
  | Addi of reg * reg * int  (** r_d <- r_s + imm. *)
  | Add of reg * reg * reg  (** r_d <- r_s + r_t. *)
  | Sub of reg * reg * reg  (** r_d <- r_s - r_t. *)
  | Jmp of string
  | Beq of reg * reg * string  (** Branch if r_s = r_t. *)
  | Bne of reg * reg * string
  | Blt of reg * reg * string  (** Branch if r_s < r_t. *)
  | Rand of reg * int
      (** r_d <- uniform draw in [0, bound) from the process's own RNG
          — the same per-process stream the effect path's
          [ctx.rng] exposes, so compiled and interpreted runs consume
          identical randomness. *)
  | Now of reg  (** r_d <- current simulated time. *)
  | Pid of reg  (** r_d <- this process's id. *)
  | Nproc of reg  (** r_d <- number of processes. *)
  | Alloc of reg * int
      (** r_d <- address of a fresh [size]-cell block (local step:
          allocation is simulation bookkeeping, not a shared-memory
          operation, matching [Memory.alloc] use in closure bodies). *)

type code = private {
  code : int array;  (** 4 slots per instruction word: opcode, a, b, c. *)
  has_halt : bool;
      (** Whether the program can stop (reach an explicit or the
          implicit trailing [Halt]).  When false the alive set can
          only shrink through faults, which is what licenses batched
          scheduler draws in the compiled executor. *)
  shared_ops : int;  (** Count of shared-memory instruction words. *)
}

val assemble : instr list -> code
(** Resolve labels and encode.  An implicit [Halt] is appended so a
    body may fall off the end.  Raises [Invalid_argument] on an empty
    program, a register out of range, a duplicate or unknown label, a
    non-positive [Rand] bound or [Alloc] size, or a negative method
    id. *)

val word_count : code -> int
(** Number of encoded instruction words (including the implicit
    trailing halt). *)

type spec = { name : string; memory : Memory.t; code : code }
(** A compiled counterpart of {!Spec.t}: every process runs [code]
    against [memory].  (Per-process behaviour differentiates via
    [Pid]/[Rand], exactly as closure bodies differentiate via
    [ctx].) *)

val to_program : memory:Memory.t -> code -> Program.t
(** Reference semantics: interpret the code through the effect-based
    {!Program.t} path.  [Executor.exec] on [to_program ~memory code]
    and [Executor.exec_compiled] on [code] must produce byte-identical
    results for identical configurations — the differential test suite
    enforces this. *)

val disassemble : code -> string
(** Human-readable listing, one instruction word per line (for tests
    and debugging). *)
