type t = {
  n : int;
  mutable time : int;
  steps_by : int array;
  completions : int array;
  last_completion_time : int array;
  last_completion_ownsteps : int array;
  individual_gap : Stats.Summary.t array;
  own_step_gap : Stats.Summary.t array;
  system_gap : Stats.Summary.t;
  mutable last_any_completion : int;
  system_samples : Stats.Vec.Float.t option;
  individual_samples : Stats.Vec.Float.t array option;
  (* Per-method accounting, keyed by the method id passed to
     [Program.complete_method]. *)
  method_completions : (int, int array) Hashtbl.t;
  method_gap : (int, Stats.Summary.t) Hashtbl.t;
  method_last : (int, int) Hashtbl.t;
}

let create ?(record_samples = false) ~n () =
  {
    n;
    time = 0;
    steps_by = Array.make n 0;
    completions = Array.make n 0;
    last_completion_time = Array.make n (-1);
    last_completion_ownsteps = Array.make n (-1);
    individual_gap = Array.init n (fun _ -> Stats.Summary.create ());
    own_step_gap = Array.init n (fun _ -> Stats.Summary.create ());
    system_gap = Stats.Summary.create ();
    last_any_completion = -1;
    system_samples = (if record_samples then Some (Stats.Vec.Float.create ()) else None);
    individual_samples =
      (if record_samples then Some (Array.init n (fun _ -> Stats.Vec.Float.create ()))
       else None);
    method_completions = Hashtbl.create 4;
    method_gap = Hashtbl.create 4;
    method_last = Hashtbl.create 4;
  }

let n t = t.n

let on_step t i =
  t.time <- t.time + 1;
  t.steps_by.(i) <- t.steps_by.(i) + 1

let tick t = t.time <- t.time + 1

let on_complete t i =
  t.completions.(i) <- t.completions.(i) + 1;
  (* Gaps are measured between *consecutive* completions, so the warmup
     interval before the first completion is excluded. *)
  if t.last_completion_time.(i) >= 0 then begin
    let gap = float_of_int (t.time - t.last_completion_time.(i)) in
    Stats.Summary.add t.individual_gap.(i) gap;
    Option.iter (fun a -> Stats.Vec.Float.push a.(i) gap) t.individual_samples
  end;
  if t.last_completion_ownsteps.(i) >= 0 then
    Stats.Summary.add t.own_step_gap.(i)
      (float_of_int (t.steps_by.(i) - t.last_completion_ownsteps.(i)));
  t.last_completion_time.(i) <- t.time;
  t.last_completion_ownsteps.(i) <- t.steps_by.(i);
  if t.last_any_completion >= 0 then begin
    let gap = float_of_int (t.time - t.last_any_completion) in
    Stats.Summary.add t.system_gap gap;
    Option.iter (fun v -> Stats.Vec.Float.push v gap) t.system_samples
  end;
  t.last_any_completion <- t.time

let on_complete_method t i m =
  on_complete t i;
  let counts =
    match Hashtbl.find_opt t.method_completions m with
    | Some a -> a
    | None ->
        let a = Array.make t.n 0 in
        Hashtbl.replace t.method_completions m a;
        a
  in
  counts.(i) <- counts.(i) + 1;
  let gaps =
    match Hashtbl.find_opt t.method_gap m with
    | Some s -> s
    | None ->
        let s = Stats.Summary.create () in
        Hashtbl.replace t.method_gap m s;
        s
  in
  (match Hashtbl.find_opt t.method_last m with
  | Some last -> Stats.Summary.add gaps (float_of_int (t.time - last))
  | None -> ());
  Hashtbl.replace t.method_last m t.time

let methods t =
  List.sort compare (Hashtbl.fold (fun m _ acc -> m :: acc) t.method_completions [])

let method_completions t ~method_ =
  match Hashtbl.find_opt t.method_completions method_ with
  | Some a -> Array.copy a
  | None -> Array.make t.n 0

let method_system_latency t ~method_ =
  match Hashtbl.find_opt t.method_gap method_ with
  | Some s -> s
  | None -> Stats.Summary.create ()

let time t = t.time
let set_time t time = t.time <- time
let steps_array t = t.steps_by
let steps_of t i = t.steps_by.(i)
let completions_of t i = t.completions.(i)
let total_completions t = Array.fold_left ( + ) 0 t.completions
let system_latency t = t.system_gap
let individual_latency t i = t.individual_gap.(i)
let own_step_latency t i = t.own_step_gap.(i)

let completion_rate t =
  if t.time = 0 then 0. else float_of_int (total_completions t) /. float_of_int t.time

let mean_system_latency t = Stats.Summary.mean t.system_gap
let mean_individual_latency t i = Stats.Summary.mean t.individual_gap.(i)

let fairness_ratio t =
  let acc = ref 0. and count = ref 0 in
  for i = 0 to t.n - 1 do
    let m = Stats.Summary.mean t.individual_gap.(i) in
    if not (Float.is_nan m) then begin
      acc := !acc +. m;
      incr count
    end
  done;
  if !count = 0 then nan
  else
    let avg_individual = !acc /. float_of_int !count in
    avg_individual /. (float_of_int t.n *. mean_system_latency t)

(* Exact (hex-float) rendering of every observable statistic, for the
   interpreter-vs-compiled differential harness: two runs agree iff
   their fingerprints are equal strings. *)
let summary_fp s =
  Printf.sprintf "%d:%h:%h:%h"
    (Stats.Summary.count s) (Stats.Summary.total s) (Stats.Summary.min s)
    (Stats.Summary.max s)

let fingerprint t =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "time=%d" t.time;
  let ints label a =
    add ";%s=" label;
    Array.iter (fun v -> add "%d," v) a
  in
  ints "steps" t.steps_by;
  ints "comp" t.completions;
  ints "lct" t.last_completion_time;
  ints "lco" t.last_completion_ownsteps;
  add ";lac=%d" t.last_any_completion;
  add ";sys=%s" (summary_fp t.system_gap);
  add ";ind=";
  Array.iter (fun s -> add "%s|" (summary_fp s)) t.individual_gap;
  add ";own=";
  Array.iter (fun s -> add "%s|" (summary_fp s)) t.own_step_gap;
  List.iter
    (fun m ->
      add ";m%d=" m;
      (match Hashtbl.find_opt t.method_completions m with
      | Some a -> Array.iter (fun v -> add "%d," v) a
      | None -> ());
      (match Hashtbl.find_opt t.method_gap m with
      | Some s -> add "g%s" (summary_fp s)
      | None -> ());
      match Hashtbl.find_opt t.method_last m with
      | Some l -> add "l%d" l
      | None -> ())
    (methods t);
  (match t.system_samples with
  | None -> ()
  | Some v ->
      add ";ssamp=";
      Array.iter (fun x -> add "%h," x) (Stats.Vec.Float.to_array v));
  (match t.individual_samples with
  | None -> ()
  | Some a ->
      add ";isamp=";
      Array.iter
        (fun v ->
          Array.iter (fun x -> add "%h," x) (Stats.Vec.Float.to_array v);
          add "|")
        a);
  Buffer.contents buf

let system_samples t =
  match t.system_samples with None -> [||] | Some v -> Stats.Vec.Float.to_array v

let individual_samples t i =
  match t.individual_samples with
  | None -> [||]
  | Some a -> Stats.Vec.Float.to_array a.(i)
