type ctx = { id : int; n : int; rng : Stats.Rng.t }
type t = ctx -> unit

type _ Effect.t +=
  | Step : Memory.op -> int Effect.t
  | Complete : int option -> unit Effect.t
  | Now : int Effect.t

let step op = Effect.perform (Step op)
let read a = step (Memory.Read a)
let write a v = ignore (step (Memory.Write (a, v)))
let cas a ~expected ~value = step (Memory.Cas (a, expected, value)) = 1
let cas_get a ~expected ~value = step (Memory.Cas_get (a, expected, value))
let faa a d = step (Memory.Faa (a, d))
let complete () = Effect.perform (Complete None)
let complete_method m = Effect.perform (Complete (Some m))
let now () = Effect.perform Now

let yield_noop () = ignore (step (Memory.Read Memory.scratch))
