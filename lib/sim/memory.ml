type t = {
  mutable cells : int array;
  mutable used : int;
  mutable fault_hook : (op -> bool) option;
}

and op =
  | Read of int
  | Write of int * int
  | Cas of int * int * int
  | Cas_get of int * int * int
  | Faa of int * int

let scratch = 1

let create ?(capacity = 64) () =
  (* Cell 0 is the (invalid) null pointer; cell 1 is the scratch cell
     read by no-op steps. *)
  { cells = Array.make (max capacity 2) 0; used = 2; fault_hook = None }

let ensure t needed =
  if needed > Array.length t.cells then begin
    let cap = ref (Array.length t.cells) in
    while !cap < needed do
      cap := !cap * 2
    done;
    let bigger = Array.make !cap 0 in
    Array.blit t.cells 0 bigger 0 t.used;
    t.cells <- bigger
  end

let alloc t ~size =
  if size <= 0 then invalid_arg "Memory.alloc: size must be positive";
  let base = t.used in
  ensure t (t.used + size);
  t.used <- t.used + size;
  base

let alloc_init t values =
  let base = alloc t ~size:(Array.length values) in
  Array.blit values 0 t.cells base (Array.length values);
  base

let check t a =
  if a < 1 || a >= t.used then
    invalid_arg (Printf.sprintf "Memory: address %d out of bounds (used=%d)" a t.used)

let apply t op =
  match op with
  | Read a ->
      check t a;
      t.cells.(a)
  | Write (a, v) ->
      check t a;
      t.cells.(a) <- v;
      v
  | Cas (a, expected, v) ->
      check t a;
      if t.cells.(a) = expected then begin
        t.cells.(a) <- v;
        1
      end
      else 0
  | Cas_get (a, expected, v) ->
      check t a;
      let old = t.cells.(a) in
      if old = expected then t.cells.(a) <- v;
      old
  | Faa (a, d) ->
      check t a;
      let old = t.cells.(a) in
      t.cells.(a) <- old + d;
      old

type outcome = Applied of int | Denied

let set_fault_hook t hook = t.fault_hook <- hook

(* Spurious CAS failure (LL/SC-style): the hook is consulted only on a
   [Cas]/[Cas_get] that *would* succeed; returning true denies it.  A
   denied [Cas] simply reports failure (0) — indistinguishable in-band
   from a real mismatch, exactly like a weak CAS.  A denied [Cas_get]
   cannot signal failure in-band (success is "returned value equals
   expected", and fabricating another value could be misread as a live
   pointer), so it returns [Denied]: the executor consumes the step
   without resuming the process, which transparently retries the same
   operation — the LL/SC retry loop, one step per attempt. *)
let apply_faulty t op =
  match t.fault_hook with
  | None -> Applied (apply t op)
  | Some hook -> (
      match op with
      | Cas (a, expected, _) ->
          check t a;
          if t.cells.(a) = expected && hook op then Applied 0
          else Applied (apply t op)
      | Cas_get (a, expected, _) ->
          check t a;
          if t.cells.(a) = expected && hook op then Denied
          else Applied (apply t op)
      | Read _ | Write _ | Faa _ -> Applied (apply t op))

let get t a =
  check t a;
  t.cells.(a)

let set t a v =
  check t a;
  t.cells.(a) <- v

let used t = t.used
let cells t = t.cells

let snapshot t = Array.sub t.cells 0 t.used

let op_to_string = function
  | Read a -> Printf.sprintf "read(%d)" a
  | Write (a, v) -> Printf.sprintf "write(%d,%d)" a v
  | Cas (a, e, v) -> Printf.sprintf "cas(%d,%d,%d)" a e v
  | Cas_get (a, e, v) -> Printf.sprintf "cas_get(%d,%d,%d)" a e v
  | Faa (a, d) -> Printf.sprintf "faa(%d,%d)" a d
