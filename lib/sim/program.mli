(** Processes as effectful coroutines.

    A simulated process is ordinary OCaml code that performs the
    [Step] effect once per shared-memory operation; the executor's
    handler suspends it there, so one scheduler decision = one shared
    memory access, exactly the paper's step-counting model ("in a time
    unit, a process can perform any number of local computations …
    after which it issues a step, which consists of a single shared
    memory operation", §2.1).

    [Complete] marks a method-call boundary: it costs no step and
    feeds the latency metrics. *)

type ctx = {
  id : int;  (** This process's index, 0-based. *)
  n : int;  (** Total number of processes. *)
  rng : Stats.Rng.t;  (** Private per-process randomness. *)
}

type t = ctx -> unit
(** A process body.  Typically an infinite loop of operations; it may
    also return after finitely many, after which the executor treats
    the process as terminated (no longer schedulable). *)

type _ Effect.t +=
  | Step : Memory.op -> int Effect.t
  | Complete : int option -> unit Effect.t
        (** Operation boundary, optionally tagged with a method id
            (push/pop, enqueue/dequeue, …) for per-method latency
            accounting — the paper's §8 asks about objects exporting
            several distinct methods. *)
  | Now : int Effect.t
        (** Current logical time (system steps so far).  Free:
            instrumentation, not a simulated step. *)

val step : Memory.op -> int
(** Issue one shared-memory operation and suspend until scheduled. *)

val read : int -> int
val write : int -> int -> unit
val cas : int -> expected:int -> value:int -> bool
val cas_get : int -> expected:int -> value:int -> int
val faa : int -> int -> int

val complete : unit -> unit
(** Mark the end of a method call (free; see module doc). *)

val complete_method : int -> unit
(** Like {!complete}, additionally tagging the completed call with a
    method id for {!Metrics} per-method statistics. *)

val now : unit -> int
(** Logical time (zero-cost): used to timestamp operation invocations
    and responses when extracting linearizability-checkable histories
    from a simulation. *)

val yield_noop : unit -> unit
(** Burn one step on a harmless read of the null cell — used to model
    preamble work whose content does not matter (the [q] "parallel
    code" steps of Algorithm 4 and the SCU preamble). *)
