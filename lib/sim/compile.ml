(* Program compilation: a flat int-coded instruction set executed by
   the executor's tight loop (Executor.exec_compiled) with no per-step
   closure dispatch, effect continuations, or allocation.

   A compiled program is an [int array] of 4-slot instruction words
   [| opcode; a; b; c |].  Each process owns a small register file
   ([nregs] ints); register 0 receives the result of every
   shared-memory operation.  Shared-memory opcodes are the suspension
   points: a process parks with its pc at a shared opcode, the
   scheduler picks it, the operation applies, and the executor then
   runs the following *local* opcodes (arithmetic, branches,
   completions) inline until the next shared opcode or [halt] — exactly
   the paper's "any number of local computations plus one shared
   memory operation" step model, and exactly what the effect-handler
   interpreter does with closures.

   [to_program] interprets the same code through the classic
   effect-based [Program.t] path, so any compiled kernel can also run
   on the legacy interpreter — that pairing is what the differential
   harness (Check.Differential) exercises for byte-equality. *)

let nregs = 8

(* Opcodes.  Shared-memory ones come first so [is_shared] is a single
   compare. *)
let op_read = 0
let op_write = 1
let op_cas = 2
let op_cas_get = 3
let op_faa = 4
let last_shared = op_faa
let op_halt = 5
let op_complete = 6 (* a = method id, -1 for a plain completion *)
let op_loadi = 7
let op_mov = 8
let op_addi = 9
let op_add = 10
let op_sub = 11
let op_jmp = 12
let op_beq = 13
let op_bne = 14
let op_blt = 15
let op_rand = 16
let op_now = 17
let op_pid = 18
let op_nproc = 19
let op_alloc = 20
let op_count = 21

let is_shared opcode = opcode <= last_shared

module Op = struct
  let read = op_read
  let write = op_write
  let cas = op_cas
  let cas_get = op_cas_get
  let faa = op_faa
  let last_shared = last_shared
  let halt = op_halt
  let complete = op_complete
  let loadi = op_loadi
  let mov = op_mov
  let addi = op_addi
  let add = op_add
  let sub = op_sub
  let jmp = op_jmp
  let beq = op_beq
  let bne = op_bne
  let blt = op_blt
  let rand = op_rand
  let now = op_now
  let pid = op_pid
  let nproc = op_nproc
  let alloc = op_alloc
  let count = op_count
end

type reg = int

type instr =
  | Label of string
  | Read of reg
  | Write of reg * reg
  | Cas of reg * reg * reg
  | Cas_get of reg * reg * reg
  | Faa of reg * reg
  | Halt
  | Complete
  | Complete_method of int
  | Loadi of reg * int
  | Mov of reg * reg
  | Addi of reg * reg * int
  | Add of reg * reg * reg
  | Sub of reg * reg * reg
  | Jmp of string
  | Beq of reg * reg * string
  | Bne of reg * reg * string
  | Blt of reg * reg * string
  | Rand of reg * int
  | Now of reg
  | Pid of reg
  | Nproc of reg
  | Alloc of reg * int

type code = {
  code : int array;  (** 4 slots per instruction word. *)
  has_halt : bool;
      (** Whether any reachable-by-encoding [halt] exists (including
          the implicit trailing one only if a body can fall through to
          it).  Conservative: used to decide when batched scheduler
          draws are safe, so [true] only disables an optimization. *)
  shared_ops : int;  (** Number of shared-memory instruction words. *)
}

let word_count c = Array.length c.code / 4

let check_reg ctx r =
  if r < 0 || r >= nregs then
    invalid_arg
      (Printf.sprintf "Compile.assemble: %s: register %d out of range (0..%d)"
         ctx r (nregs - 1))

let assemble instrs =
  if instrs = [] then invalid_arg "Compile.assemble: empty program";
  (* Pass 1: label addresses (in instruction words). *)
  let labels = Hashtbl.create 16 in
  let words = ref 0 in
  List.iter
    (fun i ->
      match i with
      | Label l ->
          if Hashtbl.mem labels l then
            invalid_arg ("Compile.assemble: duplicate label " ^ l)
          else Hashtbl.add labels l !words
      | _ -> incr words)
    instrs;
  let resolve ctx l =
    match Hashtbl.find_opt labels l with
    | Some w -> w
    | None -> invalid_arg (Printf.sprintf "Compile.assemble: %s: unknown label %s" ctx l)
  in
  (* Pass 2: emit, with an implicit trailing halt so a body may fall
     off the end. *)
  let out = Array.make ((!words + 1) * 4) 0 in
  let cursor = ref 0 in
  let explicit_halt = ref false in
  let falls_through = ref true in
  let shared = ref 0 in
  let emit opcode a b c =
    let base = !cursor * 4 in
    out.(base) <- opcode;
    out.(base + 1) <- a;
    out.(base + 2) <- b;
    out.(base + 3) <- c;
    if is_shared opcode then incr shared;
    falls_through := opcode <> op_halt && opcode <> op_jmp;
    incr cursor
  in
  List.iter
    (fun i ->
      match i with
      | Label _ -> ()
      | Read a ->
          check_reg "read" a;
          emit op_read a 0 0
      | Write (a, v) ->
          check_reg "write" a;
          check_reg "write" v;
          emit op_write a v 0
      | Cas (a, e, v) ->
          check_reg "cas" a;
          check_reg "cas" e;
          check_reg "cas" v;
          emit op_cas a e v
      | Cas_get (a, e, v) ->
          check_reg "cas_get" a;
          check_reg "cas_get" e;
          check_reg "cas_get" v;
          emit op_cas_get a e v
      | Faa (a, d) ->
          check_reg "faa" a;
          check_reg "faa" d;
          emit op_faa a d 0
      | Halt ->
          explicit_halt := true;
          emit op_halt 0 0 0
      | Complete -> emit op_complete (-1) 0 0
      | Complete_method m ->
          if m < 0 then invalid_arg "Compile.assemble: negative method id";
          emit op_complete m 0 0
      | Loadi (d, imm) ->
          check_reg "loadi" d;
          emit op_loadi d imm 0
      | Mov (d, s) ->
          check_reg "mov" d;
          check_reg "mov" s;
          emit op_mov d s 0
      | Addi (d, s, imm) ->
          check_reg "addi" d;
          check_reg "addi" s;
          emit op_addi d s imm
      | Add (d, s, t) ->
          check_reg "add" d;
          check_reg "add" s;
          check_reg "add" t;
          emit op_add d s t
      | Sub (d, s, t) ->
          check_reg "sub" d;
          check_reg "sub" s;
          check_reg "sub" t;
          emit op_sub d s t
      | Jmp l -> emit op_jmp (resolve "jmp" l) 0 0
      | Beq (s, t, l) ->
          check_reg "beq" s;
          check_reg "beq" t;
          emit op_beq s t (resolve "beq" l)
      | Bne (s, t, l) ->
          check_reg "bne" s;
          check_reg "bne" t;
          emit op_bne s t (resolve "bne" l)
      | Blt (s, t, l) ->
          check_reg "blt" s;
          check_reg "blt" t;
          emit op_blt s t (resolve "blt" l)
      | Rand (d, bound) ->
          check_reg "rand" d;
          if bound <= 0 then
            invalid_arg "Compile.assemble: rand bound must be positive";
          emit op_rand d bound 0
      | Now d ->
          check_reg "now" d;
          emit op_now d 0 0
      | Pid d ->
          check_reg "pid" d;
          emit op_pid d 0 0
      | Nproc d ->
          check_reg "nproc" d;
          emit op_nproc d 0 0
      | Alloc (d, size) ->
          check_reg "alloc" d;
          if size <= 0 then
            invalid_arg "Compile.assemble: alloc size must be positive";
          emit op_alloc d size 0)
    instrs;
  (* Branch targets can point one past the last explicit word (a label
     at the very end) — that is the implicit halt, which is valid. *)
  let reaches_implicit = !falls_through || Hashtbl.fold (fun _ w acc -> acc || w = !words) labels false in
  emit op_halt 0 0 0;
  {
    code = out;
    has_halt = !explicit_halt || reaches_implicit;
    shared_ops = !shared;
  }

type spec = { name : string; memory : Memory.t; code : code }

(* Reference semantics: the same code run through the effect-based
   [Program.t] path.  Kept deliberately naive — it IS the old
   interpreter's view of the program, and the differential harness
   asserts the tight loop never diverges from it. *)
let to_program ~memory (c : code) : Program.t =
 fun (ctx : Program.ctx) ->
  let code = c.code in
  let len = Array.length code in
  let regs = Array.make nregs 0 in
  let pc = ref 0 in
  let running = ref true in
  while !running do
    let base = !pc * 4 in
    if base >= len then running := false
    else begin
      let opcode = code.(base) in
      let a = code.(base + 1) in
      let b = code.(base + 2) in
      let cc = code.(base + 3) in
      incr pc;
      if opcode = op_read then regs.(0) <- Program.step (Memory.Read regs.(a))
      else if opcode = op_write then
        regs.(0) <- Program.step (Memory.Write (regs.(a), regs.(b)))
      else if opcode = op_cas then
        regs.(0) <- Program.step (Memory.Cas (regs.(a), regs.(b), regs.(cc)))
      else if opcode = op_cas_get then
        regs.(0) <- Program.step (Memory.Cas_get (regs.(a), regs.(b), regs.(cc)))
      else if opcode = op_faa then
        regs.(0) <- Program.step (Memory.Faa (regs.(a), regs.(b)))
      else if opcode = op_halt then running := false
      else if opcode = op_complete then
        if a < 0 then Program.complete () else Program.complete_method a
      else if opcode = op_loadi then regs.(a) <- b
      else if opcode = op_mov then regs.(a) <- regs.(b)
      else if opcode = op_addi then regs.(a) <- regs.(b) + cc
      else if opcode = op_add then regs.(a) <- regs.(b) + regs.(cc)
      else if opcode = op_sub then regs.(a) <- regs.(b) - regs.(cc)
      else if opcode = op_jmp then pc := a
      else if opcode = op_beq then (if regs.(a) = regs.(b) then pc := cc)
      else if opcode = op_bne then (if regs.(a) <> regs.(b) then pc := cc)
      else if opcode = op_blt then (if regs.(a) < regs.(b) then pc := cc)
      else if opcode = op_rand then regs.(a) <- Stats.Rng.int ctx.rng b
      else if opcode = op_now then regs.(a) <- Program.now ()
      else if opcode = op_pid then regs.(a) <- ctx.id
      else if opcode = op_nproc then regs.(a) <- ctx.n
      else if opcode = op_alloc then regs.(a) <- Memory.alloc memory ~size:b
      else invalid_arg (Printf.sprintf "Compile.to_program: bad opcode %d" opcode)
    end
  done

let op_names =
  [|
    "read"; "write"; "cas"; "cas_get"; "faa"; "halt"; "complete"; "loadi";
    "mov"; "addi"; "add"; "sub"; "jmp"; "beq"; "bne"; "blt"; "rand"; "now";
    "pid"; "nproc"; "alloc";
  |]

let disassemble c =
  let buf = Buffer.create 256 in
  for w = 0 to word_count c - 1 do
    let base = w * 4 in
    let opcode = c.code.(base) in
    let a = c.code.(base + 1) in
    let b = c.code.(base + 2) in
    let cc = c.code.(base + 3) in
    let name =
      if opcode >= 0 && opcode < op_count then op_names.(opcode)
      else Printf.sprintf "op%d" opcode
    in
    Buffer.add_string buf (Printf.sprintf "%3d: %-8s %d %d %d\n" w name a b cc)
  done;
  Buffer.contents buf
