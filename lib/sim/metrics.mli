(** Latency and progress accounting (paper §2.4).

    - *System latency* W: expected number of **system** steps between
      two consecutive completions by *any* process.
    - *Individual latency* W_i: expected number of **system** steps
      between two consecutive completions by process i.
    - *Individual step complexity*: number of process i's **own**
      steps between its consecutive completions (the O(q + s√n) bound
      at the end of §6.3).
    - *Completion rate* (Appendix B / Figure 5): successful operations
      divided by total steps — approximately 1/W. *)

type t

val create : ?record_samples:bool -> n:int -> unit -> t
(** With [record_samples] (default false), every system-latency gap
    and every per-process individual gap is kept for distribution
    analysis (quantiles, tails); otherwise only streaming summaries. *)

val n : t -> int

val on_step : t -> int -> unit
(** Called by the executor once per scheduled step. *)

val tick : t -> unit
(** Advance the clock one step without attributing it to any process —
    the executor idles like this when every process is crashed or
    stalled but a stall expiry or a scheduled restart will make one
    schedulable again. *)

val on_complete : t -> int -> unit
(** Called when a process finishes a method call. *)

val on_complete_method : t -> int -> int -> unit
(** [on_complete_method t i m]: process [i] finished a call of method
    [m].  Feeds both the global accounting (exactly as {!on_complete})
    and the per-method statistics below. *)

val methods : t -> int list
(** Method ids observed so far, ascending. *)

val method_completions : t -> method_:int -> int array
(** Per-process completion counts of one method. *)

val method_system_latency : t -> method_:int -> Stats.Summary.t
(** Gaps (system steps) between consecutive completions of one
    method by anyone. *)

val time : t -> int
(** System steps elapsed. *)

val set_time : t -> int -> unit
(** Fast-path hook for the compiled executor's batched loop, which
    keeps the clock in a local and syncs it back before anything else
    (a completion, an invariant, the caller) can observe the metrics.
    Not for general use: the clock must only ever move forward. *)

val steps_array : t -> int array
(** The live per-process step counters, for the same fast path (the
    batched loop bumps them in place instead of calling {!on_step}).
    Callers other than the executor must treat it as read-only. *)

val steps_of : t -> int -> int
(** Steps taken by one process. *)

val completions_of : t -> int -> int
val total_completions : t -> int

val system_latency : t -> Stats.Summary.t
(** Gaps (in system steps) between consecutive completions. *)

val individual_latency : t -> int -> Stats.Summary.t
val own_step_latency : t -> int -> Stats.Summary.t

val completion_rate : t -> float
(** [total_completions / time]; the y-axis of Figure 5. *)

val mean_system_latency : t -> float
val mean_individual_latency : t -> int -> float

val fairness_ratio : t -> float
(** mean individual latency averaged over processes, divided by
    (n × mean system latency) — Lemma 7 predicts 1.0. *)

val fingerprint : t -> string
(** Exact textual rendering of every observable statistic (counts,
    times, summaries in hex-float, per-method tables, recorded
    samples).  Two metrics objects that fingerprint equally are
    observationally identical — the contract the differential
    interpreter-vs-compiled tests check. *)

val system_samples : t -> float array
(** Recorded system gaps ([] unless [record_samples]). *)

val individual_samples : t -> int -> float array
