(** Simulated shared memory: a flat, growable array of integer cells
    supporting the paper's primitives — atomic read, write,
    compare-and-swap, the *augmented* CAS of §7 (returns the register's
    previous value), and fetch-and-add (the hardware primitive the
    paper's schedule recorder uses).

    Cells hold unboxed ints; data structures that need records
    (Treiber stack nodes, queue nodes, universal-construction state
    blocks) [alloc] blocks of consecutive cells and treat the base
    index as a pointer.  Address 0 is never handed out so it can serve
    as a null pointer. *)

type t

type op =
  | Read of int  (** [Read a] returns the value at address [a]. *)
  | Write of int * int  (** [Write (a, v)] stores [v]; returns [v]. *)
  | Cas of int * int * int
      (** [Cas (a, expected, v)] returns 1 on success, 0 on failure. *)
  | Cas_get of int * int * int
      (** Augmented CAS (paper §7): like [Cas] but returns the value
          the register held *before* the operation — equal to
          [expected] exactly when the CAS succeeded. *)
  | Faa of int * int  (** [Faa (a, d)] adds [d], returns the old value. *)

val create : ?capacity:int -> unit -> t
(** A fresh memory.  All cells start at 0. *)

val scratch : int
(** A reserved always-valid cell (address 1) used for steps whose
    content is irrelevant (preamble work, no-op yields). *)

val alloc : t -> size:int -> int
(** Reserve [size] fresh zero cells; returns the base address (always
    >= 1). *)

val alloc_init : t -> int array -> int
(** Allocate and initialize a block from the given values. *)

val apply : t -> op -> int
(** Execute one shared-memory operation atomically (the simulator is
    sequential, so plain execution is atomic) and return its result. *)

type outcome = Applied of int | Denied

val set_fault_hook : t -> (op -> bool) option -> unit
(** Install (or clear) the spurious-CAS fault hook consulted by
    {!apply_faulty}.  The executor installs one per run when the fault
    plan carries spurious rates and clears it on exit. *)

val apply_faulty : t -> op -> outcome
(** Like {!apply}, but consults the fault hook on any [Cas]/[Cas_get]
    that would succeed; [true] denies it.  A denied [Cas] is
    [Applied 0] without writing (a weak CAS's spurious failure); a
    denied [Cas_get] is [Denied] — no write, and the caller must not
    deliver a result (the augmented CAS of §7 cannot express spurious
    failure in-band), leaving the process to retry the same operation.
    With no hook installed this is exactly [Applied (apply t op)]. *)

val get : t -> int -> int
(** Direct inspection for tests and metrics; not a simulated step. *)

val set : t -> int -> int -> unit
(** Direct initialization; not a simulated step. *)

val used : t -> int
(** Number of allocated cells (high-water mark). *)

val cells : t -> int array
(** The live backing array, exposed so the compiled executor can apply
    shared-memory operations without per-step dispatch.  Only indices
    in [1, used t) are allocated; the reference is invalidated by any
    {!alloc} (which may reallocate the backing store), so callers must
    refetch it — together with {!used} — after every allocation.
    Everything else should go through {!apply}/{!get}/{!set}. *)

val snapshot : t -> int array
(** Copy of all allocated cells (indices 0 to [used t - 1]) — the
    complete shared state, used by the schedule explorer to hash and
    compare interleaving states.  Not a simulated step. *)

val op_to_string : op -> string
