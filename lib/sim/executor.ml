type spec = { name : string; memory : Memory.t; program : Program.t }

type stop =
  | Steps of int
  | Completions of int
  | Per_process_completions of int

type result = {
  metrics : Metrics.t;
  trace : Sched.Trace.t option;
  crashed : bool array;
  terminated : bool array;
  stopped_early : bool;
  pending : Memory.op option array;
}

(* A process is either suspended at a shared-memory operation, waiting
   to be scheduled, or its body returned. *)
type proc_state =
  | Suspended of Memory.op * (int, proc_state) Effect.Deep.continuation
  | Terminated

(* Run a process body until its next [Step] effect (or return),
   handling [Complete] and [Now] effects inline. *)
let handler ~on_complete ~(now : unit -> int) : (unit, proc_state) Effect.Deep.handler =
  {
    retc = (fun () -> Terminated);
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Program.Step op ->
            Some
              (fun (k : (a, proc_state) Effect.Deep.continuation) ->
                Suspended (op, k))
        | Program.Complete label ->
            Some
              (fun (k : (a, proc_state) Effect.Deep.continuation) ->
                on_complete label;
                Effect.Deep.continue k ())
        | Program.Now ->
            Some
              (fun (k : (a, proc_state) Effect.Deep.continuation) ->
                Effect.Deep.continue k (now ()))
        | _ -> None);
  }

let run ?(seed = 0xC0FFEE) ?(trace = false) ?(record_samples = false)
    ?(crash_plan = Sched.Crash_plan.none) ?(max_steps = 200_000_000) ?invariant
    ?(invariant_interval = 1000) ?choose ~(scheduler : Sched.Scheduler.t) ~n
    ~stop spec =
  if invariant_interval < 1 then
    invalid_arg "Executor.run: invariant_interval must be >= 1";
  if n <= 0 then invalid_arg "Executor.run: n must be positive";
  (match Sched.Crash_plan.validate ~n crash_plan with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Executor.run: " ^ msg));
  let rng = Stats.Rng.create ~seed in
  let metrics = Metrics.create ~record_samples ~n () in
  let tr = if trace then Some (Sched.Trace.create ~n) else None in
  let alive = Array.make n true in
  let crashed = Array.make n false in
  let terminated = Array.make n false in
  let states =
    Array.init n (fun id ->
        let ctx =
          { Program.id; n; rng = Stats.Rng.split rng }
        in
        Effect.Deep.match_with spec.program ctx
          (handler
             ~on_complete:(function
               | None -> Metrics.on_complete metrics id
               | Some m -> Metrics.on_complete_method metrics id m)
             ~now:(fun () -> Metrics.time metrics)))
  in
  Array.iteri
    (fun i s ->
      match s with
      | Terminated ->
          terminated.(i) <- true;
          alive.(i) <- false
      | Suspended _ -> ())
    states;
  let completions_target_met () =
    match stop with
    | Steps s -> Metrics.time metrics >= s
    | Completions c -> Metrics.total_completions metrics >= c
    | Per_process_completions c ->
        let ok = ref true in
        for i = 0 to n - 1 do
          if (not crashed.(i)) && Metrics.completions_of metrics i < c then ok := false
        done;
        !ok
  in
  let alive_count () = Array.fold_left (fun acc a -> if a then acc + 1 else acc) 0 alive in
  let stopped_early = ref false in
  let step_budget = match stop with Steps s -> min s max_steps | _ -> max_steps in
  let continue_run = ref true in
  while !continue_run do
    if completions_target_met () then continue_run := false
    else if Metrics.time metrics >= step_budget then begin
      (match stop with Steps _ -> () | _ -> stopped_early := true);
      continue_run := false
    end
    else begin
      (* Crash events fire at the start of their time step. *)
      let now = Metrics.time metrics in
      List.iter
        (fun p ->
          if not terminated.(p) then begin
            crashed.(p) <- true;
            alive.(p) <- false
          end)
        (Sched.Crash_plan.crashes_at crash_plan ~time:now);
      if alive_count () = 0 then begin
        stopped_early := true;
        continue_run := false
      end
      else begin
        let picked =
          match choose with
          | Some f -> f ~alive ~time:now
          | None -> Some (scheduler.pick ~rng ~alive ~time:now)
        in
        match picked with
        | None ->
            (* The choice callback declined to continue: stop here so
               the caller (the schedule explorer) can inspect the
               frontier state. *)
            stopped_early := true;
            continue_run := false
        | Some i ->
        if i < 0 || i >= n || not alive.(i) then
          invalid_arg
            (Printf.sprintf "Executor.run: scheduler %s picked dead process %d"
               scheduler.name i);
        (match states.(i) with
        | Terminated -> assert false (* terminated processes are not alive *)
        | Suspended (op, k) ->
            Metrics.on_step metrics i;
            Option.iter (fun t -> Sched.Trace.record t i) tr;
            let value = Memory.apply spec.memory op in
            states.(i) <- Effect.Deep.continue k value;
            (match states.(i) with
            | Terminated ->
                terminated.(i) <- true;
                alive.(i) <- false
            | Suspended _ -> ());
            (match invariant with
            | Some check when Metrics.time metrics mod invariant_interval = 0 ->
                check spec.memory ~time:(Metrics.time metrics)
            | _ -> ()))
      end
    end
  done;
  Option.iter (fun check -> check spec.memory ~time:(Metrics.time metrics)) invariant;
  let pending =
    Array.map
      (function Suspended (op, _) -> Some op | Terminated -> None)
      states
  in
  (* Discard suspended continuations cleanly so fibers are not leaked. *)
  Array.iteri
    (fun i s ->
      match s with
      | Suspended (_, k) -> (
          try ignore (Effect.Deep.discontinue k Exit) with Exit | _ -> ());
          states.(i) <- Terminated
      | Terminated -> ())
    states;
  { metrics; trace = tr; crashed; terminated; stopped_early = !stopped_early; pending }
