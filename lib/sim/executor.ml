type spec = { name : string; memory : Memory.t; program : Program.t }

type stop =
  | Steps of int
  | Completions of int
  | Per_process_completions of int

type result = {
  metrics : Metrics.t;
  trace : Sched.Trace.t option;
  crashed : bool array;
  terminated : bool array;
  stopped_early : bool;
  pending : Memory.op option array;
  restarts : int array;
  spurious_cas : int;
}

module Config = struct
  type t = {
    seed : int;
    trace : bool;
    record_samples : bool;
    fault_plan : Sched.Fault_plan.t;
    max_steps : int;
    invariant : (Memory.t -> time:int -> unit) option;
    invariant_interval : int;
    choose : (alive:bool array -> time:int -> int option) option;
  }

  let default =
    {
      seed = 0xC0FFEE;
      trace = false;
      record_samples = false;
      fault_plan = Sched.Fault_plan.none;
      max_steps = 200_000_000;
      invariant = None;
      invariant_interval = 1000;
      choose = None;
    }

  let with_seed seed t = { t with seed }
  let with_trace trace t = { t with trace }
  let with_samples record_samples t = { t with record_samples }
  let with_faults fault_plan t = { t with fault_plan }
  let with_max_steps max_steps t = { t with max_steps }

  let with_invariant ?interval invariant t =
    {
      t with
      invariant = Some invariant;
      invariant_interval = Option.value interval ~default:t.invariant_interval;
    }

  let with_choose choose t = { t with choose = Some choose }
end

(* A process is either suspended at a shared-memory operation, waiting
   to be scheduled, or its body returned. *)
type proc_state =
  | Suspended of Memory.op * (int, proc_state) Effect.Deep.continuation
  | Terminated

(* Run a process body until its next [Step] effect (or return),
   handling [Complete] and [Now] effects inline. *)
let handler ~on_complete ~(now : unit -> int) : (unit, proc_state) Effect.Deep.handler =
  {
    retc = (fun () -> Terminated);
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Program.Step op ->
            Some
              (fun (k : (a, proc_state) Effect.Deep.continuation) ->
                Suspended (op, k))
        | Program.Complete label ->
            Some
              (fun (k : (a, proc_state) Effect.Deep.continuation) ->
                on_complete label;
                Effect.Deep.continue k ())
        | Program.Now ->
            Some
              (fun (k : (a, proc_state) Effect.Deep.continuation) ->
                Effect.Deep.continue k (now ()))
        | _ -> None);
  }

let discard_state = function
  | Suspended (_, k) -> (
      try ignore (Effect.Deep.discontinue k Exit) with Exit | _ -> ())
  | Terminated -> ()

(* Validation shared by both entry points.  The messages keep the
   historical "Executor.run" prefix: tests and replay transcripts pin
   them, and [run] still fronts both paths. *)
let validate_config ~n (config : Config.t) =
  if config.invariant_interval < 1 then
    invalid_arg "Executor.run: invariant_interval must be >= 1";
  if n <= 0 then invalid_arg "Executor.run: n must be positive";
  match Sched.Fault_plan.validate ~n config.fault_plan with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Executor.run: " ^ msg)

let exec ?(config = Config.default) ~(scheduler : Sched.Scheduler.t) ~n ~stop
    spec =
  validate_config ~n config;
  let {
    Config.seed;
    trace;
    record_samples;
    fault_plan = plan;
    max_steps;
    invariant;
    invariant_interval;
    choose;
  } =
    config
  in
  let rng = Stats.Rng.create ~seed in
  let metrics = Metrics.create ~record_samples ~n () in
  let tr = if trace then Some (Sched.Trace.create ~n) else None in
  let alive = Array.make n true in
  let crashed = Array.make n false in
  let terminated = Array.make n false in
  let stalled_until = Array.make n 0 in
  let restarts = Array.make n 0 in
  let spurious_cas = ref 0 in
  let make_state id =
    let ctx = { Program.id; n; rng = Stats.Rng.split rng } in
    Effect.Deep.match_with spec.program ctx
      (handler
         ~on_complete:(function
           | None -> Metrics.on_complete metrics id
           | Some m -> Metrics.on_complete_method metrics id m)
         ~now:(fun () -> Metrics.time metrics))
  in
  let states = Array.init n make_state in
  Array.iteri
    (fun i s ->
      match s with
      | Terminated ->
          terminated.(i) <- true;
          alive.(i) <- false
      | Suspended _ -> ())
    states;
  (* Spurious-CAS hook: consulted by [Memory.apply_faulty] only on a
     would-succeed CAS, drawing from a dedicated RNG stream split off
     *after* the per-process streams so a plan without spurious rates
     leaves every other stream — and hence the whole run — untouched. *)
  let rates = Sched.Fault_plan.spurious_rates ~n plan in
  let has_spurious = Sched.Fault_plan.has_spurious plan in
  let current_proc = ref (-1) in
  if has_spurious then begin
    let srng = Stats.Rng.split rng in
    Memory.set_fault_hook spec.memory
      (Some
         (fun op ->
           match op with
           | Memory.Cas _ | Memory.Cas_get _ ->
               let r = rates.(!current_proc) in
               if r > 0. && Stats.Rng.float srng 1.0 < r then begin
                 incr spurious_cas;
                 true
               end
               else false
           | Memory.Read _ | Memory.Write _ | Memory.Faa _ -> false))
  end;
  let events = Sched.Fault_plan.events plan in
  let cursor = ref 0 in
  (* Fault events fire at the start of their time step, in plan order. *)
  let process_events now =
    while !cursor < Array.length events && fst events.(!cursor) <= now do
      (match snd events.(!cursor) with
      | Sched.Fault_plan.Crash p ->
          if not terminated.(p) then begin
            crashed.(p) <- true;
            alive.(p) <- false
          end
      | Sched.Fault_plan.Restart p ->
          (* Only a crashed, still-suspended process restarts: its old
             fiber is discarded and a fresh body re-enters over the
             shared memory as the crash left it. *)
          if crashed.(p) && not terminated.(p) then begin
            discard_state states.(p);
            crashed.(p) <- false;
            restarts.(p) <- restarts.(p) + 1;
            states.(p) <- make_state p;
            match states.(p) with
            | Terminated ->
                terminated.(p) <- true;
                alive.(p) <- false
            | Suspended _ -> alive.(p) <- true
          end
      | Sched.Fault_plan.Stall (p, d) ->
          if d > 0 then stalled_until.(p) <- max stalled_until.(p) (now + d));
      incr cursor
    done
  in
  let refresh_stalls now =
    for i = 0 to n - 1 do
      if stalled_until.(i) > 0 then
        alive.(i) <-
          stalled_until.(i) <= now
          && (not crashed.(i))
          && (not terminated.(i))
          && (match states.(i) with Suspended _ -> true | Terminated -> false)
    done
  in
  let completions_target_met () =
    match stop with
    | Steps s -> Metrics.time metrics >= s
    | Completions c -> Metrics.total_completions metrics >= c
    | Per_process_completions c ->
        let ok = ref true in
        for i = 0 to n - 1 do
          if (not crashed.(i)) && Metrics.completions_of metrics i < c then ok := false
        done;
        !ok
  in
  let alive_count () = Array.fold_left (fun acc a -> if a then acc + 1 else acc) 0 alive in
  (* With every process crashed or stalled the run can still make
     progress later: a stall window expires, or a scheduled restart
     revives a crashed process.  [wakeable] decides whether to idle
     (tick the clock without a step) or stop early for good. *)
  let wakeable now =
    let stall_pending = ref false in
    for i = 0 to n - 1 do
      if
        stalled_until.(i) > now
        && (not crashed.(i))
        && (not terminated.(i))
        && (match states.(i) with Suspended _ -> true | Terminated -> false)
      then stall_pending := true
    done;
    let restart_pending = ref false in
    for j = !cursor to Array.length events - 1 do
      match snd events.(j) with
      | Sched.Fault_plan.Restart p ->
          if crashed.(p) && not terminated.(p) then restart_pending := true
      | _ -> ()
    done;
    !stall_pending || !restart_pending
  in
  let stopped_early = ref false in
  let step_budget = match stop with Steps s -> min s max_steps | _ -> max_steps in
  let continue_run = ref true in
  let finalize () =
    if has_spurious then Memory.set_fault_hook spec.memory None
  in
  Fun.protect ~finally:finalize @@ fun () ->
  while !continue_run do
    if completions_target_met () then continue_run := false
    else if Metrics.time metrics >= step_budget then begin
      (match stop with Steps _ -> () | _ -> stopped_early := true);
      continue_run := false
    end
    else begin
      let now = Metrics.time metrics in
      process_events now;
      refresh_stalls now;
      if alive_count () = 0 then begin
        if wakeable now then Metrics.tick metrics
        else begin
          stopped_early := true;
          continue_run := false
        end
      end
      else begin
        let picked =
          match choose with
          | Some f -> f ~alive ~time:now
          | None -> Some (scheduler.pick ~rng ~alive ~time:now)
        in
        match picked with
        | None ->
            (* The choice callback declined to continue: stop here so
               the caller (the schedule explorer) can inspect the
               frontier state. *)
            stopped_early := true;
            continue_run := false
        | Some i ->
        if i < 0 || i >= n || not alive.(i) then
          invalid_arg
            (Printf.sprintf "Executor.run: scheduler %s picked dead process %d"
               scheduler.name i);
        (match states.(i) with
        | Terminated -> assert false (* terminated processes are not alive *)
        | Suspended (op, k) ->
            Metrics.on_step metrics i;
            Option.iter (fun t -> Sched.Trace.record t i) tr;
            current_proc := i;
            (match Memory.apply_faulty spec.memory op with
            | Memory.Denied ->
                (* Spurious [Cas_get] failure: the step is consumed but
                   the process stays suspended at the same operation —
                   the transparent LL/SC retry. *)
                ()
            | Memory.Applied value ->
                states.(i) <- Effect.Deep.continue k value;
                (match states.(i) with
                | Terminated ->
                    terminated.(i) <- true;
                    alive.(i) <- false
                | Suspended _ -> ());
                (match invariant with
                | Some check when Metrics.time metrics mod invariant_interval = 0 ->
                    check spec.memory ~time:(Metrics.time metrics)
                | _ -> ())))
      end
    end
  done;
  Option.iter (fun check -> check spec.memory ~time:(Metrics.time metrics)) invariant;
  let pending =
    Array.map
      (function Suspended (op, _) -> Some op | Terminated -> None)
      states
  in
  (* Discard suspended continuations cleanly so fibers are not leaked. *)
  Array.iteri
    (fun i s ->
      discard_state s;
      match s with Suspended _ -> states.(i) <- Terminated | Terminated -> ())
    states;
  {
    metrics;
    trace = tr;
    crashed;
    terminated;
    stopped_early = !stopped_early;
    pending;
    restarts;
    spurious_cas = !spurious_cas;
  }

(* The dispatch loops below match on literal opcode values (a literal
   match compiles to a jump table, a match on module constants does
   not); pin the literals to the Compile encoding once at module
   initialization so drift is impossible to miss. *)
let () =
  if
    not
      Compile.Op.(
        read = 0 && write = 1 && cas = 2 && cas_get = 3 && faa = 4
        && last_shared = 4 && halt = 5 && complete = 6 && loadi = 7 && mov = 8
        && addi = 9 && add = 10 && sub = 11 && jmp = 12 && beq = 13 && bne = 14
        && blt = 15 && rand = 16 && now = 17 && pid = 18 && nproc = 19
        && alloc = 20 && count = 21)
  then failwith "Executor: opcode encoding drifted from Compile.Op"

(* How many scheduler picks to draw per batch on the compiled fast
   path.  Large enough to amortize dispatch, small enough that the
   over-draw wasted at the end of a run is negligible. *)
let batch_len = 8192

let exec_compiled ?(config = Config.default) ~(scheduler : Sched.Scheduler.t)
    ~n ~stop (cspec : Compile.spec) =
  validate_config ~n config;
  let {
    Config.seed;
    trace;
    record_samples;
    fault_plan = plan;
    max_steps;
    invariant;
    invariant_interval;
    choose;
  } =
    config
  in
  let memory = cspec.Compile.memory in
  let prog = cspec.Compile.code in
  let code = prog.Compile.code in
  let nregs = Compile.nregs in
  let rng = Stats.Rng.create ~seed in
  let metrics = Metrics.create ~record_samples ~n () in
  let tr = if trace then Some (Sched.Trace.create ~n) else None in
  let alive = Array.make n true in
  let crashed = Array.make n false in
  let terminated = Array.make n false in
  let stalled_until = Array.make n 0 in
  let restarts = Array.make n 0 in
  let spurious_cas = ref 0 in
  let regs = Array.make (n * nregs) 0 in
  let pc = Array.make n 0 in
  let rngs = Array.make n rng in
  (* Cached view of the memory's backing store; refetched after every
     allocation (which may reallocate it).  All shared-memory opcodes
     go straight at this array, with [Memory.check]'s exact bounds
     test and message inlined. *)
  let cells = ref (Memory.cells memory) in
  let used = ref (Memory.used memory) in
  let oob a =
    invalid_arg
      (Printf.sprintf "Memory: address %d out of bounds (used=%d)" a !used)
  in
  (* Run process [i] from its current pc through local instructions
     until it parks at a shared-memory instruction (pc left on it;
     returns true) or halts (pc set to -1; returns false).  This is
     the "any amount of local computation" half of a step, and also
     the process prologue at start and crash-restart.  Register
     indices were validated by [Compile.assemble] and [code] is
     private, so the register file accesses are in bounds. *)
  let run_local i =
    let rb = i * nregs in
    let p = ref pc.(i) in
    let parked = ref true in
    let running = ref true in
    while !running do
      let base = !p * 4 in
      let opcode = Array.unsafe_get code base in
      if opcode <= 4 (* shared: park here *) then running := false
      else begin
        let a = Array.unsafe_get code (base + 1) in
        let b = Array.unsafe_get code (base + 2) in
        let c = Array.unsafe_get code (base + 3) in
        incr p;
        match opcode with
        | 5 (* halt *) ->
            running := false;
            parked := false;
            p := -1
        | 6 (* complete *) ->
            if a < 0 then Metrics.on_complete metrics i
            else Metrics.on_complete_method metrics i a
        | 7 (* loadi *) -> Array.unsafe_set regs (rb + a) b
        | 8 (* mov *) ->
            Array.unsafe_set regs (rb + a) (Array.unsafe_get regs (rb + b))
        | 9 (* addi *) ->
            Array.unsafe_set regs (rb + a) (Array.unsafe_get regs (rb + b) + c)
        | 10 (* add *) ->
            Array.unsafe_set regs (rb + a)
              (Array.unsafe_get regs (rb + b) + Array.unsafe_get regs (rb + c))
        | 11 (* sub *) ->
            Array.unsafe_set regs (rb + a)
              (Array.unsafe_get regs (rb + b) - Array.unsafe_get regs (rb + c))
        | 12 (* jmp *) -> p := a
        | 13 (* beq *) ->
            if Array.unsafe_get regs (rb + a) = Array.unsafe_get regs (rb + b)
            then p := c
        | 14 (* bne *) ->
            if Array.unsafe_get regs (rb + a) <> Array.unsafe_get regs (rb + b)
            then p := c
        | 15 (* blt *) ->
            if Array.unsafe_get regs (rb + a) < Array.unsafe_get regs (rb + b)
            then p := c
        | 16 (* rand *) -> regs.(rb + a) <- Stats.Rng.int rngs.(i) b
        | 17 (* now *) -> regs.(rb + a) <- Metrics.time metrics
        | 18 (* pid *) -> regs.(rb + a) <- i
        | 19 (* nproc *) -> regs.(rb + a) <- n
        | 20 (* alloc *) ->
            regs.(rb + a) <- Memory.alloc memory ~size:b;
            cells := Memory.cells memory;
            used := Memory.used memory
        | _ ->
            invalid_arg (Printf.sprintf "Executor.exec_compiled: bad opcode %d" opcode)
      end
    done;
    pc.(i) <- !p;
    !parked
  in
  (* Mirror of the interpreter's startup: per-process RNG split then
     prologue, in process order (the prologue may draw from the
     process's own stream or allocate, never from the main stream). *)
  for i = 0 to n - 1 do
    rngs.(i) <- Stats.Rng.split rng;
    if not (run_local i) then begin
      terminated.(i) <- true;
      alive.(i) <- false
    end
  done;
  let rates = Sched.Fault_plan.spurious_rates ~n plan in
  let has_spurious = Sched.Fault_plan.has_spurious plan in
  (* Split in the same stream position as the interpreter's hook rng:
     after the n per-process splits, only when the plan needs it. *)
  let srng = if has_spurious then Stats.Rng.split rng else rng in
  let denied = ref false in
  (* One shared-memory operation for process [i] (parked at one).
     Replicates [Memory.apply]/[Memory.apply_faulty] inline, including
     the spurious-CAS deny logic: the rate is consulted only on a
     would-succeed CAS and the srng is drawn only when the rate is
     positive — the exact draw order of the interpreter's hook. *)
  let step_shared i =
    let rb = i * nregs in
    let base = pc.(i) * 4 in
    let opcode = Array.unsafe_get code base in
    let addr = Array.unsafe_get regs (rb + Array.unsafe_get code (base + 1)) in
    if addr < 1 || addr >= !used then oob addr;
    let mem = !cells in
    match opcode with
    | 0 (* read *) -> Array.unsafe_get mem addr
    | 1 (* write *) ->
        let v = Array.unsafe_get regs (rb + Array.unsafe_get code (base + 2)) in
        Array.unsafe_set mem addr v;
        v
    | 2 (* cas *) ->
        let e = Array.unsafe_get regs (rb + Array.unsafe_get code (base + 2)) in
        if Array.unsafe_get mem addr = e then begin
          if
            has_spurious
            && (let r = Array.unsafe_get rates i in
                r > 0. && Stats.Rng.float srng 1.0 < r)
          then begin
            incr spurious_cas;
            0
          end
          else begin
            Array.unsafe_set mem addr
              (Array.unsafe_get regs (rb + Array.unsafe_get code (base + 3)));
            1
          end
        end
        else 0
    | 3 (* cas_get *) ->
        let e = Array.unsafe_get regs (rb + Array.unsafe_get code (base + 2)) in
        let old = Array.unsafe_get mem addr in
        if old = e then begin
          if
            has_spurious
            && (let r = Array.unsafe_get rates i in
                r > 0. && Stats.Rng.float srng 1.0 < r)
          then begin
            incr spurious_cas;
            denied := true;
            0
          end
          else begin
            Array.unsafe_set mem addr
              (Array.unsafe_get regs (rb + Array.unsafe_get code (base + 3)));
            old
          end
        end
        else old
    | 4 (* faa *) ->
        let d = Array.unsafe_get regs (rb + Array.unsafe_get code (base + 2)) in
        let old = Array.unsafe_get mem addr in
        Array.unsafe_set mem addr (old + d);
        old
    | _ -> assert false
  in
  (* One scheduled step of alive process [i]: charge the step, apply
     the shared op, then (unless spuriously denied, the LL/SC retry)
     deliver the result to r0 and run the local suffix to the next
     park point, then the invariant hook — the same order as the
     interpreter around [Effect.Deep.continue]. *)
  let step_process i =
    Metrics.on_step metrics i;
    (match tr with Some t -> Sched.Trace.record t i | None -> ());
    denied := false;
    let v = step_shared i in
    if not !denied then begin
      Array.unsafe_set regs (i * nregs) v;
      pc.(i) <- pc.(i) + 1;
      if not (run_local i) then begin
        terminated.(i) <- true;
        alive.(i) <- false
      end;
      match invariant with
      | Some check when Metrics.time metrics mod invariant_interval = 0 ->
          check memory ~time:(Metrics.time metrics)
      | _ -> ()
    end
  in
  let events = Sched.Fault_plan.events plan in
  let cursor = ref 0 in
  let process_events now =
    while !cursor < Array.length events && fst events.(!cursor) <= now do
      (match snd events.(!cursor) with
      | Sched.Fault_plan.Crash p ->
          if not terminated.(p) then begin
            crashed.(p) <- true;
            alive.(p) <- false
          end
      | Sched.Fault_plan.Restart p ->
          (* Fresh body over the memory as the crash left it: new RNG
             split from the main stream (as the interpreter's
             [make_state] does), zeroed registers, prologue re-run. *)
          if crashed.(p) && not terminated.(p) then begin
            crashed.(p) <- false;
            restarts.(p) <- restarts.(p) + 1;
            rngs.(p) <- Stats.Rng.split rng;
            Array.fill regs (p * nregs) nregs 0;
            pc.(p) <- 0;
            if run_local p then alive.(p) <- true
            else begin
              terminated.(p) <- true;
              alive.(p) <- false
            end
          end
      | Sched.Fault_plan.Stall (p, d) ->
          if d > 0 then stalled_until.(p) <- max stalled_until.(p) (now + d));
      incr cursor
    done
  in
  let refresh_stalls now =
    for i = 0 to n - 1 do
      if stalled_until.(i) > 0 then
        alive.(i) <-
          stalled_until.(i) <= now
          && (not crashed.(i))
          && (not terminated.(i))
          && pc.(i) >= 0
    done
  in
  let completions_target_met () =
    match stop with
    | Steps s -> Metrics.time metrics >= s
    | Completions c -> Metrics.total_completions metrics >= c
    | Per_process_completions c ->
        let ok = ref true in
        for i = 0 to n - 1 do
          if (not crashed.(i)) && Metrics.completions_of metrics i < c then ok := false
        done;
        !ok
  in
  let alive_count () = Array.fold_left (fun acc a -> if a then acc + 1 else acc) 0 alive in
  let wakeable now =
    let stall_pending = ref false in
    for i = 0 to n - 1 do
      if
        stalled_until.(i) > now
        && (not crashed.(i))
        && (not terminated.(i))
        && pc.(i) >= 0
      then stall_pending := true
    done;
    let restart_pending = ref false in
    for j = !cursor to Array.length events - 1 do
      match snd events.(j) with
      | Sched.Fault_plan.Restart p ->
          if crashed.(p) && not terminated.(p) then restart_pending := true
      | _ -> ()
    done;
    !stall_pending || !restart_pending
  in
  let stopped_early = ref false in
  let step_budget = match stop with Steps s -> min s max_steps | _ -> max_steps in
  let continue_run = ref true in
  (* Fast path: with no choice hook, no faults and a program that
     cannot halt, the alive set provably never changes, so scheduler
     picks can be drawn in batches ([Scheduler.fill] consumes the RNG
     bit-for-bit as per-step picks would).  Picks over-drawn when a
     completion target lands mid-batch are discarded with the run's
     private RNG — nothing observes the main stream afterwards, so
     results stay byte-identical to the per-step path. *)
  let can_batch =
    Option.is_none choose
    && Option.is_some scheduler.fill
    && Sched.Fault_plan.is_none plan
    && (not prog.Compile.has_halt)
    && not (Array.exists Fun.id terminated)
  in
  if can_batch && Option.is_none tr && Option.is_none invariant then begin
    (* Fastest path: batching applies *and* nothing per-step is
       observable from outside (no trace, no invariant), so the whole
       step — charge, shared op, local suffix — is inlined with the
       clock in a local, synced back to the metrics before anything
       that reads it (a completion, the stop check, the caller).
       [can_batch] implies a fault-free plan, so the spurious-CAS
       branches of [step_shared] are dead and omitted; it also implies
       [has_halt = false], so the halt opcode is unreachable and the
       alive set never changes. *)
    let fill = Option.get scheduler.fill in
    let batch = Array.make batch_len 0 in
    let check_target = match stop with Steps _ -> false | _ -> true in
    let steps_by = Metrics.steps_array metrics in
    let time = ref (Metrics.time metrics) in
    while !continue_run do
      if completions_target_met () then continue_run := false
      else if !time >= step_budget then begin
        (match stop with Steps _ -> () | _ -> stopped_early := true);
        continue_run := false
      end
      else begin
        let len = min batch_len (step_budget - !time) in
        fill ~rng ~alive ~dst:batch ~len;
        let j = ref 0 in
        while !j < len && !continue_run do
          if check_target && completions_target_met () then
            continue_run := false
          else begin
            let i = Array.unsafe_get batch !j in
            if i < 0 || i >= n || not (Array.unsafe_get alive i) then begin
              Metrics.set_time metrics !time;
              invalid_arg
                (Printf.sprintf
                   "Executor.run: scheduler %s picked dead process %d"
                   scheduler.name i)
            end;
            time := !time + 1;
            Array.unsafe_set steps_by i (Array.unsafe_get steps_by i + 1);
            let rb = i * nregs in
            let base = Array.unsafe_get pc i * 4 in
            let opcode = Array.unsafe_get code base in
            let addr =
              Array.unsafe_get regs (rb + Array.unsafe_get code (base + 1))
            in
            if addr < 1 || addr >= !used then begin
              Metrics.set_time metrics !time;
              oob addr
            end;
            let mem = !cells in
            let v =
              match opcode with
              | 0 (* read *) -> Array.unsafe_get mem addr
              | 1 (* write *) ->
                  let v =
                    Array.unsafe_get regs (rb + Array.unsafe_get code (base + 2))
                  in
                  Array.unsafe_set mem addr v;
                  v
              | 2 (* cas *) ->
                  if
                    Array.unsafe_get mem addr
                    = Array.unsafe_get regs
                        (rb + Array.unsafe_get code (base + 2))
                  then begin
                    Array.unsafe_set mem addr
                      (Array.unsafe_get regs
                         (rb + Array.unsafe_get code (base + 3)));
                    1
                  end
                  else 0
              | 3 (* cas_get *) ->
                  let old = Array.unsafe_get mem addr in
                  if
                    old
                    = Array.unsafe_get regs
                        (rb + Array.unsafe_get code (base + 2))
                  then
                    Array.unsafe_set mem addr
                      (Array.unsafe_get regs
                         (rb + Array.unsafe_get code (base + 3)));
                  old
              | 4 (* faa *) ->
                  let d =
                    Array.unsafe_get regs (rb + Array.unsafe_get code (base + 2))
                  in
                  let old = Array.unsafe_get mem addr in
                  Array.unsafe_set mem addr (old + d);
                  old
              | _ -> assert false
            in
            Array.unsafe_set regs rb v;
            (* Local suffix to the next park point, mirroring
               [run_local] minus the unreachable halt case. *)
            let p = ref (Array.unsafe_get pc i + 1) in
            let running = ref true in
            while !running do
              let base = !p * 4 in
              let opcode = Array.unsafe_get code base in
              if opcode <= 4 (* shared: park here *) then running := false
              else begin
                let a = Array.unsafe_get code (base + 1) in
                let b = Array.unsafe_get code (base + 2) in
                let c = Array.unsafe_get code (base + 3) in
                incr p;
                match opcode with
                | 6 (* complete *) ->
                    Metrics.set_time metrics !time;
                    if a < 0 then Metrics.on_complete metrics i
                    else Metrics.on_complete_method metrics i a
                | 7 (* loadi *) -> Array.unsafe_set regs (rb + a) b
                | 8 (* mov *) ->
                    Array.unsafe_set regs (rb + a)
                      (Array.unsafe_get regs (rb + b))
                | 9 (* addi *) ->
                    Array.unsafe_set regs (rb + a)
                      (Array.unsafe_get regs (rb + b) + c)
                | 10 (* add *) ->
                    Array.unsafe_set regs (rb + a)
                      (Array.unsafe_get regs (rb + b)
                      + Array.unsafe_get regs (rb + c))
                | 11 (* sub *) ->
                    Array.unsafe_set regs (rb + a)
                      (Array.unsafe_get regs (rb + b)
                      - Array.unsafe_get regs (rb + c))
                | 12 (* jmp *) -> p := a
                | 13 (* beq *) ->
                    if
                      Array.unsafe_get regs (rb + a)
                      = Array.unsafe_get regs (rb + b)
                    then p := c
                | 14 (* bne *) ->
                    if
                      Array.unsafe_get regs (rb + a)
                      <> Array.unsafe_get regs (rb + b)
                    then p := c
                | 15 (* blt *) ->
                    if
                      Array.unsafe_get regs (rb + a)
                      < Array.unsafe_get regs (rb + b)
                    then p := c
                | 16 (* rand *) -> regs.(rb + a) <- Stats.Rng.int rngs.(i) b
                | 17 (* now *) -> regs.(rb + a) <- !time
                | 18 (* pid *) -> regs.(rb + a) <- i
                | 19 (* nproc *) -> regs.(rb + a) <- n
                | 20 (* alloc *) ->
                    regs.(rb + a) <- Memory.alloc memory ~size:b;
                    cells := Memory.cells memory;
                    used := Memory.used memory
                | _ ->
                    (* 5 (halt) is unreachable: [can_batch] requires
                       [has_halt = false]. *)
                    assert false
              end
            done;
            Array.unsafe_set pc i !p;
            incr j
          end
        done;
        Metrics.set_time metrics !time
      end
    done
  end
  else if can_batch then begin
    let fill = Option.get scheduler.fill in
    let batch = Array.make batch_len 0 in
    (* For step-count stops the batch length already respects the
       budget; only completion-style stops need the per-step check. *)
    let check_target = match stop with Steps _ -> false | _ -> true in
    while !continue_run do
      if completions_target_met () then continue_run := false
      else begin
        let now = Metrics.time metrics in
        if now >= step_budget then begin
          (match stop with Steps _ -> () | _ -> stopped_early := true);
          continue_run := false
        end
        else begin
          let len = min batch_len (step_budget - now) in
          fill ~rng ~alive ~dst:batch ~len;
          let j = ref 0 in
          while !j < len && !continue_run do
            if check_target && completions_target_met () then
              continue_run := false
            else begin
              let i = Array.unsafe_get batch !j in
              if i < 0 || i >= n || not alive.(i) then
                invalid_arg
                  (Printf.sprintf
                     "Executor.run: scheduler %s picked dead process %d"
                     scheduler.name i);
              step_process i;
              incr j
            end
          done
        end
      end
    done
  end
  else
    while !continue_run do
      if completions_target_met () then continue_run := false
      else if Metrics.time metrics >= step_budget then begin
        (match stop with Steps _ -> () | _ -> stopped_early := true);
        continue_run := false
      end
      else begin
        let now = Metrics.time metrics in
        process_events now;
        refresh_stalls now;
        if alive_count () = 0 then begin
          if wakeable now then Metrics.tick metrics
          else begin
            stopped_early := true;
            continue_run := false
          end
        end
        else begin
          let picked =
            match choose with
            | Some f -> f ~alive ~time:now
            | None -> Some (scheduler.pick ~rng ~alive ~time:now)
          in
          match picked with
          | None ->
              stopped_early := true;
              continue_run := false
          | Some i ->
              if i < 0 || i >= n || not alive.(i) then
                invalid_arg
                  (Printf.sprintf
                     "Executor.run: scheduler %s picked dead process %d"
                     scheduler.name i);
              step_process i
        end
      end
    done;
  Option.iter (fun check -> check memory ~time:(Metrics.time metrics)) invariant;
  (* A parked process's pending operation is decodable from its pc
     (always on a shared opcode) and registers — the registers cannot
     have changed since it parked. *)
  let pending =
    Array.init n (fun i ->
        if pc.(i) < 0 then None
        else
          let rb = i * Compile.nregs in
          let base = pc.(i) * 4 in
          let r k = regs.(rb + code.(base + k)) in
          match code.(base) with
          | 0 -> Some (Memory.Read (r 1))
          | 1 -> Some (Memory.Write (r 1, r 2))
          | 2 -> Some (Memory.Cas (r 1, r 2, r 3))
          | 3 -> Some (Memory.Cas_get (r 1, r 2, r 3))
          | 4 -> Some (Memory.Faa (r 1, r 2))
          | _ -> assert false)
  in
  {
    metrics;
    trace = tr;
    crashed;
    terminated;
    stopped_early = !stopped_early;
    pending;
    restarts;
    spurious_cas = !spurious_cas;
  }

let fingerprint r =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  Buffer.add_string buf (Metrics.fingerprint r.metrics);
  add ";crashed=";
  Array.iter (fun b -> add "%c" (if b then '1' else '0')) r.crashed;
  add ";term=";
  Array.iter (fun b -> add "%c" (if b then '1' else '0')) r.terminated;
  add ";early=%b" r.stopped_early;
  add ";pending=";
  Array.iter
    (fun p ->
      add "%s," (match p with None -> "-" | Some op -> Memory.op_to_string op))
    r.pending;
  add ";restarts=";
  Array.iter (fun v -> add "%d," v) r.restarts;
  add ";spurious=%d" r.spurious_cas;
  (match r.trace with
  | None -> ()
  | Some t ->
      add ";trace=";
      Array.iter (fun v -> add "%d," v) (Sched.Trace.to_array t));
  Buffer.contents buf
