type spec = { name : string; memory : Memory.t; program : Program.t }

type stop =
  | Steps of int
  | Completions of int
  | Per_process_completions of int

type result = {
  metrics : Metrics.t;
  trace : Sched.Trace.t option;
  crashed : bool array;
  terminated : bool array;
  stopped_early : bool;
  pending : Memory.op option array;
  restarts : int array;
  spurious_cas : int;
}

(* A process is either suspended at a shared-memory operation, waiting
   to be scheduled, or its body returned. *)
type proc_state =
  | Suspended of Memory.op * (int, proc_state) Effect.Deep.continuation
  | Terminated

(* Run a process body until its next [Step] effect (or return),
   handling [Complete] and [Now] effects inline. *)
let handler ~on_complete ~(now : unit -> int) : (unit, proc_state) Effect.Deep.handler =
  {
    retc = (fun () -> Terminated);
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Program.Step op ->
            Some
              (fun (k : (a, proc_state) Effect.Deep.continuation) ->
                Suspended (op, k))
        | Program.Complete label ->
            Some
              (fun (k : (a, proc_state) Effect.Deep.continuation) ->
                on_complete label;
                Effect.Deep.continue k ())
        | Program.Now ->
            Some
              (fun (k : (a, proc_state) Effect.Deep.continuation) ->
                Effect.Deep.continue k (now ()))
        | _ -> None);
  }

let discard_state = function
  | Suspended (_, k) -> (
      try ignore (Effect.Deep.discontinue k Exit) with Exit | _ -> ())
  | Terminated -> ()

let run ?(seed = 0xC0FFEE) ?(trace = false) ?(record_samples = false)
    ?(crash_plan = Sched.Crash_plan.none) ?(fault_plan = Sched.Fault_plan.none)
    ?(max_steps = 200_000_000) ?invariant ?(invariant_interval = 1000) ?choose
    ~(scheduler : Sched.Scheduler.t) ~n ~stop spec =
  if invariant_interval < 1 then
    invalid_arg "Executor.run: invariant_interval must be >= 1";
  if n <= 0 then invalid_arg "Executor.run: n must be positive";
  (match Sched.Crash_plan.validate ~n crash_plan with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Executor.run: " ^ msg));
  (match Sched.Fault_plan.validate ~n fault_plan with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Executor.run: " ^ msg));
  let plan =
    if Sched.Fault_plan.is_none fault_plan then
      Sched.Fault_plan.of_crash_plan crash_plan
    else
      Sched.Fault_plan.merge
        (Sched.Fault_plan.of_crash_plan crash_plan)
        fault_plan
  in
  let rng = Stats.Rng.create ~seed in
  let metrics = Metrics.create ~record_samples ~n () in
  let tr = if trace then Some (Sched.Trace.create ~n) else None in
  let alive = Array.make n true in
  let crashed = Array.make n false in
  let terminated = Array.make n false in
  let stalled_until = Array.make n 0 in
  let restarts = Array.make n 0 in
  let spurious_cas = ref 0 in
  let make_state id =
    let ctx = { Program.id; n; rng = Stats.Rng.split rng } in
    Effect.Deep.match_with spec.program ctx
      (handler
         ~on_complete:(function
           | None -> Metrics.on_complete metrics id
           | Some m -> Metrics.on_complete_method metrics id m)
         ~now:(fun () -> Metrics.time metrics))
  in
  let states = Array.init n make_state in
  Array.iteri
    (fun i s ->
      match s with
      | Terminated ->
          terminated.(i) <- true;
          alive.(i) <- false
      | Suspended _ -> ())
    states;
  (* Spurious-CAS hook: consulted by [Memory.apply_faulty] only on a
     would-succeed CAS, drawing from a dedicated RNG stream split off
     *after* the per-process streams so a plan without spurious rates
     leaves every other stream — and hence the whole run — untouched. *)
  let rates = Sched.Fault_plan.spurious_rates ~n plan in
  let has_spurious = Sched.Fault_plan.has_spurious plan in
  let current_proc = ref (-1) in
  if has_spurious then begin
    let srng = Stats.Rng.split rng in
    Memory.set_fault_hook spec.memory
      (Some
         (fun op ->
           match op with
           | Memory.Cas _ | Memory.Cas_get _ ->
               let r = rates.(!current_proc) in
               if r > 0. && Stats.Rng.float srng 1.0 < r then begin
                 incr spurious_cas;
                 true
               end
               else false
           | Memory.Read _ | Memory.Write _ | Memory.Faa _ -> false))
  end;
  let events = Sched.Fault_plan.events plan in
  let cursor = ref 0 in
  (* Fault events fire at the start of their time step, in plan order. *)
  let process_events now =
    while !cursor < Array.length events && fst events.(!cursor) <= now do
      (match snd events.(!cursor) with
      | Sched.Fault_plan.Crash p ->
          if not terminated.(p) then begin
            crashed.(p) <- true;
            alive.(p) <- false
          end
      | Sched.Fault_plan.Restart p ->
          (* Only a crashed, still-suspended process restarts: its old
             fiber is discarded and a fresh body re-enters over the
             shared memory as the crash left it. *)
          if crashed.(p) && not terminated.(p) then begin
            discard_state states.(p);
            crashed.(p) <- false;
            restarts.(p) <- restarts.(p) + 1;
            states.(p) <- make_state p;
            match states.(p) with
            | Terminated ->
                terminated.(p) <- true;
                alive.(p) <- false
            | Suspended _ -> alive.(p) <- true
          end
      | Sched.Fault_plan.Stall (p, d) ->
          if d > 0 then stalled_until.(p) <- max stalled_until.(p) (now + d));
      incr cursor
    done
  in
  let refresh_stalls now =
    for i = 0 to n - 1 do
      if stalled_until.(i) > 0 then
        alive.(i) <-
          stalled_until.(i) <= now
          && (not crashed.(i))
          && (not terminated.(i))
          && (match states.(i) with Suspended _ -> true | Terminated -> false)
    done
  in
  let completions_target_met () =
    match stop with
    | Steps s -> Metrics.time metrics >= s
    | Completions c -> Metrics.total_completions metrics >= c
    | Per_process_completions c ->
        let ok = ref true in
        for i = 0 to n - 1 do
          if (not crashed.(i)) && Metrics.completions_of metrics i < c then ok := false
        done;
        !ok
  in
  let alive_count () = Array.fold_left (fun acc a -> if a then acc + 1 else acc) 0 alive in
  (* With every process crashed or stalled the run can still make
     progress later: a stall window expires, or a scheduled restart
     revives a crashed process.  [wakeable] decides whether to idle
     (tick the clock without a step) or stop early for good. *)
  let wakeable now =
    let stall_pending = ref false in
    for i = 0 to n - 1 do
      if
        stalled_until.(i) > now
        && (not crashed.(i))
        && (not terminated.(i))
        && (match states.(i) with Suspended _ -> true | Terminated -> false)
      then stall_pending := true
    done;
    let restart_pending = ref false in
    for j = !cursor to Array.length events - 1 do
      match snd events.(j) with
      | Sched.Fault_plan.Restart p ->
          if crashed.(p) && not terminated.(p) then restart_pending := true
      | _ -> ()
    done;
    !stall_pending || !restart_pending
  in
  let stopped_early = ref false in
  let step_budget = match stop with Steps s -> min s max_steps | _ -> max_steps in
  let continue_run = ref true in
  let finalize () =
    if has_spurious then Memory.set_fault_hook spec.memory None
  in
  Fun.protect ~finally:finalize @@ fun () ->
  while !continue_run do
    if completions_target_met () then continue_run := false
    else if Metrics.time metrics >= step_budget then begin
      (match stop with Steps _ -> () | _ -> stopped_early := true);
      continue_run := false
    end
    else begin
      let now = Metrics.time metrics in
      process_events now;
      refresh_stalls now;
      if alive_count () = 0 then begin
        if wakeable now then Metrics.tick metrics
        else begin
          stopped_early := true;
          continue_run := false
        end
      end
      else begin
        let picked =
          match choose with
          | Some f -> f ~alive ~time:now
          | None -> Some (scheduler.pick ~rng ~alive ~time:now)
        in
        match picked with
        | None ->
            (* The choice callback declined to continue: stop here so
               the caller (the schedule explorer) can inspect the
               frontier state. *)
            stopped_early := true;
            continue_run := false
        | Some i ->
        if i < 0 || i >= n || not alive.(i) then
          invalid_arg
            (Printf.sprintf "Executor.run: scheduler %s picked dead process %d"
               scheduler.name i);
        (match states.(i) with
        | Terminated -> assert false (* terminated processes are not alive *)
        | Suspended (op, k) ->
            Metrics.on_step metrics i;
            Option.iter (fun t -> Sched.Trace.record t i) tr;
            current_proc := i;
            (match Memory.apply_faulty spec.memory op with
            | Memory.Denied ->
                (* Spurious [Cas_get] failure: the step is consumed but
                   the process stays suspended at the same operation —
                   the transparent LL/SC retry. *)
                ()
            | Memory.Applied value ->
                states.(i) <- Effect.Deep.continue k value;
                (match states.(i) with
                | Terminated ->
                    terminated.(i) <- true;
                    alive.(i) <- false
                | Suspended _ -> ());
                (match invariant with
                | Some check when Metrics.time metrics mod invariant_interval = 0 ->
                    check spec.memory ~time:(Metrics.time metrics)
                | _ -> ())))
      end
    end
  done;
  Option.iter (fun check -> check spec.memory ~time:(Metrics.time metrics)) invariant;
  let pending =
    Array.map
      (function Suspended (op, _) -> Some op | Terminated -> None)
      states
  in
  (* Discard suspended continuations cleanly so fibers are not leaked. *)
  Array.iteri
    (fun i s ->
      discard_state s;
      match s with Suspended _ -> states.(i) <- Terminated | Terminated -> ())
    states;
  {
    metrics;
    trace = tr;
    crashed;
    terminated;
    stopped_early = !stopped_early;
    pending;
    restarts;
    spurious_cas = !spurious_cas;
  }
