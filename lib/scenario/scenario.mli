(** Declarative test scenarios: one value describing {e what to throw
    at which structures and how to judge the result} — structures, a
    bounded workload, schedule sources (exhaustive exploration, random
    fuzzing, chaos drills, fixed replays, load arrivals), a
    {!Sched.Fault_plan} rate spec, and a gate list — plus named
    presets ([quick]/[standard]/[century]/[chaos]) carrying fault-rate
    tiers and step budgets, a [parse]/[to_string] spec grammar in the
    style of [--faults], and a runner that executes the scenario
    through the {!Check} engines.

    `repro check` and `repro chaos` construct and execute values of
    this type (their legacy flags are thin translations); `repro
    scenario` exposes presets and the grammar directly.  A scenario is
    pure data — structures are referenced by {!Scu.Checkable} name and
    resolved at run time — so values compare structurally and the
    grammar round-trips ([parse (to_string t) = Ok t]). *)

type source =
  | Explore  (** Bounded exhaustive interleaving enumeration ({!Check.Explore}). *)
  | Fuzz
      (** Random + adversarial schedule fuzzing with shrinking
          ({!Check.Fuzz}; crash plans on, chaos pass off — fault-rate
          drills are the [Chaos] source's job). *)
  | Chaos
      (** Random schedules under fault plans instantiated from the
          scenario's [faults] rates ({!Check.Chaos}). *)
  | Replay of { schedule : int array; tail : Check.Schedule.tail }
      (** One fixed schedule replayed against every structure (under
          the scenario's explicit fault events). *)
  | Load of { clients : int; ops_per_client : int }
      (** Load-arrival workload: [clients] processes each performing
          [ops_per_client] operations under the uniform stochastic
          scheduler.  Judged by the gates when [clients *
          ops_per_client <= 62] (the checker limit); beyond that the
          invariant hook still runs every step and the history is
          reported [Unchecked]. *)

type gate = Lin | Shadow | Conform
(** [Lin] — the memoized linearizability checker; [Shadow] — the
    independent shadow-state replay ({!Linearize.Shadow}), on by
    default in every preset; [Conform] — the statistical conformance
    gates ({!Check.Conform}), run once after all sources. *)

type budget = {
  explore_nodes : int;
  explore_depth : int;
  fuzz_trials : int;  (** QCheck cases per structure. *)
  sched_trials : int;  (** Runs per adversarial scheduler. *)
  chaos_trials : int;
  long_conform : bool;  (** Conform gate budget ({!Check.Conform.long}). *)
}

type t = {
  structures : string list;  (** {!Scu.Checkable} names, resolved at run time. *)
  n : int;
  ops : int;
  seed : int;
  mix_seed : int option;
  faults : Sched.Fault_plan.spec;
  sources : source list;  (** Executed in order, each over every structure. *)
  gates : gate list;
  budget : budget;
}

(** {1 Builder} *)

val make :
  ?n:int ->
  ?ops:int ->
  ?seed:int ->
  ?mix_seed:int ->
  ?faults:Sched.Fault_plan.spec ->
  ?sources:source list ->
  ?gates:gate list ->
  ?budget:budget ->
  structures:string list ->
  unit ->
  t
(** Defaults: the [standard] preset's workload, sources, gates, rates
    and budget. *)

val with_structures : string list -> t -> t
val with_workload : n:int -> ops:int -> t -> t
val with_seed : int -> t -> t
val with_mix_seed : int option -> t -> t
val with_faults : Sched.Fault_plan.spec -> t -> t
val with_sources : source list -> t -> t
val with_gates : gate list -> t -> t
val with_budget : budget -> t -> t
(** Pipeline-style updates, [Sim.Executor.Config]-fashion. *)

(** {1 Presets}

    Four named tiers over the stock structures, rate tiers from
    {!Sched.Fault_plan.tier_rates}:

    - [quick] — explore + fuzz, fault-free, small budgets (CI push);
    - [standard] — + chaos source at the mild always-on rates;
    - [century] — large budgets, rare-event rates, + conform gate on
      the long budget (nightly);
    - [chaos] — fuzz + chaos at the heavy mixed-drill rates. *)

val quick : t
val standard : t
val century : t
val chaos : t

val presets : (string * t) list
val preset : string -> t option

(** {1 Spec grammar}

    [;]-separated [key=value] fields:
    [structures=NAME,...] (or [stock]/[all]), [n=K], [ops=K],
    [seed=K], [mix=K], [faults=SPEC] (the [--faults] grammar,
    or [none]), [sources=S,...] with [S] one of [explore], [fuzz],
    [chaos], [replay@P.P.P:stop|rr], [load@CLIENTSxOPS],
    [gates=lin|shadow|conform,...], and
    [budget=explore:NxD,fuzz:TxS,chaos:T,conform:smoke|long].
    A leading [preset=NAME] field selects the base the remaining
    fields override (default base: [standard]).  Errors are one-line
    messages naming the bad token. *)

val to_string : t -> string
(** Canonical, fully explicit (never emits [preset=]); round-trips
    through {!parse}. *)

val parse : string -> (t, string) result

val validate : t -> (unit, string) result
(** Semantic checks the grammar cannot express: positive workload,
    [n * ops <= 62] when a judged source is present, at least one
    structure and one source or gate, budget positivity, fault events
    valid for [n]. *)

(** {1 Runner} *)

type event =
  | Explore_done of {
      structure : string;
      report : Check.Explore.report;
      elapsed : float;
    }
  | Fuzz_done of {
      structure : string;
      report : Check.Fuzz.report;
      elapsed : float;
    }
  | Chaos_done of {
      structure : string;
      report : Check.Chaos.report;
      elapsed : float;
    }
  | Replay_done of { structure : string; outcome : Check.Schedule.outcome }
  | Load_done of {
      structure : string;
      completed : int;
      verdict : Check.Schedule.verdict;
      elapsed : float;
    }
  | Conform_done of { report : Check.Conform.report; elapsed : float }
      (** Emitted as each unit of work finishes, in execution order —
          the full library reports, so callers own all formatting
          (how `repro check`/`chaos` keep their legacy stdout
          byte-identical). *)

type failure = {
  structure : string;
  source : string;  (** ["explore"], ["qcheck"], ["chaos"], an adversary name, ["replay"], ["load"]. *)
  schedule : int array;
  replay : string;  (** {!Sched.Scheduler.replay_to_string} form. *)
  crash_plan : (int * int) list;
  fault_spec : string;  (** [--faults] grammar; [""] when fault-free. *)
  mix_seed : int option;
  tail : string;  (** ["stop"] or ["round-robin"]. *)
  verdict : string;
}

type outcome = {
  scenario : t;
  failures : failure list;
  gates_failed : int;  (** Failed conform gates. *)
  trials : int;  (** Fuzz + chaos trials actually run. *)
  passed : bool;  (** No failures and no failed gates. *)
}

val run : ?on_event:(event -> unit) -> ?now:(unit -> float) -> t -> outcome
(** Execute the scenario: every source in order over every structure,
    then the conform gate if listed.  [now] supplies wall-clock
    timestamps for the [elapsed] fields (default: a constant clock, so
    library results stay deterministic).  Raises [Invalid_argument]
    when {!validate} would return an error. *)
