(* Declarative scenarios over the Check engines.  A scenario is pure
   data (structures are names, resolved at run time), so values compare
   structurally and the spec grammar round-trips; the runner is a thin
   deterministic dispatcher that reuses Explore/Fuzz/Chaos/Schedule
   verbatim — `repro check` and `repro chaos` route through it with
   their historical stdout unchanged. *)

module Checkable = Scu.Checkable
module Fault_plan = Sched.Fault_plan
module Schedule = Check.Schedule

type source =
  | Explore
  | Fuzz
  | Chaos
  | Replay of { schedule : int array; tail : Check.Schedule.tail }
  | Load of { clients : int; ops_per_client : int }

type gate = Lin | Shadow | Conform

type budget = {
  explore_nodes : int;
  explore_depth : int;
  fuzz_trials : int;
  sched_trials : int;
  chaos_trials : int;
  long_conform : bool;
}

type t = {
  structures : string list;
  n : int;
  ops : int;
  seed : int;
  mix_seed : int option;
  faults : Sched.Fault_plan.spec;
  sources : source list;
  gates : gate list;
  budget : budget;
}

let stock_names = List.map (fun (s : Checkable.t) -> s.name) Checkable.stock
let all_names = List.map (fun (s : Checkable.t) -> s.name) Checkable.all

let rates_spec rates = { Fault_plan.base = Fault_plan.none; rates }

(* Presets.  Budgets scale roughly 1 : 10 : 50 across quick / standard
   / century; the chaos tier trades exploration for fault pressure. *)

let quick =
  {
    structures = stock_names;
    n = 2;
    ops = 2;
    seed = 0;
    mix_seed = None;
    faults = rates_spec Fault_plan.quick_rates;
    sources = [ Explore; Fuzz ];
    gates = [ Lin; Shadow ];
    budget =
      {
        explore_nodes = 2_000;
        explore_depth = 32;
        fuzz_trials = 60;
        sched_trials = 2;
        chaos_trials = 15;
        long_conform = false;
      };
  }

let standard =
  {
    quick with
    faults = rates_spec Fault_plan.standard_rates;
    sources = [ Explore; Fuzz; Chaos ];
    budget =
      {
        explore_nodes = 20_000;
        explore_depth = 64;
        fuzz_trials = 300;
        sched_trials = 4;
        chaos_trials = 60;
        long_conform = false;
      };
  }

let century =
  {
    standard with
    faults = rates_spec Fault_plan.century_rates;
    gates = [ Lin; Shadow; Conform ];
    budget =
      {
        explore_nodes = 200_000;
        explore_depth = 96;
        fuzz_trials = 1_500;
        sched_trials = 8;
        chaos_trials = 240;
        long_conform = true;
      };
  }

let chaos =
  {
    standard with
    faults = rates_spec Fault_plan.chaos_rates;
    sources = [ Fuzz; Chaos ];
    budget =
      {
        explore_nodes = 20_000;
        explore_depth = 64;
        fuzz_trials = 600;
        sched_trials = 4;
        chaos_trials = 120;
        long_conform = false;
      };
  }

let presets =
  [ ("quick", quick); ("standard", standard); ("century", century); ("chaos", chaos) ]

let preset name = List.assoc_opt name presets

(* Builder. *)

let make ?n ?ops ?seed ?mix_seed ?faults ?sources ?gates ?budget ~structures ()
    =
  {
    structures;
    n = Option.value n ~default:standard.n;
    ops = Option.value ops ~default:standard.ops;
    seed = Option.value seed ~default:standard.seed;
    mix_seed;
    faults = Option.value faults ~default:standard.faults;
    sources = Option.value sources ~default:standard.sources;
    gates = Option.value gates ~default:standard.gates;
    budget = Option.value budget ~default:standard.budget;
  }

let with_structures structures t = { t with structures }
let with_workload ~n ~ops t = { t with n; ops }
let with_seed seed t = { t with seed }
let with_mix_seed mix_seed t = { t with mix_seed }
let with_faults faults t = { t with faults }
let with_sources sources t = { t with sources }
let with_gates gates t = { t with gates }
let with_budget budget t = { t with budget }

(* Spec grammar: `;`-separated key=value fields.  Canonical printing is
   fully explicit in a fixed field order; the parser accepts any order
   (an optional leading preset=NAME replaces the implicit [standard]
   base) and reports one-line errors naming the bad token. *)

let source_to_string = function
  | Explore -> "explore"
  | Fuzz -> "fuzz"
  | Chaos -> "chaos"
  | Replay { schedule; tail } ->
      Printf.sprintf "replay@%s:%s"
        (String.concat "."
           (List.map string_of_int (Array.to_list schedule)))
        (match tail with Check.Schedule.Stop -> "stop" | Round_robin -> "rr")
  | Load { clients; ops_per_client } ->
      Printf.sprintf "load@%dx%d" clients ops_per_client

let gate_to_string = function
  | Lin -> "lin"
  | Shadow -> "shadow"
  | Conform -> "conform"

let budget_to_string b =
  Printf.sprintf "explore:%dx%d,fuzz:%dx%d,chaos:%d,conform:%s" b.explore_nodes
    b.explore_depth b.fuzz_trials b.sched_trials b.chaos_trials
    (if b.long_conform then "long" else "smoke")

let to_string t =
  String.concat ";"
    ([
       "structures=" ^ String.concat "," t.structures;
       Printf.sprintf "n=%d" t.n;
       Printf.sprintf "ops=%d" t.ops;
       Printf.sprintf "seed=%d" t.seed;
     ]
    @ (match t.mix_seed with
      | None -> []
      | Some m -> [ Printf.sprintf "mix=%d" m ])
    @ [
        "faults=" ^ Fault_plan.spec_to_string t.faults;
        "sources=" ^ String.concat "," (List.map source_to_string t.sources);
        "gates=" ^ String.concat "," (List.map gate_to_string t.gates);
        "budget=" ^ budget_to_string t.budget;
      ])

let bad token fmt =
  Printf.ksprintf (fun msg -> Error (Printf.sprintf "bad --spec token %S: %s" token msg)) fmt

let parse_int token what s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> bad token "%S is not an integer (%s)" s what

let parse_structures_field token value =
  match value with
  | "stock" -> Ok stock_names
  | "all" -> Ok all_names
  | names -> (
      let names =
        List.filter (fun x -> x <> "") (String.split_on_char ',' names)
      in
      if names = [] then bad token "no structure names"
      else
        match
          List.find_opt
            (fun name ->
              match Checkable.find name with
              | _ -> false
              | exception Invalid_argument _ -> true)
            names
        with
        | Some unknown -> bad token "unknown structure %S" unknown
        | None -> Ok names)

let parse_source token s =
  match s with
  | "explore" -> Ok Explore
  | "fuzz" -> Ok Fuzz
  | "chaos" -> Ok Chaos
  | _ when String.length s > 7 && String.sub s 0 7 = "replay@" -> (
      let rest = String.sub s 7 (String.length s - 7) in
      match String.rindex_opt rest ':' with
      | None -> bad token "replay source %S needs a :stop or :rr tail" s
      | Some i -> (
          let sched = String.sub rest 0 i in
          let tail = String.sub rest (i + 1) (String.length rest - i - 1) in
          let entries =
            List.filter (fun x -> x <> "") (String.split_on_char '.' sched)
          in
          let ints = List.filter_map int_of_string_opt entries in
          if List.length ints <> List.length entries then
            bad token "replay schedule %S is not dot-separated ints" sched
          else
            match tail with
            | "stop" ->
                Ok
                  (Replay
                     {
                       schedule = Array.of_list ints;
                       tail = Check.Schedule.Stop;
                     })
            | "rr" ->
                Ok
                  (Replay
                     {
                       schedule = Array.of_list ints;
                       tail = Check.Schedule.Round_robin;
                     })
            | _ -> bad token "replay tail %S is not stop or rr" tail))
  | _ when String.length s > 5 && String.sub s 0 5 = "load@" -> (
      let rest = String.sub s 5 (String.length s - 5) in
      match String.index_opt rest 'x' with
      | None -> bad token "load source %S is not load@CLIENTSxOPS" s
      | Some i -> (
          let c = String.sub rest 0 i in
          let o = String.sub rest (i + 1) (String.length rest - i - 1) in
          match (int_of_string_opt c, int_of_string_opt o) with
          | Some clients, Some ops_per_client ->
              Ok (Load { clients; ops_per_client })
          | _ -> bad token "load source %S is not load@CLIENTSxOPS" s))
  | _ -> bad token "unknown source %S" s

let parse_gate token s =
  match s with
  | "lin" -> Ok Lin
  | "shadow" -> Ok Shadow
  | "conform" -> Ok Conform
  | _ -> bad token "unknown gate %S" s

let rec collect f token acc = function
  | [] -> Ok (List.rev acc)
  | x :: rest -> (
      match f token x with
      | Ok v -> collect f token (v :: acc) rest
      | Error _ as e -> e)

let parse_budget_component token b s =
  match String.index_opt s ':' with
  | None -> bad token "budget component %S is not KEY:VALUE" s
  | Some i -> (
      let key = String.sub s 0 i in
      let v = String.sub s (i + 1) (String.length s - i - 1) in
      let pair what =
        match String.index_opt v 'x' with
        | None -> bad token "budget %s %S is not AxB" what v
        | Some j -> (
            let a = String.sub v 0 j in
            let b = String.sub v (j + 1) (String.length v - j - 1) in
            match (int_of_string_opt a, int_of_string_opt b) with
            | Some a, Some b -> Ok (a, b)
            | _ -> bad token "budget %s %S is not AxB" what v)
      in
      match key with
      | "explore" ->
          Result.map
            (fun (nodes, depth) ->
              { b with explore_nodes = nodes; explore_depth = depth })
            (pair "explore")
      | "fuzz" ->
          Result.map
            (fun (trials, sched) ->
              { b with fuzz_trials = trials; sched_trials = sched })
            (pair "fuzz")
      | "chaos" ->
          Result.map
            (fun trials -> { b with chaos_trials = trials })
            (parse_int token "chaos trials" v)
      | "conform" -> (
          match v with
          | "smoke" -> Ok { b with long_conform = false }
          | "long" -> Ok { b with long_conform = true }
          | _ -> bad token "conform budget %S is not smoke or long" v)
      | _ -> bad token "unknown budget key %S" key)

let parse s =
  let s = String.trim s in
  let tokens =
    List.filter (fun x -> x <> "") (String.split_on_char ';' s)
  in
  if tokens = [] then Error "bad --spec: empty scenario spec"
  else
    let rec go i acc = function
      | [] -> Ok acc
      | token :: rest -> (
          match String.index_opt token '=' with
          | None -> bad token "not of the form key=value"
          | Some eq -> (
              let key = String.sub token 0 eq in
              let value =
                String.sub token (eq + 1) (String.length token - eq - 1)
              in
              let continue r =
                match r with
                | Ok acc -> go (i + 1) acc rest
                | Error _ as e -> e
              in
              match key with
              | "preset" -> (
                  if i > 0 then bad token "preset must be the first token"
                  else
                    match preset value with
                    | Some p -> go (i + 1) p rest
                    | None ->
                        bad token "unknown preset %S (known: %s)" value
                          (String.concat ", " (List.map fst presets)))
              | "structures" ->
                  continue
                    (Result.map
                       (fun structures -> { acc with structures })
                       (parse_structures_field token value))
              | "n" ->
                  continue
                    (Result.map
                       (fun n -> { acc with n })
                       (parse_int token "n" value))
              | "ops" ->
                  continue
                    (Result.map
                       (fun ops -> { acc with ops })
                       (parse_int token "ops" value))
              | "seed" ->
                  continue
                    (Result.map
                       (fun seed -> { acc with seed })
                       (parse_int token "seed" value))
              | "mix" ->
                  continue
                    (Result.map
                       (fun m -> { acc with mix_seed = Some m })
                       (parse_int token "mix" value))
              | "faults" -> (
                  match Fault_plan.parse_spec value with
                  | Ok faults -> go (i + 1) { acc with faults } rest
                  | Error msg -> bad token "%s" msg)
              | "sources" ->
                  continue
                    (Result.map
                       (fun sources -> { acc with sources })
                       (collect parse_source token []
                          (List.filter
                             (fun x -> x <> "")
                             (String.split_on_char ',' value))))
              | "gates" ->
                  continue
                    (Result.map
                       (fun gates -> { acc with gates })
                       (collect parse_gate token []
                          (List.filter
                             (fun x -> x <> "")
                             (String.split_on_char ',' value))))
              | "budget" ->
                  continue
                    (List.fold_left
                       (fun b c ->
                         match b with
                         | Error _ as e -> e
                         | Ok b -> parse_budget_component token b c)
                       (Ok acc.budget)
                       (List.filter
                          (fun x -> x <> "")
                          (String.split_on_char ',' value))
                    |> Result.map (fun budget -> { acc with budget }))
              | _ -> bad token "unknown key %S" key))
    in
    go 0 standard tokens

let validate t =
  let ( let* ) = Result.bind in
  let* () =
    if t.structures = [] then Error "scenario has no structures" else Ok ()
  in
  let* () =
    match
      List.find_opt
        (fun name ->
          match Checkable.find name with
          | _ -> false
          | exception Invalid_argument _ -> true)
        t.structures
    with
    | Some unknown -> Error (Printf.sprintf "unknown structure %S" unknown)
    | None -> Ok ()
  in
  let* () =
    if t.n < 1 || t.ops < 1 then Error "need n >= 1 and ops >= 1" else Ok ()
  in
  let* () =
    if
      List.exists
        (fun s ->
          match s with
          | Explore | Fuzz | Chaos | Replay _ -> t.n * t.ops > 62
          | Load _ -> false)
        t.sources
    then Error "need n*ops <= 62 (linearizability checker limit)"
    else Ok ()
  in
  let* () =
    if t.sources = [] && not (List.mem Conform t.gates) then
      Error "scenario has no sources and no conform gate"
    else Ok ()
  in
  let* () =
    if
      t.budget.explore_nodes < 1 || t.budget.explore_depth < 1
      || t.budget.fuzz_trials < 1 || t.budget.sched_trials < 0
      || t.budget.chaos_trials < 1
    then Error "budget components must be positive"
    else Ok ()
  in
  let* () =
    List.fold_left
      (fun acc s ->
        let* () = acc in
        match s with
        | Load { clients; ops_per_client } ->
            if clients < 1 || ops_per_client < 1 then
              Error "load source needs clients >= 1 and ops >= 1"
            else Ok ()
        | _ -> Ok ())
      (Ok ()) t.sources
  in
  Result.map_error
    (fun msg -> "faults: " ^ msg)
    (Fault_plan.validate ~n:t.n t.faults.Fault_plan.base)

(* Runner. *)

type event =
  | Explore_done of {
      structure : string;
      report : Check.Explore.report;
      elapsed : float;
    }
  | Fuzz_done of {
      structure : string;
      report : Check.Fuzz.report;
      elapsed : float;
    }
  | Chaos_done of {
      structure : string;
      report : Check.Chaos.report;
      elapsed : float;
    }
  | Replay_done of { structure : string; outcome : Check.Schedule.outcome }
  | Load_done of {
      structure : string;
      completed : int;
      verdict : Check.Schedule.verdict;
      elapsed : float;
    }
  | Conform_done of { report : Check.Conform.report; elapsed : float }

type failure = {
  structure : string;
  source : string;
  schedule : int array;
  replay : string;
  crash_plan : (int * int) list;
  fault_spec : string;
  mix_seed : int option;
  tail : string;
  verdict : string;
}

type outcome = {
  scenario : t;
  failures : failure list;
  gates_failed : int;
  trials : int;
  passed : bool;
}

let gates_record t =
  { Schedule.lin = List.mem Lin t.gates; shadow = List.mem Shadow t.gates }

(* Load arrivals beyond the checker's 62-op bound: drive the instance
   to completion under the uniform stochastic scheduler with the
   invariant hook on every step; the history is Unchecked by
   construction (too many ops to judge), an invariant raise is the
   failure signal.  The scenario's fault spec rides along on both
   branches — rates are instantiated over the run's step budget with
   the scenario seed, so a `load@` source under a chaos preset drives
   the structure through crash/stall/casfail weather too. *)
let run_load ~structure ~gates ~faults ~seed ~mix_seed ~clients ~ops_per_client =
  let budget = (200 * clients * (ops_per_client + 1)) + 64 in
  let fault_plan =
    Fault_plan.instantiate faults ~seed ~n:clients ~horizon:budget
  in
  if clients * ops_per_client <= 62 then begin
    let out =
      Schedule.run ~fault_plan ~gates ?mix_seed ~structure ~n:clients
        ~ops:ops_per_client ~tail:Check.Schedule.Round_robin [||]
    in
    (Array.fold_left ( + ) 0 out.completed, out.verdict)
  end
  else begin
    let inst =
      structure.Checkable.make ~n:clients ~ops:ops_per_client ?mix_seed ()
    in
    let verdict =
      try
        let config =
          Sim.Executor.Config.(
            default |> with_seed seed
            |> with_faults fault_plan
            |> with_max_steps (budget + 1)
            |> with_invariant ~interval:1 inst.invariant)
        in
        ignore
          (Sim.Executor.exec ~config ~scheduler:Sched.Scheduler.uniform
             ~n:clients ~stop:(Steps budget) inst.spec);
        Schedule.Unchecked
      with Failure msg -> Schedule.Invariant_violation msg
    in
    (List.length (inst.events ()), verdict)
  end

let run ?(on_event = fun _ -> ()) ?(now = fun () -> 0.) t =
  (match validate t with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Scenario.run: " ^ msg));
  let structs = List.map Checkable.find t.structures in
  let gates = gates_record t in
  let failures = ref [] in
  let trials = ref 0 in
  let add f = failures := f :: !failures in
  let fault_spec_string =
    if Fault_plan.spec_is_none t.faults then ""
    else Fault_plan.spec_to_string t.faults
  in
  List.iter
    (fun source ->
      List.iter
        (fun (s : Checkable.t) ->
          match source with
          | Explore ->
              let config =
                {
                  Check.Explore.max_nodes = t.budget.explore_nodes;
                  max_depth = t.budget.explore_depth;
                  prune_states = true;
                  sleep_sets = true;
                  gates;
                }
              in
              let t0 = now () in
              let r =
                Check.Explore.explore ~config ?mix_seed:t.mix_seed
                  ~structure:s ~n:t.n ~ops:t.ops ()
              in
              on_event
                (Explore_done
                   { structure = s.name; report = r; elapsed = now () -. t0 });
              List.iter
                (fun (v : Check.Explore.violation) ->
                  add
                    {
                      structure = s.name;
                      source = "explore";
                      schedule = v.schedule;
                      replay = Sched.Scheduler.replay_to_string v.schedule;
                      crash_plan = [];
                      fault_spec = "";
                      mix_seed = t.mix_seed;
                      tail = "stop";
                      verdict = Schedule.verdict_to_string v.verdict;
                    })
                r.violations
          | Fuzz ->
              let config =
                {
                  Check.Fuzz.default with
                  trials = t.budget.fuzz_trials;
                  sched_trials = t.budget.sched_trials;
                  seed = t.seed;
                  gates;
                }
              in
              let t0 = now () in
              let r =
                Check.Fuzz.fuzz ~config ~structure:s ~n:t.n ~ops:t.ops ()
              in
              trials := !trials + r.trials;
              on_event
                (Fuzz_done
                   { structure = s.name; report = r; elapsed = now () -. t0 });
              List.iter
                (fun (f : Check.Fuzz.failure) ->
                  add
                    {
                      structure = f.structure;
                      source = f.source;
                      schedule = f.schedule;
                      replay = f.replay;
                      crash_plan = f.crash_plan;
                      fault_spec = f.fault_spec;
                      mix_seed = f.mix_seed;
                      tail =
                        (if f.source = "qcheck" then "round-robin" else "stop");
                      verdict = f.verdict;
                    })
                r.failures
          | Chaos ->
              let config =
                {
                  Check.Chaos.default with
                  trials = t.budget.chaos_trials;
                  seed = t.seed;
                  gates;
                }
              in
              let t0 = now () in
              let r =
                Check.Chaos.run ~config ~spec:t.faults ~structure:s ~n:t.n
                  ~ops:t.ops ()
              in
              trials := !trials + r.trials;
              on_event
                (Chaos_done
                   { structure = s.name; report = r; elapsed = now () -. t0 });
              List.iter
                (fun (f : Check.Chaos.failure) ->
                  add
                    {
                      structure = f.structure;
                      source = "chaos";
                      schedule = f.schedule;
                      replay = f.replay;
                      crash_plan = [];
                      fault_spec = f.fault_spec;
                      mix_seed = Some f.mix_seed;
                      tail = "round-robin";
                      verdict = f.verdict;
                    })
                r.failures
          | Replay { schedule; tail } ->
              let out =
                Schedule.run ~fault_plan:t.faults.Fault_plan.base ~gates
                  ?mix_seed:t.mix_seed ~structure:s ~n:t.n ~ops:t.ops ~tail
                  schedule
              in
              on_event (Replay_done { structure = s.name; outcome = out });
              if Schedule.is_bad out.verdict then
                add
                  {
                    structure = s.name;
                    source = "replay";
                    schedule = out.executed;
                    replay = Sched.Scheduler.replay_to_string out.executed;
                    crash_plan = [];
                    fault_spec = fault_spec_string;
                    mix_seed = t.mix_seed;
                    tail =
                      (match tail with
                      | Check.Schedule.Stop -> "stop"
                      | Round_robin -> "round-robin");
                    verdict = Schedule.verdict_to_string out.verdict;
                  }
          | Load { clients; ops_per_client } ->
              let t0 = now () in
              let completed, verdict =
                run_load ~structure:s ~gates ~faults:t.faults ~seed:t.seed
                  ~mix_seed:t.mix_seed ~clients ~ops_per_client
              in
              on_event
                (Load_done
                   {
                     structure = s.name;
                     completed;
                     verdict;
                     elapsed = now () -. t0;
                   });
              if Schedule.is_bad verdict then
                add
                  {
                    structure = s.name;
                    source = "load";
                    schedule = [||];
                    replay = "";
                    crash_plan = [];
                    fault_spec = fault_spec_string;
                    mix_seed = t.mix_seed;
                    tail = "round-robin";
                    verdict = Schedule.verdict_to_string verdict;
                  })
        structs)
    t.sources;
  let gates_failed = ref 0 in
  if List.mem Conform t.gates then begin
    let t0 = now () in
    let r = Check.Conform.run ~long_budget:t.budget.long_conform ~seed:t.seed () in
    List.iter
      (fun (g : Check.Conform.gate) ->
        if not g.passed then incr gates_failed)
      r.gates;
    on_event (Conform_done { report = r; elapsed = now () -. t0 })
  end;
  let failures = List.rev !failures in
  {
    scenario = t;
    failures;
    gates_failed = !gates_failed;
    trials = !trials;
    passed = failures = [] && !gates_failed = 0;
  }
