(** Fixed-size Domain pool with a FIFO work queue and deterministic
    result ordering.

    [run] submits an indexed batch of jobs; workers pull jobs in
    submission order (which worker runs which job is scheduling-
    dependent), results are written into per-index slots and returned
    in submission order.  Jobs must therefore be pure — or at least
    independent — for the output to be execution-order independent;
    the experiment cells of {!Experiments.Plan} are designed to be
    exactly that.

    A pool of size 1 spawns no domains and runs every job in the
    caller's domain, in order: byte-for-byte the sequential
    behaviour, which makes `-j 1` the reference the parallel runs are
    checked against. *)

type t

val monotonic_now : unit -> float
(** Seconds on [CLOCK_MONOTONIC] (arbitrary epoch — only differences
    are meaningful).  All of the pool's own timing goes through this,
    and every other component measuring a duration should too:
    [Unix.gettimeofday] steps under NTP adjustments and can make
    durations negative. *)

val default_size : unit -> int
(** [Domain.recommended_domain_count ()], i.e. the machine's cores. *)

val create : ?size:int -> unit -> t
(** Spawns [size] worker domains (default {!default_size}; size 1
    spawns none).  Raises [Invalid_argument] for [size < 1]. *)

val size : t -> int

type worker_metrics = {
  worker : int;  (** Worker index; 0 is the caller's domain at size 1. *)
  jobs : int;  (** Jobs completed by this worker since [create]. *)
  busy : float;  (** Wall-clock seconds spent inside job bodies. *)
}

type metrics = {
  workers : worker_metrics list;  (** One entry per worker, in index order. *)
  jobs_total : int;
  busy_total : float;
  queue_wait_total : float;
      (** Seconds jobs spent queued before a worker picked them up,
          summed over all jobs; always 0 at size 1 (jobs never queue). *)
  trapped : int;
      (** Exceptions the worker loop's supervision backstop caught
          escaping a job closure.  The closures built by {!try_run}
          are exception-proof, so any non-zero value indicates a pool
          bug — the worker survived it, but it should be reported. *)
}

val metrics : t -> metrics
(** Cumulative since [create], across batches.  Scheduling skew shows
    up as unequal [jobs]/[busy] across workers; a large
    [queue_wait_total] relative to [busy_total] means the pool is
    undersized for the batch.  Must not be called from inside an
    [on_done] callback (it takes the pool lock the callback already
    holds). *)

type 'a outcome = ('a, exn * Printexc.raw_backtrace) result
(** Per-job result: [Ok payload], or the exception (with backtrace)
    the job body raised. *)

val try_run :
  ?on_done:(index:int -> worker:int -> waited:float -> elapsed:float -> unit) ->
  t ->
  (unit -> 'a) list ->
  'a outcome list
(** Execute the jobs, return one {!outcome} per job in submission
    order.  This is the supervised entry point: a job that raises is
    recorded as its own [Error] — it cannot kill a worker domain, leak
    the pool mutex, or stop the remaining jobs — and [try_run] always
    returns once every job has run (it never hangs on a failed job).
    [on_done] fires once per job (also for failed ones) with its
    index, the worker that ran it, its queue-wait and its wall-clock
    seconds, serialized under the pool lock (safe to print from, but
    see {!metrics}); a raising [on_done] is swallowed.  Raises
    [Invalid_argument] after {!shutdown} — at every pool size,
    including 1.  Must not be called from inside a job of the same
    pool (workers would deadlock waiting on themselves). *)

val run :
  ?on_done:(index:int -> worker:int -> waited:float -> elapsed:float -> unit) ->
  t ->
  (unit -> 'a) list ->
  'a list
(** {!try_run}, then either return all payloads in submission order
    or — if any job raised — re-raise the first-submitted failure
    with its backtrace (the whole batch still ran to completion). *)

val map :
  ?on_done:(index:int -> worker:int -> waited:float -> elapsed:float -> unit) ->
  t ->
  ('a -> 'b) ->
  'a list ->
  'b list
(** [map t f xs = run t (List.map (fun x () -> f x) xs)]. *)

val run_init :
  ?on_done:(index:int -> worker:int -> waited:float -> elapsed:float -> unit) ->
  t ->
  int ->
  (int -> 'a) ->
  'a list
(** [run_init t k f] is [run t [fun () -> f 0; …; fun () -> f (k-1)]]
    — the indexed fan-out idiom (one job per shard or cell index),
    with the same deterministic result ordering.  Raises
    [Invalid_argument] on a negative count. *)

val shutdown : t -> unit
(** Drains nothing: pending batches must have completed ([run] blocks
    until its batch is done, so this only matters for misuse).  Joins
    every worker; idempotent. *)

val with_pool : ?size:int -> (t -> 'b) -> 'b
(** [create], run the callback, always [shutdown]. *)
