(** Fixed-size Domain pool with a FIFO work queue and deterministic
    result ordering.

    [run] submits an indexed batch of jobs; workers pull jobs in
    submission order (which worker runs which job is scheduling-
    dependent), results are written into per-index slots and returned
    in submission order.  Jobs must therefore be pure — or at least
    independent — for the output to be execution-order independent;
    the experiment cells of {!Experiments.Plan} are designed to be
    exactly that.

    A pool of size 1 spawns no domains and runs every job in the
    caller's domain, in order: byte-for-byte the sequential
    behaviour, which makes `-j 1` the reference the parallel runs are
    checked against. *)

type t

val default_size : unit -> int
(** [Domain.recommended_domain_count ()], i.e. the machine's cores. *)

val create : ?size:int -> unit -> t
(** Spawns [size] worker domains (default {!default_size}; size 1
    spawns none).  Raises [Invalid_argument] for [size < 1]. *)

val size : t -> int

val run :
  ?on_done:(index:int -> elapsed:float -> unit) ->
  t ->
  (unit -> 'a) list ->
  'a list
(** Execute the jobs, return their results in submission order.
    [on_done] fires once per job with its index and wall-clock
    seconds, serialized under the pool lock (safe to print from).  If
    any job raised, the whole batch still runs to completion, then the
    first-submitted failure is re-raised with its backtrace.  Raises
    [Invalid_argument] after {!shutdown}.  Must not be called from
    inside a job of the same pool (workers would deadlock waiting on
    themselves). *)

val map :
  ?on_done:(index:int -> elapsed:float -> unit) ->
  t ->
  ('a -> 'b) ->
  'a list ->
  'b list
(** [map t f xs = run t (List.map (fun x () -> f x) xs)]. *)

val shutdown : t -> unit
(** Drains nothing: pending batches must have completed ([run] blocks
    until its batch is done, so this only matters for misuse).  Joins
    every worker; idempotent. *)

val with_pool : ?size:int -> (t -> 'b) -> 'b
(** [create], run the callback, always [shutdown]. *)
