(* Queued jobs carry their enqueue timestamp so the worker that pops
   them can account queue-wait time, and receive the popping worker's
   index so per-worker metrics and the on_done callback can attribute
   the work. *)
type job = { enqueued : float; run : worker:int -> waited:float -> unit }

type worker_metrics = { worker : int; jobs : int; busy : float }

type metrics = {
  workers : worker_metrics list;
  jobs_total : int;
  busy_total : float;
  queue_wait_total : float;
  trapped : int;
}

type 'a outcome = ('a, exn * Printexc.raw_backtrace) result

type t = {
  size : int;
  mutex : Mutex.t;
  feed : Condition.t;  (* signalled when a job is queued or on shutdown *)
  jobs : job Queue.t;
  mutable live : bool;
  mutable workers : unit Domain.t array;
  (* Telemetry, all guarded by [mutex].  Worker 0 of a size-1 pool is
     the caller's domain. *)
  jobs_done : int array;
  busy : float array;
  mutable wait_total : float;
  mutable trapped : int;
}

external monotonic_now : unit -> float = "repro_monotonic_now"

let default_size () = max 1 (Domain.recommended_domain_count ())
let size t = t.size

let rec worker t i =
  Mutex.lock t.mutex;
  while Queue.is_empty t.jobs && t.live do
    Condition.wait t.feed t.mutex
  done;
  if Queue.is_empty t.jobs then Mutex.unlock t.mutex (* shutdown *)
  else begin
    let job = Queue.pop t.jobs in
    let waited = monotonic_now () -. job.enqueued in
    t.wait_total <- t.wait_total +. waited;
    Mutex.unlock t.mutex;
    (* Supervision backstop: a job whose closure leaks an exception
       must not take the worker domain down with it — a dead worker
       shrinks the pool silently and, if the job never reported
       completion, leaves [try_run] waiting forever.  The closures
       built by [try_run] are exception-proof by construction (and
       release the pool mutex before anything that can raise), so a
       trap here means a bug in the pool itself; it is counted so
       {!metrics} can surface it. *)
    (try job.run ~worker:i ~waited
     with _ ->
       Mutex.lock t.mutex;
       t.trapped <- t.trapped + 1;
       Mutex.unlock t.mutex);
    worker t i
  end

let create ?size:(n = default_size ()) () =
  if n < 1 then invalid_arg "Pool.create: size must be >= 1";
  let t =
    {
      size = n;
      mutex = Mutex.create ();
      feed = Condition.create ();
      jobs = Queue.create ();
      live = true;
      workers = [||];
      jobs_done = Array.make n 0;
      busy = Array.make n 0.;
      wait_total = 0.;
      trapped = 0;
    }
  in
  (* A pool of size 1 runs jobs in the caller's domain — exactly the
     sequential semantics, with no domain spawned at all. *)
  if n > 1 then t.workers <- Array.init n (fun i -> Domain.spawn (fun () -> worker t i));
  t

let shutdown t =
  Mutex.lock t.mutex;
  let was_live = t.live in
  t.live <- false;
  Condition.broadcast t.feed;
  Mutex.unlock t.mutex;
  if was_live then Array.iter Domain.join t.workers

let metrics t =
  Mutex.lock t.mutex;
  let workers =
    List.init t.size (fun i ->
        { worker = i; jobs = t.jobs_done.(i); busy = t.busy.(i) })
  in
  let queue_wait_total = t.wait_total in
  let trapped = t.trapped in
  Mutex.unlock t.mutex;
  {
    workers;
    jobs_total =
      List.fold_left (fun acc (w : worker_metrics) -> acc + w.jobs) 0 workers;
    busy_total =
      List.fold_left (fun acc (w : worker_metrics) -> acc +. w.busy) 0. workers;
    queue_wait_total;
    trapped;
  }

let try_run ?on_done t fs =
  let fs = Array.of_list fs in
  let n = Array.length fs in
  let outcomes = Array.make n None in
  let finish i ~worker ~waited dt =
    match on_done with
    | Some f -> ( try f ~index:i ~worker ~waited ~elapsed:dt with _ -> ())
    | None -> ()
  in
  (* Busy/job accounting shared by both execution paths; caller must
     hold [t.mutex]. *)
  let account ~worker dt =
    t.jobs_done.(worker) <- t.jobs_done.(worker) + 1;
    t.busy.(worker) <- t.busy.(worker) +. dt
  in
  let execute i f =
    try outcomes.(i) <- Some (Ok (f ()))
    with e -> outcomes.(i) <- Some (Error (e, Printexc.get_raw_backtrace ()))
  in
  if t.size = 1 then begin
    Mutex.lock t.mutex;
    let live = t.live in
    Mutex.unlock t.mutex;
    if not live then invalid_arg "Pool.run: pool is shut down";
    Array.iteri
      (fun i f ->
        let t0 = monotonic_now () in
        execute i f;
        let dt = monotonic_now () -. t0 in
        Mutex.lock t.mutex;
        account ~worker:0 dt;
        Mutex.unlock t.mutex;
        finish i ~worker:0 ~waited:0. dt)
      fs
  end
  else begin
    let remaining = ref n in
    let drained = Condition.create () in
    Mutex.lock t.mutex;
    if not t.live then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.run: pool is shut down"
    end;
    let submitted = monotonic_now () in
    Array.iteri
      (fun i f ->
        Queue.push
          {
            enqueued = submitted;
            run =
              (fun ~worker ~waited ->
                let t0 = monotonic_now () in
                execute i f;
                let dt = monotonic_now () -. t0 in
                Mutex.lock t.mutex;
                (* [remaining]/[drained] is what keeps the caller from
                   waiting forever, so nothing between the lock and
                   the decrement may raise: the job body was caught by
                   [execute], and accounting/callback failures must
                   not prevent the batch from draining. *)
                (try
                   account ~worker dt;
                   finish i ~worker ~waited dt
                 with _ -> ());
                decr remaining;
                if !remaining = 0 then Condition.signal drained;
                Mutex.unlock t.mutex);
          }
          t.jobs)
      fs;
    Condition.broadcast t.feed;
    while !remaining > 0 do
      Condition.wait drained t.mutex
    done;
    Mutex.unlock t.mutex
  end;
  Array.to_list (Array.map Option.get outcomes)

let run ?on_done t fs =
  let outcomes = try_run ?on_done t fs in
  List.iter
    (function
      | Error (e, bt) -> Printexc.raise_with_backtrace e bt
      | Ok _ -> ())
    outcomes;
  List.map (function Ok v -> v | Error _ -> assert false) outcomes

let map ?on_done t f xs = run ?on_done t (List.map (fun x () -> f x) xs)

let run_init ?on_done t k f =
  if k < 0 then invalid_arg "Pool.run_init: negative count";
  run ?on_done t (List.init k (fun i () -> f i))

let with_pool ?size f =
  let t = create ?size () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
