type t = {
  size : int;
  mutex : Mutex.t;
  feed : Condition.t;  (* signalled when a job is queued or on shutdown *)
  jobs : (unit -> unit) Queue.t;
  mutable live : bool;
  mutable workers : unit Domain.t array;
}

let default_size () = max 1 (Domain.recommended_domain_count ())
let size t = t.size

let rec worker t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.jobs && t.live do
    Condition.wait t.feed t.mutex
  done;
  if Queue.is_empty t.jobs then Mutex.unlock t.mutex (* shutdown *)
  else begin
    let job = Queue.pop t.jobs in
    Mutex.unlock t.mutex;
    job ();
    worker t
  end

let create ?size:(n = default_size ()) () =
  if n < 1 then invalid_arg "Pool.create: size must be >= 1";
  let t =
    {
      size = n;
      mutex = Mutex.create ();
      feed = Condition.create ();
      jobs = Queue.create ();
      live = true;
      workers = [||];
    }
  in
  (* A pool of size 1 runs jobs in the caller's domain — exactly the
     sequential semantics, with no domain spawned at all. *)
  if n > 1 then t.workers <- Array.init n (fun _ -> Domain.spawn (fun () -> worker t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  let was_live = t.live in
  t.live <- false;
  Condition.broadcast t.feed;
  Mutex.unlock t.mutex;
  if was_live then Array.iter Domain.join t.workers

let now () = Unix.gettimeofday ()

let run ?on_done t fs =
  let fs = Array.of_list fs in
  let n = Array.length fs in
  let results = Array.make n None in
  let errors = Array.make n None in
  let finish i dt =
    match on_done with Some f -> (try f ~index:i ~elapsed:dt with _ -> ()) | None -> ()
  in
  if t.size = 1 then
    Array.iteri
      (fun i f ->
        let t0 = now () in
        (try results.(i) <- Some (f ())
         with e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ()));
        finish i (now () -. t0))
      fs
  else begin
    let remaining = ref n in
    let drained = Condition.create () in
    Mutex.lock t.mutex;
    if not t.live then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.run: pool is shut down"
    end;
    Array.iteri
      (fun i f ->
        Queue.push
          (fun () ->
            let t0 = now () in
            (try results.(i) <- Some (f ())
             with e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ()));
            let dt = now () -. t0 in
            Mutex.lock t.mutex;
            finish i dt;
            decr remaining;
            if !remaining = 0 then Condition.signal drained;
            Mutex.unlock t.mutex)
          t.jobs)
      fs;
    Condition.broadcast t.feed;
    while !remaining > 0 do
      Condition.wait drained t.mutex
    done;
    Mutex.unlock t.mutex
  end;
  Array.iter
    (function
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())
    errors;
  Array.to_list (Array.map Option.get results)

let map ?on_done t f xs = run ?on_done t (List.map (fun x () -> f x) xs)

let with_pool ?size f =
  let t = create ?size () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
