/* Monotonic clock for the pool's timing telemetry.

   Unix.gettimeofday follows the wall clock, which steps under NTP
   adjustments and can make elapsed/queue-wait durations negative; the
   OCaml Unix library exposes no monotonic clock, so this stub wraps
   clock_gettime(CLOCK_MONOTONIC), which only moves forward.  The
   epoch is arbitrary (typically boot time): only differences between
   two readings are meaningful. */

#include <time.h>
#include <caml/mlvalues.h>
#include <caml/alloc.h>

CAMLprim value repro_monotonic_now(value unit)
{
  struct timespec ts;
  (void) unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_double((double) ts.tv_sec + 1e-9 * (double) ts.tv_nsec);
}
