(** Mean-field (fluid-limit) approximation of the lumped (a, b) system
    chain.

    Track the expected counts a = E[#Read], b = E[#OldCAS] and close
    the hierarchy by replacing E[c²] with (E[c])² (c = n − a − b).
    Per system step, E[Δa] = (n − 2a)/n and E[Δb] = (c(c−1) − b)/n, so
    in rescaled time τ = steps/n the fluid ODE is

      da/dτ = n − 2a,      db/dτ = c(c−1) − b.

    Its unique fixed point is exactly a* = n/2, c* = √(n/2), so the
    stationary success rate per step is c*/n = 1/√(2n) and the
    mean-field latency is W_mf = √(2n) — the Θ(√n) scaling of
    Theorem 5 with an explicit constant.  The fluctuation correction
    the fluid limit drops is the multiplicative factor √(π/2): the
    exact chain's W(n) → √(πn) (see [Predict]); the conformance gates
    pin this ratio.

    Evaluation cost is O(√n) RK4 steps, so n = 10⁶ (and far beyond) is
    direct — no state space is ever materialized. *)

type state = { a : float; b : float }

val drift : n:float -> state -> state
(** (da/dτ, db/dτ) at the given point. *)

val fixed_point : n:int -> state
(** The analytic fixed point: a* = n/2, b* = n/2 − √(n/2). *)

val latency_closed_form : n:int -> float
(** W_mf = n / c* = √(2n). *)

val steady_state :
  ?dt:float -> ?horizon:float -> ?tol:float -> n:int -> unit -> state
(** Integrates the ODE from the all-Read corner (a = n, b = 0) with
    RK4 until the drift's L1 norm falls below [tol]·n (default 1e-12)
    or τ reaches [horizon] (default 20).  [dt] defaults to 0.25/√n —
    inside the stability interval of the stiff b mode (λ ≈ −√(2n)).
    The tests check this lands on {!fixed_point} to ~1e-9·n. *)

val latency : ?dt:float -> ?horizon:float -> ?tol:float -> n:int -> unit -> float
(** n / c at the integrated steady state; ≈ {!latency_closed_form}. *)
