(* Knuth's normalization: Q(n) = 1 + (n-1)/n + (n-1)(n-2)/n^2 + …
   (the k = 0 term is 1).  With this normalization Q(n) equals Z(n-1)
   exactly, and the birthday expectation is Q(n) + 1. *)
let q n =
  if n < 1 then invalid_arg "Ramanujan.q: n must be >= 1";
  let nf = float_of_int n in
  let acc = ref 1. and term = ref 1. in
  let k = ref 1 in
  let continue_sum = ref (n > 1) in
  while !continue_sum do
    term := !term *. (float_of_int (n - !k) /. nf);
    acc := !acc +. !term;
    incr k;
    if !k > n - 1 || !term < 1e-300 then continue_sum := false
  done;
  !acc

let z_value = q
let birthday_expectation n = q n +. 1.
let asymptotic n = sqrt (Float.pi *. float_of_int n /. 2.)
let asymptotic_refined n = asymptotic n -. (1. /. 3.)
