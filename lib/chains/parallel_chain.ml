module Individual = struct
  type t = {
    chain : Markov.Chain.t;
    n : int;
    q : int;
    encode : int array -> int;
    decode : int -> int array;
    initial : int;
  }

  let make ~n ~q =
    if n < 1 then invalid_arg "Parallel_chain.Individual.make: n must be >= 1";
    if q < 1 then invalid_arg "Parallel_chain.Individual.make: q must be >= 1";
    let size =
      let rec pow acc k = if k = 0 then acc else pow (acc * q) (k - 1) in
      pow 1 n
    in
    if size > 200_000 then invalid_arg "Parallel_chain.Individual.make: q^n too large";
    let encode counters = Array.fold_right (fun c acc -> (acc * q) + c) counters 0 in
    let decode i =
      let c = ref i in
      Array.init n (fun _ ->
          let v = !c mod q in
          c := !c / q;
          v)
    in
    let p = 1. /. float_of_int n in
    let row i =
      let counters = decode i in
      List.init n (fun proc ->
          let next = Array.copy counters in
          next.(proc) <- (next.(proc) + 1) mod q;
          (encode next, p))
    in
    let chain = Markov.Chain.create ~size ~row () in
    { chain; n; q; encode; decode; initial = 0 }

  let completion_weight t ~proc i =
    let counters = t.decode i in
    if counters.(proc) = t.q - 1 then 1. /. float_of_int t.n else 0.

  let any_completion_weight t i =
    let counters = t.decode i in
    let ready =
      Array.fold_left (fun acc c -> if c = t.q - 1 then acc + 1 else acc) 0 counters
    in
    float_of_int ready /. float_of_int t.n
end

module System = struct
  type t = {
    chain : Markov.Chain.t;
    n : int;
    q : int;
    encode : int array -> int;
    decode : int -> int array;
    initial : int;
  }

  (* Enumerate all compositions of n into q non-negative parts. *)
  let compositions ~n ~q =
    let out = ref [] in
    let v = Array.make q 0 in
    let rec fill pos remaining =
      if pos = q - 1 then begin
        v.(pos) <- remaining;
        out := Array.copy v :: !out
      end
      else
        for take = 0 to remaining do
          v.(pos) <- take;
          fill (pos + 1) (remaining - take)
        done
    in
    fill 0 n;
    Array.of_list (List.rev !out)

  let make ~n ~q =
    if n < 1 then invalid_arg "Parallel_chain.System.make: n must be >= 1";
    if q < 1 then invalid_arg "Parallel_chain.System.make: q must be >= 1";
    let states = compositions ~n ~q in
    let index = Hashtbl.create (Array.length states) in
    Array.iteri (fun i v -> Hashtbl.replace index (Array.to_list v) i) states;
    let encode v =
      match Hashtbl.find_opt index (Array.to_list v) with
      | Some i -> i
      | None -> invalid_arg "Parallel_chain.System: invalid occupancy vector"
    in
    let decode i = Array.copy states.(i) in
    let nf = float_of_int n in
    let row i =
      let v = states.(i) in
      let out = ref [] in
      for j = 0 to q - 1 do
        if v.(j) > 0 then begin
          let next = Array.copy v in
          next.(j) <- next.(j) - 1;
          next.((j + 1) mod q) <- next.((j + 1) mod q) + 1;
          out := (encode next, float_of_int v.(j) /. nf) :: !out
        end
      done;
      (* With q = 1 every step is a completion that maps the single
         state to itself; collapse duplicate self-loops. *)
      let merged = Hashtbl.create 8 in
      List.iter
        (fun (j, p) ->
          let prev = Option.value (Hashtbl.find_opt merged j) ~default:0. in
          Hashtbl.replace merged j (prev +. p))
        !out;
      Hashtbl.fold (fun j p acc -> (j, p) :: acc) merged []
    in
    let label i =
      String.concat "," (Array.to_list (Array.map string_of_int states.(i)))
    in
    let chain = Markov.Chain.create ~label ~size:(Array.length states) ~row () in
    let initial = Array.make q 0 in
    initial.(0) <- n;
    { chain; n; q; encode; decode; initial = encode initial }

  let any_completion_weight t i =
    let v = t.decode i in
    float_of_int v.(t.q - 1) /. float_of_int t.n

  let system_latency ~n ~q =
    let t = make ~n ~q in
    let pi = Markov.Stationary.compute t.chain in
    let rate =
      Markov.Stationary.success_rate t.chain ~pi ~weight:(any_completion_weight t)
    in
    1. /. rate
end

let lift (ind : Individual.t) (sys : System.t) i =
  let counters = ind.decode i in
  let v = Array.make ind.q 0 in
  Array.iter (fun c -> v.(c) <- v.(c) + 1) counters;
  sys.encode v
