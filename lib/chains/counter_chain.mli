(** The Markov chains of §7 for the augmented-CAS fetch-and-increment
    counter (Algorithm 5).

    Each process is either [Current] (its local value matches R; its
    next CAS wins) or [Stale].  The individual chain's states are the
    non-empty subsets S of processes holding the current value
    (2ⁿ − 1 states); a step by j ∈ S wins and leaves {j} current,
    a step by j ∉ S gives j the current value (S ∪ {j}).

    The global chain collapses S to its size: from state vᵢ
    (i processes current) the chain wins to v₁ with probability i/n
    and grows to v_{i+1} otherwise.

    Lemma 12: the expected return time of v₁ is W = Z(n−1) ≤ 2√n,
    where Z is the recurrence Z(0) = 1, Z(i) = i·Z(i−1)/n + 1 — the
    Ramanujan Q-function (see {!Ramanujan}). *)

module Individual : sig
  type t = {
    chain : Markov.Chain.t;
    n : int;
    encode : int -> int;  (** Non-empty bitmask of current processes → state id. *)
    decode : int -> int;  (** State id → bitmask. *)
    initial : int;  (** All processes current (the initial configuration). *)
  }

  val make : n:int -> t
  (** 2ⁿ − 1 states; practical for n ≲ 16. *)

  val win_weight : t -> proc:int -> int -> float
  (** Probability the next step is a win by [proc]. *)

  val any_win_weight : t -> int -> float
end

module Global : sig
  type t = {
    chain : Markov.Chain.t;
    n : int;  (** State id i represents v_{i+1}: i+1 processes current. *)
  }

  val make : n:int -> t
  val any_win_weight : t -> int -> float

  val return_time_v1 : n:int -> float
  (** Expected return time of v₁ (= the system latency W), computed
      from the chain. *)
end

val lift : Individual.t -> int -> int
(** The lifting map: |S| − 1. *)

val z_recurrence : n:int -> float array
(** [Z(0) … Z(n−1)] from the paper's recurrence; [z_recurrence n).(n-1)]
    equals [Global.return_time_v1 ~n] (verified in the tests). *)
