(** Closed-form predictions used as the "predicted" series of the
    paper's evaluation.

    Figure 5 compares the measured completion rate of the CAS counter
    against the model's Θ(1/√n) prediction (scaled to the first data
    point, as in the paper) and the worst-case 1/n rate.  Theorem 4's
    q + s√n latency shape is exposed for the parameter-sweep
    experiments. *)

val completion_rate_sqrt : float -> float
(** 1/√n — the model's completion-rate shape for SCU(0, 1). *)

val completion_rate_worst_case : float -> float
(** 1/n — the worst-case (adversarial) completion rate: only one
    process makes progress per n steps. *)

val scu_system_latency : q:int -> s:int -> alpha:float -> float -> float
(** q + alpha·s·√n (Theorem 4's shape with an explicit constant). *)

val scu_individual_latency : q:int -> s:int -> alpha:float -> float -> float
(** n · (q + alpha·s·√n). *)

val exact_scan_validate_latency : n:int -> float
(** The exact (non-asymptotic) stationary system latency of
    SCU(0, 1), from the system chain — usable wherever the O(√n)
    bound's hidden constant would be a fudge factor. *)

val fitted_alpha : ns:int list -> float
(** Least-squares fit of [exact_scan_validate_latency n ≈ alpha·√n]
    over the given n values (the empirical constant is ≈ 1.1). *)
