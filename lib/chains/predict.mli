(** Closed-form predictions used as the "predicted" series of the
    paper's evaluation.

    Figure 5 compares the measured completion rate of the CAS counter
    against the model's Θ(1/√n) prediction (scaled to the first data
    point, as in the paper) and the worst-case 1/n rate.  Theorem 4's
    q + s√n latency shape is exposed for the parameter-sweep
    experiments. *)

val completion_rate_sqrt : float -> float
(** 1/√n — the model's completion-rate shape for SCU(0, 1). *)

val completion_rate_worst_case : float -> float
(** 1/n — the worst-case (adversarial) completion rate: only one
    process makes progress per n steps. *)

val scu_system_latency : q:int -> s:int -> alpha:float -> float -> float
(** q + alpha·s·√n (Theorem 4's shape with an explicit constant). *)

val scu_individual_latency : q:int -> s:int -> alpha:float -> float -> float
(** n · (q + alpha·s·√n). *)

val exact_scan_validate_latency : n:int -> float
(** The exact (non-asymptotic) stationary system latency of
    SCU(0, 1), from the system chain — usable wherever the O(√n)
    bound's hidden constant would be a fudge factor. *)

val asymptotic_scan_validate_latency : n:int -> float
(** √(πn): the large-n closed form of the exact system latency.  The
    counter chain's Ramanujan asymptote is √(πn/2); scan-validate's
    period-2 structure doubles the variance, giving √2·√(πn/2).  The
    exact W(n)/√n sequence converges to √π ≈ 1.7725 from above
    (≈ 1.85 at n = 64, Richardson-extrapolating to ≈ 1.78); the
    conformance gates pin the agreement at the largest n the sparse
    solver reaches. *)

val meanfield_scan_validate_latency : n:int -> float
(** √(2n): the fluid-limit latency ([Meanfield.latency_closed_form]),
    i.e. √(πn) with the fluctuation factor dropped. *)

val fluctuation_correction : float
(** √(π/2) ≈ 1.2533 — the exact-to-mean-field latency ratio
    (√(πn)/√(2n)); what closing the moment hierarchy at first order
    loses. *)

val fitted_alpha : ns:int list -> float
(** Least-squares fit of [exact_scan_validate_latency n ≈ alpha·√n]
    over the given n values (the empirical constant is ≈ 1.1). *)
