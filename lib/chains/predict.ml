let completion_rate_sqrt n = 1. /. sqrt n
let completion_rate_worst_case n = 1. /. n

let scu_system_latency ~q ~s ~alpha n =
  float_of_int q +. (alpha *. float_of_int s *. sqrt n)

let scu_individual_latency ~q ~s ~alpha n = n *. scu_system_latency ~q ~s ~alpha n

let exact_scan_validate_latency ~n = Scu_chain.System.system_latency ~n

let asymptotic_scan_validate_latency ~n = sqrt (Float.pi *. float_of_int n)
let meanfield_scan_validate_latency ~n = sqrt (2. *. float_of_int n)
let fluctuation_correction = sqrt (Float.pi /. 2.)

let fitted_alpha ~ns =
  let pts =
    List.map
      (fun n -> (sqrt (float_of_int n), exact_scan_validate_latency ~n))
      ns
  in
  (* Fit through the origin: alpha = Σxy / Σx². *)
  let sxy = List.fold_left (fun acc (x, y) -> acc +. (x *. y)) 0. pts in
  let sxx = List.fold_left (fun acc (x, _) -> acc +. (x *. x)) 0. pts in
  sxy /. sxx
