module Individual = struct
  type t = {
    chain : Markov.Chain.t;
    n : int;
    encode : int -> int;
    decode : int -> int;
    initial : int;
  }

  let popcount mask =
    let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
    go mask 0

  let make ~n =
    if n < 1 || n > 16 then invalid_arg "Counter_chain.Individual.make: need 1 <= n <= 16";
    let size = (1 lsl n) - 1 in
    let encode mask =
      if mask <= 0 || mask > size then
        invalid_arg "Counter_chain.Individual: state must be a non-empty subset";
      mask - 1
    in
    let decode i = i + 1 in
    let p = 1. /. float_of_int n in
    let row i =
      let mask = decode i in
      List.init n (fun j ->
          let next =
            if mask land (1 lsl j) <> 0 then 1 lsl j (* j wins; only j is current *)
            else mask lor (1 lsl j) (* j's CAS fails but it learns the value *)
          in
          (encode next, p))
    in
    let label i = Printf.sprintf "S=%x" (decode i) in
    let chain = Markov.Chain.create ~label ~size ~row () in
    { chain; n; encode; decode; initial = encode size }

  let win_weight t ~proc i =
    let mask = t.decode i in
    if mask land (1 lsl proc) <> 0 then 1. /. float_of_int t.n else 0.

  let any_win_weight t i =
    float_of_int (popcount (t.decode i)) /. float_of_int t.n
end

module Global = struct
  type t = { chain : Markov.Chain.t; n : int }

  let make ~n =
    if n < 1 then invalid_arg "Counter_chain.Global.make: n must be >= 1";
    let nf = float_of_int n in
    let row i =
      (* State i = v_{i+1}: i+1 processes hold the current value. *)
      let current = i + 1 in
      let win = float_of_int current /. nf in
      if current = n then [ (0, 1.) ]
      else [ (0, win); (i + 1, 1. -. win) ]
    in
    let label i = Printf.sprintf "v%d" (i + 1) in
    { chain = Markov.Chain.create ~label ~size:n ~row (); n }

  let any_win_weight t i = float_of_int (i + 1) /. float_of_int t.n

  let return_time_v1 ~n =
    let t = make ~n in
    Markov.Hitting.expected_return_time t.chain 0
end

let lift (ind : Individual.t) i = Individual.popcount (ind.decode i) - 1

let z_recurrence ~n =
  if n < 1 then invalid_arg "Counter_chain.z_recurrence: n must be >= 1";
  let z = Array.make n 0. in
  z.(0) <- 1.;
  for i = 1 to n - 1 do
    z.(i) <- (float_of_int i *. z.(i - 1) /. float_of_int n) +. 1.
  done;
  z
