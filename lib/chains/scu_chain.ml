type extended_state = Read | OldCAS | CCAS

let trit_of = function Read -> 0 | OldCAS -> 1 | CCAS -> 2
let state_of = function 0 -> Read | 1 -> OldCAS | 2 -> CCAS | _ -> assert false

module Individual = struct
  type t = {
    chain : Markov.Chain.t;
    n : int;
    encode : extended_state array -> int;
    decode : int -> extended_state array;
    initial : int;
  }

  (* States are base-3 codes over n trits; the all-OldCAS code
     (every trit = 1) is excluded, and indices above it shift down by
     one so state ids stay contiguous. *)
  let make ~n =
    if n < 1 || n > 12 then invalid_arg "Scu_chain.Individual.make: need 1 <= n <= 12";
    let pow3 = Array.make (n + 1) 1 in
    for k = 1 to n do
      pow3.(k) <- pow3.(k - 1) * 3
    done;
    let bad = (pow3.(n) - 1) / 2 (* 111…1 in base 3 *) in
    let size = pow3.(n) - 1 in
    let code_of_states sts =
      Array.fold_right (fun st acc -> (acc * 3) + trit_of st) sts 0
    in
    let index_of_code c =
      if c = bad then invalid_arg "Scu_chain: the all-OldCAS state does not exist";
      if c < bad then c else c - 1
    in
    let code_of_index i = if i < bad then i else i + 1 in
    let decode i =
      let c = ref (code_of_index i) in
      Array.init n (fun _ ->
          let t = !c mod 3 in
          c := !c / 3;
          state_of t)
    in
    let encode sts = index_of_code (code_of_states sts) in
    let row i =
      let sts = decode i in
      let p = 1. /. float_of_int n in
      List.init n (fun proc ->
          let next = Array.copy sts in
          (match sts.(proc) with
          | Read -> next.(proc) <- CCAS
          | OldCAS -> next.(proc) <- Read
          | CCAS ->
              (* A successful CAS: every other pending CCAS becomes stale. *)
              Array.iteri
                (fun j st -> if j <> proc && st = CCAS then next.(j) <- OldCAS)
                sts;
              next.(proc) <- Read);
          (encode next, p))
    in
    let label i =
      let sts = decode i in
      String.concat ""
        (Array.to_list
           (Array.map (function Read -> "R" | OldCAS -> "O" | CCAS -> "C") sts))
    in
    let chain = Markov.Chain.create ~label ~size ~row () in
    { chain; n; encode; decode; initial = encode (Array.make n Read) }

  let success_weight t ~proc i =
    let sts = t.decode i in
    if sts.(proc) = CCAS then 1. /. float_of_int t.n else 0.

  let any_success_weight t i =
    let sts = t.decode i in
    let c = Array.fold_left (fun acc st -> if st = CCAS then acc + 1 else acc) 0 sts in
    float_of_int c /. float_of_int t.n
end

module System = struct
  type t = {
    chain : Markov.Chain.t;
    n : int;
    encode : a:int -> b:int -> int;
    decode : int -> int * int;
    initial : int;
  }

  let make ~n =
    if n < 1 then invalid_arg "Scu_chain.System.make: n must be >= 1";
    (* Enumerate (a, b) with a, b >= 0, a + b <= n, excluding (0, n). *)
    let states = ref [] in
    for a = n downto 0 do
      for b = n - a downto 0 do
        if not (a = 0 && b = n) then states := (a, b) :: !states
      done
    done;
    let states = Array.of_list !states in
    let index = Hashtbl.create (Array.length states) in
    Array.iteri (fun i ab -> Hashtbl.replace index ab i) states;
    let encode ~a ~b =
      match Hashtbl.find_opt index (a, b) with
      | Some i -> i
      | None -> invalid_arg (Printf.sprintf "Scu_chain.System: invalid state (%d,%d)" a b)
    in
    let decode i = states.(i) in
    let nf = float_of_int n in
    let row i =
      let a, b = states.(i) in
      let c = n - a - b in
      let out = ref [] in
      if b > 0 then out := (encode ~a:(a + 1) ~b:(b - 1), float_of_int b /. nf) :: !out;
      if a > 0 then out := (encode ~a:(a - 1) ~b, float_of_int a /. nf) :: !out;
      (* The success transition: the winner returns to Read and all
         other CCAS processes (c − 1 of them) fall to OldCAS:
         (a, b) → (a+1, b + c − 1) = (a+1, n − a − 1). *)
      if c > 0 then
        out := (encode ~a:(a + 1) ~b:(n - a - 1), float_of_int c /. nf) :: !out;
      !out
    in
    let label i =
      let a, b = states.(i) in
      Printf.sprintf "(%d,%d)" a b
    in
    let chain = Markov.Chain.create ~label ~size:(Array.length states) ~row () in
    { chain; n; encode; decode; initial = encode ~a:n ~b:0 }

  let any_success_weight t i =
    let a, b = t.decode i in
    float_of_int (t.n - a - b) /. float_of_int t.n

  (* Arithmetic (a, b) indexing matching [make]'s enumeration —
     ascending a-major, b ascending within a block, with (0, n)
     excluded (it sat at the end of block a = 0) — so stationary
     vectors from the dense and sparse constructions are comparable
     index for index. *)
  let index ~n ~a ~b =
    let block_start a = (a * (n + 1)) - (a * (a - 1) / 2) in
    if a = 0 then b else block_start a - 1 + b

  let decode_index ~n i =
    (* Invert [index] by scanning blocks: a has at most n+1 values, so
       the linear scan is O(n) and only used on demand. *)
    let rec find a start =
      let width = n - a + 1 - if a = 0 then 1 else 0 in
      if i < start + width then (a, i - start) else find (a + 1) (start + width)
    in
    find 0 0

  (* Direct CSR construction of the lumped chain: no hash table, no
     per-row list churn, ≤ 3 nonzeros per state.  This is what lets
     the (a, b) chain be *solved* at n in the hundreds-to-thousands
     (10⁵–10⁶ states) instead of the dense ceiling's n ≈ 88. *)
  let sparse ~n =
    if n < 1 then invalid_arg "Scu_chain.System.sparse: n must be >= 1";
    let size = ((n + 1) * (n + 2) / 2) - 1 in
    let nf = float_of_int n in
    let rows =
      Array.init size (fun i ->
          let a, b = decode_index ~n i in
          let c = n - a - b in
          let out = ref [] in
          if b > 0 then
            out := (index ~n ~a:(a + 1) ~b:(b - 1), float_of_int b /. nf) :: !out;
          if a > 0 then
            out := (index ~n ~a:(a - 1) ~b, float_of_int a /. nf) :: !out;
          if c > 0 then
            out :=
              (index ~n ~a:(a + 1) ~b:(n - a - 1), float_of_int c /. nf) :: !out;
          !out)
    in
    let label i =
      let a, b = decode_index ~n i in
      Printf.sprintf "(%d,%d)" a b
    in
    Markov.Sparse.of_rows ~label ~size rows

  (* Latency queries recur across experiments and tests (same n), and
     the underlying solve is O(states³); memoize by n.  The table is
     shared by every experiment cell, and cells run concurrently on
     the Domain pool, so accesses are serialized; the solve itself
     runs outside the lock (two domains racing on a fresh n compute
     the same value twice, which is harmless). *)
  let latency_cache : (int, float) Hashtbl.t = Hashtbl.create 16
  let latency_lock = Mutex.create ()

  let system_latency ~n =
    let cached =
      Mutex.protect latency_lock (fun () -> Hashtbl.find_opt latency_cache n)
    in
    match cached with
    | Some w -> w
    | None ->
        let t = make ~n in
        let pi = Markov.Stationary.compute t.chain in
        let rate =
          Markov.Stationary.success_rate t.chain ~pi ~weight:(any_success_weight t)
        in
        let w = 1. /. rate in
        Mutex.protect latency_lock (fun () -> Hashtbl.replace latency_cache n w);
        w

  (* Same latency, computed from the CSR chain with the Gauss–Seidel
     stationary solve — no dense matrix, so it reaches n where the
     state count is 10⁵–10⁶.  Separate cache: the two paths are
     compared against each other in the conformance gates, so neither
     may shadow the other's value. *)
  let sparse_latency_cache : (int, float) Hashtbl.t = Hashtbl.create 16

  let sparse_latency ?tol ~n () =
    let cached =
      Mutex.protect latency_lock (fun () ->
          Hashtbl.find_opt sparse_latency_cache n)
    in
    match cached with
    | Some w -> w
    | None ->
        let t = sparse ~n in
        let pi = Markov.Sparse.stationary ?tol t in
        let nf = float_of_int n in
        let rate = ref 0. in
        Array.iteri
          (fun i p ->
            let a, b = decode_index ~n i in
            rate := !rate +. (p *. (float_of_int (n - a - b) /. nf)))
          pi;
        let w = 1. /. !rate in
        Mutex.protect latency_lock (fun () ->
            Hashtbl.replace sparse_latency_cache n w);
        w
end

let lift (ind : Individual.t) (sys : System.t) i =
  let sts = ind.decode i in
  let a = Array.fold_left (fun acc st -> if st = Read then acc + 1 else acc) 0 sts in
  let b = Array.fold_left (fun acc st -> if st = OldCAS then acc + 1 else acc) 0 sts in
  sys.encode ~a ~b

let individual_latency ~n = float_of_int n *. System.system_latency ~n
