(** The Markov chains of §6.2 for "parallel code" (Algorithm 4): each
    process cycles through q step-counter values; a completion happens
    whenever a counter wraps from q−1 to 0.

    The individual chain M_I has qⁿ states (all counter tuples) and a
    uniform stationary distribution; the system chain M_S records only
    the occupancy vector (v₀ … v_{q−1}) with Σvⱼ = n.  Lemma 10: the
    occupancy map is a lifting.  Lemma 11: system latency is exactly
    q, individual latency exactly n·q. *)

module Individual : sig
  type t = {
    chain : Markov.Chain.t;
    n : int;
    q : int;
    encode : int array -> int;
    decode : int -> int array;
    initial : int;  (** All counters at 0. *)
  }

  val make : n:int -> q:int -> t
  (** qⁿ states; keep n·log q small (guarded at qⁿ ≤ 200_000). *)

  val completion_weight : t -> proc:int -> int -> float
  val any_completion_weight : t -> int -> float
end

module System : sig
  type t = {
    chain : Markov.Chain.t;
    n : int;
    q : int;
    encode : int array -> int;
    decode : int -> int array;
    initial : int;
  }

  val make : n:int -> q:int -> t
  (** C(n+q−1, q−1) states. *)

  val any_completion_weight : t -> int -> float

  val system_latency : n:int -> q:int -> float
  (** Exactly q (Lemma 11); computed from the chain, asserted exact in
      the tests. *)
end

val lift : Individual.t -> System.t -> int -> int
(** Occupancy map. *)
