(** The two Markov chains of §6.1.1 for the scan-validate component
    SCU(0, 1), and the lifting between them (Figure 1 shows the n = 2
    case).

    {b Individual chain}: a state records each process's *extended
    local state* — [Read] (about to read R), [CCAS] (about to CAS with
    the current value), or [OldCAS] (about to CAS with a stale value).
    There are 3ⁿ − 1 states (all-OldCAS cannot occur).  Scheduled
    process transitions: Read → CCAS; OldCAS → Read; CCAS → Read
    (a successful CAS) while every *other* CCAS process falls to
    OldCAS.

    {b System chain}: a state is the pair (a, b) with a = #Read,
    b = #OldCAS (the other n − a − b processes are CCAS), excluding
    (0, n).  We derive its transitions from the individual-chain
    semantics:
    - an OldCAS process steps (prob b/n): (a, b) → (a+1, b−1);
    - a Read process steps (prob a/n): (a, b) → (a−1, b);
    - a CCAS process steps — a success — (prob (n−a−b)/n):
      (a, b) → (a+1, n−a−1).

    Note 1: the arXiv manuscript's §6.1.1 lists the last two transition
    probabilities with typos (e.g. "Pr[(a+1, b)|(a, b)] = 1−(a+b)/n",
    which is inconsistent with its own Figure 1 and with the
    individual-chain semantics it states in prose).  We implement the
    semantics; [Markov.Lifting.verify] in the test suite confirms the
    system chain above is the exact lifting of the individual chain,
    which is the property Lemma 5 needs.

    Note 2 (reproduction finding): Lemma 3 calls both chains ergodic,
    but both are *periodic with period 2* — every step changes one
    process's phase and flips a parity invariant (a changes by ±1 in
    the system chain), and no state has a self-loop.  Irreducibility
    (hence the unique stationary distribution of Theorem 1 and all
    long-run averages) does hold, so the paper's quantitative results
    are unaffected; see the ergodicity tests in
    [test/test_chains.ml]. *)

type extended_state = Read | OldCAS | CCAS

module Individual : sig
  type t = {
    chain : Markov.Chain.t;
    n : int;
    encode : extended_state array -> int;
    decode : int -> extended_state array;
    initial : int;  (** All processes in [Read]. *)
  }

  val make : n:int -> t
  (** 3ⁿ − 1 states; practical for n ≲ 10. *)

  val success_weight : t -> proc:int -> int -> float
  (** Probability that the next step is a successful CAS *by [proc]*
      from the given state ([1/n] if [proc] is in [CCAS], else 0). *)

  val any_success_weight : t -> int -> float
  (** Probability that the next step is a success by anyone. *)
end

module System : sig
  type t = {
    chain : Markov.Chain.t;
    n : int;
    encode : a:int -> b:int -> int;
    decode : int -> int * int;
    initial : int;  (** (n, 0). *)
  }

  val make : n:int -> t
  (** (n+1)(n+2)/2 − 1 states. *)

  val any_success_weight : t -> int -> float

  val index : n:int -> a:int -> b:int -> int
  (** Arithmetic state index for population [n]: a-major, b ascending,
      (0, n) excluded.  Matches [make]'s enumeration, so dense and
      sparse stationary vectors are comparable index for index. *)

  val decode_index : n:int -> int -> int * int
  (** Inverse of [index]. *)

  val sparse : n:int -> Markov.Sparse.t
  (** The same (a, b) chain built directly in CSR form — ≤ 3 nonzeros
      per row, no hash table — solvable by {!Markov.Sparse.stationary}
      at 10⁵–10⁶ states, far beyond the dense solver's ceiling. *)

  val system_latency : n:int -> float
  (** W: expected system steps between successes in the stationary
      distribution — the exact value Theorem 5 bounds by O(√n).
      Dense path ([make] + [Markov.Stationary.compute]); memoized. *)

  val sparse_latency : ?tol:float -> n:int -> unit -> float
  (** W computed from {!sparse} via Gauss–Seidel ({!Markov.Sparse.stationary});
      memoized separately from [system_latency] so the conformance
      gates can compare the two paths.  [tol] is the L1 residual bound
      on ‖πP − π‖₁ (default 1e-12). *)
end

val lift : Individual.t -> System.t -> int -> int
(** The lifting map f of Definition 2: count Read and OldCAS
    processes. *)

val individual_latency : n:int -> float
(** W_i = n·W via Lemma 7 — computed exactly from the system chain. *)
