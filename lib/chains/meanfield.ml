type state = { a : float; b : float }

let drift ~n { a; b } =
  let c = n -. a -. b in
  { a = n -. (2. *. a); b = (c *. (c -. 1.)) -. b }

let fixed_point ~n =
  let nf = float_of_int n in
  let c = sqrt (nf /. 2.) in
  { a = nf /. 2.; b = (nf /. 2.) -. c }

let latency_closed_form ~n = sqrt (2. *. float_of_int n)

(* One RK4 step of the drift field. *)
let rk4_step ~n ~dt s =
  let add s k w = { a = s.a +. (w *. k.a); b = s.b +. (w *. k.b) } in
  let k1 = drift ~n s in
  let k2 = drift ~n (add s k1 (dt /. 2.)) in
  let k3 = drift ~n (add s k2 (dt /. 2.)) in
  let k4 = drift ~n (add s k3 dt) in
  {
    a = s.a +. (dt /. 6. *. (k1.a +. (2. *. k2.a) +. (2. *. k3.a) +. k4.a));
    b = s.b +. (dt /. 6. *. (k1.b +. (2. *. k2.b) +. (2. *. k3.b) +. k4.b));
  }

let steady_state ?dt ?(horizon = 20.) ?(tol = 1e-12) ~n () =
  if n < 1 then invalid_arg "Meanfield.steady_state: n must be >= 1";
  let nf = float_of_int n in
  (* The Jacobian's fast eigenvalue is ≈ −2c* = −√(2n) (the b
     relaxation); dt = 0.25/√n keeps λ·dt ≈ −0.35 comfortably inside
     RK4's stability interval while the slow mode (λ = −2, the a
     relaxation) sets the horizon: τ = 20 leaves a residual e⁻⁴⁰. *)
  let dt = match dt with Some d -> d | None -> 0.25 /. sqrt nf in
  let s = ref { a = nf; b = 0. } in
  let tau = ref 0. in
  let converged s =
    let d = drift ~n:nf s in
    Float.abs d.a +. Float.abs d.b <= tol *. nf
  in
  while !tau < horizon && not (converged !s) do
    s := rk4_step ~n:nf ~dt !s;
    tau := !tau +. dt
  done;
  !s

let latency ?dt ?horizon ?tol ~n () =
  let s = steady_state ?dt ?horizon ?tol ~n () in
  let c = float_of_int n -. s.a -. s.b in
  float_of_int n /. c
