(** Ramanujan's Q-function (paper §7.2 Remark, refs [5, 13]), in
    Knuth's normalization:

      Q(n) = 1 + (n−1)/n + (n−1)(n−2)/n² + …

    Q(n) + 1 is the expected number of uniform draws from {1..n} until
    the first repeat (birthday paradox), and Q(n) itself is exactly
    Z(n−1) — the return time of the augmented-CAS counter's win state
    (the chain counts steps, i.e. draws after the first).  Asymptotics
    (Flajolet, Grabner, Kirschenhofer, Prodinger):
    Q(n) = √(πn/2) − 1/3 + O(1/√n), the paper's √(πn/2)(1 + o(1)). *)

val q : int -> float
(** Q(n), exact summation.  Requires n >= 1. *)

val z_value : int -> float
(** Z(n−1) = Q(n): verified against the recurrence and the chain's
    return time in the tests. *)

val birthday_expectation : int -> float
(** Expected number of uniform draws from {1..n} until the first
    repeat: Q(n) + 1. *)

val asymptotic : int -> float
(** √(πn/2) — the leading term. *)

val asymptotic_refined : int -> float
(** √(πn/2) − 1/3: the two-term expansion. *)
