(** Finite discrete-time Markov chains.

    States are integers [0 .. size-1]; the transition structure is a
    sparse row function so that chains with millions of implicit states
    never materialize a dense matrix unless asked to. *)

type t = {
  size : int;
  row : int -> (int * float) list;
      (** [row i] lists the outgoing transitions [(j, p_ij)] of state
          [i] with positive probability.  Rows must sum to 1. *)
  label : int -> string;  (** Human-readable state name, for debugging. *)
}

val create :
  ?check:bool ->
  ?label:(int -> string) ->
  size:int ->
  row:(int -> (int * float) list) ->
  unit ->
  t
(** With [check] (the default) every row is evaluated once at
    construction and must be stochastic — entries non-negative, targets
    in range, sum 1 within 1e-9 — else [Invalid_argument] names the
    offending state.  The solvers return garbage on non-stochastic
    input, so the eager check is the contract; pass [~check:false]
    only for chains too large to enumerate (e.g. sampled-only implicit
    chains), in which case the materializing solvers re-validate the
    rows they touch ({!Sparse.of_chain}). *)

val validate : ?eps:float -> t -> (unit, string) result
(** Checks that every row has non-negative entries summing to 1 within
    [eps] (default 1e-9), with in-range targets and no duplicates
    (stricter than [create]'s eager check, which permits duplicate
    targets since their probabilities add). *)

val transition_prob : t -> int -> int -> float
(** [transition_prob t i j] is [p_ij] (0 when absent). *)

val dense : t -> float array array
(** Materializes the transition matrix.  Intended for small chains. *)

val step_distribution : t -> float array -> float array
(** One application of the transition matrix to a row vector:
    [(vP)_j = Σ_i v_i p_ij]. *)

val sample_path : t -> rng:Stats.Rng.t -> start:int -> steps:int -> int array
(** Simulates a trajectory of [steps] transitions; result has length
    [steps + 1] beginning with [start]. *)

val empirical_occupancy : t -> rng:Stats.Rng.t -> start:int -> steps:int -> float array
(** Fraction of time spent in each state along a sampled trajectory
    (excluding the start state so it sums over [steps] visits). *)
