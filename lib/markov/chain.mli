(** Finite discrete-time Markov chains.

    States are integers [0 .. size-1]; the transition structure is a
    sparse row function so that chains with millions of implicit states
    never materialize a dense matrix unless asked to. *)

type t = {
  size : int;
  row : int -> (int * float) list;
      (** [row i] lists the outgoing transitions [(j, p_ij)] of state
          [i] with positive probability.  Rows must sum to 1. *)
  label : int -> string;  (** Human-readable state name, for debugging. *)
}

val create :
  ?label:(int -> string) -> size:int -> row:(int -> (int * float) list) -> unit -> t

val validate : ?eps:float -> t -> (unit, string) result
(** Checks that every row has non-negative entries summing to 1 within
    [eps] (default 1e-9), with in-range targets and no duplicates. *)

val transition_prob : t -> int -> int -> float
(** [transition_prob t i j] is [p_ij] (0 when absent). *)

val dense : t -> float array array
(** Materializes the transition matrix.  Intended for small chains. *)

val step_distribution : t -> float array -> float array
(** One application of the transition matrix to a row vector:
    [(vP)_j = Σ_i v_i p_ij]. *)

val sample_path : t -> rng:Stats.Rng.t -> start:int -> steps:int -> int array
(** Simulates a trajectory of [steps] transitions; result has length
    [steps + 1] beginning with [start]. *)

val empirical_occupancy : t -> rng:Stats.Rng.t -> start:int -> steps:int -> float array
(** Fraction of time spent in each state along a sampled trajectory
    (excluding the start state so it sums over [steps] visits). *)
