let hitting_times ?(tol = 1e-11) ?(max_iters = 2_000_000) t ~targets =
  if targets = [] then invalid_arg "Hitting.hitting_times: empty target set";
  let n = t.Chain.size in
  let is_target = Array.make n false in
  List.iter
    (fun i ->
      if i < 0 || i >= n then invalid_arg "Hitting.hitting_times: target out of range";
      is_target.(i) <- true)
    targets;
  (* Guard: every state must reach the target set, otherwise some
     hitting times are infinite and the sweep would run forever. *)
  let preds = Array.make n [] in
  for i = 0 to n - 1 do
    List.iter
      (fun (j, p) -> if p > 0. then preds.(j) <- i :: preds.(j))
      (t.Chain.row i)
  done;
  let reaches = Array.copy is_target in
  let queue = Queue.create () in
  List.iter (fun i -> Queue.push i queue) targets;
  while not (Queue.is_empty queue) do
    let j = Queue.pop queue in
    List.iter
      (fun i ->
        if not reaches.(i) then begin
          reaches.(i) <- true;
          Queue.push i queue
        end)
      preds.(j)
  done;
  if Array.exists not reaches then
    invalid_arg "Hitting.hitting_times: target set unreachable from some state";
  let h = Array.make n 0. in
  (* Materialize rows once, then Gauss-Seidel sweeps over non-target
     states. *)
  let targets_arr = Array.make n [||] and probs = Array.make n [||] in
  for i = 0 to n - 1 do
    if not is_target.(i) then begin
      let row = t.Chain.row i in
      targets_arr.(i) <- Array.of_list (List.map fst row);
      probs.(i) <- Array.of_list (List.map snd row)
    end
  done;
  let rec sweep k =
    let delta = ref 0. in
    for i = 0 to n - 1 do
      if not is_target.(i) then begin
        let self = ref 0. and rest = ref 0. in
        let tg = targets_arr.(i) and pr = probs.(i) in
        for e = 0 to Array.length tg - 1 do
          let j = tg.(e) and p = pr.(e) in
          if j = i then self := !self +. p
          else if not is_target.(j) then rest := !rest +. (p *. h.(j))
        done;
        if !self >= 1. -. 1e-15 then
          invalid_arg "Hitting.hitting_times: absorbing non-target state";
        let v = (1. +. !rest) /. (1. -. !self) in
        delta := Float.max !delta (Float.abs (v -. h.(i)));
        h.(i) <- v
      end
    done;
    if !delta > tol && k < max_iters then sweep (k + 1)
  in
  sweep 0;
  h

let expected_return_time ?tol t i =
  let h = hitting_times ?tol t ~targets:[ i ] in
  let acc = ref 1. in
  List.iter (fun (j, p) -> if j <> i then acc := !acc +. (p *. h.(j))) (t.Chain.row i);
  !acc
