(* The Gauss-Seidel sweep lives in {!Sparse.hitting_times} over CSR
   arrays (rows materialized once), in exactly the historical sweep
   order so existing values stay byte-identical; the error messages
   are re-prefixed to keep this module's documented contract. *)
let hitting_times ?tol ?max_iters t ~targets =
  try Sparse.hitting_times ?tol ?max_iters (Sparse.of_chain t) ~targets
  with Invalid_argument msg ->
    let prefix = "Sparse.hitting_times: " in
    let plen = String.length prefix in
    if String.length msg > plen && String.sub msg 0 plen = prefix then
      invalid_arg
        ("Hitting.hitting_times: " ^ String.sub msg plen (String.length msg - plen))
    else raise (Invalid_argument msg)

let expected_return_time ?tol t i =
  let h = hitting_times ?tol t ~targets:[ i ] in
  let acc = ref 1. in
  List.iter (fun (j, p) -> if j <> i then acc := !acc +. (p *. h.(j))) (t.Chain.row i);
  !acc
