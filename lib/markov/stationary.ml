(* Lazy damping: iterate (I + P)/2, which has the same stationary
   distribution but converges even for periodic chains — and the
   paper's scan-validate chains ARE periodic (period 2): every step
   changes exactly one process's phase, flipping a parity invariant.
   The loop itself lives in {!Sparse.power_iteration} over CSR arrays
   (materialized once; re-evaluating [t.row] per iteration would
   allocate fresh lists millions of times), in exactly the historical
   operation order so existing tables stay byte-identical. *)
let power_iteration ?max_iters ?tol t =
  Sparse.power_iteration ?max_iters ?tol (Sparse.of_chain t)

(* Solve pi P = pi with sum(pi) = 1: transpose to (P^T - I) pi^T = 0 and
   replace the last equation by the normalization constraint. *)
let solve t =
  let n = t.Chain.size in
  let a = Array.make_matrix n (n + 1) 0. in
  for i = 0 to n - 1 do
    List.iter (fun (j, p) -> a.(j).(i) <- a.(j).(i) +. p) (t.Chain.row i)
  done;
  for i = 0 to n - 1 do
    a.(i).(i) <- a.(i).(i) -. 1.
  done;
  for j = 0 to n - 1 do
    a.(n - 1).(j) <- 1.
  done;
  a.(n - 1).(n) <- 1.;
  (* Gaussian elimination with partial pivoting on the augmented matrix. *)
  for col = 0 to n - 1 do
    let pivot = ref col in
    for r = col + 1 to n - 1 do
      if Float.abs a.(r).(col) > Float.abs a.(!pivot).(col) then pivot := r
    done;
    if Float.abs a.(!pivot).(col) < 1e-300 then
      invalid_arg "Stationary.solve: singular system (chain not irreducible?)";
    if !pivot <> col then begin
      let tmp = a.(col) in
      a.(col) <- a.(!pivot);
      a.(!pivot) <- tmp
    end;
    for r = col + 1 to n - 1 do
      let f = a.(r).(col) /. a.(col).(col) in
      if f <> 0. then
        for c = col to n do
          a.(r).(c) <- a.(r).(c) -. (f *. a.(col).(c))
        done
    done
  done;
  let x = Array.make n 0. in
  for r = n - 1 downto 0 do
    let s = ref a.(r).(n) in
    for c = r + 1 to n - 1 do
      s := !s -. (a.(r).(c) *. x.(c))
    done;
    x.(r) <- !s /. a.(r).(r)
  done;
  (* Clean tiny negative round-off and renormalize. *)
  let x = Array.map (fun v -> if v < 0. && v > -1e-9 then 0. else v) x in
  let total = Array.fold_left ( +. ) 0. x in
  Array.map (fun v -> v /. total) x

(* The paper's chains have second eigenvalues near 1 (slow mixing), so
   the direct solve wins by orders of magnitude up to several thousand
   states; power iteration is the fallback for the truly large
   individual chains. *)
let compute t = if t.Chain.size <= 4000 then solve t else power_iteration t

let expected_return_time t i =
  let pi = compute t in
  1. /. pi.(i)

let ergodic_flow t pi =
  let flows = ref [] in
  for i = t.Chain.size - 1 downto 0 do
    List.iter
      (fun (j, p) -> if p > 0. then flows := (i, j, pi.(i) *. p) :: !flows)
      (t.Chain.row i)
  done;
  !flows

let success_rate t ~pi ~weight =
  let acc = ref 0. in
  for i = 0 to t.Chain.size - 1 do
    acc := !acc +. (pi.(i) *. weight i)
  done;
  !acc
