let l1_diff a b =
  let acc = ref 0. in
  Array.iteri (fun i x -> acc := !acc +. Float.abs (x -. b.(i))) a;
  !acc

let power_iteration ?(max_iters = 1_000_000) ?(tol = 1e-12) t =
  let n = t.Chain.size in
  (* Materialize the sparse rows once: re-evaluating [t.row] per
     iteration would allocate fresh lists millions of times. *)
  let targets = Array.make n [||] and probs = Array.make n [||] in
  for i = 0 to n - 1 do
    let row = t.Chain.row i in
    targets.(i) <- Array.of_list (List.map fst row);
    probs.(i) <- Array.of_list (List.map snd row)
  done;
  let v = ref (Array.make n (1. /. float_of_int n)) in
  let next = ref (Array.make n 0.) in
  let rec iterate k =
    let cur = !v and out = !next in
    Array.fill out 0 n 0.;
    for i = 0 to n - 1 do
      let vi = cur.(i) in
      if vi <> 0. then begin
        let tg = targets.(i) and pr = probs.(i) in
        for e = 0 to Array.length tg - 1 do
          out.(tg.(e)) <- out.(tg.(e)) +. (vi *. pr.(e))
        done
      end
    done;
    (* Lazy damping: iterate (I + P)/2, which has the same stationary
       distribution but converges even for periodic chains — and the
       paper's scan-validate chains ARE periodic (period 2): every
       step changes exactly one process's phase, flipping a parity
       invariant. *)
    for i = 0 to n - 1 do
      out.(i) <- 0.5 *. (out.(i) +. cur.(i))
    done;
    let delta = l1_diff out cur in
    v := out;
    next := cur;
    if delta > tol && k < max_iters then iterate (k + 1)
  in
  iterate 0;
  !v

(* Solve pi P = pi with sum(pi) = 1: transpose to (P^T - I) pi^T = 0 and
   replace the last equation by the normalization constraint. *)
let solve t =
  let n = t.Chain.size in
  let a = Array.make_matrix n (n + 1) 0. in
  for i = 0 to n - 1 do
    List.iter (fun (j, p) -> a.(j).(i) <- a.(j).(i) +. p) (t.Chain.row i)
  done;
  for i = 0 to n - 1 do
    a.(i).(i) <- a.(i).(i) -. 1.
  done;
  for j = 0 to n - 1 do
    a.(n - 1).(j) <- 1.
  done;
  a.(n - 1).(n) <- 1.;
  (* Gaussian elimination with partial pivoting on the augmented matrix. *)
  for col = 0 to n - 1 do
    let pivot = ref col in
    for r = col + 1 to n - 1 do
      if Float.abs a.(r).(col) > Float.abs a.(!pivot).(col) then pivot := r
    done;
    if Float.abs a.(!pivot).(col) < 1e-300 then
      invalid_arg "Stationary.solve: singular system (chain not irreducible?)";
    if !pivot <> col then begin
      let tmp = a.(col) in
      a.(col) <- a.(!pivot);
      a.(!pivot) <- tmp
    end;
    for r = col + 1 to n - 1 do
      let f = a.(r).(col) /. a.(col).(col) in
      if f <> 0. then
        for c = col to n do
          a.(r).(c) <- a.(r).(c) -. (f *. a.(col).(c))
        done
    done
  done;
  let x = Array.make n 0. in
  for r = n - 1 downto 0 do
    let s = ref a.(r).(n) in
    for c = r + 1 to n - 1 do
      s := !s -. (a.(r).(c) *. x.(c))
    done;
    x.(r) <- !s /. a.(r).(r)
  done;
  (* Clean tiny negative round-off and renormalize. *)
  let x = Array.map (fun v -> if v < 0. && v > -1e-9 then 0. else v) x in
  let total = Array.fold_left ( +. ) 0. x in
  Array.map (fun v -> v /. total) x

(* The paper's chains have second eigenvalues near 1 (slow mixing), so
   the direct solve wins by orders of magnitude up to several thousand
   states; power iteration is the fallback for the truly large
   individual chains. *)
let compute t = if t.Chain.size <= 4000 then solve t else power_iteration t

let expected_return_time t i =
  let pi = compute t in
  1. /. pi.(i)

let ergodic_flow t pi =
  let flows = ref [] in
  for i = t.Chain.size - 1 downto 0 do
    List.iter
      (fun (j, p) -> if p > 0. then flows := (i, j, pi.(i) *. p) :: !flows)
      (t.Chain.row i)
  done;
  !flows

let success_rate t ~pi ~weight =
  let acc = ref 0. in
  for i = 0 to t.Chain.size - 1 do
    acc := !acc +. (pi.(i) *. weight i)
  done;
  !acc
