let tv_distance p q =
  if Array.length p <> Array.length q then
    invalid_arg "Mixing.tv_distance: length mismatch";
  let acc = ref 0. in
  Array.iteri (fun i x -> acc := !acc +. Float.abs (x -. q.(i))) p;
  0.5 *. !acc

(* Shared sparse one-step application, optionally lazy. *)
let stepper ?(lazily = true) t =
  let n = t.Chain.size in
  let targets = Array.make n [||] and probs = Array.make n [||] in
  for i = 0 to n - 1 do
    let row = t.Chain.row i in
    targets.(i) <- Array.of_list (List.map fst row);
    probs.(i) <- Array.of_list (List.map snd row)
  done;
  fun v ->
    let out = Array.make n 0. in
    for i = 0 to n - 1 do
      let vi = v.(i) in
      if vi <> 0. then begin
        let tg = targets.(i) and pr = probs.(i) in
        for e = 0 to Array.length tg - 1 do
          out.(tg.(e)) <- out.(tg.(e)) +. (vi *. pr.(e))
        done
      end
    done;
    if lazily then Array.mapi (fun i x -> 0.5 *. (x +. v.(i))) out else out

let distribution_at ?lazily t ~start ~t:steps =
  if start < 0 || start >= t.Chain.size then invalid_arg "Mixing.distribution_at: bad start";
  let step = stepper ?lazily t in
  let v = ref (Array.init t.Chain.size (fun i -> if i = start then 1. else 0.)) in
  for _ = 1 to steps do
    v := step !v
  done;
  !v

let spectral_gap ?(iters = 2_000) t =
  let n = t.Chain.size in
  let step = stepper ~lazily:true t in
  let pi = Stationary.compute t in
  (* Work on row vectors x with Σx = 0 (deflating the stationary
     eigenvalue); the growth rate of ‖xP‖ estimates |λ₂|. *)
  let x = ref (Array.init n (fun i -> (if i mod 2 = 0 then 1. else -1.) +. pi.(i))) in
  let deflate v =
    let s = Array.fold_left ( +. ) 0. v /. float_of_int n in
    Array.map (fun a -> a -. s) v
  in
  let norm v = sqrt (Array.fold_left (fun acc a -> acc +. (a *. a)) 0. v) in
  x := deflate !x;
  let lambda = ref 0. in
  for _ = 1 to iters do
    let y = deflate (step !x) in
    let ny = norm y and nx = norm !x in
    if ny > 0. && nx > 0. then begin
      lambda := ny /. nx;
      (* Renormalize to avoid underflow. *)
      x := Array.map (fun a -> a /. ny) y
    end
  done;
  1. -. Float.min 1. !lambda

let mixing_time ?lazily ?(eps = 0.25) ?(max_t = 1_000_000) t ~start =
  let pi = Stationary.compute t in
  let step = stepper ?lazily t in
  let v = ref (Array.init t.Chain.size (fun i -> if i = start then 1. else 0.)) in
  let rec go k =
    if tv_distance !v pi <= eps then k
    else if k >= max_t then max_t
    else begin
      v := step !v;
      go (k + 1)
    end
  in
  go 0
