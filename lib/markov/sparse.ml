(* CSR (compressed sparse row) chains and the sparse solvers that make
   the lumped O(n²)-state system chains tractable far beyond the dense
   4000-state ceiling.  Everything here touches nonzeros only: one
   float per transition, no row lists re-evaluated per iteration, no
   n×n matrix ever materialized. *)

type t = {
  size : int;
  row_start : int array;  (* length size + 1; row i spans
                             [row_start.(i), row_start.(i+1)) *)
  cols : int array;  (* length nnz: target states *)
  probs : float array;  (* length nnz: transition probabilities *)
  label : int -> string;
}

let nnz t = t.row_start.(t.size)

let check_row ~eps ~size i start stop cols probs =
  let total = ref 0. in
  for e = start to stop - 1 do
    let j = cols.(e) and p = probs.(e) in
    if j < 0 || j >= size then
      invalid_arg
        (Printf.sprintf "Sparse: state %d: target %d out of range" i j);
    if p < 0. then
      invalid_arg
        (Printf.sprintf "Sparse: state %d: negative probability to %d" i j);
    total := !total +. p
  done;
  if Float.abs (!total -. 1.) > eps then
    invalid_arg
      (Printf.sprintf "Sparse: state %d: row sums to %.12g (want 1)" i !total)

let validate ?(eps = 1e-9) t =
  for i = 0 to t.size - 1 do
    check_row ~eps ~size:t.size i t.row_start.(i) t.row_start.(i + 1) t.cols
      t.probs
  done

let of_rows ?(check = true) ?(label = string_of_int) ~size rows =
  if size <= 0 then invalid_arg "Sparse.of_rows: size must be positive";
  if Array.length rows <> size then
    invalid_arg "Sparse.of_rows: need one row per state";
  let row_start = Array.make (size + 1) 0 in
  for i = 0 to size - 1 do
    row_start.(i + 1) <- row_start.(i) + List.length rows.(i)
  done;
  let n = row_start.(size) in
  let cols = Array.make n 0 and probs = Array.make n 0. in
  for i = 0 to size - 1 do
    List.iteri
      (fun k (j, p) ->
        cols.(row_start.(i) + k) <- j;
        probs.(row_start.(i) + k) <- p)
      rows.(i)
  done;
  let t = { size; row_start; cols; probs; label } in
  if check then validate t;
  t

let of_chain ?check (c : Chain.t) =
  of_rows ?check ~label:c.Chain.label ~size:c.Chain.size
    (Array.init c.Chain.size c.Chain.row)

let row t i =
  if i < 0 || i >= t.size then invalid_arg "Sparse.row: state out of range";
  List.init
    (t.row_start.(i + 1) - t.row_start.(i))
    (fun k ->
      let e = t.row_start.(i) + k in
      (t.cols.(e), t.probs.(e)))

let to_chain t = Chain.create ~check:false ~label:t.label ~size:t.size ~row:(row t) ()

(* Standard CSR transpose by counting sort on target columns: the
   result's row j lists the incoming transitions (i, p_ij). *)
let transpose t =
  let n = t.size and m = nnz t in
  let counts = Array.make (n + 1) 0 in
  for e = 0 to m - 1 do
    counts.(t.cols.(e) + 1) <- counts.(t.cols.(e) + 1) + 1
  done;
  for j = 0 to n - 1 do
    counts.(j + 1) <- counts.(j + 1) + counts.(j)
  done;
  let row_start = Array.copy counts in
  let cols = Array.make m 0 and probs = Array.make m 0. in
  for i = 0 to n - 1 do
    for e = t.row_start.(i) to t.row_start.(i + 1) - 1 do
      let j = t.cols.(e) in
      cols.(counts.(j)) <- i;
      probs.(counts.(j)) <- t.probs.(e);
      counts.(j) <- counts.(j) + 1
    done
  done;
  { size = n; row_start; cols; probs; label = t.label }

let step t v =
  if Array.length v <> t.size then invalid_arg "Sparse.step: size mismatch";
  let out = Array.make t.size 0. in
  for i = 0 to t.size - 1 do
    let vi = v.(i) in
    if vi <> 0. then
      for e = t.row_start.(i) to t.row_start.(i + 1) - 1 do
        out.(t.cols.(e)) <- out.(t.cols.(e)) +. (vi *. t.probs.(e))
      done
  done;
  out

(* L1 residual ||piP - pi||_1: the solver-independent convergence
   certificate every stationary routine reports. *)
let residual t pi =
  let out = step t pi in
  let acc = ref 0. in
  for i = 0 to t.size - 1 do
    acc := !acc +. Float.abs (out.(i) -. pi.(i))
  done;
  !acc

type stats = { sweeps : int; residual : float }

(* Gauss-Seidel for pi P = pi, swept over the *transpose* so each
   update reads a state's incoming transitions:

     pi_j <- (sum_{i != j} pi_i p_ij) / (1 - p_jj),

   in ascending state order with in-place (already-updated) values,
   then renormalized to sum 1.  For an irreducible chain this is the
   classic Gauss-Seidel splitting of the singular M-matrix system
   (I - P^T) pi = 0 (Stewart, "Introduction to the Numerical Solution
   of Markov Chains", ch. 3); unlike power iteration it needs no
   laziness trick for the paper's period-2 chains, and on the lumped
   (a, b) system chain it converges orders of magnitude faster. *)
let stationary_stats ?(tol = 1e-12) ?(max_iters = 100_000) t =
  let n = t.size in
  let tr = transpose t in
  let pi = Array.make n (1. /. float_of_int n) in
  let res = ref infinity in
  let sweeps = ref 0 in
  (* Check the residual on a doubling schedule: computing it every
     sweep would double the work for no information. *)
  let next_check = ref 1 in
  while !res > tol && !sweeps < max_iters do
    for j = 0 to n - 1 do
      let inflow = ref 0. and self = ref 0. in
      for e = tr.row_start.(j) to tr.row_start.(j + 1) - 1 do
        let i = tr.cols.(e) in
        if i = j then self := !self +. tr.probs.(e)
        else inflow := !inflow +. (pi.(i) *. tr.probs.(e))
      done;
      if !self >= 1. -. 1e-15 then
        invalid_arg "Sparse.stationary: absorbing state (chain not irreducible)";
      pi.(j) <- !inflow /. (1. -. !self)
    done;
    let total = Array.fold_left ( +. ) 0. pi in
    if not (total > 0.) then
      invalid_arg "Sparse.stationary: mass vanished (chain not irreducible?)";
    for j = 0 to n - 1 do
      pi.(j) <- pi.(j) /. total
    done;
    incr sweeps;
    if !sweeps >= !next_check then begin
      res := residual t pi;
      next_check := !sweeps + Int.max 1 (!sweeps / 2)
    end
  done;
  if !res > tol then res := residual t pi;
  (pi, { sweeps = !sweeps; residual = !res })

let stationary ?tol ?max_iters t = fst (stationary_stats ?tol ?max_iters t)

(* Damped (lazy) power iteration over the CSR arrays.  Kept
   operation-for-operation identical to the historical
   Stationary.power_iteration inner loop so that callers migrating to
   the CSR kernel reproduce their tables byte for byte. *)
let power_iteration ?(max_iters = 1_000_000) ?(tol = 1e-12) t =
  let n = t.size in
  let v = ref (Array.make n (1. /. float_of_int n)) in
  let next = ref (Array.make n 0.) in
  let rec iterate k =
    let cur = !v and out = !next in
    Array.fill out 0 n 0.;
    for i = 0 to n - 1 do
      let vi = cur.(i) in
      if vi <> 0. then
        for e = t.row_start.(i) to t.row_start.(i + 1) - 1 do
          out.(t.cols.(e)) <- out.(t.cols.(e)) +. (vi *. t.probs.(e))
        done
    done;
    for i = 0 to n - 1 do
      out.(i) <- 0.5 *. (out.(i) +. cur.(i))
    done;
    let delta = ref 0. in
    for i = 0 to n - 1 do
      delta := !delta +. Float.abs (out.(i) -. cur.(i))
    done;
    v := out;
    next := cur;
    if !delta > tol && k < max_iters then iterate (k + 1)
  in
  iterate 0;
  !v

(* Sparse hitting times: the same Gauss-Seidel sweep as Hitting but
   over CSR arrays, with the reachability guard run on the transpose
   (BFS from the target set over incoming edges). *)
let hitting_times ?(tol = 1e-11) ?(max_iters = 2_000_000) t ~targets =
  if targets = [] then invalid_arg "Sparse.hitting_times: empty target set";
  let n = t.size in
  let is_target = Array.make n false in
  List.iter
    (fun i ->
      if i < 0 || i >= n then
        invalid_arg "Sparse.hitting_times: target out of range";
      is_target.(i) <- true)
    targets;
  let tr = transpose t in
  let reaches = Array.copy is_target in
  let queue = Queue.create () in
  List.iter (fun i -> Queue.push i queue) targets;
  while not (Queue.is_empty queue) do
    let j = Queue.pop queue in
    for e = tr.row_start.(j) to tr.row_start.(j + 1) - 1 do
      let i = tr.cols.(e) in
      if tr.probs.(e) > 0. && not reaches.(i) then begin
        reaches.(i) <- true;
        Queue.push i queue
      end
    done
  done;
  if Array.exists not reaches then
    invalid_arg "Sparse.hitting_times: target set unreachable from some state";
  let h = Array.make n 0. in
  let rec sweep k =
    let delta = ref 0. in
    for i = 0 to n - 1 do
      if not is_target.(i) then begin
        let self = ref 0. and rest = ref 0. in
        for e = t.row_start.(i) to t.row_start.(i + 1) - 1 do
          let j = t.cols.(e) and p = t.probs.(e) in
          if j = i then self := !self +. p
          else if not is_target.(j) then rest := !rest +. (p *. h.(j))
        done;
        if !self >= 1. -. 1e-15 then
          invalid_arg "Sparse.hitting_times: absorbing non-target state";
        let v = (1. +. !rest) /. (1. -. !self) in
        delta := Float.max !delta (Float.abs (v -. h.(i)));
        h.(i) <- v
      end
    done;
    if !delta > tol && k < max_iters then sweep (k + 1)
  in
  sweep 0;
  h
