(** Stationary distributions of ergodic chains.

    Theorem 1 of the paper: an irreducible finite chain has a unique
    stationary distribution π with π_j = 1 / h_jj.  We compute π two
    independent ways (power iteration and a dense linear solve) and the
    test suite checks they agree. *)

val power_iteration :
  ?max_iters:int -> ?tol:float -> Chain.t -> float array
(** Damped (lazy) power iteration — applies (I + P)/2, which shares
    P's stationary distribution — starting from uniform, until the L1
    change drops below [tol] (default 1e-12) or [max_iters] (default
    1_000_000).  The damping matters: the paper's scan-validate chains
    are irreducible but *periodic* (period 2), so plain iteration of P
    would oscillate forever.  Runs over a one-shot CSR materialization
    ({!Sparse.power_iteration}); for chains beyond ~10⁴ states prefer
    {!Sparse.stationary}, whose Gauss–Seidel sweeps converge orders of
    magnitude faster on the paper's slowly-mixing chains. *)

val solve : Chain.t -> float array
(** Solves πP = π, Σπ = 1 by dense Gaussian elimination with partial
    pivoting.  O(size³); intended for chains up to a few thousand
    states. *)

val compute : Chain.t -> float array
(** [solve] for chains up to a few thousand states, [power_iteration]
    otherwise (the paper's chains mix slowly, so the direct solve is
    much faster whenever it fits). *)

val expected_return_time : Chain.t -> int -> float
(** [1 / π_i] (Theorem 1). *)

val ergodic_flow : Chain.t -> float array -> (int * int * float) list
(** [(i, j, Q_ij)] with Q_ij = π_i p_ij over all positive transitions. *)

val success_rate : Chain.t -> pi:float array -> weight:(int -> float) -> float
(** Σ_i π_i · weight(i): the stationary rate of any event whose
    per-state probability is [weight].  The paper's latency arguments
    are all of the form W = 1 / success_rate. *)
