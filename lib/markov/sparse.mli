(** CSR (compressed sparse row) chains and sparse solvers.

    The paper's lumped (a, b) system chain has O(n²) states with ≤ 3
    transitions each; dense Gaussian elimination tops out near 4000
    states, while these routines touch nonzeros only and solve the
    lumped chain at 10⁵–10⁶ states.  Stationary distributions use
    Gauss–Seidel sweeps over the transposed structure (no laziness
    trick needed for period-2 chains); hitting times reuse the
    Gauss–Seidel sweep of {!Hitting} over the CSR arrays. *)

type t = {
  size : int;
  row_start : int array;
      (** Length [size + 1]; row [i]'s nonzeros span
          [row_start.(i) .. row_start.(i+1) - 1]. *)
  cols : int array;  (** Target state per nonzero. *)
  probs : float array;  (** Transition probability per nonzero. *)
  label : int -> string;
}

val of_rows :
  ?check:bool -> ?label:(int -> string) -> size:int -> (int * float) list array -> t
(** Builds the CSR arrays from per-state transition lists.  With
    [check] (the default) every row is validated: targets in range,
    probabilities non-negative, sum 1 within 1e-9 — [Invalid_argument]
    names the offending state otherwise. *)

val of_chain : ?check:bool -> Chain.t -> t
(** Materializes a row-function chain into CSR form (each row
    evaluated exactly once), validating as [of_rows]. *)

val to_chain : t -> Chain.t
(** Row-function view over the CSR arrays (no copying per call beyond
    the returned list). *)

val row : t -> int -> (int * float) list
val nnz : t -> int

val validate : ?eps:float -> t -> unit
(** Re-checks stochasticity; [Invalid_argument] on violation. *)

val transpose : t -> t
(** Incoming-edge view: row [j] of the result lists [(i, p_ij)]. *)

val step : t -> float array -> float array
(** One application [v ↦ vP] over nonzeros. *)

val residual : t -> float array -> float
(** [‖πP − π‖₁] — the solver-independent convergence certificate. *)

type stats = { sweeps : int; residual : float }

val stationary_stats : ?tol:float -> ?max_iters:int -> t -> float array * stats
(** Gauss–Seidel for πP = π over the transpose, renormalized each
    sweep, until the L1 residual drops below [tol] (default 1e-12).
    Returns the distribution plus the sweep count and final residual.
    Raises [Invalid_argument] on absorbing states or vanishing mass
    (both symptoms of reducibility). *)

val stationary : ?tol:float -> ?max_iters:int -> t -> float array
(** [fst (stationary_stats ...)]. *)

val power_iteration : ?max_iters:int -> ?tol:float -> t -> float array
(** Damped (lazy) power iteration over the CSR arrays —
    operation-for-operation identical to the historical
    {!Stationary.power_iteration} loop, so migrating callers reproduce
    their tables byte for byte. *)

val hitting_times : ?tol:float -> ?max_iters:int -> t -> targets:int list -> float array
(** Expected steps to reach [targets] from each state (0 on targets);
    Gauss–Seidel over nonzeros with the unreachability guard run by
    BFS on the transpose.  Same contract as {!Hitting.hitting_times}. *)
