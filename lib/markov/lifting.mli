(** Markov chain lifting (paper §3, after Hayes–Sinclair / Chen–Lovász–Pak).

    A chain M' on S' is a lifting of M on S when there is a map
    f : S' → S such that the ergodic flows satisfy, for all i, j ∈ S:

      Q_ij = Σ_{x ∈ f⁻¹(i), y ∈ f⁻¹(j)} Q'_xy

    Lemma 1 then gives π(v) = Σ_{x ∈ f⁻¹(v)} π'(x).

    This module checks the flow homomorphism numerically; the paper's
    Lemmas 5, 10 and 13 each become a single [verify] call in the test
    suite. *)

type report = {
  max_flow_error : float;
      (** max_ij |Q_ij − Σ Q'_xy| over collapsed state pairs. *)
  max_pi_error : float;
      (** max_v |π(v) − Σ_{f(x)=v} π'(x)| (Lemma 1). *)
  fibers : int array;  (** Number of lifted states per base state. *)
}

val verify :
  base:Chain.t ->
  lifted:Chain.t ->
  f:(int -> int) ->
  ?base_pi:float array ->
  ?lifted_pi:float array ->
  unit ->
  report
(** Computes both stationary distributions (unless supplied) and the
    two error bounds.  [f] must map every lifted state into range. *)

val is_lifting : ?tol:float -> base:Chain.t -> lifted:Chain.t -> f:(int -> int) -> unit -> bool
(** True when both errors are below [tol] (default 1e-8). *)

val fiber_symmetric :
  ?tol:float -> lifted:Chain.t -> f:(int -> int) -> pi:float array -> unit -> bool
(** Lemma 6: all lifted states in the same fiber carry equal stationary
    probability. *)

val lump :
  ?tol:float -> lifted:Chain.t -> f:(int -> int) -> base_size:int -> unit -> Chain.t
(** Constructs the lumped (base) chain from a lifted chain and a state
    map [f], checking *strong lumpability*: every state of a fiber
    must collapse to the same base row within [tol] (default 1e-9) —
    [Invalid_argument] names the disagreeing pair otherwise.  This is
    the executable form of the paper's Lemmas 4–6: lumping the
    3ⁿ−1-state individual chain through the (a, b) count map yields
    the O(n²) system chain, which the sparse solvers then handle at
    populations the individual chain could never reach.  Rows are
    materialized once; fibers must be non-empty. *)
