type t = {
  size : int;
  row : int -> (int * float) list;
  label : int -> string;
}

(* Eager stochasticity check for create: every solver in this library
   silently returns garbage on a non-stochastic row, so malformed
   chains must be rejected at the constructor, naming the offending
   state.  Duplicate targets are allowed here (their probabilities
   add, which every consumer handles); [validate] stays stricter. *)
let check_rows ~eps t =
  for i = 0 to t.size - 1 do
    let total =
      List.fold_left
        (fun acc (j, p) ->
          if j < 0 || j >= t.size then
            invalid_arg
              (Printf.sprintf "Chain.create: state %d: target %d out of range"
                 i j);
          if p < 0. then
            invalid_arg
              (Printf.sprintf
                 "Chain.create: state %d: negative probability %.12g to %d" i p
                 j);
          acc +. p)
        0. (t.row i)
    in
    if Float.abs (total -. 1.) > eps then
      invalid_arg
        (Printf.sprintf "Chain.create: state %d: row sums to %.12g (want 1)" i
           total)
  done

let create ?(check = true) ?(label = string_of_int) ~size ~row () =
  if size <= 0 then invalid_arg "Chain.create: size must be positive";
  let t = { size; row; label } in
  if check then check_rows ~eps:1e-9 t;
  t

let validate ?(eps = 1e-9) t =
  let exception Bad of string in
  try
    for i = 0 to t.size - 1 do
      let row = t.row i in
      let seen = Hashtbl.create 8 in
      let total =
        List.fold_left
          (fun acc (j, p) ->
            if j < 0 || j >= t.size then
              raise (Bad (Printf.sprintf "state %d: target %d out of range" i j));
            if p < 0. then
              raise (Bad (Printf.sprintf "state %d: negative probability to %d" i j));
            if Hashtbl.mem seen j then
              raise (Bad (Printf.sprintf "state %d: duplicate target %d" i j));
            Hashtbl.add seen j ();
            acc +. p)
          0. (* accumulate *) row
      in
      if Float.abs (total -. 1.) > eps then
        raise (Bad (Printf.sprintf "state %d: row sums to %.12g" i total))
    done;
    Ok ()
  with Bad msg -> Error msg

let transition_prob t i j =
  List.fold_left (fun acc (k, p) -> if k = j then acc +. p else acc) 0. (t.row i)

let dense t =
  let m = Array.make_matrix t.size t.size 0. in
  for i = 0 to t.size - 1 do
    List.iter (fun (j, p) -> m.(i).(j) <- m.(i).(j) +. p) (t.row i)
  done;
  m

let step_distribution t v =
  if Array.length v <> t.size then invalid_arg "Chain.step_distribution: size mismatch";
  let out = Array.make t.size 0. in
  for i = 0 to t.size - 1 do
    if v.(i) <> 0. then
      List.iter (fun (j, p) -> out.(j) <- out.(j) +. (v.(i) *. p)) (t.row i)
  done;
  out

let sample_next t rng i =
  let row = t.row i in
  let target = Stats.Rng.float rng 1.0 in
  let rec scan acc = function
    | [] -> (
        (* Fall back to the last transition on floating point shortfall. *)
        match List.rev row with
        | (j, _) :: _ -> j
        | [] -> invalid_arg (Printf.sprintf "Chain.sample_path: state %d has no transitions" i))
    | (j, p) :: rest ->
        let acc = acc +. p in
        if target < acc then j else scan acc rest
  in
  scan 0. row

let sample_path t ~rng ~start ~steps =
  if start < 0 || start >= t.size then invalid_arg "Chain.sample_path: bad start";
  let path = Array.make (steps + 1) start in
  for k = 1 to steps do
    path.(k) <- sample_next t rng path.(k - 1)
  done;
  path

let empirical_occupancy t ~rng ~start ~steps =
  let counts = Array.make t.size 0 in
  let state = ref start in
  for _ = 1 to steps do
    state := sample_next t rng !state;
    counts.(!state) <- counts.(!state) + 1
  done;
  Array.map (fun c -> float_of_int c /. float_of_int steps) counts
