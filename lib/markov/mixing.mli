(** Convergence to stationarity.

    The paper's guarantees are about "long executions" — the chain in
    its stationary regime.  This module quantifies *how long*: the
    total-variation mixing time from a worst-case start.  Because the
    paper's scan-validate chains are periodic (see {!Stationary}), the
    distances are computed for the lazy chain (I+P)/2, whose long-run
    behaviour is the standard proxy. *)

val tv_distance : float array -> float array -> float
(** Total variation distance, ½·Σ|p_i − q_i|.  Arrays must have equal
    length. *)

val distribution_at : ?lazily:bool -> Chain.t -> start:int -> t:int -> float array
(** Distribution after [t] steps from the point mass at [start];
    [lazily] (default true) iterates (I+P)/2. *)

val spectral_gap : ?iters:int -> Chain.t -> float
(** Estimate of 1 − |λ₂| for the *lazy* chain, by power iteration on
    the component orthogonal to the stationary distribution (deflated
    iteration with the π-weighted inner product replaced by plain
    deflation of the all-ones right eigenvector; adequate for the
    nearly-reversible chains here).  The relaxation time 1/gap bounds
    the mixing time up to log factors. *)

val mixing_time :
  ?lazily:bool -> ?eps:float -> ?max_t:int -> Chain.t -> start:int -> int
(** Smallest [t] with TV(P^t(start,·), π) ≤ [eps] (default ¼, the
    standard convention), capped at [max_t] (default 1_000_000; the
    cap is returned if never reached).  TV to π is non-increasing in
    [t] for the lazy chain, so the first hit is the answer. *)
