type report = {
  max_flow_error : float;
  max_pi_error : float;
  fibers : int array;
}

let verify ~base ~lifted ~f ?base_pi ?lifted_pi () =
  let nb = base.Chain.size and nl = lifted.Chain.size in
  let pi_base = match base_pi with Some p -> p | None -> Stationary.compute base in
  let pi_lifted = match lifted_pi with Some p -> p | None -> Stationary.compute lifted in
  let fibers = Array.make nb 0 in
  for x = 0 to nl - 1 do
    let v = f x in
    if v < 0 || v >= nb then invalid_arg "Lifting.verify: f maps out of range";
    fibers.(v) <- fibers.(v) + 1
  done;
  (* Aggregate lifted flows through f into a base-indexed table. *)
  let collapsed = Hashtbl.create (nb * 4) in
  for x = 0 to nl - 1 do
    List.iter
      (fun (y, p) ->
        let key = (f x, f y) in
        let q = pi_lifted.(x) *. p in
        let prev = Option.value (Hashtbl.find_opt collapsed key) ~default:0. in
        Hashtbl.replace collapsed key (prev +. q))
      (lifted.Chain.row x)
  done;
  (* Base flows. *)
  let base_flows = Hashtbl.create (nb * 4) in
  for i = 0 to nb - 1 do
    List.iter
      (fun (j, p) ->
        let key = (i, j) in
        let prev = Option.value (Hashtbl.find_opt base_flows key) ~default:0. in
        Hashtbl.replace base_flows key (prev +. (pi_base.(i) *. p)))
      (base.Chain.row i)
  done;
  let max_flow_error = ref 0. in
  let consider key q =
    let q' = Option.value (Hashtbl.find_opt base_flows key) ~default:0. in
    max_flow_error := Float.max !max_flow_error (Float.abs (q -. q'))
  in
  Hashtbl.iter consider collapsed;
  (* Also catch base flows with no lifted counterpart. *)
  Hashtbl.iter
    (fun key q ->
      if not (Hashtbl.mem collapsed key) then
        max_flow_error := Float.max !max_flow_error (Float.abs q))
    base_flows;
  let max_pi_error = ref 0. in
  let sums = Array.make nb 0. in
  for x = 0 to nl - 1 do
    sums.(f x) <- sums.(f x) +. pi_lifted.(x)
  done;
  for v = 0 to nb - 1 do
    max_pi_error := Float.max !max_pi_error (Float.abs (sums.(v) -. pi_base.(v)))
  done;
  { max_flow_error = !max_flow_error; max_pi_error = !max_pi_error; fibers }

let is_lifting ?(tol = 1e-8) ~base ~lifted ~f () =
  let r = verify ~base ~lifted ~f () in
  r.max_flow_error <= tol && r.max_pi_error <= tol

(* Strong lumpability: the lumped chain exists as a Markov chain in
   its own right iff, for every base state v, all lifted states in
   f⁻¹(v) have identical collapsed rows.  That is exactly the paper's
   situation (Lemmas 4-6): the (a, b) system chain is the lump of the
   3ⁿ−1-state individual chain, and building it this way — rather than
   hand-deriving its transitions — turns the lumping argument into an
   executable construction. *)
let lump ?(tol = 1e-9) ~lifted ~f ~base_size () =
  if base_size <= 0 then invalid_arg "Lifting.lump: base_size must be positive";
  let rows = Array.make base_size None in
  let witness = Array.make base_size (-1) in
  for x = 0 to lifted.Chain.size - 1 do
    let v = f x in
    if v < 0 || v >= base_size then
      invalid_arg (Printf.sprintf "Lifting.lump: f maps state %d out of range" x);
    let collapsed = Hashtbl.create 8 in
    List.iter
      (fun (y, p) ->
        let w = f y in
        let prev = Option.value (Hashtbl.find_opt collapsed w) ~default:0. in
        Hashtbl.replace collapsed w (prev +. p))
      (lifted.Chain.row x);
    match rows.(v) with
    | None ->
        rows.(v) <- Some collapsed;
        witness.(v) <- x
    | Some expect ->
        let agree key p =
          Float.abs (Option.value (Hashtbl.find_opt expect key) ~default:0. -. p)
          <= tol
        in
        let ok =
          Hashtbl.length collapsed = Hashtbl.length expect
          && Hashtbl.fold (fun key p acc -> acc && agree key p) collapsed true
        in
        if not ok then
          invalid_arg
            (Printf.sprintf
               "Lifting.lump: not strongly lumpable: states %d and %d (both in \
                fiber %d) collapse to different rows"
               witness.(v) x v)
  done;
  let materialized =
    Array.map
      (function
        | None -> invalid_arg "Lifting.lump: some base state has an empty fiber"
        | Some collapsed ->
            List.sort compare
              (Hashtbl.fold (fun j p acc -> (j, p) :: acc) collapsed []))
      rows
  in
  Chain.create
    ~label:(fun v -> lifted.Chain.label witness.(v))
    ~size:base_size
    ~row:(fun v -> materialized.(v))
    ()

let fiber_symmetric ?(tol = 1e-9) ~lifted ~f ~pi () =
  let seen = Hashtbl.create 64 in
  let ok = ref true in
  for x = 0 to lifted.Chain.size - 1 do
    let v = f x in
    match Hashtbl.find_opt seen v with
    | None -> Hashtbl.add seen v pi.(x)
    | Some p -> if Float.abs (p -. pi.(x)) > tol then ok := false
  done;
  !ok
