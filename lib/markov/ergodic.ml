let successors t i = List.filter_map (fun (j, p) -> if p > 0. then Some j else None) (t.Chain.row i)

let reachable_from t start =
  let seen = Array.make t.Chain.size false in
  let stack = Stack.create () in
  Stack.push start stack;
  seen.(start) <- true;
  while not (Stack.is_empty stack) do
    let i = Stack.pop stack in
    List.iter
      (fun j ->
        if not seen.(j) then begin
          seen.(j) <- true;
          Stack.push j stack
        end)
      (successors t i)
  done;
  seen

let reverse_edges t =
  let preds = Array.make t.Chain.size [] in
  for i = 0 to t.Chain.size - 1 do
    List.iter (fun j -> preds.(j) <- i :: preds.(j)) (successors t i)
  done;
  preds

let strongly_connected t =
  let fwd = reachable_from t 0 in
  if Array.exists not fwd then false
  else begin
    (* Backward reachability from 0 over reversed edges. *)
    let preds = reverse_edges t in
    let seen = Array.make t.Chain.size false in
    let stack = Stack.create () in
    Stack.push 0 stack;
    seen.(0) <- true;
    while not (Stack.is_empty stack) do
      let i = Stack.pop stack in
      List.iter
        (fun j ->
          if not seen.(j) then begin
            seen.(j) <- true;
            Stack.push j stack
          end)
        preds.(i)
    done;
    not (Array.exists not seen)
  end

(* Period via BFS levels: for an irreducible chain, the period is the
   gcd of (level(i) + 1 - level(j)) over all edges i -> j. *)
let period t =
  if not (strongly_connected t) then
    invalid_arg "Ergodic.period: chain is not irreducible";
  let level = Array.make t.Chain.size (-1) in
  let queue = Queue.create () in
  level.(0) <- 0;
  Queue.push 0 queue;
  let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
  let g = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    List.iter
      (fun j ->
        if level.(j) = -1 then begin
          level.(j) <- level.(i) + 1;
          Queue.push j queue
        end
        else g := gcd !g (abs (level.(i) + 1 - level.(j))))
      (successors t i)
  done;
  if !g = 0 then t.Chain.size (* a pure cycle longer than explored *) else !g

let is_aperiodic t = period t = 1
let is_ergodic t = strongly_connected t && is_aperiodic t
