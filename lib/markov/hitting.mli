(** Expected hitting and return times.

    h_iT = expected number of steps to first reach the target set T
    from state i.  These satisfy the linear system
      h_iT = 0 for i ∈ T,  h_iT = 1 + Σ_j p_ij h_jT otherwise,
    which we solve iteratively (Gauss–Seidel; the system is an
    M-matrix so the sweep converges for chains where T is reachable
    from everywhere). *)

val hitting_times : ?tol:float -> ?max_iters:int -> Chain.t -> targets:int list -> float array
(** Expected steps to reach [targets] from each state (0 on targets).
    Raises [Invalid_argument] if [targets] is empty or unreachable
    from some state (the corresponding hitting time would be ∞).
    Delegates to {!Sparse.hitting_times} over a one-shot CSR
    materialization; CSR-native callers can use that directly. *)

val expected_return_time : ?tol:float -> Chain.t -> int -> float
(** h_ii computed from hitting times: 1 + Σ_j p_ij h_j{i}.  Agrees with
    [Stationary.expected_return_time] on ergodic chains (Theorem 1);
    the tests verify this equality on every chain in the repository. *)
