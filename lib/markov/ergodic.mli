(** Structural properties: irreducibility and aperiodicity.

    The paper's Lemma 3 asserts both chains it studies are ergodic;
    these checks make that assertion executable. *)

val strongly_connected : Chain.t -> bool
(** True when every state reaches every other (the chain is
    irreducible). *)

val period : Chain.t -> int
(** The period of the chain's (assumed single) recurrent class: the
    gcd of all cycle lengths through state 0.  Requires the chain to be
    irreducible; raises [Invalid_argument] otherwise. *)

val is_aperiodic : Chain.t -> bool
(** [period t = 1]. *)

val is_ergodic : Chain.t -> bool
(** Irreducible and aperiodic. *)
