(* Theorem 4: for A in SCU(q, s), the system latency is O(q + s sqrt n)
   and the individual latency O(n (q + s sqrt n)).  The theorem makes
   three falsifiable claims that we test separately across a
   (q, s, n) grid:

   1. growth in n is ~sqrt for fixed (q, s) — we report the fitted
      exponent of (W - q) vs n per (q, s) row;
   2. the preamble contributes additively — W(q, s, n) - W(0, s, n)
      should be ~q;
   3. individual latency = n x system latency (Lemma 7 inside the
      composition).

   Note on s > 1 at small n: a scan of s registers is invalidated by
   any success landing in its s-step window, so for sqrt(n) ≲ s the
   measured exponent sits above 0.5 and drifts down as n grows — a
   finite-n effect the O(·) absorbs; the paper's own evaluation only
   exercises s = 1. *)

let id = "thm4"
let title = "Theorem 4: SCU(q,s) latency = O(q + s*sqrt(n))"

let notes =
  "Per (q,s) row: exponent of (W - q) in n near 0.5 (above it for s=3 \
   at these small n, see module comment); 'W - W(q=0)' lands between \
   ~q/2 and q — time spent in the preamble also thins the CAS \
   contention, and O(q + s sqrt n) is an upper bound; W_i / (n W) ~ 1 \
   in every cell."

let ns = [ 4; 8; 16; 32; 64 ]

(* Each (q, s) pair is one table row; the q = 0 rows double as the
   baselines for the additivity column, so every (q, s, n) point is
   one cell, measured exactly once. *)
let grid = [ (0, 1); (0, 3); (5, 1); (5, 3); (20, 1); (20, 3) ]

let plan { Plan.quick; seed } =
  let steps = if quick then 200_000 else 1_000_000 in
  let points =
    List.concat_map (fun (q, s) -> List.map (fun n -> (q, s, n)) ns) grid
  in
  let cells =
    List.map
      (fun (q, s, n) ->
        Plan.cell (Printf.sprintf "q=%d,s=%d,n=%d" q s n) (fun () ->
            let p = Scu.Scu_pattern.make ~n ~q ~s in
            let m =
              Runs.spec_metrics
                ~seed:(seed + (q * 100) + (s * 10) + n)
                ~n ~steps p.spec
            in
            let w = Sim.Metrics.mean_system_latency m in
            let wi = Sim.Metrics.mean_individual_latency m 0 in
            (w, wi /. (float_of_int n *. w))))
      points
  in
  Plan.make
    ~headers:
      ([ "q"; "s" ]
      @ List.map (fun n -> Printf.sprintf "W(n=%d)" n) ns
      @ [ "exp(W-q)"; "mean W-W(q=0)"; "mean Wi/(nW)" ])
    ~cells
    ~assemble:(fun payloads ->
      let by_point = List.combine points payloads in
      let w_of q s n = fst (List.assoc (q, s, n) by_point) in
      List.map
        (fun (q, s) ->
          let ws =
            List.map
              (fun n -> (n, w_of q s n, snd (List.assoc (q, s, n) by_point)))
              ns
          in
          let fit =
            Stats.Regression.power_law
              (List.map
                 (fun (n, w, _) ->
                   (float_of_int n, Float.max 1e-9 (w -. float_of_int q)))
                 ws)
          in
          let q_shift =
            List.fold_left (fun acc (n, w, _) -> acc +. (w -. w_of 0 s n)) 0. ws
            /. float_of_int (List.length ws)
          in
          let fairness =
            List.fold_left (fun acc (_, _, r) -> acc +. r) 0. ws
            /. float_of_int (List.length ws)
          in
          [ string_of_int q; string_of_int s ]
          @ List.map (fun (_, w, _) -> Runs.fmt w) ws
          @ [ Printf.sprintf "%.2f" fit.slope; Runs.fmt q_shift; Runs.fmt fairness ])
        grid)
