(* Extension (the paper's §8 open question): can the Theta(sqrt n)
   contention factor be avoided?  Yes, by sharding: k independent CAS
   registers give each register ~n/k contenders, so W drops to
   ~Theta(sqrt(n/k)) and reaches the parallel-code floor of 2 steps/op
   at k = Theta(n). *)

let id = "ext-shard"
let title = "Extension (§8): sharded counter beats the sqrt(n) contention factor"

let notes =
  "W falls with the shard count roughly like sqrt(n/k) + constant \
   floor of 2 (read+CAS with no contention); k = n is within a few \
   percent of the floor.  Predicted column = exact chain W(ceil(n/k)) \
   — sharding composes the SCU analysis with itself."

let plan { Plan.quick; seed } =
  let n = 32 in
  let steps = if quick then 200_000 else 1_000_000 in
  let cell_of k =
    Plan.cell (Printf.sprintf "k=%d" k) (fun () ->
        let c = Scu.Sharded_counter.make ~n ~shards:k in
        let r =
          Sim.Executor.exec
            ~config:Sim.Executor.Config.(default |> with_seed (seed + 500 + k))
            ~scheduler:Sched.Scheduler.uniform ~n ~stop:(Steps steps) c.spec
        in
        let w = Sim.Metrics.mean_system_latency r.metrics in
        let contenders = (n + k - 1) / k in
        let predicted = Chains.Scu_chain.System.system_latency ~n:contenders in
        [
          [
            string_of_int k;
            Runs.fmt w;
            Runs.fmt predicted;
            string_of_bool
              (Scu.Sharded_counter.value c c.spec.memory
              = Sim.Metrics.total_completions r.metrics);
          ];
        ])
  in
  Plan.of_rows
    ~headers:[ "shards k"; "W measured"; "W(n/k) chain prediction"; "value conserved" ]
    (List.map cell_of [ 1; 2; 4; 8; 16; 32 ])
