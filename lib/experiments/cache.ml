(* Results are stored one file per cell under
   <dir>/<exp id>/<md5 of key>.bin; the file holds the full key string
   followed by the Marshal'd payload, so a hash collision or a stale
   entry written by a different code revision is detected and treated
   as a miss rather than deserialized blindly. *)

let version = "cell-cache-1"

let key ~exp_id ~(budget : Plan.budget) ~label =
  String.concat "\x00"
    [
      version;
      exp_id;
      label;
      (if budget.quick then "quick" else "full");
      string_of_int budget.seed;
    ]

let path ~dir ~exp_id k =
  Filename.concat (Filename.concat dir exp_id) (Digest.to_hex (Digest.string k) ^ ".bin")

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let load file k =
  if not (Sys.file_exists file) then None
  else
    try
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let stored : string = Marshal.from_channel ic in
          if stored <> k then None else Some (Marshal.from_channel ic))
    with _ -> None

let store file k payload =
  mkdir_p (Filename.dirname file);
  let tmp = file ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Marshal.to_channel oc k [];
      Marshal.to_channel oc payload []);
  Sys.rename tmp file

let runner ~dir ~(inner : Plan.runner) =
  {
    Plan.map =
      (fun ~exp_id ~budget cells ->
        let keyed =
          List.map
            (fun (c : _ Plan.cell) ->
              let k = key ~exp_id ~budget ~label:c.label in
              let file = path ~dir ~exp_id k in
              (c, k, file, load file k))
            cells
        in
        let misses =
          List.filter_map
            (fun (c, _, _, hit) -> if Option.is_none hit then Some c else None)
            keyed
        in
        let fresh = inner.Plan.map ~exp_id ~budget misses in
        let fresh = ref fresh in
        List.map
          (fun (_, k, file, hit) ->
            match hit with
            | Some payload -> payload
            | None -> (
                match !fresh with
                | payload :: rest ->
                    fresh := rest;
                    (try store file k payload with Sys_error _ -> ());
                    payload
                | [] -> invalid_arg "Cache.runner: inner runner dropped results"))
          keyed)
  }
