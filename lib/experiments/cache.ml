(* Results are stored one file per cell under
   <dir>/<exp id>/<md5 of key>.bin; the file holds the full key string
   followed by the Marshal'd payload, so a hash collision or a stale
   entry written by a different code revision is detected and treated
   as a miss rather than deserialized blindly. *)

let version = "cell-cache-1"

type stats = { mutable hits : int; mutable misses : int; mutable stores : int }

let create_stats () = { hits = 0; misses = 0; stores = 0 }

let key ~exp_id ~(budget : Plan.budget) ~label =
  String.concat "\x00"
    [
      version;
      exp_id;
      label;
      (if budget.quick then "quick" else "full");
      string_of_int budget.seed;
    ]

let path ~dir ~exp_id k =
  Filename.concat (Filename.concat dir exp_id) (Digest.to_hex (Digest.string k) ^ ".bin")

let load file k =
  if not (Sys.file_exists file) then None
  else
    try
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let stored : string = Marshal.from_channel ic in
          if stored <> k then None else Some (Marshal.from_channel ic))
    with _ -> None

(* Temp names must be unique per writer: concurrent repro processes
   (and, within one process, future concurrent stores) may flush the
   same cell at once, and a shared <file>.tmp would interleave their
   writes before the rename.  PID separates processes, the counter
   separates writers within one. *)
let tmp_counter = Atomic.make 0

let store file k payload =
  Telemetry.Fsutil.mkdir_p (Filename.dirname file);
  let tmp =
    Printf.sprintf "%s.%d.%d.tmp" file (Unix.getpid ())
      (Atomic.fetch_and_add tmp_counter 1)
  in
  let oc = open_out_bin tmp in
  (try
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () ->
         Marshal.to_channel oc k [];
         Marshal.to_channel oc payload [])
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp file

let runner ?stats ?on_hit ~dir ~(inner : Plan.runner) () =
  let count f = match stats with Some s -> f s | None -> () in
  {
    Plan.map =
      (fun ~exp_id ~budget cells ->
        let keyed =
          List.map
            (fun (c : _ Plan.cell) ->
              let k = key ~exp_id ~budget ~label:c.label in
              let file = path ~dir ~exp_id k in
              let hit = load file k in
              (match hit with
              | Some _ ->
                  count (fun s -> s.hits <- s.hits + 1);
                  Option.iter (fun f -> f ~exp_id ~label:c.label) on_hit
              | None -> count (fun s -> s.misses <- s.misses + 1));
              (c, k, file, hit))
            cells
        in
        let misses =
          List.filter_map
            (fun (c, _, _, hit) -> if Option.is_none hit then Some c else None)
            keyed
        in
        let fresh = inner.Plan.map ~exp_id ~budget misses in
        let fresh = ref fresh in
        List.map
          (fun (_, k, file, hit) ->
            match hit with
            | Some payload -> payload
            | None -> (
                match !fresh with
                | payload :: rest ->
                    fresh := rest;
                    (try
                       store file k payload;
                       count (fun s -> s.stores <- s.stores + 1)
                     with Sys_error _ -> ());
                    payload
                | [] -> invalid_arg "Cache.runner: inner runner dropped results"))
          keyed)
  }
