(** Optional on-disk cell-result cache.

    Payloads are keyed by (cache version, experiment id, cell label,
    quick/full, seed) and stored with [Marshal] under
    [<dir>/<exp id>/<md5>.bin].  Because cells are pure functions of
    their budget, a hit is byte-equivalent to re-running the cell —
    with one caveat: cells that measure {e real hardware}
    ([Runtime.Harness] / [Runtime.Recorder]) are measurements, not
    functions, so caching additionally pins their values, which is
    exactly what makes repeated [-j N] runs byte-identical.

    The cache is versioned but not self-describing: payload shapes are
    experiment-private OCaml values, so bump {!version} (or delete
    [results/cache/]) when changing any cell's payload type. *)

val version : string

val runner : dir:string -> inner:Plan.runner -> Plan.runner
(** A runner that serves hits from [dir] and delegates the misses — in
    cell order — to [inner], persisting fresh results as they return.
    I/O errors degrade to cache misses (reads) or skipped writes. *)
