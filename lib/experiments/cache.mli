(** Optional on-disk cell-result cache.

    Payloads are keyed by (cache version, experiment id, cell label,
    quick/full, seed) and stored with [Marshal] under
    [<dir>/<exp id>/<md5>.bin].  Because cells are pure functions of
    their budget, a hit is byte-equivalent to re-running the cell —
    with one caveat: cells that measure {e real hardware}
    ([Runtime.Harness] / [Runtime.Recorder]) are measurements, not
    functions, so caching additionally pins their values, which is
    exactly what makes repeated [-j N] runs byte-identical.

    Writes go through a per-writer unique temp file ([<file>.<pid>.<k>.tmp])
    renamed into place, so concurrent [repro] processes sharing one
    cache directory cannot corrupt each other's in-flight entries —
    last rename wins, and both writers produce the same bytes anyway.

    The cache is versioned but not self-describing: payload shapes are
    experiment-private OCaml values, so bump {!version} (or delete
    [results/cache/]) when changing any cell's payload type. *)

val version : string

type stats = { mutable hits : int; mutable misses : int; mutable stores : int }
(** Counters for one runner's lifetime: [hits] + [misses] = cells
    requested, [stores] = fresh results persisted ([stores <= misses];
    they differ only when a write failed and degraded to a skip). *)

val create_stats : unit -> stats

val runner :
  ?stats:stats ->
  ?on_hit:(exp_id:string -> label:string -> unit) ->
  dir:string ->
  inner:Plan.runner ->
  unit ->
  Plan.runner
(** A runner that serves hits from [dir] and delegates the misses — in
    cell order — to [inner], persisting fresh results as they return.
    I/O errors degrade to cache misses (reads) or skipped writes.
    [stats] is bumped as cells are looked up and stored; [on_hit]
    fires per served cell (misses are observable downstream by
    [inner], e.g. a pool runner's [on_done]).  Both run in the calling
    domain. *)
