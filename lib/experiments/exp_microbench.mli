(** Experiment module; see {!Exp} for the uniform interface and
    DESIGN.md for the experiment index.  Steps/sec microbenchmark:
    the fig5 counter kernel through the effect interpreter vs the
    compiled executor, with a parity row pinning byte-identical
    metrics.  Wall-clock throughput comes from `repro bench
    microbench`; the deterministic table here only carries the counts
    the two paths must agree on. *)

val id : string
val title : string
val notes : string
val plan : Plan.budget -> Plan.t
