(** Steps/sec measurement protocol (warmup, repeat, median) and the
    interpreter-vs-compiled counter kernels it times.

    All published wall-clock numbers (`repro bench`, the microbench
    experiment, the CI throughput gate) use this one protocol so they
    are comparable with each other; the clock is injectable so the
    protocol itself is tested with a deterministic fake. *)

type protocol = { warmup : int; repeat : int }

val default : protocol
(** One discarded warmup run, three timed runs. *)

type measurement = { samples : float array; median : float }
(** [samples] in run order; [median] is the lower median of them. *)

val median_of : float array -> float
(** Lower median: sorted middle element, the smaller one when the
    count is even — always an actual observation.  Raises
    [Invalid_argument] on an empty array. *)

val measure :
  ?clock:(unit -> float) -> ?protocol:protocol -> (unit -> unit) -> measurement
(** Run [work] [protocol.warmup] times untimed, then [protocol.repeat]
    times timed with [clock] (default: the monotonic clock).  Raises
    [Invalid_argument] on a negative warmup or a repeat below 1. *)

val steps_per_sec : steps:int -> seconds:float -> float

val counter_interp : ?seed:int -> n:int -> steps:int -> unit -> Sim.Metrics.t
(** The fig5 CAS-counter kernel through the effect interpreter. *)

val counter_compiled : ?seed:int -> n:int -> steps:int -> unit -> Sim.Metrics.t
(** The same kernel, same seed and scheduler, through the compiled
    executor — metrics byte-identical to {!counter_interp}'s. *)
