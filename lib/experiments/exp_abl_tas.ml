(* The abstract's parenthetical, made executable: "deadlock-free
   algorithms behave as if they were starvation-free".

   The TAS-lock counter is deadlock-free but unfair.  A *lock-aware*
   adversary (legal under Definition 1 — Π_τ may depend on the
   algorithm's state) schedules the victim only while someone else
   holds the lock, so the victim takes millions of steps and completes
   nothing, while the system hums along: deadlock-freedom without
   starvation-freedom.  Under the uniform stochastic scheduler the
   same code gives every process an equal share — practically
   starvation-free, exactly parallel to the lock-free/wait-free story
   of Theorem 3. *)

let id = "abl-tas"
let title = "Ablation: deadlock-free TAS lock is practically starvation-free"

let notes =
  "lock-aware adversary row: victim ops = 0 with a large victim step \
   count (it runs, loses, forever) while others complete — deadlock- \
   free only.  Uniform row: equal shares.  Weakly-fair adversary \
   (theta > 0): the victim completes again — the stochastic cure."

let lock_aware_adversary (t : Scu.Tas_lock.t) ~victim =
  let inner = Sched.Scheduler.round_robin () in
  let toggle = ref false in
  let others_of alive = Array.mapi (fun i a -> a && i <> victim) alive in
  {
    Sched.Scheduler.name = "lock-aware";
    theta = 0.;
    stateful = true;
    fill = None;
    pick =
      (fun ~rng ~alive ~time ->
        match Scu.Tas_lock.holder t t.spec.memory with
        | Some h when h <> victim && alive.(victim) ->
            (* Someone else holds the lock: alternate between letting
               the victim burn a doomed CAS and letting the holder
               advance (so the system, unlike the victim, keeps
               completing — starvation without deadlock). *)
            toggle := not !toggle;
            if !toggle then victim else h
        | _ ->
            (* Lock free: run the others; one of them will grab it
               before the victim is ever scheduled. *)
            let others = others_of alive in
            if Array.exists (fun a -> a) others then inner.pick ~rng ~alive:others ~time
            else victim);
  }

let plan { Plan.quick; seed } =
  let n = 4 in
  let steps = if quick then 200_000 else 800_000 in
  let cell name make_sched =
    Plan.cell name (fun () ->
        let t = Scu.Tas_lock.make ~n in
        let r =
          Sim.Executor.exec
            ~config:Sim.Executor.Config.(default |> with_seed (seed + 29))
            ~scheduler:(make_sched t) ~n ~stop:(Steps steps) t.spec
        in
        let others =
          float_of_int
            (List.fold_left ( + ) 0
               (List.init (n - 1) (fun i ->
                    Sim.Metrics.completions_of r.metrics (i + 1))))
          /. float_of_int (n - 1)
        in
        [
          [
            name;
            string_of_int (Sim.Metrics.completions_of r.metrics 0);
            string_of_int (Sim.Metrics.steps_of r.metrics 0);
            Runs.fmt others;
            string_of_int (Scu.Tas_lock.value t t.spec.memory);
          ];
        ])
  in
  Plan.of_rows
    ~headers:[ "scheduler"; "victim ops"; "victim steps"; "others ops (mean)"; "counter" ]
    [
      cell "lock-aware adversary" (fun t -> lock_aware_adversary t ~victim:0);
      cell "adversary + theta=0.05" (fun t ->
          Sched.Scheduler.with_weak_fairness ~theta:0.05
            (lock_aware_adversary t ~victim:0));
      cell "uniform" (fun _ -> Sched.Scheduler.uniform);
    ]
