(** Experiment module; see {!Exp} for the uniform interface and
    DESIGN.md for the experiment index. *)

val id : string
val title : string
val notes : string
val plan : Plan.budget -> Plan.t
