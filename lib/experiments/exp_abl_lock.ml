(* Blocking vs non-blocking (paper §2.2): a starvation-free ticket-
   lock counter against the lock-free CAS counter.

   - Crash-free uniform scheduler: both make maximal progress (the
     lock pays extra spinning steps per operation).
   - Crash one process at t = steps/2: the blocking counter halts
     (the victim eventually holds — or queues inside — the FIFO lock)
     while the lock-free counter's survivors keep completing — the
     whole reason non-blocking algorithms exist. *)

let id = "abl-lock"
let title = "Ablation: blocking (ticket lock) vs lock-free under crashes"

let notes =
  "Crash-free rows: both progress.  Crash rows: the lock-free \
   counter's post-crash rate stays near its pre-crash rate; the \
   ticket-lock counter's post-crash completions stop (0 or a handful \
   before the dead process's ticket comes up)."

let plan { Plan.quick; seed } =
  let n = 8 in
  let steps = if quick then 200_000 else 800_000 in
  let crash_at = steps / 2 in
  let completions_upto budget ~crashed make_spec =
    let fault_plan =
      if crashed then
        Sched.Fault_plan.of_crash_plan (Sched.Crash_plan.of_list [ (crash_at, 0) ])
      else Sched.Fault_plan.none
    in
    let config =
      Sim.Executor.Config.(
        default |> with_seed (seed + 61) |> with_faults fault_plan)
    in
    let r =
      Sim.Executor.exec ~config ~scheduler:Sched.Scheduler.uniform ~n
        ~stop:(Steps budget) (make_spec ())
    in
    Sim.Metrics.total_completions r.metrics
  in
  let case name make_spec crashed =
    let label =
      Printf.sprintf "%s%s" name (if crashed then ":crash" else ":no-crash")
    in
    Plan.cell label (fun () ->
        (* Two deterministic runs with the same seed: to the midpoint, and
           to the end; the difference is the second-half progress. *)
        let half = completions_upto crash_at ~crashed make_spec in
        let full = completions_upto steps ~crashed make_spec in
        let after = full - half in
        [
          [
            name;
            (if crashed then Printf.sprintf "p0 at t=%d" crash_at else "none");
            string_of_int half;
            string_of_int after;
            Runs.fmt (float_of_int after /. float_of_int (steps - crash_at));
          ];
        ])
  in
  Plan.of_rows
    ~headers:
      [ "algorithm"; "crash plan"; "ops in 1st half"; "ops in 2nd half"; "2nd-half rate" ]
    [
      case "lock-free CAS counter" (fun () -> (Scu.Counter.make ~n).spec) false;
      case "lock-free CAS counter" (fun () -> (Scu.Counter.make ~n).spec) true;
      case "ticket-lock counter" (fun () -> (Scu.Ticket_lock.make ~n).spec) false;
      case "ticket-lock counter" (fun () -> (Scu.Ticket_lock.make ~n).spec) true;
    ]
