(* Scaling the Θ(√n) latency law to n = 10⁶ by cross-validating three
   independent legs, each reaching where the others cannot:

   - exact: the lumped (a, b) system chain — dense solve to n = 64,
     CSR Gauss-Seidel ({!Chains.Scu_chain.System.sparse_latency})
     beyond, up to 10⁵ states quick and 5·10⁵ full;
   - simulation: the compiled-executor counter at small/medium n;
   - mean field: the RK4 fluid limit ({!Chains.Meanfield}), O(√n) per
     evaluation, so n = 10⁶ is direct.

   The legs are tied together by the closed forms: W(n) → √(πn), the
   fluid limit gives exactly √(2n), and the ratio is the fluctuation
   correction √(π/2).  A Richardson footer extrapolates the 1/√n tail
   of W/√n from the two largest exact rows; it lands on √π to ~1e-3. *)

let id = "meanfield"
let title = "Scaling to n = 1e6: exact (sparse) vs simulation vs mean field"

let notes =
  "exact = sim within noise (n <= 64); W/sqrt(pi n) -> 1 from above; \
   W/W_mf -> sqrt(pi/2) ~ 1.2533; Richardson slope of W vs sqrt n ~ \
   sqrt(pi) ~ 1.7725."

type leg = {
  n : int;
  states : int option;  (** None when no chain is materialized. *)
  exact : float option;
  sim : float option;
  mf : float;
}

let plan { Plan.quick; seed } =
  let steps = if quick then 100_000 else 500_000 in
  let sparse_ns = if quick then [ 256; 450 ] else [ 256; 450; 1000 ] in
  let dense_ns = [ 16; 64 ] in
  let mf_only_ns = [ 10_000; 100_000; 1_000_000 ] in
  let states_of n = ((n + 1) * (n + 2) / 2) - 1 in
  let cell_of n =
    Plan.cell (Printf.sprintf "n=%d" n) (fun () ->
        let exact, states =
          if List.mem n dense_ns then
            (Some (Chains.Predict.exact_scan_validate_latency ~n), Some (states_of n))
          else if List.mem n sparse_ns then
            (Some (Chains.Scu_chain.System.sparse_latency ~n ()), Some (states_of n))
          else (None, None)
        in
        let sim =
          if List.mem n dense_ns then
            let m = Runs.counter_metrics ~seed:(seed + 90 + n) ~n ~steps () in
            Some (Sim.Metrics.mean_system_latency m)
          else None
        in
        { n; states; exact; sim; mf = Chains.Meanfield.latency ~n () })
  in
  let headers =
    [ "n"; "states"; "W exact"; "W sim"; "W mf"; "sqrt(pi n)"; "exact/asym"; "exact/mf" ]
  in
  let opt fmt = function Some v -> fmt v | None -> "-" in
  let assemble legs =
    let rows =
      List.map
        (fun l ->
          let asym = Chains.Predict.asymptotic_scan_validate_latency ~n:l.n in
          [
            string_of_int l.n;
            opt string_of_int l.states;
            opt Runs.fmt l.exact;
            opt Runs.fmt l.sim;
            Runs.fmt l.mf;
            Runs.fmt asym;
            opt (fun w -> Runs.fmt (w /. asym)) l.exact;
            opt (fun w -> Runs.fmt (w /. l.mf)) l.exact;
          ])
        legs
    in
    (* Richardson footer: W(n) ≈ α√n + c, so the slope between the two
       largest exact rows cancels the constant tail and recovers α. *)
    let footer =
      match
        List.rev
          (List.filter_map
             (fun l -> Option.map (fun w -> (l.n, w)) l.exact)
             legs)
      with
      | (n2, w2) :: (n1, w1) :: _ ->
          let sqrtn n = sqrt (float_of_int n) in
          let alpha = (w2 -. w1) /. (sqrtn n2 -. sqrtn n1) in
          [
            [
              Printf.sprintf "Richardson(%d,%d)" n1 n2;
              "-";
              Runs.fmt alpha;
              "-";
              "-";
              Printf.sprintf "sqrt(pi)=%s" (Runs.fmt (sqrt Float.pi));
              Runs.fmt (alpha /. sqrt Float.pi);
              "-";
            ];
          ]
      | _ -> []
    in
    rows @ footer
  in
  Plan.make ~headers
    ~cells:(List.map cell_of (dense_ns @ sparse_ns @ mf_only_ns))
    ~assemble
