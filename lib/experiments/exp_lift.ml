(* Lemmas 4-6, 10, 13: every lifting claim in the paper, verified
   numerically over a range of n: SCU scan-validate chains, parallel-
   code chains, and the augmented-CAS counter chains. *)

let id = "lift"
let title = "Lemmas 5/10/13: Markov chain liftings verified numerically"

let notes =
  "flow and pi errors are numerical zeros for every family and every \
   n; state counts match the paper's formulas (3^n - 1, q^n, 2^n - 1)."

(* Deterministic numerics: each (family, size) verification is one
   cell producing its own row. *)
let plan { Plan.quick; seed = _ } =
  let scu n =
    Plan.cell (Printf.sprintf "scu:n=%d" n) (fun () ->
        let ind = Chains.Scu_chain.Individual.make ~n in
        let sys = Chains.Scu_chain.System.make ~n in
        let r =
          Markov.Lifting.verify ~base:sys.chain ~lifted:ind.chain
            ~f:(Chains.Scu_chain.lift ind sys) ()
        in
        [
          [
            "scu (Lemma 5)";
            string_of_int n;
            string_of_int ind.chain.size;
            string_of_int sys.chain.size;
            Runs.fmt r.max_flow_error;
            Runs.fmt r.max_pi_error;
          ];
        ])
  in
  let parallel (n, q) =
    Plan.cell (Printf.sprintf "parallel:n=%d,q=%d" n q) (fun () ->
        let ind = Chains.Parallel_chain.Individual.make ~n ~q in
        let sys = Chains.Parallel_chain.System.make ~n ~q in
        let r =
          Markov.Lifting.verify ~base:sys.chain ~lifted:ind.chain
            ~f:(Chains.Parallel_chain.lift ind sys) ()
        in
        [
          [
            "parallel (Lemma 10)";
            Printf.sprintf "%d,%d" n q;
            string_of_int ind.chain.size;
            string_of_int sys.chain.size;
            Runs.fmt r.max_flow_error;
            Runs.fmt r.max_pi_error;
          ];
        ])
  in
  let counter n =
    Plan.cell (Printf.sprintf "counter:n=%d" n) (fun () ->
        let ind = Chains.Counter_chain.Individual.make ~n in
        let glob = Chains.Counter_chain.Global.make ~n in
        let r =
          Markov.Lifting.verify ~base:glob.chain ~lifted:ind.chain
            ~f:(Chains.Counter_chain.lift ind) ()
        in
        [
          [
            "counter (Lemma 13)";
            string_of_int n;
            string_of_int ind.chain.size;
            string_of_int glob.chain.size;
            Runs.fmt r.max_flow_error;
            Runs.fmt r.max_pi_error;
          ];
        ])
  in
  Plan.of_rows
    ~headers:
      [ "family"; "n (or n,q)"; "lifted states"; "base states"; "flow err"; "pi err" ]
    (List.map scu (if quick then [ 2; 3; 4 ] else [ 2; 3; 4; 5; 6; 7 ])
    @ List.map parallel
        (if quick then [ (2, 2); (3, 3) ] else [ (2, 2); (3, 3); (4, 3); (2, 7) ])
    @ List.map counter (if quick then [ 2; 4 ] else [ 2; 4; 6; 8; 10 ]))
