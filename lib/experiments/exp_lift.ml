(* Lemmas 4-6, 10, 13: every lifting claim in the paper, verified
   numerically over a range of n: SCU scan-validate chains, parallel-
   code chains, and the augmented-CAS counter chains. *)

let id = "lift"
let title = "Lemmas 5/10/13: Markov chain liftings verified numerically"

let notes =
  "flow and pi errors are numerical zeros for every family and every \
   n; state counts match the paper's formulas (3^n - 1, q^n, 2^n - 1)."

let run ~quick =
  let table =
    Stats.Table.create
      [ "family"; "n (or n,q)"; "lifted states"; "base states"; "flow err"; "pi err" ]
  in
  let scu n =
    let ind = Chains.Scu_chain.Individual.make ~n in
    let sys = Chains.Scu_chain.System.make ~n in
    let r =
      Markov.Lifting.verify ~base:sys.chain ~lifted:ind.chain
        ~f:(Chains.Scu_chain.lift ind sys) ()
    in
    Stats.Table.add_row table
      [
        "scu (Lemma 5)";
        string_of_int n;
        string_of_int ind.chain.size;
        string_of_int sys.chain.size;
        Runs.fmt r.max_flow_error;
        Runs.fmt r.max_pi_error;
      ]
  in
  let parallel (n, q) =
    let ind = Chains.Parallel_chain.Individual.make ~n ~q in
    let sys = Chains.Parallel_chain.System.make ~n ~q in
    let r =
      Markov.Lifting.verify ~base:sys.chain ~lifted:ind.chain
        ~f:(Chains.Parallel_chain.lift ind sys) ()
    in
    Stats.Table.add_row table
      [
        "parallel (Lemma 10)";
        Printf.sprintf "%d,%d" n q;
        string_of_int ind.chain.size;
        string_of_int sys.chain.size;
        Runs.fmt r.max_flow_error;
        Runs.fmt r.max_pi_error;
      ]
  in
  let counter n =
    let ind = Chains.Counter_chain.Individual.make ~n in
    let glob = Chains.Counter_chain.Global.make ~n in
    let r =
      Markov.Lifting.verify ~base:glob.chain ~lifted:ind.chain
        ~f:(Chains.Counter_chain.lift ind) ()
    in
    Stats.Table.add_row table
      [
        "counter (Lemma 13)";
        string_of_int n;
        string_of_int ind.chain.size;
        string_of_int glob.chain.size;
        Runs.fmt r.max_flow_error;
        Runs.fmt r.max_pi_error;
      ]
  in
  List.iter scu (if quick then [ 2; 3; 4 ] else [ 2; 3; 4; 5; 6; 7 ]);
  List.iter parallel (if quick then [ (2, 2); (3, 3) ] else [ (2, 2); (3, 3); (4, 3); (2, 7) ]);
  List.iter counter (if quick then [ 2; 4 ] else [ 2; 4; 6; 8; 10 ]);
  table
