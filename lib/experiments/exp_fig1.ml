(* Figure 1: the individual and system chains for two processes, with
   the lifting made explicit.  The paper draws the two chains; we print
   every individual state, its stationary probability, its image under
   the lifting map f, and verify per-system-state aggregation. *)

let id = "fig1"
let title = "Figure 1: two-process individual and system chains + lifting"

let notes =
  "Each system state's stationary probability must equal the sum over \
   its fiber (Lemma 1/4); flow error and pi error must be ~0."

(* Fully deterministic (no RNG, fixed n = 2): one cell carrying the
   whole lifting computation. *)
let plan (_ : Plan.budget) =
  Plan.of_rows
    ~headers:[ "individual state"; "pi'"; "f(state)"; "pi(f)"; "fiber sum" ]
    [
      Plan.cell "lifting-n2" (fun () ->
          let ind = Chains.Scu_chain.Individual.make ~n:2 in
          let sys = Chains.Scu_chain.System.make ~n:2 in
          let f = Chains.Scu_chain.lift ind sys in
          let pi_ind = Markov.Stationary.compute ind.chain in
          let pi_sys = Markov.Stationary.compute sys.chain in
          let fiber_sum = Array.make sys.chain.size 0. in
          for x = 0 to ind.chain.size - 1 do
            fiber_sum.(f x) <- fiber_sum.(f x) +. pi_ind.(x)
          done;
          let state_rows =
            List.init ind.chain.size (fun x ->
                let v = f x in
                [
                  ind.chain.label x;
                  Runs.fmt pi_ind.(x);
                  sys.chain.label v;
                  Runs.fmt pi_sys.(v);
                  Runs.fmt fiber_sum.(v);
                ])
          in
          let report =
            Markov.Lifting.verify ~base:sys.chain ~lifted:ind.chain ~f ()
          in
          state_rows
          @ [
              [ "max flow error"; Runs.fmt report.max_flow_error; ""; ""; "" ];
              [ "max pi error"; Runs.fmt report.max_pi_error; ""; ""; "" ];
            ]);
    ]
