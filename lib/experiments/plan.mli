(** Cell-based experiment plans.

    Every experiment decomposes its work into independently runnable
    {e cells}: a labelled, pure closure whose only inputs are the
    {!budget} captured at plan-construction time (sample sizes and the
    base RNG seed).  Cells share no mutable state, so a driver may run
    them sequentially, fan them out across Domains, or serve them from
    an on-disk cache — the assembled table is identical in every case,
    because payloads are reassembled in cell (list) order.

    The payload type of a cell is experiment-private: most cells yield
    their own table rows directly ({!of_rows}), while experiments with
    cross-cell aggregation (scaling a prediction to the first data
    point, power-law fits over a sweep, baseline columns) return raw
    measurements and build all rows in [assemble]. *)

type budget = {
  quick : bool;  (** Smaller sample sizes (smoke run). *)
  seed : int;
      (** Base seed; every cell derives its own RNG seed from it by a
          fixed per-cell offset, so [seed = 0] reproduces the
          historical hard-coded seeds exactly. *)
}

type row = string list

type 'a cell = {
  label : string;  (** Unique within one plan; part of the cache key. *)
  work : unit -> 'a;  (** Pure: depends only on the captured budget. *)
}

type t =
  | T : {
      headers : row;
      cells : 'a cell list;
      assemble : 'a list -> row list;
          (** Receives the payloads in cell order; returns every data
              and footer row of the final table, in order. *)
    }
      -> t

val cell : string -> (unit -> 'a) -> 'a cell

val make :
  headers:row -> cells:'a cell list -> assemble:('a list -> row list) -> t

val of_rows : headers:row -> row list cell list -> t
(** The common case: each cell contributes exactly its own rows and
    [assemble] is [List.concat]. *)

val labels : t -> string list
val cell_count : t -> int

val thunks : t -> (string * (unit -> unit)) list
(** Label and fire-and-forget closure of every cell; used by the bench
    harness to time cells without caring about payload types. *)

type runner = {
  map : 'a. exp_id:string -> budget:budget -> 'a cell list -> 'a list;
}
(** How to execute a batch of cells.  Implementations must return the
    payloads in the same order as the cells (the Domain-pool runner in
    [bin/repro] indexes jobs and reassembles; the cache runner fills
    hits in place and delegates misses). *)

val sequential : runner
(** Runs every cell in the calling domain, in order — the reference
    semantics every other runner must reproduce bit-for-bit. *)

val table : ?runner:runner -> exp_id:string -> budget:budget -> t -> Stats.Table.t
(** Execute the cells with [runner] (default {!sequential}) and
    assemble the final table. *)
