(* Closing the loop between Appendix A and the model: record a real
   schedule on this machine with the paper's FAA-ticketing method,
   then drive the *simulated* CAS counter with that exact schedule and
   compare its completion rate against the uniform model and the
   quantum (OS-like) ablation.

   On this 1-core container the recorded schedule is long-run fair but
   locally bursty, so the replayed rate lands near the quantum
   scheduler's (~0.5: a process running solo never fails its CAS),
   well above the uniform model's 1/W(n).  On the paper's multi-socket
   machine the recorded schedule interleaves finely and the replayed
   rate would fall toward the uniform prediction — exactly the
   approximation argument of Appendix A. *)

let id = "ext-replay"
let title = "Extension: simulate against a schedule recorded on real hardware"

let notes =
  "replayed-rate ~ quantum-rate >> uniform-rate on this bursty 1-core \
   recording; long-run shares stay uniform (Figure 3) even though \
   local order is not (Figure 4) — rate depends on local structure, \
   fairness on long-run structure."

let plan { Plan.quick; seed } =
  let domains = 4 in
  let steps_per_domain = if quick then 25_000 else 250_000 in
  (* The recorder emits exactly domains * steps_per_domain scheduler
     steps, so the model cells can compute the step budget without
     depending on the recording cell. *)
  let total = domains * steps_per_domain in
  let rate scheduler stop =
    let c = Scu.Counter.make ~n:domains in
    let r =
      Sim.Executor.exec
        ~config:Sim.Executor.Config.(default |> with_seed (seed + 73))
        ~scheduler ~n:domains ~stop:(Steps stop) c.spec
    in
    Sim.Metrics.completion_rate r.metrics
  in
  Plan.of_rows ~headers:[ "scheduler"; "completion rate"; "source" ]
    [
      Plan.cell "replayed" (fun () ->
          let recorded = Runtime.Recorder.record ~domains ~steps_per_domain in
          let order = Sched.Trace.to_array recorded in
          let recorded_total = Array.length order in
          [
            [
              "replayed real schedule";
              Runs.fmt (rate (Sched.Scheduler.replay order) recorded_total);
              Printf.sprintf "%d recorded steps" recorded_total;
            ];
          ]);
      Plan.cell "quantum" (fun () ->
          [
            [
              "quantum(32) sim";
              Runs.fmt (rate (Sched.Scheduler.quantum ~length:32) total);
              "model";
            ];
          ]);
      Plan.cell "uniform" (fun () ->
          [ [ "uniform sim"; Runs.fmt (rate Sched.Scheduler.uniform total); "model" ] ]);
      Plan.cell "chain" (fun () ->
          [
            [
              "uniform exact chain";
              Runs.fmt (1. /. Chains.Scu_chain.System.system_latency ~n:domains);
              "theory";
            ];
          ]);
    ]
