(* Scheduler ablation (the paper's §8 future-work question: "some of
   the elements of our framework could still be applied to non-uniform
   stochastic scheduler models"): sweep the Zipf skew and watch the
   uniform model's two signature predictions — sqrt-n latency and
   n-fold fairness — degrade. *)

let id = "abl-sched"
let title = "Ablation: non-uniform (Zipf) schedulers vs the model"

let notes =
  "alpha = 0 reproduces the uniform predictions (fairness spread ~1); \
   as alpha grows the favored process's latency shrinks and the \
   disfavored one's explodes, while system latency stays modest — \
   minimal progress is robust, maximal-progress *fairness* is what \
   uniformity buys."

let plan { Plan.quick; seed } =
  let n = 8 in
  let steps = if quick then 300_000 else 1_200_000 in
  let cell_of alpha =
    Plan.cell (Printf.sprintf "alpha=%g" alpha) (fun () ->
        let c = Scu.Counter.make ~n in
        let m =
          Runs.spec_metrics ~seed:(seed + 93)
            ~scheduler:(Sched.Scheduler.zipf ~n ~alpha) ~n ~steps c.spec
        in
        let wi = List.init n (fun i -> Sim.Metrics.mean_individual_latency m i) in
        let w = Sim.Metrics.mean_system_latency m in
        let mn = List.fold_left Float.min infinity wi in
        let mx = List.fold_left Float.max neg_infinity wi in
        [
          [
            Runs.fmt alpha;
            Runs.fmt w;
            Runs.fmt (List.nth wi 0);
            Runs.fmt (List.nth wi (n - 1));
            Runs.fmt (mx /. mn);
          ];
        ])
  in
  Plan.of_rows
    ~headers:
      [
        "alpha";
        "W system";
        "W_i p1 (favored)";
        "W_i p8 (starved)";
        "spread (max/min)/n-norm";
      ]
    (List.map cell_of [ 0.; 0.5; 1.0; 1.5; 2.0 ])
