(* Chaos / graceful degradation: system latency under the fault plans
   of the chaos layer (crash–recovery, stall windows, spurious CAS
   failure), anchored to two fault-free baselines.

   The anchors are exact replicas of existing cells: the first row
   re-measures Theorem 4's SCU(0,1) point at n = 16 with an empty
   fault plan (byte-identical numbers to exp_thm4), the second re-runs
   Corollary 2's (n=16, k=8) crashed run with the crash plan expressed
   as a fault plan (byte-identical to exp_cor2 — the executor's
   crash-only fault path is the old crash-plan path).  The remaining
   rows degrade gracefully and predictably:

   - permanent crashes track Corollary 2: latency follows the
     surviving k, not n;
   - crash + mid-run recovery interpolates between W(k) and W(n);
   - stall windows add idle time but leave the completion/step ratio
     of the survivors intact;
   - spurious CAS failure at rate r inflates latency, bounded by
     roughly 1/(1 - r): each slot win is kept with probability 1 - r,
     and only the CAS share of a method's steps is retried. *)

module Fault_plan = Sched.Fault_plan

let id = "chaos"
let title = "Chaos: graceful degradation under crash-recovery and memory faults"

let notes =
  "Rows 1-2 reproduce thm4's SCU(0,1) n=16 cell and cor2's (16,8) \
   crashed run byte-for-byte (empty fault plan == no fault plan; \
   crash-only fault plan == crash plan).  Crash rows track exact W(k) \
   for the surviving k; crash+recover lands between W(8) and W(16); \
   stalls leave compl/1k near the fault-free row; casfail~r inflates W, \
   bounded by ~1/(1-r) (only the CAS share of steps is retried)."

let scu_exact ~n = Chains.Scu_chain.System.system_latency ~n

let row ~faults ~n ~(r : Sim.Executor.result) ~exact =
  [
    faults;
    string_of_int n;
    Runs.fmt (Sim.Metrics.mean_system_latency r.metrics);
    Runs.fmt exact;
    Runs.fmt (1000. *. Sim.Metrics.completion_rate r.metrics);
    string_of_int (Array.fold_left ( + ) 0 r.restarts);
    string_of_int r.spurious_cas;
  ]

let counter_run ~seed ~n ~steps plan =
  let c = Scu.Counter.make ~n in
  Sim.Executor.exec
    ~config:Sim.Executor.Config.(default |> with_seed seed |> with_faults plan)
    ~scheduler:Sched.Scheduler.uniform ~n ~stop:(Steps steps) c.spec

(* (time, proc) pairs crashing processes k..n-1 at time 0 — the exact
   shape exp_cor2 builds its crash plan from. *)
let crash_events ~n ~k = List.init (n - k) (fun i -> (0, k + i))

let plan { Plan.quick; seed } =
  let n = 16 in
  let thm4_steps = if quick then 200_000 else 1_000_000 in
  let cor2_steps = if quick then 300_000 else 1_200_000 in
  let crash_plan_of ~k = Fault_plan.of_crash_events (crash_events ~n ~k) in
  let cells =
    [
      (* Anchor 1: thm4's (q=0, s=1, n=16) cell, empty fault plan. *)
      Plan.cell "baseline-thm4" (fun () ->
          let p = Scu.Scu_pattern.make ~n ~q:0 ~s:1 in
          (* thm4's per-cell seed formula at (q=0, s=1, n). *)
          let r =
            Sim.Executor.exec
              ~config:
                Sim.Executor.Config.(
                  default |> with_seed (seed + (0 * 100) + (1 * 10) + n))
              ~scheduler:Sched.Scheduler.uniform ~n ~stop:(Steps thm4_steps)
              p.spec
          in
          [ row ~faults:"none (= thm4 n=16)" ~n ~r ~exact:(scu_exact ~n) ]);
      (* Anchor 2: cor2's (n=16, k=8) crashed run, crash plan expressed
         as a fault plan. *)
      Plan.cell "baseline-cor2" (fun () ->
          let r =
            counter_run ~seed:(seed + 91) ~n ~steps:cor2_steps
              (crash_plan_of ~k:8)
          in
          [ row ~faults:"crash 8..15@0 (= cor2)" ~n ~r ~exact:(scu_exact ~n:8) ]);
      Plan.cell "crash-k12" (fun () ->
          let r =
            counter_run ~seed:(seed + 91) ~n ~steps:cor2_steps
              (crash_plan_of ~k:12)
          in
          [ row ~faults:"crash 12..15@0" ~n ~r ~exact:(scu_exact ~n:12) ]);
      Plan.cell "crash-k4" (fun () ->
          let r =
            counter_run ~seed:(seed + 91) ~n ~steps:cor2_steps
              (crash_plan_of ~k:4)
          in
          [ row ~faults:"crash 4..15@0" ~n ~r ~exact:(scu_exact ~n:4) ]);
      (* Crash half the processes at 0, restart them all mid-run: the
         measured W mixes the W(8) phase and the W(16) phase. *)
      Plan.cell "crash-recover" (fun () ->
          let half = cor2_steps / 2 in
          let events =
            List.map (fun (t, p) -> (t, Fault_plan.Crash p))
              (crash_events ~n ~k:8)
            @ List.init 8 (fun i -> (half, Fault_plan.Restart (8 + i)))
          in
          let r =
            counter_run ~seed:(seed + 91) ~n ~steps:cor2_steps
              (Fault_plan.make events)
          in
          [ row ~faults:"crash 8..15@0 + restart@T/2" ~n ~r
              ~exact:(scu_exact ~n);
          ]);
      (* Deterministic stall storm: every quarter of the run, half the
         processes stall for 200 steps. *)
      Plan.cell "stall" (fun () ->
          let events =
            List.concat_map
              (fun quarter ->
                let t = quarter * cor2_steps / 4 in
                List.init 8 (fun p -> (t, Fault_plan.Stall (p, 200))))
              [ 1; 2; 3 ]
          in
          let r =
            counter_run ~seed:(seed + 91) ~n ~steps:cor2_steps
              (Fault_plan.make events)
          in
          [ row ~faults:"stall 8x200@T/4,T/2,3T/4" ~n ~r ~exact:(scu_exact ~n) ]);
      Plan.cell "casfail-0.1" (fun () ->
          let r =
            counter_run ~seed:(seed + 91) ~n ~steps:cor2_steps
              (Fault_plan.make ~spurious:[ (None, 0.1) ] [])
          in
          [ row ~faults:"casfail~0.1" ~n ~r ~exact:(scu_exact ~n) ]);
      Plan.cell "casfail-0.3" (fun () ->
          let r =
            counter_run ~seed:(seed + 91) ~n ~steps:cor2_steps
              (Fault_plan.make ~spurious:[ (None, 0.3) ] [])
          in
          [ row ~faults:"casfail~0.3" ~n ~r ~exact:(scu_exact ~n) ]);
    ]
  in
  Plan.of_rows
    ~headers:
      [
        "faults"; "n"; "W measured"; "exact W (fault-free)"; "compl/1k steps";
        "restarts"; "spurious";
      ]
    cells
