(* Real-hardware completion rates (Appendix B's methodology applied to
   every structure in the runtime library): operations per
   shared-memory access for the Atomic-based counter, FAA counter,
   Treiber stack and MS queue, at 1..4 domains on this machine.

   On this single-core container domains time-slice, so rates barely
   degrade with the domain count (contention windows are tiny); the
   interesting output is the per-structure cost hierarchy, which is
   hardware-real: FAA (1 step/op) > CAS counter (2) > stack (~2-3) >
   queue (~4). *)

let id = "hw"
let title = "Real hardware: completion rates of the Atomic-based structures"

let notes =
  "Rates ~ 1/steps-per-op of each structure, roughly flat in domain \
   count on one core (see EXPERIMENTS.md caveat); on a multicore \
   machine the CAS-based rows would bend like Figure 5."

let plan { Plan.quick; seed = _ } =
  let ops = if quick then 5_000 else 50_000 in
  let domain_counts = [ 1; 2; 4 ] in
  (* Hardware cells spawn their own domains; they are kept whole per
     structure (one cell = one row) so a pool running cells in
     parallel never nests Harness domain sets within one cell. *)
  let cell label name make_op =
    Plan.cell label (fun () ->
        let rates =
          List.map
            (fun domains ->
              let op = make_op () in
              let r = Runtime.Harness.run ~domains ~ops_per_domain:ops ~op in
              Runs.fmt r.completion_rate)
            domain_counts
        in
        [ name :: rates ])
  in
  Plan.of_rows
    ~headers:
      ([ "structure" ]
      @ List.map (fun d -> Printf.sprintf "rate (%d domains)" d) domain_counts)
    [
      cell "faa" "faa counter (wait-free)" (fun () ->
          let c = Runtime.Rt_counter.create () in
          fun _ -> snd (Runtime.Rt_counter.incr_faa c));
      cell "cas" "cas counter" (fun () ->
          let c = Runtime.Rt_counter.create () in
          fun _ -> snd (Runtime.Rt_counter.incr_cas c));
      cell "stack" "treiber stack (push/pop)" (fun () ->
          let s = Runtime.Rt_treiber.create () in
          let toggle = Atomic.make 0 in
          fun _ ->
            if Atomic.fetch_and_add toggle 1 land 1 = 0 then
              Runtime.Rt_treiber.push s 1
            else snd (Runtime.Rt_treiber.pop s));
      cell "queue" "ms queue (enq/deq)" (fun () ->
          let q = Runtime.Rt_msqueue.create () in
          let toggle = Atomic.make 0 in
          fun _ ->
            if Atomic.fetch_and_add toggle 1 land 1 = 0 then
              Runtime.Rt_msqueue.enqueue q 1
            else snd (Runtime.Rt_msqueue.dequeue q));
    ]
