(* Figure 3: percentage of steps taken by each process during an
   execution.  The paper records 16-20 hardware threads over 20 ms and
   finds near-equal shares.  We produce three series: the simulated
   uniform scheduler, the simulated bursty quantum scheduler (an
   OS-like ablation), and a real schedule recorded on this machine via
   the paper's fetch-and-increment ticketing method. *)

let id = "fig3"
let title = "Figure 3: per-process share of steps (schedule fairness)"

let notes =
  "Every share should be ~1/n = 6.25% for n = 16.  The recorded \
   hardware schedule on this container also gives equal shares by \
   construction of the fixed per-domain quota; the interesting check \
   is the chi-square statistic of the simulated schedulers."

(* One cell per trace source (two simulated schedulers, one hardware
   recording); the share and chi-square rows combine all three, so
   they are built in assemble. *)
let plan { Plan.quick; seed } =
  let n = 16 in
  let steps = if quick then 100_000 else 1_000_000 in
  let domains = 4 in
  Plan.make
    ~headers:[ "process"; "uniform sim"; "quantum sim"; "real (4 domains)" ]
    ~cells:
      [
        Plan.cell "trace:uniform" (fun () ->
            Runs.sim_trace ~seed:(seed + 0xABBA) ~n ~steps ());
        Plan.cell "trace:quantum" (fun () ->
            Runs.sim_trace ~seed:(seed + 0xABBA)
              ~scheduler:(Sched.Scheduler.quantum ~length:8) ~n ~steps ());
        Plan.cell "trace:real" (fun () ->
            Runtime.Recorder.record ~domains
              ~steps_per_domain:(if quick then 5_000 else 50_000));
      ]
    ~assemble:(fun traces ->
      let tr_uniform, tr_quantum, tr_real =
        match traces with
        | [ u; q; r ] -> (u, q, r)
        | _ -> invalid_arg "fig3: expected three traces"
      in
      let su = Sched.Trace.step_shares tr_uniform in
      let sq = Sched.Trace.step_shares tr_quantum in
      let sr = Sched.Trace.step_shares tr_real in
      let shares =
        List.init n (fun i ->
            [
              Printf.sprintf "p%d" (i + 1);
              Runs.fmt_pct su.(i);
              Runs.fmt_pct sq.(i);
              (if i < domains then Runs.fmt_pct sr.(i) else "-");
            ])
      in
      let chi tr = Stats.Chi_square.uniform_statistic (Sched.Trace.step_counts tr) in
      shares
      @ [
          [
            "chi2 vs uniform";
            Runs.fmt (chi tr_uniform);
            Runs.fmt (chi tr_quantum);
            Runs.fmt (chi tr_real);
          ];
          [
            "chi2 critical (1%)";
            Runs.fmt (Stats.Chi_square.critical_value ~df:(n - 1) ~alpha:0.01);
            "";
            Runs.fmt (Stats.Chi_square.critical_value ~df:(domains - 1) ~alpha:0.01);
          ];
        ])
