(* Figure 3: percentage of steps taken by each process during an
   execution.  The paper records 16-20 hardware threads over 20 ms and
   finds near-equal shares.  We produce three series: the simulated
   uniform scheduler, the simulated bursty quantum scheduler (an
   OS-like ablation), and a real schedule recorded on this machine via
   the paper's fetch-and-increment ticketing method. *)

let id = "fig3"
let title = "Figure 3: per-process share of steps (schedule fairness)"

let notes =
  "Every share should be ~1/n = 6.25% for n = 16.  The recorded \
   hardware schedule on this container also gives equal shares by \
   construction of the fixed per-domain quota; the interesting check \
   is the chi-square statistic of the simulated schedulers."

let run ~quick =
  let n = 16 in
  let steps = if quick then 100_000 else 1_000_000 in
  let tr_uniform = Runs.sim_trace ~n ~steps () in
  let tr_quantum =
    Runs.sim_trace ~scheduler:(Sched.Scheduler.quantum ~length:8) ~n ~steps ()
  in
  let domains = 4 in
  let tr_real =
    Runtime.Recorder.record ~domains ~steps_per_domain:(if quick then 5_000 else 50_000)
  in
  let su = Sched.Trace.step_shares tr_uniform in
  let sq = Sched.Trace.step_shares tr_quantum in
  let sr = Sched.Trace.step_shares tr_real in
  let table =
    Stats.Table.create
      [ "process"; "uniform sim"; "quantum sim"; "real (4 domains)" ]
  in
  for i = 0 to n - 1 do
    Stats.Table.add_row table
      [
        Printf.sprintf "p%d" (i + 1);
        Runs.fmt_pct su.(i);
        Runs.fmt_pct sq.(i);
        (if i < domains then Runs.fmt_pct sr.(i) else "-");
      ]
  done;
  let chi tr = Stats.Chi_square.uniform_statistic (Sched.Trace.step_counts tr) in
  Stats.Table.add_row table
    [ "chi2 vs uniform"; Runs.fmt (chi tr_uniform); Runs.fmt (chi tr_quantum); Runs.fmt (chi tr_real) ];
  Stats.Table.add_row table
    [
      "chi2 critical (1%)";
      Runs.fmt (Stats.Chi_square.critical_value ~df:(n - 1) ~alpha:0.01);
      "";
      Runs.fmt (Stats.Chi_square.critical_value ~df:(domains - 1) ~alpha:0.01);
    ];
  table
