(* Fast-path / slow-path transformations (Kogan–Petrank, Timnat–
   Petrank — the paper's refs [14, 20]) run a lock-free fast path and
   fall back to a wait-free helping path after R failed attempts.  The
   paper: "our work ... could be used to bound the cost of the backup
   path during the execution."  This experiment does exactly that: the
   distribution of CAS attempts per operation of the counter under the
   uniform scheduler, and the fraction of operations that would take a
   backup path with retry threshold R.

   The attempt distribution is near-geometric, so the backup-path
   frequency decays exponentially in R: a handful of retries already
   make the backup path a once-in-millions event — the quantitative
   form of "you will get wait-free progress in practice". *)

let id = "ext-backup"
let title = "Extension: how often would a wait-free backup path trigger?"

let notes =
  "Per-attempt failure probabilities measured and predicted (1 - \
   2/W(n)) agree to ~3 decimals.  P(attempts > R) decays geometrically \
   with ratio p_fail, so the R needed for a given backup frequency \
   scales like W(n) ~ sqrt n: R = 16 suffices for <1e-5 at n = 4 and \
   ~1e-3..4e-2 at n = 16..32; R = 32 pushes even n = 32 to ~1e-3."

let plan { Plan.quick; seed } =
  let steps = if quick then 400_000 else 2_000_000 in
  let thresholds = [ 1; 2; 4; 8; 16; 32 ] in
  let cell_of n =
    Plan.cell (Printf.sprintf "n=%d" n) (fun () ->
        let counter, attempts = Scu.Counter.make_instrumented ~n in
        let _ = Runs.spec_metrics ~seed:(seed + 88 + n) ~n ~steps counter.spec in
        let data = Stats.Vec.Int.to_array attempts in
        let ops = Array.length data in
        let total_attempts = Array.fold_left ( + ) 0 data in
        let mean = float_of_int total_attempts /. float_of_int ops in
        (* Each attempt = 2 steps; ops/attempts gives the per-attempt
           success probability; the chain predicts it as 2/W. *)
        let p_fail_measured =
          1. -. (float_of_int ops /. float_of_int total_attempts)
        in
        let p_fail_predicted =
          1. -. (2. /. Chains.Scu_chain.System.system_latency ~n)
        in
        let exceed r =
          let c =
            Array.fold_left (fun acc a -> if a > r then acc + 1 else acc) 0 data
          in
          float_of_int c /. float_of_int ops
        in
        [
          [
            string_of_int n;
            string_of_int ops;
            Runs.fmt mean;
            Runs.fmt p_fail_measured;
            Runs.fmt p_fail_predicted;
          ]
          @ List.map (fun r -> Runs.fmt (exceed r)) thresholds;
        ])
  in
  Plan.of_rows
    ~headers:
      ([ "n"; "ops"; "mean attempts"; "p_fail measured"; "p_fail predicted" ]
      @ List.map (fun r -> Printf.sprintf "P(>%d)" r) thresholds)
    (List.map cell_of [ 4; 8; 16; 32 ])
