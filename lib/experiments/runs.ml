let config ~seed ?record_samples ?fault_plan () =
  let open Sim.Executor.Config in
  default |> with_seed seed
  |> with_samples (Option.value record_samples ~default:false)
  |> with_faults (Option.value fault_plan ~default:Sched.Fault_plan.none)

let spec_metrics ?(seed = 0xFEED) ?(scheduler = Sched.Scheduler.uniform)
    ?record_samples ?fault_plan ~n ~steps spec =
  let config = config ~seed ?record_samples ?fault_plan () in
  let r = Sim.Executor.exec ~config ~scheduler ~n ~stop:(Steps steps) spec in
  r.metrics

(* The Figure 5 hot path: the counter runs through the compiled
   executor (same shared-op sequence as the closure counter, so the
   numbers are byte-identical — the differential suite pins that). *)
let counter_metrics ?(seed = 0xFEED) ?(scheduler = Sched.Scheduler.uniform)
    ?record_samples ~n ~steps () =
  let c = Scu.Counter.make_compiled ~n in
  let config = config ~seed ?record_samples () in
  let r =
    Sim.Executor.exec_compiled ~config ~scheduler ~n ~stop:(Steps steps) c.cspec
  in
  r.metrics

let sim_trace ?(seed = 0xABBA) ?(scheduler = Sched.Scheduler.uniform) ~n ~steps () =
  let c = Scu.Counter.make_compiled ~n in
  let config = Sim.Executor.Config.(default |> with_seed seed |> with_trace true) in
  let r =
    Sim.Executor.exec_compiled ~config ~scheduler ~n ~stop:(Steps steps) c.cspec
  in
  Option.get r.trace

let fmt v = Printf.sprintf "%.4g" v
let fmt_pct v = Printf.sprintf "%.2f%%" (100. *. v)
