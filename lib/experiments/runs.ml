let spec_metrics ?(seed = 0xFEED) ?(scheduler = Sched.Scheduler.uniform)
    ?record_samples ?crash_plan ?fault_plan ~n ~steps spec =
  let r =
    Sim.Executor.run ~seed ?record_samples ?crash_plan ?fault_plan ~scheduler
      ~n ~stop:(Steps steps) spec
  in
  r.metrics

let counter_metrics ?seed ?scheduler ?record_samples ~n ~steps () =
  let c = Scu.Counter.make ~n in
  spec_metrics ?seed ?scheduler ?record_samples ~n ~steps c.spec

let sim_trace ?(seed = 0xABBA) ?(scheduler = Sched.Scheduler.uniform) ~n ~steps () =
  let c = Scu.Counter.make ~n in
  let r = Sim.Executor.run ~seed ~trace:true ~scheduler ~n ~stop:(Steps steps) c.spec in
  Option.get r.trace

let fmt v = Printf.sprintf "%.4g" v
let fmt_pct v = Printf.sprintf "%.2f%%" (100. *. v)
