(* The paper's motivating observation (§1, citing [1, Figure 6]):
   "most operations complete in a timely manner, and the impact of
   long worst-case executions on performance is negligible".  We make
   it quantitative: the full distribution of *individual* operation
   latencies (system steps between one process's consecutive
   completions) for the lock-free Treiber stack, under the uniform
   scheduler and under progressively less-uniform ones. *)

let id = "ext-tail"
let title = "Extension: latency distribution of individual stack operations"

let notes =
  "Uniform: a geometric-like, thin tail — max is a ~15x multiple of \
   the mean and p99.9/p50 ~14: practically wait-free.  Quantum: tiny \
   median (ops complete back-to-back within a slice) with a still- \
   benign absolute maximum.  Zipf(1.5): the disfavored processes' \
   tail explodes (max ~20-30x the uniform max) — the scheduler's \
   long-run uniformity, not lock-freedom itself, is what keeps tails \
   short."

let run ~quick =
  let n = 8 in
  let steps = if quick then 300_000 else 1_500_000 in
  let table =
    Stats.Table.create
      [ "scheduler"; "mean"; "p50"; "p90"; "p99"; "p99.9"; "max"; "p99.9/p50" ]
  in
  let row name scheduler =
    let stack = Scu.Treiber.make ~n () in
    let m =
      Runs.spec_metrics ~seed:83 ~scheduler ~record_samples:true ~n ~steps stack.spec
    in
    (* Pool every process's individual gaps (the per-op latency a user
       of any thread observes). *)
    let samples =
      Array.concat (List.init n (fun i -> Sim.Metrics.individual_samples m i))
    in
    let e = Stats.Ecdf.of_array samples in
    let q p = Stats.Ecdf.quantile e p in
    Stats.Table.add_row table
      [
        name;
        Runs.fmt (Stats.Summary.mean (Stats.Summary.of_array samples));
        Runs.fmt (q 0.5);
        Runs.fmt (q 0.9);
        Runs.fmt (q 0.99);
        Runs.fmt (q 0.999);
        Runs.fmt (Stats.Ecdf.maximum e);
        Runs.fmt (q 0.999 /. q 0.5);
      ]
  in
  row "uniform" Sched.Scheduler.uniform;
  row "quantum(8)" (Sched.Scheduler.quantum ~length:8);
  row "zipf(0.5)" (Sched.Scheduler.zipf ~n ~alpha:0.5);
  row "zipf(1.5)" (Sched.Scheduler.zipf ~n ~alpha:1.5);
  table
