(* The paper's motivating observation (§1, citing [1, Figure 6]):
   "most operations complete in a timely manner, and the impact of
   long worst-case executions on performance is negligible".  We make
   it quantitative: the full distribution of *individual* operation
   latencies (system steps between one process's consecutive
   completions) for the lock-free Treiber stack, under the uniform
   scheduler and under progressively less-uniform ones. *)

let id = "ext-tail"
let title = "Extension: latency distribution of individual stack operations"

let notes =
  "Uniform: a geometric-like, thin tail — max is a ~15x multiple of \
   the mean and p99.9/p50 ~14: practically wait-free.  Quantum: tiny \
   median (ops complete back-to-back within a slice) with a still- \
   benign absolute maximum.  Zipf(1.5): the disfavored processes' \
   tail explodes (max ~20-30x the uniform max) — the scheduler's \
   long-run uniformity, not lock-freedom itself, is what keeps tails \
   short."

let plan { Plan.quick; seed } =
  let n = 8 in
  let steps = if quick then 300_000 else 1_500_000 in
  (* Stateful schedulers (quantum) are built inside the cell closure. *)
  let cell name make_sched =
    Plan.cell name (fun () ->
        let stack = Scu.Treiber.make ~n () in
        let m =
          Runs.spec_metrics ~seed:(seed + 83) ~scheduler:(make_sched ())
            ~record_samples:true ~n ~steps stack.spec
        in
        (* Pool every process's individual gaps (the per-op latency a user
           of any thread observes). *)
        let samples =
          Array.concat (List.init n (fun i -> Sim.Metrics.individual_samples m i))
        in
        let e = Stats.Ecdf.of_array samples in
        let q p = Stats.Ecdf.quantile e p in
        [
          [
            name;
            Runs.fmt (Stats.Summary.mean (Stats.Summary.of_array samples));
            Runs.fmt (q 0.5);
            Runs.fmt (q 0.9);
            Runs.fmt (q 0.99);
            Runs.fmt (q 0.999);
            Runs.fmt (Stats.Ecdf.maximum e);
            Runs.fmt (q 0.999 /. q 0.5);
          ];
        ])
  in
  Plan.of_rows
    ~headers:[ "scheduler"; "mean"; "p50"; "p90"; "p99"; "p99.9"; "max"; "p99.9/p50" ]
    [
      cell "uniform" (fun () -> Sched.Scheduler.uniform);
      cell "quantum(8)" (fun () -> Sched.Scheduler.quantum ~length:8);
      cell "zipf(0.5)" (fun () -> Sched.Scheduler.zipf ~n ~alpha:0.5);
      cell "zipf(1.5)" (fun () -> Sched.Scheduler.zipf ~n ~alpha:1.5);
    ]
