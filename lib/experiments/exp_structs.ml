(* The class is the point: §5 lists stacks [21], queues [17], and RCU
   [7] as SCU instances.  Measure the system latency of each simulated
   structure across n and check they all inherit the q + s*sqrt(n)
   shape (exponent ~0.5 in n for the contended part). *)

let id = "structs"
let title = "SCU instances: stack, queue, RCU, universal construction"

let notes =
  "Each structure's latency grows sublinearly in n (exponent well \
   below 1, near 0.5 for the CAS-bound ones); elimination halves the \
   stack's contention exponent (~0.28 vs ~0.58); RCU's reader- \
   dominated workload stays nearly flat — readers are parallel code."

let plan { Plan.quick; seed } =
  let steps = if quick then 200_000 else 800_000 in
  let ns = [ 2; 4; 8; 16; 32 ] in
  let structures =
    [
      ("cas counter (SCU(0,1))", fun n -> (Scu.Counter.make ~n).spec);
      ("treiber stack", fun n -> (Scu.Treiber.make ~n ()).spec);
      ("elimination stack", fun n -> (Scu.Elimination_stack.make ~n ()).spec);
      ("ms queue", fun n -> (Scu.Msqueue.make ~n ()).spec);
      ( "rcu (3/4 readers)",
        fun n -> (Scu.Rcu.make ~n ~readers:(max 1 (3 * n / 4)) ~block_size:4).spec );
      ( "universal (k=4 state)",
        fun n ->
          (Scu.Universal.make ~n ~init:[| 0; 0; 0; 0 |]
             ~apply:(fun ~proc ~op_index:_ st ->
               let nxt = Array.copy st in
               nxt.(0) <- st.(0) + 1;
               nxt.(proc mod 4) <- nxt.(proc mod 4) + 1;
               nxt))
            .spec );
      ("wait-free counter", fun n -> (Scu.Waitfree_counter.make ~n).spec);
    ]
  in
  (* One cell per (structure, n); assemble regroups the flat payload
     list into one row (plus power-law fit) per structure. *)
  let cells =
    List.concat_map
      (fun (name, make) ->
        List.map
          (fun n ->
            Plan.cell
              (Printf.sprintf "%s:n=%d" (List.hd (String.split_on_char ' ' name)) n)
              (fun () ->
                let spec = make n in
                let m = Runs.spec_metrics ~seed:(seed + 97 + n) ~n ~steps spec in
                (float_of_int n, Sim.Metrics.mean_system_latency m)))
          ns)
      structures
  in
  let assemble payloads =
    let width = List.length ns in
    let rec chunk = function
      | [] -> []
      | rest ->
          let pts = List.filteri (fun i _ -> i < width) rest in
          let tail = List.filteri (fun i _ -> i >= width) rest in
          pts :: chunk tail
    in
    List.map2
      (fun (name, _) pts ->
        let fit = Stats.Regression.power_law pts in
        [ name ]
        @ List.map (fun (_, w) -> Runs.fmt w) pts
        @ [ Printf.sprintf "%.2f" fit.slope ])
      structures (chunk payloads)
  in
  Plan.make
    ~headers:
      ([ "structure" ]
      @ List.map (fun n -> Printf.sprintf "W(n=%d)" n) ns
      @ [ "exponent" ])
    ~cells ~assemble
