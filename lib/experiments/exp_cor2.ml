(* Corollary 2: with k <= n correct processes, the stationary latency
   depends on k, not n — crashed processes stop influencing the chain.
   We crash n-k processes at time 0 and compare against a native
   k-process run. *)

let id = "cor2"
let title = "Corollary 2: latency depends on the k correct processes"

let notes =
  "Columns 'crashed run' and 'native k run' agree for every (n, k); \
   both follow O(sqrt k)."

let plan { Plan.quick; seed } =
  let steps = if quick then 300_000 else 1_200_000 in
  let cell_of (n, k) =
    Plan.cell (Printf.sprintf "n=%d,k=%d" n k) (fun () ->
        let fault_plan =
          Sched.Fault_plan.of_crash_plan
            (Sched.Crash_plan.of_list (List.init (n - k) (fun i -> (0, k + i))))
        in
        let c1 = Scu.Counter.make ~n in
        let m1 = Runs.spec_metrics ~seed:(seed + 91) ~fault_plan ~n ~steps c1.spec in
        let c2 = Scu.Counter.make ~n:k in
        let m2 = Runs.spec_metrics ~seed:(seed + 92) ~n:k ~steps c2.spec in
        [
          [
            string_of_int n;
            string_of_int k;
            Runs.fmt (Sim.Metrics.mean_system_latency m1);
            Runs.fmt (Sim.Metrics.mean_system_latency m2);
            Runs.fmt (Chains.Scu_chain.System.system_latency ~n:k);
          ];
        ])
  in
  Plan.of_rows
    ~headers:[ "n"; "k correct"; "W crashed run"; "W native k run"; "exact W(k)" ]
    (List.map cell_of [ (8, 4); (16, 8); (16, 4); (32, 8) ])
