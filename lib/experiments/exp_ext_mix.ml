(* How long is a "long execution"?  The paper's guarantees hold in the
   stationary regime; this extension measures the total-variation
   mixing time of the scan-validate system chain from its initial
   state (everyone about to read), i.e. how many scheduler steps until
   the latency statistics are the stationary ones.  The answer — a
   small multiple of n — says the asymptotic regime arrives fast,
   which is why even short benchmarks see the sqrt(n) behaviour. *)

let id = "ext-mix"
let title = "Extension: mixing time of the system chain (how long is 'long'?)"

let notes =
  "t_mix grows roughly linearly in n (t_mix/n settles); already at \
   eps=0.01 it is only a few n — stationarity arrives within a few \
   operations per process.  The relaxation time 1/gap tracks t_mix(1/4) \
   as theory demands.  (Computed on the lazy chain: the original is \
   periodic, see DESIGN.md.)"

let plan { Plan.quick; seed = _ } =
  let cell_of n =
    Plan.cell (Printf.sprintf "n=%d" n) (fun () ->
        let sys = Chains.Scu_chain.System.make ~n in
        let coarse = Markov.Mixing.mixing_time sys.chain ~start:sys.initial in
        let fine = Markov.Mixing.mixing_time ~eps:0.01 sys.chain ~start:sys.initial in
        let gap = Markov.Mixing.spectral_gap sys.chain in
        [
          [
            string_of_int n;
            string_of_int sys.chain.size;
            string_of_int coarse;
            string_of_int fine;
            Runs.fmt (float_of_int fine /. float_of_int n);
            Runs.fmt gap;
            Runs.fmt (1. /. gap);
          ];
        ])
  in
  let ns = if quick then [ 4; 8; 16; 32 ] else [ 4; 8; 16; 32; 48; 64 ] in
  Plan.of_rows
    ~headers:
      [
        "n";
        "states";
        "t_mix(1/4)";
        "t_mix(0.01)";
        "t_mix(0.01)/n";
        "spectral gap";
        "1/gap";
      ]
    (List.map cell_of ns)
