(* Steps/sec microbenchmark: the fig5-style CAS fetch-and-increment
   counter at n=64 through the effect interpreter and through the
   compiled executor.

   The table itself is deterministic — step counts, completions,
   latency, and a parity row asserting the two paths' metrics are
   byte-identical — so `repro run` output stays reproducible.  The
   wall-clock side lives in `repro bench microbench`, which times
   exactly these two cells with the Stepbench protocol; the committed
   bench/BASELINE.json and the CI gate (`repro bench --gate`) watch
   the interp/compiled ratio from those timings. *)

let id = "microbench"
let title = "Microbench: interpreter vs compiled executor, fig5 kernel"

let notes =
  "Both rows must be identical (the parity row says so): the compiled \
   executor replays the interpreter's semantics bit-for-bit, only \
   faster.  Throughput is timed by `repro bench microbench` and gated \
   in CI against bench/BASELINE.json (>= 0.8x the committed \
   interp/compiled speedup)."

let n = 64

let plan { Plan.quick; seed } =
  let steps = if quick then 500_000 else 5_000_000 in
  let seed = seed + 64 in
  let cells =
    [
      Plan.cell
        (Printf.sprintf "interp:n=%d" n)
        (fun () -> ("interp", Stepbench.counter_interp ~seed ~n ~steps ()));
      Plan.cell
        (Printf.sprintf "compiled:n=%d" n)
        (fun () -> ("compiled", Stepbench.counter_compiled ~seed ~n ~steps ()));
    ]
  in
  Plan.make
    ~headers:[ "path"; "n"; "steps"; "completions"; "W (sys latency)"; "rate" ]
    ~cells
    ~assemble:(fun payloads ->
      let row (path, m) =
        [
          path;
          string_of_int n;
          string_of_int (Sim.Metrics.time m);
          string_of_int (Sim.Metrics.total_completions m);
          Runs.fmt (Sim.Metrics.mean_system_latency m);
          Runs.fmt (Sim.Metrics.completion_rate m);
        ]
      in
      let parity =
        match payloads with
        | [ (_, a); (_, b) ] ->
            if Sim.Metrics.fingerprint a = Sim.Metrics.fingerprint b then
              "identical"
            else "MISMATCH"
        | _ -> "?"
      in
      List.map row payloads @ [ [ "parity"; ""; ""; ""; ""; parity ] ])
