(* Theorem 3: under any stochastic scheduler (theta > 0), a bounded
   lock-free algorithm guarantees maximal progress with probability 1.
   We run the CAS counter against a starvation adversary softened to
   weak fairness theta, sweep theta, and report the victim's progress
   and worst completion gap.  The victim's completions must be
   positive for every theta > 0 and grow with theta; under the pure
   adversary (theta = 0) it starves. *)

let id = "thm3"
let title = "Theorem 3: minimal-to-maximal progress under weak fairness"

let notes =
  "victim ops > 0 for every theta > 0 (maximal progress w.p. 1); \
   victim ops = 0 at theta = 0 (the adversary wins without the \
   stochastic assumption).  The victim's mean completion gap sits \
   below Theorem 3's explicit bound (1/theta)^T with T = 2 (a solo \
   read+CAS completes the counter's operation), and shrinks as theta \
   grows."

let plan { Plan.quick; seed } =
  let n = 4 in
  let steps = if quick then 150_000 else 1_000_000 in
  let row theta =
    let sched =
      if theta = 0. then Sched.Scheduler.starver ~victim:0
      else Sched.Scheduler.with_weak_fairness ~theta (Sched.Scheduler.starver ~victim:0)
    in
    let c = Scu.Counter.make ~n in
    let m =
      Runs.spec_metrics ~seed:(seed + 51) ~scheduler:sched ~record_samples:true ~n
        ~steps c.spec
    in
    let victim = Sim.Metrics.completions_of m 0 in
    let gaps = Sim.Metrics.individual_latency m 0 in
    let mean_gap, max_gap =
      if Stats.Summary.count gaps = 0 then (nan, nan)
      else (Stats.Summary.mean gaps, Stats.Summary.max gaps)
    in
    let others =
      float_of_int
        (List.fold_left ( + ) 0
           (List.init (n - 1) (fun i -> Sim.Metrics.completions_of m (i + 1))))
      /. float_of_int (n - 1)
    in
    let show v = if Float.is_nan v then "inf" else Runs.fmt v in
    [
      [
        Runs.fmt theta;
        string_of_int victim;
        show mean_gap;
        (if theta = 0. then "inf" else Runs.fmt (1. /. (theta *. theta)));
        show max_gap;
        Runs.fmt others;
        Runs.fmt (Sim.Metrics.mean_system_latency m);
      ];
    ]
  in
  Plan.of_rows
    ~headers:
      [
        "theta";
        "victim ops";
        "victim mean gap";
        "bound (1/theta)^2";
        "victim max gap";
        "others ops (mean)";
        "system W";
      ]
    (List.map
       (fun theta ->
         Plan.cell (Printf.sprintf "theta=%g" theta) (fun () -> row theta))
       [ 0.; 0.001; 0.01; 0.05; 0.1; 0.25 ])
