type budget = { quick : bool; seed : int }
type row = string list
type 'a cell = { label : string; work : unit -> 'a }

type t =
  | T : {
      headers : row;
      cells : 'a cell list;
      assemble : 'a list -> row list;
    }
      -> t

let cell label work = { label; work }
let make ~headers ~cells ~assemble = T { headers; cells; assemble }
let of_rows ~headers cells = T { headers; cells; assemble = List.concat }
let labels (T p) = List.map (fun c -> c.label) p.cells
let cell_count (T p) = List.length p.cells

let thunks (T p) =
  List.map (fun c -> (c.label, fun () -> ignore (c.work ()))) p.cells

type runner = {
  map : 'a. exp_id:string -> budget:budget -> 'a cell list -> 'a list;
}

let sequential =
  { map = (fun ~exp_id:_ ~budget:_ cells -> List.map (fun c -> c.work ()) cells) }

let table ?(runner = sequential) ~exp_id ~budget (T p) =
  let payloads = runner.map ~exp_id ~budget p.cells in
  let tbl = Stats.Table.create p.headers in
  List.iter (Stats.Table.add_row tbl) (p.assemble payloads);
  tbl
