(* Steps/sec measurement protocol and the kernels it times.

   Every wall-clock number the repository publishes (the `repro bench`
   trajectory, the microbench experiment, the CI throughput gate) goes
   through [measure]: optional warmup runs that are discarded, then
   [repeat] timed runs, reported as the lower median — the most robust
   single sample against the one-sided noise (GC pauses, scheduler
   preemption) that contaminates minimum- or mean-based reporting.
   The clock is injectable so the protocol itself is unit-testable
   with a deterministic fake. *)

type protocol = { warmup : int; repeat : int }

let default = { warmup = 1; repeat = 3 }

type measurement = { samples : float array; median : float }

(* Lower median: with an even sample count the smaller of the two
   middle elements, so the result is always an actual observation
   (never an average of two) and the protocol stays exactly
   reproducible given the samples. *)
let median_of samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Stepbench.median_of: empty samples";
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  sorted.((n - 1) / 2)

let measure ?(clock = Pool.monotonic_now) ?(protocol = default) work =
  if protocol.warmup < 0 then
    invalid_arg "Stepbench.measure: warmup must be >= 0";
  if protocol.repeat < 1 then
    invalid_arg "Stepbench.measure: repeat must be >= 1";
  for _ = 1 to protocol.warmup do
    work ()
  done;
  let samples = Array.make protocol.repeat 0. in
  for k = 0 to protocol.repeat - 1 do
    let t0 = clock () in
    work ();
    samples.(k) <- clock () -. t0
  done;
  { samples; median = median_of samples }

let steps_per_sec ~steps ~seconds =
  if seconds <= 0. then infinity else float_of_int steps /. seconds

(* The two sides of the fig5-style kernel: the same CAS
   fetch-and-increment counter, once as a closure body through the
   effect interpreter and once as compiled code through the tight
   loop.  Same seed, same scheduler, same step budget — the metrics
   must be byte-identical (the microbench experiment and the
   differential suite both pin that), so any throughput difference is
   pure executor overhead. *)

let counter_interp ?(seed = 0xFEED) ~n ~steps () =
  let c = Scu.Counter.make ~n in
  Runs.spec_metrics ~seed ~n ~steps c.spec

let counter_compiled ?(seed = 0xFEED) ~n ~steps () =
  Runs.counter_metrics ~seed ~n ~steps ()
