(* Lemma 12 / Corollary 3: the augmented-CAS counter's system latency
   is W = Z(n-1) <= 2 sqrt n, asymptotically sqrt(pi n / 2) (the
   Ramanujan Q-function).  Four independent computations per n:
   simulation, the exact global chain, the paper's recurrence, and the
   asymptotic. *)

let id = "lem12"
let title = "Lemma 12: augmented-CAS counter, W = Z(n-1) ~ sqrt(pi n/2)"

let notes =
  "sim = chain = recurrence (within noise); all below 2 sqrt n; ratio \
   to sqrt(pi n/2) -> 1."

let plan { Plan.quick; seed } =
  let steps = if quick then 200_000 else 1_000_000 in
  let cell_of n =
    Plan.cell (Printf.sprintf "n=%d" n) (fun () ->
        let c = Scu.Counter_aug.make ~n in
        let m = Runs.spec_metrics ~seed:(seed + 80 + n) ~n ~steps c.spec in
        let w_sim = Sim.Metrics.mean_system_latency m in
        let w_chain = Chains.Counter_chain.Global.return_time_v1 ~n in
        let z = (Chains.Counter_chain.z_recurrence ~n).(n - 1) in
        let asym = Chains.Ramanujan.asymptotic n in
        [
          [
            string_of_int n;
            Runs.fmt w_sim;
            Runs.fmt w_chain;
            Runs.fmt z;
            Runs.fmt asym;
            Runs.fmt (2. *. sqrt (float_of_int n));
            Runs.fmt (z /. asym);
          ];
        ])
  in
  Plan.of_rows
    ~headers:
      [ "n"; "W sim"; "W chain"; "Z(n-1)"; "sqrt(pi n/2)"; "2 sqrt n"; "ratio to asym" ]
    (List.map cell_of [ 2; 4; 8; 16; 32; 64 ])
