(* Figure 4: percentage of steps taken by each process in the step
   immediately following a step by p1 — the local uniformity evidence
   for the stochastic-scheduler model.  Under the simulated uniform
   scheduler the conditional distribution is flat at 1/n.  On this
   container the real schedule is quantum-bursty (one core), which the
   quantum-scheduler column reproduces: mass concentrates on the same
   process.  This is the honest version of the paper's caveat that
   "the structure of the algorithm executed can influence the
   ratios". *)

let id = "fig4"
let title = "Figure 4: next-step distribution after a step by p1"

let notes =
  "Uniform sim: flat at 1/n.  Quantum sim and the real single-core \
   recording: strongly self-biased (the paper's multi-socket machine \
   showed a flat profile; a 1-core container cannot)."

let run ~quick =
  let n = 8 in
  let steps = if quick then 200_000 else 1_000_000 in
  let tr_uniform = Runs.sim_trace ~seed:21 ~n ~steps () in
  let tr_quantum =
    Runs.sim_trace ~seed:22 ~scheduler:(Sched.Scheduler.quantum ~length:8) ~n ~steps ()
  in
  let domains = 4 in
  let tr_real =
    Runtime.Recorder.record ~domains ~steps_per_domain:(if quick then 5_000 else 50_000)
  in
  let du = Sched.Trace.next_step_distribution tr_uniform ~after:0 in
  let dq = Sched.Trace.next_step_distribution tr_quantum ~after:0 in
  let dr = Sched.Trace.next_step_distribution tr_real ~after:0 in
  let table =
    Stats.Table.create
      [ "next process"; "uniform sim"; "quantum sim"; "real (4 domains)" ]
  in
  for i = 0 to n - 1 do
    Stats.Table.add_row table
      [
        Printf.sprintf "p%d" (i + 1);
        Runs.fmt_pct du.(i);
        Runs.fmt_pct dq.(i);
        (if i < domains then Runs.fmt_pct dr.(i) else "-");
      ]
  done;
  table
