(* Figure 4: percentage of steps taken by each process in the step
   immediately following a step by p1 — the local uniformity evidence
   for the stochastic-scheduler model.  Under the simulated uniform
   scheduler the conditional distribution is flat at 1/n.  On this
   container the real schedule is quantum-bursty (one core), which the
   quantum-scheduler column reproduces: mass concentrates on the same
   process.  This is the honest version of the paper's caveat that
   "the structure of the algorithm executed can influence the
   ratios". *)

let id = "fig4"
let title = "Figure 4: next-step distribution after a step by p1"

let notes =
  "Uniform sim: flat at 1/n.  Quantum sim and the real single-core \
   recording: strongly self-biased (the paper's multi-socket machine \
   showed a flat profile; a 1-core container cannot)."

(* Cells mirror fig3's: each trace source is one cell, and each cell
   reduces its trace to the conditional next-step distribution so the
   payload stays small. *)
let plan { Plan.quick; seed } =
  let n = 8 in
  let steps = if quick then 200_000 else 1_000_000 in
  let domains = 4 in
  let dist tr = Sched.Trace.next_step_distribution tr ~after:0 in
  Plan.make
    ~headers:[ "next process"; "uniform sim"; "quantum sim"; "real (4 domains)" ]
    ~cells:
      [
        Plan.cell "dist:uniform" (fun () ->
            dist (Runs.sim_trace ~seed:(seed + 21) ~n ~steps ()));
        Plan.cell "dist:quantum" (fun () ->
            dist
              (Runs.sim_trace ~seed:(seed + 22)
                 ~scheduler:(Sched.Scheduler.quantum ~length:8) ~n ~steps ()));
        Plan.cell "dist:real" (fun () ->
            dist
              (Runtime.Recorder.record ~domains
                 ~steps_per_domain:(if quick then 5_000 else 50_000)));
      ]
    ~assemble:(fun dists ->
      let du, dq, dr =
        match dists with
        | [ u; q; r ] -> (u, q, r)
        | _ -> invalid_arg "fig4: expected three distributions"
      in
      List.init n (fun i ->
          [
            Printf.sprintf "p%d" (i + 1);
            Runs.fmt_pct du.(i);
            Runs.fmt_pct dq.(i);
            (if i < domains then Runs.fmt_pct dr.(i) else "-");
          ]))
