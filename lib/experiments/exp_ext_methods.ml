(* Extension (§8: "implementations which export several distinct
   methods"): per-method progress statistics.  The class-level
   analysis treats all operations alike; here we split completions and
   inter-completion gaps by method — push vs pop, enqueue vs dequeue,
   RCU read vs update — under the uniform scheduler. *)

let id = "ext-methods"
let title = "Extension (§8): per-method latency within one object"

let notes =
  "For symmetric method mixes (stack, queue) both methods complete at \
   the same rate and with the same per-method latency — the fairness \
   of Lemma 7 extends method-wise.  RCU is maximally asymmetric: \
   reads are parallel code (cheap, wait-free), updates pay the \
   CAS-contention latency of the writer subset."

let plan { Plan.quick; seed } =
  let n = 8 in
  let steps = if quick then 200_000 else 800_000 in
  (* One cell per object; each cell yields one row per method. *)
  let cell label name make_spec (labels : (int * string) list) =
    Plan.cell label (fun () ->
        let m = Runs.spec_metrics ~seed:(seed + 71) ~n ~steps (make_spec ()) in
        let total = Sim.Metrics.total_completions m in
        List.map
          (fun (mid, mname) ->
            let counts = Sim.Metrics.method_completions m ~method_:mid in
            let count = Array.fold_left ( + ) 0 counts in
            let w =
              Stats.Summary.mean (Sim.Metrics.method_system_latency m ~method_:mid)
            in
            [
              name;
              mname;
              string_of_int count;
              Runs.fmt w;
              Runs.fmt_pct (float_of_int count /. float_of_int total);
            ])
          labels)
  in
  Plan.of_rows
    ~headers:[ "object"; "method"; "completions"; "method latency W_m"; "share" ]
    [
      cell "stack" "treiber stack"
        (fun () -> (Scu.Treiber.make ~n ()).spec)
        [ (Scu.Treiber.push_method, "push"); (Scu.Treiber.pop_method, "pop") ];
      cell "queue" "ms queue"
        (fun () -> (Scu.Msqueue.make ~n ()).spec)
        [
          (Scu.Msqueue.enqueue_method, "enqueue");
          (Scu.Msqueue.dequeue_method, "dequeue");
        ];
      cell "rcu" "rcu (6 readers / 2 updaters)"
        (fun () -> (Scu.Rcu.make ~n ~readers:6 ~block_size:4).spec)
        [ (Scu.Rcu.read_method, "read"); (Scu.Rcu.update_method, "update") ];
    ]
