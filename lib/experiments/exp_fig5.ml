(* Figure 5 (Appendix B): completion rate of the CAS fetch-and-
   increment counter vs. thread count — measured, against the model's
   Θ(1/√n) prediction scaled to the first data point (exactly the
   paper's procedure), the exact chain value, and the worst-case 1/n
   rate.  We add a real-hardware column from the Domains harness for
   small thread counts. *)

let id = "fig5"
let title = "Figure 5: completion rate vs. number of threads"

let notes =
  "Measured (sim) must track the exact chain value and the scaled \
   1/sqrt(n) prediction; the worst-case 1/n curve falls away below \
   both.  The real-hardware column on this 1-core container stays \
   near its uncontended 0.5 ops/step because domains time-slice \
   rather than collide — reported as-is (see EXPERIMENTS.md)."

let ns = [ 1; 2; 4; 8; 12; 16; 24; 32; 48; 64 ]

(* One simulation cell per thread count plus one hardware cell per
   small thread count.  The predicted/worst-case columns scale their
   model to the first measured point and the footer fits an exponent
   across the whole sweep, so rows are built in assemble from the raw
   per-cell rates. *)
type payload =
  | Sim of float * float  (* (n, measured completion rate) *)
  | Hw of int * string  (* (n, formatted hardware rate) *)

let hw_ns = List.filter (fun n -> n <= 4) ns

let plan { Plan.quick; seed } =
  let steps = if quick then 150_000 else 1_500_000 in
  let sim_cells =
    List.map
      (fun n ->
        Plan.cell (Printf.sprintf "sim:n=%d" n) (fun () ->
            let m = Runs.counter_metrics ~seed:(seed + 40 + n) ~n ~steps () in
            Sim (float_of_int n, Sim.Metrics.completion_rate m)))
      ns
  in
  let hw_cells =
    List.map
      (fun n ->
        Plan.cell (Printf.sprintf "hw:n=%d" n) (fun () ->
            let r =
              Runtime.Harness.counter_completion_rate ~domains:n
                ~ops_per_domain:(if quick then 2_000 else 20_000)
            in
            Hw (n, Runs.fmt r.completion_rate)))
      hw_ns
  in
  Plan.make
    ~headers:
      [
        "threads";
        "measured (sim)";
        "predicted c/sqrt(n)";
        "exact chain";
        "worst case c/n";
        "real 1-core hw";
      ]
    ~cells:(sim_cells @ hw_cells)
    ~assemble:(fun payloads ->
      let measured =
        List.filter_map (function Sim (n, r) -> Some (n, r) | Hw _ -> None) payloads
      in
      let hw =
        List.filter_map (function Hw (n, r) -> Some (n, r) | Sim _ -> None) payloads
      in
      let predicted =
        Stats.Regression.scale_to_first
          ~model:(fun n -> Chains.Predict.completion_rate_sqrt n)
          measured
      in
      let worst =
        Stats.Regression.scale_to_first
          ~model:(fun n -> Chains.Predict.completion_rate_worst_case n)
          measured
      in
      let data_rows =
        List.map
          (fun (nf, rate) ->
            let n = int_of_float nf in
            let exact =
              if n <= 64 then
                Runs.fmt (1. /. Chains.Scu_chain.System.system_latency ~n)
              else "-"
            in
            let real =
              match List.assoc_opt n hw with Some r -> r | None -> "-"
            in
            [
              string_of_int n;
              Runs.fmt rate;
              Runs.fmt (predicted nf);
              exact;
              Runs.fmt (worst nf);
              real;
            ])
          measured
      in
      (* Fit the measured exponent: the paper's claim is rate ~ n^-0.5. *)
      let fit =
        Stats.Regression.power_law (List.filter (fun (n, _) -> n >= 4.) measured)
      in
      data_rows
      @ [
          [
            "fitted exponent";
            Printf.sprintf "%.3f (want ~-0.5)" fit.slope;
            "";
            "";
            "";
            "";
          ];
        ])
