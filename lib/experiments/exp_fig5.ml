(* Figure 5 (Appendix B): completion rate of the CAS fetch-and-
   increment counter vs. thread count — measured, against the model's
   Θ(1/√n) prediction scaled to the first data point (exactly the
   paper's procedure), the exact chain value, and the worst-case 1/n
   rate.  We add a real-hardware column from the Domains harness for
   small thread counts. *)

let id = "fig5"
let title = "Figure 5: completion rate vs. number of threads"

let notes =
  "Measured (sim) must track the exact chain value and the scaled \
   1/sqrt(n) prediction; the worst-case 1/n curve falls away below \
   both.  The real-hardware column on this 1-core container stays \
   near its uncontended 0.5 ops/step because domains time-slice \
   rather than collide — reported as-is (see EXPERIMENTS.md)."

let ns = [ 1; 2; 4; 8; 12; 16; 24; 32; 48; 64 ]

let run ~quick =
  let steps = if quick then 150_000 else 1_500_000 in
  let measured =
    List.map
      (fun n ->
        let m = Runs.counter_metrics ~seed:(40 + n) ~n ~steps () in
        (float_of_int n, Sim.Metrics.completion_rate m))
      ns
  in
  let predicted =
    Stats.Regression.scale_to_first
      ~model:(fun n -> Chains.Predict.completion_rate_sqrt n)
      measured
  in
  let worst =
    Stats.Regression.scale_to_first
      ~model:(fun n -> Chains.Predict.completion_rate_worst_case n)
      measured
  in
  let table =
    Stats.Table.create
      [
        "threads";
        "measured (sim)";
        "predicted c/sqrt(n)";
        "exact chain";
        "worst case c/n";
        "real 1-core hw";
      ]
  in
  List.iter
    (fun (nf, rate) ->
      let n = int_of_float nf in
      let exact =
        if n <= 64 then Runs.fmt (1. /. Chains.Scu_chain.System.system_latency ~n)
        else "-"
      in
      let real =
        if n <= 4 then
          let r =
            Runtime.Harness.counter_completion_rate ~domains:n
              ~ops_per_domain:(if quick then 2_000 else 20_000)
          in
          Runs.fmt r.completion_rate
        else "-"
      in
      Stats.Table.add_row table
        [
          string_of_int n;
          Runs.fmt rate;
          Runs.fmt (predicted nf);
          exact;
          Runs.fmt (worst nf);
          real;
        ])
    measured;
  (* Fit the measured exponent: the paper's claim is rate ~ n^-0.5. *)
  let fit = Stats.Regression.power_law (List.filter (fun (n, _) -> n >= 4.) measured) in
  Stats.Table.add_row table
    [ "fitted exponent"; Printf.sprintf "%.3f (want ~-0.5)" fit.slope; ""; ""; ""; "" ];
  table
