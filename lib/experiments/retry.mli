(** Bounded per-cell retry with timeout, jittered backoff and
    deterministic fault injection.

    The paper's scheduler model is crash-tolerant by construction (the
    possibly-active set of Definition 1 exists to absorb crashed
    processes); this module gives the experiment engine the same
    property: a cell that raises or wedges costs one bounded recovery,
    never the sweep.  Every failed attempt is retried up to
    [max_attempts] with a delay from {!Runtime.Backoff.seconds}
    (truncated exponential, jittered from a caller-seeded state so
    delays are reproducible), and the final outcome — payload or
    error, plus the attempt count — always returns to the caller.

    None of this touches stdout or a cell's RNG, so the engine's
    byte-identical [-j 1] vs [-j N] guarantee survives retries. *)

type error =
  | Raised of exn * Printexc.raw_backtrace
      (** The attempt raised (including injected faults). *)
  | Timed_out of float  (** The attempt exceeded this many seconds. *)

type policy = {
  max_attempts : int;  (** Total attempts, >= 1; 1 means no retry. *)
  timeout_s : float option;
      (** Per-attempt wall-clock limit.  [None] (the default) runs the
          work in the calling domain with no limit; [Some s] runs each
          attempt in a fresh monitor domain and abandons it after [s]
          seconds — OCaml domains cannot be killed, so a timed-out
          attempt leaks its domain until the closure returns.  A
          timeout is a recovery bound for wedged cells, not a
          cancellation mechanism. *)
  backoff : bool;  (** Sleep a jittered exponential delay between attempts. *)
}

val default : policy
(** [{ max_attempts = 2; timeout_s = None; backoff = true }]: any
    single failure is recovered once, matching the paper's
    single-crash robustness arguments. *)

exception Injected_fault of string * int
(** [(matched spec key, attempt)] — raised by {!inject} when the fault
    registry says this attempt should fail. *)

exception
  Cell_failed of {
    exp_id : string;
    label : string;
    attempts : int;
    reason : string;
  }
(** Raised by drivers (not by this module) once a cell has exhausted
    its policy, so the failure can cross the [Plan.runner] interface
    carrying enough context for the manifest and the report. *)

val error_message : error -> string

val run :
  ?jitter:Random.State.t ->
  ?fault:(attempt:int -> unit) ->
  policy ->
  (unit -> 'a) ->
  ('a, error) result * int
(** Execute the work under the policy; never raises for a failing
    workload (policy misuse — [max_attempts < 1], a non-positive
    timeout — still raises [Invalid_argument]).  Returns the first
    successful payload or the last attempt's error, paired with the
    number of attempts actually made.  [fault] runs at the start of
    every attempt (1-based) and may raise to fail it — the
    fault-injection hook; {!inject} is the registry-backed one.
    [jitter] seeds the backoff delays (see
    {!Runtime.Backoff.seconds}). *)

(** {2 Fault-injection registry}

    A process-global table of cells that must fail their next [K]
    attempts, fed by the CLI's [--fault LABEL:K] flags (or the
    [REPRO_FAULT] environment variable) so CI can exercise the
    recovery paths deterministically: keys are exact cell labels or
    ["exp_id/label"], matched whatever worker domain runs the cell and
    whatever order cells execute in. *)

val install_faults : string list -> unit
(** Parse and install fault specs (["LABEL:K"] or ["EXP/LABEL:K"],
    [K >= 1] failures), replacing the current registry.  Raises
    [Invalid_argument] on a malformed spec. *)

val clear_faults : unit -> unit

val inject : exp_id:string -> label:string -> attempt:int -> unit
(** Raise {!Injected_fault} (consuming one remaining failure) if the
    registry has failures left for ["exp_id/label"] or ["label"];
    otherwise do nothing.  Thread-safe. *)
