(* Obstruction-freedom (§2.2): the weakest non-blocking guarantee —
   maximal progress only in uniformly isolating executions.  Our
   abortable-intent counter livelocks under lockstep round-robin
   (zero completions: minimal progress FAILS, which lock-freedom
   forbids), completes fine once any process gets a long-enough solo
   run (quantum scheduler), and under the stochastic schedulers the
   Theorem 3 reasoning applies unchanged: solo runs of length 2n+2
   keep happening, so progress resumes — the paper's story covers
   even this weakest class. *)

let id = "abl-of"
let title = "Ablation: obstruction-freedom across the scheduler zoo"

let notes =
  "round-robin: 0 completions (livelock — possible because the \
   algorithm is only obstruction-free); quantum(2n+2): full progress; \
   uniform and theta-adversary: progress with a contention-inflated \
   latency.  The lock-free counter column never reads 0."

let plan { Plan.quick; seed } =
  let n = 4 in
  let steps = if quick then 100_000 else 500_000 in
  let cell name make_sched =
    Plan.cell name (fun () ->
        let config = Sim.Executor.Config.(default |> with_seed (seed + 67)) in
        let ofc = Scu.Obstruction_free.make ~n in
        let r1 =
          Sim.Executor.exec ~config ~scheduler:(make_sched ()) ~n
            ~stop:(Steps steps) ofc.spec
        in
        let lf = Scu.Counter.make ~n in
        let r2 =
          Sim.Executor.exec ~config ~scheduler:(make_sched ()) ~n
            ~stop:(Steps steps) lf.spec
        in
        [
          [
            name;
            string_of_int (Sim.Metrics.total_completions r1.metrics);
            string_of_int (Scu.Obstruction_free.value ofc ofc.spec.memory);
            string_of_int (Sim.Metrics.total_completions r2.metrics);
          ];
        ])
  in
  Plan.of_rows
    ~headers:[ "scheduler"; "OF counter ops"; "OF value"; "lock-free counter ops" ]
    [
      cell "round-robin (lockstep)" (fun () -> Sched.Scheduler.round_robin ());
      cell "quantum(2n+2)" (fun () -> Sched.Scheduler.quantum ~length:((2 * n) + 2));
      cell "uniform" (fun () -> Sched.Scheduler.uniform);
      cell "starver+theta=0.05" (fun () ->
          Sched.Scheduler.with_weak_fairness ~theta:0.05
            (Sched.Scheduler.starver ~victim:0));
    ]
