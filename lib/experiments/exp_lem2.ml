(* Lemma 2 / Algorithm 1: an *unbounded* lock-free algorithm that is
   not wait-free w.h.p. — after a failed CAS a loser spins n²·v reads
   before retrying, while the winner (whose local v tracks the current
   value) keeps winning.  We count, per n, how many distinct processes
   ever complete within a fixed budget, across several seeds, plus the
   top process's share of all completions. *)

let id = "lem2"
let title = "Lemma 2: the unbounded algorithm starves all but the winner"

let notes =
  "Distinct winners stay at ~1 as n grows (a second winner needs the \
   leader silent for a whole n^2*v window, probability ~e^{-n}); the \
   winner's completion share is ~100%.  With the penalty capped at 0 \
   the same code is the bounded augmented-CAS counter and every \
   process completes — boundedness is exactly what Theorem 3 needs."

let plan { Plan.quick; seed = base } =
  let seeds =
    List.map (fun s -> base + s)
      (if quick then [ 1; 2; 3 ] else [ 1; 2; 3; 4; 5; 6; 7; 8 ])
  in
  let steps = if quick then 300_000 else 2_000_000 in
  let cell_of n =
    Plan.cell (Printf.sprintf "n=%d" n) (fun () ->
      let stats_of seed penalty_cap =
        let u =
          match penalty_cap with
          | None -> Scu.Unbounded.make ~n ()
          | Some cap -> Scu.Unbounded.make ~penalty_cap:cap ~n ()
        in
        let r =
          Sim.Executor.exec ~config:Sim.Executor.Config.(default |> with_seed seed)
            ~scheduler:Sched.Scheduler.uniform ~n ~stop:(Steps steps) u.spec
        in
        let per = List.init n (fun i -> Sim.Metrics.completions_of r.metrics i) in
        let winners = List.length (List.filter (fun c -> c > 0) per) in
        let total = List.fold_left ( + ) 0 per in
        let top = List.fold_left max 0 per in
        (winners, if total = 0 then 0. else float_of_int top /. float_of_int total)
      in
      let unbounded = List.map (fun s -> stats_of s None) seeds in
      let bounded_winners, _ = stats_of (base + 1) (Some 0) in
      let winner_counts = List.map fst unbounded in
      let mean_winners =
        float_of_int (List.fold_left ( + ) 0 winner_counts)
        /. float_of_int (List.length winner_counts)
      in
      let mean_share =
        List.fold_left (fun acc (_, s) -> acc +. s) 0. unbounded
        /. float_of_int (List.length unbounded)
      in
      [
        [
          string_of_int n;
          Runs.fmt mean_winners;
          string_of_int (List.fold_left max 0 winner_counts);
          Runs.fmt_pct mean_share;
          string_of_int bounded_winners;
        ];
      ])
  in
  Plan.of_rows
    ~headers:
      [
        "n";
        "mean winners (unbounded)";
        "max winners";
        "top share";
        "winners (bounded variant)";
      ]
    (List.map cell_of [ 2; 4; 8; 12; 16 ])
