(* The motivating comparison of §1: lock-free vs wait-free.  Under the
   uniform scheduler the lock-free counter is effectively wait-free
   (bounded tails); its operations are also far cheaper than the
   helping-based wait-free counter's Theta(n)-step scans.  Under a
   weakly-fair adversary the pictures diverge: the lock-free victim's
   tail explodes while helping keeps the wait-free victim's progress
   tied to the system's. *)

let id = "abl-wf"
let title = "Ablation: lock-free CAS counter vs wait-free helping counter"

let notes =
  "Uniform rows: lock-free wins on every latency column (helping \
   costs Theta(n) per op) — the paper's 'why practitioners don't pay \
   for wait-freedom'.  Adversary rows: the lock-free victim's p99/max \
   gap blows up; the wait-free victim stays bounded — what \
   wait-freedom actually buys."

let run ~quick =
  let n = 8 in
  let steps = if quick then 300_000 else 1_200_000 in
  let table =
    Stats.Table.create
      [
        "algorithm / scheduler";
        "W system";
        "victim ops";
        "victim mean W_i";
        "victim p99 W_i";
        "victim max W_i";
      ]
  in
  let adversary () =
    Sched.Scheduler.with_weak_fairness ~theta:0.02 (Sched.Scheduler.starver ~victim:0)
  in
  let row name spec sched =
    let m = Runs.spec_metrics ~seed:95 ~scheduler:sched ~record_samples:true ~n ~steps spec in
    let samples = Sim.Metrics.individual_samples m 0 in
    let p99, mx =
      if Array.length samples = 0 then (nan, nan)
      else
        let e = Stats.Ecdf.of_array samples in
        (Stats.Ecdf.quantile e 0.99, Stats.Ecdf.maximum e)
    in
    Stats.Table.add_row table
      [
        name;
        Runs.fmt (Sim.Metrics.mean_system_latency m);
        string_of_int (Sim.Metrics.completions_of m 0);
        Runs.fmt (Sim.Metrics.mean_individual_latency m 0);
        Runs.fmt p99;
        Runs.fmt mx;
      ]
  in
  row "lock-free / uniform" (Scu.Counter.make ~n).spec Sched.Scheduler.uniform;
  row "wait-free / uniform" (Scu.Waitfree_counter.make ~n).spec Sched.Scheduler.uniform;
  row "lock-free / adversary(theta=.02)" (Scu.Counter.make ~n).spec (adversary ());
  row "wait-free / adversary(theta=.02)" (Scu.Waitfree_counter.make ~n).spec (adversary ());
  table
