(* The motivating comparison of §1: lock-free vs wait-free.  Under the
   uniform scheduler the lock-free counter is effectively wait-free
   (bounded tails); its operations are also far cheaper than the
   helping-based wait-free counter's Theta(n)-step scans.  Under a
   weakly-fair adversary the pictures diverge: the lock-free victim's
   tail explodes while helping keeps the wait-free victim's progress
   tied to the system's. *)

let id = "abl-wf"
let title = "Ablation: lock-free CAS counter vs wait-free helping counter"

let notes =
  "Uniform rows: lock-free wins on every latency column (helping \
   costs Theta(n) per op) — the paper's 'why practitioners don't pay \
   for wait-freedom'.  Adversary rows: the lock-free victim's p99/max \
   gap blows up; the wait-free victim stays bounded — what \
   wait-freedom actually buys."

let plan { Plan.quick; seed } =
  let n = 8 in
  let steps = if quick then 300_000 else 1_200_000 in
  (* Stateful adversary schedulers are constructed inside each cell. *)
  let cell name make_spec make_sched =
    Plan.cell name (fun () ->
        let m =
          Runs.spec_metrics ~seed:(seed + 95) ~scheduler:(make_sched ())
            ~record_samples:true ~n ~steps (make_spec ())
        in
        let samples = Sim.Metrics.individual_samples m 0 in
        let p99, mx =
          if Array.length samples = 0 then (nan, nan)
          else
            let e = Stats.Ecdf.of_array samples in
            (Stats.Ecdf.quantile e 0.99, Stats.Ecdf.maximum e)
        in
        [
          [
            name;
            Runs.fmt (Sim.Metrics.mean_system_latency m);
            string_of_int (Sim.Metrics.completions_of m 0);
            Runs.fmt (Sim.Metrics.mean_individual_latency m 0);
            Runs.fmt p99;
            Runs.fmt mx;
          ];
        ])
  in
  let adversary () =
    Sched.Scheduler.with_weak_fairness ~theta:0.02 (Sched.Scheduler.starver ~victim:0)
  in
  let uniform () = Sched.Scheduler.uniform in
  Plan.of_rows
    ~headers:
      [
        "algorithm / scheduler";
        "W system";
        "victim ops";
        "victim mean W_i";
        "victim p99 W_i";
        "victim max W_i";
      ]
    [
      cell "lock-free / uniform" (fun () -> (Scu.Counter.make ~n).spec) uniform;
      cell "wait-free / uniform" (fun () -> (Scu.Waitfree_counter.make ~n).spec) uniform;
      cell "lock-free / adversary(theta=.02)"
        (fun () -> (Scu.Counter.make ~n).spec)
        adversary;
      cell "wait-free / adversary(theta=.02)"
        (fun () -> (Scu.Waitfree_counter.make ~n).spec)
        adversary;
    ]
