(* Theorem 5 / Lemmas 8-9: the iterated balls-into-bins game.  Mean
   phase length is Theta(sqrt n); phases in the third range (a < n/c)
   are rare and exited quickly. *)

let id = "thm5"
let title = "Theorem 5: balls-into-bins phase length = Theta(sqrt n)"

let notes =
  "phase/sqrt(n) settles near ~1.8 (the exact stationary constant of \
   the system chain, which drifts down slowly with n); third-range \
   phases vanish as n grows; exponent fit ~0.5."

let run ~quick =
  let phases = if quick then 3_000 else 30_000 in
  let table =
    Stats.Table.create
      [ "n"; "mean phase"; "phase/sqrt(n)"; "third-range %"; "exact chain W" ]
  in
  let pts = ref [] in
  List.iter
    (fun n ->
      let g = Ballsbins.Game.create ~n in
      let rng = Stats.Rng.create ~seed:(70 + n) in
      (* warmup *)
      for _ = 1 to phases / 10 do
        ignore (Ballsbins.Game.run_phase g ~rng)
      done;
      let ps = Ballsbins.Game.run g ~rng ~phases in
      let mean =
        float_of_int (List.fold_left (fun acc p -> acc + p.Ballsbins.Game.length) 0 ps)
        /. float_of_int phases
      in
      let third =
        float_of_int
          (List.length (List.filter (fun p -> p.Ballsbins.Game.range = Third) ps))
        /. float_of_int phases
      in
      pts := (float_of_int n, mean) :: !pts;
      let exact =
        if n <= 64 then Runs.fmt (Chains.Scu_chain.System.system_latency ~n) else "-"
      in
      Stats.Table.add_row table
        [
          string_of_int n;
          Runs.fmt mean;
          Runs.fmt (mean /. sqrt (float_of_int n));
          Runs.fmt_pct third;
          exact;
        ])
    [ 16; 32; 64; 256; 1024; 4096 ];
  let fit = Stats.Regression.power_law (List.rev !pts) in
  Stats.Table.add_row table
    [ "exponent fit"; Printf.sprintf "%.3f (want ~0.5)" fit.slope; ""; ""; "" ];
  table
