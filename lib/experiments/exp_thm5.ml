(* Theorem 5 / Lemmas 8-9: the iterated balls-into-bins game.  Mean
   phase length is Theta(sqrt n); phases in the third range (a < n/c)
   are rare and exited quickly. *)

let id = "thm5"
let title = "Theorem 5: balls-into-bins phase length = Theta(sqrt n)"

let notes =
  "phase/sqrt(n) settles near ~1.8 (the exact stationary constant of \
   the system chain, which drifts down slowly with n); third-range \
   phases vanish as n grows; exponent fit ~0.5."

(* One cell per n; the footer fits the exponent across all of them,
   so the mean phase lengths travel in the payload. *)
let plan { Plan.quick; seed } =
  let phases = if quick then 3_000 else 30_000 in
  let ns = [ 16; 32; 64; 256; 1024; 4096 ] in
  let cells =
    List.map
      (fun n ->
        Plan.cell (Printf.sprintf "n=%d" n) (fun () ->
            let g = Ballsbins.Game.create ~n in
            let rng = Stats.Rng.create ~seed:(seed + 70 + n) in
            (* warmup *)
            for _ = 1 to phases / 10 do
              ignore (Ballsbins.Game.run_phase g ~rng)
            done;
            let ps = Ballsbins.Game.run g ~rng ~phases in
            let mean =
              float_of_int
                (List.fold_left (fun acc p -> acc + p.Ballsbins.Game.length) 0 ps)
              /. float_of_int phases
            in
            let third =
              float_of_int
                (List.length
                   (List.filter (fun p -> p.Ballsbins.Game.range = Third) ps))
              /. float_of_int phases
            in
            (n, mean, third)))
      ns
  in
  Plan.make
    ~headers:[ "n"; "mean phase"; "phase/sqrt(n)"; "third-range %"; "exact chain W" ]
    ~cells
    ~assemble:(fun payloads ->
      let data_rows =
        List.map
          (fun (n, mean, third) ->
            let exact =
              if n <= 64 then Runs.fmt (Chains.Scu_chain.System.system_latency ~n)
              else "-"
            in
            [
              string_of_int n;
              Runs.fmt mean;
              Runs.fmt (mean /. sqrt (float_of_int n));
              Runs.fmt_pct third;
              exact;
            ])
          payloads
      in
      let fit =
        Stats.Regression.power_law
          (List.map (fun (n, mean, _) -> (float_of_int n, mean)) payloads)
      in
      data_rows
      @ [ [ "exponent fit"; Printf.sprintf "%.3f (want ~0.5)" fit.slope; ""; ""; "" ] ])
