(* Lemma 11: parallel code with q steps per operation has system
   latency exactly q and individual latency exactly nq under the
   uniform scheduler. *)

let id = "lem11"
let title = "Lemma 11: parallel code W = q, W_i = n*q"

let notes = "sim columns match q and nq within sampling error; exact columns are equalities."

let plan { Plan.quick; seed } =
  let steps = if quick then 200_000 else 1_000_000 in
  let cell_of (n, q) =
    Plan.cell (Printf.sprintf "n=%d,q=%d" n q) (fun () ->
        let p = Scu.Parallel_code.make ~n ~q in
        let m = Runs.spec_metrics ~seed:(seed + (n * 31) + q) ~n ~steps p.spec in
        let exact =
          if n <= 6 && q <= 6 then
            Runs.fmt (Chains.Parallel_chain.System.system_latency ~n ~q)
          else Runs.fmt (float_of_int q)
        in
        [
          [
            string_of_int n;
            string_of_int q;
            Runs.fmt (Sim.Metrics.mean_system_latency m);
            exact;
            Runs.fmt (Sim.Metrics.mean_individual_latency m 0);
            string_of_int (n * q);
          ];
        ])
  in
  Plan.of_rows
    ~headers:[ "n"; "q"; "W sim"; "W exact"; "W_i sim (p0)"; "n*q" ]
    (List.map cell_of [ (2, 2); (4, 3); (8, 5); (16, 10); (32, 4) ])
