(* Lemma 11: parallel code with q steps per operation has system
   latency exactly q and individual latency exactly nq under the
   uniform scheduler. *)

let id = "lem11"
let title = "Lemma 11: parallel code W = q, W_i = n*q"

let notes = "sim columns match q and nq within sampling error; exact columns are equalities."

let run ~quick =
  let steps = if quick then 200_000 else 1_000_000 in
  let table =
    Stats.Table.create
      [ "n"; "q"; "W sim"; "W exact"; "W_i sim (p0)"; "n*q" ]
  in
  List.iter
    (fun (n, q) ->
      let p = Scu.Parallel_code.make ~n ~q in
      let m = Runs.spec_metrics ~seed:(n * 31 + q) ~n ~steps p.spec in
      let exact =
        if n <= 6 && q <= 6 then Runs.fmt (Chains.Parallel_chain.System.system_latency ~n ~q)
        else Runs.fmt (float_of_int q)
      in
      Stats.Table.add_row table
        [
          string_of_int n;
          string_of_int q;
          Runs.fmt (Sim.Metrics.mean_system_latency m);
          exact;
          Runs.fmt (Sim.Metrics.mean_individual_latency m 0);
          string_of_int (n * q);
        ])
    [ (2, 2); (4, 3); (8, 5); (16, 10); (32, 4) ];
  table
