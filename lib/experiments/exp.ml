type t = {
  id : string;
  title : string;
  plan : Plan.budget -> Plan.t;
  notes : string;
}

module type EXPERIMENT = sig
  val id : string
  val title : string
  val notes : string
  val plan : Plan.budget -> Plan.t
end

let make (module M : EXPERIMENT) =
  { id = M.id; title = M.title; plan = M.plan; notes = M.notes }

let all =
  [
    make (module Exp_fig1);
    make (module Exp_fig3);
    make (module Exp_fig4);
    make (module Exp_fig5);
    make (module Exp_thm3);
    make (module Exp_lem2);
    make (module Exp_thm4);
    make (module Exp_lem7);
    make (module Exp_thm5);
    make (module Exp_lem11);
    make (module Exp_lem12);
    make (module Exp_lift);
    make (module Exp_meanfield);
    make (module Exp_cor2);
    make (module Exp_abl_sched);
    make (module Exp_abl_wf);
    make (module Exp_abl_lock);
    make (module Exp_abl_of);
    make (module Exp_abl_tas);
    make (module Exp_structs);
    make (module Exp_ext_shard);
    make (module Exp_ext_mix);
    make (module Exp_ext_methods);
    make (module Exp_ext_tail);
    make (module Exp_ext_backup);
    make (module Exp_ext_replay);
    make (module Exp_chaos);
    make (module Exp_hw);
    make (module Exp_microbench);
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let select ids =
  match
    List.find_opt (fun id -> id <> "all" && Option.is_none (find id)) ids
  with
  | Some bad -> Error (Printf.sprintf "unknown experiment %S" bad)
  | None ->
      let expanded =
        List.concat_map
          (fun id -> if id = "all" then all else Option.to_list (find id))
          ids
      in
      (* Dedupe, first occurrence wins, so `repro run fig5 all` runs
         fig5 first and everything else once. *)
      let seen = Hashtbl.create 32 in
      Ok
        (List.filter
           (fun e ->
             if Hashtbl.mem seen e.id then false
             else begin
               Hashtbl.add seen e.id ();
               true
             end)
           expanded)

let default_seed = 0
let budget ?(quick = false) ?(seed = default_seed) () = { Plan.quick; seed }

let table ?runner ?budget:(b = budget ()) e =
  Plan.table ?runner ~exp_id:e.id ~budget:b (e.plan b)

let run ?seed ~quick e = table ~budget:(budget ~quick ?seed ()) e

let render_table e tbl =
  Printf.sprintf "== %s (%s) ==\n\n%s\nExpected shape: %s\n" e.title e.id
    (Stats.Table.to_string tbl)
    e.notes

let render ?(quick = false) ?seed e = render_table e (run ?seed ~quick e)
