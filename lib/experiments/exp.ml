type t = {
  id : string;
  title : string;
  run : quick:bool -> Stats.Table.t;
  notes : string;
}

module type EXPERIMENT = sig
  val id : string
  val title : string
  val notes : string
  val run : quick:bool -> Stats.Table.t
end

let make (module M : EXPERIMENT) =
  { id = M.id; title = M.title; run = M.run; notes = M.notes }

let all =
  [
    make (module Exp_fig1);
    make (module Exp_fig3);
    make (module Exp_fig4);
    make (module Exp_fig5);
    make (module Exp_thm3);
    make (module Exp_lem2);
    make (module Exp_thm4);
    make (module Exp_lem7);
    make (module Exp_thm5);
    make (module Exp_lem11);
    make (module Exp_lem12);
    make (module Exp_lift);
    make (module Exp_cor2);
    make (module Exp_abl_sched);
    make (module Exp_abl_wf);
    make (module Exp_abl_lock);
    make (module Exp_abl_of);
    make (module Exp_abl_tas);
    make (module Exp_structs);
    make (module Exp_ext_shard);
    make (module Exp_ext_mix);
    make (module Exp_ext_methods);
    make (module Exp_ext_tail);
    make (module Exp_ext_backup);
    make (module Exp_ext_replay);
    make (module Exp_hw);
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let render ?(quick = false) e =
  let table = e.run ~quick in
  Printf.sprintf "== %s (%s) ==\n\n%s\nExpected shape: %s\n" e.title e.id
    (Stats.Table.to_string table)
    e.notes
