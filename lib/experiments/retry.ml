(* Bounded per-cell recovery: each attempt may raise or exceed a
   wall-clock limit, failures are retried up to a policy's bound with
   jittered exponential delays (Runtime.Backoff mapped to sleep time),
   and a deterministic fault-injection registry lets the CLI and CI
   exercise every path on demand. *)

type error =
  | Raised of exn * Printexc.raw_backtrace
  | Timed_out of float

type policy = { max_attempts : int; timeout_s : float option; backoff : bool }

let default = { max_attempts = 2; timeout_s = None; backoff = true }

exception Injected_fault of string * int
exception
  Cell_failed of {
    exp_id : string;
    label : string;
    attempts : int;
    reason : string;
  }

let () =
  Printexc.register_printer (function
    | Injected_fault (spec, attempt) ->
        Some
          (Printf.sprintf "injected fault %S (attempt %d)" spec attempt)
    | Cell_failed f ->
        Some
          (Printf.sprintf "cell %s/%s failed after %d attempt(s): %s" f.exp_id
             f.label f.attempts f.reason)
    | _ -> None)

let error_message = function
  | Raised (e, _) -> Printexc.to_string e
  | Timed_out limit -> Printf.sprintf "timed out after %gs" limit

(* ------------------------------------------------------------------ *)
(* Timeout                                                            *)
(* ------------------------------------------------------------------ *)

(* OCaml domains cannot be killed, so a bounded attempt runs in a
   fresh monitor domain while this one polls its result slot with a
   doubling sleep (0.5ms .. 10ms — coarse enough to be cheap, fine
   enough that short timeouts stay accurate).  On timeout the monitor
   is abandoned: it leaks until its closure returns (or the process
   exits), which is the price of guaranteeing the caller gets control
   back.  Timeouts are therefore for recovering a sweep, not for
   routinely cancelling work. *)
let with_timeout ~timeout_s work =
  let slot = Atomic.make None in
  let monitor =
    Domain.spawn (fun () ->
        let r =
          try Ok (work ())
          with e -> Error (Raised (e, Printexc.get_raw_backtrace ()))
        in
        Atomic.set slot (Some r))
  in
  let deadline = Pool.monotonic_now () +. timeout_s in
  let rec wait pause =
    match Atomic.get slot with
    | Some r ->
        Domain.join monitor;
        r
    | None when Pool.monotonic_now () >= deadline -> Error (Timed_out timeout_s)
    | None ->
        Unix.sleepf pause;
        wait (Float.min 0.01 (pause *. 2.))
  in
  wait 0.0005

(* ------------------------------------------------------------------ *)
(* Retry loop                                                         *)
(* ------------------------------------------------------------------ *)

let run ?jitter ?(fault = fun ~attempt:_ -> ()) policy work =
  if policy.max_attempts < 1 then
    invalid_arg "Retry.run: max_attempts must be >= 1";
  (match policy.timeout_s with
  | Some s when not (s > 0.) -> invalid_arg "Retry.run: timeout_s must be > 0"
  | _ -> ());
  let b = Runtime.Backoff.create () in
  let attempt_once attempt =
    try
      fault ~attempt;
      match policy.timeout_s with
      | None -> Ok (work ())
      | Some timeout_s -> with_timeout ~timeout_s work
    with e -> Error (Raised (e, Printexc.get_raw_backtrace ()))
  in
  let rec go attempt =
    match attempt_once attempt with
    | Ok v -> (Ok v, attempt)
    | Error e when attempt >= policy.max_attempts -> (Error e, attempt)
    | Error _ ->
        if policy.backoff then Unix.sleepf (Runtime.Backoff.seconds ?jitter b);
        go (attempt + 1)
  in
  go 1

(* ------------------------------------------------------------------ *)
(* Fault injection                                                    *)
(* ------------------------------------------------------------------ *)

(* Keyed by exact cell label or "exp_id/label"; the counter is the
   number of injected failures remaining.  Guarded by a mutex: cells
   run on pool worker domains, and injection must stay deterministic —
   keying by label (not by execution order) makes the same cells fail
   whatever -j is. *)
let faults : (string, int ref) Hashtbl.t = Hashtbl.create 7
let faults_mutex = Mutex.create ()

let parse_fault_spec spec =
  let fail () =
    invalid_arg
      (Printf.sprintf "bad fault spec %S (expected LABEL:K or EXP/LABEL:K)"
         spec)
  in
  match String.rindex_opt spec ':' with
  | None -> fail ()
  | Some i -> (
      let key = String.sub spec 0 i in
      let count = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt count with
      | Some k when k >= 1 && key <> "" -> (key, k)
      | _ -> fail ())

let install_faults specs =
  let parsed = List.map parse_fault_spec specs in
  Mutex.lock faults_mutex;
  Hashtbl.reset faults;
  List.iter (fun (key, k) -> Hashtbl.replace faults key (ref k)) parsed;
  Mutex.unlock faults_mutex

let clear_faults () =
  Mutex.lock faults_mutex;
  Hashtbl.reset faults;
  Mutex.unlock faults_mutex

let inject ~exp_id ~label ~attempt =
  Mutex.lock faults_mutex;
  let hit =
    List.find_map
      (fun key ->
        match Hashtbl.find_opt faults key with
        | Some r when !r > 0 -> Some (key, r)
        | _ -> None)
      [ exp_id ^ "/" ^ label; label ]
  in
  (match hit with Some (_, r) -> decr r | None -> ());
  Mutex.unlock faults_mutex;
  match hit with
  | Some (key, _) -> raise (Injected_fault (key, attempt))
  | None -> ()
