(* Lemma 7 (and Lemma 14 for the §7 counter): the expected number of
   system steps between two completions of any specific process is n
   times the system latency — every process gets the same share.  We
   report, per n, the ratio W_i / (n W) per-process extremes in the
   simulator and the exact value from the chains. *)

let id = "lem7"
let title = "Lemma 7: individual latency = n x system latency (fairness)"

let notes =
  "All ratio columns should be ~1.0; exact chain columns are 1.0 to \
   numerical precision."

let plan { Plan.quick; seed } =
  let steps = if quick then 300_000 else 1_500_000 in
  let cell_of n =
    Plan.cell (Printf.sprintf "n=%d" n) (fun () ->
      let m = Runs.counter_metrics ~seed:(seed + 60 + n) ~n ~steps () in
      let w = Sim.Metrics.mean_system_latency m in
      let ratios =
        List.init n (fun i ->
            Sim.Metrics.mean_individual_latency m i /. (float_of_int n *. w))
      in
      let mean = List.fold_left ( +. ) 0. ratios /. float_of_int n in
      let exact =
        if n <= 8 then
          let ind = Chains.Scu_chain.Individual.make ~n in
          let pi = Markov.Stationary.compute ind.chain in
          let rate0 =
            Markov.Stationary.success_rate ind.chain ~pi
              ~weight:(Chains.Scu_chain.Individual.success_weight ind ~proc:0)
          in
          let w_exact = Chains.Scu_chain.System.system_latency ~n in
          Runs.fmt (1. /. rate0 /. (float_of_int n *. w_exact))
        else "-"
      in
      [
        [
          string_of_int n;
          Runs.fmt mean;
          Runs.fmt (List.fold_left Float.min infinity ratios);
          Runs.fmt (List.fold_left Float.max neg_infinity ratios);
          exact;
        ];
      ])
  in
  Plan.of_rows
    ~headers:
      [
        "n";
        "sim ratio (mean)";
        "sim ratio (min proc)";
        "sim ratio (max proc)";
        "exact chain ratio";
      ]
    (List.map cell_of [ 2; 4; 8; 16; 32 ])
