(** Shared measurement helpers for the experiment modules. *)

val counter_metrics :
  ?seed:int ->
  ?scheduler:Sched.Scheduler.t ->
  ?record_samples:bool ->
  n:int ->
  steps:int ->
  unit ->
  Sim.Metrics.t
(** Run the CAS counter (SCU(0,1)) for [steps] system steps. *)

val spec_metrics :
  ?seed:int ->
  ?scheduler:Sched.Scheduler.t ->
  ?record_samples:bool ->
  ?crash_plan:Sched.Crash_plan.t ->
  ?fault_plan:Sched.Fault_plan.t ->
  n:int ->
  steps:int ->
  Sim.Executor.spec ->
  Sim.Metrics.t

val sim_trace :
  ?seed:int -> ?scheduler:Sched.Scheduler.t -> n:int -> steps:int -> unit -> Sched.Trace.t
(** Schedule trace of a counter run (the algorithm does not matter for
    trace statistics; the scheduler does). *)

val fmt : float -> string
(** "%.4g" *)

val fmt_pct : float -> string
(** Percentage with two decimals, e.g. "6.25%". *)
