(** Shared measurement helpers for the experiment modules. *)

val counter_metrics :
  ?seed:int ->
  ?scheduler:Sched.Scheduler.t ->
  ?record_samples:bool ->
  n:int ->
  steps:int ->
  unit ->
  Sim.Metrics.t
(** Run the CAS counter (SCU(0,1)) for [steps] system steps — through
    the compiled executor ({!Sim.Executor.exec_compiled}), which is
    byte-identical to the interpreted counter and an order of
    magnitude faster. *)

val spec_metrics :
  ?seed:int ->
  ?scheduler:Sched.Scheduler.t ->
  ?record_samples:bool ->
  ?fault_plan:Sched.Fault_plan.t ->
  n:int ->
  steps:int ->
  Sim.Executor.spec ->
  Sim.Metrics.t
(** Run an arbitrary effect-based spec.  Crash-only schedules go
    through [fault_plan] too ({!Sched.Fault_plan.of_crash_plan}); the
    legacy [crash_plan] argument is gone. *)

val sim_trace :
  ?seed:int -> ?scheduler:Sched.Scheduler.t -> n:int -> steps:int -> unit -> Sched.Trace.t
(** Schedule trace of a counter run (the algorithm does not matter for
    trace statistics; the scheduler does). *)

val fmt : float -> string
(** "%.4g" *)

val fmt_pct : float -> string
(** Percentage with two decimals, e.g. "6.25%". *)
