(** Schedule traces and the statistics behind Figures 3 and 4.

    A trace is the sequence of scheduled process ids.  Figure 3 plots
    the long-run share of steps per process; Figure 4 plots the
    distribution of the *next* scheduled process conditioned on the
    current step being by a given process.  Both should be close to
    uniform under the uniform stochastic scheduler — and, per the
    paper's Appendix A, they are close to uniform for real hardware
    schedules too. *)

type t

val create : n:int -> t
val record : t -> int -> unit
val length : t -> int
val n : t -> int

val of_array : n:int -> int array -> t
val to_array : t -> int array

val step_counts : t -> int array
(** Steps taken by each process. *)

val step_shares : t -> float array
(** Figure 3: fraction of all steps taken by each process. *)

val next_step_distribution : t -> after:int -> float array
(** Figure 4: empirical distribution of the process scheduled
    immediately after a step by process [after].  All zeros if [after]
    never appears before the end of the trace. *)

val successor_matrix : t -> float array array
(** Row [i] is [next_step_distribution ~after:i]. *)

val run_length_counts : t -> proc:int -> (int * int) list
(** Histogram of maximal consecutive-run lengths of [proc] in the
    trace, as (length, occurrences), sorted by length. *)

val max_gap : t -> proc:int -> int
(** Longest stretch of steps not involving [proc] (starvation probe). *)
