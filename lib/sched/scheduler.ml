type t = {
  name : string;
  theta : float;
  stateful : bool;
  pick : rng:Stats.Rng.t -> alive:bool array -> time:int -> int;
  fill :
    (rng:Stats.Rng.t -> alive:bool array -> dst:int array -> len:int -> unit)
    option;
}

let alive_count alive =
  Array.fold_left (fun acc a -> if a then acc + 1 else acc) 0 alive

let nth_alive alive k =
  let rec scan i k =
    if i >= Array.length alive then invalid_arg "Scheduler: no alive process"
    else if alive.(i) then if k = 0 then i else scan (i + 1) (k - 1)
    else scan (i + 1) k
  in
  scan 0 k

let pick_uniform rng alive =
  let k = alive_count alive in
  if k = 0 then invalid_arg "Scheduler: no alive process";
  nth_alive alive (Stats.Rng.int rng k)

(* Batched uniform picks: bit-for-bit the stream [len] successive
   [pick] calls would consume ([alive_count] draws nothing; [Rng.int]
   is mirrored by [Rng.fill_int]), then the same [nth_alive] mapping
   applied through a precomputed table.  Only valid while the alive
   set does not change — the executor guarantees that by sizing its
   batches to the next alive-set transition. *)
let fill_uniform ~rng ~alive ~dst ~len =
  let k = alive_count alive in
  if k = 0 then invalid_arg "Scheduler: no alive process";
  Stats.Rng.fill_int rng k dst ~len;
  if k <> Array.length alive then begin
    let nth = Array.make k 0 in
    let j = ref 0 in
    Array.iteri
      (fun i a ->
        if a then begin
          nth.(!j) <- i;
          incr j
        end)
      alive;
    for i = 0 to len - 1 do
      dst.(i) <- nth.(dst.(i))
    done
  end

let uniform =
  {
    name = "uniform";
    theta = nan (* 1/|A|, depends on alive count; executor treats nan as uniform *);
    stateful = false;
    pick = (fun ~rng ~alive ~time:_ -> pick_uniform rng alive);
    fill = Some fill_uniform;
  }

let round_robin () =
  let last = ref (-1) in
  {
    name = "round-robin";
    theta = 0.;
    stateful = true;
    fill = None;
    pick =
      (fun ~rng:_ ~alive ~time:_ ->
        let n = Array.length alive in
        let rec next i tried =
          if tried > n then invalid_arg "Scheduler.round_robin: no alive process"
          else
            let i = (i + 1) mod n in
            if alive.(i) then i else next i (tried + 1)
        in
        let i = next !last 0 in
        last := i;
        i);
  }

let weighted w =
  Array.iter (fun x -> if x < 0. then invalid_arg "Scheduler.weighted: negative weight") w;
  {
    name = "weighted";
    theta = 0.;
    stateful = false;
    fill = None;
    pick =
      (fun ~rng ~alive ~time:_ ->
        let masked =
          Array.mapi (fun i x -> if alive.(i) then x else 0.) w
        in
        let total = Array.fold_left ( +. ) 0. masked in
        if total > 0. then Stats.Rng.pick_weighted rng masked
        else pick_uniform rng alive);
  }

let zipf ~n ~alpha =
  let w = Array.init n (fun i -> 1. /. Float.pow (float_of_int (i + 1)) alpha) in
  { (weighted w) with name = Printf.sprintf "zipf(%.2f)" alpha }

let lottery tickets =
  let w = Array.map float_of_int tickets in
  { (weighted w) with name = "lottery" }

let starver ~victim =
  let inner = round_robin () in
  {
    name = Printf.sprintf "starver(p%d)" victim;
    theta = 0.;
    stateful = true;
    fill = None;
    pick =
      (fun ~rng ~alive ~time ->
        let others = Array.mapi (fun i a -> a && i <> victim) alive in
        if alive_count others > 0 then inner.pick ~rng ~alive:others ~time
        else pick_uniform rng alive);
  }

let quantum ~length =
  if length < 1 then invalid_arg "Scheduler.quantum: length must be >= 1";
  let current = ref (-1) in
  let remaining = ref 0 in
  {
    name = Printf.sprintf "quantum(%d)" length;
    theta = 0. (* locally adversarial within a quantum *);
    stateful = true;
    fill = None;
    pick =
      (fun ~rng ~alive ~time:_ ->
        if !remaining > 0 && !current >= 0 && alive.(!current) then begin
          decr remaining;
          !current
        end
        else begin
          current := pick_uniform rng alive;
          remaining := length - 1;
          !current
        end);
  }

let with_weak_fairness ~theta adv =
  if not (theta > 0.) then invalid_arg "Scheduler.with_weak_fairness: theta must be > 0";
  {
    name = Printf.sprintf "%s+theta(%.4g)" adv.name theta;
    theta;
    stateful = adv.stateful;
    fill = None;
    pick =
      (fun ~rng ~alive ~time ->
        let k = alive_count alive in
        let mass = float_of_int k *. theta in
        if mass > 1. +. 1e-12 then
          invalid_arg "Scheduler.with_weak_fairness: k * theta exceeds 1";
        if Stats.Rng.float rng 1.0 < mass then pick_uniform rng alive
        else adv.pick ~rng ~alive ~time);
  }

let replay order =
  if Array.length order = 0 then invalid_arg "Scheduler.replay: empty schedule";
  {
    name = "replay";
    theta = 0.;
    stateful = false (* time-indexed, not self-advancing *);
    fill = None;
    pick =
      (fun ~rng ~alive ~time ->
        (* Past the recording's end, wrap around; skip dead processes
           by falling back to uniform (recorded processes never die in
           the recordings we replay, so the fallback is a safety
           net). *)
        let i = order.(time mod Array.length order) in
        if i >= 0 && i < Array.length alive && alive.(i) then i
        else pick_uniform rng alive);
  }

let replay_to_string order =
  String.concat "," (Array.to_list (Array.map string_of_int order))

let replay_of_string s =
  let parts = String.split_on_char ',' (String.trim s) in
  let parts = List.filter (fun p -> String.trim p <> "") parts in
  if parts = [] then invalid_arg "Scheduler.replay_of_string: empty schedule";
  Array.of_list
    (List.map
       (fun p ->
         match int_of_string_opt (String.trim p) with
         | Some i when i >= 0 -> i
         | _ ->
             invalid_arg
               (Printf.sprintf
                  "Scheduler.replay_of_string: bad process id %S (want \
                   comma-separated non-negative ints)"
                  p))
       parts)

let sample_counts t ~rng ~alive ~time ~trials =
  let n = Array.length alive in
  let counts = Array.make n 0 in
  for _ = 1 to trials do
    let i = t.pick ~rng ~alive ~time in
    counts.(i) <- counts.(i) + 1
  done;
  Array.map (fun c -> float_of_int c /. float_of_int trials) counts

let pick_distribution t ~rng ~alive ~time ~trials =
  if t.stateful then
    invalid_arg
      (Printf.sprintf
         "Scheduler.pick_distribution: %s is stateful; repeated sampling would \
          perturb its internal state (use time_average_distribution)"
         t.name);
  sample_counts t ~rng ~alive ~time ~trials

let time_average_distribution t ~rng ~alive ~trials =
  let k = alive_count alive in
  if k = 0 then invalid_arg "Scheduler.time_average_distribution: no alive process";
  (* Round the trial count up to a multiple of the alive count so that
     deterministic cyclic schedulers (round-robin) produce an *exact*
     time-averaged distribution instead of one that depends on where
     the cycle was cut off. *)
  let trials = trials + ((k - (trials mod k)) mod k) in
  sample_counts t ~rng ~alive ~time:0 ~trials
