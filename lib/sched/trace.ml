type t = { n : int; steps : Stats.Vec.Int.t }

let create ~n = { n; steps = Stats.Vec.Int.create ~capacity:1024 () }

let record t i =
  if i < 0 || i >= t.n then invalid_arg "Trace.record: process id out of range";
  Stats.Vec.Int.push t.steps i

let length t = Stats.Vec.Int.length t.steps
let n t = t.n

let of_array ~n arr =
  let t = create ~n in
  Array.iter (record t) arr;
  t

let to_array t = Stats.Vec.Int.to_array t.steps

let step_counts t =
  let counts = Array.make t.n 0 in
  Stats.Vec.Int.iter (fun i -> counts.(i) <- counts.(i) + 1) t.steps;
  counts

let step_shares t =
  let counts = step_counts t in
  let total = length t in
  if total = 0 then Array.make t.n 0.
  else Array.map (fun c -> float_of_int c /. float_of_int total) counts

let next_step_distribution t ~after =
  let counts = Array.make t.n 0 in
  let total = ref 0 in
  let len = length t in
  for k = 0 to len - 2 do
    if Stats.Vec.Int.get t.steps k = after then begin
      let succ = Stats.Vec.Int.get t.steps (k + 1) in
      counts.(succ) <- counts.(succ) + 1;
      incr total
    end
  done;
  if !total = 0 then Array.make t.n 0.
  else Array.map (fun c -> float_of_int c /. float_of_int !total) counts

let successor_matrix t =
  Array.init t.n (fun i -> next_step_distribution t ~after:i)

let run_length_counts t ~proc =
  let tbl = Hashtbl.create 16 in
  let current = ref 0 in
  let flush () =
    if !current > 0 then begin
      let prev = Option.value (Hashtbl.find_opt tbl !current) ~default:0 in
      Hashtbl.replace tbl !current (prev + 1);
      current := 0
    end
  in
  Stats.Vec.Int.iter
    (fun i -> if i = proc then incr current else flush ())
    t.steps;
  flush ();
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let max_gap t ~proc =
  let best = ref 0 and current = ref 0 in
  Stats.Vec.Int.iter
    (fun i ->
      if i = proc then begin
        if !current > !best then best := !current;
        current := 0
      end
      else incr current)
    t.steps;
  if !current > !best then best := !current;
  !best
