type t = (int * int) list (* (time, proc), sorted by time, unique procs *)

let none = []

let of_list events =
  let seen = Hashtbl.create 8 in
  let dedup =
    List.filter
      (fun (time, proc) ->
        match Hashtbl.find_opt seen proc with
        | Some earlier when earlier <= time -> false
        | _ ->
            Hashtbl.replace seen proc time;
            true)
      (List.sort compare events)
  in
  (* After sorting, the first occurrence of each proc is its earliest. *)
  List.sort compare dedup

let to_list t = t

let crashes_at t ~time = List.filter_map (fun (tm, p) -> if tm = time then Some p else None) t
let crashed_by t ~time = List.filter_map (fun (tm, p) -> if tm <= time then Some p else None) t
let count t = List.length t

let validate ~n t =
  let procs = List.map snd t in
  if List.exists (fun p -> p < 0 || p >= n) procs then Error "crash plan: process out of range"
  else if List.length procs >= n then Error "crash plan: all processes would crash"
  else Ok ()
