(** Crash schedules.

    Definition 1's conditions 3–4: a crashed process has probability 0
    from its crash time onward, and the possibly-active set only
    shrinks (A_{τ+1} ⊆ A_τ).  A plan lists (time, process) crash
    events; the executor consults it each step and removes crashed
    processes from the alive set, which automatically satisfies both
    conditions.  The paper allows up to n−1 crashes; [validate]
    enforces that at least one process survives. *)

type t

val none : t
(** No crashes ever. *)

val of_list : (int * int) list -> t
(** [(time, proc)] events; a process crashes at the *start* of the
    given time step (it takes no step at that time).  Duplicate
    processes keep the earliest crash. *)

val to_list : t -> (int * int) list
(** The normalized [(time, proc)] events, sorted by time — the bridge
    into the chaos layer's {!Fault_plan.of_crash_events}. *)

val crashes_at : t -> time:int -> int list
(** Processes that crash exactly at [time]. *)

val crashed_by : t -> time:int -> int list
(** All processes whose crash time is <= [time]. *)

val count : t -> int

val validate : n:int -> t -> (unit, string) result
(** Checks process indices are in range and fewer than [n] processes
    crash in total. *)
