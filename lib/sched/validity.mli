(** Empirical validation of Definition 1.

    Given a scheduler and a fixed alive set, sample Π_τ and check the
    four conditions of the paper's scheduler definition:

    1. well-formedness — some alive process is always returned (the
       sampled distribution sums to 1 by construction);
    2. weak fairness — every alive process's empirical probability is
       at least the declared θ (within sampling tolerance);
    3. crashes — no dead process is ever scheduled;
    4. crash containment — the executor's job; checked in the
       simulator tests instead.

    This makes "is this scheduler actually stochastic with the θ it
    claims?" a unit test rather than an assumption. *)

type verdict = {
  well_formed : bool;
  weak_fair : bool;
  no_dead_scheduled : bool;
  min_alive_probability : float;
}

val check :
  Scheduler.t ->
  rng:Stats.Rng.t ->
  alive:bool array ->
  ?time:int ->
  ?trials:int ->
  unit ->
  verdict
(** Default 100_000 trials at time 0.  [weak_fair] compares against the
    scheduler's declared theta minus 3 standard errors ([nan] theta,
    i.e. the uniform scheduler, is checked against 1/|alive|).

    For a [stateful] scheduler the sampled quantity is its
    *time-averaged* distribution (each trial advances the scheduler's
    state), and the trial count is rounded up to a multiple of the
    alive count so deterministic cyclic schedulers get an exact,
    well-defined verdict: [round_robin] reports
    [min_alive_probability = 1/k] exactly.  The instance's state is
    advanced — pass a fresh instance if it is also driving a run. *)
