(* Fault schedules: the chaos-layer generalization of {!Crash_plan}.

   A plan carries a time-sorted list of discrete events (permanent or
   recoverable crashes, restarts, bounded stall windows) plus
   per-process spurious-CAS-failure rates.  A plan whose only events
   are crashes with no matching restart is exactly a Definition 1
   crash plan; everything else is a documented extension (see
   DESIGN.md, "Fault model"). *)

type event = Crash of int | Restart of int | Stall of int * int

type rates = {
  crash : float;
  recover : float;
  stall : float;
  stall_len : int;
  casfail : float;
}

let zero_rates = { crash = 0.; recover = 0.; stall = 0.; stall_len = 0; casfail = 0. }

(* Named rate tiers, shared by the chaos harness's default spec and the
   scenario presets.  [quick] is fault-free; [standard] is the mild
   always-on drill; [century] is the rare-event tier (rates chosen so a
   fault is an exceptional excursion within one run, not the norm —
   the regime of the paper's century-scale stall tail); [chaos] is the
   heavy mixed drill (the historical Chaos.default_spec values). *)
let quick_rates = zero_rates

let standard_rates =
  { crash = 0.002; recover = 0.05; stall = 0.002; stall_len = 3; casfail = 0.02 }

let century_rates =
  {
    crash = 1e-4;
    recover = 0.02;
    stall = 1e-4;
    stall_len = 3;
    casfail = 5e-4;
  }

let chaos_rates =
  { crash = 0.01; recover = 0.05; stall = 0.01; stall_len = 5; casfail = 0.1 }

let tier_rates = function
  | "quick" -> Some quick_rates
  | "standard" -> Some standard_rates
  | "century" -> Some century_rates
  | "chaos" -> Some chaos_rates
  | _ -> None

type t = {
  events : (int * event) array; (* sorted by time, stable *)
  spurious : (int option * float) list; (* (Some proc | None = all, rate) *)
}

type spec = { base : t; rates : rates }

let none = { events = [||]; spurious = [] }

let sort_events events =
  let arr = Array.of_list events in
  (* Stable, so events sharing a time fire in the order given. *)
  Array.stable_sort (fun (t1, _) (t2, _) -> compare t1 t2) arr;
  arr

let make ?(spurious = []) events = { events = sort_events events; spurious }

let of_crash_events crashes =
  make (List.map (fun (time, proc) -> (time, Crash proc)) crashes)

let of_crash_plan plan = of_crash_events (Crash_plan.to_list plan)

let merge a b =
  {
    events = sort_events (Array.to_list a.events @ Array.to_list b.events);
    spurious = a.spurious @ b.spurious;
  }

let events t = Array.copy t.events
let events_list t = Array.to_list t.events
let spurious t = t.spurious

let is_none t = t.events = [||] && t.spurious = []

let event_proc = function Crash p | Restart p | Stall (p, _) -> p

let has_spurious t = List.exists (fun (_, r) -> r > 0.) t.spurious

let spurious_rates ~n t =
  let rates = Array.make n 0. in
  List.iter
    (fun (proc, r) ->
      match proc with
      | None -> Array.iteri (fun i cur -> rates.(i) <- Float.max cur r) rates
      | Some p -> if p >= 0 && p < n then rates.(p) <- Float.max rates.(p) r)
    t.spurious;
  rates

let restart_count t =
  Array.fold_left
    (fun acc (_, e) -> match e with Restart _ -> acc + 1 | _ -> acc)
    0 t.events

let stall_total t =
  Array.fold_left
    (fun acc (_, e) -> match e with Stall (_, d) -> acc + max 0 d | _ -> acc)
    0 t.events

let survivors ~n t =
  let crashed = Array.make n false in
  Array.iter
    (fun (_, e) ->
      match e with
      | Crash p -> if p >= 0 && p < n then crashed.(p) <- true
      | Restart p -> if p >= 0 && p < n then crashed.(p) <- false
      | Stall _ -> ())
    t.events;
  Array.fold_left (fun acc c -> if c then acc else acc + 1) 0 crashed

let validate ~n t =
  let bad_proc =
    Array.exists
      (fun (time, e) ->
        let p = event_proc e in
        p < 0 || p >= n || time < 0)
      t.events
  in
  let bad_stall =
    Array.exists (fun (_, e) -> match e with Stall (_, d) -> d < 0 | _ -> false) t.events
  in
  let bad_rate =
    List.exists
      (fun (proc, r) ->
        (not (r >= 0. && r < 1.))
        || match proc with Some p -> p < 0 || p >= n | None -> false)
      t.spurious
  in
  if bad_proc then Error "fault plan: process or time out of range"
  else if bad_stall then Error "fault plan: negative stall duration"
  else if bad_rate then Error "fault plan: spurious CAS rate must be in [0,1)"
  else begin
    (* Replay the event sequence: the plan must leave at least one
       process un-crashed at the end (Definition 1's survivor,
       extended: a crash healed by a later restart is not permanent). *)
    let crashed = Array.make n false in
    Array.iter
      (fun (_, e) ->
        match e with
        | Crash p -> crashed.(p) <- true
        | Restart p -> crashed.(p) <- false
        | Stall _ -> ())
      t.events;
    let perm = Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 crashed in
    if perm >= n then Error "fault plan: all processes would crash permanently"
    else Ok ()
  end

(* -- Grammar --------------------------------------------------------

   Comma-separated tokens; explicit events and per-process rates:
     crash@T:P      crash process P at time T
     restart@T:P    restart P at time T (fresh body, memory kept)
     stall@T:P+D    P unschedulable during [T, T+D)
     casfail:P=R    P's successful CASes spuriously fail with rate R
                    (P may be '*' for every process)
   plus rate entries expanded by {!instantiate}:
     crash~R  recover~R  stall~R:D  casfail~R
   The empty string and "none" denote the empty plan. *)

let event_to_token (time, e) =
  match e with
  | Crash p -> Printf.sprintf "crash@%d:%d" time p
  | Restart p -> Printf.sprintf "restart@%d:%d" time p
  | Stall (p, d) -> Printf.sprintf "stall@%d:%d+%d" time p d

let spurious_to_token (proc, r) =
  Printf.sprintf "casfail:%s=%g" (match proc with None -> "*" | Some p -> string_of_int p) r

let to_string t =
  String.concat ","
    (Array.to_list (Array.map event_to_token t.events)
    @ List.map spurious_to_token t.spurious)

let rates_to_tokens r =
  List.concat
    [
      (if r.crash > 0. then [ Printf.sprintf "crash~%g" r.crash ] else []);
      (if r.recover > 0. then [ Printf.sprintf "recover~%g" r.recover ] else []);
      (if r.stall > 0. then [ Printf.sprintf "stall~%g:%d" r.stall r.stall_len ] else []);
      (if r.casfail > 0. then [ Printf.sprintf "casfail~%g" r.casfail ] else []);
    ]

let spec_to_string s =
  match
    (if is_none s.base then [] else [ to_string s.base ]) @ rates_to_tokens s.rates
  with
  | [] -> "none"
  | parts -> String.concat "," parts

let parse_token token =
  let fail () = Error (Printf.sprintf "bad --faults token %S" token) in
  let split2 c s =
    match String.index_opt s c with
    | Some i ->
        Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    | None -> None
  in
  let int_of s = int_of_string_opt (String.trim s) in
  let float_of s = float_of_string_opt (String.trim s) in
  match split2 '@' token with
  | Some (kind, rest) -> (
      match split2 ':' rest with
      | None -> fail ()
      | Some (t_str, p_str) -> (
          match (kind, int_of t_str) with
          | "crash", Some time -> (
              match int_of p_str with
              | Some p -> Ok (`Event (time, Crash p))
              | None -> fail ())
          | "restart", Some time -> (
              match int_of p_str with
              | Some p -> Ok (`Event (time, Restart p))
              | None -> fail ())
          | "stall", Some time -> (
              match split2 '+' p_str with
              | Some (p, d) -> (
                  match (int_of p, int_of d) with
                  | Some p, Some d -> Ok (`Event (time, Stall (p, d)))
                  | _ -> fail ())
              | None -> fail ())
          | _ -> fail ()))
  | None -> (
      match split2 '~' token with
      | Some ("crash", r) -> (
          match float_of r with Some r -> Ok (`Rate (`Crash r)) | None -> fail ())
      | Some ("recover", r) -> (
          match float_of r with Some r -> Ok (`Rate (`Recover r)) | None -> fail ())
      | Some ("stall", rest) -> (
          match split2 ':' rest with
          | Some (r, d) -> (
              match (float_of r, int_of d) with
              | Some r, Some d -> Ok (`Rate (`Stall (r, d)))
              | _ -> fail ())
          | None -> fail ())
      | Some ("casfail", r) -> (
          match float_of r with Some r -> Ok (`Rate (`Casfail r)) | None -> fail ())
      | Some _ -> fail ()
      | None -> (
          match split2 ':' token with
          | Some ("casfail", rest) -> (
              match split2 '=' rest with
              | Some (p, r) -> (
                  let proc =
                    if String.trim p = "*" then Some None
                    else Option.map Option.some (int_of p)
                  in
                  match (proc, float_of r) with
                  | Some proc, Some r -> Ok (`Spurious (proc, r))
                  | _ -> fail ())
              | None -> fail ())
          | _ -> fail ()))

let parse_spec s =
  let tokens =
    List.filter
      (fun tok -> tok <> "" && tok <> "none")
      (List.map String.trim (String.split_on_char ',' s))
  in
  let rec go events spurious rates = function
    | [] ->
        Ok { base = { events = sort_events (List.rev events); spurious = List.rev spurious }; rates }
    | tok :: rest -> (
        match parse_token tok with
        | Error msg -> Error msg
        | Ok (`Event e) -> go (e :: events) spurious rates rest
        | Ok (`Spurious sp) -> go events (sp :: spurious) rates rest
        | Ok (`Rate r) ->
            let rates =
              match r with
              | `Crash c -> { rates with crash = c }
              | `Recover c -> { rates with recover = c }
              | `Stall (c, d) -> { rates with stall = c; stall_len = d }
              | `Casfail c -> { rates with casfail = c }
            in
            go events spurious rates rest)
  in
  go [] [] zero_rates tokens

let rates_are_zero r =
  r.crash = 0. && r.recover = 0. && r.stall = 0. && r.casfail = 0.

let spec_is_none s = is_none s.base && rates_are_zero s.rates

(* Expand a rate spec into a concrete plan, deterministically by seed.
   The generative model walks time 0..horizon-1 tracking which
   processes it has crashed, so crash/recover rates produce plausible
   sequences and at least one process always survives. *)
let instantiate spec ~seed ~n ~horizon =
  if rates_are_zero spec.rates then spec.base
  else begin
    let r = spec.rates in
    let rng = Stats.Rng.create ~seed in
    let crashed = Array.make n false in
    let crashed_count = ref 0 in
    let events = ref [] in
    for time = 0 to horizon - 1 do
      for p = 0 to n - 1 do
        if crashed.(p) then begin
          if r.recover > 0. && Stats.Rng.float rng 1.0 < r.recover then begin
            crashed.(p) <- false;
            decr crashed_count;
            events := (time, Restart p) :: !events
          end
        end
        else begin
          if
            r.crash > 0.
            && !crashed_count < n - 1
            && Stats.Rng.float rng 1.0 < r.crash
          then begin
            crashed.(p) <- true;
            incr crashed_count;
            events := (time, Crash p) :: !events
          end
          else if r.stall > 0. && Stats.Rng.float rng 1.0 < r.stall then
            events := (time, Stall (p, r.stall_len)) :: !events
        end
      done
    done;
    let spurious =
      if r.casfail > 0. then [ (None, r.casfail) ] else []
    in
    merge spec.base { events = sort_events (List.rev !events); spurious }
  end
