(** Fault schedules — the chaos layer's generalization of
    {!Crash_plan}.

    Definition 1 of the paper only shrinks the possibly-active set
    (permanent crashes).  A fault plan adds three deliberate
    extensions, documented in DESIGN.md ("Fault model"):

    - {b crash–recovery}: a [Restart] event revives a crashed process
      with a fresh program body while the shared memory keeps whatever
      (possibly torn) state the crash left behind;
    - {b stalls}: a [Stall (p, d)] event at time [t] makes [p]
      unschedulable during [[t, t+d)] without crashing it;
    - {b spurious CAS failure}: per-process rates at which a CAS (or
      augmented CAS) that would succeed is denied, LL/SC-style, drawn
      deterministically from the executor's seed.

    A plan containing only [Crash] events is semantically identical to
    the equivalent {!Crash_plan} — the executor guarantees the two
    paths produce byte-identical runs. *)

type event =
  | Crash of int  (** Process stops taking steps at the event time. *)
  | Restart of int
      (** A crashed process resumes with a fresh program body at the
          event time (no-op if the target is not currently crashed or
          its body already terminated). *)
  | Stall of int * int
      (** [Stall (p, d)] at time [t]: [p] is unschedulable during
          [[t, t+d)].  Windows overlap by taking the later end. *)

type t
(** A time-sorted event list plus per-process spurious-CAS rates. *)

type rates = {
  crash : float;  (** Per-process per-step crash probability. *)
  recover : float;  (** Per-crashed-process per-step restart probability. *)
  stall : float;  (** Per-process per-step stall probability. *)
  stall_len : int;  (** Duration of each generated stall window. *)
  casfail : float;  (** Spurious failure rate applied to every process. *)
}
(** Rate-based fault description, expanded into concrete events by
    {!instantiate}. *)

val zero_rates : rates

val quick_rates : rates
(** Fault-free (all zero). *)

val standard_rates : rates
(** Mild always-on drill: 0.2% crash and stall (3-step windows), 5%
    recovery, 2% spurious CAS. *)

val century_rates : rates
(** Rare-event tier: 1e-4 crash and stall rates, 5e-4 spurious CAS —
    faults as exceptional excursions within long runs. *)

val chaos_rates : rates
(** Heavy mixed drill: 1% crash and stall (5-step windows), 5%
    recovery, 10% spurious CAS ({!val:Check.Chaos.default_spec}'s
    historical values). *)

val tier_rates : string -> rates option
(** Look up a named tier ([quick]/[standard]/[century]/[chaos]). *)

type spec = { base : t; rates : rates }
(** What [--faults] parses to: explicit events plus rates. *)

val none : t
val is_none : t -> bool

val make : ?spurious:(int option * float) list -> (int * event) list -> t
(** [(time, event)] list in any order; [spurious] entries are
    [(Some proc | None (= every process), rate)]. *)

val of_crash_events : (int * int) list -> t
val of_crash_plan : Crash_plan.t -> t

val merge : t -> t -> t
(** Union of events (stable by time) and spurious entries; overlapping
    spurious rates resolve to the maximum. *)

val events : t -> (int * event) array
(** Events sorted by time (stable); a fresh copy. *)

val events_list : t -> (int * event) list
val spurious : t -> (int option * float) list

val has_spurious : t -> bool

val spurious_rates : n:int -> t -> float array
(** Effective per-process rate (maximum over matching entries). *)

val restart_count : t -> int
val stall_total : t -> int
(** Budget hints: number of restart events and summed stall durations
    (idle time the executor may burn waiting out an all-stalled
    window). *)

val survivors : n:int -> t -> int
(** Processes left un-crashed once every restart is accounted for
    (out-of-range event targets are ignored).  [0] means the plan is a
    total outage — {!validate} rejects it, but the load engine's
    outage drill detects and degrades it instead. *)

val validate : n:int -> t -> (unit, string) result
(** Process ids in range, times and stall durations non-negative,
    rates in [0,1), and at least one process left un-crashed once every
    restart is accounted for. *)

val to_string : t -> string
(** Round-trips through {!parse_spec} (explicit events and per-process
    casfail entries; a plan built by {!instantiate} serializes to its
    expansion, not the original rates). *)

val spec_to_string : spec -> string

val parse_spec : string -> (spec, string) result
(** Grammar (comma-separated tokens; [""] and ["none"] are empty):
    [crash@T:P], [restart@T:P], [stall@T:P+D], [casfail:P=R] (P may be
    [*]), and rate entries [crash~R], [recover~R], [stall~R:D],
    [casfail~R].  Errors are one-line messages naming the bad token. *)

val spec_is_none : spec -> bool

val instantiate : spec -> seed:int -> n:int -> horizon:int -> t
(** Expand the rate part over times [0..horizon-1] deterministically
    by [seed] (the walk tracks crashed processes so recover rates act
    on crashed ones and at least one process always survives) and
    merge it with the explicit base plan.  All-zero rates return
    [spec.base] unchanged without consuming any randomness. *)
