(** Schedulers, after Definition 1 of the paper.

    A scheduler for [n] processes is a triple (Π_τ, A_τ, θ): at each
    time step τ it draws the process to schedule from a distribution
    Π_τ over the possibly-active set A_τ, and it is *stochastic* when
    every possibly-active process has probability at least θ > 0
    (weak fairness).  Here:

    - the executor owns A_τ (the [alive] array passed to [pick]),
      enforcing the crash and crash-containment conditions;
    - a scheduler is a named [pick] function, possibly stateful
      (round-robin, adversaries) and possibly randomized via the
      supplied RNG;
    - [theta] is the scheduler's declared weak-fairness threshold
      (0 for pure adversaries).  [Validity] checks the declaration
      empirically.

    An adversarial scheduler is encoded exactly as the paper suggests:
    probability 1 on the adversary's choice.  [with_weak_fairness]
    mixes any adversary with the uniform distribution to obtain a
    stochastic scheduler with a given θ, which is how the Theorem 3
    experiments sweep θ. *)

type t = {
  name : string;
  theta : float;  (** Declared weak-fairness threshold. *)
  stateful : bool;
      (** True when [pick] mutates internal state other than the
          supplied RNG (round-robin position, quantum remainder…), so
          that out-of-band sampling of the same instance would perturb
          a run using it.  [pick_distribution] refuses stateful
          schedulers. *)
  pick : rng:Stats.Rng.t -> alive:bool array -> time:int -> int;
      (** Chooses an index with [alive.(i) = true].  Behaviour is
          unspecified if no process is alive. *)
  fill :
    (rng:Stats.Rng.t -> alive:bool array -> dst:int array -> len:int -> unit)
    option;
      (** Batched picks, when the scheduler supports them: write [len]
          picks into [dst], consuming the RNG bit-for-bit as [len]
          successive [pick] calls would over an {e unchanged} alive
          set and with [time] irrelevant to the choice.  The compiled
          executor uses this to amortize per-step draw dispatch; it
          only calls [fill] over step windows in which the alive set
          provably cannot change.  [None] (every stateful or
          time-indexed scheduler) falls back to per-step [pick]. *)
}

val uniform : t
(** The uniform stochastic scheduler: γ_i = 1/|A_τ| (θ = 1/n when all
    n processes are alive).  This is the scheduler under which all the
    paper's quantitative results hold. *)

val round_robin : unit -> t
(** Deterministic cyclic scheduler (skips dead processes).  Fresh
    internal state per call. *)

val weighted : float array -> t
(** Static weights, renormalized over the alive set.  Weights must be
    non-negative; a process with zero weight is only scheduled if all
    alive processes have zero weight (then uniform). *)

val zipf : n:int -> alpha:float -> t
(** Zipf-skewed weights w_i = 1/(i+1)^alpha — the `abl-sched` ablation:
    alpha = 0 recovers uniform, larger alpha concentrates steps on low
    process ids, breaking the uniform-scheduler assumption. *)

val lottery : int array -> t
(** Ticket-based lottery scheduling (Petrou et al., cited in §A.1 as a
    deployed randomized scheduler); equivalent to [weighted] with
    integer tickets. *)

val starver : victim:int -> t
(** Classic worst-case adversary against [victim]: never schedules it
    while any other process is alive (θ = 0). *)

val quantum : length:int -> t
(** OS-like scheduler: picks a process uniformly, then runs it for
    [length] consecutive steps before re-drawing.  Uniform in the long
    run but locally bursty — used to probe robustness of the uniform
    model's predictions. *)

val replay : int array -> t
(** [replay order] schedules [order.(τ mod length)] at time τ — used
    to drive the simulator with a schedule *recorded on real hardware*
    ({!Runtime.Recorder}), closing the loop between the paper's
    Appendix A (what real schedules look like) and its model
    predictions.  Falls back to uniform if the recorded process is
    dead. *)

val with_weak_fairness : theta:float -> t -> t
(** [with_weak_fairness ~theta adv] schedules uniformly among the k
    alive processes with probability k·theta and defers to [adv]
    otherwise, making every alive process's probability at least
    [theta].  Requires 0 < theta and k·theta <= 1 at every step (the
    executor's n must satisfy n·theta <= 1). *)

val replay_to_string : int array -> string
(** Serialize a replay schedule as comma-separated process ids
    (["1,0,0,1"]) — the format `repro check` prints for a minimal
    failing schedule and accepts back via [replay_of_string], so any
    reported interleaving bug is replayable byte-for-byte. *)

val replay_of_string : string -> int array
(** Inverse of {!replay_to_string}.  Raises [Invalid_argument] on an
    empty schedule or anything that is not a comma-separated list of
    non-negative integers. *)

val pick_distribution :
  t -> rng:Stats.Rng.t -> alive:bool array -> time:int -> trials:int -> float array
(** Empirical estimate of Π_τ by repeated sampling (for tests and for
    the validity checker).  Raises [Invalid_argument] on a [stateful]
    scheduler: repeatedly sampling one would silently perturb the
    instance's internal state (and the sampled distribution would be a
    time average, not Π_τ).  Use {!time_average_distribution} for
    those. *)

val time_average_distribution :
  t -> rng:Stats.Rng.t -> alive:bool array -> trials:int -> float array
(** Empirical *time-averaged* distribution of a scheduler over a fixed
    alive set: the fraction of [trials] consecutive picks (at time 0)
    that went to each process.  This is the meaningful notion for
    stateful schedulers — for [round_robin] it is exactly uniform over
    the alive set because the trial count is rounded up to a multiple
    of the alive count.  Advances the scheduler's state; pass a fresh
    instance if the instance is also used elsewhere. *)
