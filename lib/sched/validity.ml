type verdict = {
  well_formed : bool;
  weak_fair : bool;
  no_dead_scheduled : bool;
  min_alive_probability : float;
}

let check (sched : Scheduler.t) ~rng ~alive ?(time = 0) ?(trials = 100_000) () =
  let n = Array.length alive in
  let k = Array.fold_left (fun acc a -> if a then acc + 1 else acc) 0 alive in
  (* For stateful schedulers the sampled quantity is the *time-averaged*
     distribution (each pick advances the scheduler); round the trial
     count up to a multiple of the alive count so deterministic cyclic
     schedulers (round-robin) yield an exact, cut-point-independent
     verdict instead of one that depends on trials mod k. *)
  let trials =
    if sched.stateful && k > 0 then trials + ((k - (trials mod k)) mod k)
    else trials
  in
  let counts = Array.make n 0 in
  let dead_hit = ref false in
  for _ = 1 to trials do
    let i = sched.pick ~rng ~alive ~time in
    if i < 0 || i >= n || not alive.(i) then dead_hit := true
    else counts.(i) <- counts.(i) + 1
  done;
  let min_alive_probability = ref infinity in
  Array.iteri
    (fun i c ->
      if alive.(i) then
        min_alive_probability :=
          Float.min !min_alive_probability (float_of_int c /. float_of_int trials))
    counts;
  let declared =
    if Float.is_nan sched.theta then 1. /. float_of_int k else sched.theta
  in
  (* 3-sigma slack on a Bernoulli(declared) estimate. *)
  let slack = 3. *. sqrt (declared *. (1. -. declared) /. float_of_int trials) in
  {
    well_formed = not !dead_hit;
    weak_fair = declared <= 0. || !min_alive_probability >= declared -. slack;
    no_dead_scheduled = not !dead_hit;
    min_alive_probability = !min_alive_probability;
  }
