(* End-to-end recovery tests against the built repro executable: fault
   injection recovered inside a run (exit 0, stdout byte-identical to
   an undisturbed run), permanent give-ups surfacing as exit 1 without
   hanging the sweep, and --resume completing a manifest truncated
   mid-sweep with byte-identical stdout.

   Each case gets its own scratch working directory because repro
   writes results/ relative to the cwd.  The test binary itself runs
   from _build/default/test, so the driver under test is
   ../bin/repro.exe (declared as a dune dep). *)

module Json = Telemetry.Json

let repro =
  Filename.concat (Filename.dirname (Sys.getcwd ())) "bin/repro.exe"

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_scratch_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "repro-cli-test-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir) (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Run [repro <args>] with [dir] as cwd; returns (exit code, stdout,
   stderr).  [env] prefixes shell variable assignments. *)
let run ?(env = []) dir args =
  let env_s =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf "%s=%s " k (Filename.quote v)) env)
  in
  let code =
    Sys.command
      (Printf.sprintf "cd %s && %s%s %s >stdout.txt 2>stderr.txt"
         (Filename.quote dir) env_s (Filename.quote repro) args)
  in
  ( code,
    read_file (Filename.concat dir "stdout.txt"),
    read_file (Filename.concat dir "stderr.txt") )

let manifest_path dir =
  let runs = Filename.concat (Filename.concat dir "results") "runs" in
  match Sys.readdir runs with
  | [| f |] -> Filename.concat runs f
  | files ->
      Alcotest.fail
        (Printf.sprintf "expected exactly one manifest under %s, found %d" runs
           (Array.length files))

let parse_manifest path =
  match Json.parse (read_file path) with
  | Ok v -> v
  | Error msg -> Alcotest.fail (path ^ ": " ^ msg)

let manifest_cells json =
  Option.bind (Json.member "cells" json) Json.to_list |> Option.get

let cell_field f cell = Option.bind (Json.member f cell) Json.to_str
let cell_attempts cell =
  Option.bind (Json.member "attempts" cell) Json.to_int |> Option.get

(* The reference stdout of an undisturbed quick fig1 run, computed
   once: both the fault-recovery and the REPRO_FAULT cases must
   reproduce it byte for byte. *)
let golden_fig1 =
  lazy
    (with_scratch_dir (fun dir ->
         let code, out, err = run dir "run fig1 --quick --no-progress" in
         if code <> 0 then Alcotest.fail ("golden run failed: " ^ err);
         out))

let test_fault_recovery () =
  with_scratch_dir (fun dir ->
      let code, out, err =
        run dir
          "run fig1 --quick --no-progress --fault lifting-n2:1 --no-backoff"
      in
      Alcotest.(check int) ("faulted run exits 0; stderr: " ^ err) 0 code;
      Alcotest.(check string)
        "stdout byte-identical to the undisturbed run"
        (Lazy.force golden_fig1) out;
      let cells = manifest_cells (parse_manifest (manifest_path dir)) in
      let retried =
        List.filter (fun c -> cell_attempts c = 2) cells
      in
      Alcotest.(check int) "exactly one cell needed a retry" 1
        (List.length retried);
      Alcotest.(check (option string))
        "the faulted cell is the retried one" (Some "lifting-n2")
        (cell_field "label" (List.hd retried));
      Alcotest.(check bool) "every cell ended ok" true
        (List.for_all (fun c -> cell_field "status" c = Some "ok") cells))

let test_env_fault () =
  (* REPRO_FAULT is the flag-less channel CI uses. *)
  with_scratch_dir (fun dir ->
      let code, out, _ =
        run dir
          ~env:[ ("REPRO_FAULT", "lifting-n2:1") ]
          "run fig1 --quick --no-progress --no-backoff"
      in
      Alcotest.(check int) "exit 0" 0 code;
      Alcotest.(check string)
        "stdout byte-identical under REPRO_FAULT"
        (Lazy.force golden_fig1) out;
      let cells = manifest_cells (parse_manifest (manifest_path dir)) in
      Alcotest.(check bool) "env fault actually fired" true
        (List.exists (fun c -> cell_attempts c = 2) cells))

let test_permanent_failure () =
  (* A cell that out-faults its retry budget: the run must not hang,
     must finish the other experiment, record the failure in the
     manifest, and exit 1. *)
  with_scratch_dir (fun dir ->
      let code, out, err =
        run dir
          "run fig1 lem11 --quick --no-progress --fault lifting-n2:9 \
           --retries 2 --no-backoff"
      in
      Alcotest.(check int) "gave-up run exits 1" 1 code;
      let contains hay needle =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "the healthy experiment still printed" true
        (contains out "lem11");
      Alcotest.(check bool) "stderr names the give-up" true
        (contains err "gave up");
      let cells = manifest_cells (parse_manifest (manifest_path dir)) in
      let failed =
        List.filter (fun c -> cell_field "status" c = Some "failed") cells
      in
      Alcotest.(check int) "one failed cell recorded" 1 (List.length failed);
      Alcotest.(check (option string))
        "it is the faulted cell" (Some "lifting-n2")
        (cell_field "label" (List.hd failed));
      Alcotest.(check int) "it burned its full retry budget" 2
        (cell_attempts (List.hd failed)))

let test_resume_truncated_manifest () =
  (* Simulate a sweep killed mid-run: complete fig1+lem11 with the
     cache on, then hand --resume a manifest stripped back to the
     fig1 cells (as if the process died before lem11) with lem11's
     cache gone.  The resumed run must re-execute exactly the missing
     part and reproduce the full stdout byte for byte. *)
  with_scratch_dir (fun dir ->
      let code, full_out, err =
        run dir "run fig1 lem11 --quick --cache -j1 --no-progress"
      in
      Alcotest.(check int) ("full run exits 0; stderr: " ^ err) 0 code;
      let manifest = manifest_path dir in
      let truncated =
        match parse_manifest manifest with
        | Json.Obj fields ->
            Json.Obj
              (List.map
                 (function
                   | "cells", Json.List cells ->
                       ( "cells",
                         Json.List
                           (List.filter
                              (fun c -> cell_field "exp" c = Some "fig1")
                              cells) )
                   | "experiments", Json.List exps ->
                       ( "experiments",
                         Json.List
                           (List.filter
                              (fun e -> cell_field "id" e = Some "fig1")
                              exps) )
                   | field -> field)
                 fields)
        | _ -> Alcotest.fail "manifest is not an object"
      in
      let truncated_path = Filename.concat dir "truncated.json" in
      Telemetry.Fsutil.write_atomic truncated_path (Json.to_string truncated);
      (* Kill the state the dead part would have left behind. *)
      rm_rf (List.fold_left Filename.concat dir [ "results"; "cache"; "lem11" ]);
      rm_rf (List.fold_left Filename.concat dir [ "results"; "runs" ]);
      let code, resumed_out, err =
        run dir "run --resume truncated.json -j1 --no-progress"
      in
      Alcotest.(check int) ("resume exits 0; stderr: " ^ err) 0 code;
      Alcotest.(check string)
        "resumed stdout byte-identical to the uninterrupted run" full_out
        resumed_out;
      (* The completed fig1 cell was served from the cache, not rerun. *)
      let cells = manifest_cells (parse_manifest (manifest_path dir)) in
      let fig1_cells =
        List.filter (fun c -> cell_field "exp" c = Some "fig1") cells
      in
      Alcotest.(check bool) "completed cells served as cache hits" true
        (fig1_cells <> []
        && List.for_all (fun c -> cell_field "cache" c = Some "hit") fig1_cells))

let test_out_under_file_fails_fast () =
  (* --out beneath a path component that is a plain file: the CLI must
     refuse before running any experiment, not fail on the first CSV
     write after minutes of work. *)
  with_scratch_dir (fun dir ->
      let file = Filename.concat dir "occupied" in
      let oc = open_out file in
      output_string oc "plain file";
      close_out oc;
      let code, out, _ =
        run dir "run fig1 --quick --no-progress --out occupied/csv"
      in
      Alcotest.(check bool) "nonzero exit" true (code <> 0);
      Alcotest.(check string) "no experiment ran (empty stdout)" "" out)

let test_bad_fault_spec_rejected () =
  with_scratch_dir (fun dir ->
      let code, out, _ =
        run dir "run fig1 --quick --no-progress --fault nonsense"
      in
      Alcotest.(check bool) "nonzero exit" true (code <> 0);
      Alcotest.(check string) "no experiment ran" "" out)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* -- repro chaos ----------------------------------------------------- *)

let test_chaos_deterministic_stdout () =
  (* Two identical chaos invocations must produce byte-identical
     stdout (reports and tables are deterministic; timings go to
     stderr).  --no-sweep keeps the test fast; the fuzz phase is the
     randomized part anyway. *)
  with_scratch_dir (fun dir ->
      let code1, out1, err1 =
        run dir "chaos --quick --seed 5 --no-sweep --no-manifest"
      in
      let code2, out2, _ =
        run dir "chaos --quick --seed 5 --no-sweep --no-manifest"
      in
      Alcotest.(check int) ("first run exits 0; stderr: " ^ err1) 0 code1;
      Alcotest.(check int) "second run exits 0" 0 code2;
      Alcotest.(check string) "stdout byte-identical" out1 out2)

let test_chaos_violation_drill () =
  (* Seeded-bug structures under chaos: violations found, artifacts
     written and replayable, exit status inverted by --expect-bug. *)
  with_scratch_dir (fun dir ->
      let code, out, err =
        run dir
          "chaos --quick --structures counter-nocas --expect-bug --no-sweep \
           --no-manifest --out artifacts"
      in
      Alcotest.(check int) ("drill exits 0 under --expect-bug; stderr: " ^ err)
        0 code;
      Alcotest.(check bool) "violations reported" true (contains out "VIOLATION");
      let artifacts = Sys.readdir (Filename.concat dir "artifacts") in
      Alcotest.(check bool) "artifact files written" true
        (Array.length artifacts > 0);
      let body =
        read_file
          (Filename.concat (Filename.concat dir "artifacts") artifacts.(0))
      in
      Alcotest.(check bool) "artifact records the fault plan" true
        (contains body "faults:");
      (* Without --expect-bug the same run must exit 1. *)
      let code, _, _ =
        run dir
          "chaos --quick --structures counter-nocas --no-sweep --no-manifest"
      in
      Alcotest.(check int) "violations exit 1" 1 code)

let test_chaos_manifest_records_faults () =
  with_scratch_dir (fun dir ->
      let code, _, err =
        run dir "chaos --quick --no-sweep --faults crash@5:0,casfail:*=0.2"
      in
      Alcotest.(check int) ("exits 0; stderr: " ^ err) 0 code;
      let body = read_file (manifest_path dir) in
      Alcotest.(check bool) "manifest has the faults key" true
        (contains body "\"faults\": \"crash@5:0,casfail:*=0.2\""))

let test_chaos_validation_errors () =
  with_scratch_dir (fun dir ->
      (* Out-of-range process id: one-line error, not a raw exception. *)
      let code, out, err = run dir "chaos -n 3 --faults crash@0:7 --no-sweep" in
      Alcotest.(check bool) "bad proc id: nonzero exit" true (code <> 0);
      Alcotest.(check string) "bad proc id: nothing ran" "" out;
      Alcotest.(check bool) "bad proc id: one-line error" true
        (contains err "out of range" && not (contains err "Raised at"));
      (* Crashing every process permanently is rejected up front. *)
      let code, _, err =
        run dir "chaos -n 2 --faults crash@0:0,crash@0:1 --no-sweep"
      in
      Alcotest.(check bool) "all-crash: nonzero exit" true (code <> 0);
      Alcotest.(check bool) "all-crash: named" true
        (contains err "all processes would crash");
      (* Unknown token names itself. *)
      let code, _, err = run dir "chaos --faults wibble --no-sweep" in
      Alcotest.(check bool) "bad token: nonzero exit" true (code <> 0);
      Alcotest.(check bool) "bad token: named" true (contains err "wibble"))

let test_check_crash_validation () =
  with_scratch_dir (fun dir ->
      let code, out, err =
        run dir
          "check --structures cas-counter -n 3 --ops 2 --replay 0,1,2 --crash \
           0:9"
      in
      Alcotest.(check bool) "out-of-range crash: nonzero exit" true (code <> 0);
      Alcotest.(check string) "nothing ran" "" out;
      Alcotest.(check bool) "one-line error" true
        (contains err "out of range" && not (contains err "Raised at"));
      let code, _, err =
        run dir
          "check --structures cas-counter -n 2 --ops 2 --replay 0,1 --crash \
           0:0,0:1"
      in
      Alcotest.(check bool) "all-crash: nonzero exit" true (code <> 0);
      Alcotest.(check bool) "all-crash named" true
        (contains err "all processes would crash"))

let test_load_bad_ns_rejected () =
  (* Regression: a typo in --ns used to be parsed to the empty list,
     silently ignored without --slo and reported as "--ns needs at
     least two worker counts" with it.  It must name the bad token and
     exit with a usage error in both cases. *)
  with_scratch_dir (fun dir ->
      let check_rejected label args =
        let code, out, err = run dir args in
        Alcotest.(check bool) (label ^ ": nonzero exit") true (code <> 0);
        Alcotest.(check string) (label ^ ": nothing ran") "" out;
        Alcotest.(check bool)
          (label ^ ": names the bad token (stderr: " ^ err ^ ")")
          true
          (contains err "\"x\" is not an integer worker count"
          && not (contains err "Raised at"))
      in
      check_rejected "without --slo" "load --clients 2 --ops 1 --ns 2,4,x";
      check_rejected "with --slo"
        "load --clients 2 --ops 1 --slo --slo-requests 1 --ns 2,4,x")

let test_check_bad_crash_spec_rejected () =
  (* Regression: the T:P parser's catch-all turned every malformed
     --crash into the same message.  It must name the bad component. *)
  with_scratch_dir (fun dir ->
      let code, out, err =
        run dir
          "check --structures cas-counter -n 2 --ops 2 --replay 0,1 --crash \
           5:1,bogus"
      in
      Alcotest.(check bool) "nonzero exit" true (code <> 0);
      Alcotest.(check string) "nothing ran" "" out;
      Alcotest.(check bool)
        ("names the bad component (stderr: " ^ err ^ ")")
        true
        (contains err "component \"bogus\" is not T:P"
        && not (contains err "Raised at"));
      (* A spec with the right shape but a non-integer field. *)
      let code, _, err =
        run dir
          "check --structures cas-counter -n 2 --ops 2 --replay 0,1 --crash 5:p"
      in
      Alcotest.(check bool) "5:p rejected" true (code <> 0);
      Alcotest.(check bool) "5:p named" true
        (contains err "component \"5:p\" is not T:P"))

(* -- Legacy stdout pinned against golden files ------------------------ *)

(* `repro check` and `repro chaos` now route through Scenario.t; the
   goldens under test/golden/ were captured from the pre-scenario
   binary, so these diffs are the proof that the legacy flags really
   are thin translations.  Wall-clock substrings ("(0.03s)", "in
   1.2s") are normalized to "(Ts)"/"Ts"; chaos stdout is time-free. *)

let normalize_times s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let is_digit c = c >= '0' && c <= '9' in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j < n && is_digit s.[!j] do
      incr j
    done;
    if
      !j > !i && !j + 1 < n
      && s.[!j] = '.'
      && is_digit s.[!j + 1]
    then begin
      let k = ref (!j + 1) in
      while !k < n && is_digit s.[!k] do
        incr k
      done;
      if !k < n && s.[!k] = 's' then begin
        Buffer.add_string buf "Ts";
        i := !k + 1
      end
      else begin
        Buffer.add_substring buf s !i (!k - !i);
        i := !k
      end
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let golden name = normalize_times (read_file (Filename.concat "golden" name))

let golden_case name args expected_code =
  Alcotest.test_case name `Quick (fun () ->
      with_scratch_dir (fun dir ->
          let code, out, err = run dir args in
          Alcotest.(check int) (name ^ " exit code; stderr: " ^ err)
            expected_code code;
          Alcotest.(check string)
            (name ^ " stdout byte-identical (mod timings)")
            (golden (name ^ ".txt"))
            (normalize_times out)))

let golden_cases =
  [
    golden_case "check-explore-fuzz" "check --mode explore,fuzz --seed 0" 0;
    golden_case "check-conform" "check --mode conform --seed 0" 0;
    golden_case "check-drill-nocas"
      "check --mode explore --structures counter-nocas,treiber-nocas -n 2 \
       --ops 2 --expect-bug"
      0;
    golden_case "check-drill-msq"
      "check --mode explore --structures msqueue-nocas -n 4 --ops 1 \
       --expect-bug"
      0;
    golden_case "chaos-quick-seed0" "chaos --quick --no-manifest" 0;
    golden_case "chaos-quick-seed42" "chaos --quick --seed 42 --no-manifest" 0;
    golden_case "chaos-drill"
      "chaos --quick --structures counter-nocas --no-sweep --no-manifest \
       --seed 0"
      1;
    (* Captured from the build predating the fault layer: a run without
       --faults/--deadline/... must take the historical byte-identical
       path, so any drift here means the robust dispatch path leaked
       into fault-free runs. *)
    golden_case "load-seed0"
      "load --structures all --clients 20000 --seed 0 --no-progress" 0;
    golden_case "serve-seed0"
      "serve --structures counter --clients 5000 --windows 3 --seed 0 \
       --no-progress"
      0;
  ]

(* -- repro load: faults and policies ---------------------------------- *)

let faulted_load_args =
  "load --structures counter --clients 4000 --workers 4 --shards 4 --objects \
   8 --seed 0 --no-progress --faults standard --deadline 400 --retries 2"

let test_load_faulted_deterministic () =
  (* Same seed, same faults, same bytes: across repeats and across -j,
     for both stdout and the manifest. *)
  with_scratch_dir (fun dir ->
      let go extra out =
        run dir (Printf.sprintf "%s %s --out %s" faulted_load_args extra out)
      in
      let code1, out1, err1 = go "-j1" "m1.json" in
      let code2, out2, _ = go "-j1" "m2.json" in
      let code4, out4, _ = go "-j4" "m4.json" in
      Alcotest.(check int) ("first run exits 0; stderr: " ^ err1) 0 code1;
      Alcotest.(check int) "repeat exits 0" 0 code2;
      Alcotest.(check int) "-j4 exits 0" 0 code4;
      Alcotest.(check string) "stdout identical across repeats" out1 out2;
      Alcotest.(check string) "stdout identical across -j" out1 out4;
      let m s = read_file (Filename.concat dir s) in
      Alcotest.(check string) "manifest identical across repeats" (m "m1.json")
        (m "m2.json");
      Alcotest.(check string) "manifest identical across -j" (m "m1.json")
        (m "m4.json");
      Alcotest.(check bool) "manifest carries the fault schema" true
        (contains (m "m1.json") "repro-load-manifest/2");
      Alcotest.(check bool) "stdout reports the outcome taxonomy" true
        (contains out1 "outcomes: ok=");
      Alcotest.(check bool) "stdout reports the error budget" true
        (contains out1 "error-budget: availability="))

let test_load_outage_drill () =
  (* Permanently crash both workers of both shards: the service must
     degrade (all requests dropped), name the stopped shards on stderr,
     exit 1 and still write the manifest artifact. *)
  with_scratch_dir (fun dir ->
      let code, out, err =
        run dir
          "load --structures counter --clients 200 --workers 2 --shards 2 \
           --seed 0 --no-progress --faults crash@0:0,crash@0:1 --out \
           outage.json"
      in
      Alcotest.(check int) "outage exits 1" 1 code;
      Alcotest.(check bool) ("stderr names the shards: " ^ err) true
        (contains err "shards 0,1 stopped early");
      Alcotest.(check bool) "stdout reports the drops" true
        (contains out "dropped=200");
      let manifest = read_file (Filename.concat dir "outage.json") in
      Alcotest.(check bool) "manifest still written" true
        (contains manifest "\"stopped_early\": true"))

let test_load_policy_flags_validated () =
  with_scratch_dir (fun dir ->
      let rejected label args needle =
        let code, out, err = run dir args in
        Alcotest.(check bool) (label ^ ": nonzero exit") true (code <> 0);
        Alcotest.(check string) (label ^ ": nothing ran") "" out;
        Alcotest.(check bool)
          (label ^ ": names the defect (stderr: " ^ err ^ ")")
          true
          (contains err needle && not (contains err "Raised at"))
      in
      rejected "retries without deadline"
        "load --clients 10 --retries 2 --no-progress" "retries need a deadline";
      rejected "bad fault token"
        "load --clients 10 --faults wibble --no-progress" "wibble";
      rejected "--expect-degraded without a tier"
        "load --clients 10 --expect-degraded --faults crash@5:0 --no-progress"
        "named tier")

let test_serve_error_budget () =
  (* A faulted soak must report one error-budget line per window, the
     final soak verdict, and stream deterministic JSONL manifests. *)
  with_scratch_dir (fun dir ->
      let args out =
        Printf.sprintf
          "serve --structures counter --clients 2000 --workers 4 --shards 2 \
           --objects 8 --windows 2 --seed 0 --no-progress --faults standard \
           --deadline 400 --retries 2 --out %s"
          out
      in
      let code1, out1, err1 = run dir (args "s1.jsonl") in
      let code2, out2, _ = run dir (args "s2.jsonl") in
      Alcotest.(check int) ("first soak exits 0; stderr: " ^ err1) 0 code1;
      Alcotest.(check int) "second soak exits 0" 0 code2;
      Alcotest.(check string) "stdout identical across repeats" out1 out2;
      Alcotest.(check string) "JSONL stream identical across repeats"
        (read_file (Filename.concat dir "s1.jsonl"))
        (read_file (Filename.concat dir "s2.jsonl"));
      Alcotest.(check bool) "per-window error budget rendered" true
        (contains out1 "error-budget: availability=");
      Alcotest.(check bool) "soak verdict printed" true
        (contains out1 "serve: 2 window(s): ok="))

(* -- repro scenario --------------------------------------------------- *)

let test_scenario_list () =
  with_scratch_dir (fun dir ->
      let code, out, err = run dir "scenario --list" in
      Alcotest.(check int) ("exits 0; stderr: " ^ err) 0 code;
      List.iter
        (fun preset ->
          Alcotest.(check bool) (preset ^ " listed") true (contains out preset))
        [ "quick"; "standard"; "century"; "chaos" ])

let test_scenario_print_roundtrip () =
  (* --print emits the canonical spec; feeding it back through --spec
     must print the same spec — the CLI-level roundtrip. *)
  with_scratch_dir (fun dir ->
      let code, spec, err = run dir "scenario --preset quick --print" in
      Alcotest.(check int) ("print exits 0; stderr: " ^ err) 0 code;
      let code, spec', _ =
        run dir (Printf.sprintf "scenario --spec '%s' --print" (String.trim spec))
      in
      Alcotest.(check int) "re-print exits 0" 0 code;
      Alcotest.(check string) "canonical spec is a fixed point" spec spec')

let test_scenario_preset_run () =
  with_scratch_dir (fun dir ->
      let code, out, err =
        run dir "scenario --preset quick --structures cas-counter"
      in
      Alcotest.(check int) ("clean run exits 0; stderr: " ^ err) 0 code;
      Alcotest.(check bool) "prints the resolved spec" true
        (contains out "scenario: structures=cas-counter");
      Alcotest.(check bool) "explore progress line" true
        (contains out "[explore]");
      Alcotest.(check bool) "no violations" true
        (contains out "0 violation(s)"))

let test_scenario_shadow_drill () =
  (* The misreport mutant under a shadow-only gate: violations found,
     the verdict names the shadow divergence, --expect-bug inverts the
     exit status, and --out writes artifacts embedding the spec and a
     replay spec. *)
  with_scratch_dir (fun dir ->
      let code, out, err =
        run dir
          "scenario --spec \
           'structures=counter-misreport;n=2;ops=2;sources=explore;gates=shadow;budget=explore:1500x32,fuzz:30x2,chaos:8,conform:smoke' \
           --expect-bug --out artifacts"
      in
      Alcotest.(check int)
        ("drill exits 0 under --expect-bug; stderr: " ^ err)
        0 code;
      Alcotest.(check bool) "violations reported" true
        (contains out "VIOLATION [counter-misreport/explore]");
      Alcotest.(check bool) "verdict names the shadow divergence" true
        (contains out "shadow-state divergence");
      Alcotest.(check bool) "replay command printed" true
        (contains out "replay: repro scenario --spec");
      let artifacts = Sys.readdir (Filename.concat dir "artifacts") in
      Alcotest.(check bool) "artifacts written" true (Array.length artifacts > 0);
      let body =
        read_file
          (Filename.concat (Filename.concat dir "artifacts") artifacts.(0))
      in
      Alcotest.(check bool) "artifact embeds the scenario spec" true
        (contains body "spec: structures=counter-misreport");
      Alcotest.(check bool) "artifact embeds a replay spec" true
        (contains body "replay-spec: ");
      (* Without --expect-bug the same drill must exit 1. *)
      let code, _, _ =
        run dir
          "scenario --spec \
           'structures=counter-misreport;n=2;ops=2;sources=explore;gates=shadow;budget=explore:1500x32,fuzz:30x2,chaos:8,conform:smoke'"
      in
      Alcotest.(check int) "violations exit 1" 1 code)

let test_scenario_bad_spec_rejected () =
  with_scratch_dir (fun dir ->
      let code, out, err = run dir "scenario --spec 'n=two'" in
      Alcotest.(check bool) "nonzero exit" true (code <> 0);
      Alcotest.(check string) "nothing ran" "" out;
      Alcotest.(check bool)
        ("names the bad token (stderr: " ^ err ^ ")")
        true
        (contains err "bad --spec token" && not (contains err "Raised at"));
      let code, _, err = run dir "scenario --preset quick --spec 'n=2'" in
      Alcotest.(check bool) "--preset+--spec rejected" true (code <> 0);
      Alcotest.(check bool) "mutual exclusion named" true
        (contains err "mutually exclusive"))

let test_run_preflight_gate () =
  (* --preflight on the sweep drivers: a clean scenario lets the sweep
     run; a failing one aborts before any experiment. *)
  with_scratch_dir (fun dir ->
      let code, _, err =
        run dir
          "run fig1 --quick --no-progress --preflight \
           'structures=cas-counter;n=2;ops=2;sources=explore;gates=lin,shadow;budget=explore:500x16,fuzz:30x2,chaos:8,conform:smoke'"
      in
      Alcotest.(check int) ("clean preflight passes; stderr: " ^ err) 0 code;
      let code, out, err =
        run dir
          "run fig1 --quick --no-progress --preflight \
           'structures=counter-nocas;n=2;ops=2;sources=explore;gates=lin;budget=explore:1500x32,fuzz:30x2,chaos:8,conform:smoke'"
      in
      Alcotest.(check bool) "failing preflight aborts" true (code <> 0);
      Alcotest.(check bool) "abort names the preflight" true
        (contains err "preflight");
      Alcotest.(check string) "no experiment ran" "" out)

let () =
  Alcotest.run "cli"
    [
      ( "recovery",
        [
          Alcotest.test_case "fault recovered, stdout identical" `Quick
            test_fault_recovery;
          Alcotest.test_case "REPRO_FAULT env" `Quick test_env_fault;
          Alcotest.test_case "permanent give-up exits 1" `Quick
            test_permanent_failure;
        ] );
      ( "resume",
        [
          Alcotest.test_case "truncated manifest, stdout identical" `Quick
            test_resume_truncated_manifest;
        ] );
      ( "validation",
        [
          Alcotest.test_case "--out under a file fails fast" `Quick
            test_out_under_file_fails_fast;
          Alcotest.test_case "bad fault spec rejected" `Quick
            test_bad_fault_spec_rejected;
          Alcotest.test_case "chaos --faults validated" `Quick
            test_chaos_validation_errors;
          Alcotest.test_case "check --crash validated" `Quick
            test_check_crash_validation;
          Alcotest.test_case "load --ns typo named" `Quick
            test_load_bad_ns_rejected;
          Alcotest.test_case "check --crash bad component named" `Quick
            test_check_bad_crash_spec_rejected;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "stdout deterministic" `Quick
            test_chaos_deterministic_stdout;
          Alcotest.test_case "violation drill + artifacts" `Quick
            test_chaos_violation_drill;
          Alcotest.test_case "manifest records faults" `Quick
            test_chaos_manifest_records_faults;
        ] );
      ("golden", golden_cases);
      ( "load-robust",
        [
          Alcotest.test_case "faulted run deterministic" `Quick
            test_load_faulted_deterministic;
          Alcotest.test_case "outage drill exits 1" `Quick
            test_load_outage_drill;
          Alcotest.test_case "policy flags validated" `Quick
            test_load_policy_flags_validated;
          Alcotest.test_case "serve error budget" `Quick
            test_serve_error_budget;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "--list names the presets" `Quick
            test_scenario_list;
          Alcotest.test_case "--print spec is a fixed point" `Quick
            test_scenario_print_roundtrip;
          Alcotest.test_case "--preset quick clean run" `Quick
            test_scenario_preset_run;
          Alcotest.test_case "shadow drill + artifacts" `Quick
            test_scenario_shadow_drill;
          Alcotest.test_case "bad --spec rejected" `Quick
            test_scenario_bad_spec_rejected;
          Alcotest.test_case "run --preflight gates the sweep" `Quick
            test_run_preflight_gate;
        ] );
    ]
