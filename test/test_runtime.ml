(* Tests for the real-multicore substrate.  Domain counts stay small:
   correctness must hold on any machine, including this container's
   single hardware thread (preemptive OS scheduling still interleaves
   domains arbitrarily). *)

open Core

let domains = 3

(* -- Counter ---------------------------------------------------------- *)

let test_counter_sequential () =
  let c = Runtime.Rt_counter.create () in
  let v0, s0 = Runtime.Rt_counter.incr_cas c in
  Alcotest.(check int) "first value" 0 v0;
  Alcotest.(check int) "uncontended steps" 2 s0;
  let v1, s1 = Runtime.Rt_counter.incr_faa c in
  Alcotest.(check int) "faa old value" 1 v1;
  Alcotest.(check int) "faa one step" 1 s1;
  Alcotest.(check int) "final" 2 (Runtime.Rt_counter.get c)

let test_counter_concurrent_permutation () =
  let c = Runtime.Rt_counter.create () in
  let per = 2_000 in
  let go = Atomic.make false in
  let worker () =
    while not (Atomic.get go) do
      Domain.cpu_relax ()
    done;
    Array.init per (fun _ -> fst (Runtime.Rt_counter.incr_cas c))
  in
  let handles = List.init domains (fun _ -> Domain.spawn worker) in
  Atomic.set go true;
  let results = List.map Domain.join handles in
  Alcotest.(check int) "final value" (domains * per) (Runtime.Rt_counter.get c);
  let all = Array.concat results in
  Array.sort compare all;
  Alcotest.(check bool) "values are a permutation" true
    (all = Array.init (domains * per) (fun i -> i));
  (* Each domain's own values are strictly increasing. *)
  List.iter
    (fun mine ->
      let ok = ref true in
      Array.iteri (fun i v -> if i > 0 && v <= mine.(i - 1) then ok := false) mine;
      Alcotest.(check bool) "per-domain monotone" true !ok)
    results

let test_counter_with_backoff () =
  let c = Runtime.Rt_counter.create () in
  let b = Runtime.Backoff.create ~min_spins:1 ~max_spins:8 () in
  for _ = 1 to 100 do
    ignore (Runtime.Rt_counter.incr_cas ~backoff:b c)
  done;
  Alcotest.(check int) "backoff does not change semantics" 100 (Runtime.Rt_counter.get c)

(* -- Treiber stack ----------------------------------------------------- *)

let test_stack_sequential () =
  let s = Runtime.Rt_treiber.create () in
  Alcotest.(check bool) "empty" true (Runtime.Rt_treiber.is_empty s);
  ignore (Runtime.Rt_treiber.push s 1);
  ignore (Runtime.Rt_treiber.push s 2);
  Alcotest.(check (option int)) "peek" (Some 2) (Runtime.Rt_treiber.peek s);
  Alcotest.(check (list int)) "to_list" [ 2; 1 ] (Runtime.Rt_treiber.to_list s);
  let v, _ = Runtime.Rt_treiber.pop s in
  Alcotest.(check (option int)) "LIFO pop" (Some 2) v;
  Alcotest.(check int) "length" 1 (Runtime.Rt_treiber.length s)

let test_stack_concurrent_conservation () =
  let s = Runtime.Rt_treiber.create () in
  let per = 1_000 in
  let go = Atomic.make false in
  let worker d () =
    while not (Atomic.get go) do
      Domain.cpu_relax ()
    done;
    let popped = ref [] in
    for k = 0 to per - 1 do
      ignore (Runtime.Rt_treiber.push s ((k * domains) + d));
      if k mod 2 = 1 then
        match Runtime.Rt_treiber.pop s with
        | Some v, _ -> popped := v :: !popped
        | None, _ -> ()
    done;
    !popped
  in
  let handles = List.init domains (fun d -> Domain.spawn (worker d)) in
  Atomic.set go true;
  let popped = List.concat_map Domain.join handles in
  let remaining = Runtime.Rt_treiber.to_list s in
  let seen = popped @ remaining in
  Alcotest.(check int) "conservation: pushed = popped + remaining"
    (domains * per) (List.length seen);
  let sorted = List.sort compare seen in
  let rec no_dup = function
    | a :: (b :: _ as rest) -> a <> b && no_dup rest
    | _ -> true
  in
  Alcotest.(check bool) "no element duplicated or lost" true (no_dup sorted)

(* -- MS queue ----------------------------------------------------------- *)

let test_queue_sequential () =
  let q = Runtime.Rt_msqueue.create () in
  Alcotest.(check bool) "empty" true (Runtime.Rt_msqueue.is_empty q);
  ignore (Runtime.Rt_msqueue.enqueue q 1);
  ignore (Runtime.Rt_msqueue.enqueue q 2);
  ignore (Runtime.Rt_msqueue.enqueue q 3);
  Alcotest.(check (list int)) "fifo contents" [ 1; 2; 3 ] (Runtime.Rt_msqueue.to_list q);
  let v1, _ = Runtime.Rt_msqueue.dequeue q in
  let v2, _ = Runtime.Rt_msqueue.dequeue q in
  Alcotest.(check (option int)) "first out" (Some 1) v1;
  Alcotest.(check (option int)) "second out" (Some 2) v2;
  let v3, _ = Runtime.Rt_msqueue.dequeue q in
  let v4, _ = Runtime.Rt_msqueue.dequeue q in
  Alcotest.(check (option int)) "third out" (Some 3) v3;
  Alcotest.(check (option int)) "then empty" None v4

let test_queue_concurrent_per_producer_fifo () =
  let q = Runtime.Rt_msqueue.create () in
  let per = 1_000 in
  let go = Atomic.make false in
  (* Two producers; values k*2 + d, so producer = v mod 2. *)
  let producer d () =
    while not (Atomic.get go) do
      Domain.cpu_relax ()
    done;
    for k = 0 to per - 1 do
      ignore (Runtime.Rt_msqueue.enqueue q ((k * 2) + d))
    done
  in
  let consumer () =
    while not (Atomic.get go) do
      Domain.cpu_relax ()
    done;
    let out = ref [] in
    let misses = ref 0 in
    while !misses < 10_000 && List.length !out < per do
      match Runtime.Rt_msqueue.dequeue q with
      | Some v, _ -> out := v :: !out
      | None, _ -> incr misses
    done;
    List.rev !out
  in
  let producers = List.init 2 (fun d -> Domain.spawn (producer d)) in
  let consumer_h = Domain.spawn consumer in
  Atomic.set go true;
  List.iter Domain.join producers;
  let consumed = Domain.join consumer_h in
  (* Drain the rest sequentially. *)
  let rec drain acc =
    match Runtime.Rt_msqueue.dequeue q with
    | Some v, _ -> drain (v :: acc)
    | None, _ -> List.rev acc
  in
  let rest = drain [] in
  let all = consumed @ rest in
  Alcotest.(check int) "nothing lost" (2 * per) (List.length all);
  (* Per-producer FIFO: each producer's subsequence is increasing. *)
  List.iter
    (fun d ->
      let mine = List.filter (fun v -> v mod 2 = d) all in
      let rec increasing = function
        | a :: (b :: _ as rest) -> a < b && increasing rest
        | _ -> true
      in
      Alcotest.(check bool)
        (Printf.sprintf "producer %d order preserved" d)
        true (increasing mine))
    [ 0; 1 ]

(* -- Recorder (Figures 3/4 methodology) --------------------------------- *)

let test_recorder_total_order () =
  let tr = Runtime.Recorder.record ~domains:3 ~steps_per_domain:2_000 in
  Alcotest.(check int) "trace length" 6_000 (Sched.Trace.length tr);
  let counts = Sched.Trace.step_counts tr in
  Array.iter (fun c -> Alcotest.(check int) "each domain's steps all present" 2_000 c) counts

let test_recorder_long_run_shares_fair () =
  (* Figure 3's claim on this machine: long-run shares are equal even
     though local order may be bursty. *)
  let tr = Runtime.Recorder.record ~domains:2 ~steps_per_domain:20_000 in
  let shares = Sched.Trace.step_shares tr in
  Array.iter
    (fun s -> Alcotest.(check bool) "share = 1/2 exactly (fixed quota)" true
        (Float.abs (s -. 0.5) < 1e-9))
    shares

(* -- Harness -------------------------------------------------------------- *)

let test_harness_counts () =
  let r = Runtime.Harness.counter_completion_rate ~domains:2 ~ops_per_domain:5_000 in
  Alcotest.(check int) "operations" 10_000 r.total_operations;
  Alcotest.(check bool) "steps >= 2 per op" true (r.total_steps >= 2 * r.total_operations);
  Alcotest.(check bool) "rate in (0, 0.5]" true
    (r.completion_rate > 0. && r.completion_rate <= 0.5)

let test_harness_custom_op () =
  let r =
    Runtime.Harness.run ~domains:2 ~ops_per_domain:100 ~op:(fun _ -> 7)
  in
  Alcotest.(check int) "steps accumulated" 1_400 r.total_steps;
  Alcotest.(check (float 1e-9)) "rate" (200. /. 1400.) r.completion_rate

let test_recorder_both_methods_agree () =
  (* Both of the paper's §A.2 methods over one run: identical per-
     domain step counts, and a high positional agreement between the
     recovered orders (ties in the wall clock can break a few). *)
  let c = Runtime.Recorder.record_both ~domains:2 ~steps_per_domain:3_000 in
  Alcotest.(check int) "ticket trace length" 6_000
    (Sched.Trace.length c.ticket_trace);
  Alcotest.(check bool) "same step counts" true
    (Sched.Trace.step_counts c.ticket_trace = Sched.Trace.step_counts c.timestamp_trace);
  Alcotest.(check bool)
    (Printf.sprintf "orders mostly agree (%.3f)" c.agreement)
    true (c.agreement > 0.9)

let test_recorder_stamp_clock_monotone () =
  (* Regression for the stamp clock: recorder timestamps come from
     CLOCK_MONOTONIC ([Pool.monotonic_now]), not the wall clock.  The
     wall clock can step backwards under NTP adjustment, which would
     reorder the recovered timestamp trace and make inter-step gaps
     negative.  With a single domain both §A.2 methods must recover
     the identical program order — agreement exactly 1.0 — which only
     holds when the stamp stream never decreases. *)
  let c = Runtime.Recorder.record_both ~domains:1 ~steps_per_domain:5_000 in
  Alcotest.(check (float 0.)) "single-domain orders identical" 1.0 c.agreement;
  (* And the clock itself never steps backwards across rapid calls. *)
  let prev = ref (Pool.monotonic_now ()) in
  let ok = ref true in
  for _ = 1 to 100_000 do
    let t = Pool.monotonic_now () in
    if t < !prev then ok := false;
    prev := t
  done;
  Alcotest.(check bool) "monotonic_now never decreases" true !ok

let test_harness_surfaces_domain_failure () =
  (* One domain raising must not orphan the others' joins: the run
     returns with the failure surfaced and the survivors counted. *)
  let r =
    Runtime.Harness.run ~domains:4 ~ops_per_domain:50 ~op:(fun d ->
        if d = 2 then failwith "injected";
        3)
  in
  Alcotest.(check int) "one failure" 1 (List.length r.failures);
  (match r.failures with
  | [ (d, msg) ] ->
      Alcotest.(check int) "failing domain identified" 2 d;
      Alcotest.(check bool) "reason captured" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "expected exactly one failure");
  Alcotest.(check int) "failed domain contributes nothing" 0
    r.per_domain.(2).Runtime.Harness.operations;
  Alcotest.(check int) "survivors all counted" 150 r.total_operations;
  Alcotest.(check int) "survivor steps accumulated" 450 r.total_steps

let test_harness_all_fail_zero_rate () =
  (* completion_rate must not divide by zero when every domain fails. *)
  let r =
    Runtime.Harness.run ~domains:2 ~ops_per_domain:10 ~op:(fun _ ->
        failwith "all down")
  in
  Alcotest.(check int) "both failed" 2 (List.length r.failures);
  Alcotest.(check (float 0.)) "rate is zero, not NaN" 0. r.completion_rate

let test_arg_validation () =
  Alcotest.check_raises "backoff"
    (Invalid_argument "Backoff.create: need 1 <= min_spins <= max_spins") (fun () ->
      ignore (Runtime.Backoff.create ~min_spins:8 ~max_spins:4 ()));
  Alcotest.check_raises "recorder domains"
    (Invalid_argument "Recorder.record: domains must be >= 1") (fun () ->
      ignore (Runtime.Recorder.record ~domains:0 ~steps_per_domain:1));
  Alcotest.check_raises "harness domains"
    (Invalid_argument "Harness.run: domains must be >= 1") (fun () ->
      ignore (Runtime.Harness.run ~domains:0 ~ops_per_domain:1 ~op:(fun _ -> 1)))

let () =
  Alcotest.run "runtime"
    [
      ( "counter",
        [
          Alcotest.test_case "sequential" `Quick test_counter_sequential;
          Alcotest.test_case "concurrent permutation" `Quick
            test_counter_concurrent_permutation;
          Alcotest.test_case "backoff" `Quick test_counter_with_backoff;
        ] );
      ( "treiber",
        [
          Alcotest.test_case "sequential" `Quick test_stack_sequential;
          Alcotest.test_case "concurrent conservation" `Quick
            test_stack_concurrent_conservation;
        ] );
      ( "msqueue",
        [
          Alcotest.test_case "sequential" `Quick test_queue_sequential;
          Alcotest.test_case "concurrent per-producer FIFO" `Quick
            test_queue_concurrent_per_producer_fifo;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "total order" `Quick test_recorder_total_order;
          Alcotest.test_case "long-run shares" `Quick test_recorder_long_run_shares_fair;
          Alcotest.test_case "both §A.2 methods agree" `Quick
            test_recorder_both_methods_agree;
          Alcotest.test_case "stamp clock monotone" `Quick
            test_recorder_stamp_clock_monotone;
        ] );
      ( "harness",
        [
          Alcotest.test_case "counter rate" `Quick test_harness_counts;
          Alcotest.test_case "custom op" `Quick test_harness_custom_op;
          Alcotest.test_case "domain failure surfaced" `Quick
            test_harness_surfaces_domain_failure;
          Alcotest.test_case "all-fail rate zero" `Quick test_harness_all_fail_zero_rate;
        ] );
      ("validation", [ Alcotest.test_case "argument guards" `Quick test_arg_validation ]);
    ]
