(* Smoke tests over the experiment catalogue: ids are unique and
   findable, and every experiment produces a renderable, non-trivial
   table in quick mode.  This is the cheap guarantee that
   `bin/repro.exe run all` and the bench harness's reproduction pass
   cannot bit-rot silently. *)

let test_ids_unique () =
  let ids = List.map (fun e -> e.Experiments.Exp.id) Experiments.Exp.all in
  let sorted = List.sort_uniq compare ids in
  Alcotest.(check int) "no duplicate ids" (List.length ids) (List.length sorted)

let test_find () =
  Alcotest.(check bool) "fig5 findable" true
    (Option.is_some (Experiments.Exp.find "fig5"));
  Alcotest.(check bool) "unknown id" true (Option.is_none (Experiments.Exp.find "nope"))

let test_expected_catalogue () =
  let ids = List.map (fun e -> e.Experiments.Exp.id) Experiments.Exp.all in
  List.iter
    (fun id ->
      Alcotest.(check bool) (Printf.sprintf "%s present" id) true (List.mem id ids))
    [
      "fig1"; "fig3"; "fig4"; "fig5"; "thm3"; "lem2"; "thm4"; "lem7"; "thm5";
      "lem11"; "lem12"; "lift"; "meanfield"; "cor2"; "abl-sched"; "abl-wf";
      "abl-lock"; "abl-of"; "abl-tas"; "structs"; "ext-shard"; "ext-mix";
      "ext-methods"; "ext-tail"; "ext-backup"; "ext-replay"; "hw";
    ]

let test_select () =
  let ids sel = List.map (fun e -> e.Experiments.Exp.id) sel in
  (match Experiments.Exp.select [ "fig5"; "thm4"; "fig5"; "lem7" ] with
  | Ok sel ->
      Alcotest.(check (list string))
        "duplicates collapse, order kept" [ "fig5"; "thm4"; "lem7" ] (ids sel)
  | Error e -> Alcotest.fail e);
  (match Experiments.Exp.select [ "all" ] with
  | Ok sel ->
      Alcotest.(check int)
        "all expands to the catalogue"
        (List.length Experiments.Exp.all)
        (List.length sel)
  | Error e -> Alcotest.fail e);
  match Experiments.Exp.select [ "fig1"; "nope" ] with
  | Ok _ -> Alcotest.fail "unknown id accepted"
  | Error msg ->
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool) "error names the id" true (contains msg "nope")

let test_cell_labels_unique () =
  let budget = Experiments.Exp.budget ~quick:true () in
  List.iter
    (fun (e : Experiments.Exp.t) ->
      let labels = Experiments.Plan.labels (e.plan budget) in
      Alcotest.(check bool)
        (Printf.sprintf "%s has cells" e.id)
        true (labels <> []);
      Alcotest.(check int)
        (Printf.sprintf "%s labels unique" e.id)
        (List.length labels)
        (List.length (List.sort_uniq compare labels)))
    Experiments.Exp.all

(* Byte-identical tables whatever the runner, checked on cheap
   experiments whose cells are pure functions of the budget (the
   hardware-measuring ones — fig4, fig5, ext-replay, hw — are
   measurements and excluded by design; see EXPERIMENTS.md). *)
let deterministic_subset = [ "fig1"; "lem11"; "cor2"; "abl-of"; "ext-shard" ]

let pool_runner pool =
  {
    Experiments.Plan.map =
      (fun ~exp_id:_ ~budget:_ cells ->
        Pool.run pool
          (List.map (fun c () -> c.Experiments.Plan.work ()) cells));
  }

let test_pool_matches_sequential () =
  let budget = Experiments.Exp.budget ~quick:true () in
  Pool.with_pool ~size:4 (fun pool ->
      List.iter
        (fun id ->
          let e = Option.get (Experiments.Exp.find id) in
          let seq = Experiments.Exp.table ~budget e in
          let par = Experiments.Exp.table ~runner:(pool_runner pool) ~budget e in
          Alcotest.(check string)
            (Printf.sprintf "%s: pool table = sequential table" id)
            (Stats.Table.to_string seq)
            (Stats.Table.to_string par))
        deterministic_subset)

let test_seed_threads_through () =
  let e = Option.get (Experiments.Exp.find "lem11") in
  let at seed =
    Stats.Table.to_string
      (Experiments.Exp.table ~budget:(Experiments.Exp.budget ~quick:true ~seed ()) e)
  in
  Alcotest.(check string) "seed 0 is reproducible" (at 0) (at 0);
  Alcotest.(check bool) "seed changes the samples" true (at 0 <> at 12345)

let run_all_quick () =
  List.iter
    (fun e ->
      let rendered = Experiments.Exp.render ~quick:true e in
      Alcotest.(check bool)
        (Printf.sprintf "%s renders non-trivially" e.Experiments.Exp.id)
        true
        (String.length rendered > 100);
      (* The rendered output embeds the title and at least one data row
         beyond the header/separator. *)
      Alcotest.(check bool)
        (Printf.sprintf "%s has rows" e.id)
        true
        (List.length (String.split_on_char '\n' rendered) > 5))
    Experiments.Exp.all

let () =
  Alcotest.run "experiments"
    [
      ( "catalogue",
        [
          Alcotest.test_case "unique ids" `Quick test_ids_unique;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "expected ids" `Quick test_expected_catalogue;
          Alcotest.test_case "select" `Quick test_select;
          Alcotest.test_case "cell labels unique" `Quick test_cell_labels_unique;
        ] );
      ( "cells",
        [
          Alcotest.test_case "pool matches sequential" `Slow
            test_pool_matches_sequential;
          Alcotest.test_case "seed threads through" `Slow test_seed_threads_through;
        ] );
      ("smoke", [ Alcotest.test_case "all experiments run (quick)" `Slow run_all_quick ]);
    ]
